package smtbalance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hwpri"
)

// PriorityAction is one priority rewrite a balancing policy requests:
// set rank Rank's hardware thread priority to Priority.  The engine
// applies actions through the simulated kernel's procfs interface, so on
// a vanilla kernel (Options.VanillaKernel) every action is inert —
// exactly the paper's argument for the kernel patch.
type PriorityAction struct {
	Rank     int      // the MPI rank whose priority to rewrite
	Priority Priority // the hardware thread priority to set
}

// Policy is a balancing algorithm: the paper's "smart allocation of
// resources" generalized from one hard-coded balancer to a family.  At
// every barrier release the engine calls Observe with the iteration's
// per-rank measurements; the policy answers with the priority rewrites
// to apply before the next iteration.  Name and Params identify the
// algorithm and its effective parameters — they feed PolicyID, which
// keys the result cache, so two policies that can behave differently
// must never share an identity.
//
// Policies that keep per-run state (all the built-ins do) should also
// implement PolicyBinder; policies that do not are treated as shared
// observers — usable with Machine.Run, but uncacheable and rejected in
// sweeps, where runs execute concurrently.
type Policy interface {
	// Name is the algorithm's registered name (e.g. "dyn").
	Name() string
	// Params returns the policy's effective parameters (after
	// defaulting), e.g. {"maxdiff": "1"}.  May be nil.
	Params() map[string]string
	// Observe consumes one iteration and returns the priority rewrites
	// to apply.  Returning nil means "no change".
	Observe(IterationStats) []PriorityAction
}

// PolicyBinder is implemented by policies that need the run's placement
// or keep per-iteration state: Bind returns a fresh instance for one run
// on the given machine, leaving the receiver untouched.  Binding is what
// makes a policy safe for concurrent sweeps and its results cacheable.
type PolicyBinder interface {
	Policy
	// Bind returns a fresh policy instance for one run of a job placed
	// by pl on topo; the receiver itself must stay unmodified.
	Bind(topo Topology, pl Placement) Policy
}

// PolicyID is a policy's canonical identity: its name, plus its
// effective parameters sorted by key — "dyn(hysteresis=2,maxdiff=1,
// threshold=0.05)".  Equal IDs must mean equal behavior: the ID is the
// policy's contribution to the result-cache key and the sweep ranking
// label.  A nil policy has the empty ID.
func PolicyID(p Policy) string {
	if p == nil {
		return ""
	}
	return idString(p.Name(), p.Params())
}

// idString renders the canonical "name(k=v,...)" identity shared by
// PolicyID and ScenarioID: effective parameters sorted by key, so equal
// behavior always renders equally.
func idString(name string, params map[string]string) string {
	if len(params) == 0 {
		return name
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// PolicyFactory builds a policy from ParsePolicy parameters.  Factories
// must reject unknown keys: a typo ("maxdif=2") must fail loudly, not
// silently run the default.
type PolicyFactory func(params map[string]string) (Policy, error)

var policyRegistry = struct {
	sync.RWMutex
	m map[string]PolicyFactory //mtlint:guardedby RWMutex
}{m: make(map[string]PolicyFactory)}

// RegisterPolicy adds a policy factory under the given name, making it
// reachable from ParsePolicy (and so from the mtbalance CLI's -policy
// flag and the serve API's policy fields).  Names are case-sensitive,
// must be non-empty and free of the grammar's delimiters (',', '=',
// ';'), and may not be registered twice.
func RegisterPolicy(name string, factory PolicyFactory) error {
	if name == "" || strings.ContainsAny(name, ",=; ") {
		return fmt.Errorf("smtbalance: invalid policy name %q", name)
	}
	if factory == nil {
		return fmt.Errorf("smtbalance: nil factory for policy %q", name)
	}
	policyRegistry.Lock()
	defer policyRegistry.Unlock()
	if _, dup := policyRegistry.m[name]; dup {
		return fmt.Errorf("smtbalance: policy %q already registered", name)
	}
	policyRegistry.m[name] = factory
	return nil
}

// Policies lists the registered policy names, sorted.
func Policies() []string {
	policyRegistry.RLock()
	defer policyRegistry.RUnlock()
	names := make([]string, 0, len(policyRegistry.m))
	for name := range policyRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParsePolicy resolves a policy specification string: a registered name
// followed by comma-separated key=value parameters, e.g. "static",
// "dyn,maxdiff=2", "feedback,gain=8,deadband=0.02".  Whitespace around
// tokens is ignored.  Unknown names and parameters are errors; an
// unknown name's error lists the registered policies, so a typo like
// "dyn2" tells the user what exists instead of leaving them guessing.
func ParsePolicy(s string) (Policy, error) {
	name, params, err := parseSpec("policy", s)
	if err != nil {
		return nil, err
	}
	policyRegistry.RLock()
	factory := policyRegistry.m[name]
	policyRegistry.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("smtbalance: unknown policy %q (registered: %s)", name, strings.Join(Policies(), ", "))
	}
	pol, err := factory(params)
	if err != nil {
		return nil, fmt.Errorf("smtbalance: policy %q: %w", name, err)
	}
	return pol, nil
}

// parseSpec splits a registry specification — a name followed by
// comma-separated key=value parameters — into its parts.  It is shared
// by ParsePolicy and ParseScenario so the two grammars cannot drift;
// `what` names the registry in error messages ("policy", "scenario").
func parseSpec(what, s string) (name string, params map[string]string, err error) {
	fields := strings.Split(s, ",")
	name = strings.TrimSpace(fields[0])
	if name == "" {
		return "", nil, fmt.Errorf("smtbalance: empty %s specification %q", what, s)
	}
	params = make(map[string]string)
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("smtbalance: bad %s parameter %q in %q (want key=value)", what, f, s)
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("smtbalance: duplicate %s parameter %q in %q", what, k, s)
		}
		params[k] = v
	}
	return name, params, nil
}

// paramInt reads an integer parameter, deleting it from the map so the
// factory can detect leftovers.  An explicit value outside [min, max]
// is an error, never silently clamped: a user asking for maxdiff=9 must
// not get maxdiff=4 labeled as their choice.  Absent keys return def
// (0, i.e. "use the policy's default").
func paramInt(params map[string]string, key string, def, min, max int) (int, error) {
	s, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: want an integer", key, s)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("parameter %s=%d outside %d..%d", key, v, min, max)
	}
	return v, nil
}

// paramFloat reads a float parameter, deleting it from the map; an
// explicit value outside (min, max] is an error, as with paramInt.
func paramFloat(params map[string]string, key string, def, min, max float64) (float64, error) {
	s, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: want a number", key, s)
	}
	if v <= min || v > max {
		return 0, fmt.Errorf("parameter %s=%g outside (%g, %g]", key, v, min, max)
	}
	return v, nil
}

// rejectLeftovers errors on any parameter the factory did not consume.
func rejectLeftovers(params map[string]string) error {
	for k := range params {
		return fmt.Errorf("unknown parameter %q", k)
	}
	return nil
}

// fmtFloat renders a parameter value canonically (no trailing zeros).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// orInt and orFloat resolve a policy field's zero value to its default;
// clampDiff additionally bounds a priority difference at the
// architectural maximum of 4, mirroring core.NewDynamic.
func orInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func orFloat(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

func clampDiff(v, def int) int {
	v = orInt(v, def)
	if v > 4 {
		v = 4
	}
	return v
}

// gapParams parses (and range-checks) the maxdiff/threshold/hysteresis
// trio shared by the gap-watching built-ins, consuming the whole
// parameter map — callers read their extra keys first.
func gapParams(params map[string]string) (maxDiff int, threshold float64, hysteresis int, err error) {
	if maxDiff, err = paramInt(params, "maxdiff", 0, 1, 4); err != nil {
		return
	}
	if threshold, err = paramFloat(params, "threshold", 0, 0, 1); err != nil {
		return
	}
	if hysteresis, err = paramInt(params, "hysteresis", 0, 1, 1<<20); err != nil {
		return
	}
	err = rejectLeftovers(params)
	return
}

// gapParamsMap renders the trio for Params().
func gapParamsMap(maxDiff int, threshold float64, hysteresis int) map[string]string {
	return map[string]string{
		"maxdiff":    strconv.Itoa(maxDiff),
		"threshold":  fmtFloat(threshold),
		"hysteresis": strconv.Itoa(hysteresis),
	}
}

func init() {
	for name, factory := range map[string]PolicyFactory{
		"static": func(params map[string]string) (Policy, error) {
			if err := rejectLeftovers(params); err != nil {
				return nil, err
			}
			return StaticPolicy{}, nil
		},
		"dyn": func(params map[string]string) (Policy, error) {
			md, th, hy, err := gapParams(params)
			return &PaperDynamic{MaxDiff: md, Threshold: th, Hysteresis: hy}, err
		},
		"hier": func(params map[string]string) (Policy, error) {
			md, th, hy, err := gapParams(params)
			return &HierarchicalPolicy{MaxDiff: md, Threshold: th, Hysteresis: hy}, err
		},
		"feedback": func(params map[string]string) (Policy, error) {
			p := &FeedbackPolicy{}
			var err error
			if p.Gain, err = paramFloat(params, "gain", 0, 0, 1024); err != nil {
				return nil, err
			}
			if p.Deadband, err = paramFloat(params, "deadband", 0, 0, 1); err != nil {
				return nil, err
			}
			if p.MaxDiff, err = paramInt(params, "maxdiff", 0, 1, 4); err != nil {
				return nil, err
			}
			if p.Hysteresis, err = paramInt(params, "hysteresis", 0, 1, 1<<20); err != nil {
				return nil, err
			}
			return p, rejectLeftovers(params)
		},
	} {
		if err := RegisterPolicy(name, factory); err != nil {
			panic(err)
		}
	}
}

// pairsOf groups the placement's ranks by the core they share, in core
// order — the balancing unit of every built-in policy (the POWER5
// priority mechanism arbitrates decode cycles between the two contexts
// of one core and nothing else).
func pairsOf(topo Topology, pl Placement) [][2]int {
	topo = topo.normalized()
	ways := topo.SMTWays
	if ways <= 0 {
		ways = 2
	}
	byCore := make(map[int][]int)
	maxCore := 0
	for rank, cpu := range pl.CPU {
		c := cpu / ways
		byCore[c] = append(byCore[c], rank)
		if c > maxCore {
			maxCore = c
		}
	}
	var pairs [][2]int
	for c := 0; c <= maxCore; c++ {
		if ranks := byCore[c]; len(ranks) == 2 {
			pairs = append(pairs, [2]int{ranks[0], ranks[1]})
		}
	}
	return pairs
}

// pairActions renders a pair's signed priority difference as the two
// writes implementing it, favored rank first — the paper's Section VI
// priority ladder (PrioritiesFor).
func pairActions(pair [2]int, diff int) []PriorityAction {
	var pa, pb hwpri.Priority
	if diff >= 0 {
		pa, pb = core.PrioritiesFor(diff)
	} else {
		pb, pa = core.PrioritiesFor(-diff)
	}
	return []PriorityAction{
		{Rank: pair[0], Priority: Priority(pa)},
		{Rank: pair[1], Priority: Priority(pb)},
	}
}

// StaticPolicy never moves a priority: the launch placement is the whole
// plan.  It is the control every other policy is measured against, and
// the explicit form of "no balancing" for sweeps over Space.Policies.
type StaticPolicy struct{}

// Name implements Policy.
func (StaticPolicy) Name() string { return "static" }

// Params implements Policy.
func (StaticPolicy) Params() map[string]string { return nil }

// Observe implements Policy: no actions, ever.
func (StaticPolicy) Observe(IterationStats) []PriorityAction { return nil }

// Bind implements PolicyBinder; StaticPolicy is stateless.
func (StaticPolicy) Bind(Topology, Placement) Policy { return StaticPolicy{} }

// PaperDynamic is the paper's Section VIII proposal, extracted from the
// old Options.DynamicBalance knob: at every barrier release it compares
// the computation times of the two ranks of each core and, once the
// imbalance points the same way for Hysteresis iterations, shifts the
// pair's priority difference one step toward the laggard, backing off
// when the imbalance inverts.
type PaperDynamic struct {
	// MaxDiff bounds the priority difference (default 1; the paper's
	// Case D shows why large differences are dangerous).
	MaxDiff int
	// Threshold is the relative per-iteration gap (gap / iteration
	// length) below which the pair counts as balanced.  Default 0.05.
	Threshold float64
	// Hysteresis is the number of consecutive same-direction iterations
	// required before a move.  Default 2.
	Hysteresis int

	bound *core.Dynamic // per-run instance state (nil on the prototype)
}

// effective returns the defaulted parameters, mirroring core.NewDynamic.
func (p *PaperDynamic) effective() (maxDiff int, threshold float64, hysteresis int) {
	return clampDiff(p.MaxDiff, 1), orFloat(p.Threshold, 0.05), orInt(p.Hysteresis, 2)
}

// Name implements Policy.
func (p *PaperDynamic) Name() string { return "dyn" }

// Params implements Policy.
func (p *PaperDynamic) Params() map[string]string {
	return gapParamsMap(p.effective())
}

// Bind implements PolicyBinder.
func (p *PaperDynamic) Bind(topo Topology, pl Placement) Policy {
	maxDiff, threshold, hysteresis := p.effective()
	cp := *p
	cp.bound = core.NewDynamic(core.DynamicConfig{
		CPU:        append([]int(nil), pl.CPU...),
		Threshold:  threshold,
		MaxDiff:    maxDiff,
		Hysteresis: hysteresis,
	})
	return &cp
}

// Observe implements Policy.
func (p *PaperDynamic) Observe(st IterationStats) []PriorityAction {
	if p.bound == nil {
		return nil // unbound prototype: identity only
	}
	acts := p.bound.Observe(st.ComputeCycles, st.ArrivalCycle, st.ReleaseCycle)
	out := make([]PriorityAction, 0, len(acts))
	for _, a := range acts {
		out = append(out, PriorityAction{Rank: a.Rank, Priority: Priority(a.Prio)})
	}
	return out
}

// HierarchicalPolicy balances at two levels of the machine's topology,
// in the spirit of hierarchical schedulers (Thibault) and two-level load
// balancers: the coarse level ranks chips by their critical path (the
// slowest rank on each chip), the fine level then retunes priorities
// within each core — aggressively (up to MaxDiff) on chips at the
// machine-wide critical path, conservatively (at most one step) on
// chips with slack, where an overshoot cannot improve the makespan but
// can still pay the paper's Case D penalty.
type HierarchicalPolicy struct {
	// MaxDiff bounds the priority difference on critical-path chips
	// (default 3); chips with slack are always bounded at 1.
	MaxDiff int
	// Threshold is both the relative per-iteration gap below which a
	// pair counts as balanced and the relative slack below which a chip
	// counts as critical.  Default 0.05.
	Threshold float64
	// Hysteresis is the number of consecutive same-direction iterations
	// required before a move.  Default 2.
	Hysteresis int

	run *hierRun // per-run state (nil on the prototype)
}

// hierRun is HierarchicalPolicy's per-run state.
type hierRun struct {
	pairs       [][2]int
	chipOfPair  []int
	chips       int
	diff        []int
	streak      []int
	lastDir     []int
	lastRelease int64
}

// effective returns the defaulted parameters.
func (p *HierarchicalPolicy) effective() (maxDiff int, threshold float64, hysteresis int) {
	return clampDiff(p.MaxDiff, 3), orFloat(p.Threshold, 0.05), orInt(p.Hysteresis, 2)
}

// Name implements Policy.
func (p *HierarchicalPolicy) Name() string { return "hier" }

// Params implements Policy.
func (p *HierarchicalPolicy) Params() map[string]string {
	return gapParamsMap(p.effective())
}

// Bind implements PolicyBinder.
func (p *HierarchicalPolicy) Bind(topo Topology, pl Placement) Policy {
	topo = topo.normalized()
	pairs := pairsOf(topo, pl)
	run := &hierRun{
		pairs:      pairs,
		chipOfPair: make([]int, len(pairs)),
		chips:      topo.Chips,
		diff:       make([]int, len(pairs)),
		streak:     make([]int, len(pairs)),
		lastDir:    make([]int, len(pairs)),
	}
	for i, pair := range pairs {
		chip, _, _ := topo.Locate(pl.CPU[pair[0]])
		run.chipOfPair[i] = chip
	}
	cp := *p
	cp.run = run
	return &cp
}

// Observe implements Policy.
func (p *HierarchicalPolicy) Observe(st IterationStats) []PriorityAction {
	r := p.run
	if r == nil {
		return nil
	}
	maxDiff, threshold, hysteresis := p.effective()
	iterLen := st.ReleaseCycle - r.lastRelease
	r.lastRelease = st.ReleaseCycle
	if iterLen <= 0 {
		return nil
	}
	signal := st.ComputeCycles
	if signal == nil {
		signal = st.ArrivalCycle
	}

	// Coarse level: each chip's critical path is its slowest rank this
	// iteration; the machine's critical path is the slowest chip.
	chipMax := make([]int64, r.chips)
	for i, pair := range r.pairs {
		chip := r.chipOfPair[i]
		for _, rank := range [2]int{pair[0], pair[1]} {
			if rank < len(signal) && signal[rank] > chipMax[chip] {
				chipMax[chip] = signal[rank]
			}
		}
	}
	var globalMax int64
	for _, m := range chipMax {
		if m > globalMax {
			globalMax = m
		}
	}

	// Fine level: per-core gap balancing within the chip's budget.
	var acts []PriorityAction
	for i, pair := range r.pairs {
		budget := 1
		if float64(chipMax[r.chipOfPair[i]]) >= float64(globalMax)*(1-threshold) {
			budget = maxDiff // this chip bounds the machine: full authority
		}
		a, b := pair[0], pair[1]
		gap := float64(signal[a]-signal[b]) / float64(iterLen)
		dir := 0
		switch {
		case gap > threshold:
			dir = 1
		case gap < -threshold:
			dir = -1
		}
		// A diff beyond the (possibly shrunk) budget is walked back even
		// when the pair looks balanced: the slack chip must not keep an
		// aggressive skew it no longer needs.
		if dir == 0 && r.diff[i] > budget {
			dir = -1
		}
		if dir == 0 && r.diff[i] < -budget {
			dir = 1
		}
		if dir == 0 {
			r.streak[i], r.lastDir[i] = 0, 0
			continue
		}
		if dir != r.lastDir[i] {
			r.lastDir[i] = dir
			r.streak[i] = 1
		} else {
			r.streak[i]++
		}
		if r.streak[i] < hysteresis {
			continue
		}
		r.streak[i] = 0
		want := r.diff[i] + dir
		if want > budget {
			want = budget
		}
		if want < -budget {
			want = -budget
		}
		if want == r.diff[i] {
			continue
		}
		r.diff[i] = want
		acts = append(acts, pairActions(pair, want)...)
	}
	return acts
}

// FeedbackPolicy is a proportional controller on each pair's
// compute-share error: the error e = (Ca-Cb)/(Ca+Cb) is mapped through
// Gain to a target priority difference, and the pair's difference steps
// toward the target once the controller has wanted the same direction
// for Hysteresis consecutive iterations.  The Deadband suppresses
// reactions to near-balanced pairs, where measurement noise would
// otherwise make the controller oscillate.
type FeedbackPolicy struct {
	// Gain converts the compute-share error into priority steps
	// (default 6: a 17% share error asks for one step).
	Gain float64
	// Deadband is the |error| below which the pair counts as balanced
	// (default 0.04).
	Deadband float64
	// MaxDiff bounds the priority difference (default 3).
	MaxDiff int
	// Hysteresis is the number of consecutive iterations the controller
	// must want the same direction before moving.  Default 2.
	Hysteresis int

	run *feedbackRun // per-run state (nil on the prototype)
}

// feedbackRun is FeedbackPolicy's per-run state.
type feedbackRun struct {
	pairs   [][2]int
	diff    []int
	streak  []int
	lastDir []int
}

// effective returns the defaulted parameters.
func (p *FeedbackPolicy) effective() (gain, deadband float64, maxDiff, hysteresis int) {
	return orFloat(p.Gain, 6), orFloat(p.Deadband, 0.04), clampDiff(p.MaxDiff, 3), orInt(p.Hysteresis, 2)
}

// Name implements Policy.
func (p *FeedbackPolicy) Name() string { return "feedback" }

// Params implements Policy.
func (p *FeedbackPolicy) Params() map[string]string {
	gain, deadband, maxDiff, hysteresis := p.effective()
	return map[string]string{
		"gain":       fmtFloat(gain),
		"deadband":   fmtFloat(deadband),
		"maxdiff":    strconv.Itoa(maxDiff),
		"hysteresis": strconv.Itoa(hysteresis),
	}
}

// Bind implements PolicyBinder.
func (p *FeedbackPolicy) Bind(topo Topology, pl Placement) Policy {
	pairs := pairsOf(topo, pl)
	cp := *p
	cp.run = &feedbackRun{
		pairs:   pairs,
		diff:    make([]int, len(pairs)),
		streak:  make([]int, len(pairs)),
		lastDir: make([]int, len(pairs)),
	}
	return &cp
}

// Observe implements Policy.
func (p *FeedbackPolicy) Observe(st IterationStats) []PriorityAction {
	r := p.run
	if r == nil {
		return nil
	}
	gain, deadband, maxDiff, hysteresis := p.effective()
	signal := st.ComputeCycles
	if signal == nil {
		signal = st.ArrivalCycle
	}
	var acts []PriorityAction
	for i, pair := range r.pairs {
		a, b := pair[0], pair[1]
		if a >= len(signal) || b >= len(signal) {
			continue
		}
		sum := float64(signal[a] + signal[b])
		if sum <= 0 {
			r.streak[i], r.lastDir[i] = 0, 0
			continue
		}
		err := float64(signal[a]-signal[b]) / sum
		target := r.diff[i]
		if err > deadband || err < -deadband {
			// Proportional term, rounded to whole priority steps.
			t := gain * err
			if t >= 0 {
				target = int(t + 0.5)
			} else {
				target = int(t - 0.5)
			}
			if target > maxDiff {
				target = maxDiff
			}
			if target < -maxDiff {
				target = -maxDiff
			}
		} else if r.diff[i] != 0 {
			target = 0 // balanced: relax the skew back out
		}
		dir := 0
		switch {
		case target > r.diff[i]:
			dir = 1
		case target < r.diff[i]:
			dir = -1
		}
		if dir == 0 {
			r.streak[i], r.lastDir[i] = 0, 0
			continue
		}
		if dir != r.lastDir[i] {
			r.lastDir[i] = dir
			r.streak[i] = 1
		} else {
			r.streak[i]++
		}
		if r.streak[i] < hysteresis {
			continue
		}
		r.streak[i] = 0
		r.diff[i] += dir
		acts = append(acts, pairActions(pair, r.diff[i])...)
	}
	return acts
}
