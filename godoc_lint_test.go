package smtbalance

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented fails on any exported symbol of the
// public root package — type, function, method, const, var, struct
// field or interface method — that carries no doc comment.  The public
// surface is the reproduction's API contract; an undocumented export
// is a review miss, and this test is what makes the rule CI-enforced
// (CI runs `go test ./...`).
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["smtbalance"]
	if !ok {
		t.Fatalf("package smtbalance not found in %v", pkgs)
	}

	var missing []string
	report := func(pos token.Pos, sym string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, sym))
	}

	for name, f := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				// Methods count only on exported receivers: a method on an
				// unexported type is not reachable API unless the type leaks
				// through an exported interface, whose methods are checked
				// at the interface declaration instead.
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "func "+funcName(d))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type "+s.Name.Name)
						}
						checkFields(s, report)
					case *ast.ValueSpec:
						// A group doc (`// Priorities ...` above a const
						// block) or a per-spec doc or trailing line comment
						// all document the value.
						documented := d.Doc != nil || s.Doc != nil || s.Comment != nil
						for _, id := range s.Names {
							if id.IsExported() && !documented {
								report(id.Pos(), "const/var "+id.Name)
							}
						}
					}
				}
			}
		}
	}

	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("undocumented exported symbol: %s", m)
	}
}

// checkFields reports undocumented exported struct fields and
// interface methods of an exported type.
func checkFields(s *ast.TypeSpec, report func(token.Pos, string)) {
	var fields *ast.FieldList
	switch tt := s.Type.(type) {
	case *ast.StructType:
		fields = tt.Fields
	case *ast.InterfaceType:
		fields = tt.Methods
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, id := range f.Names {
			if id.IsExported() {
				report(id.Pos(), s.Name.Name+"."+id.Name)
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is an
// exported name (after stripping any pointer and type parameters).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// funcName renders a function or method name for the failure message.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return d.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		b.WriteString("*")
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		b.WriteString(id.Name)
	}
	b.WriteString(").")
	b.WriteString(d.Name.Name)
	return b.String()
}
