package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestMachineRunMatchesWrapper(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(context.Background(), job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(job, PinInOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.ImbalancePct != want.ImbalancePct {
		t.Errorf("Machine.Run (%d cycles, %.2f%%) differs from Run (%d cycles, %.2f%%)",
			got.Cycles, got.ImbalancePct, want.Cycles, want.ImbalancePct)
	}
	if !reflect.DeepEqual(got.Ranks, want.Ranks) {
		t.Error("Machine.Run and Run disagree on per-rank summaries")
	}
}

func TestMachineRunCache(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if st := m.CacheStats(); st.Hits != 0 || st.Misses != 1 || st.Results != 1 {
		t.Errorf("after first run: stats %+v, want 0 hits / 1 miss / 1 result", st)
	}
	second, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if st := m.CacheStats(); st.Hits != 1 {
		t.Errorf("identical re-run missed the cache: stats %+v", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs from the original run")
	}
	// The cache must hand out independent copies: mutating one caller's
	// result must not corrupt later hits.
	second.Ranks[0].CPU = 99
	third, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if third.Ranks[0].CPU == 99 {
		t.Error("mutating a cached result leaked into the cache")
	}
	// A different placement is a different configuration.
	pl := PinInOrder(4)
	pl.Priority[1] = PriorityHigh
	other, err := m.Run(ctx, job, pl)
	if err != nil {
		t.Fatal(err)
	}
	if other.Cycles == first.Cycles {
		t.Log("note: different priorities happened to produce equal cycles")
	}
	if st := m.CacheStats(); st.Results != 2 {
		t.Errorf("distinct configurations share a cache entry: stats %+v", st)
	}
	// ClearCache releases the entries but keeps the counters; the next
	// identical run is a miss again with identical output.
	m.ClearCache()
	if st := m.CacheStats(); st.Results != 0 || st.Metrics != 0 || st.Hits == 0 {
		t.Errorf("ClearCache left %+v", st)
	}
	missesBefore := m.CacheStats().Misses
	again, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheStats().Misses != missesBefore+1 {
		t.Error("run after ClearCache was not a miss")
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("post-clear re-run differs from the original result")
	}
}

func TestMachineRunOnIterationSkipsCache(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	calls := 0
	m, err := NewMachine(&Options{OnIteration: func(IterationStats) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Run(ctx, job, PinInOrder(4)); err != nil {
		t.Fatal(err)
	}
	after := calls
	if after == 0 {
		t.Fatal("OnIteration never fired")
	}
	if _, err := m.Run(ctx, job, PinInOrder(4)); err != nil {
		t.Fatal(err)
	}
	if calls != 2*after {
		t.Errorf("second run fired OnIteration %d times, want %d (cache must be bypassed)", calls-after, after)
	}
	if st := m.CacheStats(); st.Results != 0 {
		t.Errorf("results were cached despite OnIteration: stats %+v", st)
	}
}

func TestMachineRunCancelled(t *testing.T) {
	job := sweepTestJob(5_000_000, 20_000_000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = m.Run(ctx, job, PinInOrder(4))
	if err != context.Canceled {
		t.Fatalf("cancelled Machine.Run returned %v, want ctx.Err() (context.Canceled)", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled run took %v to return", d)
	}
}

func TestMachineSweepStreamsRanking(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	space := Space{Priorities: []Priority{PriorityMedium, PriorityHigh}}

	var progressLast, progressTotal int
	opts := &SweepOptions{Progress: func(evaluated, total int) {
		progressLast, progressTotal = evaluated, total
	}}
	var streamed []SweepEntry
	for e, err := range m.Sweep(ctx, job, space, opts) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, e)
	}
	if progressTotal != 48 || progressLast != 48 { // 3 pairings x 2^4
		t.Errorf("Progress saw %d/%d, want 48/48", progressLast, progressTotal)
	}
	all, err := m.SweepAll(ctx, job, space, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, all.Entries) {
		t.Error("streamed entries differ from SweepAll ranking")
	}
	// Scores ascend: the stream is the ranking, best first.
	for i := 1; i < len(streamed); i++ {
		if streamed[i].Score < streamed[i-1].Score {
			t.Fatalf("stream not sorted at %d: %f after %f", i, streamed[i].Score, streamed[i-1].Score)
		}
	}
	// Early break must be safe.
	n := 0
	for _, err := range m.Sweep(ctx, job, space, nil) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 3 {
			break
		}
	}
	if n != 3 {
		t.Errorf("early break consumed %d entries", n)
	}
}

func TestMachineSweepCancelledYieldsCtxErr(t *testing.T) {
	job := sweepTestJob(5_000_000, 20_000_000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	var got []error
	for _, err := range m.Sweep(ctx, job, UserSettableSpace(), nil) {
		got = append(got, err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled sweep took %v to return", d)
	}
	if len(got) != 1 || got[0] != context.Canceled {
		t.Fatalf("cancelled sweep yielded %v, want exactly one ctx.Err() (context.Canceled)", got)
	}

	// Mid-flight cancellation: cancel from the progress callback and
	// check the sweep aborts instead of evaluating all 48 points.
	job = sweepTestJob(20_000, 80_000)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	evaluated := 0
	var sweepErr error
	for _, err := range m.Sweep(ctx2, job, Space{Priorities: []Priority{PriorityMedium, PriorityHigh}},
		&SweepOptions{Workers: 1, Progress: func(done, total int) {
			evaluated = done
			if done == 2 {
				cancel2()
			}
		}}) {
		sweepErr = err
	}
	if !errors.Is(sweepErr, context.Canceled) {
		t.Fatalf("mid-flight cancel yielded %v, want context.Canceled", sweepErr)
	}
	if evaluated >= 48 {
		t.Errorf("sweep evaluated all %d points despite cancellation", evaluated)
	}
}

func TestMachineSweepRejectsRunOptions(t *testing.T) {
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.SweepAll(context.Background(), sweepTestJob(1000, 2000), Space{},
		&SweepOptions{Run: &Options{NoOSNoise: true}})
	if err == nil || !strings.Contains(err.Error(), "SweepOptions.Run") {
		t.Errorf("Machine.SweepAll accepted SweepOptions.Run: %v", err)
	}
}

func TestMachineSweepMetricsCacheAcrossObjectives(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	space := Space{FixPairing: true, Priorities: []Priority{PriorityMedium, PriorityHigh}}
	byCyc, err := m.SweepAll(ctx, job, space, &SweepOptions{Objective: MinimizeCycles()})
	if err != nil {
		t.Fatal(err)
	}
	st := m.CacheStats()
	if st.Metrics != byCyc.Evaluated {
		t.Fatalf("first sweep cached %d metrics for %d points", st.Metrics, byCyc.Evaluated)
	}
	// Re-sweeping the same space under a different objective must be
	// served entirely from memory.
	byImb, err := m.SweepAll(ctx, job, space, &SweepOptions{Objective: MinimizeImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	st2 := m.CacheStats()
	if hits := st2.Hits - st.Hits; hits != int64(byImb.Evaluated) {
		t.Errorf("re-sweep hit the cache %d times for %d points", hits, byImb.Evaluated)
	}
	// And the rankings must agree with the uncached wrapper's.
	wrapper, err := Sweep(job, space, &SweepOptions{Objective: MinimizeImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byImb.Entries, wrapper.Entries) {
		t.Error("cached re-sweep ranking differs from a fresh sweep")
	}
}

func TestMachineOptimize(t *testing.T) {
	job := sweepTestJob(1500, 6000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	pl, res, err := m.Optimize(ctx, job, MinimizeCycles())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= base.Cycles {
		t.Errorf("optimized placement (%d cycles) no faster than default (%d)", res.Cycles, base.Cycles)
	}
	rerun, err := m.Run(ctx, job, pl)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Cycles != res.Cycles {
		t.Errorf("Optimize Result (%d cycles) does not match its placement's run (%d)", res.Cycles, rerun.Cycles)
	}
}

func TestSessionIterativeWorkflow(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession(job)
	if s.Last() != nil {
		t.Fatal("fresh session has a last result")
	}
	if _, err := s.SuggestFromLast(); err == nil {
		t.Fatal("SuggestFromLast succeeded with no profile run")
	}
	ctx := context.Background()
	base, err := s.Run(ctx, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Last() != base {
		t.Error("Session.Run did not record the result")
	}
	// The paper's loop: profile, derive a plan from the observed compute
	// shares, re-run, and expect an improvement on this imbalanced job.
	pl, err := s.SuggestFromLast()
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := s.Run(ctx, pl)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cycles >= base.Cycles {
		t.Errorf("suggested placement (%d cycles) no faster than profile run (%d)", tuned.Cycles, base.Cycles)
	}
	if s.Job().Name != job.Name || s.Machine() != m {
		t.Error("session accessors broken")
	}
}

// TestSuggestFromLastEdgeCases covers the profile-derived planner's
// degenerate inputs: no run yet, zero and equal compute shares, and
// single-rank jobs (which cannot pair on an SMT core).
func TestSuggestFromLastEdgeCases(t *testing.T) {
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Before any run: a descriptive error, not a zero placement.
	s := m.NewSession(sweepTestJob(1000, 2000))
	if _, err := s.SuggestFromLast(); err == nil || !strings.Contains(err.Error(), "no completed run") {
		t.Errorf("SuggestFromLast before any run: err = %v", err)
	}

	// withShares fabricates a session whose last profile observed the
	// given per-rank compute shares.
	withShares := func(shares ...float64) *Session {
		res := &Result{}
		for i, sh := range shares {
			res.Ranks = append(res.Ranks, RankSummary{CPU: i, ComputePct: sh})
		}
		s := m.NewSession(sweepTestJob(1000, 2000))
		s.last = res
		return s
	}

	// Equal shares: a valid plan with no priority skew anywhere.
	pl, err := withShares(25, 25, 25, 25).SuggestFromLast()
	if err != nil {
		t.Fatalf("equal shares: %v", err)
	}
	for r, p := range pl.Priority {
		if p != PriorityMedium {
			t.Errorf("equal shares: rank %d planned at %v, want medium", r, p)
		}
	}

	// All-zero shares (e.g. a communication-only profile): still a valid
	// full placement at neutral priorities, not a crash or a skew.
	pl, err = withShares(0, 0, 0, 0).SuggestFromLast()
	if err != nil {
		t.Fatalf("zero shares: %v", err)
	}
	if len(pl.CPU) != 4 || len(pl.Priority) != 4 {
		t.Fatalf("zero shares: placement %v", pl)
	}
	seen := map[int]bool{}
	for r, cpu := range pl.CPU {
		if seen[cpu] {
			t.Errorf("zero shares: CPU %d pinned twice", cpu)
		}
		seen[cpu] = true
		if pl.Priority[r] != PriorityMedium {
			t.Errorf("zero shares: rank %d planned at %v, want medium", r, pl.Priority[r])
		}
	}

	// A single rank cannot pair on a 2-way SMT core: descriptive error.
	if _, err := withShares(100).SuggestFromLast(); err == nil {
		t.Error("single-rank SuggestFromLast succeeded")
	}

	// Odd rank counts are the same failure mode.
	if _, err := withShares(50, 30, 20).SuggestFromLast(); err == nil {
		t.Error("odd-rank SuggestFromLast succeeded")
	}
}

// Options.LoadDrift rescales compute phases at run time, disables the
// result cache (the hook's output is not in the job hash) and is
// rejected in sweeps.
func TestMachineRunLoadDrift(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	ctx := context.Background()
	base, err := Run(job, PinInOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	m, err := NewMachine(&Options{LoadDrift: func(rank, phase int, n int64) int64 {
		calls++
		return 3 * n
	}})
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("LoadDrift never fired")
	}
	if drifted.Cycles <= base.Cycles {
		t.Errorf("tripled loads did not slow the run: %d vs %d cycles", drifted.Cycles, base.Cycles)
	}
	if _, err := m.Run(ctx, job, PinInOrder(4)); err != nil {
		t.Fatal(err)
	}
	if st := m.CacheStats(); st.Results != 0 {
		t.Errorf("results were cached despite LoadDrift: stats %+v", st)
	}
	for _, err := range m.Sweep(ctx, job, UserSettableSpace(), nil) {
		if err == nil || !strings.Contains(err.Error(), "LoadDrift") {
			t.Errorf("sweep under LoadDrift yielded %v, want a descriptive rejection", err)
		}
		break
	}
}
