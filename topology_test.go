package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"math"
	"strings"
	"testing"
)

func twoChips() Topology { return Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2} }

// imbalancedJob builds n ranks alternating light/heavy loads.
func imbalancedJob(n int, light, heavy int64) Job {
	job := Job{Name: "topo-test"}
	for r := 0; r < n; r++ {
		load := light
		if r%2 == 1 {
			load = heavy
		}
		job.Ranks = append(job.Ranks, []Phase{Compute("fpu", load), Barrier()})
	}
	return job
}

func TestTopologyAccessors(t *testing.T) {
	var zero Topology
	if zero.Contexts() != 4 || zero.Cores() != 2 || zero.String() != "1x2x2" {
		t.Errorf("zero topology = %d contexts, %d cores, %q; want the 1x2x2 default",
			zero.Contexts(), zero.Cores(), zero.String())
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero topology invalid: %v", err)
	}
	if got := twoChips().Contexts(); got != 8 {
		t.Errorf("2x2x2 has %d contexts, want 8", got)
	}
	if _, err := ParseTopology("2x2x2"); err != nil {
		t.Errorf("ParseTopology(2x2x2): %v", err)
	}
	if _, err := ParseTopology("2x2x4"); err == nil {
		t.Error("ParseTopology accepted 4-way SMT")
	}
	cpu, err := twoChips().CPUOf(1, 1, 1)
	if err != nil || cpu != 7 {
		t.Errorf("CPUOf(1,1,1) = %d, %v; want 7", cpu, err)
	}
	chip, core, ctx := twoChips().Locate(6)
	if chip != 1 || core != 1 || ctx != 0 {
		t.Errorf("Locate(6) = (%d,%d,%d), want (1,1,0)", chip, core, ctx)
	}
}

// TestPinInOrderTooManyRanks is the regression test for the descriptive
// error: pinning more ranks than the machine has contexts must fail up
// front with an error naming the topology, not deep in the simulator.
func TestPinInOrderTooManyRanks(t *testing.T) {
	// Run-time validation against the default topology.
	_, err := Run(imbalancedJob(6, 1000, 2000), PinInOrder(6), &Options{NoOSNoise: true})
	if err == nil {
		t.Fatal("6 ranks on the 4-context default topology accepted")
	}
	for _, want := range []string{"1x2x2", "4 hardware contexts", "Options.Topology"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// Eager validation via the topology-aware constructor.
	if _, err := DefaultTopology().PinInOrder(6); err == nil {
		t.Fatal("Topology.PinInOrder(6) on 1x2x2 accepted")
	} else if !strings.Contains(err.Error(), "PinInOrder(6)") {
		t.Errorf("error %q does not name the call", err)
	}
	// The same 6 ranks fit a 2-chip machine.
	pl, err := twoChips().PinInOrder(6)
	if err != nil {
		t.Fatalf("Topology.PinInOrder(6) on 2x2x2: %v", err)
	}
	if len(pl.CPU) != 6 || pl.CPU[5] != 5 {
		t.Fatalf("unexpected placement %+v", pl)
	}
}

// TestEightRankJobOnTwoChips runs an 8-rank job end-to-end through the
// public API on a 2×2×2 topology and checks the machine coordinates.
func TestEightRankJobOnTwoChips(t *testing.T) {
	topo := twoChips()
	job := imbalancedJob(8, 10000, 40000)
	pl, err := topo.PinInOrder(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(job, pl, &Options{Topology: topo, NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 8 || res.Cycles <= 0 {
		t.Fatalf("unexpected result: %d ranks, %d cycles", len(res.Ranks), res.Cycles)
	}
	for r, rr := range res.Ranks {
		if rr.Chip != r/4 || rr.Core != r/2 {
			t.Errorf("rank %d at chip %d core %d, want chip %d core %d", r, rr.Chip, rr.Core, r/4, r/2)
		}
	}

	// Balancing via the topology-aware planner must beat pin-in-order.
	works := make([]float64, 8)
	for r := range works {
		works[r] = 10000
		if r%2 == 1 {
			works[r] = 40000
		}
	}
	bal, err := topo.SuggestPlacement(works)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(job, bal, &Options{Topology: topo, NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cycles >= res.Cycles {
		t.Errorf("SuggestPlacement on 2 chips did not help: %d >= %d cycles", tuned.Cycles, res.Cycles)
	}
}

// TestSuggestPlacementTooManyRanks mirrors the PinInOrder regression for
// the planner.
func TestSuggestPlacementTooManyRanks(t *testing.T) {
	if _, err := SuggestPlacement([]float64{1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("6 works on the default 2-core topology accepted")
	}
	if _, err := twoChips().SuggestPlacement([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Errorf("6 works on 4 cores rejected: %v", err)
	}
}

func TestParsePlacement(t *testing.T) {
	topo := twoChips()
	pl, err := ParsePlacement(topo, "0.0.0@4, 0.0.1@6, 1.1.0, 1.1.1@2")
	if err != nil {
		t.Fatal(err)
	}
	wantCPU := []int{0, 1, 6, 7}
	wantPrio := []Priority{4, 6, 4, 2}
	for i := range wantCPU {
		if pl.CPU[i] != wantCPU[i] || pl.Priority[i] != wantPrio[i] {
			t.Fatalf("entry %d = (cpu %d, prio %d), want (%d, %d)",
				i, pl.CPU[i], pl.Priority[i], wantCPU[i], wantPrio[i])
		}
	}
	for _, bad := range []string{
		"",            // empty
		"0.0",         // not a triple
		"2.0.0",       // chip out of range
		"0.2.0",       // core out of range
		"0.0.2",       // context out of range
		"0.0.0@9",     // invalid priority
		"0.0.0@x",     // non-numeric priority
		"a.b.c",       // non-numeric triple
		"0.0.0,0.0.0", // double pin
	} {
		if _, err := ParsePlacement(topo, bad); err == nil {
			t.Errorf("ParsePlacement accepted %q", bad)
		}
	}
	// A parsed placement runs.
	pl2, err := ParsePlacement(Topology{}, "0.0.0,0.0.1@6,0.1.0,0.1.1@6")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(imbalancedJob(4, 5000, 20000), pl2, &Options{NoOSNoise: true}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepOnTwoChips sweeps a 4-rank job over the 2-chip space through
// the public API: the space doubles (pairs packed vs spread), and the
// ranking stays deterministic across worker counts.
func TestSweepOnTwoChips(t *testing.T) {
	job := imbalancedJob(4, 4000, 16000)
	sp := Space{Priorities: []Priority{PriorityMedium, PriorityHigh}}
	run := func(workers int) *SweepResult {
		res, err := Sweep(job, sp, &SweepOptions{
			Workers: workers,
			Run:     &Options{Topology: twoChips(), NoOSNoise: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if want := 3 * 2 * 16; serial.Evaluated != want {
		t.Fatalf("2-chip space evaluated %d configurations, want %d", serial.Evaluated, want)
	}
	parallel := run(4)
	for i := range serial.Entries {
		a, b := serial.Entries[i], parallel.Entries[i]
		if a.Cycles != b.Cycles || a.Score != b.Score {
			t.Fatalf("entry %d differs between worker counts", i)
		}
	}
	best, err := serial.Best()
	if err != nil {
		t.Fatal(err)
	}
	if max := twoChips().Contexts(); len(best.Placement.CPU) != 4 {
		t.Fatalf("best placement has %d CPUs, want 4 (contexts available: %d)", len(best.Placement.CPU), max)
	}
}

// TestDecodeShareInvariants is the per-core property the whole mechanism
// rests on: for every priority pair the two decode shares are exchanged
// under argument swap, and (for the normal arbitrated modes, both
// priorities >= 2) they partition the core's decode cycles exactly.
func TestDecodeShareInvariants(t *testing.T) {
	for a := Priority(0); a < 8; a++ {
		for b := Priority(0); b < 8; b++ {
			sa, sb, err := DecodeShare(a, b)
			if err != nil {
				t.Fatalf("DecodeShare(%d,%d): %v", a, b, err)
			}
			rb, ra, err := DecodeShare(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if sa != ra || sb != rb {
				t.Errorf("DecodeShare(%d,%d) = (%.4f, %.4f) but swapped gives (%.4f, %.4f)",
					a, b, sa, sb, ra, rb)
			}
			if sa < 0 || sb < 0 || sa > 1 || sb > 1 {
				t.Errorf("DecodeShare(%d,%d) outside [0,1]: %.4f, %.4f", a, b, sa, sb)
			}
			if a >= 2 && b >= 2 && a < 7 && b < 7 {
				if math.Abs(sa+sb-1) > 1e-12 {
					t.Errorf("DecodeShare(%d,%d) shares sum to %.6f, want 1", a, b, sa+sb)
				}
				// R = 2^(|a-b|+1): the favored thread gets (R-1)/R.
				d := int(a) - int(b)
				if d < 0 {
					d = -d
				}
				if d > 0 {
					r := math.Pow(2, float64(d+1))
					hi := sa
					if sb > sa {
						hi = sb
					}
					if math.Abs(hi-(r-1)/r) > 1e-12 {
						t.Errorf("DecodeShare(%d,%d) favored share %.6f, want (R-1)/R = %.6f", a, b, hi, (r-1)/r)
					}
				}
			}
		}
	}
	if _, _, err := DecodeShare(Priority(8), PriorityMedium); err == nil {
		t.Error("DecodeShare accepted priority 8")
	}
}

// TestPartialTopologyRejected is the regression test for the partially-
// specified Options.Topology: it must produce a descriptive error, not
// a zero-context machine (or a divide-by-zero in the error path).
func TestPartialTopologyRejected(t *testing.T) {
	_, err := Run(imbalancedJob(2, 1000, 2000), PinInOrder(1), &Options{Topology: Topology{Chips: 2}})
	if err == nil {
		t.Fatal("partial topology {Chips: 2} accepted")
	}
	if !strings.Contains(err.Error(), "Options.Topology") {
		t.Errorf("error %q does not name Options.Topology", err)
	}
}

// TestFixPairingPinsCoresOnMultiChip is the regression test for the
// FixPairing contract on larger machines: with ranks pre-placed, only
// priorities may move — the sweep must not re-spread the pairs across
// chips.
func TestFixPairingPinsCoresOnMultiChip(t *testing.T) {
	job := imbalancedJob(4, 2000, 8000)
	sp := Space{Priorities: []Priority{PriorityMedium, PriorityHigh}, FixPairing: true}
	res, err := Sweep(job, sp, &SweepOptions{
		Workers: 1,
		Run:     &Options{Topology: twoChips(), NoOSNoise: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 16; res.Evaluated != want { // 1 pairing × 1 core map × 2^4
		t.Fatalf("fixed-pairing 2-chip space evaluated %d configurations, want %d", res.Evaluated, want)
	}
	for _, e := range res.Entries {
		for r, cpu := range e.Placement.CPU {
			if cpu != r {
				t.Fatalf("FixPairing moved rank %d to CPU %d: %v", r, cpu, e.Placement.CPU)
			}
		}
	}
}
