package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"fmt"
	"strings"
	"testing"
)

// failingWriter fails with a fixed error after passing through n bytes.
type failingWriter struct {
	n   int
	err error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.err == nil {
		w.err = fmt.Errorf("disk full")
	}
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// smallResult runs a tiny deterministic job for the trace writer tests.
func smallResult(t *testing.T) *Result {
	t.Helper()
	res, err := Run(sweepTestJob(1500, 6000), PinInOrder(4), &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteTraceCSV(t *testing.T) {
	res := smallResult(t)
	var b strings.Builder
	if err := res.WriteTraceCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "rank,state,from,to" {
		t.Errorf("trace CSV header = %q", lines[0])
	}
	if len(lines) < 5 { // at least one interval per rank
		t.Fatalf("trace CSV has only %d lines", len(lines))
	}
	for i, ln := range lines[1:] {
		if n := len(strings.Split(ln, ",")); n != 4 {
			t.Errorf("row %d has %d fields: %q", i+1, n, ln)
		}
	}
}

func TestWriteTraceCSVErrorPropagation(t *testing.T) {
	res := smallResult(t)
	var full strings.Builder
	if err := res.WriteTraceCSV(&full); err != nil {
		t.Fatal(err)
	}
	// Fail on the header itself, then at later cut-offs strictly inside
	// the output: the writer's error must surface each time.
	for _, cut := range []int{0, 5, full.Len() / 2, full.Len() - 1} {
		w := &failingWriter{n: cut}
		if err := res.WriteTraceCSV(w); err == nil {
			t.Errorf("WriteTraceCSV with writer failing after %d bytes returned nil", cut)
		} else if !strings.Contains(err.Error(), "disk full") {
			t.Errorf("WriteTraceCSV lost the writer's error: %v", err)
		}
	}
}

func TestWriteParaver(t *testing.T) {
	res := smallResult(t)
	var b strings.Builder
	if err := res.WriteParaver(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.HasPrefix(lines[0], "#Paraver") {
		t.Errorf("PRV header = %q", lines[0])
	}
	for i, ln := range lines[1:] {
		if !strings.HasPrefix(ln, "1:") || len(strings.Split(ln, ":")) != 8 {
			t.Errorf("PRV record %d malformed: %q", i+1, ln)
		}
	}
}

func TestWriteParaverErrorPropagation(t *testing.T) {
	res := smallResult(t)
	for _, cut := range []int{0, 10, 100} {
		w := &failingWriter{n: cut}
		if err := res.WriteParaver(w); err == nil {
			t.Errorf("WriteParaver with writer failing after %d bytes returned nil", cut)
		} else if !strings.Contains(err.Error(), "disk full") {
			t.Errorf("WriteParaver lost the writer's error: %v", err)
		}
	}
}

func TestSweepWriteCSVFormatting(t *testing.T) {
	res, err := Sweep(sweepTestJob(1500, 6000), Space{FixPairing: true,
		Priorities: []Priority{PriorityMedium, PriorityHigh}}, &SweepOptions{Top: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "rank,cpus,priorities,cycles,seconds,imbalance_pct,score" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	for i, ln := range lines[1:] {
		fields := strings.Split(ln, ",")
		if len(fields) != 7 {
			t.Fatalf("row %d has %d fields: %q", i+1, len(fields), ln)
		}
		if fields[0] != fmt.Sprint(i+1) {
			t.Errorf("row %d numbered %q", i+1, fields[0])
		}
		if len(strings.Fields(fields[1])) != 4 || len(strings.Fields(fields[2])) != 4 {
			t.Errorf("row %d cpus/priorities not space-joined 4-lists: %q", i+1, ln)
		}
	}

	// Error propagation: header write, then mid-row cut-offs.
	for _, cut := range []int{0, 10, 60} {
		w := &failingWriter{n: cut}
		if err := res.WriteCSV(w); err == nil {
			t.Errorf("WriteCSV with writer failing after %d bytes returned nil", cut)
		} else if !strings.Contains(err.Error(), "disk full") {
			t.Errorf("WriteCSV lost the writer's error: %v", err)
		}
	}
}
