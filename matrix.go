package smtbalance

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"strings"
	"sync"
)

// MatrixSpec describes an evaluation matrix: every policy evaluated on
// every scenario on every topology.  The paper compares balancers on a
// handful of hand-built cases; the matrix is that comparison
// industrialized — "characterize any balancer on any imbalance shape".
//
//mtlint:cachekey matrix
type MatrixSpec struct {
	// Scenarios is the imbalance-shape axis (at least one).
	Scenarios []Scenario
	// Policies is the balancer axis (at least one).  Every policy must
	// implement PolicyBinder (cell evaluation fans policies through the
	// sweep pool, so each run needs a fresh bound instance) and policy
	// identities must be distinct.  If no policy has identity "static",
	// StaticPolicy is prepended automatically: it is the control every
	// cell's speedups are normalized against.
	Policies []Policy
	// Topologies is the machine axis; nil means the default 1×2×2.
	Topologies []Topology
}

// MatrixOptions tunes an evaluation.
type MatrixOptions struct {
	// Workers caps concurrent simulator runs within a cell; 0 means one
	// per CPU, 1 forces serial evaluation.  Results are identical for
	// every value.
	Workers int
	// Screen is forwarded to each cell's SweepOptions.Screen.  Today's
	// cells sweep a single fixed placement per policy (FixPairing at
	// medium priority), so a shortlist always covers the whole space and
	// screening cannot change any entry — which is also why the knob is
	// safely absent from matrixCellKey; it exists so callers (the serve
	// API, mtbalance matrix -screen) can thread one screening setting
	// through uniformly, and so future multi-point cells inherit it.
	Screen int
	// Progress, if set, observes cell completions with (done, total)
	// cell counts.
	Progress func(done, total int)
}

// MatrixEntry is one (topology, scenario, policy) evaluation.
type MatrixEntry struct {
	// Topology is the cell's topology string ("1x2x2").
	Topology string
	// Scenario is the cell's canonical ScenarioID.
	Scenario string
	// Policy is the entry's canonical PolicyID.
	Policy string
	// Cycles, Seconds and ImbalancePct are the run's metrics, with the
	// job pinned in order at medium priority — the pure policy
	// comparison, where only online balancing differentiates entries.
	Cycles int64
	// Seconds is the run's simulated wall-clock time.
	Seconds float64
	// ImbalancePct is the paper's max-sync-% imbalance metric.
	ImbalancePct float64
	// Speedup is the entry's score: the cell's StaticPolicy execution
	// time divided by this entry's.  Normalizing every cell against its
	// own static control makes the score comparable across scenarios
	// and topologies — 1.1 means "this policy beats no-balancing by 10%
	// here", whatever the cell's absolute scale.  The static entry
	// itself scores exactly 1.
	Speedup float64
}

// MatrixResult is a finished evaluation matrix.
type MatrixResult struct {
	// Entries holds one entry per (topology, scenario, policy), in spec
	// order — topology-major, then scenario, then policy — so the
	// rendering is deterministic whatever the worker count.
	Entries []MatrixEntry
	// Cells counts the (topology, scenario) cells evaluated.
	Cells int
}

// WriteCSV writes the matrix with a header row:
// topology,scenario,policy,cycles,seconds,imbalance_pct,speedup_vs_static.
// Scenario and policy identities contain commas, so both columns are
// RFC 4180-quoted.
func (r *MatrixResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "topology,scenario,policy,cycles,seconds,imbalance_pct,speedup_vs_static"); err != nil {
		return err
	}
	for _, e := range r.Entries {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%d,%.9f,%.4f,%.6f\n",
			e.Topology, csvQuote(e.Scenario), csvQuote(e.Policy),
			e.Cycles, e.Seconds, e.ImbalancePct, e.Speedup)
		if err != nil {
			return err
		}
	}
	return nil
}

// csvQuote renders a field RFC 4180-quoted (inner quotes doubled).
func csvQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Matrix is a reusable evaluation-matrix engine: it owns one Machine
// per topology it has seen (each with its own result cache) and a
// scenario-aware cell cache, so re-evaluating an overlapping spec — a
// service answering repeated matrix requests, a sweep extended by one
// more policy list — replays finished cells from memory.  A Matrix is
// safe for concurrent use.
//
// Both stores are bounded with FIFO eviction, like the Machine result
// cache: a long-lived server answering matrix requests with ever-new
// scenario parameters or topologies must plateau, not grow without
// bound.  Eviction only costs a re-evaluation, never correctness.
type Matrix struct {
	mu        sync.Mutex
	machines  map[Topology]*Machine      //mtlint:guardedby mu
	machOrder []Topology                 //mtlint:guardedby mu
	cells     map[cacheKey][]MatrixEntry //mtlint:guardedby mu
	cellOrder []cacheKey                 //mtlint:guardedby mu
	hits      int64                      //mtlint:guardedby mu
	misses    int64                      //mtlint:guardedby mu

	// flights coalesces identical in-flight cells: two concurrent
	// requests for the same (topology, scenario, policies) cell share
	// one evaluation (the underlying per-point runs coalesce through
	// the Machine cache's own singleflight as well).
	//
	//mtlint:unguarded flightGroup synchronizes itself; leaders publish outside mx.mu
	flights flightGroup[[]MatrixEntry]
}

// Engine bounds: a machine holds a full result cache (potentially tens
// of MB of traces), a cell a handful of entries.
const (
	matrixMachineCap = 16
	matrixCellCap    = 1024
)

// NewMatrix returns an empty engine.
func NewMatrix() *Matrix {
	return &Matrix{
		machines: make(map[Topology]*Machine),
		cells:    make(map[cacheKey][]MatrixEntry),
	}
}

// CellStats reports the engine's cell-cache counters: cells served from
// memory, cells evaluated, and cells currently held.
func (mx *Matrix) CellStats() (hits, misses int64, cells int) {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	return mx.hits, mx.misses, len(mx.cells)
}

// machine returns (building if needed) the engine's Machine for a
// topology.
func (mx *Matrix) machine(topo Topology) (*Machine, error) {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if m, ok := mx.machines[topo]; ok {
		return m, nil
	}
	m, err := NewMachine(&Options{Topology: topo})
	if err != nil {
		return nil, err
	}
	if len(mx.machines) >= matrixMachineCap {
		evict := mx.machOrder[0]
		mx.machOrder = mx.machOrder[1:]
		delete(mx.machines, evict)
	}
	mx.machines[topo] = m
	mx.machOrder = append(mx.machOrder, topo)
	return m, nil
}

// putCell stores a finished cell, evicting the oldest past the cap.
func (mx *Matrix) putCell(key cacheKey, entries []MatrixEntry) {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if _, ok := mx.cells[key]; ok {
		return
	}
	if len(mx.cells) >= matrixCellCap {
		evict := mx.cellOrder[0]
		mx.cellOrder = mx.cellOrder[1:]
		delete(mx.cells, evict)
	}
	mx.cells[key] = entries
	mx.cellOrder = append(mx.cellOrder, key)
}

// resolveSpec validates the spec and returns the effective policy list
// (static control first when it had to be added) and topology list —
// the identities matrixCellKey then hashes, so every MatrixSpec axis
// flows into the cell key through here.
//
//mtlint:cachekey-hasher matrix
func resolveSpec(spec MatrixSpec) ([]Policy, []Topology, error) {
	if len(spec.Scenarios) == 0 {
		return nil, nil, fmt.Errorf("smtbalance: MatrixSpec.Scenarios is empty; ParseScenario(\"uniform\") is the minimal axis")
	}
	for i, sc := range spec.Scenarios {
		if sc == nil {
			return nil, nil, fmt.Errorf("smtbalance: MatrixSpec.Scenarios[%d] is nil", i)
		}
	}
	if len(spec.Policies) == 0 {
		return nil, nil, fmt.Errorf("smtbalance: MatrixSpec.Policies is empty; StaticPolicy{} is the minimal axis")
	}
	pols := make([]Policy, 0, len(spec.Policies)+1)
	seen := make(map[string]bool)
	hasStatic := false
	for i, pol := range spec.Policies {
		if pol == nil {
			return nil, nil, fmt.Errorf("smtbalance: MatrixSpec.Policies[%d] is nil; use StaticPolicy{} for the no-balancing control", i)
		}
		id := PolicyID(pol)
		if seen[id] {
			return nil, nil, fmt.Errorf("smtbalance: duplicate policy %q in MatrixSpec.Policies", id)
		}
		seen[id] = true
		if id == PolicyID(StaticPolicy{}) {
			hasStatic = true
		}
		pols = append(pols, pol)
	}
	if !hasStatic {
		pols = append([]Policy{StaticPolicy{}}, pols...)
	}
	topos := spec.Topologies
	if len(topos) == 0 {
		topos = []Topology{DefaultTopology()}
	}
	norm := make([]Topology, len(topos))
	for i, t := range topos {
		norm[i] = t.normalized()
		if err := norm[i].Validate(); err != nil {
			return nil, nil, fmt.Errorf("smtbalance: MatrixSpec.Topologies[%d]: %w", i, err)
		}
	}
	return pols, norm, nil
}

// evalCell evaluates one (topology, scenario) cell: every policy over
// the scenario's job, pinned in order at medium priority, fanned
// through the sweep worker pool, scored against the static control.
func (mx *Matrix) evalCell(ctx context.Context, topo Topology, sc Scenario, pols []Policy, workers, screen int) ([]MatrixEntry, error) {
	m, err := mx.machine(topo)
	if err != nil {
		return nil, err
	}
	job, err := sc.Job(topo)
	if err != nil {
		return nil, err
	}
	sw, err := m.SweepAll(ctx, job, Space{
		FixPairing: true,
		Priorities: []Priority{PriorityMedium},
		Policies:   pols,
	}, &SweepOptions{Workers: workers, Screen: screen})
	if err != nil {
		return nil, fmt.Errorf("smtbalance: matrix cell (%s, %s): %w", topo, ScenarioID(sc), err)
	}
	byPolicy := make(map[string]SweepEntry, len(sw.Entries))
	for _, e := range sw.Entries {
		byPolicy[e.Policy] = e
	}
	static, ok := byPolicy[PolicyID(StaticPolicy{})]
	if !ok {
		return nil, fmt.Errorf("smtbalance: matrix cell (%s, %s): sweep returned no static control", topo, ScenarioID(sc))
	}
	entries := make([]MatrixEntry, 0, len(pols))
	for _, pol := range pols {
		e, ok := byPolicy[PolicyID(pol)]
		if !ok {
			return nil, fmt.Errorf("smtbalance: matrix cell (%s, %s): policy %q missing from sweep ranking", topo, ScenarioID(sc), PolicyID(pol))
		}
		entries = append(entries, MatrixEntry{
			Topology:     topo.String(),
			Scenario:     ScenarioID(sc),
			Policy:       e.Policy,
			Cycles:       e.Cycles,
			Seconds:      e.Seconds,
			ImbalancePct: e.ImbalancePct,
			Speedup:      float64(static.Cycles) / float64(e.Cycles),
		})
	}
	return entries, nil
}

// cell returns one (topology, scenario) cell's entries through the
// engine's tiering: the cell cache, then the singleflight group (an
// identical concurrent request shares the one evaluation in progress —
// counted as a hit, since no fresh evaluation ran for it), then a real
// evaluation.  A leader's cancellation is not inherited by a live
// follower, which retries as the new leader.
func (mx *Matrix) cell(ctx context.Context, key cacheKey, topo Topology, sc Scenario, pols []Policy, workers, screen int) ([]MatrixEntry, error) {
	for {
		mx.mu.Lock()
		entries, cached := mx.cells[key]
		if cached {
			mx.hits++
		} else {
			mx.misses++
		}
		mx.mu.Unlock()
		if cached {
			return entries, nil
		}
		f, leader := mx.flights.join(key)
		if !leader {
			select {
			case <-f.done:
				if f.err == nil {
					mx.mu.Lock()
					// The miss counted above was served without a fresh
					// evaluation after all; reclassify it as a hit.
					mx.misses--
					mx.hits++
					mx.mu.Unlock()
					return f.val, nil
				}
				if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
					return nil, f.err
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		entries, err := mx.evalCell(ctx, topo, sc, pols, workers, screen)
		if err == nil {
			mx.putCell(key, entries)
		}
		mx.flights.forget(key)
		f.publish(entries, err)
		return entries, err
	}
}

// Eval evaluates the matrix and streams its entries as an iterator of
// (entry, error) pairs, in spec order (topology-major, then scenario,
// then policy — the static control first when it was added implicitly).
// Entries stream cell by cell as each (topology, scenario) cell
// finishes; cells replayed from the engine's cache stream immediately.
// On error the iterator yields exactly one (MatrixEntry{}, err) pair;
// cancelling ctx aborts the evaluation promptly.
func (mx *Matrix) Eval(ctx context.Context, spec MatrixSpec, opts *MatrixOptions) iter.Seq2[MatrixEntry, error] {
	return func(yield func(MatrixEntry, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		if opts == nil {
			opts = &MatrixOptions{}
		}
		pols, topos, err := resolveSpec(spec)
		if err != nil {
			yield(MatrixEntry{}, err)
			return
		}
		polIDs := make([]string, len(pols))
		for i, pol := range pols {
			polIDs[i] = PolicyID(pol)
		}
		total := len(topos) * len(spec.Scenarios)
		done := 0
		for _, topo := range topos {
			for _, sc := range spec.Scenarios {
				key := matrixCellKey(topo, ScenarioID(sc), polIDs)
				entries, err := mx.cell(ctx, key, topo, sc, pols, opts.Workers, opts.Screen)
				if err != nil {
					yield(MatrixEntry{}, err)
					return
				}
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				for _, e := range entries {
					if !yield(e, nil) {
						return
					}
				}
			}
		}
	}
}

// EvalAll is Eval collected into a MatrixResult.
func (mx *Matrix) EvalAll(ctx context.Context, spec MatrixSpec, opts *MatrixOptions) (*MatrixResult, error) {
	out := &MatrixResult{}
	for e, err := range mx.Eval(ctx, spec, opts) {
		if err != nil {
			return nil, err
		}
		out.Entries = append(out.Entries, e)
	}
	topos := len(spec.Topologies)
	if topos == 0 {
		topos = 1
	}
	out.Cells = topos * len(spec.Scenarios)
	return out, nil
}

// defaultMatrix backs the package-level EvalMatrix wrappers so repeated
// evaluations share one engine (and its caches) process-wide.
var defaultMatrix = sync.OnceValue(NewMatrix)

// EvalMatrix evaluates the matrix on a shared package-level engine and
// streams its entries; see Matrix.Eval.  Callers wanting an isolated
// cell cache (or control over its lifetime) should hold their own
// engine via NewMatrix.
func EvalMatrix(ctx context.Context, spec MatrixSpec, opts *MatrixOptions) iter.Seq2[MatrixEntry, error] {
	return defaultMatrix().Eval(ctx, spec, opts)
}

// EvalMatrixAll is EvalMatrix collected into a MatrixResult.
func EvalMatrixAll(ctx context.Context, spec MatrixSpec, opts *MatrixOptions) (*MatrixResult, error) {
	return defaultMatrix().EvalAll(ctx, spec, opts)
}
