package smtbalance

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sweep"
)

// TestKeyRingFIFO pins the ring's queue discipline and its growth
// contract (geometric, reusable slots).
func TestKeyRingFIFO(t *testing.T) {
	var r keyRing
	for i := 0; i < 100; i++ {
		r.push(cacheKey{byte(i)})
	}
	if r.len() != 100 {
		t.Fatalf("len = %d, want 100", r.len())
	}
	for i := 0; i < 100; i++ {
		if k := r.pop(); k != (cacheKey{byte(i)}) {
			t.Fatalf("pop %d returned key %v, not FIFO", i, k[0])
		}
	}
	if r.len() != 0 {
		t.Errorf("drained ring has len %d", r.len())
	}
	defer func() {
		if recover() == nil {
			t.Error("pop from empty ring did not panic")
		}
	}()
	r.pop()
}

// TestRunCacheEvictionBounded is the regression test for the FIFO
// eviction leak: the old implementation re-sliced its order queue
// (order = order[1:]), so every evicted key's slot stayed reachable
// from the backing array and a long-running server's queue grew without
// bound.  The ring must stay within one doubling of the cap no matter
// how many entries pass through.
func TestRunCacheEvictionBounded(t *testing.T) {
	c := newResultCache()
	c.runCap = 8
	c.metCap = 8
	for i := 0; i < 10_000; i++ {
		var k cacheKey
		k[0], k[1], k[2] = byte(i), byte(i>>8), byte(i>>16)
		c.putRun(k, &Result{Cycles: int64(i)})
		c.putMetrics(k, sweep.Metrics{Cycles: int64(i)})
	}
	if got := len(c.runs); got != 8 {
		t.Errorf("run layer holds %d entries, cap 8", got)
	}
	if got := len(c.mets); got != 8 {
		t.Errorf("metrics layer holds %d entries, cap 8", got)
	}
	if got := len(c.runOrder.buf); got > 16 {
		t.Errorf("run eviction queue backing array grew to %d slots for cap 8", got)
	}
	if got := len(c.metOrder.buf); got > 16 {
		t.Errorf("metrics eviction queue backing array grew to %d slots for cap 8", got)
	}
	// FIFO: the survivors are exactly the 8 newest keys.
	for i := 10_000 - 8; i < 10_000; i++ {
		var k cacheKey
		k[0], k[1], k[2] = byte(i), byte(i>>8), byte(i>>16)
		if _, ok := c.runs[k]; !ok {
			t.Errorf("recent key %d evicted before older ones", i)
		}
	}
}

// TestResultCacheConcurrent hammers one cache from many goroutines with
// overlapping keys under tiny caps — the invariants (entry counts at or
// below cap, hit+miss bookkeeping) must hold and the race detector must
// stay quiet.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache()
	c.runCap = 4
	c.metCap = 4
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var k cacheKey
				k[0] = byte((g + i) % 16)
				if _, ok := c.getRun(k); !ok {
					c.putRun(k, &Result{Cycles: int64(i)})
				}
				if i%100 == 0 && g == 0 {
					c.clear()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.stats()
	if st.Results > 4 || st.Metrics > 4 {
		t.Errorf("caps violated: %+v", st)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, 8*500)
	}
}

// bindCountingPolicy counts how many simulations actually bind it —
// Bind runs exactly once per real simulator execution, never for cache
// hits or coalesced followers — making it a precise probe for the
// singleflight guarantee.
type bindCountingPolicy struct{ binds *atomic.Int64 }

func (p bindCountingPolicy) Name() string                            { return "bindcount" }
func (p bindCountingPolicy) Params() map[string]string               { return nil }
func (p bindCountingPolicy) Observe(IterationStats) []PriorityAction { return nil }
func (p bindCountingPolicy) Bind(topo Topology, pl Placement) Policy {
	p.binds.Add(1)
	return p
}

// TestRunPolicyCoalescesIdenticalRuns is the machine-level singleflight
// proof: N identical concurrent runs on a cold cache must execute
// exactly one simulation, and every caller must get the same result.
func TestRunPolicyCoalescesIdenticalRuns(t *testing.T) {
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Name: "herd", Ranks: [][]Phase{
		{Compute("fpu", 120_000), Barrier()},
		{Compute("fpu", 480_000), Barrier()},
		{Compute("fpu", 120_000), Barrier()},
		{Compute("fpu", 480_000), Barrier()},
	}}
	pl, err := m.Topology().PinInOrder(4)
	if err != nil {
		t.Fatal(err)
	}
	var binds atomic.Int64
	pol := bindCountingPolicy{binds: &binds}

	const herd = 8
	results := make([]*Result, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := m.RunPolicy(context.Background(), job, pl, pol)
			if err != nil {
				t.Errorf("herd run %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if got := binds.Load(); got != 1 {
		t.Errorf("herd of %d bound the policy %d times, want exactly 1 simulation", herd, got)
	}
	st := m.CacheStats()
	if sims := st.Misses - st.Coalesced - st.DiskHits; sims != 1 {
		t.Errorf("cache says %d simulations ran (stats %+v), want 1", sims, st)
	}
	for i := 1; i < herd; i++ {
		if results[i] == nil || results[0] == nil {
			continue // already reported
		}
		if results[i].Cycles != results[0].Cycles || !reflect.DeepEqual(results[i].Ranks, results[0].Ranks) {
			t.Errorf("herd result %d differs from result 0", i)
		}
		if results[i] == results[0] || &results[i].Ranks[0] == &results[0].Ranks[0] {
			t.Errorf("herd results %d and 0 share mutable memory", i)
		}
	}
}

// TestUseDiskCacheRoundTrip persists a run through the disk tier and
// revives it on a fresh machine: the revived result must be
// indistinguishable — numerically bit-equal, trace included — and cost
// zero simulations.
func TestUseDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	job := Job{Name: "disk", Ranks: [][]Phase{
		{Compute("fpu", 3000), Barrier(), Compute("l1", 2000), Barrier()},
		{Compute("fpu", 12000), Barrier(), Compute("l1", 8000), Barrier()},
		{Compute("fpu", 3000), Barrier(), Compute("l1", 2000), Barrier()},
		{Compute("fpu", 12000), Barrier(), Compute("l1", 8000), Barrier()},
	}}

	m1, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.UseDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	pl, err := m1.Topology().PinInOrder(4)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m1.Run(context.Background(), job, pl)
	if err != nil {
		t.Fatal(err)
	}
	if st := m1.CacheStats(); st.DiskWrites == 0 {
		t.Fatalf("run wrote nothing to the disk tier: %+v", st)
	}

	m2, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.UseDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	revived, err := m2.Run(context.Background(), job, pl)
	if err != nil {
		t.Fatal(err)
	}
	if revived.Cycles != first.Cycles || revived.Seconds != first.Seconds ||
		revived.ImbalancePct != first.ImbalancePct || revived.Iterations != first.Iterations ||
		revived.SkippedCycles != first.SkippedCycles {
		t.Errorf("revived result differs:\n%+v\nvs\n%+v", revived, first)
	}
	if !reflect.DeepEqual(revived.Ranks, first.Ranks) {
		t.Errorf("revived ranks differ:\n%+v\nvs\n%+v", revived.Ranks, first.Ranks)
	}
	if revived.Timeline(72) != first.Timeline(72) {
		t.Errorf("revived trace renders differently:\n%s\nvs\n%s", revived.Timeline(72), first.Timeline(72))
	}
	st := m2.CacheStats()
	if st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1 (%+v)", st.DiskHits, st)
	}
	if sims := st.Misses - st.Coalesced - st.DiskHits; sims != 0 {
		t.Errorf("revival executed %d simulations, want 0 (%+v)", sims, st)
	}

	// ClearCache drops memory only: a third lookup revives from disk
	// again rather than re-simulating.
	m2.ClearCache()
	if _, err := m2.Run(context.Background(), job, pl); err != nil {
		t.Fatal(err)
	}
	if st := m2.CacheStats(); st.DiskHits != 2 {
		t.Errorf("post-clear lookup did not revive from disk: %+v", st)
	}
}

// TestSweepSharesDiskCache runs the same sweep on two machines sharing
// one cache directory: the second must rank identically while reviving
// every point from disk.
func TestSweepSharesDiskCache(t *testing.T) {
	dir := t.TempDir()
	job := Job{Ranks: [][]Phase{
		{Compute("fpu", 2000), Barrier()},
		{Compute("fpu", 8000), Barrier()},
		{Compute("fpu", 2000), Barrier()},
		{Compute("fpu", 8000), Barrier()},
	}}
	space := Space{Priorities: []Priority{4, 6}, FixPairing: true}

	sweepOn := func() (*SweepResult, CacheStats) {
		m, err := NewMachine(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.UseDiskCache(dir); err != nil {
			t.Fatal(err)
		}
		res, err := m.SweepAll(context.Background(), job, space, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, m.CacheStats()
	}

	first, st1 := sweepOn()
	if st1.DiskWrites == 0 {
		t.Fatalf("sweep wrote nothing to disk: %+v", st1)
	}
	second, st2 := sweepOn()
	if !reflect.DeepEqual(second.Entries, first.Entries) {
		t.Errorf("disk-revived sweep ranks differently:\n%+v\nvs\n%+v", second.Entries, first.Entries)
	}
	if st2.DiskHits != int64(second.Evaluated) {
		t.Errorf("second sweep revived %d of %d points from disk (%+v)", st2.DiskHits, second.Evaluated, st2)
	}
	if sims := st2.Misses - st2.Coalesced - st2.DiskHits; sims != 0 {
		t.Errorf("second sweep executed %d simulations, want 0 (%+v)", sims, st2)
	}
}

// TestDiskCacheCorruptRecordDegrades truncates a persisted record and
// checks the cache degrades to a re-simulation instead of serving (or
// choking on) garbage.
func TestDiskCacheCorruptRecordDegrades(t *testing.T) {
	dir := t.TempDir()
	job := Job{Ranks: [][]Phase{
		{Compute("fpu", 3000), Barrier()},
		{Compute("fpu", 9000), Barrier()},
	}}
	m1, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.UseDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	pl, err := m1.Topology().PinInOrder(2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m1.Run(context.Background(), job, pl)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every run record in place.
	corrupted := 0
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, "-run.json") {
			corrupted++
			return os.WriteFile(path, []byte(`{"seconds": "not a number"`), 0o644)
		}
		return nil
	})
	if err != nil || corrupted == 0 {
		t.Fatalf("corrupted %d records, err %v", corrupted, err)
	}

	m2, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.UseDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	again, err := m2.Run(context.Background(), job, pl)
	if err != nil {
		t.Fatalf("corrupt record broke the run: %v", err)
	}
	if again.Cycles != first.Cycles {
		t.Errorf("re-simulated result differs: %d vs %d cycles", again.Cycles, first.Cycles)
	}
	st := m2.CacheStats()
	if st.DiskHits != 0 {
		t.Errorf("corrupt record counted as a disk hit: %+v", st)
	}
	if sims := st.Misses - st.Coalesced - st.DiskHits; sims != 1 {
		t.Errorf("corrupt record should force exactly 1 simulation, got %d (%+v)", sims, st)
	}
}

// TestUseDiskCacheRejectsBadDir pins the error path: an unusable
// directory must fail loudly at attach time, not silently degrade.
func TestUseDiskCacheRejectsBadDir(t *testing.T) {
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UseDiskCache(""); err == nil {
		t.Error("UseDiskCache(\"\") succeeded")
	}
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.UseDiskCache(file); err == nil {
		t.Error("UseDiskCache over a regular file succeeded")
	}
}

// TestEncodeResultRequiresTrace pins the persistence guard: a result
// without its trace cannot round-trip and must not be persisted.
func TestEncodeResultRequiresTrace(t *testing.T) {
	if _, ok := encodeResult(&Result{Cycles: 1}); ok {
		t.Error("traceless result claimed to be persistable")
	}
}

// TestDecodeResultRejectsGarbage pins decode's failure modes: syntax
// errors and structurally invalid traces both surface as errors.
func TestDecodeResultRejectsGarbage(t *testing.T) {
	if _, err := decodeResult([]byte(`{`)); err == nil {
		t.Error("bad JSON decoded")
	}
	// Valid JSON, impossible trace: an interval past the recorded end.
	bad := `{"seconds": 1, "cycles": 10, "ranks": [], "trace_end": 5, "trace": [[{"s": 1, "f": 0, "t": 9}]]}`
	if _, err := decodeResult([]byte(bad)); err == nil {
		t.Error("out-of-range trace decoded")
	}
	if _, err := decodeMetrics([]byte(`[`)); err == nil {
		t.Error("bad metrics JSON decoded")
	}
}

// TestFlightGroupPublishOnce pins the flight protocol: one leader per
// key, followers share the published value, forget makes the key fresh.
func TestFlightGroupPublishOnce(t *testing.T) {
	var g flightGroup[int]
	k := cacheKey{1}
	f, leader := g.join(k)
	if !leader {
		t.Fatal("first join was not the leader")
	}
	f2, leader2 := g.join(k)
	if leader2 || f2 != f {
		t.Fatal("second join did not follow the leader's flight")
	}
	done := make(chan int)
	go func() {
		<-f2.done
		done <- f2.val
	}()
	g.forget(k)
	f.publish(42, nil)
	if got := <-done; got != 42 {
		t.Fatalf("follower saw %d, want 42", got)
	}
	if _, leader3 := g.join(k); !leader3 {
		t.Fatal("join after forget did not start a fresh flight")
	}
}
