package smtbalance

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"iter"
	"sync"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/sweep"
)

// Machine is a reusable handle on one simulated machine and its
// simulation environment: the paper's iterative profile → re-place →
// re-prioritize workflow runs many configurations against the same
// (topology, options) pair, and Machine is the object that owns that
// pair.  It is safe for concurrent use — the simulator is pure, so
// concurrent Run/Sweep/Optimize calls share nothing but the result
// cache — and every method takes a context, cancelling promptly (the
// simulator checks the context at least once per million simulated
// cycles).
//
// Because the simulator is deterministic, the Machine memoizes results:
// a canonical hash of (topology, options, job, placement) keys a bounded
// in-memory cache, so repeated configurations — a sweep resumed under a
// different objective, Optimize re-running its winner, identical service
// requests — are served from memory.  CacheStats reports the hit rate.
//
// The package-level Run, Sweep and OptimizePlacement free functions are
// deprecated thin wrappers over a shared default Machine.
type Machine struct {
	opts  Options
	cache *resultCache
}

// NewMachine builds a Machine from the simulation options (nil means the
// paper's environment: the default 1×2×2 topology, patched kernel, warm
// caches).  The options are copied; later mutation of opts does not
// affect the Machine.  Options.OnIteration, if set, disables result
// caching for Run calls (the callback must observe every iteration), and
// is rejected by Sweep as before.  Options.Policy attaches a balancing
// policy to every run — including sweeps and Optimize, whose whole space
// then evaluates under it; RunPolicy overrides it per call, and sweeps
// over several policies use Space.Policies on a policy-less machine.
func NewMachine(opts *Options) (*Machine, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.Topology = o.Topology.normalized()
	if err := o.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("smtbalance: invalid Options.Topology: %w", err)
	}
	if _, err := o.resolvePolicy(); err != nil {
		return nil, err
	}
	return &Machine{opts: o, cache: newResultCache()}, nil
}

// defaultMachine backs the deprecated package-level wrappers for calls
// with default options, so their repeated configurations share one cache.
var defaultMachine = sync.OnceValue(func() *Machine {
	m, err := NewMachine(nil)
	if err != nil {
		panic(err)
	}
	return m
})

// machineFor resolves the wrapper-level *Options to a Machine: nil
// options share the package's default Machine (and its cache); any
// explicit options get a transient Machine of their own.  Only nil maps
// to the shared machine — inspecting opts field-by-field would silently
// misroute any Options field added later.
func machineFor(opts *Options) (*Machine, error) {
	if opts == nil {
		return defaultMachine(), nil
	}
	return NewMachine(opts)
}

// Topology returns the machine's (normalized) topology.
func (m *Machine) Topology() Topology { return m.opts.Topology }

// Options returns a copy of the machine's simulation options.
func (m *Machine) Options() Options { return m.opts }

// CacheStats returns the machine's result-cache counters.
func (m *Machine) CacheStats() CacheStats { return m.cache.stats() }

// ClearCache drops every cached result and metric (the hit/miss
// counters survive).  Long-lived services can call it to release the
// memory held by cached traces; correctness never depends on the cache.
// The persistent disk tier, if attached, is left untouched — dropped
// entries are revived from it on demand.
func (m *Machine) ClearCache() { m.cache.clear() }

// UseDiskCache attaches a persistent, content-addressed disk tier under
// the machine's in-memory result cache, rooted at dir: results and
// sweep metrics are persisted as they are computed, and cache misses
// consult the disk before simulating — so warm results survive process
// restarts, and any number of replicas pointed at one shared directory
// (local disk, NFS) serve each other's work.  Records are keyed by the
// same canonical SHA-256 hashes as the in-memory tier and stored under
// a version subdirectory, so a cache-key format change simply starts a
// fresh tree.  Disk IO is strictly best-effort: read or decode failures
// degrade to re-simulation, never to request failures.
//
// Attach the tier right after NewMachine, before serving traffic; a nil
// or failed attach leaves the machine purely in-memory.
func (m *Machine) UseDiskCache(dir string) error {
	store, err := diskcache.Open(dir, diskVersion)
	if err != nil {
		return fmt.Errorf("smtbalance: %w", err)
	}
	m.cache.setDisk(store)
	return nil
}

// ctxErrOf maps a simulator error caused by ctx's cancellation back to
// the bare ctx.Err(), so callers can compare against it directly.
func ctxErrOf(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
		return cerr
	}
	return err
}

// Run executes the job under the placement on this machine, with the
// machine's configured balancing policy (Options.Policy, or the
// deprecated DynamicBalance knob) attached.  Identical (job, placement,
// policy) runs are served from the result cache unless
// Options.OnIteration is set.  Cancelling ctx aborts the simulation
// promptly with ctx.Err().
func (m *Machine) Run(ctx context.Context, job Job, pl Placement) (*Result, error) {
	pol, err := m.opts.resolvePolicy()
	if err != nil {
		return nil, err
	}
	return m.runPolicy(ctx, job, pl, pol)
}

// RunPolicy is Run with an explicit balancing policy, overriding the
// machine's configured one for this call (nil runs without a policy).
// It is the per-request form the serve API and policy sweeps use: one
// Machine, one cache, many policies.
func (m *Machine) RunPolicy(ctx context.Context, job Job, pl Placement, pol Policy) (*Result, error) {
	return m.runPolicy(ctx, job, pl, pol)
}

// runPolicy executes one run under an already-resolved policy.
//
// Cacheable runs go through the full tiering: the in-memory cache, then
// the singleflight group (identical concurrent requests share one
// computation), then — for the flight's leader — the disk tier, and
// only then the simulator.  A leader's failure is published to its
// followers, but a follower whose own context is still live retries
// rather than inheriting the leader's cancellation.
func (m *Machine) runPolicy(ctx context.Context, job Job, pl Placement, pol Policy) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := pl.validate(m.opts.Topology); err != nil {
		return nil, err
	}
	cacheable := m.opts.OnIteration == nil && m.opts.LoadDrift == nil && policyCacheable(pol)
	if !cacheable {
		res, err := runSim(ctx, job, pl, &m.opts, pol)
		if err != nil {
			return nil, ctxErrOf(ctx, err)
		}
		return res, nil
	}
	key := placementKey(envJobKey(m.opts.Topology, m.opts, pol, job), pl.CPU, prioInts(pl.Priority))
	for {
		if res, ok := m.cache.getRun(key); ok {
			return res, nil
		}
		f, leader := m.cache.runFlights.join(key)
		if !leader {
			m.cache.noteCoalesced()
			select {
			case <-f.done:
				if f.err == nil {
					return f.val.clone(), nil
				}
				if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
					return nil, f.err // deterministic failure: re-running would fail too
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue // the leader was cancelled, we were not: retry
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := m.leadRun(ctx, key, job, pl, pol)
		m.cache.runFlights.forget(key)
		if err != nil {
			f.publish(nil, err)
			return nil, err
		}
		// Followers get a private copy: the leader's caller owns res and
		// may mutate it, while f.val must stay immutable under their
		// concurrent clones.
		f.publish(res.clone(), nil)
		return res, nil
	}
}

// leadRun computes one cacheable run as a flight leader: disk tier
// first, simulator second, both tiers updated on the way out.
func (m *Machine) leadRun(ctx context.Context, key cacheKey, job Job, pl Placement, pol Policy) (*Result, error) {
	if res, ok := m.cache.getRunDisk(key); ok {
		m.cache.putRun(key, res)
		return res, nil
	}
	res, err := runSim(ctx, job, pl, &m.opts, pol)
	if err != nil {
		return nil, ctxErrOf(ctx, err)
	}
	m.cache.putRun(key, res)
	m.cache.putRunDisk(key, res)
	return res, nil
}

// prioInts converts a priority slice for hashing.
func prioInts(ps []Priority) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = int(p)
	}
	return out
}

// validateSweepJob checks a sweep's rank count against the machine's
// topology up front, in every path, with the same descriptive error
// style Placement.validate uses.
func validateSweepJob(job Job, t Topology) error {
	n := len(job.Ranks)
	if n == 0 {
		return fmt.Errorf("smtbalance: sweep job %q has no ranks", job.Name)
	}
	if n%2 != 0 {
		return fmt.Errorf("smtbalance: sweep needs an even rank count (ranks pair on SMT cores), got %d; add a rank or drop one", n)
	}
	if n > t.Contexts() {
		return fmt.Errorf("smtbalance: sweep job has %d ranks, but the %s topology has only %d hardware contexts; grow Options.Topology (e.g. Chips: %d) or shrink the job",
			n, t, t.Contexts(), (n+t.CoresPerChip*t.SMTWays-1)/(t.CoresPerChip*t.SMTWays))
	}
	return nil
}

// sweepAll evaluates the whole space — the cross product of the
// placement × priority points with Space.Policies, when set — and
// returns the final ranking.
func (m *Machine) sweepAll(ctx context.Context, job Job, space Space, opts *SweepOptions) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts == nil {
		opts = &SweepOptions{}
	}
	if opts.Run != nil {
		return nil, fmt.Errorf("smtbalance: SweepOptions.Run must be nil for Machine sweeps; the Machine fixes the environment (build a second Machine instead)")
	}
	if m.opts.DynamicBalance || m.opts.OnIteration != nil {
		return nil, fmt.Errorf("smtbalance: the deprecated DynamicBalance knob and OnIteration are not supported in sweeps; set Options.Policy or list policies in Space.Policies")
	}
	if m.opts.LoadDrift != nil {
		return nil, fmt.Errorf("smtbalance: Options.LoadDrift is not supported in sweeps; precompute the drift into the job (e.g. a phaseshift Scenario) so every point runs the same program")
	}
	if err := validateSweepJob(job, m.opts.Topology); err != nil {
		return nil, err
	}
	pols := space.Policies
	if m.opts.Policy != nil {
		// A machine-level policy is the environment: every point runs
		// under it (so Optimize works on a policy machine).  Ranking
		// several policies needs a policy-less machine, where the axis
		// belongs to the space.
		if len(pols) > 0 {
			return nil, fmt.Errorf("smtbalance: the machine already fixes policy %q; Space.Policies must be empty (use a policy-less Machine to rank policies)", PolicyID(m.opts.Policy))
		}
		pols = []Policy{m.opts.Policy}
	}
	for i, pol := range pols {
		if pol == nil {
			return nil, fmt.Errorf("smtbalance: Space.Policies[%d] is nil; use StaticPolicy{} for the no-balancing control", i)
		}
		if _, ok := pol.(PolicyBinder); !ok {
			return nil, fmt.Errorf("smtbalance: policy %q does not implement PolicyBinder; sweep runs execute concurrently and need a fresh per-run instance", PolicyID(pol))
		}
	}
	if len(pols) == 0 {
		pols = []Policy{nil} // today's policy-less sweep, byte-identical
	}
	n := len(job.Ranks)
	sp := sweep.Space{Topology: m.opts.Topology.inner()}
	if space.FixPairing {
		pairing := make(sweep.Pairing, 0, n/2)
		for c := 0; c < n/2; c++ {
			pairing = append(pairing, [2]int{2 * c, 2*c + 1})
		}
		sp.Pairings = []sweep.Pairing{pairing}
		// Only priorities may move: pin the core map to the identity
		// instead of letting a multi-chip topology re-spread the pairs.
		sp.Assignments = [][]int{nil}
	}
	for _, p := range space.Priorities {
		if !p.Valid() {
			return nil, fmt.Errorf("smtbalance: invalid priority %d in space", p)
		}
		sp.Alphabet = append(sp.Alphabet, hwpri.Priority(p))
	}
	points, err := sweep.Enumerate(n, sp)
	if err != nil {
		return nil, err
	}

	// Two-level screening: rank the points with the analytical cost
	// predictor and keep only the predicted frontier (plus guard band)
	// for simulation.  The shortlist stays in enumeration order, so the
	// fine level's tie-breaking matches the exhaustive sweep's, and the
	// surviving points run through the very same caching RunFn below —
	// identical cache keys, identical metrics.  With a policy axis the
	// placement points are screened once (the predictor is policy-blind:
	// policies act online, on top of whatever placement they are given)
	// and the shortlist is evaluated under every policy.
	if opts.Screen < 0 {
		return nil, fmt.Errorf("smtbalance: SweepOptions.Screen must be >= 0, got %d", opts.Screen)
	}
	screened := 0
	if opts.Screen > 0 {
		shortlist := sweep.Screen(job.inner(), points, m.opts.Topology.inner(),
			opts.Screen, sweep.GuardBand(len(points)), core.DefaultModel())
		if len(shortlist) < len(points) {
			screened = len(points) - len(shortlist)
			kept := make([]sweep.Point, len(shortlist))
			for i, pi := range shortlist {
				kept[i] = points[pi]
			}
			points = kept
		}
	}

	// Fan the whole policy × placement × priority cross product through
	// one worker pool: point i under policy p is combined index
	// p*len(points)+i, so a small point space still parallelizes across
	// policies, scores normalize against the global fastest run, and
	// the engine's total order (Score, Cycles, Index) ranks the merged
	// space deterministically — policy order is the outer tiebreak.
	combined := points
	if len(pols) > 1 {
		// The policy axis multiplies the space, so the enumeration cap
		// must hold for the product, not just the point count.
		if len(points) > sweep.MaxSpacePoints/len(pols) {
			return nil, fmt.Errorf("smtbalance: %d placement points × %d policies exceeds the %d-configuration sweep cap; shrink the space (FixPairing, smaller alphabet) or the policy list",
				len(points), len(pols), sweep.MaxSpacePoints)
		}
		combined = make([]sweep.Point, 0, len(points)*len(pols))
		for range pols {
			combined = append(combined, points...)
		}
	}
	polIDs := make([]string, len(pols))
	bases := make([][sha256.Size]byte, len(pols))
	for i, pol := range pols {
		polIDs[i] = PolicyID(pol)
		bases[i] = envJobKey(m.opts.Topology, m.opts, pol, job)
	}
	res, err := sweep.SweepCtx(ctx, job.inner(), combined, sweep.Options{
		Workers:    opts.Workers,
		Top:        opts.Top,
		Objective:  opts.Objective.inner(),
		Config:     m.opts.simConfig(),
		OnProgress: opts.Progress,
		RunFn: func(ctx context.Context, idx int, ijob *mpisim.Job, ipl mpisim.Placement, cfg mpisim.Config) (sweep.Metrics, error) {
			pol := pols[idx/len(points)]
			prios := make([]int, len(ipl.Prio))
			for i, p := range ipl.Prio {
				prios[i] = int(p)
			}
			key := placementKey(bases[idx/len(points)], ipl.CPU, prios)
			for {
				if met, ok := m.cache.getMetrics(key); ok {
					return met, nil
				}
				// Coalesce across concurrent sweeps (and matrix cells,
				// which evaluate through this same path): identical
				// in-flight points share one simulation.
				f, leader := m.cache.metFlights.join(key)
				if !leader {
					m.cache.noteCoalesced()
					select {
					case <-f.done:
						if f.err == nil {
							return f.val, nil
						}
						if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
							return sweep.Metrics{}, f.err
						}
						if err := ctx.Err(); err != nil {
							return sweep.Metrics{}, err
						}
						continue
					case <-ctx.Done():
						return sweep.Metrics{}, ctx.Err()
					}
				}
				met, err := m.leadPoint(ctx, key, pol, ijob, ipl, cfg)
				m.cache.metFlights.forget(key)
				f.publish(met, err)
				return met, err
			}
		},
	})
	if err != nil {
		return nil, ctxErrOf(ctx, err)
	}
	if res.Failed > 0 {
		// Fail loudly whatever the Top truncation kept: a failed run
		// means the budget or space is wrong for this job, and a
		// ranking that silently omits configurations is worse than no
		// ranking.
		return nil, fmt.Errorf("smtbalance: %d of %d sweep configurations failed: %w",
			res.Failed, res.Evaluated, res.FirstErr)
	}
	out := &SweepResult{
		Evaluated: res.Evaluated,
		Screened:  screened * len(pols),
		Workers:   sweep.PoolSize(res.Evaluated, opts.Workers),
	}
	for _, rr := range res.Ranked {
		ipl := rr.Point.Placement()
		pl := Placement{CPU: ipl.CPU}
		for _, p := range ipl.Prio {
			pl.Priority = append(pl.Priority, Priority(p))
		}
		entry := SweepEntry{
			Placement:    pl,
			Policy:       polIDs[rr.Index/len(points)],
			Cycles:       rr.Metrics.Cycles,
			Seconds:      rr.Metrics.Seconds,
			ImbalancePct: rr.Metrics.ImbalancePct,
			Score:        rr.Score,
		}
		out.Entries = append(out.Entries, entry)
	}
	return out, nil
}

// leadPoint computes one sweep point as its flight's leader: disk tier
// first, simulator second.
func (m *Machine) leadPoint(ctx context.Context, key cacheKey, pol Policy, ijob *mpisim.Job, ipl mpisim.Placement, cfg mpisim.Config) (sweep.Metrics, error) {
	if met, ok := m.cache.getMetricsDisk(key); ok {
		m.cache.putMetrics(key, met)
		return met, nil
	}
	if pol != nil {
		// Attach a fresh policy instance to this run's private config
		// copy; the hook applies the policy's actions through the
		// simulated procfs.
		pl := Placement{CPU: ipl.CPU}
		for _, p := range ipl.Prio {
			pl.Priority = append(pl.Priority, Priority(p))
		}
		policyHook(&cfg, pol, m.opts.Topology, pl, nil)
	}
	r, err := mpisim.RunCtx(ctx, ijob, ipl, cfg)
	if err != nil {
		return sweep.Metrics{}, err
	}
	met := sweep.Metrics{Cycles: r.Cycles, Seconds: r.Seconds, ImbalancePct: r.Imbalance}
	m.cache.putMetrics(key, met)
	m.cache.putMetricsDisk(key, met)
	return met, nil
}

// Sweep evaluates every configuration of the space under the job and
// streams the ranking as an iterator of (entry, error) pairs, best
// configuration first.  The space is evaluated across the worker pool on
// the first pull; opts.Progress (if set) observes the evaluation as it
// runs with (evaluated, total) counts.  Scores are normalized against
// the sweep-wide fastest run, so entries necessarily stream only after
// evaluation completes — but the iterator may be abandoned at any point
// (break), and cancelling ctx aborts the evaluation promptly, yielding
// exactly one (SweepEntry{}, ctx.Err()) pair.
//
// SweepOptions.Run must be nil: the Machine fixes the environment.
func (m *Machine) Sweep(ctx context.Context, job Job, space Space, opts *SweepOptions) iter.Seq2[SweepEntry, error] {
	return func(yield func(SweepEntry, error) bool) {
		res, err := m.sweepAll(ctx, job, space, opts)
		if err != nil {
			yield(SweepEntry{}, err)
			return
		}
		for _, e := range res.Entries {
			if !yield(e, nil) {
				return
			}
		}
	}
}

// SweepAll is Sweep collected into a SweepResult — the form the
// deprecated package-level Sweep wrapper returns.
func (m *Machine) SweepAll(ctx context.Context, job Job, space Space, opts *SweepOptions) (*SweepResult, error) {
	return m.sweepAll(ctx, job, space, opts)
}

// Optimize searches the OS-settable placement × priority space of this
// machine for the configuration optimizing the objective and returns it
// with its full Result — the automated version of the by-hand search
// behind the paper's Tables IV-VI.  The winner's re-run (for the trace
// the sweep does not keep) executes under the machine's own options, and
// is served from the result cache when the configuration was run before.
// An optional single SweepOptions argument tunes the search (Workers,
// Progress, and Screen for the two-level coarse → fine search); its Top
// and Objective are overridden, and Run must be nil as in every Machine
// sweep.
func (m *Machine) Optimize(ctx context.Context, job Job, objective Objective, opts ...*SweepOptions) (Placement, *Result, error) {
	if len(opts) > 1 {
		return Placement{}, nil, fmt.Errorf("smtbalance: Optimize takes at most one SweepOptions, got %d", len(opts))
	}
	var so SweepOptions
	if len(opts) == 1 && opts[0] != nil {
		so = *opts[0]
	}
	so.Top = 1
	so.Objective = objective
	sw, err := m.sweepAll(ctx, job, OSSettableSpace(), &so)
	if err != nil {
		return Placement{}, nil, err
	}
	best, err := sw.Best()
	if err != nil {
		return Placement{}, nil, err
	}
	res, err := m.Run(ctx, job, best.Placement)
	if err != nil {
		return Placement{}, nil, err
	}
	return best.Placement, res, nil
}

// NewScenarioSession generates the scenario's job for this machine's
// topology and opens a Session on it — the one-liner connecting the
// scenario generator to the paper's iterative profile → re-place →
// retune loop:
//
//	sc, _ := smtbalance.ParseScenario("ramp,skew=3")
//	s, _ := m.NewScenarioSession(sc)
//	res, _ := s.Balance(ctx, &smtbalance.FeedbackPolicy{})
func (m *Machine) NewScenarioSession(sc Scenario) (*Session, error) {
	if sc == nil {
		return nil, fmt.Errorf("smtbalance: nil scenario")
	}
	job, err := sc.Job(m.opts.Topology)
	if err != nil {
		return nil, err
	}
	return m.NewSession(job), nil
}

// Session binds one job to a Machine for the paper's iterative workflow:
// profile a placement, look at the result, derive a better placement,
// run again — Tables IV-VI were found exactly this way, by hand.  The
// session remembers the last completed run so SuggestFromLast can turn
// the observed per-rank compute shares into the next placement to try.
// A Session is safe for concurrent use, though the "last result" is then
// whichever run finished most recently.
type Session struct {
	m   *Machine //mtlint:unguarded set at construction, read-only afterwards
	job Job      //mtlint:unguarded set at construction, read-only afterwards

	mu   sync.Mutex
	last *Result //mtlint:guardedby mu
}

// NewSession opens a session for the job on this machine.
func (m *Machine) NewSession(job Job) *Session { return &Session{m: m, job: job} }

// Machine returns the session's machine.
func (s *Session) Machine() *Machine { return s.m }

// Job returns the session's job.
func (s *Session) Job() Job { return s.job }

// Run executes the session's job under the placement and records the
// result as the session's last run.
func (s *Session) Run(ctx context.Context, pl Placement) (*Result, error) {
	res, err := s.m.Run(ctx, s.job, pl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.last = res
	s.mu.Unlock()
	return res, nil
}

// Last returns the session's most recent successful Run or Optimize
// result, or nil if none completed yet.
func (s *Session) Last() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Sweep streams the ranking of the space for the session's job.
func (s *Session) Sweep(ctx context.Context, space Space, opts *SweepOptions) iter.Seq2[SweepEntry, error] {
	return s.m.Sweep(ctx, s.job, space, opts)
}

// Optimize searches the OS-settable space for the session's job and
// records the winner's result as the session's last run.
func (s *Session) Optimize(ctx context.Context, objective Objective) (Placement, *Result, error) {
	pl, res, err := s.m.Optimize(ctx, s.job, objective)
	if err != nil {
		return Placement{}, nil, err
	}
	s.mu.Lock()
	s.last = res
	s.mu.Unlock()
	return pl, res, nil
}

// Balance runs the paper's iterative profile → re-place → retune loop
// in one call, with an online balancing policy closing the loop: if the
// session has no completed run yet, the job is first profiled pinned in
// order at medium priority (the paper's Case A); the observed per-rank
// compute shares then become the static placement SuggestFromLast
// derives; and the job runs under that placement with pol attached,
// retuning priorities online as the load shifts.  The run is recorded as
// the session's last result, so calling Balance again iterates the
// loop on fresher profiles.  A nil policy runs the static plan alone.
func (s *Session) Balance(ctx context.Context, pol Policy) (*Result, error) {
	if s.Last() == nil {
		pl, err := s.m.opts.Topology.PinInOrder(len(s.job.Ranks))
		if err != nil {
			return nil, err
		}
		if _, err := s.Run(ctx, pl); err != nil {
			return nil, err
		}
	}
	pl, err := s.SuggestFromLast()
	if err != nil {
		return nil, err
	}
	res, err := s.m.RunPolicy(ctx, s.job, pl, pol)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.last = res
	s.mu.Unlock()
	return res, nil
}

// SuggestFromLast derives the next placement to try from the last run:
// each rank's share of time spent computing is the work estimate the
// paper's authors read off their profiles, and the topology's placement
// planner turns those estimates into a pairing and priority plan.  The
// session knows its job, so the plan is communication-aware
// (SuggestPlacementForJob): on multi-chip machines tightly coupled
// ranks are kept off the cross-chip fabric.  The estimates are scaled
// to observed compute cycles (share × run cycles) — a common factor
// that leaves the priority plan untouched but makes them comparable to
// the predictor's communication term.  It errors if no run has
// completed yet.
func (s *Session) SuggestFromLast() (Placement, error) {
	last := s.Last()
	if last == nil {
		return Placement{}, fmt.Errorf("smtbalance: session has no completed run to profile; call Run first")
	}
	works := make([]float64, len(last.Ranks))
	for i, r := range last.Ranks {
		works[i] = r.ComputePct / 100 * float64(last.Cycles)
	}
	return s.m.opts.Topology.SuggestPlacementForJob(s.job, works)
}
