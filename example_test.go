package smtbalance_test

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"fmt"
	"log"

	smtbalance "repro"
)

// The decode-cycle shares of Table II: a priority difference of 2 gives
// the favored thread 7 of every 8 decode cycles.
func ExampleDecodeShare() {
	a, b, err := smtbalance.DecodeShare(smtbalance.PriorityHigh, smtbalance.PriorityMedium)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("high vs medium: %.3f / %.3f\n", a, b)
	a, b, _ = smtbalance.DecodeShare(smtbalance.PriorityHigh, smtbalance.PriorityLow)
	fmt.Printf("high vs low:    %.4f / %.4f\n", a, b)
	// Output:
	// high vs medium: 0.875 / 0.125
	// high vs low:    0.9688 / 0.0312
}

// Only priorities 2-4 are reachable from user space; the paper patches
// the kernel to expose 1, 5 and 6 through /proc/<pid>/hmt_priority.
func ExampleUserSettable() {
	fmt.Println(smtbalance.UserSettable(smtbalance.PriorityMedium))
	fmt.Println(smtbalance.UserSettable(smtbalance.PriorityHigh))
	fmt.Println(smtbalance.OSSettable(smtbalance.PriorityHigh))
	// Output:
	// true
	// false
	// true
}

// Balancing an imbalanced job: favoring the heavy rank of each core
// shortens the run and shrinks the imbalance metric.
func ExampleRun() {
	job := smtbalance.Job{Name: "demo", Ranks: [][]smtbalance.Phase{
		{smtbalance.Compute("fpu", 20_000), smtbalance.Barrier()},
		{smtbalance.Compute("fpu", 90_000), smtbalance.Barrier()},
		{smtbalance.Compute("fpu", 20_000), smtbalance.Barrier()},
		{smtbalance.Compute("fpu", 90_000), smtbalance.Barrier()},
	}}
	opts := &smtbalance.Options{NoOSNoise: true}
	base, err := smtbalance.Run(job, smtbalance.PinInOrder(4), opts)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := smtbalance.Run(job, smtbalance.Placement{
		CPU: []int{0, 1, 2, 3},
		Priority: []smtbalance.Priority{
			smtbalance.PriorityMedium, smtbalance.PriorityHigh,
			smtbalance.PriorityMedium, smtbalance.PriorityHigh,
		},
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("balancing helped:", tuned.Cycles < base.Cycles)
	fmt.Println("imbalance reduced:", tuned.ImbalancePct < base.ImbalancePct)
	// Output:
	// balancing helped: true
	// imbalance reduced: true
}

// The static planner pairs heavy with light ranks and picks priorities
// from the decode-share model — the paper's hand procedure, automated.
func ExampleSuggestPlacement() {
	pl, err := smtbalance.SuggestPlacement([]float64{18, 24, 67, 100})
	if err != nil {
		log.Fatal(err)
	}
	for r := range pl.CPU {
		fmt.Printf("rank %d -> cpu %d, priority %v\n", r, pl.CPU[r], pl.Priority[r])
	}
	// Output:
	// rank 0 -> cpu 1, priority medium
	// rank 1 -> cpu 3, priority medium
	// rank 2 -> cpu 2, priority medium-high
	// rank 3 -> cpu 0, priority medium-high
}
