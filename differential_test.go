package smtbalance

import (
	"reflect"
	"strconv"
	"testing"
)

// The differential harness runs every registered policy against a seed
// set of scenarios — one per built-in shape, at reduced scale — and
// asserts the invariants no balancing policy may break, as table-driven
// subtests: policy × scenario, each independently addressable with
// -run 'TestDifferential.*/dyn/step'.

// diffSeedSpecs is the harness's scenario set.
func diffSeedSpecs() []string {
	return []string{
		"uniform,base=5000,iters=4",
		"ramp,base=5000,iters=4,skew=4",
		"step,base=5000,iters=4,skew=5",
		"phaseshift,base=5000,iters=6,period=2",
		"bursty,base=5000,iters=4,amp=3,seed=7",
		"bimodal,base=5000,iters=4",
	}
}

// diffPolicies resolves every registered policy by name, exactly as a
// user's -policy flag would.
func diffPolicies(t *testing.T) map[string]Policy {
	t.Helper()
	out := make(map[string]Policy)
	for _, name := range Policies() {
		pol, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("registered policy %q does not parse: %v", name, err)
		}
		out[name] = pol
	}
	return out
}

// shortScenarioName extracts the shape name for subtest labels.
func shortScenarioName(spec string) string {
	for i := range spec {
		if spec[i] == ',' {
			return spec[:i]
		}
	}
	return spec
}

// StaticPolicy emits no actions: a static run's cycles and moves equal
// a policy-less run's, on every scenario.
func TestDifferentialStaticEmitsNoActions(t *testing.T) {
	topo := DefaultTopology()
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range diffSeedSpecs() {
		t.Run(shortScenarioName(spec), func(t *testing.T) {
			job, err := mustScenarioJob(t, spec, topo)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := topo.PinInOrder(len(job.Ranks))
			if err != nil {
				t.Fatal(err)
			}
			bare, err := m.RunPolicy(t.Context(), job, pl, nil)
			if err != nil {
				t.Fatal(err)
			}
			static, err := m.RunPolicy(t.Context(), job, pl, StaticPolicy{})
			if err != nil {
				t.Fatal(err)
			}
			if static.BalancerMoves != 0 {
				t.Errorf("static policy applied %d moves", static.BalancerMoves)
			}
			if static.Cycles != bare.Cycles {
				t.Errorf("static run took %d cycles, policy-less run %d", static.Cycles, bare.Cycles)
			}
		})
	}
}

// Every policy respects its own maxdiff bound: driving a bound instance
// with the stats streams real runs produce, the pairwise priority
// difference it requests never exceeds Params()["maxdiff"], and every
// requested priority is OS-settable (the procfs path cannot grant more).
func TestDifferentialPoliciesRespectMaxDiff(t *testing.T) {
	topo := DefaultTopology()
	for name, pol := range diffPolicies(t) {
		binder, ok := pol.(PolicyBinder)
		if !ok {
			t.Errorf("registered policy %q does not implement PolicyBinder", name)
			continue
		}
		maxDiff := 4 // architectural ceiling when the policy has no maxdiff param
		if s, ok := pol.Params()["maxdiff"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				t.Fatalf("%s: bad maxdiff param %q", name, s)
			}
			maxDiff = v
		}
		for _, spec := range diffSeedSpecs() {
			t.Run(name+"/"+shortScenarioName(spec), func(t *testing.T) {
				job, err := mustScenarioJob(t, spec, topo)
				if err != nil {
					t.Fatal(err)
				}
				n := len(job.Ranks)
				pl, err := topo.PinInOrder(n)
				if err != nil {
					t.Fatal(err)
				}
				// Record the stats stream of a real run under the policy.
				var stream []IterationStats
				mObs, err := NewMachine(&Options{OnIteration: func(st IterationStats) {
					cp := st
					cp.ComputeCycles = append([]int64(nil), st.ComputeCycles...)
					cp.ArrivalCycle = append([]int64(nil), st.ArrivalCycle...)
					stream = append(stream, cp)
				}, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := mObs.Run(t.Context(), job, pl); err != nil {
					t.Fatal(err)
				}
				if len(stream) == 0 {
					t.Fatal("run produced no iterations")
				}
				// Re-drive a fresh bound instance with the recorded stream
				// and audit every action it requests.
				bound := binder.Bind(topo, pl)
				prio := append([]Priority(nil), pl.Priority...)
				for _, st := range stream {
					for _, act := range bound.Observe(st) {
						if act.Rank < 0 || act.Rank >= n {
							t.Fatalf("action names rank %d of %d", act.Rank, n)
						}
						if !OSSettable(act.Priority) {
							t.Fatalf("action asks for priority %d, outside the OS-settable range", act.Priority)
						}
						prio[act.Rank] = act.Priority
					}
					for c := 0; c < n/2; c++ {
						a, b := prio[2*c], prio[2*c+1]
						d := int(a) - int(b)
						if d < 0 {
							d = -d
						}
						if d > maxDiff {
							t.Fatalf("core %d pair at priorities %d/%d: difference %d exceeds maxdiff %d",
								c, a, b, d, maxDiff)
						}
					}
				}
			})
		}
	}
}

// VanillaKernel disarms every policy: without the paper's procfs patch
// no action can land, so a vanilla run under any policy is cycle-
// identical to the vanilla static run — the paper's own argument for
// the kernel patch, now an invariant.
func TestDifferentialVanillaKernelDisarms(t *testing.T) {
	topo := DefaultTopology()
	job, err := mustScenarioJob(t, "step,base=5000,iters=4,skew=5", topo)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := topo.PinInOrder(len(job.Ranks))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(&Options{VanillaKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.RunPolicy(t.Context(), job, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, pol := range diffPolicies(t) {
		t.Run(name, func(t *testing.T) {
			res, err := m.RunPolicy(t.Context(), job, pl, pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.BalancerMoves != 0 {
				t.Errorf("policy %q moved %d priorities through a vanilla kernel", name, res.BalancerMoves)
			}
			if res.Cycles != base.Cycles {
				t.Errorf("policy %q changed a vanilla run: %d cycles vs %d", name, res.Cycles, base.Cycles)
			}
		})
	}
}

// Policy-axis sweep results are worker-count deterministic on every
// seed scenario.
func TestDifferentialSweepWorkerDeterminism(t *testing.T) {
	topo := DefaultTopology()
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	pols := func() []Policy {
		return []Policy{StaticPolicy{}, &PaperDynamic{}, &HierarchicalPolicy{}, &FeedbackPolicy{}}
	}
	for _, spec := range []string{"step,base=5000,iters=4,skew=5", "phaseshift,base=5000,iters=6"} {
		t.Run(shortScenarioName(spec), func(t *testing.T) {
			job, err := mustScenarioJob(t, spec, topo)
			if err != nil {
				t.Fatal(err)
			}
			space := Space{FixPairing: true, Priorities: []Priority{PriorityMedium}, Policies: pols()}
			serial, err := m.SweepAll(t.Context(), job, space, &SweepOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := m.SweepAll(t.Context(), job, space, &SweepOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Entries, pooled.Entries) {
				t.Errorf("sweep ranking differs across worker counts:\nserial: %+v\npooled: %+v",
					serial.Entries, pooled.Entries)
			}
		})
	}
}

// Scenario generation and the full policy evaluation are seed-
// deterministic end to end: the same bursty seed reproduces the same
// result bit for bit, a different seed does not.
func TestDifferentialSeedDeterminism(t *testing.T) {
	topo := DefaultTopology()
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed string) *Result {
		job, err := mustScenarioJob(t, "bursty,base=5000,iters=4,seed="+seed, topo)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := topo.PinInOrder(len(job.Ranks))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunPolicy(t.Context(), job, pl, &PaperDynamic{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run("41"), run("41"), run("42")
	if a.Cycles != b.Cycles || a.ImbalancePct != b.ImbalancePct {
		t.Errorf("seed 41 runs differ: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Cycles == c.Cycles {
		t.Errorf("seeds 41 and 42 coincide at %d cycles (suspicious)", a.Cycles)
	}
}
