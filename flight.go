package smtbalance

import "sync"

// flight is one in-progress computation of a cache-keyed value.  The
// leader publishes exactly once; followers block on done and then read
// val/err, which are immutable afterwards.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// publish records the computation's outcome and wakes every follower.
func (f *flight[V]) publish(val V, err error) {
	f.val, f.err = val, err
	close(f.done)
}

// flightGroup coalesces concurrent computations of the same cache key
// into one (singleflight): the first goroutine to join a key becomes the
// leader and computes; the rest wait for its published result.  Keys are
// the package's canonical SHA-256 cache keys, so two joined requests are
// guaranteed to describe byte-identical simulations.
//
// Unlike the classic singleflight, failure handling is the caller's: a
// leader whose context was cancelled publishes its error, and a follower
// with a live context re-joins (becoming the new leader) instead of
// inheriting a cancellation that was never its own.
type flightGroup[V any] struct {
	mu      sync.Mutex
	flights map[cacheKey]*flight[V] //mtlint:guardedby mu
}

// join returns the key's in-progress flight and whether the caller is
// its leader.  A leader must eventually publish and forget the key; a
// follower must wait on the flight's done channel.
func (g *flightGroup[V]) join(k cacheKey) (f *flight[V], leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[k]; ok {
		return f, false
	}
	if g.flights == nil {
		g.flights = make(map[cacheKey]*flight[V])
	}
	f = &flight[V]{done: make(chan struct{})}
	g.flights[k] = f
	return f, true
}

// forget detaches the key so later joiners start a fresh computation.
// The leader calls it after storing its result in the cache (and before
// publishing), so a goroutine arriving in between finds the cache entry
// rather than a spent flight.
func (g *flightGroup[V]) forget(k cacheKey) {
	g.mu.Lock()
	delete(g.flights, k)
	g.mu.Unlock()
}
