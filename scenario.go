package smtbalance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/scenario"
)

// Scenario is a declarative, seeded generator of synthetic MPI jobs:
// where a Policy answers "how do I balance?", a Scenario answers "what
// imbalance am I balancing?".  The paper evaluates on a handful of
// hand-built cases (MetBench loads, BT-MZ, SIESTA); scenarios
// parameterize the *shape* of the imbalance instead — uniform, linear
// ramp, outlier rank, phase-shifted drift, deterministic bursts,
// bimodal compute/memory mixes — so any balancer can be characterized
// on any shape, at any topology, reproducibly.
//
// Name and Params identify the scenario exactly as a Policy's do: they
// feed ScenarioID, which labels evaluation-matrix rows and keys the
// matrix cell cache, so two scenarios that can generate different jobs
// must never share an identity, and Job must be a pure function of
// (identity, topology).
type Scenario interface {
	// Name is the scenario's registered shape name (e.g. "ramp").
	Name() string
	// Params returns the scenario's effective parameters (after
	// defaulting), e.g. {"skew": "4", "ranks": "0"}.  May be nil.
	Params() map[string]string
	// Job generates the scenario's job for a machine of the given
	// topology, deterministically.  A ranks parameter of 0 sizes the job
	// to the topology (one rank per hardware context).
	Job(topo Topology) (Job, error)
}

// ScenarioID is a scenario's canonical identity — its name plus its
// effective parameters sorted by key, e.g.
// "ramp(base=20000,iters=5,kind=fpu,ranks=0,skew=4)" — rendered exactly
// like PolicyID.  Equal IDs must mean equal generated jobs (per
// topology).  A nil scenario has the empty ID.
func ScenarioID(s Scenario) string {
	if s == nil {
		return ""
	}
	return idString(s.Name(), s.Params())
}

// ScenarioFactory builds a scenario from ParseScenario parameters.
// Factories must reject unknown keys, mirroring PolicyFactory.
type ScenarioFactory func(params map[string]string) (Scenario, error)

var scenarioRegistry = struct {
	sync.RWMutex
	m map[string]ScenarioFactory //mtlint:guardedby RWMutex
}{m: make(map[string]ScenarioFactory)}

// RegisterScenario adds a scenario factory under the given name, making
// it reachable from ParseScenario (and so from `mtbalance matrix
// -scenarios` and the serve API's scenario fields).  Names are
// case-sensitive, must be non-empty and free of the grammar's
// delimiters, and may not be registered twice.
func RegisterScenario(name string, factory ScenarioFactory) error {
	if name == "" || strings.ContainsAny(name, ",=; ") {
		return fmt.Errorf("smtbalance: invalid scenario name %q", name)
	}
	if factory == nil {
		return fmt.Errorf("smtbalance: nil factory for scenario %q", name)
	}
	scenarioRegistry.Lock()
	defer scenarioRegistry.Unlock()
	if _, dup := scenarioRegistry.m[name]; dup {
		return fmt.Errorf("smtbalance: scenario %q already registered", name)
	}
	scenarioRegistry.m[name] = factory
	return nil
}

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string {
	scenarioRegistry.RLock()
	defer scenarioRegistry.RUnlock()
	names := make([]string, 0, len(scenarioRegistry.m))
	for name := range scenarioRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseScenario resolves a scenario specification string with the same
// grammar ParsePolicy uses: a registered name followed by
// comma-separated key=value parameters, e.g. "uniform",
// "ramp,ranks=8,skew=1.5", "bursty,amp=3,seed=42".  Whitespace around
// tokens is ignored.  Unknown names and parameters are errors; an
// unknown name's error lists the registered scenarios.
func ParseScenario(s string) (Scenario, error) {
	name, params, err := parseSpec("scenario", s)
	if err != nil {
		return nil, err
	}
	scenarioRegistry.RLock()
	factory := scenarioRegistry.m[name]
	scenarioRegistry.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("smtbalance: unknown scenario %q (registered: %s)", name, strings.Join(Scenarios(), ", "))
	}
	sc, err := factory(params)
	if err != nil {
		return nil, fmt.Errorf("smtbalance: scenario %q: %w", name, err)
	}
	return sc, nil
}

// paramInt64 reads an int64 parameter, deleting it from the map, with
// the same explicit-range semantics as paramInt.
func paramInt64(params map[string]string, key string, def, min, max int64) (int64, error) {
	s, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: want an integer", key, s)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("parameter %s=%d outside %d..%d", key, v, min, max)
	}
	return v, nil
}

// paramUint reads a uint64 parameter (a PRNG seed), deleting it from
// the map.
func paramUint(params map[string]string, key string, def uint64) (uint64, error) {
	s, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: want a non-negative integer", key, s)
	}
	return v, nil
}

// paramKind reads a kernel-kind parameter, validating it against the
// Compute kinds (Spin is not a kind a scenario may ask for: a spinning
// compute phase never terminates).
func paramKind(params map[string]string, key, def string) (string, error) {
	s, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	for _, k := range KernelKinds() {
		if k == s {
			return s, nil
		}
	}
	return "", fmt.Errorf("parameter %s=%q: want one of %s", key, s, strings.Join(KernelKinds(), ", "))
}

// Bounds on scenario parameters: generous enough for any machine this
// simulator can express, tight enough that a typo cannot ask for a
// terabyte of phases.
const (
	maxScenarioRanks = 1 << 10
	maxScenarioIters = 1 << 12
	maxScenarioBase  = 1 << 32
)

// shapeScenario implements every built-in scenario shape over the
// internal/scenario load-matrix generators.
type shapeScenario struct {
	shape   string
	ranks   int    // 0 = one rank per hardware context of the topology
	iters   int    // compute+barrier iterations per rank
	base    int64  // base instructions per compute phase
	kind    string // workload kernel kind
	kind2   string // bimodal: the second (memory-side) kind
	skew    float64
	amp     float64
	seed    uint64
	period  int
	outlier int
}

// Built-in shape defaults.  base/iters are sized so the default
// evaluation matrix runs in seconds; skew 4 mirrors the paper's
// MetBench master/worker ratio (50000 vs 220000 instructions ≈ 4.4×).
const (
	defaultScenarioIters = 5
	defaultScenarioBase  = 20000
	defaultScenarioSkew  = 4
	defaultScenarioAmp   = 3
)

// commonParams parses the ranks/iters/base/kind quartet shared by every
// built-in shape, leaving shape-specific keys in the map.
func commonParams(params map[string]string) (sc shapeScenario, err error) {
	ranks, err := paramInt(params, "ranks", 0, 0, maxScenarioRanks)
	if err != nil {
		return sc, err
	}
	iters, err := paramInt(params, "iters", defaultScenarioIters, 1, maxScenarioIters)
	if err != nil {
		return sc, err
	}
	base, err := paramInt64(params, "base", defaultScenarioBase, 1, maxScenarioBase)
	if err != nil {
		return sc, err
	}
	kind, err := paramKind(params, "kind", "fpu")
	if err != nil {
		return sc, err
	}
	return shapeScenario{ranks: ranks, iters: iters, base: base, kind: kind}, nil
}

func init() {
	for name, factory := range map[string]ScenarioFactory{
		"uniform": func(params map[string]string) (Scenario, error) {
			sc, err := commonParams(params)
			if err != nil {
				return nil, err
			}
			sc.shape = "uniform"
			return &sc, rejectLeftovers(params)
		},
		"ramp": func(params map[string]string) (Scenario, error) {
			sc, err := commonParams(params)
			if err != nil {
				return nil, err
			}
			sc.shape = "ramp"
			if sc.skew, err = paramFloat(params, "skew", defaultScenarioSkew, 0, 1024); err != nil {
				return nil, err
			}
			return &sc, rejectLeftovers(params)
		},
		"step": func(params map[string]string) (Scenario, error) {
			sc, err := commonParams(params)
			if err != nil {
				return nil, err
			}
			sc.shape = "step"
			if sc.skew, err = paramFloat(params, "skew", defaultScenarioSkew, 0, 1024); err != nil {
				return nil, err
			}
			if sc.outlier, err = paramInt(params, "outlier", 0, 0, maxScenarioRanks-1); err != nil {
				return nil, err
			}
			return &sc, rejectLeftovers(params)
		},
		"phaseshift": func(params map[string]string) (Scenario, error) {
			sc, err := commonParams(params)
			if err != nil {
				return nil, err
			}
			sc.shape = "phaseshift"
			if sc.skew, err = paramFloat(params, "skew", defaultScenarioSkew, 0, 1024); err != nil {
				return nil, err
			}
			if sc.period, err = paramInt(params, "period", 2, 1, maxScenarioIters); err != nil {
				return nil, err
			}
			return &sc, rejectLeftovers(params)
		},
		"bursty": func(params map[string]string) (Scenario, error) {
			sc, err := commonParams(params)
			if err != nil {
				return nil, err
			}
			sc.shape = "bursty"
			if sc.amp, err = paramFloat(params, "amp", defaultScenarioAmp, 0, 1024); err != nil {
				return nil, err
			}
			if sc.seed, err = paramUint(params, "seed", 1); err != nil {
				return nil, err
			}
			return &sc, rejectLeftovers(params)
		},
		"bimodal": func(params map[string]string) (Scenario, error) {
			sc, err := commonParams(params)
			if err != nil {
				return nil, err
			}
			sc.shape = "bimodal"
			if sc.kind2, err = paramKind(params, "kind2", "mem"); err != nil {
				return nil, err
			}
			return &sc, rejectLeftovers(params)
		},
	} {
		if err := RegisterScenario(name, factory); err != nil {
			panic(err)
		}
	}
}

// Name implements Scenario.
func (s *shapeScenario) Name() string { return s.shape }

// Params implements Scenario: the effective common parameters plus the
// shape's own.
func (s *shapeScenario) Params() map[string]string {
	p := map[string]string{
		"ranks": strconv.Itoa(s.ranks),
		"iters": strconv.Itoa(s.iters),
		"base":  strconv.FormatInt(s.base, 10),
		"kind":  s.kind,
	}
	switch s.shape {
	case "ramp":
		p["skew"] = fmtFloat(s.skew)
	case "step":
		p["skew"] = fmtFloat(s.skew)
		p["outlier"] = strconv.Itoa(s.outlier)
	case "phaseshift":
		p["skew"] = fmtFloat(s.skew)
		p["period"] = strconv.Itoa(s.period)
	case "bursty":
		p["amp"] = fmtFloat(s.amp)
		p["seed"] = strconv.FormatUint(s.seed, 10)
	case "bimodal":
		p["kind2"] = s.kind2
	}
	return p
}

// loads generates the shape's rank × iteration instruction matrix.
func (s *shapeScenario) loads(ranks int) scenario.Loads {
	switch s.shape {
	case "ramp":
		return scenario.Ramp(ranks, s.iters, s.base, s.skew)
	case "step":
		return scenario.Step(ranks, s.iters, s.base, s.skew, s.outlier)
	case "phaseshift":
		return scenario.PhaseShift(ranks, s.iters, s.base, s.skew, s.period)
	case "bursty":
		return scenario.Bursty(ranks, s.iters, s.base, s.amp, s.seed)
	default: // uniform, bimodal
		return scenario.Uniform(ranks, s.iters, s.base)
	}
}

// Job implements Scenario: each rank runs iters compute+barrier
// iterations of the generated load matrix, composed from the
// internal/workload kernels.
func (s *shapeScenario) Job(topo Topology) (Job, error) {
	topo = topo.normalized()
	if err := topo.Validate(); err != nil {
		return Job{}, fmt.Errorf("smtbalance: scenario %s: %w", s.shape, err)
	}
	n := s.ranks
	if n == 0 {
		n = topo.Contexts()
	}
	if n < 2 || n%2 != 0 {
		return Job{}, fmt.Errorf("smtbalance: scenario %s needs an even rank count of at least 2 (ranks pair on SMT cores), got %d", s.shape, n)
	}
	if n > topo.Contexts() {
		return Job{}, fmt.Errorf("smtbalance: scenario %s asks for %d ranks, but the %s topology has only %d hardware contexts; grow the topology or lower ranks=",
			s.shape, n, topo, topo.Contexts())
	}
	loads := s.loads(n)
	job := Job{Name: ScenarioID(s)}
	for r := 0; r < n; r++ {
		kind := s.kind
		if s.shape == "bimodal" && r%2 == 1 {
			// Odd ranks run the memory-side kind: every core hosts one
			// compute-bound and one memory-bound rank, the mix where
			// SMT resource contention — not instruction counts — is the
			// imbalance.
			kind = s.kind2
		}
		prog := make([]Phase, 0, 2*s.iters)
		for i := 0; i < s.iters; i++ {
			prog = append(prog, Compute(kind, loads[r][i]), Barrier())
		}
		job.Ranks = append(job.Ranks, prog)
	}
	return job, nil
}
