package smtbalance

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/sweep"
)

// Space describes the placement × priority search space of a sweep: the
// cross product of every distinct way to co-schedule the job's ranks on
// the machine's SMT cores (chip-relabeling, core-relabeling and
// sibling-context symmetries pruned) with a per-rank priority alphabet.
// On the default machine a 4-rank job has 3 distinct pairings; the
// user-settable alphabet {2,3,4} then yields 243 configurations, the
// OS-settable alphabet {2..6} 1875.  The machine itself comes from
// SweepOptions.Run.Topology: on a 2×2×2 node the same 4-rank job gains a
// second core map per pairing (pairs packed on one chip's L2 or spread
// across chips), doubling the space.
type Space struct {
	// Priorities is the per-rank priority alphabet; nil means the
	// user-settable set (PriorityLow, PriorityMediumLow, PriorityMedium).
	Priorities []Priority
	// FixPairing keeps the job's in-order placement (ranks 2c and 2c+1
	// share core c) instead of enumerating every pairing and core map —
	// the space to use when ranks are already placed and only
	// priorities may move.  On multi-chip topologies this fixes the
	// core map too: the pairs stay on cores 0..n/2-1.
	FixPairing bool
	// Policies, when non-empty, adds a balancing-policy axis: every
	// placement × priority point is evaluated once per policy, with a
	// fresh per-run policy instance attached, and the ranking covers the
	// full policy × placement × priority cross product (SweepEntry.Policy
	// identifies each entry's policy).  Policies must implement
	// PolicyBinder; use StaticPolicy{} as the no-balancing control.  An
	// empty slice sweeps under the machine's own Options.Policy when one
	// is set, and with no policy at all otherwise — Policies may only be
	// non-empty on a policy-less machine.
	Policies []Policy
}

// UserSettableSpace is the space reachable without any kernel support:
// all pairings, priorities 2-4 (Section III-B).
func UserSettableSpace() Space { return Space{} }

// OSSettableSpace is the space the paper's patched kernel unlocks: all
// pairings, priorities 2-6 (Section VI; VeryLow is excluded because a
// leftover-only rank starves).
func OSSettableSpace() Space {
	var prios []Priority
	for _, p := range sweep.OSAlphabet() {
		prios = append(prios, Priority(p))
	}
	return Space{Priorities: prios}
}

// Objective scores sweep runs; lower is better.  Scores combine two
// normalized terms: execution time relative to the sweep's fastest run
// (>= 1) weighted by CyclesWeight, and the imbalance percentage as a
// fraction (0..1) weighted by ImbalanceWeight.  The zero value minimizes
// execution time.
type Objective struct {
	// CyclesWeight weights normalized execution time.
	CyclesWeight float64
	// ImbalanceWeight weights the imbalance fraction.
	ImbalanceWeight float64
}

// MinimizeCycles ranks configurations by execution time — the paper's
// headline metric.
func MinimizeCycles() Objective { return Objective{CyclesWeight: 1} }

// MinimizeImbalance ranks configurations by the imbalance metric.
func MinimizeImbalance() Objective { return Objective{ImbalanceWeight: 1} }

// WeightedObjective blends the two, e.g. WeightedObjective(1, 0.5)
// accepts a slightly slower run if it is much better balanced.
func WeightedObjective(cyclesWeight, imbalanceWeight float64) Objective {
	return Objective{CyclesWeight: cyclesWeight, ImbalanceWeight: imbalanceWeight}
}

func (o Objective) inner() sweep.Objective {
	if o.CyclesWeight == 0 && o.ImbalanceWeight == 0 {
		return sweep.MinCycles()
	}
	return sweep.Weighted(o.CyclesWeight, o.ImbalanceWeight)
}

// SweepOptions tunes a sweep.
type SweepOptions struct {
	// Workers caps concurrent simulator runs; 0 means one per CPU, 1
	// forces a serial sweep.  The ranking is identical for every value.
	Workers int
	// Top truncates the ranking to the best K configurations; 0 keeps
	// everything.
	Top int
	// Screen, when positive, turns the sweep into a two-level coarse →
	// fine search: every placement × priority point is first ranked by
	// the analytical cost predictor (decode-share curves plus the
	// machine's communication tiers — no simulation), and only the
	// Screen best-predicted points, a guard band of the next ones, and
	// the predictions tied with the band's cutoff are simulated.  The
	// simulated shortlist ranks exactly as the exhaustive sweep ranks
	// those same configurations — identical runs, identical cache keys,
	// identical tie-breaking — so screening trades coverage of the
	// space's (predicted) losers for wall-clock, never score fidelity.
	// The winner matches the exhaustive sweep's whenever the predictor
	// ranks it within the frontier, which holds for the golden workloads
	// (see docs/perf.md for the recorded gate).  0, the default, sweeps
	// exhaustively.  Sweeps with a policy axis screen the placement
	// points once and evaluate the shortlist under every policy.
	Screen int
	// Objective scores each run; the zero value minimizes cycles.
	Objective Objective
	// Run is the per-run simulation environment — only consulted by the
	// deprecated package-level Sweep and OptimizePlacement wrappers,
	// which build a Machine from it.  Machine.Sweep rejects a non-nil
	// Run: the Machine already fixes the environment.  Machine-level
	// balancing (Policy, the deprecated DynamicBalance) and OnIteration
	// are rejected in every sweep — runs execute concurrently, and the
	// policy axis belongs to Space.Policies, where each run gets its
	// own bound instance.
	Run *Options
	// Progress, if set, observes the evaluation as it runs with
	// (evaluated, total) configuration counts.  Calls are serialized
	// but follow run completion order.
	Progress func(evaluated, total int)
}

// SweepEntry is one ranked configuration of a finished sweep.
type SweepEntry struct {
	// Placement is the configuration (CPU map and priorities).
	Placement Placement
	// Policy is the canonical identity (PolicyID) of the balancing
	// policy this entry ran under; "" when the sweep had no policy axis.
	Policy string
	// Cycles is the run's simulated cycle count.
	Cycles int64
	// Seconds is the run's simulated wall-clock time.
	Seconds float64
	// ImbalancePct is the paper's max-sync-% imbalance metric.
	ImbalancePct float64
	// Score is the objective value; entries are sorted by it ascending.
	Score float64
}

// SweepResult is a finished sweep: the objective's ranking over every
// configuration evaluated.
type SweepResult struct {
	// Entries is the ranking, best first.  The order is total (ties
	// break on cycles, then enumeration order), so it is byte-identical
	// whether the sweep ran on one worker or many.
	Entries []SweepEntry
	// Evaluated is the number of configurations run.
	Evaluated int
	// Screened is the number of placement × priority points the
	// analytical predictor eliminated before simulation (times the
	// policy-axis width, when one was swept); 0 on exhaustive sweeps.
	// Evaluated + Screened is the full space size.
	Screened int
	// Workers is the pool size actually used.
	Workers int
}

// Best returns the top-ranked configuration.
func (r *SweepResult) Best() (SweepEntry, error) {
	if len(r.Entries) == 0 {
		return SweepEntry{}, fmt.Errorf("smtbalance: sweep ranked no configurations")
	}
	return r.Entries[0], nil
}

// WriteCSV writes the ranking as CSV with a header row:
// rank,cpus,priorities,cycles,seconds,imbalance_pct,score.  Sweeps over
// Space.Policies gain a policy column after rank (header
// rank,policy,cpus,...); policy-less rankings keep the original shape
// byte for byte.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	withPolicy := false
	for _, e := range r.Entries {
		if e.Policy != "" {
			withPolicy = true
			break
		}
	}
	header := "rank,cpus,priorities,cycles,seconds,imbalance_pct,score"
	if withPolicy {
		header = "rank,policy,cpus,priorities,cycles,seconds,imbalance_pct,score"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i, e := range r.Entries {
		cpus := make([]string, len(e.Placement.CPU))
		prios := make([]string, len(e.Placement.Priority))
		for j, c := range e.Placement.CPU {
			cpus[j] = fmt.Sprint(c)
		}
		for j, p := range e.Placement.Priority {
			prios[j] = fmt.Sprint(int(p))
		}
		policyCol := ""
		if withPolicy {
			// Policy IDs contain commas between parameters, so the
			// column is always quoted — RFC 4180 style (inner quotes
			// doubled), which encoding/csv and spreadsheets both parse.
			policyCol = csvQuote(e.Policy) + ","
		}
		_, err := fmt.Fprintf(w, "%d,%s%s,%s,%d,%.9f,%.4f,%.6f\n",
			i+1, policyCol, strings.Join(cpus, " "), strings.Join(prios, " "),
			e.Cycles, e.Seconds, e.ImbalancePct, e.Score)
		if err != nil {
			return err
		}
	}
	return nil
}

// Sweep evaluates every configuration of the space under the job across
// a worker pool and returns the objective's ranking.  Runs share
// nothing, so the sweep parallelizes linearly with CPUs, and the
// aggregation is input-order based, so the ranking does not depend on
// the worker count.  The job must have an even number of ranks whose
// pairs fit the machine's cores (up to four ranks on the default POWER5
// model; Run.Topology opens larger machines).
//
// Deprecated: Sweep is a thin wrapper over a Machine built from
// opts.Run; new code should build the Machine once with NewMachine and
// use Machine.Sweep (a cancellable streaming iterator with progress
// reporting) or Machine.SweepAll.
//
//mtlint:ctx-root deprecated ctx-less wrapper; Machine.Sweep/SweepAll are the cancellable forms
func Sweep(job Job, space Space, opts *SweepOptions) (*SweepResult, error) {
	if opts == nil {
		opts = &SweepOptions{}
	}
	m, err := machineFor(opts.Run)
	if err != nil {
		return nil, err
	}
	mOpts := *opts
	mOpts.Run = nil // the Machine carries the environment now
	return m.sweepAll(context.Background(), job, space, &mOpts)
}

// OptimizePlacement searches the OS-settable placement × priority space
// for the configuration optimizing the objective and returns it together
// with its full Result — the automated version of the by-hand procedure
// behind the paper's Tables IV-VI, and the search SuggestPlacement only
// approximates with its performance model.  An optional single
// SweepOptions argument tunes the search (Workers, Progress) and, via
// its Run field, the simulation environment: the winner's re-run uses
// the same environment as the sweep, so optimizing over a non-default
// Options.Topology returns that topology's best run, not the default
// machine's.  Top and Objective in the provided options are overridden.
//
// Deprecated: new code should build a Machine with NewMachine and call
// Machine.Optimize, which is cancellable and threads the machine's
// environment through both the sweep and the winner's re-run.
//
//mtlint:ctx-root deprecated ctx-less wrapper; Machine.Optimize is the cancellable form
func OptimizePlacement(job Job, objective Objective, opts ...*SweepOptions) (Placement, *Result, error) {
	if len(opts) > 1 {
		return Placement{}, nil, fmt.Errorf("smtbalance: OptimizePlacement takes at most one SweepOptions, got %d", len(opts))
	}
	var so SweepOptions
	if len(opts) == 1 && opts[0] != nil {
		so = *opts[0]
	}
	m, err := machineFor(so.Run)
	if err != nil {
		return Placement{}, nil, err
	}
	so.Run = nil
	so.Top = 1
	so.Objective = objective
	ctx := context.Background()
	sw, err := m.sweepAll(ctx, job, OSSettableSpace(), &so)
	if err != nil {
		return Placement{}, nil, err
	}
	best, err := sw.Best()
	if err != nil {
		return Placement{}, nil, err
	}
	// Re-run the winner for the full Result (trace included) under the
	// machine's own environment: the simulator is deterministic, so this
	// reproduces the swept run — served from the cache when possible.
	res, err := m.Run(ctx, job, best.Placement)
	if err != nil {
		return Placement{}, nil, err
	}
	return best.Placement, res, nil
}
