// MetBench example: the paper's Section VII-A experiment built on the
// public API.  A master keeps four workers in lockstep; two workers carry
// a 4.5x larger load.  The four cases of Table IV are replayed: the
// reference (A), two balancing attempts (B, C) and the over-penalized
// failure (D) that inverts the imbalance — showing that the priority
// mechanism is powerful but must be dosed.
package main

import (
	"fmt"
	"log"

	smtbalance "repro"
)

const (
	lightLoad  = 40_000
	heavyLoad  = 180_000
	iterations = 4
)

func job() smtbalance.Job {
	j := smtbalance.Job{Name: "metbench"}
	for r := 0; r < 4; r++ {
		n := int64(lightLoad)
		if r%2 == 1 { // P2 and P4 are the heavy workers
			n = heavyLoad
		}
		var prog []smtbalance.Phase
		for i := 0; i < iterations; i++ {
			prog = append(prog, smtbalance.Compute("fpu", n), smtbalance.Barrier())
		}
		j.Ranks = append(j.Ranks, prog)
	}
	return j
}

func main() {
	cases := []struct {
		name string
		prio []smtbalance.Priority
	}{
		{"A (reference, all medium)", []smtbalance.Priority{4, 4, 4, 4}},
		{"B (heavy 6, light 5)", []smtbalance.Priority{5, 6, 5, 6}},
		{"C (heavy 6, light 4)", []smtbalance.Priority{4, 6, 4, 6}},
		{"D (heavy 6, light 3 — too far)", []smtbalance.Priority{3, 6, 3, 6}},
	}
	j := job()
	var baseline float64
	for _, c := range cases {
		res, err := smtbalance.Run(j, smtbalance.Placement{
			CPU:      []int{0, 1, 2, 3},
			Priority: c.prio,
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.Seconds
		}
		fmt.Printf("case %-32s exec %7.1fµs  imbalance %6.2f%%  vs A %+6.2f%%\n",
			c.name, res.Seconds*1e6, res.ImbalancePct,
			100*(baseline-res.Seconds)/baseline)
		for i, r := range res.Ranks {
			fmt.Printf("   P%d core%d prio %d: comp %6.2f%% sync %6.2f%%\n",
				i+1, r.Core+1, r.Priority, r.ComputePct, r.SyncPct)
		}
		fmt.Println(res.Timeline(84))
	}
}
