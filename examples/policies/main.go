// Balancing-policy walkthrough: define a custom online policy, register
// it next to the built-ins, close the paper's profile → re-place →
// retune loop with Session.Balance, and finally let a policy-axis sweep
// rank the custom policy against the built-ins on equal terms.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"

	smtbalance "repro"
)

// GreedyPolicy is the custom policy of this example: an intentionally
// impatient balancer that jumps straight to MaxDiff in favor of
// whichever rank of a core lagged in the last iteration — no hysteresis,
// no ramp.  On steady loads it reaches the right skew faster than the
// paper's damped balancer; on moving bottlenecks it pays the paper's
// Case D penalty at every flip, which is exactly the trade-off a sweep
// over policies makes visible.
type GreedyPolicy struct {
	// MaxDiff is the priority difference applied to every imbalanced
	// pair (default 2).
	MaxDiff int

	pairs [][2]int // per-run: ranks sharing a core
	diff  []int    // per-run: current signed difference per pair
}

func (g *GreedyPolicy) effMaxDiff() int {
	if g.MaxDiff <= 0 {
		return 2
	}
	if g.MaxDiff > 4 {
		return 4
	}
	return g.MaxDiff
}

// Name and Params identify the policy; together they form its PolicyID,
// which keys the result cache — so every behavior-affecting parameter
// must appear here.
func (g *GreedyPolicy) Name() string { return "greedy" }
func (g *GreedyPolicy) Params() map[string]string {
	return map[string]string{"maxdiff": strconv.Itoa(g.effMaxDiff())}
}

// Bind makes the policy usable in sweeps and cacheable: each run gets a
// fresh instance with its own pair state.
func (g *GreedyPolicy) Bind(topo smtbalance.Topology, pl smtbalance.Placement) smtbalance.Policy {
	cp := *g
	ways := topo.SMTWays
	if ways <= 0 {
		ways = 2
	}
	byCore := map[int][]int{}
	maxCore := 0
	for rank, cpu := range pl.CPU {
		byCore[cpu/ways] = append(byCore[cpu/ways], rank)
		if cpu/ways > maxCore {
			maxCore = cpu / ways
		}
	}
	for c := 0; c <= maxCore; c++ {
		if ranks := byCore[c]; len(ranks) == 2 {
			cp.pairs = append(cp.pairs, [2]int{ranks[0], ranks[1]})
		}
	}
	cp.diff = make([]int, len(cp.pairs))
	return &cp
}

// Observe is the whole algorithm: all-or-nothing skew toward the laggard.
func (g *GreedyPolicy) Observe(st smtbalance.IterationStats) []smtbalance.PriorityAction {
	var acts []smtbalance.PriorityAction
	for i, pair := range g.pairs {
		a, b := pair[0], pair[1]
		want := 0
		switch {
		case st.ComputeCycles[a] > st.ComputeCycles[b]:
			want = g.effMaxDiff()
		case st.ComputeCycles[b] > st.ComputeCycles[a]:
			want = -g.effMaxDiff()
		}
		if want == g.diff[i] {
			continue
		}
		g.diff[i] = want
		hi, lo := smtbalance.PriorityHigh, smtbalance.PriorityMedium
		if g.effMaxDiff() == 1 {
			hi = smtbalance.PriorityMediumHigh
		}
		switch {
		case want > 0:
			acts = append(acts, smtbalance.PriorityAction{Rank: a, Priority: hi},
				smtbalance.PriorityAction{Rank: b, Priority: lo})
		case want < 0:
			acts = append(acts, smtbalance.PriorityAction{Rank: a, Priority: lo},
				smtbalance.PriorityAction{Rank: b, Priority: hi})
		default:
			acts = append(acts, smtbalance.PriorityAction{Rank: a, Priority: smtbalance.PriorityMedium},
				smtbalance.PriorityAction{Rank: b, Priority: smtbalance.PriorityMedium})
		}
	}
	return acts
}

// job is a BT-MZ-style imbalanced iterative job (the Table V load
// distribution, heaviest rank first so heavy and light ranks pair up).
func job() smtbalance.Job {
	j := smtbalance.Job{Name: "btmz-policies"}
	for _, n := range []int64{40000, 7200, 26800, 9600} {
		var prog []smtbalance.Phase
		for i := 0; i < 10; i++ {
			prog = append(prog, smtbalance.Compute("fpu", n), smtbalance.Barrier())
		}
		j.Ranks = append(j.Ranks, prog)
	}
	return j
}

func main() {
	// 1. Register the custom policy.  Registration makes it reachable
	// from ParsePolicy — i.e. from `mtbalance run -policy greedy`, the
	// serve API's "policy" field, and plain string configuration.
	err := smtbalance.RegisterPolicy("greedy", func(params map[string]string) (smtbalance.Policy, error) {
		g := &GreedyPolicy{}
		if s, ok := params["maxdiff"]; ok {
			delete(params, "maxdiff")
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("maxdiff=%q: want an integer", s)
			}
			g.MaxDiff = v
		}
		for k := range params {
			return nil, fmt.Errorf("unknown parameter %q", k)
		}
		return g, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered policies: %s\n\n", strings.Join(smtbalance.Policies(), ", "))

	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	j := job()

	// 2. Close the loop with Session.Balance: profile pinned-in-order,
	// re-place from the observed compute shares, re-run with the custom
	// policy retuning online.
	custom, err := smtbalance.ParsePolicy("greedy,maxdiff=2")
	if err != nil {
		log.Fatal(err)
	}
	s := m.NewSession(j)
	naive, err := s.Run(ctx, smtbalance.PinInOrder(4))
	if err != nil {
		log.Fatal(err)
	}
	balanced, err := s.Balance(ctx, custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive:            %8.1fµs  imbalance %5.2f%%\n", naive.Seconds*1e6, naive.ImbalancePct)
	fmt.Printf("Session.Balance:  %8.1fµs  imbalance %5.2f%%  (%s, %d moves)\n\n",
		balanced.Seconds*1e6, balanced.ImbalancePct, balanced.Policy, balanced.BalancerMoves)

	// 3. Rank the custom policy against the built-ins: one launch
	// configuration (everything at medium), the policies differentiate.
	space := smtbalance.Space{
		FixPairing: true,
		Priorities: []smtbalance.Priority{smtbalance.PriorityMedium},
		Policies: []smtbalance.Policy{
			smtbalance.StaticPolicy{},
			&smtbalance.PaperDynamic{},
			&smtbalance.FeedbackPolicy{},
			custom,
		},
	}
	res, err := m.SweepAll(ctx, j, space, &smtbalance.SweepOptions{Objective: smtbalance.MinimizeImbalance()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy ranking (objective: imbalance):")
	for i, e := range res.Entries {
		fmt.Printf("%d. %-55s %8.1fµs  imbalance %5.2f%%\n", i+1, e.Policy, e.Seconds*1e6, e.ImbalancePct)
	}
}
