// The session example walks the paper's iterative workflow — profile,
// re-place, re-prioritize, re-run — through the session-oriented API:
// one Machine owns the simulated node and its deterministic result
// cache, a Session binds a job to it, and sweeps stream their ranking
// through an iterator with live progress.
package main

import (
	"context"
	"fmt"
	"log"

	smtbalance "repro"
)

func main() {
	ctx := context.Background()

	// One machine, built once, shared by everything below.
	m, err := smtbalance.NewMachine(nil) // the paper's 1×2×2 node
	if err != nil {
		log.Fatal(err)
	}

	// The paper's MetBench-like shape: two light and two heavy ranks
	// meeting at a barrier, twice.
	job := smtbalance.Job{Name: "session-demo"}
	for _, n := range []int64{50_000, 220_000, 50_000, 220_000} {
		job.Ranks = append(job.Ranks, []smtbalance.Phase{
			smtbalance.Compute("fpu", n), smtbalance.Barrier(),
			smtbalance.Compute("fpu", n), smtbalance.Barrier(),
		})
	}
	s := m.NewSession(job)

	// 1. Profile: the naive pin-in-order run (the paper's Case A).
	base, err := s.Run(ctx, smtbalance.PinInOrder(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case A (profile run): %d cycles, imbalance %.1f%%\n",
		base.Cycles, base.ImbalancePct)

	// 2. Re-place: derive the next placement from the observed compute
	// shares, exactly what the authors read off their PARAVER traces.
	pl, err := s.SuggestFromLast()
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := s.Run(ctx, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suggested plan:       %d cycles, imbalance %.1f%% (%.1f%% faster)\n",
		tuned.Cycles, tuned.ImbalancePct,
		100*float64(base.Cycles-tuned.Cycles)/float64(base.Cycles))

	// 3. Search: stream the user-settable space's ranking, best first.
	fmt.Println("top 3 of the user-settable space:")
	shown := 0
	for e, err := range s.Sweep(ctx, smtbalance.UserSettableSpace(), &smtbalance.SweepOptions{
		Progress: func(evaluated, total int) {
			if evaluated == total {
				fmt.Printf("  (evaluated %d configurations)\n", total)
			}
		},
	}) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cpus %v prios %v — %d cycles, imbalance %.1f%%\n",
			e.Placement.CPU, e.Placement.Priority, e.Cycles, e.ImbalancePct)
		if shown++; shown == 3 {
			break // abandoning the stream is free
		}
	}

	// 4. Ground truth: the OS-settable optimum.  Its winning sweep runs
	// and the winner's re-run are all served through the machine's cache
	// when configurations repeat.
	best, res, err := s.Optimize(ctx, smtbalance.MinimizeCycles())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OS-settable optimum:  cpus %v prios %v — %d cycles (%.1f%% faster than A)\n",
		best.CPU, best.Priority, res.Cycles,
		100*float64(base.Cycles-res.Cycles)/float64(base.Cycles))

	st := m.CacheStats()
	fmt.Printf("result cache: %d hits, %d misses (%d results, %d metrics held)\n",
		st.Hits, st.Misses, st.Results, st.Metrics)
}
