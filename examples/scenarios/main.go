// The scenarios example walks the scenario subsystem end to end: parse
// declarative imbalance shapes with ParseScenario, evaluate every
// balancing policy on every shape with the evaluation-matrix engine,
// and close the loop on the winning shape with a scenario-backed
// Session.  Where the paper compared balancers on a handful of
// hand-built cases, the matrix answers "which balancer wins on which
// imbalance shape?" in one call.
package main

import (
	"context"
	"fmt"
	"log"

	smtbalance "repro"
)

func main() {
	ctx := context.Background()

	// The scenario axis: one spec string per imbalance shape, in the
	// same name,key=value grammar policies use.  A step (one straggler
	// rank), a drifting bottleneck, and seeded random bursts.
	var spec smtbalance.MatrixSpec
	for _, s := range []string{
		"step,skew=5,iters=8",
		"phaseshift,skew=5,iters=8,period=2",
		"bursty,amp=3,seed=42,iters=8",
	} {
		sc, err := smtbalance.ParseScenario(s)
		if err != nil {
			log.Fatal(err)
		}
		spec.Scenarios = append(spec.Scenarios, sc)
	}

	// The policy axis: the static control is implicit; rank the paper's
	// balancer against the feedback controller.
	spec.Policies = []smtbalance.Policy{
		&smtbalance.PaperDynamic{},
		&smtbalance.FeedbackPolicy{},
	}

	// Evaluate (policies × scenarios on the default 1×2×2 machine) and
	// stream entries as cells finish.  Every entry's Speedup is
	// normalized against its cell's static control, so scores compare
	// across shapes.
	fmt.Println("policy × scenario evaluation (speedup vs no balancing):")
	mx := smtbalance.NewMatrix()
	for e, err := range mx.Eval(ctx, spec, nil) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-38s %-46s %.4f\n", e.Scenario, e.Policy, e.Speedup)
	}

	// The same engine replays cached cells instantly — EvalAll here
	// costs three cell-cache hits, not nine simulations.
	res, err := mx.EvalAll(ctx, spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	hits, misses, _ := mx.CellStats()
	fmt.Printf("\n%d entries over %d cells (cell cache: %d hits, %d misses)\n",
		len(res.Entries), res.Cells, hits, misses)

	// Close the paper's loop on one shape: a scenario-backed session
	// profiles the step job, re-places it from the observed compute
	// shares, and retunes online under the paper's balancer.
	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		log.Fatal(err)
	}
	session, err := m.NewScenarioSession(spec.Scenarios[0])
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := session.Balance(ctx, &smtbalance.PaperDynamic{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBalance on %s: %d cycles, imbalance %.2f%%, %d priority moves\n",
		smtbalance.ScenarioID(spec.Scenarios[0]), tuned.Cycles, tuned.ImbalancePct, tuned.BalancerMoves)
}
