// Quickstart: build an imbalanced 4-rank MPI-style job on the simulated
// POWER5, watch two ranks burn 70%+ of their time busy-waiting, then fix
// it by giving the heavy ranks a higher hardware thread priority — the
// paper's core idea in thirty lines.
package main

import (
	"fmt"
	"log"

	smtbalance "repro"
)

func main() {
	// Two light ranks (P1, P3) and two heavy ranks (P2, P4); each core
	// hosts one of each.  Everyone meets at a barrier.
	job := smtbalance.Job{Name: "quickstart", Ranks: [][]smtbalance.Phase{
		{smtbalance.Compute("fpu", 50_000), smtbalance.Barrier()},
		{smtbalance.Compute("fpu", 220_000), smtbalance.Barrier()},
		{smtbalance.Compute("fpu", 50_000), smtbalance.Barrier()},
		{smtbalance.Compute("fpu", 220_000), smtbalance.Barrier()},
	}}

	// Reference: everything at the default medium priority.
	base, err := smtbalance.Run(job, smtbalance.PinInOrder(4), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default priorities: %.0fµs, imbalance %.1f%%\n",
		base.Seconds*1e6, base.ImbalancePct)
	fmt.Println(base.Timeline(80))

	// The fix: the heavy rank of each core gets priority 6 (high), the
	// light one keeps 4 (medium) — a decode-cycle split of 7:1 while
	// both compute, and the light rank spins at low cost afterwards.
	balanced, err := smtbalance.Run(job, smtbalance.Placement{
		CPU: []int{0, 1, 2, 3},
		Priority: []smtbalance.Priority{
			smtbalance.PriorityMedium, smtbalance.PriorityHigh,
			smtbalance.PriorityMedium, smtbalance.PriorityHigh,
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heavy ranks favored: %.0fµs, imbalance %.1f%%\n",
		balanced.Seconds*1e6, balanced.ImbalancePct)
	fmt.Println(balanced.Timeline(80))

	fmt.Printf("speedup: %.1f%%\n",
		100*(base.Seconds-balanced.Seconds)/base.Seconds)
}
