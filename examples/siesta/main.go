// SIESTA example: the paper's Section VII-C experiment — a real
// application whose bottleneck rank changes across iterations, so no
// static priority assignment fits every phase.  The example compares the
// paper's static cases against the library's dynamic OS-level balancer
// (the Section VIII future-work proposal).
package main

import (
	"fmt"
	"log"

	smtbalance "repro"
)

const (
	unitLoad   = 80_000
	iterations = 24
	block      = 6 // the bottleneck persists this many iterations
)

var baseWeights = []float64{0.80, 0.74, 0.82, 0.97}

// bottleneck returns the rank carrying extra load during iteration i:
// mostly the last rank, but P1..P3 take turns — the SIESTA behaviour.
func bottleneck(i int) int {
	switch (i / block) % 6 {
	case 0, 2, 4:
		return 3
	case 1:
		return 0
	case 3:
		return 1
	default:
		return 2
	}
}

func job() smtbalance.Job {
	j := smtbalance.Job{Name: "siesta"}
	for r := 0; r < 4; r++ {
		var prog []smtbalance.Phase
		for i := 0; i < iterations; i++ {
			w := baseWeights[r]
			if bottleneck(i) == r {
				w *= 1.55
			}
			// Mostly irregular, partly memory-bound work — a real
			// code, not a synthetic unit stressor.
			prog = append(prog,
				smtbalance.Compute("branchy", int64(w*unitLoad)),
				smtbalance.Compute("mem", int64(w*unitLoad/16)),
				smtbalance.Barrier(),
			)
		}
		j.Ranks = append(j.Ranks, prog)
	}
	return j
}

func main() {
	j := job()
	// Pair the similar ranks P2/P3 on one core and P1/P4 on the other,
	// as the paper's case C does.
	cpus := []int{2, 0, 1, 3}

	run := func(label string, prio []smtbalance.Priority, opts *smtbalance.Options) float64 {
		res, err := smtbalance.Run(j, smtbalance.Placement{CPU: cpus, Priority: prio}, opts)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if opts != nil && opts.DynamicBalance {
			extra = fmt.Sprintf("  (%d priority moves)", res.BalancerMoves)
		}
		fmt.Printf("%-28s exec %8.1fµs  imbalance %5.1f%%%s\n",
			label, res.Seconds*1e6, res.ImbalancePct, extra)
		return res.Seconds
	}

	ref := run("A: no balancing", []smtbalance.Priority{4, 4, 4, 4}, nil)
	run("C: static, favor P4 (+1)", []smtbalance.Priority{4, 4, 4, 5}, nil)
	run("D: static, favor P4 (+2)", []smtbalance.Priority{4, 4, 4, 6}, nil)
	dyn := run("dynamic OS balancer", []smtbalance.Priority{4, 4, 4, 4},
		&smtbalance.Options{DynamicBalance: true})

	fmt.Printf("\ndynamic vs no balancing: %+.1f%%\n", 100*(ref-dyn)/ref)
	fmt.Println("\nThe static cases help only while their guess matches the current")
	fmt.Println("bottleneck; the dynamic balancer follows it (Section VIII).")
}
