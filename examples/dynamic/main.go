// Dynamic-balancer deep dive: watch the online OS-level balancer (the
// paper's Section VIII proposal) react iteration by iteration as an
// application's bottleneck migrates between the two ranks of a core.
// Every barrier release prints the per-rank computation times the
// balancer samples and the improvement it extracts.
package main

import (
	"fmt"
	"log"

	smtbalance "repro"
)

const (
	iterations = 32
	block      = 8 // bottleneck flips sides every 8 iterations
	lightLoad  = 12_000
	heavyLoad  = 36_000
)

func job() smtbalance.Job {
	j := smtbalance.Job{Name: "migrating"}
	for r := 0; r < 2; r++ {
		var prog []smtbalance.Phase
		for i := 0; i < iterations; i++ {
			n := int64(lightLoad)
			heavySide := (i / block) % 2 // which rank is heavy now
			if r == heavySide {
				n = heavyLoad
			}
			// The "branchy" kernel has a real application's priority
			// profile (~12% per step); the synthetic "fpu" stressor
			// would punish every mis-prediction of the bottleneck with
			// a 2-4x slowdown — the paper's Case D lesson.
			prog = append(prog, smtbalance.Compute("branchy", n), smtbalance.Barrier())
		}
		j.Ranks = append(j.Ranks, prog)
	}
	return j
}

func main() {
	j := job()
	pl := smtbalance.PinInOrder(2) // both ranks on core 0

	base, err := smtbalance.Run(j, pl, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without balancing: %8.1fµs, imbalance %5.1f%%\n\n",
		base.Seconds*1e6, base.ImbalancePct)

	fmt.Println("iter  comp(P1)  comp(P2)  heavier")
	dyn, err := smtbalance.Run(j, pl, &smtbalance.Options{
		DynamicBalance:  true,
		MaxPriorityDiff: 1,
		OnIteration: func(it smtbalance.IterationStats) {
			heavier := "P1"
			if it.ComputeCycles[1] > it.ComputeCycles[0] {
				heavier = "P2"
			}
			fmt.Printf("%4d  %8d  %8d  %s\n",
				it.Index, it.ComputeCycles[0], it.ComputeCycles[1], heavier)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith dynamic balancing: %8.1fµs, imbalance %5.1f%%, %d priority moves\n",
		dyn.Seconds*1e6, dyn.ImbalancePct, dyn.BalancerMoves)
	fmt.Printf("improvement: %+.1f%%\n", 100*(base.Seconds-dyn.Seconds)/base.Seconds)
	fmt.Println(dyn.Timeline(90))
}
