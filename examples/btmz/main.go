// BT-MZ example: the paper's Section VII-B experiment — a multi-zone
// solver whose zones have very different sizes (intrinsic imbalance), with
// per-iteration neighbour exchanges.  Instead of hand-picking the
// placement and priorities as the paper did, this example lets the
// library's static planner derive them from the per-rank work — and then
// verifies the plan beats the naive run.
package main

import (
	"fmt"
	"log"

	smtbalance "repro"
)

// Zone weights from the paper's Table V computation shares.
var zoneWeights = []float64{0.18, 0.24, 0.67, 1.00}

const (
	unitLoad   = 220_000
	iterations = 6
	exchangeKB = 16
)

func job() smtbalance.Job {
	j := smtbalance.Job{Name: "bt-mz"}
	n := len(zoneWeights)
	for r := 0; r < n; r++ {
		var prog []smtbalance.Phase
		work := int64(zoneWeights[r] * unitLoad)
		for i := 0; i < iterations; i++ {
			prog = append(prog,
				smtbalance.Compute("fpu", work),
				// Boundary exchange with the neighbouring zones.
				smtbalance.Exchange(exchangeKB<<10, (r+n-1)%n, (r+1)%n),
			)
		}
		prog = append(prog, smtbalance.Barrier())
		j.Ranks = append(j.Ranks, prog)
	}
	return j
}

func main() {
	j := job()

	naive, err := smtbalance.Run(j, smtbalance.PinInOrder(4), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive placement:   %7.1fµs, imbalance %5.1f%%\n",
		naive.Seconds*1e6, naive.ImbalancePct)
	fmt.Println(naive.Timeline(84))

	// Let the planner pair heavy with light zones and pick priorities.
	works := make([]float64, len(zoneWeights))
	for i, z := range zoneWeights {
		works[i] = z * unitLoad
	}
	plan, err := smtbalance.SuggestPlacement(works)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("planned placement: ")
	for r := range plan.CPU {
		fmt.Printf("P%d->cpu%d@%d ", r+1, plan.CPU[r], plan.Priority[r])
	}
	fmt.Println()

	planned, err := smtbalance.Run(j, plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned result:    %7.1fµs, imbalance %5.1f%%  (%+.1f%% vs naive)\n",
		planned.Seconds*1e6, planned.ImbalancePct,
		100*(naive.Seconds-planned.Seconds)/naive.Seconds)
	fmt.Println(planned.Timeline(84))
}
