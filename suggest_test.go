package smtbalance

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSuggestPlacementErrorsWrapped pins the error contract: every
// failure path of the placement planner carries the package's
// "smtbalance:" prefix, including the core.PlanStatic errors that used
// to escape unwrapped.
func TestSuggestPlacementErrorsWrapped(t *testing.T) {
	// Too many ranks for the default 2-core machine.
	_, err := DefaultTopology().SuggestPlacement([]float64{1, 2, 3, 4, 5, 6})
	if err == nil {
		t.Fatal("6 works on the default 2-core topology accepted")
	}
	if !strings.HasPrefix(err.Error(), "smtbalance: ") {
		t.Errorf("too-many-ranks error not wrapped: %q", err)
	}
	if !strings.Contains(err.Error(), "exceed") {
		t.Errorf("too-many-ranks error lost its cause: %q", err)
	}

	// Odd rank count.
	_, err = DefaultTopology().SuggestPlacement([]float64{1, 2, 3})
	if err == nil {
		t.Fatal("odd rank count accepted")
	}
	if !strings.HasPrefix(err.Error(), "smtbalance: ") {
		t.Errorf("odd-count error not wrapped: %q", err)
	}

	// The job-aware form shares the wrapping.
	job := demoJob(100, 100)
	_, err = DefaultTopology().SuggestPlacementForJob(job, []float64{1, 2})
	if err == nil {
		t.Fatal("mismatched works length accepted")
	}
	if !strings.HasPrefix(err.Error(), "smtbalance: ") {
		t.Errorf("works-mismatch error not wrapped: %q", err)
	}
}

// partnerJob builds 2n ranks where rank 2i and 2i+1 are exchange
// partners with very different compute loads: the work-ordered plan
// pairs ranks across the partner structure, while a
// communication-aware plan keeps partners together.
func partnerJob(works []int64, bytes int64, iters int) Job {
	job := Job{Name: "partners"}
	for r := range works {
		partner := r ^ 1
		var prog []Phase
		for it := 0; it < iters; it++ {
			prog = append(prog,
				Compute("fpu", works[r]),
				Exchange(bytes, partner),
				Barrier(),
			)
		}
		job.Ranks = append(job.Ranks, prog)
	}
	return job
}

// TestSuggestPlacementForJobOneChipIdentical: with a single chip there
// is no placement freedom the predictor could exploit, so the job-aware
// plan must be byte-identical to the work-only plan (which itself is
// the paper's golden-tested heavy-with-light pairing).
func TestSuggestPlacementForJobOneChipIdentical(t *testing.T) {
	works := []float64{40000, 10000, 30000, 8000}
	job := partnerJob([]int64{40000, 10000, 30000, 8000}, 1<<14, 2)
	plain, err := DefaultTopology().SuggestPlacement(works)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := DefaultTopology().SuggestPlacementForJob(job, works)
	if err != nil {
		t.Fatal(err)
	}
	if !placementsEqual(plain, aware) {
		t.Fatalf("1-chip plans differ: plain %v/%v, job-aware %v/%v",
			plain.CPU, plain.Priority, aware.CPU, aware.Priority)
	}
}

func placementsEqual(a, b Placement) bool {
	if len(a.CPU) != len(b.CPU) || len(a.Priority) != len(b.Priority) {
		return false
	}
	for i := range a.CPU {
		if a.CPU[i] != b.CPU[i] || a.Priority[i] != b.Priority[i] {
			return false
		}
	}
	return true
}

// TestSuggestPlacementForJobTwoChipRegression reproduces the chip-blind
// bug: on a 2-chip machine the old heavy-with-lightest plan pairs ranks
// purely by work order, which for this job places every exchange
// partner pair on different chips — every exchange pays the cross-chip
// fabric.  The predictor-based plan must keep all partners on one chip
// and provably beat the old plan in simulation.
func TestSuggestPlacementForJobTwoChipRegression(t *testing.T) {
	topo := twoChips() // 2 chips x 2 cores x 2-way: 8 contexts
	works64 := []int64{40000, 10000, 39000, 9000, 38000, 8000, 37000, 7000}
	works := make([]float64, len(works64))
	for i, w := range works64 {
		works[i] = float64(w)
	}
	job := partnerJob(works64, 1<<15, 4)

	// The pre-fix plan, reconstructed from the work-only static planner
	// the old SuggestPlacement delegated to verbatim.
	plan, err := core.PlanStatic(works, topo.Cores(), core.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	old := Placement{CPU: plan.CPU}
	for _, p := range plan.Prio {
		old.Priority = append(old.Priority, Priority(p))
	}
	chipOf := func(cpu int) int { return cpu / (topo.CoresPerChip * topo.SMTWays) }
	crossOld := 0
	for r := 0; r < len(works); r += 2 {
		if chipOf(old.CPU[r]) != chipOf(old.CPU[r+1]) {
			crossOld++
		}
	}
	if crossOld == 0 {
		t.Fatal("test premise broken: the old plan should split exchange partners across chips")
	}

	suggested, err := topo.SuggestPlacementForJob(job, works)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < len(works); r += 2 {
		if chipOf(suggested.CPU[r]) != chipOf(suggested.CPU[r+1]) {
			t.Errorf("partners %d,%d still split across chips: CPUs %d,%d",
				r, r+1, suggested.CPU[r], suggested.CPU[r+1])
		}
	}

	m, err := NewMachine(&Options{Topology: topo, NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	oldRes, err := m.Run(ctx, job, old)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := m.Run(ctx, job, suggested)
	if err != nil {
		t.Fatal(err)
	}
	if newRes.Cycles >= oldRes.Cycles {
		t.Fatalf("job-aware plan (%d cycles) does not beat the chip-blind plan (%d cycles)",
			newRes.Cycles, oldRes.Cycles)
	}
}

// TestSessionSuggestFromLastCommAware: the session knows its job, so
// SuggestFromLast must route through the job-aware planner — on a
// 2-chip machine its suggestion keeps exchange partners off the
// cross-chip fabric even though the profile works alone cannot see the
// exchange structure.
func TestSessionSuggestFromLastCommAware(t *testing.T) {
	topo := twoChips()
	job := partnerJob([]int64{40000, 10000, 39000, 9000, 38000, 8000, 37000, 7000}, 1<<15, 4)
	m, err := NewMachine(&Options{Topology: topo, NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession(job)
	if _, err := s.SuggestFromLast(); err == nil {
		t.Fatal("SuggestFromLast before any run accepted")
	}
	pl, err := topo.PinInOrder(len(job.Ranks))
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Run(context.Background(), pl)
	if err != nil {
		t.Fatal(err)
	}
	suggested, err := s.SuggestFromLast()
	if err != nil {
		t.Fatal(err)
	}
	chipOf := func(cpu int) int { return cpu / (topo.CoresPerChip * topo.SMTWays) }
	for r := 0; r < len(job.Ranks); r += 2 {
		if chipOf(suggested.CPU[r]) != chipOf(suggested.CPU[r+1]) {
			t.Errorf("partners %d,%d split across chips: CPUs %d,%d",
				r, r+1, suggested.CPU[r], suggested.CPU[r+1])
		}
	}
	res, err := s.m.Run(context.Background(), job, suggested)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= base.Cycles {
		t.Errorf("suggestion (%d cycles) does not beat pin-in-order (%d)", res.Cycles, base.Cycles)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("unexpected cancellation")
	}
}
