package smtbalance

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// The phase-skip engine's contract is byte-identity: Options.Exact must
// never change a result, only how it is computed.  The suite sweeps
// every registered policy (plus the policy-less run, the only case
// where the engine actually engages — policies observe iterations, so
// their runs are implicitly exact) against one scenario per built-in
// shape.

// runExactPair executes the same run with and without Options.Exact,
// bypassing the result cache (which deliberately keys both spellings
// identically — see envJobKey).
func runExactPair(t *testing.T, job Job, pl Placement, opts Options, pol Policy) (*Result, *Result) {
	t.Helper()
	exactOpts := opts
	exactOpts.Exact = true
	exact, err := runSim(context.Background(), job, pl, &exactOpts, pol)
	if err != nil {
		t.Fatalf("exact run failed: %v", err)
	}
	fast, err := runSim(context.Background(), job, pl, &opts, pol)
	if err != nil {
		t.Fatalf("fast run failed: %v", err)
	}
	return exact, fast
}

// mustEqualResults asserts two results are byte-identical, including
// the serialized trace.
func mustEqualResults(t *testing.T, exact, fast *Result) {
	t.Helper()
	var be, bf bytes.Buffer
	if err := exact.WriteTraceCSV(&be); err != nil {
		t.Fatal(err)
	}
	if err := fast.WriteTraceCSV(&bf); err != nil {
		t.Fatal(err)
	}
	et, ft := *exact, *fast
	et.tr, ft.tr = nil, nil
	// SkippedCycles reports how the result was computed, not what it is.
	et.SkippedCycles, ft.SkippedCycles = 0, 0
	if !reflect.DeepEqual(et, ft) {
		t.Errorf("results diverge:\nexact: %+v\nfast:  %+v", et, ft)
	}
	if !bytes.Equal(be.Bytes(), bf.Bytes()) {
		t.Errorf("traces diverge (%d vs %d bytes)", be.Len(), bf.Len())
	}
}

func TestExactIdentityAcrossPoliciesAndScenarios(t *testing.T) {
	topo := DefaultTopology()
	policies := map[string]Policy{"none": nil}
	for name, pol := range diffPolicies(t) {
		policies[name] = pol
	}
	for polName, pol := range policies {
		for _, spec := range diffSeedSpecs() {
			t.Run(polName+"/"+shortScenarioName(spec), func(t *testing.T) {
				sc, err := ParseScenario(spec)
				if err != nil {
					t.Fatal(err)
				}
				job, err := sc.Job(topo)
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{NoOSNoise: true}
				exact, fast := runExactPair(t, job, PinInOrder(len(job.Ranks)), opts, pol)
				mustEqualResults(t, exact, fast)
			})
		}
	}
}

// TestExactIdentityWithOSNoise covers the noisy kernel: timer ticks make
// recurrences rare, but any skip taken must still be exact.
func TestExactIdentityWithOSNoise(t *testing.T) {
	sc, err := ParseScenario("uniform,base=20000,iters=6")
	if err != nil {
		t.Fatal(err)
	}
	job, err := sc.Job(DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	exact, fast := runExactPair(t, job, PinInOrder(len(job.Ranks)), Options{}, nil)
	mustEqualResults(t, exact, fast)
}
