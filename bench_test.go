// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact), plus ablations and micro-benchmarks of the
// simulator itself.  Each experiment benchmark reports the measured
// execution times and imbalances as custom metrics next to the paper's
// values, so `go test -bench=.` doubles as the reproduction run:
//
//	BenchmarkTable4MetBench/caseC-8   1   ...  74.90 paper-exec-s  0.000177 sim-exec-s
//
// Shapes (who wins, orderings, inversions) are asserted by the Check*
// functions; a failed shape fails the benchmark.
package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/hwpri"
	"repro/internal/power5"
	"repro/internal/workload"
)

// benchOpt is the full documented scale.
var benchOpt = experiments.Options{Scale: 1.0, TraceWidth: 80}

// reportCases exposes each case's measured and paper numbers as
// sub-benchmark metrics.
func reportCases(b *testing.B, cases []experiments.CaseResult) {
	for _, c := range cases {
		c := c
		b.Run("case"+c.Case, func(b *testing.B) {
			b.ReportMetric(c.ExecSeconds, "sim-exec-s")
			b.ReportMetric(c.PaperExecSeconds, "paper-exec-s")
			b.ReportMetric(c.ImbalancePct, "sim-imb-%")
			b.ReportMetric(c.PaperImbalancePct, "paper-imb-%")
		})
	}
}

// BenchmarkTable1PrioritySemantics measures the pure priority-to-
// allocation computation of Table I/II semantics (the hot path of the
// decode stage).
func BenchmarkTable1PrioritySemantics(b *testing.B) {
	var sink hwpri.Allocation
	for i := 0; i < b.N; i++ {
		sink = hwpri.Alloc(hwpri.Priority(i%5+2), hwpri.Priority((i/5)%5+2))
	}
	_ = sink
}

// BenchmarkTable2DecodeSlots regenerates Table II: the decode-cycle split
// per priority difference, measured on the simulator.
func BenchmarkTable2DecodeSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable2(rows); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[4].MeasuredA*32, "slots-of-32-at-diff4")
		}
	}
}

// BenchmarkTable3SpecialModes regenerates Table III: the priority 0/1
// regimes.
func BenchmarkTable3SpecialModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable3(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates the illustrative Figure 1.
func BenchmarkFigure1(b *testing.B) {
	var f *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.Figure1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFigure1(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(f.ImbalancedSeconds-f.BalancedSeconds)/f.ImbalancedSeconds, "gain-%")
}

// BenchmarkTable4MetBench regenerates Table IV / Figure 2 (MetBench cases
// A-D).  Paper headline: case C improves 8.26% over A; case D regresses.
func BenchmarkTable4MetBench(b *testing.B) {
	var cases []experiments.CaseResult
	for i := 0; i < b.N; i++ {
		var err error
		cases, err = experiments.Table4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable4(cases); err != nil {
			b.Fatal(err)
		}
	}
	reportCases(b, cases)
}

// BenchmarkTable5BTMZ regenerates Table V / Figure 3 (BT-MZ ST + cases
// A-D).  Paper headline: case D improves 18.08% over A.
func BenchmarkTable5BTMZ(b *testing.B) {
	var cases []experiments.CaseResult
	for i := 0; i < b.N; i++ {
		var err error
		cases, err = experiments.Table5(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable5(cases); err != nil {
			b.Fatal(err)
		}
	}
	reportCases(b, cases)
}

// BenchmarkTable6SIESTA regenerates Table VI / Figure 4 (SIESTA ST +
// cases A-D).  Paper headline: case C improves 8.1%; case D loses 13.7%.
func BenchmarkTable6SIESTA(b *testing.B) {
	var cases []experiments.CaseResult
	for i := 0; i < b.N; i++ {
		var err error
		cases, err = experiments.Table6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable6(cases); err != nil {
			b.Fatal(err)
		}
	}
	reportCases(b, cases)
}

// BenchmarkPrioritySweep measures the Section VII-A Case D observation:
// the penalized thread's throughput collapses exponentially with the
// priority difference.
func BenchmarkPrioritySweep(b *testing.B) {
	diffs := []struct {
		name   string
		pa, pb hwpri.Priority
	}{
		{"diff0", 4, 4}, {"diff1", 5, 4}, {"diff2", 6, 4}, {"diff3", 6, 3}, {"diff4", 6, 2},
	}
	for _, d := range diffs {
		d := d
		b.Run(d.name, func(b *testing.B) {
			var penalized float64
			for i := 0; i < b.N; i++ {
				ch := power5.MustNew(power5.DefaultConfig())
				ch.SetPriority(0, 0, d.pa)
				ch.SetPriority(0, 1, d.pb)
				ch.SetStream(0, 0, workload.Load{Kind: workload.FPU, N: 1 << 62, Seed: 1}.Stream())
				ch.SetStream(0, 1, workload.Load{Kind: workload.FPU, N: 1 << 62, Seed: 2, Base: 1 << 32}.Stream())
				ch.Run(100_000)
				penalized = float64(ch.Stats(0, 1).Completed) / 100_000
			}
			b.ReportMetric(penalized, "penalized-IPC")
		})
	}
}

// BenchmarkKernelPatchAblation measures the cost of running the balanced
// configuration on an unpatched kernel (Section VI motivation).
func BenchmarkKernelPatchAblation(b *testing.B) {
	var r *experiments.KernelPatchResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.KernelPatchAblation(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckKernelPatch(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(r.VanillaSeconds-r.PatchedSeconds)/r.PatchedSeconds, "vanilla-loss-%")
}

// BenchmarkDynamicBalancer measures the Section VIII extension: the
// online balancer against the best static assignment on the
// moving-bottleneck SIESTA model.
func BenchmarkDynamicBalancer(b *testing.B) {
	var r *experiments.DynamicResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.DynamicExtension(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckDynamic(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(r.ReferenceSeconds-r.DynamicSeconds)/r.ReferenceSeconds, "dynamic-gain-%")
	b.ReportMetric(float64(r.Moves), "priority-moves")
}

// BenchmarkCacheWarmupAblation quantifies the cold-start substitution
// documented in DESIGN.md: without pre-warming, the scaled-down runs are
// dominated by cold misses the paper's 80-second runs amortize away.
func BenchmarkCacheWarmupAblation(b *testing.B) {
	job := Job{Name: "warmup", Ranks: [][]Phase{
		{Compute("fpu", 50_000), Barrier()},
		{Compute("fpu", 50_000), Barrier()},
		{Compute("fpu", 50_000), Barrier()},
		{Compute("fpu", 50_000), Barrier()},
	}}
	for _, cold := range []bool{false, true} {
		name := "warm"
		if cold {
			name = "cold"
		}
		b.Run(name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Run(job, PinInOrder(4), &Options{NoOSNoise: true, ColdCaches: cold})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "sim-cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures the chip simulator's speed in
// simulated cycles per wall second — the practical limit on experiment
// scale.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ch := power5.MustNew(power5.DefaultConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.Mixed, N: 1 << 62, Seed: 1}.Stream())
	ch.SetStream(0, 1, workload.Load{Kind: workload.FPU, N: 1 << 62, Seed: 2, Base: 1 << 32}.Stream())
	ch.SetStream(1, 0, workload.Load{Kind: workload.L2, N: 1 << 62, Seed: 3, Base: 2 << 32}.Stream())
	ch.SetStream(1, 1, workload.Load{Kind: workload.Spin, Seed: 4, Base: 3 << 32}.Stream())
	b.ResetTimer()
	ch.Run(int64(b.N))
	b.ReportMetric(float64(b.N), "sim-cycles")
}

// BenchmarkExtrinsicNoise measures the Section II-B scenario: a daemon
// bound to one CPU imbalances a balanced application, and favoring the
// victim by one priority step recovers part of the loss transparently.
func BenchmarkExtrinsicNoise(b *testing.B) {
	var r *experiments.ExtrinsicResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ExtrinsicNoise(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckExtrinsic(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.NoisyImbalance, "noisy-imb-%")
	b.ReportMetric(100*(r.NoisySeconds-r.CompensatedSeconds)/r.NoisySeconds, "recovered-%")
}

// BenchmarkCacheHitSpeedup measures the Machine's deterministic result
// cache: one cold run of the quickstart-sized job versus cached re-runs
// of the identical configuration.  The cached path must be at least 10x
// faster — it is a map lookup plus a shallow copy against a full
// simulation — and the benchmark fails if it is not, so CI's bench
// smoke run guards the cache from regressing into uselessness.
func BenchmarkCacheHitSpeedup(b *testing.B) {
	job := Job{Name: "cache", Ranks: [][]Phase{
		{Compute("fpu", 50_000), Barrier()},
		{Compute("fpu", 220_000), Barrier()},
		{Compute("fpu", 50_000), Barrier()},
		{Compute("fpu", 220_000), Barrier()},
	}}
	m, err := NewMachine(nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	pl := PinInOrder(4)

	start := time.Now()
	cold, err := m.Run(ctx, job, pl)
	if err != nil {
		b.Fatal(err)
	}
	coldTime := time.Since(start)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Run(ctx, job, pl)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cycles != cold.Cycles {
			b.Fatalf("cached run returned %d cycles, cold run %d", res.Cycles, cold.Cycles)
		}
	}
	b.StopTimer()
	if st := m.CacheStats(); st.Hits < int64(b.N) {
		b.Fatalf("cache hits %d < %d re-runs", st.Hits, b.N)
	}
	// Gate on an average over a fixed batch of cached runs, independent
	// of b.N: under CI's -benchtime=1x a single-iteration sample would
	// let one scheduler hiccup fail the build.
	const warmRuns = 256
	warmStart := time.Now()
	for i := 0; i < warmRuns; i++ {
		if _, err := m.Run(ctx, job, pl); err != nil {
			b.Fatal(err)
		}
	}
	warmTime := time.Since(warmStart) / warmRuns
	speedup := float64(coldTime) / float64(warmTime)
	b.ReportMetric(speedup, "cache-speedup-x")
	b.ReportMetric(coldTime.Seconds()*1000, "cold-ms")
	b.ReportMetric(warmTime.Seconds()*1000, "warm-ms")
	if speedup < 10 {
		b.Fatalf("cache speedup %.1fx < 10x (cold %v, warm %v)", speedup, coldTime, warmTime)
	}
}

// BenchmarkPhaseSkipSpeedup measures the phase-skip fast path on the
// Table V BT-MZ job (the paper's headline workload): a full exact
// per-cycle run against the default run, which detects the steady-state
// iteration and advances across repetitions analytically.  The two runs
// must agree byte for byte — including the serialized trace — and the
// fast path must be at least 5x faster; the benchmark fails otherwise,
// so CI's bench smoke run guards both the speedup and the identity.
// Record with the README recipe into BENCH_simcore_baseline.json.
func BenchmarkPhaseSkipSpeedup(b *testing.B) {
	// Table V BT-MZ zone loads (P1..P4 = 18/24/67/100% of the heaviest),
	// ring exchanges each iteration and a closing barrier, iterated long
	// enough that the steady state dominates, as in the paper's runs.
	loads := []int64{39_600, 52_800, 147_400, 220_000}
	job := Job{Name: "btmz-phaseskip"}
	for r, n := range loads {
		var prog []Phase
		for i := 0; i < 72; i++ {
			prog = append(prog, Compute("fpu", n), Exchange(16<<10, (r+1)%4, (r+3)%4))
		}
		prog = append(prog, Barrier())
		job.Ranks = append(job.Ranks, prog)
	}
	pl := PinInOrder(4)
	opts := &Options{NoOSNoise: true}
	exactOpts := *opts
	exactOpts.Exact = true
	ctx := context.Background()
	// runSim, not Machine.Run: the result cache keys both execution modes
	// together, so cached replies would make the comparison vacuous.
	run := func(o *Options) *Result {
		res, err := runSim(ctx, job, pl, o, nil)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	// Identity gate: the fast path may only apply provably exact skips.
	exact, fast := run(&exactOpts), run(opts)
	if fast.SkippedCycles == 0 {
		b.Fatal("phase-skip never engaged on the BT-MZ job")
	}
	if exact.SkippedCycles != 0 {
		b.Fatalf("exact run skipped %d cycles", exact.SkippedCycles)
	}
	var be, bf bytes.Buffer
	if err := exact.WriteTraceCSV(&be); err != nil {
		b.Fatal(err)
	}
	if err := fast.WriteTraceCSV(&bf); err != nil {
		b.Fatal(err)
	}
	if exact.Cycles != fast.Cycles || exact.Seconds != fast.Seconds ||
		exact.ImbalancePct != fast.ImbalancePct || exact.Iterations != fast.Iterations ||
		!reflect.DeepEqual(exact.Ranks, fast.Ranks) || !bytes.Equal(be.Bytes(), bf.Bytes()) {
		b.Fatalf("fast run diverges from exact run: %d vs %d cycles, traces %d vs %d bytes",
			fast.Cycles, exact.Cycles, bf.Len(), be.Len())
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(opts)
	}
	b.StopTimer()

	// Speedup gate, independent of b.N: median of paired exact/fast
	// samples, so one scheduler hiccup cannot fail CI's -benchtime=1x run.
	const samples = 3
	ratios := make([]float64, 0, samples)
	var exactSec, fastSec float64
	for i := 0; i < samples; i++ {
		t0 := time.Now()
		run(&exactOpts)
		t1 := time.Now()
		run(opts)
		t2 := time.Now()
		de, df := t1.Sub(t0), t2.Sub(t1)
		exactSec, fastSec = de.Seconds(), df.Seconds()
		ratios = append(ratios, float64(de)/float64(df))
	}
	sort.Float64s(ratios)
	speedup := ratios[samples/2]
	b.ReportMetric(speedup, "phase-skip-speedup-x")
	b.ReportMetric(exactSec*1000, "exact-ms")
	b.ReportMetric(fastSec*1000, "fast-ms")
	b.ReportMetric(100*float64(fast.SkippedCycles)/float64(fast.Cycles), "skipped-%")
	if speedup < 5 {
		b.Fatalf("phase-skip speedup %.2fx < 5x (median of %d paired runs)", speedup, samples)
	}
}

// BenchmarkPolicyOverhead measures what attaching a balancing policy
// costs on the Table V BT-MZ job: the no-policy fast path (no iteration
// hook at all) against StaticPolicy (hook attached, zero actions) and
// the active built-ins.  StaticPolicy's hook must be free — under 2% of
// the no-policy run — and behaviorally invisible (identical simulated
// cycles); the benchmark fails otherwise, so CI's bench smoke guards the
// policy engine's overhead.  Record with the README recipe into
// BENCH_policy_baseline.json.
func BenchmarkPolicyOverhead(b *testing.B) {
	// The Table V BT-MZ load distribution (P1..P4 = 18/24/67/100% of the
	// heaviest), paired heavy-with-light per core as in the paper's
	// balanced cases, iterating so online policies get traction.
	loads := []int64{40000, 7200, 26800, 9600}
	job := Job{Name: "btmz-policy"}
	for _, n := range loads {
		var prog []Phase
		for i := 0; i < 6; i++ {
			prog = append(prog, Compute("fpu", n), Barrier())
		}
		job.Ranks = append(job.Ranks, prog)
	}
	pl := PinInOrder(4)
	opts := &Options{NoOSNoise: true}
	ctx := context.Background()
	// runOnce takes the failing *testing.B explicitly so sub-benchmarks
	// fail on their own goroutine, as FailNow requires.
	runOnce := func(b *testing.B, pol Policy) *Result {
		// runSim, not Machine.Run: the result cache would otherwise turn
		// every timed run after the first into a map lookup.
		res, err := runSim(ctx, job, pl, opts, pol)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	for _, v := range []struct {
		name string
		pol  Policy
	}{
		{"nopolicy", nil},
		{"static", StaticPolicy{}},
		{"dyn", &PaperDynamic{}},
		{"feedback", &FeedbackPolicy{}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, v.pol)
			}
			b.ReportMetric(float64(res.BalancerMoves), "moves")
			b.ReportMetric(float64(res.Cycles), "sim-cycles")
		})
	}

	// Behavioral gate: a no-op policy must not change the simulation.
	if noRes, stRes := runOnce(b, nil), runOnce(b, StaticPolicy{}); noRes.Cycles != stRes.Cycles {
		b.Fatalf("StaticPolicy changed the run: %d vs %d cycles", stRes.Cycles, noRes.Cycles)
	}
	// Overhead gate, independent of b.N so CI's -benchtime=1x still
	// measures.  Shared runners are noisy, so each sample is a
	// back-to-back pair — alternating which variant runs first to cancel
	// drift — and the gate compares the median of the paired ratios,
	// where machine noise cancels and only a systematic hook cost
	// survives.
	const samples = 25
	ratios := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		var dNo, dSt time.Duration
		if i%2 == 0 {
			t0 := time.Now()
			runOnce(b, nil)
			t1 := time.Now()
			runOnce(b, StaticPolicy{})
			dNo, dSt = t1.Sub(t0), time.Since(t1)
		} else {
			t0 := time.Now()
			runOnce(b, StaticPolicy{})
			t1 := time.Now()
			runOnce(b, nil)
			dSt, dNo = t1.Sub(t0), time.Since(t1)
		}
		ratios = append(ratios, float64(dSt)/float64(dNo))
	}
	sort.Float64s(ratios)
	overhead := ratios[samples/2] - 1
	b.ReportMetric(overhead*100, "static-overhead-%")
	if overhead > 0.02 {
		b.Fatalf("StaticPolicy overhead %.2f%% > 2%% (median of %d paired runs)", overhead*100, samples)
	}
}
