package smtbalance

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if a test leaks a goroutine: sweeps,
// sessions, and the cache's singleflight all spawn workers that must
// join before their call returns.
func TestMain(m *testing.M) { leakcheck.Main(m) }
