package smtbalance

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzTopology fuzzes the topology flag syntax: any string that parses
// must be a valid machine whose CPU numbering round-trips, whose String
// re-parses to the same value, and whose PinInOrder boundary sits
// exactly at the context count.
func FuzzTopology(f *testing.F) {
	for _, s := range []string{
		"1x2x2", "2x2x2", "4x8x2", " 2 X 2 X 2 ", "64x64x2",
		"0x2x2", "2x2x4", "-1x2x2", "2x2", "2x2x2x2", "axbxc", "", "x", "1×2×2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		topo, err := ParseTopology(s)
		if err != nil {
			return // rejected input: nothing more to check
		}
		if verr := topo.Validate(); verr != nil {
			t.Fatalf("ParseTopology(%q) returned invalid topology %v: %v", s, topo, verr)
		}
		round, err := ParseTopology(topo.String())
		if err != nil || round != topo {
			t.Fatalf("topology %v does not round-trip through %q: %v, %v", topo, topo.String(), round, err)
		}
		for cpu := 0; cpu < topo.Contexts(); cpu++ {
			chip, core, ctx := topo.Locate(cpu)
			back, err := topo.CPUOf(chip, core, ctx)
			if err != nil {
				t.Fatalf("%v: Locate(%d) = (%d,%d,%d) rejected by CPUOf: %v", topo, cpu, chip, core, ctx, err)
			}
			if back != cpu {
				t.Fatalf("%v: CPU %d round-trips to %d via (%d,%d,%d)", topo, cpu, back, chip, core, ctx)
			}
		}
		if _, err := topo.PinInOrder(topo.Contexts()); err != nil {
			t.Fatalf("%v: PinInOrder at full occupancy rejected: %v", topo, err)
		}
		if _, err := topo.PinInOrder(topo.Contexts() + 1); err == nil {
			t.Fatalf("%v: PinInOrder past the context count accepted", topo)
		}
	})
}

// FuzzParsePlacement fuzzes the -pin placement syntax against fuzzed
// topologies: any (topology, placement) pair that parses must satisfy
// the placement invariants — equal-length maps, distinct in-range CPUs,
// valid priorities — and pass the same validation Run applies.
func FuzzParsePlacement(f *testing.F) {
	f.Add("1x2x2", "0.0.0@4,0.0.1@6,0.1.0,0.1.1")
	f.Add("2x2x2", "0.0.0,1.1.1@2")
	f.Add("2x2x2", "1.0.0@7")
	f.Add("1x2x2", "0.0.0,0.0.0")
	f.Add("1x2x2", "0.0")
	f.Add("1x2x2", "9.9.9@9")
	f.Add("bogus", "0.0.0@4")
	f.Add("4x1x2", " 3 . 0 . 1 @ 5 ,0.0.0")
	f.Add("1x2x2", "")
	f.Fuzz(func(t *testing.T, topoStr, plStr string) {
		topo, err := ParseTopology(topoStr)
		if err != nil {
			topo = DefaultTopology() // the CLI rejects earlier; parse against the default instead
		}
		pl, err := ParsePlacement(topo, plStr)
		if err != nil {
			return
		}
		if len(pl.CPU) != len(pl.Priority) || len(pl.CPU) == 0 {
			t.Fatalf("ParsePlacement(%q, %q) returned unbalanced placement %+v", topoStr, plStr, pl)
		}
		if want := strings.Count(plStr, ",") + 1; len(pl.CPU) != want {
			t.Fatalf("ParsePlacement(%q) placed %d ranks from %d entries", plStr, len(pl.CPU), want)
		}
		seen := map[int]bool{}
		for r, cpu := range pl.CPU {
			if cpu < 0 || cpu >= topo.Contexts() {
				t.Fatalf("rank %d on CPU %d outside topology %v", r, cpu, topo)
			}
			if seen[cpu] {
				t.Fatalf("CPU %d pinned twice by %q", cpu, plStr)
			}
			seen[cpu] = true
			if !pl.Priority[r].Valid() {
				t.Fatalf("rank %d has invalid priority %d", r, pl.Priority[r])
			}
		}
		if err := pl.validate(Topology{Chips: topo.Chips, CoresPerChip: topo.CoresPerChip, SMTWays: topo.SMTWays}); err != nil {
			t.Fatalf("parsed placement fails Run validation: %v", err)
		}
		if _, err := pl.inner(); err != nil {
			t.Fatalf("parsed placement fails priority conversion: %v", err)
		}
	})
}

// FuzzParseScenario fuzzes the scenario specification grammar: any spec
// that parses must yield a canonical identity that round-trips through
// the grammar, and a generator that either errors descriptively or
// produces a well-formed job, deterministically.
func FuzzParseScenario(f *testing.F) {
	for _, s := range []string{
		"uniform", "ramp,ranks=8,skew=1.5", "step,skew=5,outlier=2",
		"phaseshift,period=3", "bursty,amp=3,seed=42", "bimodal,kind2=l2",
		"ramp, skew = 2 , base = 7000", "uniform,ranks=3", "uniform,kind=spin",
		"warp", "", "ramp,skew", "ramp,skew=0", "uniform,iters=999999",
		"bursty,seed=-1", "uniform,ranks=0,iters=1,base=1",
	} {
		f.Add(s)
	}
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseScenario(s)
		if err != nil {
			return // rejected input: nothing more to check
		}
		id := ScenarioID(sc)
		if id == "" {
			t.Fatalf("ParseScenario(%q) yielded an empty identity", s)
		}
		// The identity round-trips through the spec grammar: rebuilding
		// "name,k=v,..." from Name+Params re-parses to the same identity.
		parts := []string{sc.Name()}
		for k, v := range sc.Params() {
			parts = append(parts, k+"="+v)
		}
		round, err := ParseScenario(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("effective parameters of %q do not re-parse: %v", s, err)
		}
		if ScenarioID(round) != id {
			t.Fatalf("identity of %q does not round-trip: %q vs %q", s, ScenarioID(round), id)
		}
		// Generation is total (no panics), deterministic, and any job it
		// yields is well-formed for its topology.
		job, err := sc.Job(topo)
		if err != nil {
			return
		}
		again, err := sc.Job(topo)
		if err != nil || !reflect.DeepEqual(job, again) {
			t.Fatalf("generation of %q is not deterministic (%v)", s, err)
		}
		if len(job.Ranks) == 0 || len(job.Ranks)%2 != 0 || len(job.Ranks) > topo.Contexts() {
			t.Fatalf("generated job has %d ranks on %s", len(job.Ranks), topo)
		}
		for r, prog := range job.Ranks {
			if len(prog) == 0 {
				t.Fatalf("rank %d has no phases", r)
			}
		}
	})
}
