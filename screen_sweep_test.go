package smtbalance

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The screening differential suite: a screened sweep is the exhaustive
// sweep minus configurations the analytical predictor ruled out, so on
// every golden-style workload the two must agree on the winner, and the
// screened ranking must be exactly the exhaustive ranking restricted to
// the simulated shortlist — any other relationship means screening
// changed a simulation, which it must never do.

// screenGoldenJobs returns paper-shaped workloads at test scale: the
// Table IV MetBench split (light/heavy alternating), the Table V BT-MZ
// zone loads (18/24/67/100% of the heaviest) with their ring exchange,
// and a Table VI SIESTA-style mixed distribution.
func screenGoldenJobs() map[string]Job {
	jobs := make(map[string]Job)

	metbench := Job{Name: "metbench-screen"}
	for _, n := range []int64{6000, 24000, 6000, 24000} {
		metbench.Ranks = append(metbench.Ranks, []Phase{
			Compute("fpu", n), Barrier(),
			Compute("fpu", n), Barrier(),
		})
	}
	jobs["metbench"] = metbench

	btmz := Job{Name: "btmz-screen"}
	for r, n := range []int64{3960, 5280, 14740, 22000} {
		var prog []Phase
		for i := 0; i < 3; i++ {
			prog = append(prog, Compute("fpu", n), Exchange(4<<10, (r+1)%4, (r+3)%4), Barrier())
		}
		btmz.Ranks = append(btmz.Ranks, prog)
	}
	jobs["btmz"] = btmz

	siesta := Job{Name: "siesta-screen"}
	for _, n := range []int64{16000, 11000, 7000, 20000} {
		siesta.Ranks = append(siesta.Ranks, []Phase{
			Compute("mem", n/4), Compute("fpu", n), Barrier(),
		})
	}
	jobs["siesta"] = siesta

	return jobs
}

// assertScreenedRestriction checks the screening contract between an
// exhaustive and a screened result of the same sweep: same winner, and
// the screened ranking equals the exhaustive ranking with the
// screened-out entries deleted.
func assertScreenedRestriction(t *testing.T, exhaustive, screened *SweepResult) {
	t.Helper()
	if screened.Screened == 0 {
		t.Fatal("screening never engaged")
	}
	if got, want := screened.Evaluated+screened.Screened, exhaustive.Evaluated; got != want {
		t.Errorf("Evaluated %d + Screened %d = %d, want the full space %d",
			screened.Evaluated, screened.Screened, got, want)
	}
	eb, err := exhaustive.Best()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := screened.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eb, sb) {
		t.Errorf("winners differ:\nexhaustive: %+v\nscreened:   %+v", eb, sb)
	}
	// Restriction: walk the exhaustive ranking, keeping entries the
	// screened sweep also ranked; the result must be the screened
	// ranking, byte for byte.
	simulated := make(map[string]bool, len(screened.Entries))
	entryKey := func(e SweepEntry) string {
		var b strings.Builder
		for _, c := range e.Placement.CPU {
			b.WriteByte(byte('0' + c))
		}
		b.WriteByte('|')
		for _, p := range e.Placement.Priority {
			b.WriteByte(byte('0' + int(p)))
		}
		b.WriteByte('|')
		b.WriteString(e.Policy)
		return b.String()
	}
	for _, e := range screened.Entries {
		simulated[entryKey(e)] = true
	}
	var restricted []SweepEntry
	for _, e := range exhaustive.Entries {
		if simulated[entryKey(e)] {
			restricted = append(restricted, e)
		}
	}
	if !reflect.DeepEqual(restricted, screened.Entries) {
		t.Errorf("screened ranking is not the exhaustive ranking restricted to the shortlist\nrestricted[:3]: %+v\nscreened[:3]:   %+v",
			restricted[:min(3, len(restricted))], screened.Entries[:min(3, len(screened.Entries))])
	}
}

// TestScreenedSweepWinnerIdentityGolden: on every golden-style workload
// and on 1- and 2-chip topologies, the screened two-level sweep finds
// the exhaustive winner and ranks its shortlist identically.  Fresh
// machines on each side keep the result caches from masking a wrong
// shortlist with warm entries.
func TestScreenedSweepWinnerIdentityGolden(t *testing.T) {
	topos := map[string]Topology{"1chip": DefaultTopology(), "2chip": twoChips()}
	for tn, topo := range topos {
		for jn, job := range screenGoldenJobs() {
			t.Run(tn+"/"+jn, func(t *testing.T) {
				opts := &Options{Topology: topo, NoOSNoise: true}
				mex, err := NewMachine(opts)
				if err != nil {
					t.Fatal(err)
				}
				exhaustive, err := mex.SweepAll(t.Context(), job, UserSettableSpace(), nil)
				if err != nil {
					t.Fatal(err)
				}
				msc, err := NewMachine(opts)
				if err != nil {
					t.Fatal(err)
				}
				screened, err := msc.SweepAll(t.Context(), job, UserSettableSpace(),
					&SweepOptions{Screen: 4})
				if err != nil {
					t.Fatal(err)
				}
				assertScreenedRestriction(t, exhaustive, screened)
			})
		}
	}
}

// TestScreenedSweepShrinkingScreenNeverCorrupts: tightening the
// simulation budget can only drop entries from the ranking — every
// surviving entry keeps the score, position-relative order and metrics
// the exhaustive sweep gave it, for every budget down to Screen: 1.
func TestScreenedSweepShrinkingScreenNeverCorrupts(t *testing.T) {
	job := screenGoldenJobs()["metbench"]
	mex, err := NewMachine(&Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := mex.SweepAll(t.Context(), job, UserSettableSpace(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prevEvaluated := exhaustive.Evaluated + 1
	for _, screen := range []int{64, 16, 4, 1} {
		msc, err := NewMachine(&Options{NoOSNoise: true})
		if err != nil {
			t.Fatal(err)
		}
		screened, err := msc.SweepAll(t.Context(), job, UserSettableSpace(),
			&SweepOptions{Screen: screen})
		if err != nil {
			t.Fatal(err)
		}
		assertScreenedRestriction(t, exhaustive, screened)
		if screened.Evaluated > prevEvaluated {
			t.Errorf("Screen: %d simulated %d points, more than the looser budget's %d",
				screen, screened.Evaluated, prevEvaluated)
		}
		prevEvaluated = screened.Evaluated
	}
}

// TestScreenedSweepPolicyAxis: with a policy axis the placement points
// are screened once and the shortlist runs under every policy, so the
// restriction property holds across the whole policy × placement cross
// product and Screened counts whole policy columns.
func TestScreenedSweepPolicyAxis(t *testing.T) {
	topo := DefaultTopology()
	job, err := mustScenarioJob(t, "step,base=5000,iters=4,skew=5", topo)
	if err != nil {
		t.Fatal(err)
	}
	space := Space{Policies: []Policy{StaticPolicy{}, &PaperDynamic{}}}
	mex, err := NewMachine(&Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := mex.SweepAll(t.Context(), job, space, nil)
	if err != nil {
		t.Fatal(err)
	}
	msc, err := NewMachine(&Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	screened, err := msc.SweepAll(t.Context(), job, space, &SweepOptions{Screen: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertScreenedRestriction(t, exhaustive, screened)
	if screened.Screened%len(space.Policies) != 0 {
		t.Errorf("Screened %d is not a multiple of the %d-policy axis",
			screened.Screened, len(space.Policies))
	}
}

// TestScreenedMatrixIdentical: matrix cells sweep a single fixed
// placement per policy, so forwarding a screening budget must not change
// a single entry — the guarantee that lets MatrixOptions.Screen stay out
// of the matrix cache key.
func TestScreenedMatrixIdentical(t *testing.T) {
	spec := MatrixSpec{
		Scenarios:  []Scenario{mustParseScenario(t, "uniform,base=5000,iters=3"), mustParseScenario(t, "ramp,base=5000,iters=3")},
		Policies:   []Policy{StaticPolicy{}, &PaperDynamic{}},
		Topologies: []Topology{DefaultTopology()},
	}
	plain, err := EvalMatrixAll(t.Context(), spec, &MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withScreen, err := EvalMatrixAll(t.Context(), spec, &MatrixOptions{Screen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Entries, withScreen.Entries) {
		t.Errorf("screening budget changed matrix entries:\nplain: %+v\nscreened: %+v",
			plain.Entries, withScreen.Entries)
	}
}

func mustParseScenario(t *testing.T, spec string) Scenario {
	t.Helper()
	sc, err := ParseScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSweepScreenValidation pins the Screen knob's edges: negative is an
// error, and a budget at least the space size degenerates to the
// exhaustive sweep (nothing screened).
func TestSweepScreenValidation(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SweepAll(t.Context(), job, UserSettableSpace(), &SweepOptions{Screen: -1}); err == nil {
		t.Error("negative Screen accepted")
	} else if !strings.HasPrefix(err.Error(), "smtbalance: ") {
		t.Errorf("negative-Screen error not wrapped: %v", err)
	}
	res, err := m.SweepAll(t.Context(), job, UserSettableSpace(), &SweepOptions{Screen: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Screened != 0 {
		t.Errorf("oversized budget screened %d points", res.Screened)
	}
	if res.Evaluated != 243 {
		t.Errorf("oversized budget evaluated %d points, want the full 243", res.Evaluated)
	}
}

// BenchmarkScreenedSweep measures the two-level coarse → fine sweep
// against the exhaustive sweep on the paper's 4-rank spaces: 243
// configurations on the 1×2×2 machine and 486 on a 2×2×2 node.  Every
// sample runs both sides on fresh machines (the result cache would
// otherwise turn the comparison into map lookups), gates winner
// identity on every sample, and on the 486-point space gates a ≥ 3×
// median wall-clock speedup — the tentpole claim, guarded by CI's bench
// smoke.  Record with the README recipe into BENCH_screen_baseline.json.
func BenchmarkScreenedSweep(b *testing.B) {
	job := Job{Name: "btmz-screened"}
	for r, n := range []int64{3960, 5280, 14740, 22000} {
		var prog []Phase
		for i := 0; i < 3; i++ {
			prog = append(prog, Compute("fpu", n), Exchange(4<<10, (r+1)%4, (r+3)%4), Barrier())
		}
		job.Ranks = append(job.Ranks, prog)
	}
	spaces := []struct {
		name    string
		topo    Topology
		points  int
		gate    float64
		samples int
	}{
		{"243-1chip", DefaultTopology(), 243, 0, 3},
		{"486-2chip", Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}, 486, 3, 3},
	}
	ctx := context.Background()
	for _, sp := range spaces {
		sp := sp
		b.Run(sp.name, func(b *testing.B) {
			opts := &Options{Topology: sp.topo, NoOSNoise: true}
			sweepOn := func(b *testing.B, screen int) (*SweepResult, time.Duration) {
				m, err := NewMachine(opts)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				res, err := m.SweepAll(ctx, job, UserSettableSpace(), &SweepOptions{Screen: screen})
				if err != nil {
					b.Fatal(err)
				}
				return res, time.Since(start)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweepOn(b, 4)
			}
			b.StopTimer()

			// Identity and speedup gates on paired fresh-machine samples,
			// independent of b.N so CI's -benchtime=1x still measures; the
			// median ratio absorbs scheduler hiccups.
			ratios := make([]float64, 0, sp.samples)
			var exMS, scMS float64
			var screenedOut int
			for i := 0; i < sp.samples; i++ {
				exhaustive, exD := sweepOn(b, 0)
				screened, scD := sweepOn(b, 4)
				if exhaustive.Evaluated != sp.points {
					b.Fatalf("exhaustive space has %d points, want %d", exhaustive.Evaluated, sp.points)
				}
				eb, err := exhaustive.Best()
				if err != nil {
					b.Fatal(err)
				}
				sb, err := screened.Best()
				if err != nil {
					b.Fatal(err)
				}
				if !reflect.DeepEqual(eb, sb) {
					b.Fatalf("screened winner diverges from exhaustive:\nexhaustive: %+v\nscreened:   %+v", eb, sb)
				}
				if screened.Screened == 0 {
					b.Fatal("screening never engaged")
				}
				screenedOut = screened.Screened
				exMS, scMS = exD.Seconds()*1000, scD.Seconds()*1000
				ratios = append(ratios, float64(exD)/float64(scD))
			}
			// Median of sp.samples ratios.
			for i := range ratios {
				for j := i + 1; j < len(ratios); j++ {
					if ratios[j] < ratios[i] {
						ratios[i], ratios[j] = ratios[j], ratios[i]
					}
				}
			}
			speedup := ratios[len(ratios)/2]
			b.ReportMetric(speedup, "screen-speedup-x")
			b.ReportMetric(exMS, "exhaustive-ms")
			b.ReportMetric(scMS, "screened-ms")
			b.ReportMetric(float64(screenedOut), "screened-out")
			if sp.gate > 0 && speedup < sp.gate {
				b.Fatalf("screened sweep speedup %.2fx < %.0fx on the %d-point space (median of %d paired runs)",
					speedup, sp.gate, sp.points, sp.samples)
			}
		})
	}
}
