package smtbalance

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"repro/internal/diskcache"
	"repro/internal/mpisim"
	"repro/internal/sweep"
)

// cacheKeyVersion names the canonical cache-key format.  It is hashed
// into every key (envJobKey's leading tag) and names the disk store's
// directory, so bumping it on a format change invalidates both tiers
// together.
const cacheKeyVersion = "v2"

// cacheKey identifies one deterministic simulator configuration: a
// canonical SHA-256 over (topology, simulation options, job, placement).
// The simulator is pure, so equal keys mean byte-identical outcomes.
type cacheKey [sha256.Size]byte

// hasher accumulates the canonical encoding.  Every field is written
// with an explicit tag and fixed-width integers so that distinct
// configurations can never collide by concatenation ambiguity.
type hasher struct {
	buf []byte
}

func (h *hasher) u64(v uint64) {
	h.buf = binary.BigEndian.AppendUint64(h.buf, v)
}

func (h *hasher) i64(v int64) { h.u64(uint64(v)) }

func (h *hasher) tag(b byte) { h.buf = append(h.buf, b) }

func (h *hasher) bool(v bool) {
	if v {
		h.tag(1)
	} else {
		h.tag(0)
	}
}

// str hashes a length-prefixed string, so concatenated fields can never
// collide by reassociation.
func (h *hasher) str(s string) {
	h.i64(int64(len(s)))
	h.buf = append(h.buf, s...)
}

// envJobKey hashes the run environment and the job — everything but the
// placement, which sweeps vary point by point.
//
// Audit: every behavior-affecting Options field must appear here —
// mechanically enforced by mtlint's cachekey pass (the //mtlint:cachekey
// directives on Options and the hashers; see docs/lint.md).
//   - Topology: hashed (three dimensions, normalized).
//   - VanillaKernel, NoOSNoise, ColdCaches: hashed.
//   - Policy / DynamicBalance / MaxPriorityDiff: all three resolve to
//     one policy value (resolvePolicy), hashed structurally — the name
//     and every parameter key/value length-prefixed, keys sorted — so
//     the deprecated knobs and their Policy spelling share entries,
//     while distinct policies or parameters can never collide, even for
//     custom policies whose Name/Params contain the rendered PolicyID
//     grammar's delimiters.
//   - MaxCycles: hashed.
//   - OnIteration: not hashed — its presence disables caching entirely
//     (Machine.Run), as does a policy that cannot be re-bound per run
//     (policyCacheable).
//   - LoadDrift: not hashed — like OnIteration its presence disables
//     caching entirely (an arbitrary function cannot be hashed, and the
//     loads it produces are not in the job).
//   - Exact: deliberately not hashed — it selects between two execution
//     strategies with byte-identical results (the phase-skip engine only
//     applies provably exact repetitions; ff_test.go and the root
//     differential tests enforce the identity), so both spellings must
//     share cache entries.
//
// Job.Name is deliberately excluded: it labels diagnostics and never
// reaches the simulated machine, so two jobs differing only in name
// share cache entries.
//
// SweepOptions (Workers, Top, Objective, Screen, Progress) is likewise
// outside the key on purpose: none of its fields change what any single
// run computes.  Screen in particular only *selects* which placement
// points are simulated — every run a screened sweep does execute goes
// through this same key, so screened and exhaustive sweeps share cache
// entries point for point (the screened-vs-exhaustive differential
// tests depend on exactly that).
//
//mtlint:cachekey-hasher run
func envJobKey(topo Topology, opts Options, pol Policy, job Job) [sha256.Size]byte {
	var h hasher
	h.str(cacheKeyVersion)
	topo = topo.normalized()
	h.i64(int64(topo.Chips))
	h.i64(int64(topo.CoresPerChip))
	h.i64(int64(topo.SMTWays))
	h.bool(opts.VanillaKernel)
	h.bool(opts.NoOSNoise)
	h.bool(opts.ColdCaches)
	if pol == nil {
		h.tag(0)
	} else {
		h.tag(1)
		h.str(pol.Name())
		params := pol.Params()
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.i64(int64(len(keys)))
		for _, k := range keys {
			h.str(k)
			h.str(params[k])
		}
	}
	h.i64(opts.MaxCycles)
	h.i64(int64(len(job.Ranks)))
	for _, prog := range job.Ranks {
		h.tag('R')
		h.i64(int64(len(prog)))
		for _, ph := range prog {
			switch ph.inner.Kind {
			case mpisim.PhaseCompute:
				h.tag('C')
				h.u64(uint64(ph.inner.Load.Kind))
				h.i64(ph.inner.Load.N)
				h.i64(ph.inner.Load.Footprint)
				h.u64(ph.inner.Load.Base)
				h.u64(ph.inner.Load.Seed)
			case mpisim.PhaseBarrier:
				h.tag('B')
			case mpisim.PhaseExchange:
				h.tag('E')
				h.i64(ph.inner.Bytes)
				h.i64(int64(len(ph.inner.Peers)))
				for _, p := range ph.inner.Peers {
					h.i64(int64(p))
				}
			}
		}
	}
	return sha256.Sum256(h.buf)
}

// placementKey extends an environment+job hash with a concrete placement,
// yielding the full cache key of one run.
func placementKey(base [sha256.Size]byte, cpu []int, prio []int) cacheKey {
	var h hasher
	h.buf = append(h.buf, base[:]...)
	h.tag('P')
	h.i64(int64(len(cpu)))
	for _, c := range cpu {
		h.i64(int64(c))
	}
	for _, p := range prio {
		h.i64(int64(p))
	}
	return sha256.Sum256(h.buf)
}

// matrixCellKey hashes one evaluation-matrix cell — the topology, the
// scenario identity and the ordered policy identities — the
// scenario-aware key under which a Matrix engine memoizes whole cells.
// Scenario and policy IDs are canonical (equal ID ⇒ equal behavior), so
// hashing the rendered IDs length-prefixed is collision-free for the
// same reason envJobKey's structural policy hash is.
//
//mtlint:cachekey-hasher matrix
func matrixCellKey(topo Topology, scenarioID string, policyIDs []string) cacheKey {
	var h hasher
	h.tag('M')
	h.tag('1')
	topo = topo.normalized()
	h.i64(int64(topo.Chips))
	h.i64(int64(topo.CoresPerChip))
	h.i64(int64(topo.SMTWays))
	h.str(scenarioID)
	h.i64(int64(len(policyIDs)))
	for _, id := range policyIDs {
		h.str(id)
	}
	return sha256.Sum256(h.buf)
}

// CacheStats reports a Machine's result-cache effectiveness.  The
// number of simulations actually executed is Misses − Coalesced −
// DiskHits: every lookup that neither hit memory, joined an identical
// in-flight computation, nor was revived from disk ran the simulator.
type CacheStats struct {
	// Hits counts lookups served from memory.
	Hits int64 `json:"hits"`
	// Misses counts lookups the in-memory tier could not answer.
	Misses int64 `json:"misses"`
	// Coalesced counts missed lookups that joined an identical
	// in-flight computation (singleflight) instead of simulating a
	// duplicate.
	Coalesced int64 `json:"coalesced"`
	// DiskHits counts missed lookups answered by the persistent disk
	// tier (zero without Machine.UseDiskCache).
	DiskHits int64 `json:"disk_hits"`
	// DiskWrites counts records persisted to the disk tier.
	DiskWrites int64 `json:"disk_writes"`
	// Results is the entry count of the full-result cache layer
	// (complete runs, traces included).
	Results int `json:"results"`
	// Metrics is the entry count of the sweep-point metrics layer.
	Metrics int `json:"metrics"`
}

// keyRing is a bounded FIFO of cache keys backed by a circular buffer.
// Eviction pops the head in place; the old `order = order[1:]` re-slice
// kept every evicted key's slot reachable from the backing array, so a
// long-running server's eviction order grew without bound even though
// the map stayed capped.
type keyRing struct {
	buf  []cacheKey
	head int // index of the oldest element
	n    int // live element count
}

// len returns the number of queued keys.
func (r *keyRing) len() int { return r.n }

// push appends k, growing the buffer geometrically; an owner that only
// pushes after evicting at its cap keeps the buffer at most one
// doubling past that cap forever.
func (r *keyRing) push(k cacheKey) {
	if r.n == len(r.buf) {
		grown := make([]cacheKey, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = k
	r.n++
}

// pop removes and returns the oldest key, zeroing its slot for reuse.
func (r *keyRing) pop() cacheKey {
	if r.n == 0 {
		panic("smtbalance: pop from empty key ring")
	}
	k := r.buf[r.head]
	r.buf[r.head] = cacheKey{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return k
}

// resultCache is the Machine's deterministic result store.  It has two
// layers keyed by the same canonical hash: full Results (with traces)
// for Machine.Run, and lightweight sweep metrics for the many points a
// sweep evaluates.  Both layers are bounded with FIFO eviction — the
// simulator is pure, so eviction only costs a re-run, never correctness.
//
// Two optional tiers extend it: a flightGroup per layer coalesces
// identical in-flight computations (Machine.runPolicy and the sweep
// RunFn orchestrate join/publish), and a content-addressed disk store
// (Machine.UseDiskCache) persists records across restarts and shares
// them between replicas pointed at one directory.
type resultCache struct {
	mu           sync.Mutex
	hits, misses int64 //mtlint:guardedby mu
	coalesced    int64 //mtlint:guardedby mu
	diskHits     int64 //mtlint:guardedby mu
	diskWrites   int64 //mtlint:guardedby mu

	runs     map[cacheKey]*Result //mtlint:guardedby mu
	runOrder keyRing              //mtlint:guardedby mu
	runCap   int                  //mtlint:unguarded fixed at construction, read-only afterwards

	mets     map[cacheKey]sweep.Metrics //mtlint:guardedby mu
	metOrder keyRing                    //mtlint:guardedby mu
	metCap   int                        //mtlint:unguarded fixed at construction, read-only afterwards

	// disk is nil without a disk tier.
	disk *diskcache.Store //mtlint:guardedby mu

	//mtlint:unguarded flightGroup synchronizes itself; leaders publish outside c.mu
	runFlights flightGroup[*Result]
	//mtlint:unguarded flightGroup synchronizes itself; leaders publish outside c.mu
	metFlights flightGroup[sweep.Metrics]
}

// Default cache bounds: full results carry traces (tens of KB each),
// metrics are three numbers, so the metrics layer affords far more
// entries — enough to hold the paper's whole OS-settable 4-rank space.
const (
	defaultRunCacheCap    = 512
	defaultMetricCacheCap = 1 << 16
)

func newResultCache() *resultCache {
	return &resultCache{
		runs:   make(map[cacheKey]*Result),
		runCap: defaultRunCacheCap,
		mets:   make(map[cacheKey]sweep.Metrics),
		metCap: defaultMetricCacheCap,
	}
}

func (c *resultCache) getRun(k cacheKey) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.runs[k]
	if ok {
		c.hits++
		return res.clone(), true
	}
	c.misses++
	return nil, false
}

func (c *resultCache) putRun(k cacheKey, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.runs[k]; ok {
		return
	}
	if len(c.runs) >= c.runCap {
		delete(c.runs, c.runOrder.pop())
	}
	c.runs[k] = res.clone()
	c.runOrder.push(k)
}

func (c *resultCache) getMetrics(k cacheKey) (sweep.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	met, ok := c.mets[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return met, ok
}

func (c *resultCache) putMetrics(k cacheKey, met sweep.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mets[k]; ok {
		return
	}
	if len(c.mets) >= c.metCap {
		delete(c.mets, c.metOrder.pop())
	}
	c.mets[k] = met
	c.metOrder.push(k)
}

func (c *resultCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = make(map[cacheKey]*Result)
	c.runOrder = keyRing{}
	c.mets = make(map[cacheKey]sweep.Metrics)
	c.metOrder = keyRing{}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Coalesced: c.coalesced, DiskHits: c.diskHits, DiskWrites: c.diskWrites,
		Results: len(c.runs), Metrics: len(c.mets),
	}
}

// noteCoalesced counts a lookup that joined an in-flight computation.
func (c *resultCache) noteCoalesced() {
	c.mu.Lock()
	c.coalesced++
	c.mu.Unlock()
}

// setDisk attaches (or detaches, with nil) the persistent tier.
func (c *resultCache) setDisk(store *diskcache.Store) {
	c.mu.Lock()
	c.disk = store
	c.mu.Unlock()
}

// diskStore returns the attached persistent tier, or nil.
func (c *resultCache) diskStore() *diskcache.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// diskKey renders a cache key as the disk store's content address.  The
// record kind ("run" or "met") is part of the address: both layers hash
// the same configuration to the same bytes, but their records differ.
func diskKey(k cacheKey, kind string) string {
	return hex.EncodeToString(k[:]) + "-" + kind
}

// getRunDisk revives a full result from the disk tier.  All failures —
// no tier, absent record, IO error, corrupt record — degrade to a miss;
// the disk can slow a cold start down, never break a request.
func (c *resultCache) getRunDisk(k cacheKey) (*Result, bool) {
	store := c.diskStore()
	if store == nil {
		return nil, false
	}
	data, ok, err := store.Get(diskKey(k, "run"))
	if err != nil || !ok {
		return nil, false
	}
	res, err := decodeResult(data)
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	return res, true
}

// putRunDisk persists a full result, best-effort.
func (c *resultCache) putRunDisk(k cacheKey, res *Result) {
	store := c.diskStore()
	if store == nil {
		return
	}
	data, ok := encodeResult(res)
	if !ok {
		return
	}
	if store.Put(diskKey(k, "run"), data) == nil {
		c.mu.Lock()
		c.diskWrites++
		c.mu.Unlock()
	}
}

// getMetricsDisk revives a sweep-point metrics record from the disk
// tier, with the same degrade-to-miss failure handling as getRunDisk.
func (c *resultCache) getMetricsDisk(k cacheKey) (sweep.Metrics, bool) {
	store := c.diskStore()
	if store == nil {
		return sweep.Metrics{}, false
	}
	data, ok, err := store.Get(diskKey(k, "met"))
	if err != nil || !ok {
		return sweep.Metrics{}, false
	}
	met, err := decodeMetrics(data)
	if err != nil {
		return sweep.Metrics{}, false
	}
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	return met, true
}

// putMetricsDisk persists a sweep-point metrics record, best-effort.
func (c *resultCache) putMetricsDisk(k cacheKey, met sweep.Metrics) {
	store := c.diskStore()
	if store == nil {
		return
	}
	if store.Put(diskKey(k, "met"), encodeMetrics(met)) == nil {
		c.mu.Lock()
		c.diskWrites++
		c.mu.Unlock()
	}
}

// clone returns an independent copy of the result: the per-rank slice is
// fresh so callers may mutate theirs, while the immutable finished trace
// is shared (its writers only read once Finish has run).
func (r *Result) clone() *Result {
	out := *r
	out.Ranks = append([]RankSummary(nil), r.Ranks...)
	return &out
}
