package smtbalance

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"

	"repro/internal/mpisim"
	"repro/internal/sweep"
)

// cacheKey identifies one deterministic simulator configuration: a
// canonical SHA-256 over (topology, simulation options, job, placement).
// The simulator is pure, so equal keys mean byte-identical outcomes.
type cacheKey [sha256.Size]byte

// hasher accumulates the canonical encoding.  Every field is written
// with an explicit tag and fixed-width integers so that distinct
// configurations can never collide by concatenation ambiguity.
type hasher struct {
	buf []byte
}

func (h *hasher) u64(v uint64) {
	h.buf = binary.BigEndian.AppendUint64(h.buf, v)
}

func (h *hasher) i64(v int64) { h.u64(uint64(v)) }

func (h *hasher) tag(b byte) { h.buf = append(h.buf, b) }

func (h *hasher) bool(v bool) {
	if v {
		h.tag(1)
	} else {
		h.tag(0)
	}
}

// str hashes a length-prefixed string, so concatenated fields can never
// collide by reassociation.
func (h *hasher) str(s string) {
	h.i64(int64(len(s)))
	h.buf = append(h.buf, s...)
}

// envJobKey hashes the run environment and the job — everything but the
// placement, which sweeps vary point by point.
//
// Audit: every behavior-affecting Options field must appear here.
//   - Topology: hashed (three dimensions, normalized).
//   - VanillaKernel, NoOSNoise, ColdCaches: hashed.
//   - Policy / DynamicBalance / MaxPriorityDiff: all three resolve to
//     one policy value (resolvePolicy), hashed structurally — the name
//     and every parameter key/value length-prefixed, keys sorted — so
//     the deprecated knobs and their Policy spelling share entries,
//     while distinct policies or parameters can never collide, even for
//     custom policies whose Name/Params contain the rendered PolicyID
//     grammar's delimiters.
//   - MaxCycles: hashed.
//   - OnIteration: not hashed — its presence disables caching entirely
//     (Machine.Run), as does a policy that cannot be re-bound per run
//     (policyCacheable).
//   - LoadDrift: not hashed — like OnIteration its presence disables
//     caching entirely (an arbitrary function cannot be hashed, and the
//     loads it produces are not in the job).
//   - Exact: deliberately not hashed — it selects between two execution
//     strategies with byte-identical results (the phase-skip engine only
//     applies provably exact repetitions; ff_test.go and the root
//     differential tests enforce the identity), so both spellings must
//     share cache entries.
//
// Job.Name is deliberately excluded: it labels diagnostics and never
// reaches the simulated machine, so two jobs differing only in name
// share cache entries.
func envJobKey(topo Topology, opts Options, pol Policy, job Job) [sha256.Size]byte {
	var h hasher
	h.tag('v')
	h.tag('2')
	topo = topo.normalized()
	h.i64(int64(topo.Chips))
	h.i64(int64(topo.CoresPerChip))
	h.i64(int64(topo.SMTWays))
	h.bool(opts.VanillaKernel)
	h.bool(opts.NoOSNoise)
	h.bool(opts.ColdCaches)
	if pol == nil {
		h.tag(0)
	} else {
		h.tag(1)
		h.str(pol.Name())
		params := pol.Params()
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.i64(int64(len(keys)))
		for _, k := range keys {
			h.str(k)
			h.str(params[k])
		}
	}
	h.i64(opts.MaxCycles)
	h.i64(int64(len(job.Ranks)))
	for _, prog := range job.Ranks {
		h.tag('R')
		h.i64(int64(len(prog)))
		for _, ph := range prog {
			switch ph.inner.Kind {
			case mpisim.PhaseCompute:
				h.tag('C')
				h.u64(uint64(ph.inner.Load.Kind))
				h.i64(ph.inner.Load.N)
				h.i64(ph.inner.Load.Footprint)
				h.u64(ph.inner.Load.Base)
				h.u64(ph.inner.Load.Seed)
			case mpisim.PhaseBarrier:
				h.tag('B')
			case mpisim.PhaseExchange:
				h.tag('E')
				h.i64(ph.inner.Bytes)
				h.i64(int64(len(ph.inner.Peers)))
				for _, p := range ph.inner.Peers {
					h.i64(int64(p))
				}
			}
		}
	}
	return sha256.Sum256(h.buf)
}

// placementKey extends an environment+job hash with a concrete placement,
// yielding the full cache key of one run.
func placementKey(base [sha256.Size]byte, cpu []int, prio []int) cacheKey {
	var h hasher
	h.buf = append(h.buf, base[:]...)
	h.tag('P')
	h.i64(int64(len(cpu)))
	for _, c := range cpu {
		h.i64(int64(c))
	}
	for _, p := range prio {
		h.i64(int64(p))
	}
	return sha256.Sum256(h.buf)
}

// matrixCellKey hashes one evaluation-matrix cell — the topology, the
// scenario identity and the ordered policy identities — the
// scenario-aware key under which a Matrix engine memoizes whole cells.
// Scenario and policy IDs are canonical (equal ID ⇒ equal behavior), so
// hashing the rendered IDs length-prefixed is collision-free for the
// same reason envJobKey's structural policy hash is.
func matrixCellKey(topo Topology, scenarioID string, policyIDs []string) cacheKey {
	var h hasher
	h.tag('M')
	h.tag('1')
	topo = topo.normalized()
	h.i64(int64(topo.Chips))
	h.i64(int64(topo.CoresPerChip))
	h.i64(int64(topo.SMTWays))
	h.str(scenarioID)
	h.i64(int64(len(policyIDs)))
	for _, id := range policyIDs {
		h.str(id)
	}
	return sha256.Sum256(h.buf)
}

// CacheStats reports a Machine's result-cache effectiveness.
type CacheStats struct {
	// Hits counts lookups served from memory.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to simulate.
	Misses int64 `json:"misses"`
	// Results is the entry count of the full-result cache layer
	// (complete runs, traces included).
	Results int `json:"results"`
	// Metrics is the entry count of the sweep-point metrics layer.
	Metrics int `json:"metrics"`
}

// resultCache is the Machine's deterministic result store.  It has two
// layers keyed by the same canonical hash: full Results (with traces)
// for Machine.Run, and lightweight sweep metrics for the many points a
// sweep evaluates.  Both layers are bounded with FIFO eviction — the
// simulator is pure, so eviction only costs a re-run, never correctness.
type resultCache struct {
	mu           sync.Mutex
	hits, misses int64

	runs     map[cacheKey]*Result
	runOrder []cacheKey
	runCap   int

	mets     map[cacheKey]sweep.Metrics
	metOrder []cacheKey
	metCap   int
}

// Default cache bounds: full results carry traces (tens of KB each),
// metrics are three numbers, so the metrics layer affords far more
// entries — enough to hold the paper's whole OS-settable 4-rank space.
const (
	defaultRunCacheCap    = 512
	defaultMetricCacheCap = 1 << 16
)

func newResultCache() *resultCache {
	return &resultCache{
		runs:   make(map[cacheKey]*Result),
		runCap: defaultRunCacheCap,
		mets:   make(map[cacheKey]sweep.Metrics),
		metCap: defaultMetricCacheCap,
	}
}

func (c *resultCache) getRun(k cacheKey) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.runs[k]
	if ok {
		c.hits++
		return res.clone(), true
	}
	c.misses++
	return nil, false
}

func (c *resultCache) putRun(k cacheKey, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.runs[k]; ok {
		return
	}
	if len(c.runs) >= c.runCap {
		evict := c.runOrder[0]
		c.runOrder = c.runOrder[1:]
		delete(c.runs, evict)
	}
	c.runs[k] = res.clone()
	c.runOrder = append(c.runOrder, k)
}

func (c *resultCache) getMetrics(k cacheKey) (sweep.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	met, ok := c.mets[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return met, ok
}

func (c *resultCache) putMetrics(k cacheKey, met sweep.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mets[k]; ok {
		return
	}
	if len(c.mets) >= c.metCap {
		evict := c.metOrder[0]
		c.metOrder = c.metOrder[1:]
		delete(c.mets, evict)
	}
	c.mets[k] = met
	c.metOrder = append(c.metOrder, k)
}

func (c *resultCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = make(map[cacheKey]*Result)
	c.runOrder = nil
	c.mets = make(map[cacheKey]sweep.Metrics)
	c.metOrder = nil
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Results: len(c.runs), Metrics: len(c.mets)}
}

// clone returns an independent copy of the result: the per-rank slice is
// fresh so callers may mutate theirs, while the immutable finished trace
// is shared (its writers only read once Finish has run).
func (r *Result) clone() *Result {
	out := *r
	out.Ranks = append([]RankSummary(nil), r.Ranks...)
	return &out
}
