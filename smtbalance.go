// Package smtbalance is a library for balancing HPC applications through
// smart allocation of multi-threaded processor resources, reproducing
// Boneti et al., "Balancing HPC Applications Through Smart Allocation of
// Resources in MT Processors" (IPDPS 2008).
//
// The paper's mechanism needs an IBM POWER5 — a dual-core, 2-way SMT chip
// whose hardware thread priorities skew the per-core decode-cycle
// allocation — plus a patched Linux kernel and an MPI runtime.  This
// library ships all of that as simulated substrates (see the internal
// packages) behind a small public API:
//
//   - Build an MPI-style Job from Compute/Barrier/Exchange phases.
//   - Pin ranks to the machine's hardware contexts with a Placement,
//     choosing each rank's hardware thread priority (0-7).  The default
//     machine is the paper's single chip (2 cores × 2-way SMT = 4
//     contexts); Options.Topology scales the node to N chips — each
//     with its own shared L2/L3 — and Topology.PinInOrder,
//     Topology.SuggestPlacement and ParsePlacement build placements for
//     it from (chip, core, context) coordinates.  Every paper table
//     assumes the 1×2×2 default.
//   - Run the job; the Result carries the paper's metrics (execution
//     time, per-rank computation/synchronization shares, the imbalance
//     percentage) and a PARAVER-style timeline.
//   - Let the library balance for you: SuggestPlacement derives a static
//     priority plan from per-rank work, and Options.Policy attaches an
//     online balancing Policy — the paper's Section VIII balancer
//     (PaperDynamic, the resolution of the deprecated
//     Options.DynamicBalance knob), a topology-aware two-level balancer
//     (HierarchicalPolicy), a proportional controller (FeedbackPolicy),
//     or your own via RegisterPolicy/ParsePolicy.  Space.Policies lets a
//     sweep rank policies against each other, and Session.Balance closes
//     the paper's profile → re-place → retune loop in one call.
//   - Search instead of guessing: Sweep fans every placement × priority
//     configuration out across a worker pool and ranks them by a
//     pluggable objective, and OptimizePlacement returns the best
//     configuration found — the by-hand procedure behind the paper's
//     Tables IV-VI, automated and parallel.  On multi-chip topologies
//     the space additionally covers packing co-scheduled pairs onto one
//     chip's L2 versus spreading them across chips, with chip- and
//     core-relabeling symmetries pruned.
//
// # The session-oriented API
//
// The paper's workflow is iterative — profile, re-place, re-prioritize,
// re-run — so the primary API is a long-lived Machine: build it once
// from the simulation Options with NewMachine, then call Machine.Run,
// Machine.Sweep (a streaming iterator with progress reporting),
// Machine.SweepAll and Machine.Optimize.  Every method takes a
// context.Context and cancels promptly, the Machine is safe for
// concurrent use, and — the simulator being deterministic — it memoizes
// results in a bounded cache keyed by a canonical hash of (topology,
// options, job, placement), so repeated configurations are served from
// memory (see CacheStats).  Machine.NewSession binds one job to the
// machine for the iterative loop itself: Session.Run records the last
// result and Session.SuggestFromLast turns its observed compute shares
// into the next placement to try.
//
// The package-level Run, Sweep and OptimizePlacement free functions are
// deprecated: they remain as thin wrappers over a shared default
// Machine (or a transient one for non-default options) and keep working
// unchanged, but new code should hold a Machine.  The `mtbalance serve`
// subcommand exposes a Machine over an HTTP JSON API.
//
// The quickstart example:
//
//	job := smtbalance.Job{Name: "demo", Ranks: [][]smtbalance.Phase{
//	    {smtbalance.Compute("fpu", 50000), smtbalance.Barrier()},
//	    {smtbalance.Compute("fpu", 200000), smtbalance.Barrier()},
//	    {smtbalance.Compute("fpu", 50000), smtbalance.Barrier()},
//	    {smtbalance.Compute("fpu", 200000), smtbalance.Barrier()},
//	}}
//	res, err := smtbalance.Run(job, smtbalance.PinInOrder(4), nil)
//
// See the examples/ directory for complete programs and internal/
// experiments for the reproduction of every table and figure of the paper.
package smtbalance

import (
	"fmt"

	"repro/internal/hwpri"
)

// Priority is a POWER5 hardware thread priority (0..7).  It controls the
// share of the core's decode cycles a context receives relative to its
// sibling: for priorities above 1 the arbitration window is R =
// 2^(|X-Y|+1) cycles, of which the lower-priority thread gets exactly 1.
type Priority int

// The eight hardware thread priorities.
const (
	// PriorityOff (0) shuts the context off (hypervisor only).
	PriorityOff Priority = iota
	// PriorityVeryLow (1) receives only leftover decode cycles (OS only).
	PriorityVeryLow
	// PriorityLow (2) is user-settable.
	PriorityLow
	// PriorityMediumLow (3) is user-settable.
	PriorityMediumLow
	// PriorityMedium (4) is the default for running software.
	PriorityMedium
	// PriorityMediumHigh (5) requires the OS (or the paper's procfs patch).
	PriorityMediumHigh
	// PriorityHigh (6) requires the OS (or the paper's procfs patch).
	PriorityHigh
	// PriorityVeryHigh (7) runs the core in single-thread mode
	// (hypervisor only; the sibling context is taken offline).
	PriorityVeryHigh
)

// String returns the architectural name of the priority.
func (p Priority) String() string { return hwpri.Priority(p).String() }

// Valid reports whether p is one of the eight architected priorities.
func (p Priority) Valid() bool { return p >= 0 && p < 8 }

// DecodeShare returns the fraction of decode cycles granted to each of
// two sibling contexts running at priorities a and b (Tables II and III
// of the paper).  It is the static allocation; leftover-mode dynamics are
// not reflected.
func DecodeShare(a, b Priority) (shareA, shareB float64, err error) {
	if !a.Valid() || !b.Valid() {
		return 0, 0, fmt.Errorf("smtbalance: invalid priorities %d, %d", a, b)
	}
	al := hwpri.Alloc(hwpri.Priority(a), hwpri.Priority(b))
	return al.Share(0), al.Share(1), nil
}

// UserSettable reports whether unprivileged code may set p via the
// or-nop interface (only priorities 2, 3 and 4 — the reason the paper
// patches the kernel to reach 1, 5 and 6).
func UserSettable(p Priority) bool {
	return p.Valid() && hwpri.CanSet(hwpri.ProblemState, hwpri.Priority(p))
}

// OSSettable reports whether the operating system may set p (1..6).
func OSSettable(p Priority) bool {
	return p.Valid() && hwpri.CanSet(hwpri.Supervisor, hwpri.Priority(p))
}
