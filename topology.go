package smtbalance

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/power5"
	"repro/internal/sweep"
)

// Topology describes the simulated machine as chips × cores-per-chip ×
// SMT-ways.  The zero value means the paper's machine — one POWER5 chip,
// two cores, 2-way SMT, i.e. four hardware contexts — which is also what
// every paper table assumes.  Larger nodes are expressed by raising
// Chips or CoresPerChip; each chip keeps its own shared L2/L3, so ranks
// on different chips stop contending for cache but pay a higher exchange
// latency.  SMTWays must be 2: the hardware priority mechanism is
// defined for exactly two sibling contexts per core.
//
// Logical CPUs are numbered chip-major: CPU = (chip*CoresPerChip +
// core)*2 + context, so CPUs 2k and 2k+1 always share a core.
type Topology struct {
	// Chips is the number of chips (1..64).
	Chips int
	// CoresPerChip is the number of cores per chip (1..64).
	CoresPerChip int
	// SMTWays is the SMT width per core (must be 2).
	SMTWays int
}

// DefaultTopology returns the paper's 1×2×2 machine.
func DefaultTopology() Topology { return Topology{Chips: 1, CoresPerChip: 2, SMTWays: 2} }

// normalized resolves the zero value to the default topology.
func (t Topology) normalized() Topology {
	if t == (Topology{}) {
		return DefaultTopology()
	}
	return t
}

// inner converts to the simulator's topology type.
func (t Topology) inner() power5.Topology {
	t = t.normalized()
	return power5.Topology{Chips: t.Chips, CoresPerChip: t.CoresPerChip, SMTWays: t.SMTWays}
}

// Validate checks the topology's shape (the zero value is valid: it
// means the default).
func (t Topology) Validate() error { return t.inner().Validate() }

// Cores returns the total core count across all chips.
func (t Topology) Cores() int { t = t.normalized(); return t.Chips * t.CoresPerChip }

// Contexts returns the total hardware context (logical CPU) count.
func (t Topology) Contexts() int { return t.Cores() * t.normalized().SMTWays }

// String renders the topology as "chips x cores x smt", e.g. "2x2x2";
// ParseTopology accepts the same form.
func (t Topology) String() string { return t.inner().String() }

// CPUOf returns the logical CPU of a (chip, core, context) triple.
func (t Topology) CPUOf(chip, coreIdx, context int) (int, error) {
	return t.inner().CPUOf(chip, coreIdx, context)
}

// Locate returns the (chip, core, context) triple of a logical CPU in
// [0, Contexts()).
func (t Topology) Locate(cpu int) (chip, coreIdx, context int) { return t.inner().Locate(cpu) }

// ParseTopology parses a "chips x cores x smt" string such as "2x2x2".
// A successful parse always yields a valid topology.
func ParseTopology(s string) (Topology, error) {
	pt, err := power5.ParseTopology(s)
	if err != nil {
		return Topology{}, fmt.Errorf("smtbalance: %w", err)
	}
	return Topology{Chips: pt.Chips, CoresPerChip: pt.CoresPerChip, SMTWays: pt.SMTWays}, nil
}

// PinInOrder pins rank i to CPU i of this topology at medium priority —
// the paper's reference configuration generalized to any machine size.
// Unlike the package-level PinInOrder it reports immediately, with a
// descriptive error, when n exceeds the topology's context count.
func (t Topology) PinInOrder(n int) (Placement, error) {
	t = t.normalized()
	if err := t.Validate(); err != nil {
		return Placement{}, fmt.Errorf("smtbalance: %w", err)
	}
	if n <= 0 {
		return Placement{}, fmt.Errorf("smtbalance: PinInOrder needs a positive rank count, got %d", n)
	}
	if n > t.Contexts() {
		return Placement{}, fmt.Errorf("smtbalance: PinInOrder(%d): the %s topology has only %d hardware contexts; grow the topology (e.g. Chips: %d) or shrink the job",
			n, t, t.Contexts(), (n+t.CoresPerChip*t.SMTWays-1)/(t.CoresPerChip*t.SMTWays))
	}
	return PinInOrder(n), nil
}

// SuggestPlacement derives a static placement and priority plan for this
// topology from per-rank work estimates: the heaviest rank is paired
// with the lightest on the same core and each pair's priority difference
// is chosen with the decode-share performance model — the paper's
// by-hand procedure, generalized to multi-chip nodes.  On one chip the
// plan is exactly the paper's (heavy-with-light in work order); on
// several chips the candidate pairings and pair → core maps are scored
// with the analytical cost predictor and the best-predicted plan wins,
// so the placement accounts for the decode shares even when work alone
// cannot separate candidates.  With only work estimates the predictor
// cannot see communication; SuggestPlacementForJob adds the job's
// exchange structure, keeping ranks that exchange heavily on the same
// core or chip (the cross-chip exchange tier is ~3× the on-chip one).
func (t Topology) SuggestPlacement(works []float64) (Placement, error) {
	t = t.normalized()
	if err := t.Validate(); err != nil {
		return Placement{}, fmt.Errorf("smtbalance: %w", err)
	}
	return t.suggest(works, nil)
}

// SuggestPlacementForJob is SuggestPlacement informed by the job's
// communication structure: on multi-chip topologies the candidate
// pairings and core maps are ranked by the analytical cost predictor
// over the job's exchange phases and the machine's communication tiers,
// so tightly coupled ranks are not split across the cross-chip fabric
// when an equally balanced co-located plan exists.  works estimates
// each rank's compute (any consistent unit); nil derives the estimates
// from the job's own compute phases (instruction totals), which also
// makes the compute and communication terms directly comparable.  On a
// single chip the result is identical to SuggestPlacement(works).
func (t Topology) SuggestPlacementForJob(job Job, works []float64) (Placement, error) {
	t = t.normalized()
	if err := t.Validate(); err != nil {
		return Placement{}, fmt.Errorf("smtbalance: %w", err)
	}
	loads := sweep.RankLoads(job.inner())
	if works == nil {
		works = make([]float64, len(loads))
		for i, l := range loads {
			works[i] = l.Compute
		}
	}
	if len(works) != len(job.Ranks) {
		return Placement{}, fmt.Errorf("smtbalance: %d work estimates for a %d-rank job", len(works), len(job.Ranks))
	}
	return t.suggest(works, loads)
}

// suggestSearchCap bounds the multi-chip candidate search (pairings ×
// core maps).  Beyond it — double factorials grow fast — the search
// falls back to the work-ordered plan, which is always valid.
const suggestSearchCap = 4096

// suggest builds the plan: PlanStatic's heavy-with-light pairing seeds
// the answer (and is final on a single chip, byte for byte), then on
// multi-chip machines every candidate pairing × core map within the
// search cap is scored with the cost predictor and a strictly
// better-predicted plan replaces the seed.  loads carries the per-rank
// program summaries for the predictor's compute and communication
// terms; nil predicts from works alone (no communication term).
func (t Topology) suggest(works []float64, loads []core.RankLoad) (Placement, error) {
	model := core.DefaultModel()
	plan, err := core.PlanStatic(works, t.Cores(), model)
	if err != nil {
		return Placement{}, fmt.Errorf("smtbalance: %w", err)
	}
	seed := Placement{CPU: plan.CPU}
	for _, p := range plan.Prio {
		seed.Priority = append(seed.Priority, Priority(p))
	}
	if t.Chips == 1 {
		return seed, nil
	}
	n := len(works)
	candidates := 1 // (n-1)!! pairings, capped early to avoid overflow
	for k := n - 1; k > 1 && candidates <= suggestSearchCap; k -= 2 {
		candidates *= k
	}
	itopo := t.inner()
	asgs, err := sweep.CoreAssignments(n/2, itopo)
	if err != nil || candidates > suggestSearchCap/len(asgs) {
		return seed, nil
	}
	if loads == nil {
		loads = make([]core.RankLoad, n)
		for i, w := range works {
			loads[i].Compute = w
		}
	}
	comm := mpisim.TopologyCommLatency(itopo)
	predict := func(pl Placement) float64 {
		prio := make([]hwpri.Priority, len(pl.Priority))
		for i, p := range pl.Priority {
			prio[i] = hwpri.Priority(p)
		}
		return model.PredictCycles(loads, pl.CPU, prio, comm)
	}
	best, bestCost := seed, predict(seed)
	for _, pairing := range sweep.Pairings(n) {
		// Each pair keeps the paper's per-core plan: the heavier rank is
		// favored by the difference PlanPair picks from the works.
		prio := make([]hwpri.Priority, n)
		for _, pair := range pairing {
			heavy, light := pair[0], pair[1]
			if works[light] > works[heavy] {
				heavy, light = light, heavy
			}
			pp := core.PlanPair(works[heavy], works[light], model)
			prio[heavy], prio[light] = pp.HeavyPrio, pp.LightPrio
		}
		for _, asg := range asgs {
			ipl := sweep.Point{Pairing: pairing, Cores: asg, Prio: prio}.Placement()
			cand := Placement{CPU: ipl.CPU}
			for _, p := range ipl.Prio {
				cand.Priority = append(cand.Priority, Priority(p))
			}
			// Strictly better only: ties keep the earlier candidate (the
			// paper's plan first), so the search is deterministic and the
			// predictor's blind spots never churn the suggestion.
			if cost := predict(cand); cost < bestCost {
				best, bestCost = cand, cost
			}
		}
	}
	return best, nil
}

// ParsePlacement parses a placement string for the topology: one
// comma-separated entry per rank, each a "chip.core.context" triple with
// an optional "@priority" suffix (default medium), e.g.
//
//	"0.0.0@4,0.0.1@6,0.1.0,1.0.0@5"
//
// Entries are validated against the topology: every triple must be in
// range and no context may be pinned twice.
func ParsePlacement(t Topology, s string) (Placement, error) {
	t = t.normalized()
	if err := t.Validate(); err != nil {
		return Placement{}, fmt.Errorf("smtbalance: %w", err)
	}
	fields := strings.Split(s, ",")
	if len(fields) == 1 && strings.TrimSpace(fields[0]) == "" {
		return Placement{}, fmt.Errorf("smtbalance: empty placement")
	}
	pl := Placement{}
	seen := make(map[int]bool)
	for rank, f := range fields {
		entry := strings.TrimSpace(f)
		prio := PriorityMedium
		if at := strings.IndexByte(entry, '@'); at >= 0 {
			p, err := strconv.Atoi(strings.TrimSpace(entry[at+1:]))
			if err != nil {
				return Placement{}, fmt.Errorf("smtbalance: rank %d: bad priority %q", rank, entry[at+1:])
			}
			prio = Priority(p)
			if !prio.Valid() {
				return Placement{}, fmt.Errorf("smtbalance: rank %d: priority %d outside 0..7", rank, p)
			}
			entry = strings.TrimSpace(entry[:at])
		}
		parts := strings.Split(entry, ".")
		if len(parts) != 3 {
			return Placement{}, fmt.Errorf("smtbalance: rank %d: want chip.core.context, got %q", rank, entry)
		}
		var triple [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return Placement{}, fmt.Errorf("smtbalance: rank %d: bad coordinate %q in %q", rank, p, entry)
			}
			triple[i] = v
		}
		cpu, err := t.CPUOf(triple[0], triple[1], triple[2])
		if err != nil {
			return Placement{}, fmt.Errorf("smtbalance: rank %d: %w", rank, err)
		}
		if seen[cpu] {
			return Placement{}, fmt.Errorf("smtbalance: rank %d: context %s already pinned", rank, entry)
		}
		seen[cpu] = true
		pl.CPU = append(pl.CPU, cpu)
		pl.Priority = append(pl.Priority, prio)
	}
	return pl, nil
}
