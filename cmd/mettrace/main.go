// Command mettrace runs one application case on the simulated machine and
// renders its timeline — regenerating individual panels of the paper's
// Figures 2-4 — or exports the trace for external tools.
//
// Usage:
//
//	mettrace -app metbench -case C              # Figure 2(c)
//	mettrace -app btmz -case D -width 120       # Figure 3(d)
//	mettrace -app siesta -case A -csv trace.csv # export CSV
//	mettrace -app siesta -case B -prv trace.prv # export PARAVER-style
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/btmz"
	"repro/internal/apps/metbench"
	"repro/internal/apps/siesta"
	"repro/internal/metrics"
	"repro/internal/mpisim"
)

func main() {
	var (
		app      = flag.String("app", "metbench", "application: metbench, btmz, siesta")
		caseName = flag.String("case", "A", "experiment case: ST (btmz/siesta only), A, B, C, D")
		width    = flag.Int("width", 100, "timeline width in columns")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		csvPath  = flag.String("csv", "", "write the interval trace as CSV to this file")
		prvPath  = flag.String("prv", "", "write a PARAVER-style .prv trace to this file")
	)
	flag.Parse()

	job, pl, err := build(*app, *caseName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := mpisim.Run(job, pl, mpisim.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s case %s: exec %s, imbalance %s\n",
		*app, *caseName, metrics.Seconds(res.Seconds), metrics.Pct(res.Imbalance))
	fmt.Println(res.Trace.Render(*width))
	for i, rr := range res.Ranks {
		fmt.Printf("P%d: CPU%d core%d prio %d  comp %6.2f%%  sync %6.2f%%  comm %5.2f%%\n",
			i+1, rr.CPU, rr.Core+1, rr.Prio, rr.ComputePct, rr.SyncPct, rr.CommPct)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, res, false); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *prvPath != "" {
		if err := writeFile(*prvPath, res, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func scaleN(n int64, s float64) int64 {
	v := int64(float64(n) * s)
	if v < 1 {
		v = 1
	}
	return v
}

func build(app, caseName string, scale float64) (*mpisim.Job, mpisim.Placement, error) {
	switch app {
	case "metbench":
		cfg := metbench.DefaultConfig()
		cfg.HeavyLoad = scaleN(cfg.HeavyLoad, scale)
		cfg.LightLoad = scaleN(cfg.LightLoad, scale)
		pl, err := metbench.Placement(metbench.Case(caseName))
		if err != nil {
			return nil, mpisim.Placement{}, err
		}
		return metbench.Job(cfg), pl, nil
	case "btmz":
		cfg := btmz.DefaultConfig()
		if caseName == "ST" {
			cfg = btmz.STConfig()
		}
		cfg.UnitLoad = scaleN(cfg.UnitLoad, scale)
		pl, err := btmz.Placement(btmz.Case(caseName))
		if err != nil {
			return nil, mpisim.Placement{}, err
		}
		return btmz.Job(cfg), pl, nil
	case "siesta":
		cfg := siesta.DefaultConfig()
		if caseName == "ST" {
			cfg = siesta.STConfig()
		}
		cfg.UnitLoad = scaleN(cfg.UnitLoad, scale)
		cfg.InitLoad = scaleN(cfg.InitLoad, scale)
		cfg.FinalLoad = scaleN(cfg.FinalLoad, scale)
		pl, err := siesta.Placement(siesta.Case(caseName))
		if err != nil {
			return nil, mpisim.Placement{}, err
		}
		return siesta.Job(cfg), pl, nil
	default:
		return nil, mpisim.Placement{}, fmt.Errorf("unknown app %q (want metbench, btmz, siesta)", app)
	}
}

func writeFile(path string, res *mpisim.Result, prv bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if prv {
		return res.Trace.WritePRV(f)
	}
	return res.Trace.WriteCSV(f)
}
