package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/loadtest"
)

// loadtestUsage documents the loadtest subcommand.
const loadtestUsage = `usage: mtbalance loadtest -url http://host:port [flags]

Drive a running mtbalance serve instance with a closed-loop worker
fleet and report throughput, a latency distribution, how many requests
admission control shed, and how much of the load the server's cache
tiers absorbed (memory hits, singleflight coalescing, disk revivals)
instead of simulating.

The workload cycles -distinct job variants across all workers, so a
small -distinct measures the thundering-herd path (many clients, few
configurations) and a large one approaches an all-miss sweep.

Example:

    mtbalance serve -addr localhost:8080 -cache-dir /tmp/mtcache &
    mtbalance loadtest -url http://localhost:8080 -c 16 -duration 10s
    mtbalance loadtest -url http://localhost:8080 -out BENCH_serve_baseline.json

`

// runLoadtest implements `mtbalance loadtest`.
func runLoadtest(args []string) int {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	var (
		url      = fs.String("url", "", "base URL of the server under test (required)")
		conc     = fs.Int("c", 8, "closed-loop worker count")
		duration = fs.Duration("duration", 5*time.Second, "how long to drive load")
		distinct = fs.Int("distinct", 4, "distinct job variants cycled round-robin")
		ranks    = fs.Int("ranks", 4, "ranks per job")
		computeN = fs.Int64("n", 40_000, "base per-phase instruction count")
		out      = fs.String("out", "", "write the JSON report to this file ('-' or empty: stdout)")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, loadtestUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadtest: -url is required")
		fs.Usage()
		return 2
	}

	rep, err := loadtest.Run(context.Background(), loadtest.Config{
		URL:         *url,
		Concurrency: *conc,
		Duration:    *duration,
		Distinct:    *distinct,
		Ranks:       *ranks,
		ComputeN:    *computeN,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "loadtest: %d requests in %.1fs — %d ok (%.0f rps, p50 %.2fms, p99 %.2fms), %d shed, %d errors; cache: %d hits, %d coalesced, %d disk hits\n",
		rep.Requests, rep.DurationSec, rep.OK, rep.ThroughputRPS,
		rep.Latency.P50, rep.Latency.P99, rep.Shed, rep.Errors,
		rep.Cache.Hits, rep.Cache.Coalesced, rep.Cache.DiskHits)
	if rep.Errors > 0 {
		return 1
	}
	return 0
}
