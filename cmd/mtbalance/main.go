// Command mtbalance reproduces the paper's experiments on the simulated
// POWER5 machine and prints paper-vs-measured tables.
//
// Usage:
//
//	mtbalance -experiment table4            # Table IV (MetBench, Figure 2)
//	mtbalance -experiment table5            # Table V (BT-MZ, Figure 3)
//	mtbalance -experiment table6            # Table VI (SIESTA, Figure 4)
//	mtbalance -experiment table2            # Table II (decode slots)
//	mtbalance -experiment table3            # Table III (priority 0/1 modes)
//	mtbalance -experiment figure1           # Figure 1 (illustrative)
//	mtbalance -experiment kernelpatch       # ablation: vanilla vs patched kernel
//	mtbalance -experiment dynamic           # extension: dynamic OS balancer
//	mtbalance -experiment extrinsic         # Section II-B: OS-noise imbalance
//	mtbalance -experiment scaling           # multi-chip scaling (1/2/4 chips)
//	mtbalance -experiment all               # everything
//
// Add -check to fail (exit 1) if any experiment loses the paper's shape,
// -traces to print the per-case timelines, and -scale to shrink/grow the
// workloads.  Independent experiment cases fan out across a worker pool;
// -workers 1 forces the old serial behavior.
//
// The run subcommand executes one job on a machine of any topology —
// -chips/-cores/-smt scale the node past the paper's single chip:
//
//	mtbalance run -chips 2 -ranks 20000,80000,20000,80000,20000,80000,20000,80000
//	mtbalance run -chips 2 -balance ...     # topology-aware static plan
//	mtbalance run -pin "0.0.0@4,0.0.1@6,0.1.0@4,0.1.1@6"
//
// The sweep subcommand searches the placement × priority space instead
// of replaying the paper's hand-picked cases, on any topology:
//
//	mtbalance sweep -workers 4 -top 10 -objective cycles
//	mtbalance sweep -chips 2                # pairs packed vs spread across L2s
//	mtbalance sweep -space os -objective weighted:1,0.5 -format csv
//
// The matrix subcommand evaluates every balancing policy on every
// synthetic imbalance scenario (ParseScenario shapes: uniform, ramp,
// step, phaseshift, bursty, bimodal) on every topology, scoring each
// policy by its speedup over the static control:
//
//	mtbalance matrix -scenarios 'uniform;ramp;bursty' -policies 'static;dyn;feedback'
//	mtbalance matrix -topologies '1x2x2;2x2x2' -format csv
//
// The serve subcommand exposes the simulator as an HTTP JSON API — one
// shared Machine, its result cache answering repeated configurations
// from memory, identical in-flight requests coalescing into one
// simulation, and (with -cache-dir) a persistent disk tier surviving
// restarts; load beyond the admission limits is shed with 429:
//
//	mtbalance serve -addr localhost:8080 -cache-dir /var/cache/mtbalance
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/run -d @job.json
//	curl -s -X POST localhost:8080/v1/matrix -d '{"scenarios":["ramp"],"policies":["static","dyn"]}'
//
// The loadtest subcommand drives a running server and reports
// throughput, latency percentiles, shed load, and the cache tiers'
// absorption (hits, coalesced, disk revivals):
//
//	mtbalance loadtest -url http://localhost:8080 -c 16 -duration 10s
//	mtbalance loadtest -url http://localhost:8080 -out BENCH_serve_baseline.json
//
// Run `mtbalance run -h` / `mtbalance sweep -h` / `mtbalance matrix -h`
// / `mtbalance serve -h` / `mtbalance loadtest -h` for the full flag
// lists.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		os.Exit(runSweep(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "run" {
		os.Exit(runRun(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "matrix" {
		os.Exit(runMatrix(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "loadtest" {
		os.Exit(runLoadtest(os.Args[2:]))
	}
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table2, table3, table4, table5, table6, figure1, kernelpatch, dynamic, extrinsic, scaling, all)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		width      = flag.Int("width", 100, "timeline width in columns")
		traces     = flag.Bool("traces", false, "print per-case timelines (the paper's figures)")
		check      = flag.Bool("check", false, "verify the paper's shape and exit non-zero on violation")
		workers    = flag.Int("workers", 0, "concurrent simulator runs per experiment (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	opt := experiments.Options{Scale: *scale, TraceWidth: *width, Workers: *workers}
	failed := 0
	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed++
		}
	}

	run("table2", func() error {
		rows, err := experiments.Table2(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
		if *check {
			return experiments.CheckTable2(rows)
		}
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(rows))
		if *check {
			return experiments.CheckTable3(rows)
		}
		return nil
	})
	run("figure1", func() error {
		f, err := experiments.Figure1(opt)
		if err != nil {
			return err
		}
		fmt.Println("Figure 1(a) — imbalanced application:")
		fmt.Println(f.ImbalancedTrace)
		fmt.Println("Figure 1(b) — bottleneck given more hardware resources:")
		fmt.Println(f.BalancedTrace)
		fmt.Printf("execution time: %s -> %s (%s)\n\n",
			metrics.Seconds(f.ImbalancedSeconds), metrics.Seconds(f.BalancedSeconds),
			metrics.Speedup(f.ImbalancedSeconds, f.BalancedSeconds))
		if *check {
			return experiments.CheckFigure1(f)
		}
		return nil
	})
	caseTable := func(title, ref string, gen func(experiments.Options) ([]experiments.CaseResult, error),
		chk func([]experiments.CaseResult) error) func() error {
		return func() error {
			cases, err := gen(opt)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatCases(title, cases))
			fmt.Println(experiments.FormatSpeedups(cases, ref))
			if *traces {
				for _, c := range cases {
					fmt.Printf("case %s:\n%s\n", c.Case, c.TraceText)
				}
			}
			if *check {
				return chk(cases)
			}
			return nil
		}
	}
	run("table4", caseTable("Table IV — MetBench (Figure 2)", "A", experiments.Table4, experiments.CheckTable4))
	run("table5", caseTable("Table V — BT-MZ (Figure 3)", "A", experiments.Table5, experiments.CheckTable5))
	run("table6", caseTable("Table VI — SIESTA (Figure 4)", "A", experiments.Table6, experiments.CheckTable6))
	run("kernelpatch", func() error {
		r, err := experiments.KernelPatchAblation(opt)
		if err != nil {
			return err
		}
		fmt.Println("Kernel patch ablation (MetBench case C):")
		fmt.Printf("  patched kernel: %s (imbalance %s)\n",
			metrics.Seconds(r.PatchedSeconds), metrics.Pct(r.PatchedImbalance))
		fmt.Printf("  vanilla kernel: %s (imbalance %s) — interrupts reset the priorities\n\n",
			metrics.Seconds(r.VanillaSeconds), metrics.Pct(r.VanillaImbalance))
		if *check {
			return experiments.CheckKernelPatch(r)
		}
		return nil
	})
	run("extrinsic", func() error {
		r, err := experiments.ExtrinsicNoise(opt)
		if err != nil {
			return err
		}
		fmt.Println("Extrinsic imbalance (Section II-B): a daemon bound to rank 0's CPU:")
		fmt.Printf("  clean run:          %s (imbalance %s)\n",
			metrics.Seconds(r.CleanSeconds), metrics.Pct(r.CleanImbalance))
		fmt.Printf("  with daemon:        %s (imbalance %s)\n",
			metrics.Seconds(r.NoisySeconds), metrics.Pct(r.NoisyImbalance))
		fmt.Printf("  victim favored +1:  %s (imbalance %s)\n\n",
			metrics.Seconds(r.CompensatedSeconds), metrics.Pct(r.CompensatedImbalance))
		if *check {
			return experiments.CheckExtrinsic(r)
		}
		return nil
	})
	run("scaling", func() error {
		rows, err := experiments.Scaling(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScaling(rows))
		if *check {
			return experiments.CheckScaling(rows)
		}
		return nil
	})
	run("dynamic", func() error {
		r, err := experiments.DynamicExtension(opt)
		if err != nil {
			return err
		}
		fmt.Println("Dynamic OS-level balancer (SIESTA with moving bottleneck):")
		fmt.Printf("  no balancing:       %s\n", metrics.Seconds(r.ReferenceSeconds))
		fmt.Printf("  static best (C):    %s\n", metrics.Seconds(r.StaticSeconds))
		fmt.Printf("  dynamic balancer:   %s (%d priority moves)\n\n",
			metrics.Seconds(r.DynamicSeconds), r.Moves)
		if *check {
			return experiments.CheckDynamic(r)
		}
		return nil
	})

	known := map[string]bool{"table2": true, "table3": true, "table4": true, "table5": true,
		"table6": true, "figure1": true, "kernelpatch": true, "dynamic": true,
		"extrinsic": true, "scaling": true, "all": true}
	if !known[*experiment] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
