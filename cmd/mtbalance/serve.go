package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	smtbalance "repro"
	"repro/internal/serve"
)

// serveUsage documents the serve subcommand.
const serveUsage = `usage: mtbalance serve [flags]

Serve the simulator over an HTTP JSON API.  One Machine (topology +
result cache) is shared across all requests, so identical
configurations are answered from memory; identical requests in flight
at the same moment coalesce into one simulation.  -cache-dir adds a
persistent disk tier under the memory cache, shared across restarts
and across replicas pointed at the same directory.  Load beyond
-max-inflight executing plus -max-queue waiting requests is shed with
429 and a Retry-After header.  Endpoints:

    GET  /healthz    liveness, topology, cache statistics
    POST /v1/run     run one job/placement
    POST /v1/sweep   rank a configuration space (NDJSON stream)
    POST /v1/matrix  policy x scenario x topology evaluation (NDJSON stream)

Example:

    mtbalance serve -addr localhost:8080 &
    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/v1/run -d '{"job": {"ranks": [
      [{"compute": {"kind": "fpu", "n": 50000}}, {"barrier": true}],
      [{"compute": {"kind": "fpu", "n": 220000}}, {"barrier": true}],
      [{"compute": {"kind": "fpu", "n": 50000}}, {"barrier": true}],
      [{"compute": {"kind": "fpu", "n": 220000}}, {"barrier": true}]
    ]}}'

`

// runServe implements `mtbalance serve`.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	topoOf := topologyFlags(fs)
	var (
		addr         = fs.String("addr", "localhost:8080", "listen address")
		timeout      = fs.Duration("timeout", 120*time.Second, "per-request simulation budget")
		workers      = fs.Int("workers", 0, "sweep worker-pool size (0 = one per CPU)")
		maxN         = fs.Int64("max-compute-n", 10_000_000, "largest accepted compute phase, in instructions")
		maxRanks     = fs.Int("max-ranks", 64, "largest accepted job, in ranks")
		cacheDir     = fs.String("cache-dir", "", "persistent result-cache directory, shared across restarts and replicas (empty: memory only)")
		maxInFlight  = fs.Int("max-inflight", 0, "concurrently executing simulation requests (0 = 2 x GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 0, "requests waiting for a slot before 429s (0 = 4 x max-inflight, negative = no queue)")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-write response deadline; streams extend it per chunk")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, serveUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	topo, err := topoOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	m, err := smtbalance.NewMachine(&smtbalance.Options{Topology: topo})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *cacheDir != "" {
		if err := m.UseDiskCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	handler := serve.NewHandler(m, serve.Config{
		Timeout:      *timeout,
		SweepWorkers: *workers,
		MaxComputeN:  *maxN,
		MaxRanks:     *maxRanks,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		WriteTimeout: *writeTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("mtbalance serve: listening on http://%s (topology %s)\n", ln.Addr(), topo)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Println("mtbalance serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
