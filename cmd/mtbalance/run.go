package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	smtbalance "repro"
	"repro/internal/metrics"
)

// runUsage documents the run subcommand.
const runUsage = `usage: mtbalance run [flags]

Run one job on a machine of the given topology and print the paper-style
per-rank table.  The default topology is the paper's 1x2x2 OpenPower 710
(4 hardware contexts); -chips/-cores/-smt scale the node, e.g.

    mtbalance run -chips 2 -ranks 20000,80000,20000,80000,20000,80000,20000,80000
    mtbalance run -chips 2 -balance -ranks 20000,80000,20000,80000,20000,80000,20000,80000
    mtbalance run -pin "0.0.0@4,0.0.1@6,0.1.0@4,0.1.1@6"

`

// parseLoads parses a -ranks flag value.
func parseLoads(ranks string, scale float64) ([]int64, error) {
	var loads []int64
	for _, f := range strings.Split(ranks, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -ranks entry %q: want positive instruction counts", f)
		}
		n = int64(float64(n) * scale)
		if n < 1 {
			n = 1
		}
		loads = append(loads, n)
	}
	return loads, nil
}

// buildJob assembles the synthetic compute+barrier job both subcommands
// share.
func buildJob(name string, loads []int64, kind string, iters int) smtbalance.Job {
	job := smtbalance.Job{Name: name}
	for _, n := range loads {
		var prog []smtbalance.Phase
		for i := 0; i < iters; i++ {
			prog = append(prog, smtbalance.Compute(kind, n), smtbalance.Barrier())
		}
		job.Ranks = append(job.Ranks, prog)
	}
	return job
}

// topologyFlags registers -chips/-cores/-smt on a flag set and returns a
// resolver.
func topologyFlags(fs *flag.FlagSet) func() (smtbalance.Topology, error) {
	chips := fs.Int("chips", 1, "number of chips (each with its own shared L2/L3)")
	cores := fs.Int("cores", 2, "cores per chip")
	smt := fs.Int("smt", 2, "SMT contexts per core (the priority mechanism needs 2)")
	return func() (smtbalance.Topology, error) {
		topo := smtbalance.Topology{Chips: *chips, CoresPerChip: *cores, SMTWays: *smt}
		if err := topo.Validate(); err != nil {
			return smtbalance.Topology{}, err
		}
		return topo, nil
	}
}

// runRun implements `mtbalance run`.
func runRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	topoOf := topologyFlags(fs)
	var (
		ranks   = fs.String("ranks", "50000,220000,50000,220000", "per-rank compute instruction counts, comma-separated")
		kind    = fs.String("kind", "fpu", "compute kernel kind ("+strings.Join(smtbalance.KernelKinds(), ", ")+")")
		iters   = fs.Int("iters", 2, "compute+barrier iterations per rank")
		scale   = fs.Float64("scale", 1.0, "workload scale factor")
		pin     = fs.String("pin", "", `explicit placement: "chip.core.context[@prio]" per rank, comma-separated`)
		balance = fs.Bool("balance", false, "use the topology-aware static plan instead of pin-in-order")
		policy  = fs.String("policy", "", "online balancing policy, e.g. dyn,maxdiff=2 ("+strings.Join(smtbalance.Policies(), ", ")+")")
		traces  = fs.Bool("trace", false, "print the run's timeline")
		width   = fs.Int("width", 100, "timeline width in columns")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, runUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	topo, err := topoOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := smtbalance.ParseKind(*kind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loads, err := parseLoads(*ranks, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	job := buildJob("run", loads, *kind, *iters)

	var pl smtbalance.Placement
	switch {
	case *pin != "" && *balance:
		fmt.Fprintln(os.Stderr, "-pin and -balance are mutually exclusive")
		return 2
	case *pin != "":
		if pl, err = smtbalance.ParsePlacement(topo, *pin); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if len(pl.CPU) != len(loads) {
			fmt.Fprintf(os.Stderr, "-pin places %d ranks but -ranks has %d\n", len(pl.CPU), len(loads))
			return 2
		}
	case *balance:
		works := make([]float64, len(loads))
		for i, n := range loads {
			works[i] = float64(n)
		}
		if pl, err = topo.SuggestPlacement(works); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	default:
		if pl, err = topo.PinInOrder(len(loads)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	opts := smtbalance.Options{Topology: topo}
	if *policy != "" {
		if opts.Policy, err = smtbalance.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	m, err := smtbalance.NewMachine(&opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := m.Run(context.Background(), job, pl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	title := fmt.Sprintf("Run — topology %s, %d ranks", topo, len(res.Ranks))
	tb := metrics.NewTable(title, "Rank", "Chip", "Core", "CPU", "P", "Comp%", "Sync%", "Comm%")
	for r, rr := range res.Ranks {
		tb.AddRow(fmt.Sprintf("P%d", r+1), fmt.Sprint(rr.Chip), fmt.Sprint(rr.Core),
			fmt.Sprint(rr.CPU), fmt.Sprint(int(rr.Priority)),
			fmt.Sprintf("%.2f", rr.ComputePct), fmt.Sprintf("%.2f", rr.SyncPct),
			fmt.Sprintf("%.2f", rr.CommPct))
	}
	fmt.Println(tb.String())
	fmt.Printf("execution: %s (%d cycles), imbalance %s, %d iterations\n",
		metrics.Seconds(res.Seconds), res.Cycles, metrics.Pct(res.ImbalancePct), res.Iterations)
	if res.Policy != "" {
		fmt.Printf("policy: %s, %d priority moves\n", res.Policy, res.BalancerMoves)
	}
	if *traces {
		fmt.Println(res.Timeline(*width))
	}
	return 0
}
