package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	smtbalance "repro"
	"repro/internal/metrics"
)

// sweepUsage documents the sweep subcommand.
const sweepUsage = `usage: mtbalance sweep [flags]

Exhaustively search the placement x priority space of a synthetic job
across a worker pool and rank the configurations — the search behind
the paper's Tables IV-VI, automated.  -chips/-cores/-smt size the
machine; on a multi-chip node the space also covers packing rank pairs
onto one chip's L2 versus spreading them across chips.

-policy adds a balancing-policy axis: a ';'-separated list of policy
specifications (each in ParsePolicy syntax) ranked against each other
over every placement x priority point, e.g.

    mtbalance sweep -chips 2 -iters 10 -fix-pairing -space medium \
        -policy 'static;dyn;hier;feedback' -objective imbalance \
        -ranks 40000,7200,26800,9600,40000,7200,26800,9600

`

// runSweep implements `mtbalance sweep`.
func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	topoOf := topologyFlags(fs)
	var (
		workers   = fs.Int("workers", 0, "concurrent simulator runs (0 = one per CPU, 1 = serial)")
		top       = fs.Int("top", 10, "keep the best K configurations (0 = all)")
		screen    = fs.Int("screen", 0, "two-level search: simulate only the K best-predicted configurations plus a guard band (0 = exhaustive)")
		objective = fs.String("objective", "cycles", "ranking objective: cycles, imbalance, or weighted:<cw>,<iw>")
		space     = fs.String("space", "user", "priority alphabet: user (2-4), os (2-6), or medium (launch everything at 4 and let policies move)")
		policies  = fs.String("policy", "", "';'-separated balancing policies to rank, e.g. 'static;dyn,maxdiff=2;hier;feedback'")
		fixed     = fs.Bool("fix-pairing", false, "keep ranks 2c,2c+1 paired on core c instead of sweeping pairings")
		ranks     = fs.String("ranks", "50000,220000,50000,220000", "per-rank compute instruction counts, comma-separated (even count)")
		kind      = fs.String("kind", "fpu", "compute kernel kind ("+strings.Join(smtbalance.KernelKinds(), ", ")+")")
		iters     = fs.Int("iters", 2, "compute+barrier iterations per rank")
		scale     = fs.Float64("scale", 1.0, "workload scale factor")
		format    = fs.String("format", "table", "output format: table or csv")
		progress  = fs.Bool("progress", false, "report evaluation progress on stderr")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, sweepUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	topo, err := topoOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := smtbalance.ParseKind(*kind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loads, err := parseLoads(*ranks, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	job := buildJob("sweep", loads, *kind, *iters)

	var sp smtbalance.Space
	switch *space {
	case "user":
		sp = smtbalance.UserSettableSpace()
	case "os":
		sp = smtbalance.OSSettableSpace()
	case "medium":
		// One launch configuration per placement: the pure policy-
		// comparison space, where only online balancing differentiates.
		sp = smtbalance.Space{Priorities: []smtbalance.Priority{smtbalance.PriorityMedium}}
	default:
		fmt.Fprintf(os.Stderr, "unknown -space %q (want user, os or medium)\n", *space)
		return 2
	}
	sp.FixPairing = *fixed
	if *policies != "" {
		for _, spec := range strings.Split(*policies, ";") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			pol, err := smtbalance.ParsePolicy(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			sp.Policies = append(sp.Policies, pol)
		}
	}

	obj, err := parseObjective(*objective)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown -format %q (want table or csv)\n", *format)
		return 2
	}

	m, err := smtbalance.NewMachine(&smtbalance.Options{Topology: topo})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	swOpts := &smtbalance.SweepOptions{Workers: *workers, Top: *top, Screen: *screen, Objective: obj}
	if *progress {
		swOpts.Progress = func(evaluated, total int) {
			if evaluated%50 == 0 || evaluated == total {
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d configurations", evaluated, total)
				if evaluated == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	res, err := m.SweepAll(context.Background(), job, sp, swOpts)
	if err != nil {
		if *progress {
			fmt.Fprintln(os.Stderr) // terminate the \r progress line
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *format == "csv" {
		if err := res.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		title := fmt.Sprintf("Sweep — %d configurations, objective %s, %d workers",
			res.Evaluated, *objective, res.Workers)
		if res.Screened > 0 {
			title = fmt.Sprintf("Sweep — %d of %d configurations (%d screened out), objective %s, %d workers",
				res.Evaluated, res.Evaluated+res.Screened, res.Screened, *objective, res.Workers)
		}
		withPolicy := len(sp.Policies) > 0
		cols := []string{"Rank", "CPUs", "Prios", "Cycles", "Exec", "Imb%", "Score"}
		if withPolicy {
			cols = append([]string{"Rank", "Policy"}, cols[1:]...)
		}
		tb := metrics.NewTable(title, cols...)
		for i, e := range res.Entries {
			row := []string{fmt.Sprint(i + 1), joinInts(e.Placement.CPU), joinPrios(e.Placement.Priority),
				fmt.Sprint(e.Cycles), metrics.Seconds(e.Seconds),
				fmt.Sprintf("%.2f", e.ImbalancePct), fmt.Sprintf("%.4f", e.Score)}
			if withPolicy {
				row = append([]string{row[0], e.Policy}, row[1:]...)
			}
			tb.AddRow(row...)
		}
		fmt.Println(tb.String())
		if best, err := res.Best(); err == nil {
			label := ""
			if best.Policy != "" {
				label = fmt.Sprintf("policy %s, ", best.Policy)
			}
			fmt.Printf("best: %sCPUs %s, priorities %s — %s, imbalance %.2f%%\n",
				label, joinInts(best.Placement.CPU), joinPrios(best.Placement.Priority),
				metrics.Seconds(best.Seconds), best.ImbalancePct)
		}
	}
	return 0
}

// parseObjective parses -objective values.
func parseObjective(s string) (smtbalance.Objective, error) {
	switch {
	case s == "cycles":
		return smtbalance.MinimizeCycles(), nil
	case s == "imbalance":
		return smtbalance.MinimizeImbalance(), nil
	case strings.HasPrefix(s, "weighted:"):
		parts := strings.Split(strings.TrimPrefix(s, "weighted:"), ",")
		if len(parts) != 2 {
			return smtbalance.Objective{}, fmt.Errorf("bad -objective %q: want weighted:<cyclesW>,<imbalanceW>", s)
		}
		cw, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		iw, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return smtbalance.Objective{}, fmt.Errorf("bad -objective %q: non-numeric weights", s)
		}
		return smtbalance.WeightedObjective(cw, iw), nil
	}
	return smtbalance.Objective{}, fmt.Errorf("unknown -objective %q (want cycles, imbalance, or weighted:<cw>,<iw>)", s)
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}

func joinPrios(ps []smtbalance.Priority) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strconv.Itoa(int(p))
	}
	return strings.Join(parts, " ")
}
