package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden snapshot:
//
//	go test ./cmd/mtbalance -run TestMatrixGolden -update
//
// Regenerate ONLY when an output change is intended and reviewed: the
// snapshot is what keeps scenario generation, the evaluation engine and
// the table rendering from drifting silently.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// runMatrixCapture drives the exact code path `mtbalance matrix` runs.
func runMatrixCapture(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := matrixMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("matrix %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// TestMatrixGolden diffs the default `mtbalance matrix` output against
// its testdata snapshot, byte for byte.
func TestMatrixGolden(t *testing.T) {
	got := runMatrixCapture(t, "-workers", "1")
	path := filepath.Join("testdata", "matrix.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden file updated")
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/mtbalance -run TestMatrixGolden -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("matrix output drifted from %s.\nGot:\n%s\nWant:\n%s\n(regenerate with -update only if the change is intended)",
			path, got, want)
	}
}

// The acceptance criterion: the matrix command is deterministic across
// worker counts, in both formats.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	args := []string{"-scenarios", "uniform,base=6000,iters=3;ramp,base=6000,iters=3;bursty,base=6000,iters=3",
		"-policies", "static;dyn;feedback"}
	serial := runMatrixCapture(t, append([]string{"-workers", "1"}, args...)...)
	pooled := runMatrixCapture(t, append([]string{"-workers", "4"}, args...)...)
	if serial != pooled {
		t.Errorf("matrix output differs between -workers 1 and 4:\n%s\nvs\n%s", serial, pooled)
	}
	serialCSV := runMatrixCapture(t, append([]string{"-workers", "1", "-format", "csv"}, args...)...)
	pooledCSV := runMatrixCapture(t, append([]string{"-workers", "4", "-format", "csv"}, args...)...)
	if serialCSV != pooledCSV {
		t.Errorf("matrix CSV differs between -workers 1 and 4:\n%s\nvs\n%s", serialCSV, pooledCSV)
	}
}

func TestMatrixCSVShape(t *testing.T) {
	out := runMatrixCapture(t, "-preset", "small", "-format", "csv")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "topology,scenario,policy,cycles,seconds,imbalance_pct,speedup_vs_static" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 1+2*2 { // 2 scenarios x 2 policies
		t.Errorf("small preset CSV has %d lines, want 5", len(lines))
	}
}

func TestMatrixBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad scenario": {"-scenarios", "warp"},
		"bad policy":   {"-policies", "dyn2"},
		"bad topology": {"-topologies", "0x2x2"},
		"bad format":   {"-format", "xml"},
		"bad preset":   {"-preset", "huge"},
	} {
		var stdout, stderr bytes.Buffer
		if code := matrixMain(args, &stdout, &stderr); code == 0 {
			t.Errorf("%s (%v): exited 0", name, args)
		}
	}
}
