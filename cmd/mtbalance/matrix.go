package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	smtbalance "repro"
	"repro/internal/metrics"
)

// matrixUsage documents the matrix subcommand.
const matrixUsage = `usage: mtbalance matrix [flags]

Evaluate every balancing policy on every imbalance scenario on every
topology and print the policy x scenario evaluation matrix.  Each cell
pins the scenario's job in order at medium priority — the pure policy
comparison, where only online balancing differentiates rows — and
scores every policy by its speedup over the static (no-balancing)
control, so scores are comparable across cells.

Scenario specifications use the ParseScenario grammar
(name[,key=value]...), ';'-separated; likewise policies (ParsePolicy)
and topologies (chips x cores x smt), e.g.

    mtbalance matrix -scenarios 'uniform;ramp;bursty' \
        -policies 'static;dyn;feedback'
    mtbalance matrix -topologies '1x2x2;2x2x2' -format csv
    mtbalance matrix -preset small -format csv   # CI smoke preset

The output is deterministic: the same flags produce byte-identical
output whatever -workers is.

`

// Matrix presets: the default evaluation (the golden snapshot) and a
// small one for CI smokes.
var matrixPresets = map[string]struct{ scenarios, policies, topologies string }{
	"default": {
		scenarios:  "uniform;ramp;step;bursty",
		policies:   "static;dyn;hier;feedback",
		topologies: "1x2x2",
	},
	"small": {
		scenarios:  "uniform,base=6000,iters=3;ramp,base=6000,iters=3",
		policies:   "static;dyn",
		topologies: "1x2x2",
	},
}

// runMatrix implements `mtbalance matrix`.
func runMatrix(args []string) int {
	return matrixMain(args, os.Stdout, os.Stderr)
}

// matrixMain is runMatrix with injectable streams, so the golden and
// determinism tests drive the exact code path the CLI runs.
func matrixMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset     = fs.String("preset", "default", "flag preset: default or small (explicit flags override)")
		scenarios  = fs.String("scenarios", "", "';'-separated scenario specifications ("+strings.Join(smtbalance.Scenarios(), ", ")+")")
		policies   = fs.String("policies", "", "';'-separated balancing policies ("+strings.Join(smtbalance.Policies(), ", ")+")")
		topologies = fs.String("topologies", "", "';'-separated machine topologies, e.g. '1x2x2;2x2x2'")
		workers    = fs.Int("workers", 0, "concurrent simulator runs per cell (0 = one per CPU, 1 = serial)")
		screen     = fs.Int("screen", 0, "forward a two-level screening budget to each cell's sweep (0 = exhaustive; cells are screening-invariant today)")
		format     = fs.String("format", "table", "output format: table or csv")
		progress   = fs.Bool("progress", false, "report cell progress on stderr")
	)
	fs.Usage = func() {
		fmt.Fprint(stderr, matrixUsage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pre, ok := matrixPresets[*preset]
	if !ok {
		fmt.Fprintf(stderr, "unknown -preset %q (want default or small)\n", *preset)
		return 2
	}
	if *scenarios == "" {
		*scenarios = pre.scenarios
	}
	if *policies == "" {
		*policies = pre.policies
	}
	if *topologies == "" {
		*topologies = pre.topologies
	}
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(stderr, "unknown -format %q (want table or csv)\n", *format)
		return 2
	}

	var spec smtbalance.MatrixSpec
	for _, s := range splitList(*scenarios) {
		sc, err := smtbalance.ParseScenario(s)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		spec.Scenarios = append(spec.Scenarios, sc)
	}
	for _, s := range splitList(*policies) {
		pol, err := smtbalance.ParsePolicy(s)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		spec.Policies = append(spec.Policies, pol)
	}
	for _, s := range splitList(*topologies) {
		topo, err := smtbalance.ParseTopology(s)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		spec.Topologies = append(spec.Topologies, topo)
	}

	opts := &smtbalance.MatrixOptions{Workers: *workers, Screen: *screen}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "matrix: %d/%d cells\n", done, total)
		}
	}
	res, err := smtbalance.EvalMatrixAll(context.Background(), spec, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *format == "csv" {
		if err := res.WriteCSV(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	title := fmt.Sprintf("Evaluation matrix — %d cells, %d entries (speedup vs static control)",
		res.Cells, len(res.Entries))
	tb := metrics.NewTable(title, "Topology", "Scenario", "Policy", "Cycles", "Exec", "Imb%", "Speedup")
	for _, e := range res.Entries {
		tb.AddRow(e.Topology, shortScenario(e.Scenario), e.Policy,
			fmt.Sprint(e.Cycles), metrics.Seconds(e.Seconds),
			fmt.Sprintf("%.2f", e.ImbalancePct), fmt.Sprintf("%.4f", e.Speedup))
	}
	fmt.Fprintln(stdout, tb.String())
	for _, line := range matrixBests(res) {
		fmt.Fprintln(stdout, line)
	}
	return 0
}

// splitList splits a ';'-separated flag value, dropping empty fields.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ";") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// shortScenario compresses a ScenarioID for the table: parameters that
// sit at their defaults add no information, so only the shape name and
// any non-default parameters print.  The CSV keeps the full identity.
func shortScenario(id string) string {
	open := strings.IndexByte(id, '(')
	if open < 0 || !strings.HasSuffix(id, ")") {
		return id
	}
	name := id[:open]
	var kept []string
	for _, kv := range strings.Split(id[open+1:len(id)-1], ",") {
		switch kv {
		case "ranks=0", "iters=5", "base=20000", "kind=fpu",
			"skew=4", "amp=3", "seed=1", "period=2", "outlier=0", "kind2=mem":
			continue
		}
		kept = append(kept, kv)
	}
	if len(kept) == 0 {
		return name
	}
	return name + "(" + strings.Join(kept, ",") + ")"
}

// matrixBests renders a best-policy line per cell, in cell order.
func matrixBests(res *smtbalance.MatrixResult) []string {
	var lines []string
	type cell struct{ topo, scenario string }
	best := make(map[cell]smtbalance.MatrixEntry)
	var order []cell
	for _, e := range res.Entries {
		c := cell{e.Topology, e.Scenario}
		b, seen := best[c]
		if !seen {
			order = append(order, c)
		}
		if !seen || e.Speedup > b.Speedup {
			best[c] = e
		}
	}
	for _, c := range order {
		b := best[c]
		lines = append(lines, fmt.Sprintf("best for %s on %s: %s (speedup %.4f)",
			shortScenario(c.scenario), c.topo, b.Policy, b.Speedup))
	}
	return lines
}
