// Package lib exists to produce exactly one deterministic mtlint
// finding (an unowned goroutine) for cmd/mtlint's output-format tests.
package lib

// Leak spawns a goroutine with no visible join: the gospawn violation
// the tests expect at this line + 1.
func Leak() {
	go func() {}()
}
