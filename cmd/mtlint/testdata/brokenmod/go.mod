module example.com/brokenmod

go 1.24
