// Command mtlint runs the repository's invariant-enforcing analysis
// suite (internal/analyzers): the cache-key audit, simulator-core
// determinism, the phase-skip FastForwarder contract, the registry
// spec grammar, the concurrency contracts (lock discipline, atomic
// consistency, context flow, goroutine ownership), and exported-symbol
// documentation.  See docs/lint.md.
//
// It runs two ways:
//
//	mtlint ./...                      # standalone, from the module root
//	go vet -vettool=$(which mtlint) ./...
//
// In standalone mode, -json writes the findings as a machine-readable
// JSON array (to stdout, or to the -out path), and -github prints one
// GitHub Actions `::error` workflow command per finding on stdout so
// CI findings annotate the offending lines of a pull request.  The
// human-readable file:line form always goes to stderr.
//
// The vettool mode speaks go vet's unit-checker protocol: -V=full
// prints a content-addressed version for the build cache, -flags prints
// the tool's flag schema, and a single *.cfg argument names a JSON file
// describing one compilation unit (sources plus export data for every
// import), which mtlint type-checks and analyzes without rebuilding the
// import graph itself.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mtlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "if 'full', print the tool version and exit (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flag schema as JSON and exit (go vet protocol)")
	dirFlag := fs.String("dir", ".", "module root to analyze in standalone mode")
	jsonFlag := fs.Bool("json", false, "standalone mode: also emit findings as a JSON array")
	outFlag := fs.String("out", "", "standalone mode: write the -json report here instead of stdout")
	githubFlag := fs.Bool("github", false, "standalone mode: also emit GitHub Actions ::error annotations on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mtlint [packages]\n   or: go vet -vettool=$(which mtlint) [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *versionFlag == "full":
		printVersion()
		return 0
	case *versionFlag != "":
		fmt.Println("mtlint version devel")
		return 0
	case *flagsFlag:
		// No tunable analyzer flags: the suite is the contract.
		fmt.Println("[]")
		return 0
	}
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0])
	}
	return standalone(*dirFlag, fs.Args(), reportOptions{
		json:   *jsonFlag,
		out:    *outFlag,
		github: *githubFlag,
	})
}

// printVersion implements go vet's -V=full handshake: the reported
// buildID must change whenever the tool's behavior may have, so vet's
// result caching stays sound.  Hashing the executable achieves that.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("mtlint version devel buildID=%x\n", h.Sum(nil))
}

// reportOptions selects the standalone mode's machine-readable outputs
// alongside the human stderr lines.
type reportOptions struct {
	json   bool   // emit a JSON array of findings
	out    string // where the JSON goes ("" = stdout)
	github bool   // emit ::error workflow commands on stdout
}

// jsonDiagnostic is one element of the -json report.
type jsonDiagnostic struct {
	// File is the diagnostic's path, relative to the analyzed module
	// root (exactly what GitHub annotations and editors want).
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Analyzer names the reporting pass.
	Analyzer string `json:"analyzer"`
	// Message describes the violated invariant.
	Message string `json:"message"`
}

// standalone loads the module rooted at dir and runs the suite over the
// requested patterns (default ./...).
func standalone(dir string, patterns []string, opts reportOptions) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := analyzers.ModulePathOf(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		return 2
	}
	pkgs, err := analyzers.Load(analyzers.LoadConfig{Dir: dir, ModulePath: mod}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		return 2
	}
	diags, err := analyzers.RunAnalyzers(pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if opts.github {
		for _, d := range diags {
			fmt.Println(githubAnnotation(d))
		}
	}
	if opts.json {
		if err := writeJSONReport(opts.out, diags); err != nil {
			fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeJSONReport renders diags as an indented JSON array — always an
// array, so a clean run yields [] rather than null — to path, or
// stdout when path is empty.
func writeJSONReport(path string, diags []analyzers.Diagnostic) error {
	report := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		report = append(report, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// githubAnnotation renders one finding as a GitHub Actions workflow
// command, which the Actions runner turns into an inline annotation on
// the pull request's diff.
func githubAnnotation(d analyzers.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=mtlint/%s::%s",
		escapeAnnotationProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
		escapeAnnotationProperty(d.Analyzer), escapeAnnotationData(d.Message))
}

// escapeAnnotationData escapes a workflow command's message per the
// Actions runner's rules.
func escapeAnnotationData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeAnnotationProperty escapes a workflow command property value,
// which additionally reserves the property separators.
func escapeAnnotationProperty(s string) string {
	s = escapeAnnotationData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// vetConfig mirrors the unit-description JSON go vet writes for each
// compilation unit (cmd/go's internal vet config).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one go vet compilation unit: parse the unit's
// sources, type-check against the export data vet provides for every
// import, run the suite, and report findings on stderr with exit code 2
// (the convention vet's driver expects).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// mtlint computes no cross-package facts, but vet requires the
	// output file to exist before it trusts the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test binaries (path suffix ".test") are synthesized by the go
	// tool; there is nothing of ours to check in them.
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Imports resolve through vet's maps: ImportMap canonicalizes the
	// path as written (vendoring, test variants), PackageFile locates
	// the compiled export data the gc importer reads.
	compImp := importer.ForCompiler(fset, compilerOrGc(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := types.Config{Importer: imp}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mtlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analyzers.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Package{pkg}, analyzers.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		return 2
	}
	// One finding per position: a test-variant unit re-analyzes the
	// production sources it embeds.
	seen := make(map[string]bool)
	for _, d := range diags {
		line := d.String()
		if !seen[line] {
			seen[line] = true
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if len(seen) > 0 {
		return 2
	}
	return 0
}

// compilerOrGc defaults an absent compiler name to gc.
func compilerOrGc(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
