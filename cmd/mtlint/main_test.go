package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// captureStd redirects one of the process's standard streams to a temp
// file for the duration of the test and returns a reader for what was
// written.
func captureStd(t *testing.T, std **os.File) func() string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "std")
	if err != nil {
		t.Fatal(err)
	}
	old := *std
	*std = f
	return func() string {
		*std = old
		data, err := os.ReadFile(f.Name())
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

// TestStandaloneReports runs the real CLI over the broken fixture
// module and checks all three output surfaces: human stderr lines, the
// -json report file, and -github annotations.
func TestStandaloneReports(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	readStdout := captureStd(t, &os.Stdout)
	readStderr := captureStd(t, &os.Stderr)
	code := run([]string{"-dir", filepath.Join("testdata", "brokenmod"), "-json", "-out", outPath, "-github", "./..."})
	stdout, stderr := readStdout(), readStderr()

	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "goroutine has no visible join") || !strings.Contains(stderr, "[gospawn]") {
		t.Errorf("stderr missing the human-readable finding:\n%s", stderr)
	}
	if !strings.Contains(stdout, "::error file=") || !strings.Contains(stdout, "title=mtlint/gospawn") {
		t.Errorf("stdout missing the ::error annotation:\n%s", stdout)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report []jsonDiagnostic
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if len(report) != 1 {
		t.Fatalf("report has %d findings, want 1: %+v", len(report), report)
	}
	d := report[0]
	if d.Analyzer != "gospawn" || d.Line != 8 || d.Col == 0 ||
		filepath.ToSlash(d.File) != "testdata/brokenmod/lib/lib.go" ||
		!strings.Contains(d.Message, "no visible join") {
		t.Errorf("unexpected finding: %+v", d)
	}
}

// TestJSONReportEmpty pins the clean-run shape: an empty array, not
// null.
func TestJSONReportEmpty(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	if err := writeJSONReport(outPath, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "[]" {
		t.Errorf("empty report = %q, want []", got)
	}
}

// TestGitHubAnnotationEscaping pins the workflow-command escaping
// rules: newlines and percents in messages, separators in properties.
func TestGitHubAnnotationEscaping(t *testing.T) {
	d := analyzers.Diagnostic{Analyzer: "demo", Message: "50% broken\nsecond line"}
	d.Pos.Filename = "a,b:c.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	got := githubAnnotation(d)
	want := "::error file=a%2Cb%3Ac.go,line=3,col=7,title=mtlint/demo::50%25 broken%0Asecond line"
	if got != want {
		t.Errorf("githubAnnotation:\n got %q\nwant %q", got, want)
	}
}
