// Command hmtctl demonstrates the paper's kernel interface on a live
// simulated machine: it spawns two compute processes on the contexts of
// one core, then plays a script of `echo N > /proc/<PID>/hmt_priority`
// writes, printing each context's throughput between writes — the
// interactive equivalent of Section VI.
//
// Usage:
//
//	hmtctl                       # default script: 4/4, 6/4, 6/2, 2/6
//	hmtctl -script 4:4,5:4,6:4   # custom priority pairs
//	hmtctl -vanilla              # unpatched kernel: the writes fail
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/hwpri"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/workload"
)

func main() {
	var (
		script  = flag.String("script", "4:4,6:4,6:2,2:6", "comma-separated prioA:prioB pairs to write")
		window  = flag.Int64("window", 200000, "cycles to run between writes")
		vanilla = flag.Bool("vanilla", false, "run on an unpatched kernel (no /proc/<pid>/hmt_priority)")
	)
	flag.Parse()

	chip := power5.MustNew(power5.DefaultConfig())
	kcfg := oskernel.DefaultConfig()
	kcfg.Patched = !*vanilla
	kern := oskernel.New(chip, kcfg)

	load := func(seed uint64) *workload.Gen {
		return workload.NewGen(workload.Load{Kind: workload.FPU, N: 1 << 62, Seed: seed, Base: seed << 36})
	}
	pa, err := kern.Spawn("task-a", 0, load(1), hwpri.Medium)
	must(err)
	pb, err := kern.Spawn("task-b", 1, load(2), hwpri.Medium)
	must(err)
	fmt.Printf("spawned %s (pid %d) on cpu0 and %s (pid %d) on cpu1 (same core)\n\n",
		pa.Name, pa.PID, pb.Name, pb.PID)

	var lastA, lastB int64
	measure := func() (float64, float64) {
		chip.Run(*window)
		a, b := chip.Stats(0, 0).Completed, chip.Stats(0, 1).Completed
		ipcA := float64(a-lastA) / float64(*window)
		ipcB := float64(b-lastB) / float64(*window)
		lastA, lastB = a, b
		return ipcA, ipcB
	}

	for _, pair := range strings.Split(*script, ",") {
		parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "bad script entry %q (want prioA:prioB)\n", pair)
			os.Exit(2)
		}
		prioA, errA := strconv.Atoi(parts[0])
		prioB, errB := strconv.Atoi(parts[1])
		if errA != nil || errB != nil {
			fmt.Fprintf(os.Stderr, "bad script entry %q\n", pair)
			os.Exit(2)
		}
		fmt.Printf("$ echo %d > /proc/%d/hmt_priority\n", prioA, pa.PID)
		reportWrite(kern, pa.PID, prioA)
		fmt.Printf("$ echo %d > /proc/%d/hmt_priority\n", prioB, pb.PID)
		reportWrite(kern, pb.PID, prioB)

		al := hwpri.Alloc(chip.Priority(0, 0), chip.Priority(0, 1))
		ipcA, ipcB := measure()
		fmt.Printf("  priorities %d/%d (%s): IPC %.2f / %.2f over %d cycles\n\n",
			chip.Priority(0, 0), chip.Priority(0, 1), al.Describe(), ipcA, ipcB, *window)
	}
}

func reportWrite(k *oskernel.Kernel, pid, prio int) {
	if err := k.WriteHMTPriority(pid, hwpri.Priority(prio)); err != nil {
		fmt.Printf("  write failed: %v\n", err)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
