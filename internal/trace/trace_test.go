package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSimple(t *testing.T) *Trace {
	t.Helper()
	tr := New(2)
	tr.Enter(0, Compute, 0)
	tr.Enter(0, Sync, 600)
	tr.Enter(1, Compute, 0)
	tr.Finish(1000)
	return tr
}

func TestBasicIntervals(t *testing.T) {
	tr := buildSimple(t)
	iv0 := tr.Intervals(0)
	if len(iv0) != 2 {
		t.Fatalf("rank 0 has %d intervals, want 2", len(iv0))
	}
	if iv0[0] != (Interval{Compute, 0, 600}) || iv0[1] != (Interval{Sync, 600, 1000}) {
		t.Errorf("rank 0 intervals = %+v", iv0)
	}
	if d := iv0[1].Duration(); d != 400 {
		t.Errorf("duration = %d, want 400", d)
	}
	if tr.End() != 1000 || tr.NumRanks() != 2 {
		t.Error("End/NumRanks wrong")
	}
}

func TestStats(t *testing.T) {
	tr := buildSimple(t)
	st := tr.RankStats(0)
	if st.Total != 1000 || st.Cycles[Compute] != 600 || st.Cycles[Sync] != 400 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.Pct(Sync); got != 40 {
		t.Errorf("sync pct = %f, want 40", got)
	}
	if got := tr.Imbalance(); got != 40 {
		t.Errorf("imbalance = %f, want 40 (max sync pct)", got)
	}
	var empty RankStats
	if empty.Pct(Compute) != 0 {
		t.Error("empty stats must report 0")
	}
}

func TestMergeSameState(t *testing.T) {
	tr := New(1)
	tr.Enter(0, Compute, 0)
	tr.Enter(0, Compute, 100)
	tr.Enter(0, Compute, 200)
	tr.Finish(300)
	if n := len(tr.Intervals(0)); n != 1 {
		t.Errorf("got %d intervals, want 1 merged", n)
	}
}

func TestZeroLengthIntervalsDropped(t *testing.T) {
	tr := New(1)
	tr.Enter(0, Compute, 0)
	tr.Enter(0, Sync, 0) // zero-length compute
	tr.Enter(0, Comm, 50)
	tr.Finish(50) // zero-length comm
	ivs := tr.Intervals(0)
	if len(ivs) != 1 || ivs[0].State != Sync {
		t.Errorf("intervals = %+v, want single sync interval", ivs)
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"zero ranks":    func() { New(0) },
		"bad state":     func() { New(1).Enter(0, NumStates, 0) },
		"not finished":  func() { New(1).Intervals(0) },
		"time backward": func() { tr := New(1); tr.Enter(0, Compute, 100); tr.Enter(0, Sync, 50) },
		"after finish":  func() { tr := New(1); tr.Finish(10); tr.Enter(0, Compute, 20) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDoubleFinishIsNoop(t *testing.T) {
	tr := New(1)
	tr.Enter(0, Compute, 0)
	tr.Finish(100)
	tr.Finish(200)
	if tr.End() != 100 {
		t.Errorf("End = %d, want 100", tr.End())
	}
}

func TestRender(t *testing.T) {
	tr := buildSimple(t)
	out := tr.Render(40)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "P2") {
		t.Error("render missing rank labels")
	}
	if !strings.Contains(out, "█") || !strings.Contains(out, "░") {
		t.Error("render missing compute/sync glyphs")
	}
	if !strings.Contains(out, "imbalance 40.00%") {
		t.Errorf("render missing imbalance header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("render has %d lines, want 3", len(lines))
	}
	// Tiny widths are clamped, not broken.
	if small := tr.Render(1); !strings.Contains(small, "P1") {
		t.Error("render with tiny width broken")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := buildSimple(t)
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "rank,state,from,to\n") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(out, "0,compute,0,600") || !strings.Contains(out, "0,sync,600,1000") {
		t.Errorf("CSV rows missing:\n%s", out)
	}
}

func TestWritePRV(t *testing.T) {
	tr := buildSimple(t)
	var b strings.Builder
	if err := tr.WritePRV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "#Paraver") {
		t.Error("PRV header missing")
	}
	if !strings.Contains(out, "1:1:1:1:1:0:600:1") {
		t.Errorf("PRV running record missing:\n%s", out)
	}
	if !strings.Contains(out, ":600:1000:7") {
		t.Errorf("PRV waiting record missing:\n%s", out)
	}
}

func TestStateStrings(t *testing.T) {
	for s := State(0); s < NumStates; s++ {
		if s.String() == "" {
			t.Errorf("state %d has no name", s)
		}
	}
	if State(42).String() == "" {
		t.Error("invalid state must still format")
	}
}

// Property: per-rank state cycle totals always sum to the rank's traced
// total, and the imbalance is the max sync percentage.
func TestPropStatsConsistent(t *testing.T) {
	f := func(switches []uint8) bool {
		tr := New(2)
		cycle := int64(0)
		tr.Enter(0, Compute, 0)
		tr.Enter(1, Sync, 0)
		for _, s := range switches {
			cycle += int64(s%100) + 1
			tr.Enter(0, State(s%uint8(NumStates)), cycle)
			tr.Enter(1, State((s/4)%uint8(NumStates)), cycle)
		}
		tr.Finish(cycle + 10)
		maxSync := 0.0
		for r := 0; r < 2; r++ {
			st := tr.RankStats(r)
			var sum int64
			for s := State(0); s < NumStates; s++ {
				sum += st.Cycles[s]
			}
			if sum != st.Total {
				return false
			}
			if p := st.Pct(Sync); p > maxSync {
				maxSync = p
			}
		}
		return tr.Imbalance() == maxSync
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intervals of a rank are contiguous, ordered, and cover
// [firstEnter, end).
func TestPropIntervalsContiguous(t *testing.T) {
	f := func(switches []uint8) bool {
		tr := New(1)
		cycle := int64(0)
		tr.Enter(0, Compute, 0)
		for _, s := range switches {
			cycle += int64(s%50) + 1
			tr.Enter(0, State(s%uint8(NumStates)), cycle)
		}
		tr.Finish(cycle + 5)
		prev := int64(0)
		for _, iv := range tr.Intervals(0) {
			if iv.From != prev || iv.To <= iv.From {
				return false
			}
			prev = iv.To
		}
		return prev == tr.End()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
