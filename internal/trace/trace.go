// Package trace records per-rank state intervals of a simulated MPI run
// and computes the metrics the paper reports, playing the role PARAVER
// played for the authors (Section VII): per-process %Compute and %Sync,
// the imbalance percentage (the maximum waiting-time percentage across the
// processes of the application), and total execution time.  It can render
// ASCII timelines equivalent to the paper's Figures 2–4 and export
// machine-readable traces.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// State is the activity of a rank during an interval.
type State uint8

// Rank states.  The paper's figures use dark bars for computation,
// light bars for synchronization waiting, and black bars for
// communication/statistics.
const (
	// Compute is useful work.
	Compute State = iota
	// Sync is busy-waiting at a synchronization point (barrier/waitall).
	Sync
	// Comm is active communication (data exchange, collective setup).
	Comm
	// Idle means the rank is not scheduled or finished.
	Idle
	// NumStates is the number of distinct states.
	NumStates
)

var stateNames = [NumStates]string{"compute", "sync", "comm", "idle"}

// String returns the state name.
func (s State) String() string {
	if int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", uint8(s))
	}
	return stateNames[s]
}

// glyphs used by Render, indexed by State.
var glyphs = [NumStates]rune{'█', '░', '▓', ' '}

// Interval is one contiguous span of a rank in a single state.
type Interval struct {
	State    State
	From, To int64 // cycles, [From, To)
}

// Duration returns the interval length in cycles.
func (iv Interval) Duration() int64 { return iv.To - iv.From }

// Trace accumulates intervals for a fixed set of ranks.
type Trace struct {
	ranks    [][]Interval
	cur      []State
	curFrom  []int64
	started  []bool
	end      int64
	finished bool
}

// New returns a trace for n ranks.
func New(n int) *Trace {
	if n <= 0 {
		panic("trace: need at least one rank")
	}
	return &Trace{
		ranks:   make([][]Interval, n),
		cur:     make([]State, n),
		curFrom: make([]int64, n),
		started: make([]bool, n),
	}
}

// NumRanks returns the number of ranks.
func (t *Trace) NumRanks() int { return len(t.ranks) }

// Enter records that rank switches to state s at the given cycle.
// Repeated Enter calls with the same state are merged.  Cycle numbers per
// rank must be non-decreasing.
func (t *Trace) Enter(rank int, s State, cycle int64) {
	if t.finished {
		panic("trace: Enter after Finish")
	}
	if s >= NumStates {
		panic(fmt.Sprintf("trace: invalid state %d", s))
	}
	if !t.started[rank] {
		t.started[rank] = true
		t.cur[rank] = s
		t.curFrom[rank] = cycle
		return
	}
	if cycle < t.curFrom[rank] {
		panic(fmt.Sprintf("trace: rank %d time went backwards (%d < %d)", rank, cycle, t.curFrom[rank]))
	}
	if t.cur[rank] == s {
		return
	}
	if cycle > t.curFrom[rank] {
		t.ranks[rank] = append(t.ranks[rank], Interval{State: t.cur[rank], From: t.curFrom[rank], To: cycle})
	}
	t.cur[rank] = s
	t.curFrom[rank] = cycle
}

// Finish closes all open intervals at the given cycle.
func (t *Trace) Finish(cycle int64) {
	if t.finished {
		return
	}
	for r := range t.ranks {
		if t.started[r] && cycle > t.curFrom[r] {
			t.ranks[r] = append(t.ranks[r], Interval{State: t.cur[r], From: t.curFrom[r], To: cycle})
		}
	}
	t.end = cycle
	t.finished = true
}

// End returns the cycle at which the trace was finished.
func (t *Trace) End() int64 { return t.end }

// Intervals returns the recorded intervals of a rank.  The trace must be
// finished.
func (t *Trace) Intervals(rank int) []Interval {
	t.mustBeFinished()
	return t.ranks[rank]
}

// FromIntervals rebuilds a finished trace from previously recorded
// intervals — the inverse of reading Intervals off every rank, used to
// revive traces from a persistent result store.  The intervals are
// copied and lightly validated (known states, non-negative spans inside
// [0, end]); a record that fails validation returns an error rather
// than a trace that panics later.
func FromIntervals(ranks [][]Interval, end int64) (*Trace, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("trace: FromIntervals needs at least one rank")
	}
	if end < 0 {
		return nil, fmt.Errorf("trace: negative end cycle %d", end)
	}
	t := New(len(ranks))
	for r, ivs := range ranks {
		last := int64(0)
		for _, iv := range ivs {
			if iv.State >= NumStates {
				return nil, fmt.Errorf("trace: rank %d has invalid state %d", r, iv.State)
			}
			if iv.From < last || iv.To < iv.From || iv.To > end {
				return nil, fmt.Errorf("trace: rank %d interval [%d,%d) out of order or past end %d", r, iv.From, iv.To, end)
			}
			last = iv.To
		}
		t.ranks[r] = append([]Interval(nil), ivs...)
	}
	t.end = end
	t.finished = true
	return t, nil
}

func (t *Trace) mustBeFinished() {
	if !t.finished {
		panic("trace: not finished")
	}
}

// RankStats aggregates a rank's time per state.
type RankStats struct {
	// Cycles per state.
	Cycles [NumStates]int64
	// Total traced cycles for the rank.
	Total int64
}

// Pct returns the percentage of total time spent in state s.
func (rs RankStats) Pct(s State) float64 {
	if rs.Total == 0 {
		return 0
	}
	return 100 * float64(rs.Cycles[s]) / float64(rs.Total)
}

// RankStats computes the per-state totals of a rank.
func (t *Trace) RankStats(rank int) RankStats {
	t.mustBeFinished()
	var rs RankStats
	for _, iv := range t.ranks[rank] {
		rs.Cycles[iv.State] += iv.Duration()
		rs.Total += iv.Duration()
	}
	return rs
}

// Imbalance returns the paper's imbalance metric: the maximum percentage
// of time any rank spent waiting at synchronization points.
func (t *Trace) Imbalance() float64 {
	t.mustBeFinished()
	max := 0.0
	for r := range t.ranks {
		if p := t.RankStats(r).Pct(Sync); p > max {
			max = p
		}
	}
	return max
}

// stateAt returns the dominant state of rank within [from, to).
func (t *Trace) stateAt(rank int, from, to int64) State {
	var weight [NumStates]int64
	for _, iv := range t.ranks[rank] {
		lo, hi := iv.From, iv.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			weight[iv.State] += hi - lo
		}
	}
	best, bestW := Idle, int64(0)
	for s := State(0); s < NumStates; s++ {
		if weight[s] > bestW {
			best, bestW = s, weight[s]
		}
	}
	return best
}

// Render draws the trace as an ASCII timeline, one row per rank, in the
// style of the paper's Figures 2-4: '█' compute, '░' sync wait, '▓'
// communication, ' ' idle.
func (t *Trace) Render(width int) string {
	t.mustBeFinished()
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("time: %d cycles, imbalance %.2f%%\n", t.end, t.Imbalance()))
	for r := range t.ranks {
		b.WriteString(fmt.Sprintf("P%-3d |", r+1))
		for w := 0; w < width; w++ {
			from := t.end * int64(w) / int64(width)
			to := t.end * int64(w+1) / int64(width)
			b.WriteRune(glyphs[t.stateAt(r, from, to)])
		}
		st := t.RankStats(r)
		b.WriteString(fmt.Sprintf("| comp %5.1f%% sync %5.1f%%\n", st.Pct(Compute), st.Pct(Sync)))
	}
	return b.String()
}

// WriteCSV emits the intervals as CSV: rank,state,from,to.
func (t *Trace) WriteCSV(w io.Writer) error {
	t.mustBeFinished()
	if _, err := fmt.Fprintln(w, "rank,state,from,to"); err != nil {
		return err
	}
	for r := range t.ranks {
		for _, iv := range t.ranks[r] {
			if _, err := fmt.Fprintf(w, "%d,%s,%d,%d\n", r, iv.State, iv.From, iv.To); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePRV emits a PARAVER-like state-record trace: one
// "1:cpu:appl:task:thread:begin:end:state" line per interval, preceded by
// a #Paraver header.  It is sufficient for downstream tooling that parses
// the classic .prv state records.
func (t *Trace) WritePRV(w io.Writer) error {
	t.mustBeFinished()
	if _, err := fmt.Fprintf(w, "#Paraver (repro):%d:%d:1:%d\n", t.end, len(t.ranks), len(t.ranks)); err != nil {
		return err
	}
	for r := range t.ranks {
		for _, iv := range t.ranks[r] {
			// PARAVER running=1, waiting=7 (synchronization), group
			// communication=9, idle=0.
			var code int
			switch iv.State {
			case Compute:
				code = 1
			case Sync:
				code = 7
			case Comm:
				code = 9
			default:
				code = 0
			}
			if _, err := fmt.Fprintf(w, "1:%d:1:%d:1:%d:%d:%d\n", r+1, r+1, iv.From, iv.To, code); err != nil {
				return err
			}
		}
	}
	return nil
}
