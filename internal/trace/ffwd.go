package trace

// Fast-forward support for the phase-skip engine (internal/mpisim).
// When the engine proves that the window [t0, t1) of a run will repeat k
// more times, it cannot tick through the repeats — so the trace must
// synthesize the interval records those windows would have produced.
//
// FFNorm captures the part of the recorder's state that shapes future
// records: the current state and started flag per rank.  curFrom is
// deliberately excluded — it is the absolute time of the last state
// change, a historical fact that can lie arbitrarily far in the past
// (a rank idling across many windows) without affecting whether the
// window repeats.  Its one behavioral role, the From of the next
// appended interval, is reconstructed exactly by FFReplicate.
//
// FFCounts exposes the per-rank interval counts so the engine can
// delimit "the intervals appended during the window".

// FFCounts returns the number of recorded intervals per rank.
func (t *Trace) FFCounts() []int {
	c := make([]int, len(t.ranks))
	for r := range t.ranks {
		c[r] = len(t.ranks[r])
	}
	return c
}

// FFNorm appends the recorder's normalized state.
func (t *Trace) FFNorm(b []byte) []byte {
	for r := range t.ranks {
		f := byte(0)
		if t.started[r] {
			f = 0x80
		}
		b = append(b, f|byte(t.cur[r]))
	}
	return b
}

// FFReplicate appends k copies of the window's interval records, shifted
// by one window period q each, as if the window [windowStart,
// windowStart+q) had been executed k more times.  startCounts are the
// per-rank interval counts (FFCounts) at the start of the window.
//
// Within each replica, interval i>0 keeps its in-window position (shift
// by j·q).  The first interval's From is instead the previous window's
// last state change: on the first match the change that opened the
// window's first interval belongs to the pre-periodic prefix, so its
// blind shift would not land on the window period.  Open intervals are
// carried by advancing curFrom a full k·q iff the last state change
// happened inside the window.
func (t *Trace) FFReplicate(startCounts []int, k, q, windowStart int64) {
	for r := range t.ranks {
		w := t.ranks[r][startCounts[r]:]
		if m := len(w); m > 0 {
			last := w[m-1].To
			for j := int64(1); j <= k; j++ {
				for i := range w {
					from := w[i].From + j*q
					if i == 0 {
						from = last + (j-1)*q
					}
					t.ranks[r] = append(t.ranks[r], Interval{
						State: w[i].State,
						From:  from,
						To:    w[i].To + j*q,
					})
				}
			}
		}
		if t.started[r] && t.curFrom[r] > windowStart {
			t.curFrom[r] += k * q
		}
	}
}
