package mpisim

import (
	"bytes"
	"encoding/binary"

	"repro/internal/workload"
)

// Phase-skip execution.
//
// The simulated applications are iterative: after a warm-up transient,
// the whole machine falls into a limit cycle — every iteration executes
// the same instructions against the same caches, predictors and queues,
// cycle for cycle.  The engine detects that limit cycle and advances
// across its repetitions analytically instead of ticking through them.
//
// Mechanism.  Every time rank 0 starts a compute phase (the anchor —
// once per iteration in practice) the engine snapshots the *normalized*
// state of the whole system: machine state via power5.Machine.FFNorm
// (absolute cycle numbers expressed relative to now, monotonic counters
// reduced to their behavioral residue) plus the runtime's own scheduler
// state below.  If the snapshot matches an earlier one taken Q cycles
// ago, the window just executed will repeat exactly: the state at both
// ends is behaviorally identical and everything in between is
// deterministic.  The engine then computes how many repetitions k are
// provably safe and applies them in O(state) time: extensive counters
// advance by k times their per-window delta (Machine.FFAdvance), cycle-
// anchored fields shift by k·Q, per-rank program counters advance by k
// windows, and the trace receives k replicas of the window's intervals
// (trace.FFReplicate).
//
// Exactness.  A skip is performed only when every ingredient of future
// behavior is provably periodic:
//
//   - the machine norm matches byte for byte (streams, pipeline rings,
//     predictor, caches as recency orders, kernel preemption state);
//   - the runtime norm matches (finished/in-compute flags, pending
//     exchanges and their readable arrival suffix relative to now,
//     barrier membership, per-rank trace states);
//   - each rank's upcoming program phases repeat with its per-window
//     phase stride for the full k windows (phases are compared by
//     value, including loads and peers);
//   - no phase in the window is a seed-derived pseudo-random kernel
//     (workload.UsesLCG with Load.Seed == 0): the runtime derives such
//     seeds from the program counter, so successive iterations would
//     start from different random states;
//   - k is capped so the run stays below MaxCycles, keeping the
//     deadlock-abort path byte-identical with exact execution.
//
// Because a matched window is replayed rather than approximated, runs
// with and without phase-skip produce byte-identical results; the
// differential tests in ff_test.go and the root package enforce this
// over every registered policy and scenario.
//
// Gating.  The engine arms only when Config.Exact is false and no
// OnIteration or LoadDrift hook is installed: hooks observe or perturb
// per-iteration state, so skipping iterations would change what they
// see.  If any instruction stream does not support state capture the
// engine disarms permanently for the run.

// ffHistCap bounds the anchor-snapshot history; matches are searched
// newest-first, so the cap only limits how stale a recurrence can be.
// A chip whose behavior is periodic mod M (≤ 64) and whose iteration
// length is odd visits M distinct cycle residues before anchors become
// congruent again, so the cap leaves room for a full residue orbit plus
// warm-up drift.  Mismatches are rejected by an 8-byte hash compare, so
// a deep history costs memory (≤ cap · norm size), not scan time.
const ffHistCap = 80

// ffSnap is one anchor snapshot.
type ffSnap struct {
	cycle     int64
	hash      uint64
	norm      []byte
	ctrs      []int64
	pc        []int
	exLen     []int
	trCnt     []int
	iteration int
}

// ffEngine holds the phase-skip state of one run.
type ffEngine struct {
	hist    []ffSnap
	scratch []byte
	// skips counts applied skips; windows and cycles total what they
	// covered (exposed as Result.SkippedCycles).
	skips   int
	windows int64
	cycles  int64
}

func ffHash(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// ffNorm appends the full normalized system state: machine first, then
// the runtime scheduler state.  ok is false when some stream does not
// support capture.
func (rt *runtime) ffNorm(b []byte) ([]byte, bool) {
	b, ok := rt.mach.FFNorm(b)
	if !ok {
		return b, false
	}
	now := rt.mach.Cycle()
	b = binary.LittleEndian.AppendUint64(b, uint64(rt.remaining))
	// Arrival entries below the lowest exchange index any unfinished
	// rank can still wait on are dead: exchanges match by index and
	// indices only grow.  Capturing the live suffix (relative to now,
	// clamped at zero — a past arrival only ever acts through
	// max(arrival, now)) keeps the norm recurrence-friendly.
	floor := -1
	for _, rs := range rt.ranks {
		if rs.finished {
			continue
		}
		v := len(rs.exchangeArrivals)
		if rs.pendingExchange >= 0 {
			v = rs.pendingExchange
		}
		if floor < 0 || v < floor {
			floor = v
		}
	}
	if floor < 0 {
		floor = 0
	}
	for _, rs := range rt.ranks {
		flags := byte(0)
		if rs.finished {
			flags |= 1
		}
		if rs.inCompute {
			flags |= 2
		}
		if rs.pendingExchange >= 0 {
			flags |= 4
		}
		b = append(b, flags)
		if rs.wakeAt >= 0 {
			b = binary.LittleEndian.AppendUint64(b, uint64(rs.wakeAt-now))
		} else {
			b = binary.LittleEndian.AppendUint64(b, ^uint64(0))
		}
		start := floor
		if start > len(rs.exchangeArrivals) {
			start = len(rs.exchangeArrivals)
		}
		suffix := rs.exchangeArrivals[start:]
		b = binary.LittleEndian.AppendUint64(b, uint64(len(suffix)))
		for _, a := range suffix {
			rel := int64(0)
			if a > now {
				rel = a - now
			}
			b = binary.LittleEndian.AppendUint64(b, uint64(rel))
		}
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(rt.barrierWaiting)))
	for _, id := range rt.barrierWaiting {
		b = append(b, byte(id))
	}
	return rt.tr.FFNorm(b), true
}

// ffSnapshot captures the current state as a history entry.  norm must
// be the current ffNorm output.
func (rt *runtime) ffSnapshot(norm []byte, hash uint64) ffSnap {
	s := ffSnap{
		cycle:     rt.mach.Cycle(),
		hash:      hash,
		norm:      append([]byte(nil), norm...),
		ctrs:      rt.mach.FFCtrs(nil),
		pc:        make([]int, len(rt.ranks)),
		exLen:     make([]int, len(rt.ranks)),
		trCnt:     rt.tr.FFCounts(),
		iteration: rt.iteration,
	}
	for i, rs := range rt.ranks {
		s.pc[i] = rs.pc
		s.exLen[i] = len(rs.exchangeArrivals)
	}
	return s
}

// ffOnAnchor runs at the main-loop boundary following an anchor event:
// it looks for a recurrence, applies the largest provably-safe skip,
// and records the (post-skip) state in the history.
func (rt *runtime) ffOnAnchor() {
	e := rt.ff
	norm, ok := rt.ffNorm(e.scratch[:0])
	e.scratch = norm[:0]
	if !ok {
		rt.ff = nil
		return
	}
	h := ffHash(norm)
	for i := len(e.hist) - 1; i >= 0; i-- {
		if e.hist[i].hash == h && bytes.Equal(e.hist[i].norm, norm) {
			rt.ffApply(&e.hist[i])
			break
		}
	}
	snap := rt.ffSnapshot(norm, h)
	if len(e.hist) == ffHistCap {
		copy(e.hist, e.hist[1:])
		e.hist[ffHistCap-1] = snap
	} else {
		e.hist = append(e.hist, snap)
	}
}

// ffWindows returns how many extra repetitions of the window ending now
// are provably safe for rank rs given its per-window phase stride, or 0.
// kMax is the global cap already derived from MaxCycles.
func (rt *runtime) ffWindows(rs *rankState, pc0 int, kMax int64) int64 {
	dp := rs.pc - pc0
	if dp == 0 {
		return kMax // rank did not advance; nothing program-side to check
	}
	if dp < 0 {
		return 0
	}
	// Seed-derived pseudo-random kernels make iterations non-periodic
	// (the runtime derives the seed from the program counter).
	for p := pc0; p < rs.pc && p < len(rs.program); p++ {
		ph := rs.program[p]
		if ph.Kind == PhaseCompute && ph.Load.Seed == 0 && workload.UsesLCG(ph.Load.Kind) {
			return 0
		}
	}
	// Count how far the program repeats with stride dp from the current
	// position.  The k-th replica must not only re-execute k·dp phases, it
	// ends in the anchor state — which embeds the *start* of the phase at
	// the advanced pc (the anchor is "a phase just began").  So the phase
	// at pc+k·dp must exist and match too: the scan covers t ≤ k·dp.
	limit := int64(len(rs.program) - rs.pc)
	if m := kMax*int64(dp) + 1; m < limit {
		limit = m
	}
	var t int64
	for t = 0; t < limit; t++ {
		if !phaseEq(rs.program[rs.pc+int(t)], rs.program[rs.pc+int(t)-dp]) {
			break
		}
	}
	if t == 0 {
		return 0
	}
	return (t - 1) / int64(dp)
}

func phaseEq(a, b Phase) bool {
	if a.Kind != b.Kind || a.Load != b.Load || a.Bytes != b.Bytes || len(a.Peers) != len(b.Peers) {
		return false
	}
	for i := range a.Peers {
		if a.Peers[i] != b.Peers[i] {
			return false
		}
	}
	return true
}

// ffApply advances the run k whole windows past the recurrence of h,
// where k is the largest provably-safe repetition count (possibly 0).
func (rt *runtime) ffApply(h *ffSnap) {
	now := rt.mach.Cycle()
	q := now - h.cycle
	if q <= 0 {
		return
	}
	// Stay strictly below MaxCycles so an eventual deadlock abort
	// happens exactly as it would under per-cycle execution.
	k := (rt.cfg.MaxCycles - 1 - now) / q
	for _, rs := range rt.ranks {
		if k <= 0 {
			return
		}
		if kr := rt.ffWindows(rs, h.pc[rs.id], k); kr < k {
			k = kr
		}
	}
	if k <= 0 {
		return
	}
	dt := k * q

	// Machine: counters advance by k deltas, clocks shift by dt.
	cur := rt.mach.FFCtrs(nil)
	if len(cur) != len(h.ctrs) {
		panic("mpisim: phase-skip counter shape mismatch")
	}
	delta := cur // reuse: overwrite in place
	for i := range delta {
		delta[i] = cur[i] - h.ctrs[i]
	}
	if rest := rt.mach.FFAdvance(k, dt, delta); len(rest) != 0 {
		panic("mpisim: phase-skip advance consumed wrong counter count")
	}

	// Runtime scheduler state.
	for _, rs := range rt.ranks {
		dp := rs.pc - h.pc[rs.id]
		rs.pc += int(k) * dp
		if dp > 0 {
			// Keep the LoadDrift compute-phase index consistent even
			// though drift hooks disarm the engine: the count is part of
			// the rank's logical position.
			nc := 0
			for p := h.pc[rs.id]; p < h.pc[rs.id]+dp && p < len(rs.program); p++ {
				if rs.program[p].Kind == PhaseCompute {
					nc++
				}
			}
			rs.computeIdx += int(k) * nc
		}
		if rs.inCompute {
			rs.computeStart += dt
		}
		if rs.wakeAt >= 0 {
			rs.wakeAt += dt
		}
		win := rs.exchangeArrivals[h.exLen[rs.id]:]
		if len(win) > 0 {
			w := append([]int64(nil), win...)
			for j := int64(1); j <= k; j++ {
				for _, a := range w {
					rs.exchangeArrivals = append(rs.exchangeArrivals, a+j*q)
				}
			}
			if rs.pendingExchange >= 0 {
				rs.pendingExchange += int(k) * len(w)
			}
		}
	}
	rt.iteration += int(k) * (rt.iteration - h.iteration)
	rt.tr.FFReplicate(h.trCnt, k, q, h.cycle)

	e := rt.ff
	e.skips++
	e.windows += k
	e.cycles += dt
}
