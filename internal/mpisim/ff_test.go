package mpisim_test

// Differential tests for the phase-skip engine: every run is executed
// twice, once with Config.Exact (pure per-cycle execution) and once with
// the fast path armed, and the two results must be byte-identical —
// including the full interval trace.  The suite sweeps workload kinds,
// kernel-noise settings, topologies and the edge cases from the engine's
// correctness argument.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apps/btmz"
	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/workload"
)

// quiet disables OS noise so runs settle into short limit cycles.
func quiet(cfg *mpisim.Config) {
	cfg.Kernel = oskernel.Config{Patched: true}
	cfg.KernelSet = true
}

func runBoth(t *testing.T, job *mpisim.Job, pl mpisim.Placement, cfg mpisim.Config) (*mpisim.Result, *mpisim.Result) {
	t.Helper()
	exact := cfg
	exact.Exact = true
	re, err := mpisim.Run(job, pl, exact)
	if err != nil {
		t.Fatalf("exact run failed: %v", err)
	}
	rf, err := mpisim.Run(job, pl, cfg)
	if err != nil {
		t.Fatalf("fast run failed: %v", err)
	}
	return re, rf
}

// mustIdentical asserts the two results are byte-identical, including
// the serialized trace.
func mustIdentical(t *testing.T, exact, fast *mpisim.Result) {
	t.Helper()
	if exact.Cycles != fast.Cycles {
		t.Fatalf("cycles diverge: exact=%d fast=%d", exact.Cycles, fast.Cycles)
	}
	if exact.Seconds != fast.Seconds {
		t.Fatalf("seconds diverge: exact=%v fast=%v", exact.Seconds, fast.Seconds)
	}
	if exact.Imbalance != fast.Imbalance {
		t.Fatalf("imbalance diverges: exact=%v fast=%v", exact.Imbalance, fast.Imbalance)
	}
	if exact.Iterations != fast.Iterations {
		t.Fatalf("iterations diverge: exact=%d fast=%d", exact.Iterations, fast.Iterations)
	}
	if !reflect.DeepEqual(exact.Ranks, fast.Ranks) {
		t.Fatalf("rank results diverge:\nexact: %+v\nfast:  %+v", exact.Ranks, fast.Ranks)
	}
	var be, bf bytes.Buffer
	if err := exact.Trace.WriteCSV(&be); err != nil {
		t.Fatal(err)
	}
	if err := fast.Trace.WriteCSV(&bf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(be.Bytes(), bf.Bytes()) {
		t.Fatalf("traces diverge (%d vs %d bytes)", be.Len(), bf.Len())
	}
}

func TestPhaseSkipBTMZCases(t *testing.T) {
	for _, noise := range []bool{false, true} {
		for _, c := range btmz.Cases() {
			name := fmt.Sprintf("%s/noise=%v", c, noise)
			t.Run(name, func(t *testing.T) {
				cfg := btmz.DefaultConfig()
				if c == btmz.CaseST {
					cfg = btmz.STConfig()
				}
				cfg.Iterations = 28
				cfg.UnitLoad = 30_000
				job := btmz.Job(cfg)
				pl, err := btmz.Placement(c)
				if err != nil {
					t.Fatal(err)
				}
				var mc mpisim.Config
				if !noise {
					quiet(&mc)
				}
				exact, fast := runBoth(t, job, pl, mc)
				mustIdentical(t, exact, fast)
				if !noise && fast.SkippedCycles == 0 {
					t.Errorf("phase-skip never engaged on the quiet %s run", c)
				}
			})
		}
	}
}

func TestPhaseSkipWorkloadKinds(t *testing.T) {
	kinds := []workload.Kind{
		workload.FPU, workload.FXU, workload.L1, workload.L2,
		workload.Mem, workload.Branchy, workload.Mixed, workload.Spin,
	}
	for _, k := range kinds {
		for _, seeded := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/seeded=%v", k, seeded), func(t *testing.T) {
				job := kindJob(k, seeded, 16)
				var mc mpisim.Config
				quiet(&mc)
				exact, fast := runBoth(t, job, mpisim.DefaultPlacement(2), mc)
				mustIdentical(t, exact, fast)
				// Pseudo-random kinds with runtime-derived seeds cannot
				// legally skip; everything else should once warmed up.
				if seeded && fast.SkippedCycles == 0 {
					t.Errorf("phase-skip never engaged for seeded kind %v", k)
				}
			})
		}
	}
}

// kindJob builds a two-rank iterative job computing with the given kind.
// Spin is not a terminating compute kernel, so it is swapped for FXU
// compute with the ranks still exercising the spin wait at barriers.
func kindJob(k workload.Kind, seeded bool, iters int) *mpisim.Job {
	var seed uint64
	if seeded {
		seed = 12345
	}
	ck := k
	if ck == workload.Spin {
		ck = workload.FXU
	}
	job := &mpisim.Job{Name: fmt.Sprintf("kind-%v", k)}
	job.Ranks = make([]mpisim.Program, 2)
	for r := range job.Ranks {
		var prog mpisim.Program
		for i := 0; i < iters; i++ {
			n := int64(4000 + 3000*r)
			prog = append(prog, mpisim.Compute(workload.Load{Kind: ck, N: n, Seed: seed}))
			prog = append(prog, mpisim.Barrier())
		}
		job.Ranks[r] = prog
	}
	return job
}

func TestPhaseSkipMultiChip(t *testing.T) {
	topo := power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	job := &mpisim.Job{Name: "multichip"}
	job.Ranks = make([]mpisim.Program, 4)
	for r := range job.Ranks {
		var prog mpisim.Program
		for i := 0; i < 12; i++ {
			prog = append(prog,
				mpisim.Compute(workload.Load{Kind: workload.FXU, N: int64(5000 + 2000*r)}),
				mpisim.Exchange(4096, (r+1)%4, (r+3)%4),
			)
		}
		prog = append(prog, mpisim.Barrier())
		job.Ranks[r] = prog
	}
	pl := mpisim.Placement{
		CPU:  []int{0, 1, 4, 5}, // two ranks per chip
		Prio: []hwpri.Priority{hwpri.Medium, hwpri.Medium, hwpri.Medium, hwpri.Medium},
	}
	mc := mpisim.Config{Topology: topo}
	quiet(&mc)
	exact, fast := runBoth(t, job, pl, mc)
	mustIdentical(t, exact, fast)
	if fast.SkippedCycles == 0 {
		t.Error("phase-skip never engaged on the multi-chip run")
	}
}

func TestPhaseSkipZeroLengthCompute(t *testing.T) {
	// Minimal compute phases (N=1) between barriers: decision points are
	// nearly back to back.
	job := &mpisim.Job{Name: "tiny-phases"}
	job.Ranks = make([]mpisim.Program, 2)
	for r := range job.Ranks {
		var prog mpisim.Program
		for i := 0; i < 8; i++ {
			prog = append(prog,
				mpisim.Compute(workload.Load{Kind: workload.FXU, N: 1}),
				mpisim.Barrier(),
			)
		}
		job.Ranks[r] = prog
	}
	var mc mpisim.Config
	quiet(&mc)
	exact, fast := runBoth(t, job, mpisim.DefaultPlacement(2), mc)
	mustIdentical(t, exact, fast)
}

func TestPhaseSkipMaxCyclesOnFinalCycle(t *testing.T) {
	// MaxCycles exactly equal to the run's natural end must succeed in
	// both modes; one cycle less must fail identically in both.
	job := kindJob(workload.FXU, true, 4)
	var mc mpisim.Config
	quiet(&mc)
	exact, fast := runBoth(t, job, mpisim.DefaultPlacement(2), mc)
	mustIdentical(t, exact, fast)

	mc.MaxCycles = exact.Cycles
	exact2, fast2 := runBoth(t, job, mpisim.DefaultPlacement(2), mc)
	mustIdentical(t, exact2, fast2)

	mc.MaxCycles = exact.Cycles - 1
	ecfg := mc
	ecfg.Exact = true
	_, errExact := mpisim.Run(job, mpisim.DefaultPlacement(2), ecfg)
	_, errFast := mpisim.Run(job, mpisim.DefaultPlacement(2), mc)
	if errExact == nil || errFast == nil {
		t.Fatalf("expected MaxCycles errors, got exact=%v fast=%v", errExact, errFast)
	}
	if errExact.Error() != errFast.Error() {
		t.Fatalf("error divergence:\nexact: %v\nfast:  %v", errExact, errFast)
	}
}

func TestPhaseSkipLoadDriftForcesExact(t *testing.T) {
	// A LoadDrift hook disables the engine; the run must both succeed and
	// report zero skipped cycles.
	job := kindJob(workload.FXU, true, 4)
	var mc mpisim.Config
	quiet(&mc)
	mc.LoadDrift = func(rank, idx int, l workload.Load) workload.Load { return l }
	res, err := mpisim.Run(job, mpisim.DefaultPlacement(2), mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedCycles != 0 {
		t.Fatalf("engine engaged (%d skipped cycles) despite LoadDrift hook", res.SkippedCycles)
	}
	// An identity drift must reproduce the no-drift run exactly.
	var plain mpisim.Config
	quiet(&plain)
	plain.Exact = true
	ref, err := mpisim.Run(job, mpisim.DefaultPlacement(2), plain)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, ref, res)
}

// countdownCtx reports cancellation after its Err method has been
// consulted n times, simulating a deadline landing mid-run without
// depending on wall-clock time.
type countdownCtx struct {
	context.Context
	left int
}

var errCountdown = errors.New("countdown expired")

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return errCountdown
	}
	c.left--
	return nil
}

func TestPhaseSkipCancellationMidRun(t *testing.T) {
	// Cancellation is observed between scheduling quanta even when the
	// engine is skipping: the ≤1M-cycle quantum bound of RunCtx holds.
	job := kindJob(workload.FXU, true, 64)
	var mc mpisim.Config
	quiet(&mc)
	ctx := &countdownCtx{Context: context.Background(), left: 3}
	_, err := mpisim.RunCtx(ctx, job, mpisim.DefaultPlacement(2), mc)
	if !errors.Is(err, errCountdown) {
		t.Fatalf("expected cancellation error, got %v", err)
	}
}

func TestPhaseSkipExactFlagDisables(t *testing.T) {
	job := kindJob(workload.FXU, true, 6)
	var mc mpisim.Config
	quiet(&mc)
	mc.Exact = true
	res, err := mpisim.Run(job, mpisim.DefaultPlacement(2), mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedCycles != 0 {
		t.Fatalf("Exact run reported %d skipped cycles", res.SkippedCycles)
	}
}
