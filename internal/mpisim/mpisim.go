// Package mpisim simulates an MPI runtime (the paper used MPICH 1.0.4p1)
// running SPMD applications on the simulated POWER5 machine.
//
// Each rank is an OS process pinned to one logical CPU executing a Program
// — a sequence of phases: Compute (a workload kernel), Barrier (the
// MetBench master/worker synchronization), and Exchange (the BT-MZ/SIESTA
// pattern: mpi_isend/mpi_irecv to neighbours followed by mpi_waitall).
//
// Waiting is busy-waiting, as in MPICH: a rank blocked at a barrier or
// waitall runs the user-level Spin kernel (the progress-engine poll loop)
// on its hardware context, consuming decode cycles and cache space of its
// core sibling.  This is the effect the paper's priority mechanism
// exploits: lowering a spinner's priority gives the core to the
// compute-bound sibling.
package mpisim

import (
	"context"
	"fmt"

	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PhaseKind discriminates program phases.
type PhaseKind uint8

// Phase kinds.
const (
	// PhaseCompute runs a workload kernel to completion.
	PhaseCompute PhaseKind = iota
	// PhaseBarrier blocks until every rank reaches its barrier.
	PhaseBarrier
	// PhaseExchange posts non-blocking sends/receives to the peer ranks
	// and waits (mpi_waitall) until the matching exchanges complete.
	PhaseExchange
)

// Phase is one step of a rank's program.
type Phase struct {
	Kind  PhaseKind
	Load  workload.Load // PhaseCompute
	Peers []int         // PhaseExchange
	Bytes int64         // PhaseExchange
}

// Compute returns a compute phase running the given load.
func Compute(l workload.Load) Phase { return Phase{Kind: PhaseCompute, Load: l} }

// Barrier returns a global barrier phase.
func Barrier() Phase { return Phase{Kind: PhaseBarrier} }

// Exchange returns a neighbour-exchange phase moving bytes to/from peers.
func Exchange(bytes int64, peers ...int) Phase {
	return Phase{Kind: PhaseExchange, Bytes: bytes, Peers: peers}
}

// Program is a rank's phase sequence.
type Program []Phase

// Job is an MPI application: one program per rank.
type Job struct {
	// Name labels the job in diagnostics.
	Name string
	// Ranks holds each rank's program.
	Ranks []Program
}

// Placement pins ranks to logical CPUs with hardware priorities, i.e. the
// experiment configuration of the paper's Tables IV-VI rows.
type Placement struct {
	// CPU maps rank -> logical CPU.
	CPU []int
	// Prio maps rank -> hardware thread priority at launch.
	Prio []hwpri.Priority
}

// DefaultPlacement pins rank i to CPU i at MEDIUM priority — the paper's
// reference Case A.
func DefaultPlacement(ranks int) Placement {
	pl := Placement{CPU: make([]int, ranks), Prio: make([]hwpri.Priority, ranks)}
	for i := range pl.CPU {
		pl.CPU[i] = i
		pl.Prio[i] = hwpri.Medium
	}
	return pl
}

// IterationEvent is passed to Config.OnIteration at every barrier release;
// it is the hook the dynamic balancer (internal/core) attaches to.
type IterationEvent struct {
	// Index counts barrier releases from 0.
	Index int
	// Arrival is the cycle each rank reached the barrier.
	Arrival []int64
	// ComputeCycles is the time each rank spent in compute phases since
	// the previous release — the per-process computation time the
	// paper's proposed OS balancer would sample (Section VIII).  Unlike
	// Arrival it is not distorted by exchange coupling.
	ComputeCycles []int64
	// Release is the cycle the barrier opened.
	Release int64
	// Kernel gives the handler access to the OS (procfs writes).
	Kernel *oskernel.Kernel
	// PIDs maps rank -> PID for procfs writes.
	PIDs []int
}

// ApplyPriority writes the rank's hardware thread priority through the
// kernel's procfs interface — the only path by which an online balancer
// may act, so a vanilla kernel (no procfs file) correctly makes every
// policy inert.  It reports whether the write took effect.
func (ev IterationEvent) ApplyPriority(rank int, prio hwpri.Priority) bool {
	if rank < 0 || rank >= len(ev.PIDs) || ev.Kernel == nil {
		return false
	}
	return ev.Kernel.WriteHMTPriority(ev.PIDs[rank], prio) == nil
}

// Config parameterizes a run.
type Config struct {
	// Chip configures the simulated processor; zero value means
	// power5.DefaultConfig.  With a multi-chip Topology, Chip describes
	// each chip (its Cores is overridden by Topology.CoresPerChip).
	Chip power5.Config
	// Topology sizes the machine as chips × cores-per-chip × SMT ways.
	// The zero value derives a single-chip topology from Chip, i.e. the
	// paper's 1×2×2 OpenPower 710.
	Topology power5.Topology
	// Kernel configures the simulated OS; zero value means
	// oskernel.DefaultConfig (patched, 1000 Hz-equivalent ticks).
	Kernel oskernel.Config
	// KernelSet marks Kernel as explicitly provided (a zero
	// oskernel.Config is a valid vanilla-kernel configuration).
	KernelSet bool
	// CommLatency computes the exchange latency in cycles between two
	// logical CPUs; nil installs DefaultCommLatency.
	CommLatency func(cpuA, cpuB int, bytes int64) int64
	// MaxCycles aborts runs that stop progressing (deadlock guard).
	// 0 means a generous default.
	MaxCycles int64
	// OnIteration, if set, fires at every barrier release.
	OnIteration func(ev IterationEvent)
	// LoadDrift, if set, rewrites a compute phase's load as its rank
	// enters it: it receives the rank, the index of the compute phase
	// within the rank's program (counting compute phases only, from 0)
	// and the phase's declared load, and returns the load actually
	// executed.  It is the hook for open-ended drifting workloads whose
	// per-iteration loads are not known when the job is built — the
	// scenario generators' runtime alternative to precomputing every
	// iteration.  A returned N < 1 is clamped to 1 (N <= 0 would mean
	// an infinite kernel).  The hook must be deterministic if the run's
	// results are to be reproducible.
	LoadDrift func(rank, computeIdx int, load workload.Load) workload.Load
	// ColdCaches skips the cache pre-warming pass.  By default each
	// rank's working set is touched into the hierarchy before the traced
	// region: the paper measures steady-state applications, and at the
	// reproduction's reduced workload scale the cold first pass over a
	// footprint would otherwise dominate the run.
	ColdCaches bool
	// Exact forces per-cycle execution, disabling the phase-skip fast
	// path (see ffwd.go).  Results are byte-identical either way — the
	// fast path only applies windows it can prove will repeat exactly —
	// so Exact exists as an escape hatch and for the differential tests
	// that enforce that equivalence.  Runs with an OnIteration or
	// LoadDrift hook are implicitly exact.
	Exact bool
}

// DefaultCommLatency models the paper's single-node SMP: exchanges between
// contexts of the same core ride the shared L2, cross-core exchanges pay
// the chip interconnect, plus a per-byte cost.  Communication is a fraction
// of a percent of iteration time, as measured in the paper (Section VII-B).
// It assumes the single-chip machine; multi-chip runs install
// TopologyCommLatency (identical on one chip) automatically.
func DefaultCommLatency(cpuA, cpuB int, bytes int64) int64 {
	base := int64(300)
	if cpuA/2 != cpuB/2 {
		base = 800
	}
	return base + bytes/128
}

// crossChipCommBase is the base latency of an exchange between contexts
// on different chips: the transfer leaves the chip entirely (fabric
// bus/SMP interconnect), roughly 3× the on-chip cross-core cost.
const crossChipCommBase = 2500

// TopologyCommLatency returns the default latency model for a machine of
// the given topology: same-core exchanges ride the shared L1/L2 (300
// cycles), same-chip cross-core exchanges pay the on-chip interconnect
// (800), and cross-chip exchanges pay the off-chip fabric (2500), all
// plus a per-byte cost.  On a single-chip topology it is exactly
// DefaultCommLatency.
func TopologyCommLatency(topo power5.Topology) func(cpuA, cpuB int, bytes int64) int64 {
	return func(cpuA, cpuB int, bytes int64) int64 {
		base := int64(300)
		switch {
		case topo.CoreOf(cpuA) == topo.CoreOf(cpuB):
		case topo.ChipOf(cpuA) == topo.ChipOf(cpuB):
			base = 800
		default:
			base = crossChipCommBase
		}
		return base + bytes/128
	}
}

// RankResult summarizes one rank's run.
type RankResult struct {
	// CPU is the logical CPU the rank was pinned to.
	CPU int
	// Core is the physical core of that CPU (global, chip-major index).
	Core int
	// Chip is the chip holding that core (always 0 on the default
	// single-chip topology).
	Chip int
	// Prio is the rank's launch priority.
	Prio hwpri.Priority
	// ComputePct, SyncPct and CommPct are the percentages of the rank's
	// time spent computing, waiting and communicating (the paper's
	// "Comp %" and "Sync %" columns).
	ComputePct, SyncPct, CommPct float64
	// Instructions is the count of completed instructions on the rank's
	// context (including its busy-wait spinning).
	Instructions int64
}

// Result is the outcome of a run.
type Result struct {
	// Cycles is the total execution time in cycles.
	Cycles int64
	// Seconds is Cycles on the simulated 1.65 GHz clock.
	Seconds float64
	// Imbalance is the paper's metric: the maximum Sync percentage over
	// the ranks.
	Imbalance float64
	// Trace holds the full state-interval trace (Figures 2-4).
	Trace *trace.Trace
	// Ranks holds per-rank summaries (Tables IV-VI rows).
	Ranks []RankResult
	// Iterations is the number of barrier releases observed.
	Iterations int
	// SkippedCycles is the number of simulated cycles the phase-skip
	// engine advanced analytically instead of executing; 0 under
	// Config.Exact or when no recurrence was found.  It is a diagnostic:
	// results are identical whatever its value.
	SkippedCycles int64
}

// rankState tracks one rank's progress through its program.
type rankState struct {
	id       int
	proc     *oskernel.Process
	program  Program
	pc       int
	finished bool
	// exchange bookkeeping: arrival cycle of each Exchange phase, in
	// order of arrival.
	exchangeArrivals []int64
	pendingExchange  int // index of the exchange being waited for, -1 none
	wakeAt           int64
	commAt           int64 // when waiting turned into active transfer
	// per-iteration compute accounting for IterationEvent.
	computeAcc   int64
	computeStart int64
	inCompute    bool
	// computeIdx counts the compute phases the rank has started, for
	// Config.LoadDrift.
	computeIdx int
}

type runtime struct {
	job  *Job
	pl   Placement
	cfg  Config
	topo power5.Topology
	mach *power5.Machine
	kern *oskernel.Kernel
	tr   *trace.Trace

	ranks     []*rankState
	byPID     map[int]*rankState
	remaining int

	barrierWaiting []int
	barrierArrival []int64
	iteration      int

	// ff is the phase-skip engine; nil when disabled (Config.Exact,
	// per-iteration hooks, or an uncapturable stream).  ffAnchor marks
	// that an anchor event fired since the last main-loop boundary.
	ff       *ffEngine
	ffAnchor bool
}

// rankBase returns the disjoint address-space base of a rank.
func rankBase(id int) uint64 { return uint64(id+1) << 36 }

// spinLoad is the busy-wait kernel of a rank.
func spinLoad(id int) workload.Load {
	return workload.Load{Kind: workload.Spin, Base: rankBase(id) | 1<<32, Seed: uint64(id) + 101}
}

// Run executes the job under the placement and configuration.
//
//mtlint:ctx-root ctx-less convenience wrapper; RunCtx is the cancellable form
func Run(job *Job, pl Placement, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), job, pl, cfg)
}

// RunCtx is Run with cancellation: the simulator checks ctx between
// scheduling quanta — at least once per million simulated cycles — so a
// hung or long run aborts promptly when the context is cancelled.  The
// returned error wraps ctx.Err() (test with errors.Is).  A nil ctx means
// context.Background().
func RunCtx(ctx context.Context, job *Job, pl Placement, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(job.Ranks)
	if n == 0 {
		return nil, fmt.Errorf("mpisim: job %q has no ranks", job.Name)
	}
	if len(pl.CPU) != n || len(pl.Prio) != n {
		return nil, fmt.Errorf("mpisim: placement size mismatch: %d ranks, %d CPUs, %d priorities",
			n, len(pl.CPU), len(pl.Prio))
	}
	if cfg.Chip.Cores == 0 {
		cfg.Chip = power5.DefaultConfig()
	}
	topo := cfg.Topology
	if topo.IsZero() {
		topo = power5.Topology{Chips: 1, CoresPerChip: cfg.Chip.Cores, SMTWays: cfg.Chip.ThreadsPerCore}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if !cfg.KernelSet {
		cfg.Kernel = oskernel.DefaultConfig()
	}
	if cfg.CommLatency == nil {
		cfg.CommLatency = TopologyCommLatency(topo)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 33
	}
	mach, err := power5.NewMachine(topo, cfg.Chip)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	for r, cpu := range pl.CPU {
		if cpu < 0 || cpu >= topo.Contexts() {
			return nil, fmt.Errorf("mpisim: rank %d pinned to CPU %d, but the %s topology has only %d hardware contexts (CPUs 0..%d)",
				r, cpu, topo, topo.Contexts(), topo.Contexts()-1)
		}
		if seen[cpu] {
			return nil, fmt.Errorf("mpisim: CPU %d pinned twice", cpu)
		}
		seen[cpu] = true
	}
	rt := &runtime{
		job:  job,
		pl:   pl,
		cfg:  cfg,
		topo: topo,
		mach: mach,
		kern: oskernel.NewMachine(mach, cfg.Kernel),
		tr:   trace.New(n),
	}
	rt.byPID = make(map[int]*rankState, n)
	rt.kern.OnProcessStreamEnd(rt.onStreamEnd)
	if !cfg.Exact && cfg.OnIteration == nil && cfg.LoadDrift == nil {
		rt.ff = &ffEngine{}
	}

	// A priority-7 rank asks for Single Thread mode: take its unused
	// sibling context offline, as the paper's ST rows do.
	rankOn := make(map[int]int)
	for r, cpu := range pl.CPU {
		rankOn[cpu] = r
	}
	for cpu := 0; cpu < rt.kern.NumCPUs(); cpu++ {
		if _, ok := rankOn[cpu]; ok {
			continue
		}
		if sib, ok := rankOn[topo.SiblingCPU(cpu)]; ok && pl.Prio[sib] == hwpri.VeryHigh {
			if err := rt.kern.OfflineCPU(cpu); err != nil {
				return nil, err
			}
		}
	}

	for r := 0; r < n; r++ {
		rs := &rankState{id: r, program: job.Ranks[r], pc: -1, pendingExchange: -1, wakeAt: -1}
		rt.ranks = append(rt.ranks, rs)
	}
	rt.remaining = n
	for _, rs := range rt.ranks {
		proc, err := rt.kern.Spawn(fmt.Sprintf("%s-rank%d", job.Name, rs.id), pl.CPU[rs.id],
			isa.Empty{}, pl.Prio[rs.id])
		if err != nil {
			return nil, err
		}
		rs.proc = proc
		rt.byPID[proc.PID] = rs
	}
	if !cfg.ColdCaches {
		rt.warmCaches()
	}

	// Move every rank into its first phase before the chip runs: the
	// placeholder empty stream is never observed.
	for _, rs := range rt.ranks {
		rt.advance(rs)
	}

	for rt.remaining > 0 && rt.mach.Cycle() < rt.cfg.MaxCycles {
		// The per-iteration target below is capped at one million cycles,
		// so this check bounds the cancellation latency to one quantum.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mpisim: job %q cancelled at cycle %d: %w", job.Name, rt.mach.Cycle(), err)
		}
		target := rt.cfg.MaxCycles
		if w := rt.nextWake(); w >= 0 && w < target {
			target = w
		}
		if c := rt.mach.Cycle() + 1_000_000; c < target {
			target = c
		}
		if target <= rt.mach.Cycle() {
			target = rt.mach.Cycle() + 1
		}
		rt.mach.RunUntil(target)
		rt.fireWakeups()
		if rt.ffAnchor {
			rt.ffAnchor = false
			if rt.ff != nil && rt.remaining > 0 {
				rt.ffOnAnchor()
			}
		}
	}
	if rt.remaining > 0 {
		return nil, fmt.Errorf("mpisim: job %q exceeded MaxCycles=%d (deadlock or undersized budget)",
			job.Name, rt.cfg.MaxCycles)
	}
	rt.tr.Finish(rt.mach.Cycle())

	res := &Result{
		Cycles:     rt.mach.Cycle(),
		Seconds:    rt.mach.Seconds(rt.mach.Cycle()),
		Imbalance:  rt.tr.Imbalance(),
		Trace:      rt.tr,
		Iterations: rt.iteration,
	}
	if rt.ff != nil {
		res.SkippedCycles = rt.ff.cycles
	}
	for _, rs := range rt.ranks {
		st := rt.tr.RankStats(rs.id)
		cpu := pl.CPU[rs.id]
		core, thr := topo.CoreOf(cpu), topo.ThreadOf(cpu)
		res.Ranks = append(res.Ranks, RankResult{
			CPU:          cpu,
			Core:         core,
			Chip:         topo.ChipOf(cpu),
			Prio:         pl.Prio[rs.id],
			ComputePct:   st.Pct(trace.Compute),
			SyncPct:      st.Pct(trace.Sync),
			CommPct:      st.Pct(trace.Comm),
			Instructions: rt.mach.Stats(core, thr).Completed,
		})
	}
	return res, nil
}

// warmCaches touches each rank's working sets (compute loads and its spin
// loop's progress-engine footprint) into the hierarchy, bounded per load
// so that deliberately cache-busting kernels (Mem) still miss.
func (rt *runtime) warmCaches() {
	const warmCap = 1 << 20 // bytes per load
	const line = 128
	for _, rs := range rt.ranks {
		core := rt.topo.CoreOf(rt.pl.CPU[rs.id])
		warm := func(l workload.Load) {
			base := l.Base
			if base == 0 {
				base = rankBase(rs.id)
			}
			fp := l.EffectiveFootprint()
			if fp > warmCap {
				fp = warmCap
			}
			for off := int64(0); off < fp; off += line {
				rt.mach.TouchMemory(core, base+uint64(off))
			}
		}
		for _, ph := range rs.program {
			if ph.Kind == PhaseCompute {
				warm(ph.Load)
			}
		}
		warm(spinLoad(rs.id))
	}
}

// nextWake returns the earliest pending wakeup cycle, or -1.
func (rt *runtime) nextWake() int64 {
	w := int64(-1)
	for _, rs := range rt.ranks {
		if rs.wakeAt >= 0 && (w < 0 || rs.wakeAt < w) {
			w = rs.wakeAt
		}
	}
	return w
}

// fireWakeups completes exchanges whose transfer finished.
func (rt *runtime) fireWakeups() {
	now := rt.mach.Cycle()
	for _, rs := range rt.ranks {
		if rs.wakeAt >= 0 && rs.wakeAt <= now {
			rs.wakeAt = -1
			rs.pendingExchange = -1
			rt.advance(rs)
		}
	}
}

// onStreamEnd fires when a rank's compute phase finishes.
func (rt *runtime) onStreamEnd(p *oskernel.Process) {
	rs, ok := rt.byPID[p.PID]
	if !ok || rs.finished {
		return
	}
	rt.advance(rs)
}

// advance moves a rank to its next phase.
func (rt *runtime) advance(rs *rankState) {
	rs.pc++
	rt.startPhase(rs)
}

// startPhase begins the phase at rs.pc.
func (rt *runtime) startPhase(rs *rankState) {
	now := rt.mach.Cycle()
	if rs.inCompute {
		rs.computeAcc += now - rs.computeStart
		rs.inCompute = false
	}
	if rs.pc >= len(rs.program) {
		rs.finished = true
		rt.tr.Enter(rs.id, trace.Idle, now)
		rt.kern.Exit(rs.proc)
		rt.remaining--
		if rt.remaining == 0 {
			rt.mach.Halt()
		}
		return
	}
	ph := rs.program[rs.pc]
	switch ph.Kind {
	case PhaseCompute:
		if rs.id == 0 && rt.ff != nil {
			// Phase-skip anchor: rank 0 starting a compute phase is the
			// once-per-iteration event the engine snapshots at.  Halting
			// forces a main-loop boundary at this exact cycle, so
			// snapshots always sample the same point of the iteration
			// orbit (halting does not perturb machine state).
			rt.ffAnchor = true
			rt.mach.Halt()
		}
		rt.tr.Enter(rs.id, trace.Compute, now)
		rs.inCompute = true
		rs.computeStart = now
		load := ph.Load
		if rt.cfg.LoadDrift != nil {
			load = rt.cfg.LoadDrift(rs.id, rs.computeIdx, load)
			if load.Kind != workload.Spin && load.N < 1 {
				load.N = 1
			}
		}
		rs.computeIdx++
		if load.Base == 0 {
			load.Base = rankBase(rs.id)
		}
		if load.Seed == 0 {
			load.Seed = uint64(rs.id)*977 + uint64(rs.pc) + 1
		}
		rt.kern.SetUserStream(rs.proc, load.Stream())
	case PhaseBarrier:
		rt.tr.Enter(rs.id, trace.Sync, now)
		rt.kern.SetUserStream(rs.proc, spinLoad(rs.id).Stream())
		rt.barrierWaiting = append(rt.barrierWaiting, rs.id)
		if rt.cfg.OnIteration != nil {
			rt.barrierArrival = append(rt.barrierArrival, now)
		}
		if len(rt.barrierWaiting) == rt.activeRanks() {
			rt.releaseBarrier()
		}
	case PhaseExchange:
		rt.tr.Enter(rs.id, trace.Sync, now)
		rt.kern.SetUserStream(rs.proc, spinLoad(rs.id).Stream())
		rs.exchangeArrivals = append(rs.exchangeArrivals, now)
		rs.pendingExchange = len(rs.exchangeArrivals) - 1
		rt.checkExchanges()
	default:
		panic(fmt.Sprintf("mpisim: unknown phase kind %d", ph.Kind))
	}
}

// activeRanks counts unfinished ranks (a finished rank no longer joins
// barriers — programs should be barrier-aligned, but this keeps truncated
// programs from deadlocking the rest).
func (rt *runtime) activeRanks() int {
	n := 0
	for _, rs := range rt.ranks {
		if !rs.finished {
			n++
		}
	}
	return n
}

// releaseBarrier opens the barrier and advances all waiting ranks.  The
// arrival bookkeeping is only materialized when an OnIteration hook will
// consume it — the release itself is on the simulator's hot path.
func (rt *runtime) releaseBarrier() {
	waiting := rt.barrierWaiting
	arrivals := rt.barrierArrival
	rt.barrierWaiting = nil
	rt.barrierArrival = nil
	if rt.cfg.OnIteration != nil {
		arrival := make([]int64, len(rt.ranks))
		for i, id := range waiting {
			arrival[id] = arrivals[i]
		}
		pids := make([]int, len(rt.ranks))
		comp := make([]int64, len(rt.ranks))
		for _, rs := range rt.ranks {
			pids[rs.id] = rs.proc.PID
			comp[rs.id] = rs.computeAcc
		}
		rt.cfg.OnIteration(IterationEvent{
			Index:         rt.iteration,
			Arrival:       arrival,
			ComputeCycles: comp,
			Release:       rt.mach.Cycle(),
			Kernel:        rt.kern,
			PIDs:          pids,
		})
	}
	for _, rs := range rt.ranks {
		rs.computeAcc = 0
	}
	rt.iteration++
	for _, id := range waiting {
		rt.advance(rt.ranks[id])
	}
}

// checkExchanges resolves pending exchanges whose peers have all arrived:
// the n-th exchange of a rank matches the n-th exchange of each peer.
func (rt *runtime) checkExchanges() {
	for _, rs := range rt.ranks {
		n := rs.pendingExchange
		if n < 0 || rs.wakeAt >= 0 {
			continue
		}
		ph := rs.program[rs.pc]
		ready := rs.exchangeArrivals[n]
		ok := true
		for _, p := range ph.Peers {
			peer := rt.ranks[p]
			if len(peer.exchangeArrivals) <= n {
				ok = false
				break
			}
			if a := peer.exchangeArrivals[n]; a > ready {
				ready = a
			}
		}
		if !ok {
			continue
		}
		// All peers posted: the transfer itself now takes the wire
		// latency; the rank shows as communicating.
		lat := int64(0)
		for _, p := range ph.Peers {
			l := rt.cfg.CommLatency(rt.pl.CPU[rs.id], rt.pl.CPU[p], ph.Bytes)
			if l > lat {
				lat = l
			}
		}
		rs.commAt = ready
		if now := rt.mach.Cycle(); now > rs.commAt {
			rs.commAt = now
		}
		rt.tr.Enter(rs.id, trace.Comm, rs.commAt)
		rs.wakeAt = rs.commAt + lat
		// Interrupt the chip's current run so the main loop re-targets
		// to this wakeup instead of overshooting it.
		rt.mach.Halt()
	}
}
