package mpisim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/hwpri"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/trace"
	"repro/internal/workload"
)

// quietCfg returns a config without OS noise so tests are exactly
// reproducible and fast.
func quietCfg() Config {
	chip := power5.DefaultConfig()
	chip.BranchBits = 10
	return Config{
		Chip:      chip,
		Kernel:    oskernel.Config{Patched: true},
		KernelSet: true,
		MaxCycles: 1 << 26,
	}
}

func fpu(n int64) workload.Load { return workload.Load{Kind: workload.FPU, N: n} }

// balancedJob returns ranks with identical loads and a final barrier.
func balancedJob(ranks int, n int64) *Job {
	job := &Job{Name: "balanced"}
	for r := 0; r < ranks; r++ {
		job.Ranks = append(job.Ranks, Program{Compute(fpu(n)), Barrier()})
	}
	return job
}

func TestValidation(t *testing.T) {
	cfg := quietCfg()
	if _, err := Run(&Job{Name: "empty"}, Placement{}, cfg); err == nil {
		t.Error("empty job accepted")
	}
	job := balancedJob(2, 100)
	if _, err := Run(job, Placement{CPU: []int{0}, Prio: []hwpri.Priority{4}}, cfg); err == nil {
		t.Error("placement size mismatch accepted")
	}
	if _, err := Run(job, Placement{CPU: []int{0, 9}, Prio: []hwpri.Priority{4, 4}}, cfg); err == nil {
		t.Error("invalid CPU accepted")
	}
	if _, err := Run(job, Placement{CPU: []int{0, 0}, Prio: []hwpri.Priority{4, 4}}, cfg); err == nil {
		t.Error("double-pinned CPU accepted")
	}
}

func TestBalancedRun(t *testing.T) {
	res, err := Run(balancedJob(4, 20000), DefaultPlacement(4), quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 {
		t.Fatal("no time elapsed")
	}
	if res.Imbalance > 10 {
		t.Errorf("balanced job shows %.1f%% imbalance", res.Imbalance)
	}
	for r, rr := range res.Ranks {
		if rr.ComputePct < 85 {
			t.Errorf("rank %d compute%% = %.1f, want > 85 for balanced job", r, rr.ComputePct)
		}
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

// TestImbalancedJob: a heavy rank makes the others wait; the imbalance
// metric and per-rank stats must reflect it (the paper's Case A shape).
func TestImbalancedJob(t *testing.T) {
	job := &Job{Name: "imbalanced", Ranks: []Program{
		{Compute(fpu(10000)), Barrier()},
		{Compute(fpu(40000)), Barrier()},
		{Compute(fpu(10000)), Barrier()},
		{Compute(fpu(40000)), Barrier()},
	}}
	res, err := Run(job, DefaultPlacement(4), quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance < 40 {
		t.Errorf("imbalance = %.1f%%, want > 40%% for a 4x load skew", res.Imbalance)
	}
	if res.Ranks[0].SyncPct < res.Ranks[1].SyncPct {
		t.Error("light rank waits less than heavy rank")
	}
	if res.Ranks[1].ComputePct < 90 {
		t.Errorf("heavy rank compute%% = %.1f, want > 90", res.Ranks[1].ComputePct)
	}
}

// TestPriorityBalancing is the paper's core claim end-to-end: favoring the
// heavy rank on each core shortens total execution time.
func TestPriorityBalancing(t *testing.T) {
	job := &Job{Name: "metbench-like", Ranks: []Program{
		{Compute(fpu(10000)), Barrier()},
		{Compute(fpu(40000)), Barrier()},
		{Compute(fpu(10000)), Barrier()},
		{Compute(fpu(40000)), Barrier()},
	}}
	base, err := Run(job, DefaultPlacement(4), quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(job, Placement{
		CPU:  []int{0, 1, 2, 3},
		Prio: []hwpri.Priority{4, 6, 4, 6},
	}, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cycles >= base.Cycles {
		t.Errorf("priority balancing did not help: %d >= %d cycles", tuned.Cycles, base.Cycles)
	}
	if tuned.Imbalance >= base.Imbalance {
		t.Errorf("imbalance not reduced: %.1f%% >= %.1f%%", tuned.Imbalance, base.Imbalance)
	}
}

// TestOverPenalization is the Case D shape: starving the light ranks too
// hard inverts the imbalance and hurts total time.
func TestOverPenalization(t *testing.T) {
	job := &Job{Name: "case-d", Ranks: []Program{
		{Compute(fpu(10000)), Barrier()},
		{Compute(fpu(40000)), Barrier()},
		{Compute(fpu(10000)), Barrier()},
		{Compute(fpu(40000)), Barrier()},
	}}
	good, err := Run(job, Placement{CPU: []int{0, 1, 2, 3}, Prio: []hwpri.Priority{4, 6, 4, 6}}, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Run(job, Placement{CPU: []int{0, 1, 2, 3}, Prio: []hwpri.Priority{2, 6, 2, 6}}, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cycles <= good.Cycles {
		t.Errorf("over-penalization did not hurt: %d <= %d", bad.Cycles, good.Cycles)
	}
	// The bottleneck flips: now the heavy ranks wait for the light ones.
	if bad.Ranks[1].SyncPct <= good.Ranks[1].SyncPct {
		t.Error("imbalance not inverted under over-penalization")
	}
}

func TestMultipleIterations(t *testing.T) {
	const iters = 5
	job := &Job{Name: "iterative"}
	for r := 0; r < 4; r++ {
		var p Program
		for i := 0; i < iters; i++ {
			p = append(p, Compute(fpu(3000)), Barrier())
		}
		job.Ranks = append(job.Ranks, p)
	}
	var events []IterationEvent
	cfg := quietCfg()
	cfg.OnIteration = func(ev IterationEvent) { events = append(events, ev) }
	res, err := Run(job, DefaultPlacement(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Errorf("iterations = %d, want %d", res.Iterations, iters)
	}
	if len(events) != iters {
		t.Fatalf("OnIteration fired %d times, want %d", len(events), iters)
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Errorf("event %d has index %d", i, ev.Index)
		}
		if len(ev.Arrival) != 4 || len(ev.PIDs) != 4 {
			t.Error("event missing per-rank data")
		}
		if ev.Kernel == nil {
			t.Error("event missing kernel handle")
		}
		for r, a := range ev.Arrival {
			if a <= 0 || a > ev.Release {
				t.Errorf("event %d rank %d arrival %d outside (0, release=%d]", i, r, a, ev.Release)
			}
		}
	}
}

// TestExchangePhases: neighbour exchanges synchronize pairs, not the whole
// job, and show up as Comm time.
func TestExchangePhases(t *testing.T) {
	// No trailing barrier: exchange coupling is pairwise only.
	job := &Job{Name: "exchange", Ranks: []Program{
		{Compute(fpu(5000)), Exchange(4096, 1), Compute(fpu(5000))},
		{Compute(fpu(20000)), Exchange(4096, 0), Compute(fpu(5000))},
		{Compute(fpu(5000)), Exchange(4096, 3), Compute(fpu(5000))},
		{Compute(fpu(5000)), Exchange(4096, 2), Compute(fpu(5000))},
	}}
	res, err := Run(job, DefaultPlacement(4), quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 waits for its slow partner rank 1; ranks 2/3 are unaffected
	// by that pair's skew.
	if res.Ranks[0].SyncPct < 20 {
		t.Errorf("rank 0 sync%% = %.1f, want substantial wait for slow peer", res.Ranks[0].SyncPct)
	}
	if res.Ranks[2].SyncPct > res.Ranks[0].SyncPct/2 {
		t.Errorf("pair 2-3 (sync %.1f%%) affected by pair 0-1 skew (rank 0 sync %.1f%%)",
			res.Ranks[2].SyncPct, res.Ranks[0].SyncPct)
	}
	for r := range res.Ranks {
		if res.Ranks[r].CommPct <= 0 {
			t.Errorf("rank %d has no comm time", r)
		}
	}
}

// TestSingleThreadPlacement: the ST rows of Tables V/VI — two ranks at
// priority 7 with siblings offlined run faster per-rank than four SMT
// ranks, but the 4-rank SMT run finishes the same total work sooner.
func TestSingleThreadPlacement(t *testing.T) {
	const work = 40000
	smt, err := Run(balancedJob(4, work/2), DefaultPlacement(4), quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(balancedJob(2, work), Placement{
		CPU:  []int{0, 2},
		Prio: []hwpri.Priority{hwpri.VeryHigh, hwpri.VeryHigh},
	}, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if smt.Cycles >= st.Cycles {
		t.Errorf("SMT (4 ranks) %d cycles not faster than ST (2 ranks) %d for equal total work",
			smt.Cycles, st.Cycles)
	}
	// But ST must be faster than 2x the SMT per-rank rate would suggest:
	// each ST rank had the whole core.
	if st.Cycles >= 2*smt.Cycles {
		t.Errorf("ST shows no per-thread benefit: %d >= 2x %d", st.Cycles, smt.Cycles)
	}
}

func TestTraceShape(t *testing.T) {
	res, err := Run(balancedJob(2, 5000), Placement{
		CPU:  []int{0, 1},
		Prio: []hwpri.Priority{4, 4},
	}, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Trace.Render(60)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "P2") {
		t.Errorf("trace render missing ranks:\n%s", out)
	}
	for r := 0; r < 2; r++ {
		ivs := res.Trace.Intervals(r)
		if len(ivs) == 0 || ivs[0].State != trace.Compute {
			t.Errorf("rank %d does not start computing: %+v", r, ivs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	job := &Job{Name: "det", Ranks: []Program{
		{Compute(fpu(8000)), Exchange(1024, 1), Compute(fpu(3000)), Barrier()},
		{Compute(fpu(12000)), Exchange(1024, 0), Compute(fpu(3000)), Barrier()},
		{Compute(fpu(6000)), Barrier()},
		{Compute(fpu(9000)), Barrier()},
	}}
	pl := Placement{CPU: []int{0, 1, 2, 3}, Prio: []hwpri.Priority{4, 5, 4, 6}}
	a, err := Run(job, pl, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(job, pl, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Imbalance != b.Imbalance {
		t.Errorf("non-deterministic: %d/%f vs %d/%f", a.Cycles, a.Imbalance, b.Cycles, b.Imbalance)
	}
}

func TestDeadlockGuard(t *testing.T) {
	// Rank 1 never reaches the exchange that rank 0 waits for.
	job := &Job{Name: "deadlock", Ranks: []Program{
		{Exchange(64, 1)},
		{Compute(workload.Load{Kind: workload.Spin})}, // never ends
	}}
	cfg := quietCfg()
	cfg.MaxCycles = 200000
	if _, err := Run(job, DefaultPlacement(2), cfg); err == nil {
		t.Fatal("deadlocked job did not error")
	}
}

// TestVanillaKernelClobbersPriorities: with the unpatched kernel, the
// priority assignment decays at the first tick, so balancing is lost —
// the reason the paper had to patch Linux (Section VI).
func TestVanillaKernelClobbersPriorities(t *testing.T) {
	job := &Job{Name: "clobber", Ranks: []Program{
		{Compute(fpu(8000)), Barrier()},
		{Compute(fpu(32000)), Barrier()},
		{Compute(fpu(8000)), Barrier()},
		{Compute(fpu(32000)), Barrier()},
	}}
	pl := Placement{CPU: []int{0, 1, 2, 3}, Prio: []hwpri.Priority{4, 6, 4, 6}}

	patched := quietCfg()
	patched.Kernel = oskernel.Config{Patched: true, TickPeriod: 2500, TickCost: 150}
	pRes, err := Run(job, pl, patched)
	if err != nil {
		t.Fatal(err)
	}
	vanilla := quietCfg()
	vanilla.Kernel = oskernel.Config{Patched: false, TickPeriod: 2500, TickCost: 150}
	vRes, err := Run(job, pl, vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if vRes.Cycles <= pRes.Cycles {
		t.Errorf("vanilla kernel did not lose the balancing benefit: %d <= %d cycles",
			vRes.Cycles, pRes.Cycles)
	}
}

func TestCommLatencyDefault(t *testing.T) {
	same := DefaultCommLatency(0, 1, 0)
	cross := DefaultCommLatency(0, 2, 0)
	if cross <= same {
		t.Error("cross-core latency not higher than same-core")
	}
	if DefaultCommLatency(0, 1, 1<<20) <= same {
		t.Error("bytes do not add latency")
	}
}

// multiChipCfg is quietCfg on a chips×2×2 machine.
func multiChipCfg(chips int) Config {
	cfg := quietCfg()
	cfg.Topology = power5.Topology{Chips: chips, CoresPerChip: 2, SMTWays: 2}
	return cfg
}

// TestMultiChipRun runs an 8-rank job end-to-end on a 2-chip machine:
// every context is occupied, barriers span both chips, and per-rank
// results carry the right (chip, core) coordinates.
func TestMultiChipRun(t *testing.T) {
	res, err := Run(balancedJob(8, 20000), DefaultPlacement(8), multiChipCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	if len(res.Ranks) != 8 {
		t.Fatalf("got %d rank results, want 8", len(res.Ranks))
	}
	for r, rr := range res.Ranks {
		if rr.CPU != r || rr.Core != r/2 || rr.Chip != r/4 {
			t.Errorf("rank %d at (cpu %d, core %d, chip %d), want (%d, %d, %d)",
				r, rr.CPU, rr.Core, rr.Chip, r, r/2, r/4)
		}
		if rr.ComputePct < 85 {
			t.Errorf("rank %d compute%% = %.1f, want > 85 for balanced job", r, rr.ComputePct)
		}
	}
	if res.Imbalance > 10 {
		t.Errorf("balanced 8-rank job shows %.1f%% imbalance", res.Imbalance)
	}
}

// TestMultiChipMirrorsSingleChip pins the same 4-rank job to chip 0 and
// to chip 1 of a 2-chip machine; the chips are identical, so the results
// must be identical too.
func TestMultiChipMirrorsSingleChip(t *testing.T) {
	job := balancedJob(4, 15000)
	onChip := func(chip int) *Result {
		pl := DefaultPlacement(4)
		for i := range pl.CPU {
			pl.CPU[i] += chip * 4
		}
		res, err := Run(job, pl, multiChipCfg(2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := onChip(0), onChip(1)
	if a.Cycles != b.Cycles || a.Imbalance != b.Imbalance {
		t.Errorf("chip 0 run (%d cycles, %.2f%%) differs from chip 1 run (%d cycles, %.2f%%)",
			a.Cycles, a.Imbalance, b.Cycles, b.Imbalance)
	}
}

// TestMultiChipPriorityBalancing asserts the paper's mechanism operates
// per-core across the whole node: an imbalanced 8-rank job improves when
// every heavy rank is favored over its light sibling, on both chips.
func TestMultiChipPriorityBalancing(t *testing.T) {
	job := &Job{Name: "imbalanced8"}
	for r := 0; r < 8; r++ {
		n := int64(12000)
		if r%2 == 1 {
			n = 48000
		}
		job.Ranks = append(job.Ranks, Program{Compute(fpu(n)), Barrier(), Compute(fpu(n)), Barrier()})
	}
	base, err := Run(job, DefaultPlacement(8), multiChipCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	bal := DefaultPlacement(8)
	for r := 1; r < 8; r += 2 {
		bal.Prio[r] = hwpri.High // heavy ranks favored (case C per core)
	}
	tuned, err := Run(job, bal, multiChipCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cycles >= base.Cycles {
		t.Errorf("priority balancing on 2 chips did not help: %d >= %d cycles", tuned.Cycles, base.Cycles)
	}
	if tuned.Imbalance >= base.Imbalance {
		t.Errorf("imbalance did not shrink: %.2f%% >= %.2f%%", tuned.Imbalance, base.Imbalance)
	}
}

// TestTopologyCommLatency pins down the three latency tiers.
func TestTopologyCommLatency(t *testing.T) {
	topo := power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	lat := TopologyCommLatency(topo)
	if got := lat(0, 1, 0); got != 300 {
		t.Errorf("same-core latency = %d, want 300", got)
	}
	if got := lat(0, 2, 0); got != 800 {
		t.Errorf("same-chip latency = %d, want 800", got)
	}
	if got := lat(0, 4, 0); got != crossChipCommBase {
		t.Errorf("cross-chip latency = %d, want %d", got, crossChipCommBase)
	}
	// Single-chip topologies reduce to DefaultCommLatency.
	one := TopologyCommLatency(power5.DefaultTopology())
	for _, c := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if got, want := one(c[0], c[1], 256), DefaultCommLatency(c[0], c[1], 256); got != want {
			t.Errorf("1-chip latency(%d,%d) = %d, want DefaultCommLatency %d", c[0], c[1], got, want)
		}
	}
}

func TestRunCtxCancellation(t *testing.T) {
	job := &Job{Name: "cancel"}
	for r := 0; r < 4; r++ {
		job.Ranks = append(job.Ranks, Program{
			Compute(workload.Load{Kind: workload.FPU, N: 1 << 40}), // effectively endless
			Barrier(),
		})
	}
	pl := DefaultPlacement(4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, job, pl, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx returned %v, want context.Canceled", err)
	}

	// Cancel mid-run: the loop must notice within one scheduling quantum
	// instead of simulating the full 2^40-instruction job.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, job, pl, Config{})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return within 30s")
	}
}

// TestLoadDrift checks the per-iteration drift hook: the hook sees each
// rank's compute phases with their in-program index, its rewrites
// change the run, and an unchanged-load hook leaves the run identical.
func TestLoadDrift(t *testing.T) {
	job := &Job{Name: "drift"}
	for r := 0; r < 2; r++ {
		job.Ranks = append(job.Ranks, Program{
			Compute(fpu(10000)), Barrier(),
			Compute(fpu(10000)), Barrier(),
			Compute(fpu(10000)), Barrier(),
		})
	}
	pl := DefaultPlacement(2)

	base, err := Run(job, pl, quietCfg())
	if err != nil {
		t.Fatal(err)
	}

	// Identity drift: same run, and the observed (rank, index) calls
	// cover each rank's compute phases in order.
	seen := make(map[int][]int)
	cfg := quietCfg()
	cfg.LoadDrift = func(rank, idx int, load workload.Load) workload.Load {
		seen[rank] = append(seen[rank], idx)
		return load
	}
	same, err := Run(job, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if same.Cycles != base.Cycles {
		t.Errorf("identity drift changed the run: %d vs %d cycles", same.Cycles, base.Cycles)
	}
	for r := 0; r < 2; r++ {
		if len(seen[r]) != 3 {
			t.Fatalf("rank %d drift hook fired %d times, want 3", r, len(seen[r]))
		}
		for i, idx := range seen[r] {
			if idx != i {
				t.Errorf("rank %d call %d reported compute index %d", r, i, idx)
			}
		}
	}

	// A real drift — rank 1 ramps up over the iterations — must slow
	// the run down.
	cfg = quietCfg()
	cfg.LoadDrift = func(rank, idx int, load workload.Load) workload.Load {
		if rank == 1 {
			load.N *= int64(idx + 2)
		}
		return load
	}
	drifted, err := Run(job, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Cycles <= base.Cycles {
		t.Errorf("ramping drift did not slow the run: %d vs %d cycles", drifted.Cycles, base.Cycles)
	}

	// A hook returning a non-positive count is clamped, not an infinite
	// kernel.
	cfg = quietCfg()
	cfg.LoadDrift = func(rank, idx int, load workload.Load) workload.Load {
		load.N = 0
		return load
	}
	tiny, err := Run(job, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Cycles >= base.Cycles {
		t.Errorf("clamped zero-load drift did not shrink the run: %d vs %d cycles", tiny.Cycles, base.Cycles)
	}
}
