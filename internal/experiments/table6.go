package experiments

import (
	"fmt"

	"repro/internal/apps/siesta"
)

// paperTable6 holds the paper's Table VI measurements.
var paperTable6 = map[string]struct {
	imb, exec float64
	comp      []float64
	sync      []float64
}{
	"ST": {8.88, 1236.05, []float64{81.79, 93.72}, []float64{14.22, 5.34}},
	"A":  {14.43, 858.57, []float64{75.94, 75.24, 82.08, 93.47}, []float64{15.42, 18.11, 10.71, 3.18}},
	"B":  {5.99, 847.91, []float64{79.57, 87.06, 72.04, 77.73}, []float64{14.67, 10.15, 12.69, 8.68}},
	"C":  {1.46, 789.20, []float64{83.04, 79.66, 80.78, 78.74}, []float64{10.59, 10.52, 9.41, 9.13}},
	"D":  {16.64, 976.35, []float64{90.76, 65.74, 68.08, 63.95}, []float64{5.60, 22.25, 19.36, 18.10}},
}

// Table6 reproduces Table VI / Figure 4: SIESTA under ST mode and the four
// priority/placement cases.
func Table6(opt Options) ([]CaseResult, error) {
	opt = opt.normalize()
	var specs []caseSpec
	for _, c := range siesta.Cases() {
		cfg := siesta.DefaultConfig()
		if c == siesta.CaseST {
			cfg = siesta.STConfig()
		}
		cfg.UnitLoad = scaleLoad(cfg.UnitLoad, opt.Scale)
		cfg.InitLoad = scaleLoad(cfg.InitLoad, opt.Scale)
		cfg.FinalLoad = scaleLoad(cfg.FinalLoad, opt.Scale)
		pl, err := siesta.Placement(c)
		if err != nil {
			return nil, err
		}
		specs = append(specs, caseSpec{label: string(c), job: siesta.Job(cfg), pl: pl})
	}
	out, err := runCases(specs, opt)
	if err != nil {
		return nil, err
	}
	for k := range out {
		ref := paperTable6[out[k].Case]
		out[k].PaperImbalancePct = ref.imb
		out[k].PaperExecSeconds = ref.exec
		for i := range out[k].Ranks {
			if i < len(ref.comp) {
				out[k].Ranks[i].PaperComp = ref.comp[i]
				out[k].Ranks[i].PaperSync = ref.sync[i]
			}
		}
	}
	return out, nil
}

// CheckTable6 asserts the Table VI shape:
//
//   - execution ordering C < B < A < D: favoring the dominant bottleneck
//     P4 gently (C) wins, over-penalizing P1 (D) loses because the
//     bottleneck moves across iterations;
//   - ST (two ranks) is the slowest configuration overall — SMT pays off
//     for SIESTA;
//   - the static best case C improves a few percent, far less than a
//     perfectly balanced application would, motivating the dynamic
//     balancer (Section VIII).
func CheckTable6(cases []CaseResult) error {
	if err := orderedExec(cases, "C", "B", "A", "D"); err != nil {
		return err
	}
	a, _ := findCase(cases, "A")
	c, _ := findCase(cases, "C")
	d, _ := findCase(cases, "D")
	st, _ := findCase(cases, "ST")
	if st.ExecSeconds <= d.ExecSeconds {
		return fmt.Errorf("ST (%.6fs) not the slowest (case D %.6fs)", st.ExecSeconds, d.ExecSeconds)
	}
	gainC := 100 * (a.ExecSeconds - c.ExecSeconds) / a.ExecSeconds
	if gainC < 0.5 || gainC > 25 {
		return fmt.Errorf("case C improvement %.1f%%, want a moderate positive gain", gainC)
	}
	lossD := 100 * (d.ExecSeconds - a.ExecSeconds) / a.ExecSeconds
	if lossD < 2 {
		return fmt.Errorf("case D loss %.1f%%, want a visible regression", lossD)
	}
	if c.ImbalancePct >= a.ImbalancePct {
		return fmt.Errorf("case C imbalance %.1f%% not below case A %.1f%%", c.ImbalancePct, a.ImbalancePct)
	}
	return nil
}
