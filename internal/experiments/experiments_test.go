package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// testOpt runs experiments at a reduced scale to keep the suite fast; the
// full-scale run is exercised by the benchmarks and the mtbalance CLI.
// Workers is left at 0, so independent cases fan out across the CPUs.
var testOpt = Options{Scale: 0.5, TraceWidth: 60}

// TestParallelCasesMatchSerial asserts that fanning an experiment's
// cases across the worker pool changes nothing observable: tables,
// traces and metrics are byte-identical to the serial run.
func TestParallelCasesMatchSerial(t *testing.T) {
	serialOpt, parallelOpt := testOpt, testOpt
	serialOpt.Workers = 1
	parallelOpt.Workers = 4

	serial, err := Table4(serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table4(parallelOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Table4 differs between workers=1 and workers=4:\n%s\n%s",
			FormatCases("serial", serial), FormatCases("parallel", parallel))
	}

	srows, err := Table2(serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	prows, err := Table2(parallelOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srows, prows) {
		t.Error("Table2 differs between workers=1 and workers=4")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5 (differences 0..4)", len(rows))
	}
	if err := CheckTable2(rows); err != nil {
		t.Error(err)
	}
	wantR := []int{2, 4, 8, 16, 32}
	for i, r := range rows {
		if r.R != wantR[i] {
			t.Errorf("row %d: R = %d, want %d", i, r.R, wantR[i])
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "31:1") {
		t.Errorf("formatted table missing the 31:1 row:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	rows, err := Table3(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable3(rows); err != nil {
		t.Error(err)
	}
	out := FormatTable3(rows)
	for _, want := range []string{"single-thread", "power-save", "throttled", "stopped", "leftover"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted Table III missing mode %q:\n%s", want, out)
		}
	}
}

func TestFigure1(t *testing.T) {
	f, err := Figure1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFigure1(f); err != nil {
		t.Error(err)
	}
}

func TestTable4(t *testing.T) {
	cases, err := Table4(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable4(cases); err != nil {
		t.Error(err)
	}
	if len(cases) != 4 {
		t.Errorf("got %d cases, want A-D", len(cases))
	}
	for _, c := range cases {
		if len(c.Ranks) != 4 {
			t.Errorf("case %s has %d ranks, want 4", c.Case, len(c.Ranks))
		}
		if c.PaperExecSeconds == 0 {
			t.Errorf("case %s missing paper reference", c.Case)
		}
	}
	out := FormatCases("Table IV", cases)
	if !strings.Contains(out, "81.64") {
		t.Errorf("formatted table missing paper exec reference:\n%s", out)
	}
	if s := FormatSpeedups(cases, "A"); !strings.Contains(s, "case C") {
		t.Errorf("speedup summary missing case C:\n%s", s)
	}
}

func TestTable5(t *testing.T) {
	cases, err := Table5(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable5(cases); err != nil {
		t.Error(err)
	}
	st, err := findCase(cases, "ST")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ranks) != 2 {
		t.Errorf("ST case has %d ranks, want 2", len(st.Ranks))
	}
}

func TestTable6(t *testing.T) {
	cases, err := Table6(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable6(cases); err != nil {
		t.Error(err)
	}
}

func TestKernelPatchAblation(t *testing.T) {
	r, err := KernelPatchAblation(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckKernelPatch(r); err != nil {
		t.Error(err)
	}
}

func TestDynamicExtension(t *testing.T) {
	r, err := DynamicExtension(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDynamic(r); err != nil {
		t.Error(err)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1 || o.TraceWidth != 100 {
		t.Errorf("normalize = %+v", o)
	}
	if scaleLoad(100, 0.5) != 50 {
		t.Error("scaleLoad wrong")
	}
	if scaleLoad(1, 0.001) != 1 {
		t.Error("scaleLoad must clamp to 1")
	}
}

func TestFindCaseMissing(t *testing.T) {
	if _, err := findCase(nil, "Z"); err == nil {
		t.Error("missing case not reported")
	}
}

func TestExtrinsicNoise(t *testing.T) {
	r, err := ExtrinsicNoise(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckExtrinsic(r); err != nil {
		t.Error(err)
	}
}

func TestScaling(t *testing.T) {
	rows, err := Scaling(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckScaling(rows); err != nil {
		t.Error(err)
	}
	out := FormatScaling(rows)
	for _, want := range []string{"Chips", "16", "Balanced"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted scaling table missing %q:\n%s", want, out)
		}
	}
}
