package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// scalingChips are the node sizes of the scaling scenario.
var scalingChips = []int{1, 2, 4}

// btmzLoadPct is the BT-MZ per-process load distribution of the paper's
// Table V discussion (P1..P4 relative computation, percent of the
// heaviest): the zone partitioning gives rank 4 the dominant zone.
var btmzLoadPct = [4]int{18, 24, 67, 100}

// ScalingRow is one node size of the multi-chip scaling scenario.
type ScalingRow struct {
	// Chips and Ranks size the machine (chips × 2 cores × 2-way SMT)
	// and the job (4 ranks per chip).
	Chips, Ranks int
	// NaiveSeconds/NaiveImbalance run the job pinned in order at medium
	// priority (the paper's Case A, scaled out).
	NaiveSeconds   float64
	NaiveImbalance float64
	// BalancedSeconds/BalancedImbalance run the static planner's
	// topology-aware placement (heaviest with lightest per core, model-
	// chosen priority differences).
	BalancedSeconds   float64
	BalancedImbalance float64
}

// Scaling runs the multi-chip scaling scenario: a BT-MZ-style imbalanced
// job (the Table V load distribution, replicated per chip) on 1-, 2- and
// 4-chip nodes, naive pinning versus the topology-aware static plan.  It
// is the workload the generalized machine model opens: the paper's
// priority mechanism operating per-core across a whole node, with each
// chip's private L2 keeping the zones' working sets apart.
func Scaling(opt Options) ([]ScalingRow, error) {
	opt = opt.normalize()
	unit := scaleLoad(40_000, opt.Scale)

	outs := sweep.Map(len(scalingChips), opt.Workers, func(i int) outcome[ScalingRow] {
		row, err := scalingRow(scalingChips[i], unit)
		return outcome[ScalingRow]{row, err}
	})
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	rows := make([]ScalingRow, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, o.val)
	}
	return rows, nil
}

// scalingRow runs one node size.
func scalingRow(chips int, unit int64) (ScalingRow, error) {
	topo := power5.Topology{Chips: chips, CoresPerChip: 2, SMTWays: 2}
	n := topo.Contexts()
	works := make([]float64, n)
	job := &mpisim.Job{Name: fmt.Sprintf("btmz-scale-%dchip", chips)}
	for r := 0; r < n; r++ {
		load := unit * int64(btmzLoadPct[r%4]) / 100
		if load < 1 {
			load = 1
		}
		works[r] = float64(load)
		job.Ranks = append(job.Ranks, mpisim.Program{
			mpisim.Compute(workload.Load{Kind: workload.FPU, N: load}),
			mpisim.Barrier(),
			mpisim.Compute(workload.Load{Kind: workload.FPU, N: load}),
			mpisim.Barrier(),
		})
	}
	cfg := mpisim.Config{
		Chip:      power5.DefaultConfig(),
		Topology:  topo,
		Kernel:    oskernel.DefaultConfig(),
		KernelSet: true,
	}

	naive, err := mpisim.Run(job, mpisim.DefaultPlacement(n), cfg)
	if err != nil {
		return ScalingRow{}, fmt.Errorf("experiments: scaling %d chips, naive: %w", chips, err)
	}
	plan, err := core.PlanStatic(works, topo.Cores(), core.DefaultModel())
	if err != nil {
		return ScalingRow{}, err
	}
	balanced, err := mpisim.Run(job, mpisim.Placement{CPU: plan.CPU, Prio: plan.Prio}, cfg)
	if err != nil {
		return ScalingRow{}, fmt.Errorf("experiments: scaling %d chips, balanced: %w", chips, err)
	}
	return ScalingRow{
		Chips:             chips,
		Ranks:             n,
		NaiveSeconds:      naive.Seconds,
		NaiveImbalance:    naive.Imbalance,
		BalancedSeconds:   balanced.Seconds,
		BalancedImbalance: balanced.Imbalance,
	}, nil
}

// FormatScaling renders the scenario as a table.
func FormatScaling(rows []ScalingRow) string {
	tb := metrics.NewTable("Scaling — BT-MZ-style imbalance on 1/2/4 chips",
		"Chips", "Ranks", "Naive", "Imb%", "Balanced", "Imb%", "Gain")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Chips), fmt.Sprint(r.Ranks),
			metrics.Seconds(r.NaiveSeconds), fmt.Sprintf("%.2f", r.NaiveImbalance),
			metrics.Seconds(r.BalancedSeconds), fmt.Sprintf("%.2f", r.BalancedImbalance),
			metrics.Speedup(r.NaiveSeconds, r.BalancedSeconds))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("(4 ranks per chip, Table V load distribution 18/24/67/100% per chip;\n" +
		" balanced = topology-aware static plan, per-core priority differences)\n")
	return b.String()
}

// CheckScaling asserts the scenario's shape: at every node size the job
// completes, the naive pinning shows the intrinsic imbalance, and the
// topology-aware plan is both faster and better balanced.
func CheckScaling(rows []ScalingRow) error {
	if len(rows) != len(scalingChips) {
		return fmt.Errorf("experiments: %d scaling rows, want %d", len(rows), len(scalingChips))
	}
	for i, r := range rows {
		if r.Chips != scalingChips[i] || r.Ranks != 4*r.Chips {
			return fmt.Errorf("experiments: row %d sized %d chips/%d ranks, want %d/%d",
				i, r.Chips, r.Ranks, scalingChips[i], 4*scalingChips[i])
		}
		if r.NaiveImbalance < 30 {
			return fmt.Errorf("experiments: %d-chip naive imbalance %.1f%%, want the intrinsic >= 30%%",
				r.Chips, r.NaiveImbalance)
		}
		if r.BalancedSeconds >= r.NaiveSeconds {
			return fmt.Errorf("experiments: %d chips: balanced (%.6fs) not faster than naive (%.6fs)",
				r.Chips, r.BalancedSeconds, r.NaiveSeconds)
		}
		if r.BalancedImbalance >= r.NaiveImbalance {
			return fmt.Errorf("experiments: %d chips: balanced imbalance %.1f%% not below naive %.1f%%",
				r.Chips, r.BalancedImbalance, r.NaiveImbalance)
		}
	}
	return nil
}
