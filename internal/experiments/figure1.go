package experiments

import (
	"fmt"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/workload"
)

// Figure1Result holds the two panels of Figure 1: the imbalanced reference
// and the rebalanced run where the bottleneck got more hardware resources.
type Figure1Result struct {
	// ImbalancedTrace and BalancedTrace are the rendered panels (a), (b).
	ImbalancedTrace, BalancedTrace string
	// ImbalancedSeconds and BalancedSeconds are the execution times.
	ImbalancedSeconds, BalancedSeconds float64
}

// Figure1 reproduces the paper's illustrative Figure 1: four processes,
// P1 with a much larger load, synchronizing at a barrier.  In panel (a)
// everything runs at default priorities and P2-P4 idle at the barrier; in
// panel (b) P1 receives more hardware resources (priority 6 vs its core
// sibling's 4): P1 speeds up, P2 slows down but has spare time, and the
// whole application finishes sooner.
func Figure1(opt Options) (*Figure1Result, error) {
	opt = opt.normalize()
	heavy := scaleLoad(200_000, opt.Scale)
	light := scaleLoad(90_000, opt.Scale)
	job := &mpisim.Job{Name: "figure1"}
	for r := 0; r < 4; r++ {
		n := light
		if r == 0 {
			n = heavy
		}
		job.Ranks = append(job.Ranks, mpisim.Program{
			mpisim.Compute(workload.Load{Kind: workload.FPU, N: n}),
			mpisim.Barrier(),
		})
	}
	run := func(pl mpisim.Placement) (*mpisim.Result, error) {
		return mpisim.Run(job, pl, mpisim.Config{})
	}
	base, err := run(mpisim.DefaultPlacement(4))
	if err != nil {
		return nil, err
	}
	// A difference of 1 suffices here; a larger one would over-penalize
	// P2 into a new bottleneck (the Case D lesson).
	tuned, err := run(mpisim.Placement{
		CPU:  []int{0, 1, 2, 3},
		Prio: []hwpri.Priority{5, 4, 4, 4},
	})
	if err != nil {
		return nil, err
	}
	return &Figure1Result{
		ImbalancedTrace:   base.Trace.Render(opt.TraceWidth),
		BalancedTrace:     tuned.Trace.Render(opt.TraceWidth),
		ImbalancedSeconds: base.Seconds,
		BalancedSeconds:   tuned.Seconds,
	}, nil
}

// CheckFigure1 asserts the figure's message: re-assigning resources to the
// bottleneck shortens the application.
func CheckFigure1(f *Figure1Result) error {
	if f.BalancedSeconds >= f.ImbalancedSeconds {
		return fmt.Errorf("figure 1: balanced run (%.6fs) not faster than imbalanced (%.6fs)",
			f.BalancedSeconds, f.ImbalancedSeconds)
	}
	if err := traceGlyphs(f.ImbalancedTrace); err != nil {
		return err
	}
	return traceGlyphs(f.BalancedTrace)
}
