package experiments

import (
	"fmt"

	"repro/internal/apps/btmz"
)

// paperTable5 holds the paper's Table V measurements.  The ST row has two
// processes.
var paperTable5 = map[string]struct {
	imb, exec float64
	comp      []float64
	sync      []float64
}{
	"ST": {50.27, 108.32, []float64{49.33, 99.46}, []float64{50.59, 0.32}},
	"A":  {82.23, 81.64, []float64{17.63, 28.91, 66.47, 99.72}, []float64{82.32, 71.02, 33.40, 0.09}},
	"B":  {70.93, 127.91, []float64{52.33, 99.64, 28.87, 46.26}, []float64{47.49, 0.14, 71.07, 53.65}},
	"C":  {45.99, 75.62, []float64{65.32, 99.68, 53.78, 85.88}, []float64{34.48, 0.12, 46.11, 14.44}},
	"D":  {33.38, 66.88, []float64{82.73, 73.68, 66.40, 99.72}, []float64{17.10, 26.17, 33.47, 0.09}},
}

// Table5 reproduces Table V / Figure 3: BT-MZ under ST mode and the four
// priority/placement cases.
func Table5(opt Options) ([]CaseResult, error) {
	opt = opt.normalize()
	var specs []caseSpec
	for _, c := range btmz.Cases() {
		cfg := btmz.DefaultConfig()
		if c == btmz.CaseST {
			cfg = btmz.STConfig()
		}
		cfg.UnitLoad = scaleLoad(cfg.UnitLoad, opt.Scale)
		pl, err := btmz.Placement(c)
		if err != nil {
			return nil, err
		}
		specs = append(specs, caseSpec{label: string(c), job: btmz.Job(cfg), pl: pl})
	}
	out, err := runCases(specs, opt)
	if err != nil {
		return nil, err
	}
	for k := range out {
		ref := paperTable5[out[k].Case]
		out[k].PaperImbalancePct = ref.imb
		out[k].PaperExecSeconds = ref.exec
		for i := range out[k].Ranks {
			if i < len(ref.comp) {
				out[k].Ranks[i].PaperComp = ref.comp[i]
				out[k].Ranks[i].PaperSync = ref.sync[i]
			}
		}
	}
	return out, nil
}

// CheckTable5 asserts the Table V shape:
//
//   - execution ordering D < C < A < B (D the paper's 18% win, B the
//     failed attempt that is worse than doing nothing);
//   - ST (two ranks on two cores) is slower than every 4-rank SMT case
//     except the pathological B;
//   - in case A the heaviest zone owner P4 computes ~full time while P1
//     mostly waits;
//   - case B inverts the pair: P1 becomes a bottleneck (its sync drops
//     below A's) while P2 turns into the new critical rank.
func CheckTable5(cases []CaseResult) error {
	if err := orderedExec(cases, "D", "C", "A", "B"); err != nil {
		return err
	}
	a, _ := findCase(cases, "A")
	b, _ := findCase(cases, "B")
	d, _ := findCase(cases, "D")
	st, _ := findCase(cases, "ST")
	if st.ExecSeconds <= a.ExecSeconds {
		return fmt.Errorf("ST (%.6fs) not slower than SMT case A (%.6fs)", st.ExecSeconds, a.ExecSeconds)
	}
	if st.ExecSeconds >= b.ExecSeconds {
		return fmt.Errorf("pathological case B (%.6fs) should be even slower than ST (%.6fs)",
			b.ExecSeconds, st.ExecSeconds)
	}
	if syncOf(a, "P1") < 50 {
		return fmt.Errorf("case A: P1 sync %.1f%%, want the light zone mostly waiting", syncOf(a, "P1"))
	}
	if syncOf(a, "P4") > 10 {
		return fmt.Errorf("case A: P4 sync %.1f%%, want the heavy zone mostly computing", syncOf(a, "P4"))
	}
	if syncOf(b, "P1") >= syncOf(a, "P1") {
		return fmt.Errorf("case B did not shift P1 from waiter toward bottleneck (sync %.1f%% vs %.1f%%)",
			syncOf(b, "P1"), syncOf(a, "P1"))
	}
	if d.ImbalancePct >= a.ImbalancePct {
		return fmt.Errorf("case D imbalance %.1f%% not below case A %.1f%%", d.ImbalancePct, a.ImbalancePct)
	}
	// Headline: case D improves on A by a double-digit percentage.
	gain := 100 * (a.ExecSeconds - d.ExecSeconds) / a.ExecSeconds
	if gain < 8 {
		return fmt.Errorf("case D improvement %.1f%%, want the paper's double-digit-scale gain", gain)
	}
	return nil
}
