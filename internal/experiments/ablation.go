package experiments

import (
	"fmt"

	"repro/internal/apps/metbench"
	"repro/internal/apps/siesta"
	"repro/internal/core"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/sweep"
)

// KernelPatchResult compares the balanced MetBench case C on the patched
// kernel against the vanilla kernel, whose interrupt handlers reset the
// priorities to MEDIUM (Section VI) — our ablation of the paper's kernel
// modification.
type KernelPatchResult struct {
	// PatchedSeconds and VanillaSeconds are the case C execution times.
	PatchedSeconds, VanillaSeconds float64
	// PatchedImbalance and VanillaImbalance are the imbalance metrics.
	PatchedImbalance, VanillaImbalance float64
}

// KernelPatchAblation runs the ablation.
func KernelPatchAblation(opt Options) (*KernelPatchResult, error) {
	opt = opt.normalize()
	cfg := metbench.DefaultConfig()
	cfg.HeavyLoad = scaleLoad(cfg.HeavyLoad, opt.Scale)
	cfg.LightLoad = scaleLoad(cfg.LightLoad, opt.Scale)
	job := metbench.Job(cfg)
	pl, err := metbench.Placement(metbench.CaseC)
	if err != nil {
		return nil, err
	}
	run := func(patched bool) (*mpisim.Result, error) {
		k := oskernel.DefaultConfig()
		k.Patched = patched
		return mpisim.Run(job, pl, mpisim.Config{
			Chip:      power5.DefaultConfig(),
			Kernel:    k,
			KernelSet: true,
		})
	}
	// The two kernel variants are independent runs: fan them out.
	outs := sweep.Map(2, opt.Workers, func(i int) outcome[*mpisim.Result] {
		r, err := run(i == 0)
		return outcome[*mpisim.Result]{r, err}
	})
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	p, v := outs[0].val, outs[1].val
	return &KernelPatchResult{
		PatchedSeconds:   p.Seconds,
		VanillaSeconds:   v.Seconds,
		PatchedImbalance: p.Imbalance,
		VanillaImbalance: v.Imbalance,
	}, nil
}

// CheckKernelPatch asserts the ablation shape: without the patch the
// priority assignment decays and both time and imbalance regress toward
// the unbalanced case.
func CheckKernelPatch(r *KernelPatchResult) error {
	if r.VanillaSeconds <= r.PatchedSeconds {
		return fmt.Errorf("vanilla kernel (%.6fs) not slower than patched (%.6fs)",
			r.VanillaSeconds, r.PatchedSeconds)
	}
	if r.VanillaImbalance <= r.PatchedImbalance {
		return fmt.Errorf("vanilla imbalance %.1f%% not above patched %.1f%%",
			r.VanillaImbalance, r.PatchedImbalance)
	}
	return nil
}

// DynamicResult compares the paper's best static SIESTA assignment (case
// C) against the dynamic OS-level balancer the paper proposes as future
// work (Section VIII), on the shifting-bottleneck SIESTA model.
type DynamicResult struct {
	// ReferenceSeconds is case A (no balancing).
	ReferenceSeconds float64
	// StaticSeconds is the paper's case C static assignment.
	StaticSeconds float64
	// DynamicSeconds is the online balancer starting from case A's
	// neutral priorities.
	DynamicSeconds float64
	// Moves is the number of priority rewrites the balancer performed.
	Moves int
}

// DynamicExtension runs the comparison.
func DynamicExtension(opt Options) (*DynamicResult, error) {
	opt = opt.normalize()
	cfg := siesta.DefaultConfig()
	// More iterations, with the bottleneck persisting for several SCF
	// iterations per phase (as in the real application), give the online
	// balancer a trackable signal; no feedback controller can follow a
	// bottleneck that moves every single iteration.
	cfg.Iterations = 36
	cfg.BottleneckBlock = 6
	cfg.UnitLoad = scaleLoad(cfg.UnitLoad, opt.Scale)
	cfg.InitLoad = scaleLoad(cfg.InitLoad, opt.Scale)
	cfg.FinalLoad = scaleLoad(cfg.FinalLoad, opt.Scale)
	job := siesta.Job(cfg)

	runStatic := func(c siesta.Case) (*mpisim.Result, error) {
		pl, err := siesta.Placement(c)
		if err != nil {
			return nil, err
		}
		return mpisim.Run(job, pl, mpisim.Config{})
	}
	// The two static references are independent of each other and of
	// the dynamic run below; overlap them.
	statics := sweep.Map(2, opt.Workers, func(i int) outcome[*mpisim.Result] {
		c := siesta.CaseA
		if i == 1 {
			c = siesta.CaseC
		}
		r, err := runStatic(c)
		return outcome[*mpisim.Result]{r, err}
	})
	if err := firstErr(statics); err != nil {
		return nil, err
	}
	ref, static := statics[0].val, statics[1].val

	plC, err := siesta.Placement(siesta.CaseC)
	if err != nil {
		return nil, err
	}
	// Dynamic: case C's pairing, neutral starting priorities.  MaxDiff 1
	// matches the application's sensitivity (~12% per priority step for
	// this irregular-code profile): the paper's Case D shows what larger
	// differences do to a rank that is sometimes the bottleneck, and the
	// balancer pays that penalty for two iterations at every phase
	// change.  The wider deadband keeps the similarly-loaded P2/P3 pair
	// from toggling on noise.
	pl := mpisim.Placement{CPU: plC.CPU, Prio: mpisim.DefaultPlacement(4).Prio}
	bal := core.NewDynamic(core.DynamicConfig{CPU: pl.CPU, MaxDiff: 1, Threshold: 0.09})
	dyn, err := mpisim.Run(job, pl, mpisim.Config{OnIteration: bal.OnIteration})
	if err != nil {
		return nil, err
	}
	return &DynamicResult{
		ReferenceSeconds: ref.Seconds,
		StaticSeconds:    static.Seconds,
		DynamicSeconds:   dyn.Seconds,
		Moves:            bal.Moves,
	}, nil
}

// CheckDynamic asserts the extension's claim: the dynamic balancer
// improves on no balancing, and approaches or beats the best static
// assignment on a workload whose bottleneck moves.
func CheckDynamic(r *DynamicResult) error {
	if r.DynamicSeconds >= r.ReferenceSeconds {
		return fmt.Errorf("dynamic (%.6fs) not better than unbalanced (%.6fs)",
			r.DynamicSeconds, r.ReferenceSeconds)
	}
	if r.Moves == 0 {
		return fmt.Errorf("dynamic balancer never adjusted priorities")
	}
	// Allow a small slack vs the hand-tuned static case.
	if r.DynamicSeconds > r.StaticSeconds*1.05 {
		return fmt.Errorf("dynamic (%.6fs) more than 5%% behind static best (%.6fs)",
			r.DynamicSeconds, r.StaticSeconds)
	}
	return nil
}
