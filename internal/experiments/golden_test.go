package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files:
//
//	go test ./internal/experiments -run TestGolden -update
//
// Regenerate ONLY when an output change is intended and reviewed; the
// whole point of the snapshots is that topology refactors cannot drift
// the paper tables silently.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenOpt pins the scale, trace width and worker count the snapshots
// were taken at.  Workers is 1 for fully serial generation; the pooled
// runs are asserted byte-identical to serial elsewhere
// (TestParallelCasesMatchSerial), so the snapshots cover both.
var goldenOpt = Options{Scale: 0.5, TraceWidth: 60, Workers: 1}

// goldenArtifacts renders every snapshotted experiment.
func goldenArtifacts() (map[string]string, error) {
	out := make(map[string]string)

	t2, err := Table2(goldenOpt)
	if err != nil {
		return nil, err
	}
	out["table2"] = FormatTable2(t2)

	for _, tbl := range []struct {
		name, title string
		gen         func(Options) ([]CaseResult, error)
	}{
		{"table4", "Table IV — MetBench (Figure 2)", Table4},
		{"table5", "Table V — BT-MZ (Figure 3)", Table5},
		{"table6", "Table VI — SIESTA (Figure 4)", Table6},
	} {
		cases, err := tbl.gen(goldenOpt)
		if err != nil {
			return nil, err
		}
		ref := "A"
		out[tbl.name] = FormatCases(tbl.title, cases) + "\n" + FormatSpeedups(cases, ref)
	}

	ab, err := KernelPatchAblation(goldenOpt)
	if err != nil {
		return nil, err
	}
	out["ablation"] = fmt.Sprintf(
		"Kernel patch ablation (MetBench case C):\n"+
			"  patched kernel: %.9fs (imbalance %.4f%%)\n"+
			"  vanilla kernel: %.9fs (imbalance %.4f%%)\n",
		ab.PatchedSeconds, ab.PatchedImbalance, ab.VanillaSeconds, ab.VanillaImbalance)

	sc, err := Scaling(goldenOpt)
	if err != nil {
		return nil, err
	}
	out["scaling"] = FormatScaling(sc)

	return out, nil
}

// TestGoldenTables diffs every experiment rendering against its
// testdata snapshot, byte for byte.  The default 1×2×2 topology must
// reproduce the paper tables identically across refactors; the scaling
// snapshot pins the multi-chip scenario the same way.
func TestGoldenTables(t *testing.T) {
	arts, err := goldenArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range arts {
		path := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/experiments -run TestGolden -update` to create)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s output drifted from %s.\nGot:\n%s\nWant:\n%s\n(regenerate with -update only if the change is intended)",
				name, path, got, want)
		}
	}
	if *update {
		t.Log("golden files updated")
	}
}
