package experiments

import (
	"fmt"

	"repro/internal/apps/metbench"
)

// paperTable4 holds the paper's Table IV measurements.
var paperTable4 = map[string]struct {
	imb, exec float64
	comp      [4]float64
	sync      [4]float64
}{
	"A": {75.69, 81.64, [4]float64{24.32, 98.99, 24.31, 99.99}, [4]float64{75.67, 1.00, 75.69, 0.00}},
	"B": {48.82, 76.98, [4]float64{51.16, 99.82, 51.18, 99.98}, [4]float64{48.83, 0.18, 48.81, 0.01}},
	"C": {1.96, 74.90, [4]float64{98.96, 98.56, 97.01, 98.37}, [4]float64{1.03, 1.43, 2.99, 1.63}},
	"D": {26.62, 95.71, [4]float64{99.87, 73.25, 99.72, 73.25}, [4]float64{0.12, 26.74, 0.27, 26.74}},
}

// Table4 reproduces Table IV / Figure 2: MetBench under the four priority
// cases.
func Table4(opt Options) ([]CaseResult, error) {
	opt = opt.normalize()
	cfg := metbench.DefaultConfig()
	cfg.HeavyLoad = scaleLoad(cfg.HeavyLoad, opt.Scale)
	cfg.LightLoad = scaleLoad(cfg.LightLoad, opt.Scale)
	job := metbench.Job(cfg)

	var specs []caseSpec
	for _, c := range metbench.Cases() {
		pl, err := metbench.Placement(c)
		if err != nil {
			return nil, err
		}
		specs = append(specs, caseSpec{label: string(c), job: job, pl: pl})
	}
	out, err := runCases(specs, opt)
	if err != nil {
		return nil, err
	}
	for k := range out {
		ref := paperTable4[out[k].Case]
		out[k].PaperImbalancePct = ref.imb
		out[k].PaperExecSeconds = ref.exec
		for i := range out[k].Ranks {
			out[k].Ranks[i].PaperComp = ref.comp[i]
			out[k].Ranks[i].PaperSync = ref.sync[i]
		}
	}
	return out, nil
}

// CheckTable4 asserts the Table IV shape:
//
//   - execution time ordering C < B < A < D (C best, D a regression);
//   - imbalance ordering C < B < A;
//   - Case D inverts the imbalance: the heavy workers (P2, P4) become the
//     waiters;
//   - Case C is nearly balanced.
func CheckTable4(cases []CaseResult) error {
	if err := orderedExec(cases, "C", "B", "A", "D"); err != nil {
		return err
	}
	a, _ := findCase(cases, "A")
	b, _ := findCase(cases, "B")
	c, _ := findCase(cases, "C")
	d, _ := findCase(cases, "D")
	if !(c.ImbalancePct < b.ImbalancePct && b.ImbalancePct < a.ImbalancePct) {
		return fmt.Errorf("imbalance not decreasing A->B->C: %.1f, %.1f, %.1f",
			a.ImbalancePct, b.ImbalancePct, c.ImbalancePct)
	}
	if c.ImbalancePct > 12 {
		return fmt.Errorf("case C imbalance %.1f%%, want near-balanced (< 12%%)", c.ImbalancePct)
	}
	// Case A: light workers wait; Case D: heavy workers wait (inversion).
	if syncOf(a, "P1") < syncOf(a, "P2") {
		return fmt.Errorf("case A: light worker P1 (%.1f%%) not waiting more than heavy P2 (%.1f%%)",
			syncOf(a, "P1"), syncOf(a, "P2"))
	}
	if syncOf(d, "P2") < syncOf(d, "P1") {
		return fmt.Errorf("case D: imbalance not inverted (P2 sync %.1f%% < P1 sync %.1f%%)",
			syncOf(d, "P2"), syncOf(d, "P1"))
	}
	for _, cr := range cases {
		if err := traceGlyphs(cr.TraceText); err != nil {
			return err
		}
	}
	return nil
}
