// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) on the simulated machine, with the paper's
// measured values embedded for side-by-side comparison.
//
// Absolute numbers are not expected to match — the substrate is a scaled
// simulator, not the authors' OpenPower 710 — but the *shape* is: which
// case wins, the ordering of cases, the imbalance inversions, and the
// rough magnitude of the improvements.  Each experiment has a Check*
// function asserting that shape; the test suite and the mtbalance CLI both
// use them.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/sweep"
)

// Options tunes experiment execution.
type Options struct {
	// Scale multiplies workload instruction counts; 1.0 is the default
	// documented scale, smaller values run faster (tests use ~0.3).
	Scale float64
	// TraceWidth is the column width of rendered timelines (0 = 100).
	TraceWidth int
	// Workers caps concurrent simulator runs for experiments whose
	// cases are independent; 0 means one per CPU, 1 forces the serial
	// order.  Results are identical for every value: each case lands in
	// its input-order slot regardless of completion order.
	Workers int
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.TraceWidth <= 0 {
		o.TraceWidth = 100
	}
	return o
}

// scaleLoad applies the option scale to an instruction count.
func scaleLoad(n int64, scale float64) int64 {
	s := int64(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

// RankRow is one per-process line of a Tables IV-VI case.
type RankRow struct {
	// Proc is the paper's process name (P1..P4).
	Proc string
	// Core is the physical core (paper numbering: 1 or 2).
	Core int
	// Prio is the hardware priority.
	Prio int
	// CompPct and SyncPct are the measured computation and
	// synchronization percentages.
	CompPct, SyncPct float64
	// PaperComp and PaperSync are the values from the paper's table.
	PaperComp, PaperSync float64
}

// CaseResult is one case row of a Tables IV-VI experiment.
type CaseResult struct {
	// Case is the row label (ST, A, B, C, D).
	Case string
	// ExecSeconds is the measured total execution time (simulated
	// seconds at the reduced scale).
	ExecSeconds float64
	// ImbalancePct is the measured imbalance (max sync %).
	ImbalancePct float64
	// PaperExecSeconds and PaperImbalancePct are the paper's values.
	PaperExecSeconds, PaperImbalancePct float64
	// Ranks holds the per-process lines.
	Ranks []RankRow
	// TraceText is the rendered timeline (the case's Figure panel).
	TraceText string
	// Cycles is the raw simulated cycle count.
	Cycles int64
}

// runCase executes a job under a placement with the standard experiment
// environment (patched kernel with timer ticks) and packages the result.
func runCase(job *mpisim.Job, pl mpisim.Placement, opt Options, label string, procs []string) (CaseResult, error) {
	cfg := mpisim.Config{
		Chip:      power5.DefaultConfig(),
		Kernel:    oskernel.DefaultConfig(),
		KernelSet: true,
	}
	res, err := mpisim.Run(job, pl, cfg)
	if err != nil {
		return CaseResult{}, fmt.Errorf("experiments: case %s: %w", label, err)
	}
	cr := CaseResult{
		Case:         label,
		ExecSeconds:  res.Seconds,
		ImbalancePct: res.Imbalance,
		TraceText:    res.Trace.Render(opt.TraceWidth),
		Cycles:       res.Cycles,
	}
	for r, rr := range res.Ranks {
		name := fmt.Sprintf("P%d", r+1)
		if r < len(procs) {
			name = procs[r]
		}
		cr.Ranks = append(cr.Ranks, RankRow{
			Proc:    name,
			Core:    rr.Core + 1, // paper numbers cores from 1
			Prio:    int(rr.Prio),
			CompPct: rr.ComputePct,
			SyncPct: rr.SyncPct,
		})
	}
	return cr, nil
}

// caseSpec is one independent case of a table experiment: its own job
// and placement, ready to run concurrently with its siblings.
type caseSpec struct {
	label string
	job   *mpisim.Job
	pl    mpisim.Placement
	procs []string
}

// outcome carries one pooled run of any result type; firstErr surfaces
// the lowest-index failure, matching the error the serial loop would
// have returned.
type outcome[T any] struct {
	val T
	err error
}

func firstErr[T any](outs []outcome[T]) error {
	for _, o := range outs {
		if o.err != nil {
			return o.err
		}
	}
	return nil
}

// runCases executes independent cases through the shared worker pool.
// The output preserves spec order whatever the concurrency, so parallel
// and serial experiment runs render byte-identical tables.
func runCases(specs []caseSpec, opt Options) ([]CaseResult, error) {
	outs := sweep.Map(len(specs), opt.Workers, func(i int) outcome[CaseResult] {
		cr, err := runCase(specs[i].job, specs[i].pl, opt, specs[i].label, specs[i].procs)
		return outcome[CaseResult]{cr, err}
	})
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	cases := make([]CaseResult, 0, len(outs))
	for _, o := range outs {
		cases = append(cases, o.val)
	}
	return cases, nil
}

// FormatCases renders experiment case rows as a paper-style table.
func FormatCases(title string, cases []CaseResult) string {
	tb := metrics.NewTable(title,
		"Test", "Proc", "Core", "P", "Comp%", "(paper)", "Sync%", "(paper)", "Imb%", "(paper)", "Exec", "(paper)")
	for _, c := range cases {
		for i, r := range c.Ranks {
			caseCol, imbCol, imbPaper, execCol, execPaper := "", "", "", "", ""
			if i == 0 {
				caseCol = c.Case
				imbCol = fmt.Sprintf("%.2f", c.ImbalancePct)
				imbPaper = fmt.Sprintf("%.2f", c.PaperImbalancePct)
				execCol = metrics.Seconds(c.ExecSeconds)
				execPaper = fmt.Sprintf("%.2fs", c.PaperExecSeconds)
			}
			tb.AddRow(caseCol, r.Proc, fmt.Sprint(r.Core), fmt.Sprint(r.Prio),
				fmt.Sprintf("%.2f", r.CompPct), fmt.Sprintf("%.2f", r.PaperComp),
				fmt.Sprintf("%.2f", r.SyncPct), fmt.Sprintf("%.2f", r.PaperSync),
				imbCol, imbPaper, execCol, execPaper)
		}
	}
	return tb.String()
}

// FormatSpeedups summarizes case execution times against the reference
// case, paper vs measured — the paper's headline numbers.
func FormatSpeedups(cases []CaseResult, reference string) string {
	var refMeasured, refPaper float64
	for _, c := range cases {
		if c.Case == reference {
			refMeasured, refPaper = c.ExecSeconds, c.PaperExecSeconds
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "improvement over case %s (positive = faster):\n", reference)
	for _, c := range cases {
		if c.Case == reference {
			continue
		}
		fmt.Fprintf(&b, "  case %-3s measured %8s   paper %8s\n", c.Case,
			metrics.Speedup(refMeasured, c.ExecSeconds),
			metrics.Speedup(refPaper, c.PaperExecSeconds))
	}
	return b.String()
}

// findCase returns the case with the given label.
func findCase(cases []CaseResult, label string) (CaseResult, error) {
	for _, c := range cases {
		if c.Case == label {
			return c, nil
		}
	}
	return CaseResult{}, fmt.Errorf("experiments: case %q missing", label)
}

// orderedExec asserts exec(labels[0]) < exec(labels[1]) < ... with a
// tolerance-free strict ordering.
func orderedExec(cases []CaseResult, labels ...string) error {
	prev, err := findCase(cases, labels[0])
	if err != nil {
		return err
	}
	for _, l := range labels[1:] {
		cur, err := findCase(cases, l)
		if err != nil {
			return err
		}
		if cur.ExecSeconds <= prev.ExecSeconds {
			return fmt.Errorf("experiments: expected exec(%s) < exec(%s), got %.6f >= %.6f",
				prev.Case, cur.Case, prev.ExecSeconds, cur.ExecSeconds)
		}
		prev = cur
	}
	return nil
}

// syncOf returns the sync percentage of the named process in a case.
func syncOf(c CaseResult, proc string) float64 {
	for _, r := range c.Ranks {
		if r.Proc == proc {
			return r.SyncPct
		}
	}
	return -1
}

// traceGlyphs sanity-checks that a rendered trace contains computation.
func traceGlyphs(s string) error {
	if !strings.Contains(s, "█") {
		return fmt.Errorf("experiments: trace has no compute intervals:\n%s", s)
	}
	return nil
}
