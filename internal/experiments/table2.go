package experiments

import (
	"fmt"

	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/power5"
	"repro/internal/sweep"
)

// DecodeRow is one row of the Table II reproduction: a priority difference
// with its architectural decode-cycle split and the split actually
// measured on the simulator's decode stage.
type DecodeRow struct {
	// Diff is |X-Y|.
	Diff int
	// R is the arbitration window length 2^(Diff+1).
	R int
	// SlotsA and SlotsB are the architectural decode cycles per window.
	SlotsA, SlotsB int
	// MeasuredA and MeasuredB are the decode-cycle fractions observed
	// over a long run (they should match SlotsA/R and SlotsB/R).
	MeasuredA, MeasuredB float64
	// IPCA and IPCB are the resulting throughputs, showing how the slot
	// split translates into performance.
	IPCA, IPCB float64
}

// fullWidthStream returns an instruction stream able to sustain the full
// decode width: independent operations spread across all unit classes, so
// the drain rate never falls below the decode supply and the measured
// decode-cycle split equals the architectural slot allocation.
func fullWidthStream(base uint64) isa.Stream {
	return isa.NewLoopStream([]isa.Instr{
		{Op: isa.FX, PC: 0},
		{Op: isa.FP, PC: 4},
		{Op: isa.Load, Addr: base, PC: 8},
		{Op: isa.FX, PC: 12},
		{Op: isa.FP, PC: 16},
		{Op: isa.Store, Addr: base + 128, PC: 20},
		{Op: isa.Branch, Taken: true, PC: 24},
	})
}

// measureDecode co-runs two always-ready full-width streams at the given
// priorities and returns decode-cycle fractions and IPCs.
func measureDecode(pa, pb hwpri.Priority, cycles int64) (fa, fb, ipca, ipcb float64) {
	ch := power5.MustNew(power5.DefaultConfig())
	ch.SetPriority(0, 0, pa)
	ch.SetPriority(0, 1, pb)
	ch.SetStream(0, 0, fullWidthStream(0))
	ch.SetStream(0, 1, fullWidthStream(1<<32))
	ch.Run(cycles)
	sa, sb := ch.Stats(0, 0), ch.Stats(0, 1)
	owned := float64(sa.DecodeCycles + sb.DecodeCycles)
	if owned == 0 {
		return 0, 0, 0, 0
	}
	return float64(sa.DecodeCycles) / owned, float64(sb.DecodeCycles) / owned,
		float64(sa.Completed) / float64(cycles), float64(sb.Completed) / float64(cycles)
}

// Table2 reproduces Table II: decode-cycle allocation for priority
// differences 0..4, measured on the simulator.
func Table2(opt Options) ([]DecodeRow, error) {
	opt = opt.normalize()
	cycles := scaleLoad(400_000, opt.Scale)
	// Priority pairs realizing differences 0..4 within the OS range.
	// Each row measures its own chip instance, so rows fan out across
	// the worker pool.
	pairs := [][2]hwpri.Priority{{4, 4}, {5, 4}, {6, 4}, {6, 3}, {6, 2}}
	rows := sweep.Map(len(pairs), opt.Workers, func(d int) DecodeRow {
		p := pairs[d]
		al := hwpri.Alloc(p[0], p[1])
		fa, fb, ipca, ipcb := measureDecode(p[0], p[1], cycles)
		r := 2
		if d > 0 {
			r = hwpri.R(p[0], p[1])
		}
		return DecodeRow{
			Diff:      d,
			R:         r,
			SlotsA:    al.Slots[0],
			SlotsB:    al.Slots[1],
			MeasuredA: fa,
			MeasuredB: fb,
			IPCA:      ipca,
			IPCB:      ipcb,
		}
	})
	return rows, nil
}

// CheckTable2 asserts that the measured decode split matches the
// architectural R-1 : 1 allocation within 2 percentage points for every
// difference.
func CheckTable2(rows []DecodeRow) error {
	for _, row := range rows {
		wantA := float64(row.SlotsA) / float64(row.R)
		if diff := row.MeasuredA - wantA; diff < -0.02 || diff > 0.02 {
			return fmt.Errorf("diff %d: measured decode share %.3f, architectural %.3f",
				row.Diff, row.MeasuredA, wantA)
		}
		if row.Diff > 0 && row.IPCB >= row.IPCA {
			return fmt.Errorf("diff %d: penalized IPC %.3f not below favored %.3f",
				row.Diff, row.IPCB, row.IPCA)
		}
	}
	// The penalized thread collapses monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].IPCB >= rows[i-1].IPCB {
			return fmt.Errorf("penalized IPC not monotone at diff %d: %.3f >= %.3f",
				rows[i].Diff, rows[i].IPCB, rows[i-1].IPCB)
		}
	}
	return nil
}

// FormatTable2 renders the Table II reproduction.
func FormatTable2(rows []DecodeRow) string {
	tb := metrics.NewTable("Table II — decode cycle allocation by priority difference",
		"|X-Y|", "R", "slots A:B", "measured A:B", "IPC A", "IPC B")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Diff), fmt.Sprint(r.R),
			fmt.Sprintf("%d:%d", r.SlotsA, r.SlotsB),
			fmt.Sprintf("%.3f:%.3f", r.MeasuredA, r.MeasuredB),
			fmt.Sprintf("%.2f", r.IPCA), fmt.Sprintf("%.2f", r.IPCB))
	}
	return tb.String()
}

// SpecialRow is one row of the Table III reproduction.
type SpecialRow struct {
	// PrioA, PrioB are the thread priorities.
	PrioA, PrioB hwpri.Priority
	// Mode is the resulting allocation regime.
	Mode hwpri.Mode
	// IPCA, IPCB are the measured throughputs.
	IPCA, IPCB float64
	// Action is the paper's description of the row.
	Action string
}

// Table3 reproduces Table III: the special allocation regimes when a
// priority is 0 or 1.
func Table3(opt Options) ([]SpecialRow, error) {
	opt = opt.normalize()
	cycles := scaleLoad(400_000, opt.Scale)
	pairs := [][2]hwpri.Priority{
		{4, 4}, // regular shared row for reference
		{1, 4}, // B gets all, A leftover
		{1, 1}, // power save
		{0, 4}, // ST mode
		{0, 1}, // throttled
		{0, 0}, // stopped
	}
	var rows []SpecialRow
	for _, p := range pairs {
		al := hwpri.Alloc(p[0], p[1])
		_, _, ipca, ipcb := measureDecode(p[0], p[1], cycles)
		rows = append(rows, SpecialRow{
			PrioA: p[0], PrioB: p[1],
			Mode: al.Mode,
			IPCA: ipca, IPCB: ipcb,
			Action: al.Describe(),
		})
	}
	return rows, nil
}

// CheckTable3 asserts each special regime behaves per Table III.
func CheckTable3(rows []SpecialRow) error {
	byPair := func(a, b hwpri.Priority) SpecialRow {
		for _, r := range rows {
			if r.PrioA == a && r.PrioB == b {
				return r
			}
		}
		return SpecialRow{}
	}
	ref := byPair(4, 4)
	leftover := byPair(1, 4)
	if leftover.IPCB <= ref.IPCB {
		return fmt.Errorf("1 vs 4: favored thread (%.3f) not faster than the 4/4 reference (%.3f)",
			leftover.IPCB, ref.IPCB)
	}
	if leftover.IPCA > ref.IPCA/4 {
		return fmt.Errorf("1 vs 4: leftover thread IPC %.3f, want a crawl", leftover.IPCA)
	}
	save := byPair(1, 1)
	// Power save: each thread gets at most 5 instructions per 64 cycles.
	if max := 5.0 / 64 * 1.1; save.IPCA > max || save.IPCB > max {
		return fmt.Errorf("1 vs 1: power-save IPCs %.4f/%.4f exceed the 1-of-64 bound", save.IPCA, save.IPCB)
	}
	st := byPair(0, 4)
	if st.IPCA != 0 {
		return fmt.Errorf("0 vs 4: dead thread has IPC %.4f", st.IPCA)
	}
	if st.IPCB < leftover.IPCB-0.01 {
		return fmt.Errorf("0 vs 4: ST thread (%.3f) slower than the leftover-favored regime (%.3f)",
			st.IPCB, leftover.IPCB)
	}
	throttled := byPair(0, 1)
	if max := 5.0 / 32 * 1.1; throttled.IPCB > max || throttled.IPCB == 0 {
		return fmt.Errorf("0 vs 1: throttled IPC %.4f outside (0, 1-of-32 bound]", throttled.IPCB)
	}
	stopped := byPair(0, 0)
	if stopped.IPCA != 0 || stopped.IPCB != 0 {
		return fmt.Errorf("0 vs 0: stopped core executed instructions (%.4f/%.4f)", stopped.IPCA, stopped.IPCB)
	}
	return nil
}

// FormatTable3 renders the Table III reproduction.
func FormatTable3(rows []SpecialRow) string {
	tb := metrics.NewTable("Table III — allocation when a priority is 0 or 1",
		"Thr.A", "Thr.B", "mode", "IPC A", "IPC B", "action")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(uint8(r.PrioA)), fmt.Sprint(uint8(r.PrioB)), r.Mode.String(),
			fmt.Sprintf("%.3f", r.IPCA), fmt.Sprintf("%.3f", r.IPCB), r.Action)
	}
	return tb.String()
}
