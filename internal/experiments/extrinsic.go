package experiments

import (
	"fmt"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ExtrinsicResult quantifies Section II-B: even a perfectly balanced
// application becomes imbalanced when external factors (OS noise, user
// daemons) steal CPU from some ranks but not others — and the paper's
// priority mechanism can compensate without touching the application.
type ExtrinsicResult struct {
	// CleanSeconds / CleanImbalance: balanced app, no noise.
	CleanSeconds   float64
	CleanImbalance float64
	// NoisySeconds / NoisyImbalance: a daemon pinned to rank 0's CPU.
	NoisySeconds   float64
	NoisyImbalance float64
	// CompensatedSeconds / CompensatedImbalance: same noise, but the
	// victim rank is favored by one priority step.
	CompensatedSeconds   float64
	CompensatedImbalance float64
}

// ExtrinsicNoise runs the experiment: four identical ranks, a statistics
// daemon bound to CPU 0 (the "user daemons" source of Section II-B),
// and the priority compensation.
func ExtrinsicNoise(opt Options) (*ExtrinsicResult, error) {
	opt = opt.normalize()
	// The ranks run the irregular-code kernel: compensating extrinsic
	// noise with a one-step priority difference only pays off when the
	// sibling's penalty (~12% for this profile) is smaller than the
	// victim's loss — with a decode-saturating synthetic stressor the
	// cure would cost more than the disease (the Case D lesson again).
	load := scaleLoad(60_000, opt.Scale)
	job := &mpisim.Job{Name: "extrinsic"}
	for r := 0; r < 4; r++ {
		var p mpisim.Program
		for i := 0; i < 4; i++ {
			p = append(p, mpisim.Compute(workload.Load{Kind: workload.Branchy, N: load}), mpisim.Barrier())
		}
		job.Ranks = append(job.Ranks, p)
	}
	daemon := oskernel.Daemon{CPU: 0, Period: 20_000, Run: 6_000}

	run := func(withDaemon bool, pl mpisim.Placement) (*mpisim.Result, error) {
		k := oskernel.DefaultConfig()
		if withDaemon {
			k.Daemons = []oskernel.Daemon{daemon}
		}
		return mpisim.Run(job, pl, mpisim.Config{
			Chip:      power5.DefaultConfig(),
			Kernel:    k,
			KernelSet: true,
		})
	}
	// Clean, noisy and compensated runs are independent: fan them out.
	compensated := mpisim.Placement{
		CPU:  []int{0, 1, 2, 3},
		Prio: []hwpri.Priority{5, 4, 4, 4}, // favor the daemon's victim
	}
	outs := sweep.Map(3, opt.Workers, func(i int) outcome[*mpisim.Result] {
		switch i {
		case 0:
			r, err := run(false, mpisim.DefaultPlacement(4))
			return outcome[*mpisim.Result]{r, err}
		case 1:
			r, err := run(true, mpisim.DefaultPlacement(4))
			return outcome[*mpisim.Result]{r, err}
		default:
			r, err := run(true, compensated)
			return outcome[*mpisim.Result]{r, err}
		}
	})
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	clean, noisy, comp := outs[0].val, outs[1].val, outs[2].val
	return &ExtrinsicResult{
		CleanSeconds: clean.Seconds, CleanImbalance: clean.Imbalance,
		NoisySeconds: noisy.Seconds, NoisyImbalance: noisy.Imbalance,
		CompensatedSeconds: comp.Seconds, CompensatedImbalance: comp.Imbalance,
	}, nil
}

// CheckExtrinsic asserts the Section II-B shape: noise imbalances and
// slows a balanced application; priority compensation recovers part of
// the loss transparently.
func CheckExtrinsic(r *ExtrinsicResult) error {
	if r.CleanImbalance > 10 {
		return fmt.Errorf("clean run already imbalanced (%.1f%%)", r.CleanImbalance)
	}
	if r.NoisyImbalance <= r.CleanImbalance+5 {
		return fmt.Errorf("daemon noise did not imbalance the run (%.1f%% vs %.1f%%)",
			r.NoisyImbalance, r.CleanImbalance)
	}
	if r.NoisySeconds <= r.CleanSeconds {
		return fmt.Errorf("daemon noise did not slow the run")
	}
	if r.CompensatedSeconds >= r.NoisySeconds {
		return fmt.Errorf("priority compensation did not help (%.6fs vs %.6fs)",
			r.CompensatedSeconds, r.NoisySeconds)
	}
	if r.CompensatedImbalance >= r.NoisyImbalance {
		return fmt.Errorf("priority compensation did not reduce imbalance (%.1f%% vs %.1f%%)",
			r.CompensatedImbalance, r.NoisyImbalance)
	}
	return nil
}
