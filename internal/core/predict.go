package core

import "repro/internal/hwpri"

// This file is the coarse level of the two-level sweep search: an
// analytical per-configuration cost predictor.  Given a concrete
// placement (CPU map + priorities) and each rank's summarized program,
// it predicts the cycles-to-barrier in O(ranks + exchange legs) from the
// decode-share model of Section V-A plus the machine's communication
// tiers — no simulation.  The sweep screening layer ranks every
// configuration of a space with it and hands only the predicted
// frontier to the simulator (internal/sweep.Screen).
//
// The prediction is deliberately simple: per-iteration effects the
// simulator resolves exactly (cache warm-up, OS noise, spin decode
// stealing after a rank finishes, exchange post/wait interleaving) are
// ignored.  What it does capture — decode supply under a priority
// difference, demand saturation, and the same-core / same-chip /
// cross-chip exchange tiers — is what separates good configurations
// from bad ones, which is all a screening model has to do.

// RankLoad summarizes one rank's program for the predictor: the total
// compute work and the exchange traffic, with barriers implied by the
// makespan aggregation (the application finishes when its slowest rank
// does).
type RankLoad struct {
	// Compute is the rank's total compute work in instructions (any
	// consistent unit works for ranking, but instructions make the
	// compute term directly comparable to the comm term's cycles once
	// divided by the model's predicted IPC).
	Compute float64
	// Classes optionally splits Compute by decode demand: each class is
	// work that cannot execute faster than its own IPC ceiling whatever
	// decode share it is granted (a latency-bound kernel gains nothing
	// from a favored sibling).  When non-empty, the predictor prices the
	// classes instead of Compute; when empty, all of Compute runs at the
	// model's default demand.
	Classes []ComputeClass
	// Exchanges lists the rank's exchange phases in program order.
	Exchanges []ExchangeLoad
}

// ComputeClass is a slice of a rank's compute with a common demand
// ceiling, e.g. the memory-bound fraction of a program.
type ComputeClass struct {
	// Work is the class's instruction count.
	Work float64
	// Demand caps the class's IPC regardless of decode share; 0 or
	// anything above the model's demand means decode-elastic work that
	// saturates at the model's default.
	Demand float64
}

// ExchangeLoad is one exchange phase: Bytes moved to/from each of Peers.
type ExchangeLoad struct {
	// Bytes is the per-peer transfer size.
	Bytes int64
	// Peers are the partner ranks.
	Peers []int
}

// CommFn prices one exchange leg between two logical CPUs, mirroring
// mpisim.Config.CommLatency (e.g. mpisim.TopologyCommLatency).
type CommFn func(cpuA, cpuB int, bytes int64) int64

// decodeShare returns the decode-cycle fraction a context receives when
// its priority differs from its sibling's by d (Table II): the decode
// time is sliced into R = 2^(|d|+1) cycles, R-1 for the favored context
// and 1 for the penalized one.  Differences beyond 4 are clamped — the
// sweepable priorities 2..6 never exceed it, and the special rows of
// Table III (priorities 0, 1 and 7 change the context population) are
// outside the predictor's domain.
func decodeShare(d int) (favored, penalized float64) {
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0.5, 0.5
	}
	if d > 4 {
		d = 4
	}
	r := float64(int(1) << (d + 1))
	return (r - 1) / r, 1 / r
}

// PredictCycles predicts the configuration's cycles-to-completion: each
// rank computes at the IPC its decode share supports (a lone rank on a
// core owns the full decode stage), pays every exchange phase the
// slowest of its peer legs, and the application finishes with its
// slowest rank.  cpu and prio index by rank, as in a placement; comm
// prices exchange legs and may be nil when loads carry no exchanges.
// The cost is O(ranks + exchange legs) — it never simulates.
func (m Model) PredictCycles(loads []RankLoad, cpu []int, prio []hwpri.Priority, comm CommFn) float64 {
	maxCPU := 0
	for _, c := range cpu {
		if c > maxCPU {
			maxCPU = c
		}
	}
	// rankOn[c] is the rank pinned to logical CPU c, -1 when idle; the
	// +2 keeps the sibling lookup (c^1) in range for an even maxCPU.
	rankOn := make([]int, maxCPU+2)
	for i := range rankOn {
		rankOn[i] = -1
	}
	for r, c := range cpu {
		rankOn[c] = r
	}
	var worst float64
	for r := range loads {
		share := 1.0 // a lone rank owns the whole decode stage
		if sib := rankOn[cpu[r]^1]; sib >= 0 {
			d := int(prio[r]) - int(prio[sib])
			fav, pen := decodeShare(d)
			switch {
			case d > 0:
				share = fav
			case d < 0:
				share = pen
			default:
				share = 0.5
			}
		}
		var t float64
		if len(loads[r].Classes) > 0 {
			for _, cl := range loads[r].Classes {
				s := m.speed(share)
				if cl.Demand > 0 && cl.Demand < s {
					s = cl.Demand
				}
				if s > 0 {
					t += cl.Work / s
				}
			}
		} else if s := m.speed(share); s > 0 {
			t = loads[r].Compute / s
		}
		if comm != nil {
			for _, ex := range loads[r].Exchanges {
				var lat int64
				for _, p := range ex.Peers {
					if p < 0 || p >= len(cpu) {
						continue
					}
					if l := comm(cpu[r], cpu[p], ex.Bytes); l > lat {
						lat = l
					}
				}
				t += float64(lat)
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}
