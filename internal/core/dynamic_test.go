package core

import (
	"testing"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/workload"
)

func quietCfg() mpisim.Config {
	chip := power5.DefaultConfig()
	chip.BranchBits = 10
	return mpisim.Config{
		Chip:      chip,
		Kernel:    oskernel.Config{Patched: true},
		KernelSet: true,
		MaxCycles: 1 << 28,
	}
}

func fpu(n int64) workload.Load { return workload.Load{Kind: workload.FPU, N: n} }

// steadyJob builds an iterative job with fixed per-rank loads.
func steadyJob(loads []int64, iters int) *mpisim.Job {
	job := &mpisim.Job{Name: "steady"}
	for _, n := range loads {
		var p mpisim.Program
		for i := 0; i < iters; i++ {
			p = append(p, mpisim.Compute(fpu(n)), mpisim.Barrier())
		}
		job.Ranks = append(job.Ranks, p)
	}
	return job
}

// shiftingJob alternates the bottleneck between the two ranks of each core
// every block iterations — the SIESTA behaviour of Section VII-C.
func shiftingJob(iters, block int) *mpisim.Job {
	job := &mpisim.Job{Name: "shifting", Ranks: make([]mpisim.Program, 4)}
	for i := 0; i < iters; i++ {
		heavyFirst := (i/block)%2 == 0
		for r := 0; r < 4; r++ {
			n := int64(4000)
			if (r%2 == 0) == heavyFirst {
				n = 16000
			}
			job.Ranks[r] = append(job.Ranks[r], mpisim.Compute(fpu(n)), mpisim.Barrier())
		}
	}
	return job
}

func TestNewDynamicPairs(t *testing.T) {
	d := NewDynamic(DynamicConfig{CPU: []int{0, 1, 2, 3}})
	if len(d.Pairs()) != 2 {
		t.Fatalf("pairs = %v, want 2 pairs", d.Pairs())
	}
	if p := d.Pairs()[0]; p[0]/1 != 0 || p[1] != 1 {
		t.Errorf("pair 0 = %v, want ranks 0,1 (CPUs 0,1 share core 0)", p)
	}
	// Cross-placed ranks pair by core, not by rank number.
	d2 := NewDynamic(DynamicConfig{CPU: []int{0, 2, 3, 1}})
	if p := d2.Pairs()[0]; p[0] != 0 || p[1] != 3 {
		t.Errorf("pair 0 = %v, want ranks 0,3", p)
	}
	// Unpaired ranks (ST placement) yield no pairs.
	d3 := NewDynamic(DynamicConfig{CPU: []int{0, 2}})
	if len(d3.Pairs()) != 0 {
		t.Error("ST placement must have no balancing pairs")
	}
}

// TestDynamicConvergesOnSteadyImbalance: on a steady 4x skew the balancer
// must move the priority difference toward the heavy ranks and stay there.
func TestDynamicConvergesOnSteadyImbalance(t *testing.T) {
	job := steadyJob([]int64{4000, 16000, 4000, 16000}, 12)
	pl := mpisim.DefaultPlacement(4)
	bal := NewDynamic(DynamicConfig{CPU: pl.CPU})
	cfg := quietCfg()
	cfg.OnIteration = bal.OnIteration
	res, err := mpisim.Run(job, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Moves == 0 {
		t.Fatal("balancer never moved")
	}
	diffs := bal.Diffs()
	// Ranks 1 and 3 (heavy) are the second element of each pair, so the
	// converged diff must be negative (favoring them).
	for i, d := range diffs {
		if d >= 0 {
			t.Errorf("pair %d diff = %d, want negative (favoring heavy rank)", i, d)
		}
	}
	// And it must beat the unbalanced run.
	base, err := mpisim.Run(job, pl, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= base.Cycles {
		t.Errorf("dynamic balancing did not help: %d >= %d cycles", res.Cycles, base.Cycles)
	}
}

// TestDynamicTracksShiftingBottleneck: when the bottleneck moves between
// ranks, the balancer must follow it (the static assignment cannot).
func TestDynamicTracksShiftingBottleneck(t *testing.T) {
	// Phases of 8 iterations give the damped balancer (hysteresis 2,
	// one step per move) room to cross from favoring one rank to
	// favoring the other before the bottleneck flips again.
	job := shiftingJob(32, 8)
	pl := mpisim.DefaultPlacement(4)

	bal := NewDynamic(DynamicConfig{CPU: pl.CPU})
	cfg := quietCfg()
	var diffTrail []int
	cfg.OnIteration = func(ev mpisim.IterationEvent) {
		bal.OnIteration(ev)
		diffTrail = append(diffTrail, bal.Diffs()[0])
	}
	dyn, err := mpisim.Run(job, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The diff must change sign at least once as the bottleneck flips.
	sawNeg, sawPos := false, false
	for _, d := range diffTrail {
		if d < 0 {
			sawNeg = true
		}
		if d > 0 {
			sawPos = true
		}
	}
	if !sawNeg || !sawPos {
		t.Errorf("balancer did not track the moving bottleneck: trail %v", diffTrail)
	}

	// A static assignment favoring rank 0 permanently must lose to the
	// dynamic balancer on this workload.
	static := mpisim.Placement{CPU: pl.CPU, Prio: []hwpri.Priority{6, 4, 6, 4}}
	stat, err := mpisim.Run(job, static, quietCfg())
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Cycles >= stat.Cycles {
		t.Errorf("dynamic (%d cycles) not better than wrong static (%d cycles)", dyn.Cycles, stat.Cycles)
	}
}

// TestDynamicStaysPutWhenBalanced: no moves on a balanced application.
func TestDynamicStaysPutWhenBalanced(t *testing.T) {
	job := steadyJob([]int64{8000, 8000, 8000, 8000}, 8)
	pl := mpisim.DefaultPlacement(4)
	bal := NewDynamic(DynamicConfig{CPU: pl.CPU})
	cfg := quietCfg()
	cfg.OnIteration = bal.OnIteration
	if _, err := mpisim.Run(job, pl, cfg); err != nil {
		t.Fatal(err)
	}
	if bal.Moves != 0 {
		t.Errorf("balancer made %d moves on a balanced job", bal.Moves)
	}
}

// TestDynamicRespectsMaxDiff: the difference never exceeds the bound.
func TestDynamicRespectsMaxDiff(t *testing.T) {
	job := steadyJob([]int64{1000, 64000, 1000, 64000}, 10)
	pl := mpisim.DefaultPlacement(4)
	bal := NewDynamic(DynamicConfig{CPU: pl.CPU, MaxDiff: 2})
	cfg := quietCfg()
	cfg.OnIteration = bal.OnIteration
	if _, err := mpisim.Run(job, pl, cfg); err != nil {
		t.Fatal(err)
	}
	for _, d := range bal.Diffs() {
		if d < -2 || d > 2 {
			t.Errorf("diff %d exceeds MaxDiff 2", d)
		}
	}
}

// TestDynamicInertOnVanillaKernel: without the kernel patch the procfs
// writes fail and the balancer performs no moves — the paper's motivation
// for patching the kernel.
func TestDynamicInertOnVanillaKernel(t *testing.T) {
	job := steadyJob([]int64{4000, 16000, 4000, 16000}, 6)
	pl := mpisim.DefaultPlacement(4)
	bal := NewDynamic(DynamicConfig{CPU: pl.CPU})
	cfg := quietCfg()
	cfg.Kernel = oskernel.Config{Patched: false}
	cfg.OnIteration = bal.OnIteration
	if _, err := mpisim.Run(job, pl, cfg); err != nil {
		t.Fatal(err)
	}
	if bal.Moves != 0 {
		t.Errorf("balancer moved %d times through a nonexistent procfs", bal.Moves)
	}
}

func TestDynamicHysteresis(t *testing.T) {
	// With hysteresis 3, a single imbalanced iteration must not trigger.
	d := NewDynamic(DynamicConfig{CPU: []int{0, 1}, Hysteresis: 3})
	if len(d.Pairs()) != 1 {
		t.Fatal("expected one pair")
	}
	ev := mpisim.IterationEvent{
		Arrival: []int64{1000, 100},
		Release: 1000,
	}
	// Kernel nil would panic on apply; hysteresis must prevent reaching
	// apply for the first two calls.
	d.lastRelease = 0
	func() {
		defer func() { recover() }()
		d.OnIteration(ev)
	}()
	if d.Diffs()[0] != 0 {
		t.Error("moved before hysteresis expired")
	}
}
