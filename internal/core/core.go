// Package core implements the paper's contribution: balancing an HPC
// application by re-assigning POWER5 hardware thread priorities (and core
// placements) so that the most compute-intensive process of each core gets
// more decode cycles, shrinking the waiting time of every other process
// (Section IV).
//
// Two balancers are provided:
//
//   - The static planner (PlanStatic/PlanPair) reproduces what the authors
//     did by hand for Tables IV-VI: pair heavy ranks with light ranks on
//     the same core and pick the priority difference whose predicted
//     finish times are closest, using the decode-share performance model
//     of Section V-A.
//
//   - The dynamic balancer (Dynamic) is the extension the paper proposes
//     as future work (Section VIII): it observes per-iteration barrier
//     arrival times through the MPI runtime and retunes priorities online
//     through the patched kernel's /proc/<PID>/hmt_priority interface,
//     which is what applications with a moving bottleneck (SIESTA) need.
package core

import (
	"fmt"
	"sort"

	"repro/internal/hwpri"
)

// Model is the performance model used by the static planner: a rank's
// throughput is the smaller of its intrinsic demand and its decode-cycle
// supply, the latter being the Table II share of the DecodeWidth-wide
// decode stage.
type Model struct {
	// DecodeWidth is the decode width of the core (POWER5: 5).
	DecodeWidth float64
	// Demand is the unconstrained IPC of a compute-bound rank; the
	// calibrated kernels sit near 16/6 ≈ 2.7 (see internal/workload).
	Demand float64
}

// DefaultModel returns the model matching the calibrated simulator.
func DefaultModel() Model { return Model{DecodeWidth: 5, Demand: 8.0 / 3.0} }

// speed returns the predicted throughput at decode share s.
func (m Model) speed(s float64) float64 {
	supply := s * m.DecodeWidth
	if supply < m.Demand {
		return supply
	}
	return m.Demand
}

// SpeedPair predicts the (favored, penalized) throughputs, relative to the
// equal-priority throughput, for a priority difference d ≥ 0.
func (m Model) SpeedPair(d int) (favored, penalized float64) {
	if d < 0 {
		d = -d
	}
	base := m.speed(0.5)
	if d == 0 {
		return 1, 1
	}
	if d > 4 {
		d = 4
	}
	r := float64(int(1) << (d + 1))
	return m.speed((r-1)/r) / base, m.speed(1/r) / base
}

// prioPairs maps a priority difference 0..4 to the (favored, penalized)
// hardware priorities within the OS-settable range, following the paper's
// choices (e.g. Case C of Table IV uses 6 and 4 for a difference of 2).
var prioPairs = [5][2]hwpri.Priority{
	{hwpri.Medium, hwpri.Medium},     // 0: 4,4
	{hwpri.MediumHigh, hwpri.Medium}, // 1: 5,4
	{hwpri.High, hwpri.Medium},       // 2: 6,4
	{hwpri.High, hwpri.MediumLow},    // 3: 6,3
	{hwpri.High, hwpri.Low},          // 4: 6,2
}

// PrioritiesFor returns the (favored, penalized) priorities implementing a
// difference d in the OS-settable range; d is clamped to [0, 4].
func PrioritiesFor(d int) (hwpri.Priority, hwpri.Priority) {
	if d < 0 {
		d = 0
	}
	if d > 4 {
		d = 4
	}
	return prioPairs[d][0], prioPairs[d][1]
}

// PairPlan is the priority assignment for the two ranks of one core.
type PairPlan struct {
	// Diff is the chosen priority difference (0..4).
	Diff int
	// HeavyPrio and LightPrio are the hardware priorities for the more
	// and less loaded rank.
	HeavyPrio, LightPrio hwpri.Priority
	// PredictedMakespan is the model's predicted core finish time,
	// normalized to the heavy rank's equal-priority time.
	PredictedMakespan float64
}

// PlanPair picks the priority difference minimizing the predicted core
// makespan for two ranks with the given relative works (heavy ≥ light not
// required; works are per-rank compute amounts in any consistent unit).
func PlanPair(heavyWork, lightWork float64, m Model) PairPlan {
	if heavyWork < lightWork {
		heavyWork, lightWork = lightWork, heavyWork
	}
	if heavyWork <= 0 {
		return PairPlan{Diff: 0, HeavyPrio: hwpri.Medium, LightPrio: hwpri.Medium, PredictedMakespan: 0}
	}
	best := PairPlan{Diff: -1}
	for d := 0; d <= 4; d++ {
		fav, pen := m.SpeedPair(d)
		tHeavy := heavyWork / fav
		tLight := lightWork / pen
		makespan := tHeavy
		if tLight > makespan {
			makespan = tLight
		}
		makespan /= heavyWork // normalize to heavy equal-priority time
		if best.Diff < 0 || makespan < best.PredictedMakespan {
			hi, lo := PrioritiesFor(d)
			best = PairPlan{Diff: d, HeavyPrio: hi, LightPrio: lo, PredictedMakespan: makespan}
		}
	}
	return best
}

// StaticPlan is a full placement + priority assignment for a job.
type StaticPlan struct {
	// CPU maps rank -> logical CPU.
	CPU []int
	// Prio maps rank -> hardware priority.
	Prio []hwpri.Priority
	// PredictedMakespan is the model's predicted application finish
	// time, normalized as in PairPlan.
	PredictedMakespan float64
}

// PlanStatic builds a static plan for ranks with the given per-iteration
// works on a machine with cores 2-way-SMT cores.  It sorts the ranks by
// work and pairs the heaviest with the lightest on the same core (the
// paper's BT-MZ strategy: P4 shares a core with P1), then picks each
// pair's priority difference with PlanPair.
func PlanStatic(work []float64, cores int, m Model) (StaticPlan, error) {
	n := len(work)
	if n == 0 || n%2 != 0 {
		return StaticPlan{}, fmt.Errorf("core: need an even number of ranks, got %d", n)
	}
	if n > 2*cores {
		return StaticPlan{}, fmt.Errorf("core: %d ranks exceed %d SMT contexts", n, 2*cores)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return work[order[a]] > work[order[b]] })

	plan := StaticPlan{CPU: make([]int, n), Prio: make([]hwpri.Priority, n)}
	for pair := 0; pair < n/2; pair++ {
		heavy := order[pair]
		light := order[n-1-pair]
		pp := PlanPair(work[heavy], work[light], m)
		// Heavy rank on the pair's first context, light on the second.
		plan.CPU[heavy] = 2 * pair
		plan.CPU[light] = 2*pair + 1
		plan.Prio[heavy] = pp.HeavyPrio
		plan.Prio[light] = pp.LightPrio
		if pp.PredictedMakespan*work[heavy] > plan.PredictedMakespan {
			plan.PredictedMakespan = pp.PredictedMakespan * work[heavy]
		}
	}
	return plan, nil
}
