package core

import (
	"math"
	"testing"

	"repro/internal/hwpri"
)

// tierComm is a test stand-in for mpisim.TopologyCommLatency on a
// 2-chip, 2-cores-per-chip, 2-way machine: CPUs 0..3 are chip 0.
func tierComm(cpuA, cpuB int, bytes int64) int64 {
	base := int64(300)
	switch {
	case cpuA/2 == cpuB/2:
	case cpuA/4 == cpuB/4:
		base = 800
	default:
		base = 2500
	}
	return base + bytes/128
}

func computeOnly(works ...float64) []RankLoad {
	loads := make([]RankLoad, len(works))
	for i, w := range works {
		loads[i] = RankLoad{Compute: w}
	}
	return loads
}

func TestPredictCyclesEqualPriorities(t *testing.T) {
	m := DefaultModel()
	loads := computeOnly(10000, 10000)
	got := m.PredictCycles(loads, []int{0, 1}, []hwpri.Priority{hwpri.Medium, hwpri.Medium}, nil)
	// Equal priorities halve the decode stage: share 0.5 of width 5 is
	// 2.5 IPC, under the 8/3 demand, so 10000 instructions take 4000
	// cycles.
	want := 10000 / m.speed(0.5)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PredictCycles = %v, want %v", got, want)
	}
}

func TestPredictCyclesFavoredRankSaturates(t *testing.T) {
	m := DefaultModel()
	loads := computeOnly(40000, 10000)
	base := m.PredictCycles(loads, []int{0, 1}, []hwpri.Priority{hwpri.Medium, hwpri.Medium}, nil)
	boosted := m.PredictCycles(loads, []int{0, 1}, []hwpri.Priority{hwpri.MediumHigh, hwpri.Medium}, nil)
	if boosted >= base {
		t.Fatalf("favoring the heavy rank did not help: %v >= %v", boosted, base)
	}
	// At difference >= 1 the favored share (>= 3/4 of width 5) already
	// oversupplies the 8/3 demand, so the heavy rank runs at full speed.
	want := 40000 / m.Demand
	if math.Abs(boosted-want) > 1e-9 {
		t.Fatalf("boosted makespan = %v, want demand-limited %v", boosted, want)
	}
}

func TestPredictCyclesPenalizedRankDominates(t *testing.T) {
	m := DefaultModel()
	// A huge difference starves the light rank until it is the critical
	// path: share 1/32 of width 5 is 0.15625 IPC.
	loads := computeOnly(40000, 10000)
	got := m.PredictCycles(loads, []int{0, 1}, []hwpri.Priority{hwpri.High, hwpri.Low}, nil)
	fav, pen := decodeShare(4)
	tHeavy := 40000 / m.speed(fav)
	tLight := 10000 / m.speed(pen)
	want := math.Max(tHeavy, tLight)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PredictCycles = %v, want %v", got, want)
	}
	if want != tLight {
		t.Fatalf("test premise broken: light rank should dominate (%v vs %v)", tLight, tHeavy)
	}
}

func TestPredictCyclesLoneRank(t *testing.T) {
	m := DefaultModel()
	got := m.PredictCycles(computeOnly(10000), []int{0}, []hwpri.Priority{hwpri.Medium}, nil)
	want := 10000 / m.Demand // full decode stage: demand-limited
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("lone rank = %v, want %v", got, want)
	}
}

func TestPredictCyclesMonotonicInWork(t *testing.T) {
	m := DefaultModel()
	cpu := []int{0, 1}
	prio := []hwpri.Priority{hwpri.Medium, hwpri.Medium}
	prev := 0.0
	for w := 1000.0; w <= 64000; w *= 2 {
		got := m.PredictCycles(computeOnly(w, 1000), cpu, prio, nil)
		if got <= prev {
			t.Fatalf("work %v: predicted %v not > previous %v", w, got, prev)
		}
		prev = got
	}
}

func TestPredictCyclesCommTiers(t *testing.T) {
	m := DefaultModel()
	mk := func(peerOf []int) []RankLoad {
		loads := make([]RankLoad, len(peerOf))
		for i, p := range peerOf {
			loads[i] = RankLoad{Compute: 1000, Exchanges: []ExchangeLoad{{Bytes: 1 << 14, Peers: []int{p}}}}
		}
		return loads
	}
	prio := make([]hwpri.Priority, 4)
	for i := range prio {
		prio[i] = hwpri.Medium
	}
	loads := mk([]int{1, 0, 3, 2})
	// Exchange partners sharing a core vs split across chips.
	sameCore := m.PredictCycles(loads, []int{0, 1, 4, 5}, prio, tierComm)
	crossChip := m.PredictCycles(loads, []int{0, 4, 1, 5}, prio, tierComm)
	if sameCore >= crossChip {
		t.Fatalf("same-core partners (%v) should beat cross-chip partners (%v)", sameCore, crossChip)
	}
	if diff := crossChip - sameCore; math.Abs(diff-(2500-300)) > 1e-9 {
		t.Fatalf("tier delta = %v, want %v", diff, 2500-300)
	}
}

func TestPredictCyclesExchangeMaxOverPeers(t *testing.T) {
	m := DefaultModel()
	loads := []RankLoad{
		{Compute: 1000, Exchanges: []ExchangeLoad{{Bytes: 0, Peers: []int{1, 2}}}},
		{Compute: 1000}, {Compute: 1000}, {Compute: 1000},
	}
	prio := []hwpri.Priority{hwpri.Medium, hwpri.Medium, hwpri.Medium, hwpri.Medium}
	got := m.PredictCycles(loads, []int{0, 1, 4, 5}, prio, tierComm)
	// Rank 0's exchange has a same-core leg (300) and a cross-chip leg
	// (2500); the phase costs the slowest leg.
	want := 1000/m.speed(0.5) + 2500
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PredictCycles = %v, want %v", got, want)
	}
}

func TestPredictCyclesIgnoresOutOfRangePeers(t *testing.T) {
	m := DefaultModel()
	loads := []RankLoad{
		{Compute: 1000, Exchanges: []ExchangeLoad{{Bytes: 4096, Peers: []int{-1, 99}}}},
		{Compute: 1000},
	}
	prio := []hwpri.Priority{hwpri.Medium, hwpri.Medium}
	got := m.PredictCycles(loads, []int{0, 1}, prio, tierComm)
	want := 1000 / m.speed(0.5) // bogus peers price nothing
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PredictCycles = %v, want %v", got, want)
	}
}

// TestPredictCyclesDemandClasses: a latency-bound class (demand below
// what even the penalized decode share supplies) costs the same however
// the priorities fall, while the elastic class keeps responding to the
// share — so a favored priority only buys back the elastic fraction.
func TestPredictCyclesDemandClasses(t *testing.T) {
	m := DefaultModel()
	mk := func(elastic, bound float64) []RankLoad {
		return []RankLoad{
			{Compute: elastic + bound, Classes: []ComputeClass{
				{Work: elastic}, {Work: bound, Demand: 0.05},
			}},
			{Compute: 1000},
		}
	}
	cpu := []int{0, 1}
	even := []hwpri.Priority{hwpri.Medium, hwpri.Medium}
	favored := []hwpri.Priority{hwpri.MediumHigh, hwpri.Medium}

	// Pure latency-bound work: priority does not move the prediction.
	boundEven := m.PredictCycles(mk(0, 1000), cpu, even, nil)
	boundFav := m.PredictCycles(mk(0, 1000), cpu, favored, nil)
	if want := 1000 / 0.05; math.Abs(boundEven-want) > 1e-9 {
		t.Fatalf("latency-bound class priced at %v, want %v", boundEven, want)
	}
	if boundFav != boundEven {
		t.Fatalf("favoring a latency-bound rank changed its prediction: %v vs %v", boundFav, boundEven)
	}

	// Mixed work: favoring recovers exactly the elastic term's speedup.
	mixEven := m.PredictCycles(mk(10000, 100), cpu, even, nil)
	mixFav := m.PredictCycles(mk(10000, 100), cpu, favored, nil)
	wantGain := 10000/m.speed(0.5) - 10000/m.speed(0.75)
	if gain := mixEven - mixFav; math.Abs(gain-wantGain) > 1e-9 {
		t.Fatalf("favoring recovered %v cycles, want the elastic share's %v", gain, wantGain)
	}

	// Empty Classes falls back to pricing Compute at the default demand.
	flat := []RankLoad{{Compute: 1000}, {Compute: 1000}}
	classed := []RankLoad{{Compute: 1000, Classes: []ComputeClass{{Work: 1000}}}, {Compute: 1000}}
	if a, b := m.PredictCycles(flat, cpu, even, nil), m.PredictCycles(classed, cpu, even, nil); a != b {
		t.Fatalf("a single elastic class (%v) diverges from plain Compute (%v)", b, a)
	}
}
