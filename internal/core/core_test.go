package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hwpri"
)

func TestSpeedPair(t *testing.T) {
	m := DefaultModel()
	f0, p0 := m.SpeedPair(0)
	if f0 != 1 || p0 != 1 {
		t.Errorf("SpeedPair(0) = %f, %f, want 1, 1", f0, p0)
	}
	prevFav, prevPen := f0, p0
	for d := 1; d <= 4; d++ {
		fav, pen := m.SpeedPair(d)
		if fav < prevFav || pen > prevPen {
			t.Errorf("SpeedPair(%d) = %f, %f not monotone vs %f, %f", d, fav, pen, prevFav, prevPen)
		}
		if pen >= 1 {
			t.Errorf("SpeedPair(%d) penalized %f, want < 1", d, pen)
		}
		prevFav, prevPen = fav, pen
	}
	// Negative differences behave like their absolute value.
	fn, pn := m.SpeedPair(-2)
	f2, p2 := m.SpeedPair(2)
	if fn != f2 || pn != p2 {
		t.Error("SpeedPair not symmetric in sign")
	}
	// Beyond 4 the mechanism saturates (Table II stops at |X-Y| = 4).
	f5, p5 := m.SpeedPair(5)
	f4, p4 := m.SpeedPair(4)
	if f5 != f4 || p5 != p4 {
		t.Error("SpeedPair not clamped at difference 4")
	}
	// The penalized side collapses exponentially: each step at least
	// roughly halves the throughput once decode-bound.
	_, pen2 := m.SpeedPair(2)
	_, pen3 := m.SpeedPair(3)
	_, pen4 := m.SpeedPair(4)
	if pen3 > pen2/1.8 || pen4 > pen3/1.8 {
		t.Errorf("penalized speeds %f %f %f not collapsing exponentially", pen2, pen3, pen4)
	}
}

func TestPrioritiesFor(t *testing.T) {
	cases := map[int][2]hwpri.Priority{
		0:  {hwpri.Medium, hwpri.Medium},
		1:  {hwpri.MediumHigh, hwpri.Medium},
		2:  {hwpri.High, hwpri.Medium},
		3:  {hwpri.High, hwpri.MediumLow},
		4:  {hwpri.High, hwpri.Low},
		7:  {hwpri.High, hwpri.Low},      // clamped
		-3: {hwpri.Medium, hwpri.Medium}, // clamped
	}
	for d, want := range cases {
		hi, lo := PrioritiesFor(d)
		if hi != want[0] || lo != want[1] {
			t.Errorf("PrioritiesFor(%d) = %v, %v, want %v, %v", d, hi, lo, want[0], want[1])
		}
		if int(hi)-int(lo) < 0 {
			t.Errorf("PrioritiesFor(%d) inverted", d)
		}
	}
	// All planner priorities must be settable by the OS (1..6).
	for d := 0; d <= 4; d++ {
		hi, lo := PrioritiesFor(d)
		for _, p := range []hwpri.Priority{hi, lo} {
			if !hwpri.CanSet(hwpri.Supervisor, p) {
				t.Errorf("PrioritiesFor(%d) uses priority %v outside the OS range", d, p)
			}
		}
	}
}

func TestPlanPairBalanced(t *testing.T) {
	pp := PlanPair(100, 100, DefaultModel())
	if pp.Diff != 0 {
		t.Errorf("equal works got diff %d, want 0", pp.Diff)
	}
}

func TestPlanPairSkewed(t *testing.T) {
	m := DefaultModel()
	// The paper's MetBench geometry: light rank ~25% of heavy.  The
	// simulator's Case C (diff 2) was the balanced one; the model must
	// find a nonzero moderate difference.
	pp := PlanPair(100, 25, m)
	if pp.Diff < 1 || pp.Diff > 3 {
		t.Errorf("4x skew planned diff %d, want 1..3", pp.Diff)
	}
	if pp.HeavyPrio <= pp.LightPrio {
		t.Error("heavy rank not favored")
	}
	// Argument order must not matter.
	if rev := PlanPair(25, 100, m); rev != pp {
		t.Errorf("PlanPair not symmetric: %+v vs %+v", rev, pp)
	}
}

func TestPlanPairExtremeSkewClamped(t *testing.T) {
	pp := PlanPair(100, 0.01, DefaultModel())
	if pp.Diff > 4 {
		t.Errorf("diff %d exceeds the architectural range", pp.Diff)
	}
	if pp.PredictedMakespan <= 0 {
		t.Error("no makespan predicted")
	}
	if zero := PlanPair(0, 0, DefaultModel()); zero.Diff != 0 {
		t.Error("zero work must plan diff 0")
	}
}

// Property: PlanPair never predicts a makespan worse than doing nothing
// (diff 0 is always a candidate).
func TestPropPlanPairNeverHurts(t *testing.T) {
	m := DefaultModel()
	f := func(h, l uint16) bool {
		heavy, light := float64(h)+1, float64(l)+1
		if heavy < light {
			heavy, light = light, heavy
		}
		pp := PlanPair(heavy, light, m)
		return pp.PredictedMakespan <= 1.0+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanStatic(t *testing.T) {
	m := DefaultModel()
	// BT-MZ-like works (Table V zone skew).
	work := []float64{18, 29, 67, 100}
	plan, err := PlanStatic(work, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	// Heaviest (rank 3) must share a core with lightest (rank 0), like
	// the paper pairing P4 with P1.
	if plan.CPU[3]/2 != plan.CPU[0]/2 {
		t.Errorf("heaviest and lightest not paired: CPUs %v", plan.CPU)
	}
	if plan.CPU[1]/2 != plan.CPU[2]/2 {
		t.Errorf("middle ranks not paired: CPUs %v", plan.CPU)
	}
	if plan.Prio[3] <= plan.Prio[0] {
		t.Error("heaviest rank not favored over lightest")
	}
	if plan.Prio[2] < plan.Prio[1] {
		t.Error("heavier middle rank not favored")
	}
	// All CPUs distinct.
	seen := map[int]bool{}
	for _, c := range plan.CPU {
		if seen[c] {
			t.Fatalf("CPU %d assigned twice", c)
		}
		seen[c] = true
	}
}

func TestPlanStaticErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := PlanStatic(nil, 2, m); err == nil {
		t.Error("empty works accepted")
	}
	if _, err := PlanStatic([]float64{1, 2, 3}, 2, m); err == nil {
		t.Error("odd rank count accepted")
	}
	if _, err := PlanStatic([]float64{1, 2, 3, 4, 5, 6}, 2, m); err == nil {
		t.Error("more ranks than contexts accepted")
	}
}
