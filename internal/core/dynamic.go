package core

import (
	"repro/internal/hwpri"
	"repro/internal/mpisim"
)

// DynamicConfig parameterizes the online balancer.
type DynamicConfig struct {
	// CPU maps rank -> logical CPU (the job's placement); ranks sharing
	// a core (cpu/2) form a balancing pair.
	CPU []int
	// Threshold is the relative arrival gap (gap / iteration length)
	// above which the balancer reacts.  Default 0.05.
	Threshold float64
	// MaxDiff bounds the priority difference; the paper's Case D results
	// (Section VII-A) show the penalty grows exponentially, so the
	// default stays at 3.
	MaxDiff int
	// Hysteresis is the number of consecutive iterations the imbalance
	// must point the same way before the balancer moves, damping
	// oscillation and startup transients.  Default 2.
	Hysteresis int
}

// Dynamic is the online balancer: attach its OnIteration method to
// mpisim.Config.OnIteration.  At every barrier release it compares the
// arrival times of the two ranks of each core; if one rank consistently
// arrives late, the balancer raises the priority difference in its favor
// through the patched kernel's procfs interface, and backs off when the
// imbalance inverts.  It is application-agnostic and fully transparent —
// exactly the OS-level mechanism the paper argues for in Section VIII.
type Dynamic struct {
	cfg   DynamicConfig
	pairs [][2]int // rank pairs sharing a core
	// diff is the current signed priority difference per pair: positive
	// favors pairs[i][0].
	diff []int
	// streak counts consecutive iterations the imbalance pointed in
	// lastDir's direction.
	streak  []int
	lastDir []int
	// lastRelease is the previous barrier release cycle.
	lastRelease int64
	// Moves counts priority rewrites performed (for reporting).
	Moves int
}

// NewDynamic builds a dynamic balancer for the given placement.
func NewDynamic(cfg DynamicConfig) *Dynamic {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.05
	}
	if cfg.MaxDiff <= 0 {
		cfg.MaxDiff = 3
	}
	if cfg.MaxDiff > 4 {
		cfg.MaxDiff = 4
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	d := &Dynamic{cfg: cfg}
	byCore := map[int][]int{}
	maxCore := 0
	for rank, cpu := range cfg.CPU {
		byCore[cpu/2] = append(byCore[cpu/2], rank)
		if cpu/2 > maxCore {
			maxCore = cpu / 2
		}
	}
	// Walk cores up to the highest one actually used: a placement may
	// pin its ranks to high core indices (e.g. a 2-rank job on the
	// second chip), and those pairs must be managed too.
	for core := 0; core <= maxCore; core++ {
		if ranks := byCore[core]; len(ranks) == 2 {
			d.pairs = append(d.pairs, [2]int{ranks[0], ranks[1]})
		}
	}
	d.diff = make([]int, len(d.pairs))
	d.streak = make([]int, len(d.pairs))
	d.lastDir = make([]int, len(d.pairs))
	return d
}

// Pairs returns the rank pairs the balancer manages.
func (d *Dynamic) Pairs() [][2]int { return d.pairs }

// Diffs returns the current signed priority difference per pair.
func (d *Dynamic) Diffs() []int { return append([]int(nil), d.diff...) }

// Action is one priority write a balancing decision requests: set rank
// Rank's hardware thread priority to Prio through the procfs interface.
type Action struct {
	Rank int
	Prio hwpri.Priority
}

// Observe consumes one iteration's observations (per-rank compute
// cycles, barrier arrival cycles, the release cycle) and returns the
// priority writes to perform, grouped per pair in (favored rank first)
// order.  It is the pure decision half of the balancer: the caller — the
// mpisim OnIteration adapter below, or the public policy engine — owns
// applying the actions through the kernel.
func (d *Dynamic) Observe(compute, arrival []int64, release int64) []Action {
	iterLen := release - d.lastRelease
	d.lastRelease = release
	if iterLen <= 0 {
		return nil
	}
	var acts []Action
	for i, pair := range d.pairs {
		a, b := pair[0], pair[1]
		// Prefer the per-rank computation time (what the paper's OS
		// balancer would sample); barrier arrival can be synchronized
		// by exchange coupling and carries no per-rank signal then.
		signal := compute
		if signal == nil {
			signal = arrival
		}
		gap := float64(signal[a]-signal[b]) / float64(iterLen)
		// gap > 0: rank a is the pair's bottleneck.
		dir := 0
		switch {
		case gap > d.cfg.Threshold:
			dir = 1
		case gap < -d.cfg.Threshold:
			dir = -1
		}
		if dir == 0 {
			d.streak[i], d.lastDir[i] = 0, 0
			continue
		}
		if dir != d.lastDir[i] {
			d.lastDir[i] = dir
			d.streak[i] = 1
		} else {
			d.streak[i]++
		}
		if d.streak[i] < d.cfg.Hysteresis {
			continue
		}
		d.streak[i] = 0
		want := d.diff[i] + dir
		if want > d.cfg.MaxDiff {
			want = d.cfg.MaxDiff
		}
		if want < -d.cfg.MaxDiff {
			want = -d.cfg.MaxDiff
		}
		if want == d.diff[i] {
			continue
		}
		d.diff[i] = want
		var pa, pb hwpri.Priority
		if want >= 0 {
			pa, pb = PrioritiesFor(want)
		} else {
			pb, pa = PrioritiesFor(-want)
		}
		acts = append(acts, Action{Rank: a, Prio: pa}, Action{Rank: b, Prio: pb})
	}
	return acts
}

// OnIteration implements the mpisim iteration hook: decide with Observe,
// then apply each pair's writes through procfs.  Best effort: on a
// vanilla kernel the file does not exist and the balancer is inert, as
// in reality.  Moves counts the pairs whose writes took effect.
func (d *Dynamic) OnIteration(ev mpisim.IterationEvent) {
	acts := d.Observe(ev.ComputeCycles, ev.Arrival, ev.Release)
	for i := 0; i+1 < len(acts); i += 2 {
		if !ev.ApplyPriority(acts[i].Rank, acts[i].Prio) {
			continue
		}
		if !ev.ApplyPriority(acts[i+1].Rank, acts[i+1].Prio) {
			continue
		}
		d.Moves++
	}
}
