package core

import (
	"repro/internal/hwpri"
	"repro/internal/mpisim"
)

// DynamicConfig parameterizes the online balancer.
type DynamicConfig struct {
	// CPU maps rank -> logical CPU (the job's placement); ranks sharing
	// a core (cpu/2) form a balancing pair.
	CPU []int
	// Threshold is the relative arrival gap (gap / iteration length)
	// above which the balancer reacts.  Default 0.05.
	Threshold float64
	// MaxDiff bounds the priority difference; the paper's Case D results
	// (Section VII-A) show the penalty grows exponentially, so the
	// default stays at 3.
	MaxDiff int
	// Hysteresis is the number of consecutive iterations the imbalance
	// must point the same way before the balancer moves, damping
	// oscillation and startup transients.  Default 2.
	Hysteresis int
}

// Dynamic is the online balancer: attach its OnIteration method to
// mpisim.Config.OnIteration.  At every barrier release it compares the
// arrival times of the two ranks of each core; if one rank consistently
// arrives late, the balancer raises the priority difference in its favor
// through the patched kernel's procfs interface, and backs off when the
// imbalance inverts.  It is application-agnostic and fully transparent —
// exactly the OS-level mechanism the paper argues for in Section VIII.
type Dynamic struct {
	cfg   DynamicConfig
	pairs [][2]int // rank pairs sharing a core
	// diff is the current signed priority difference per pair: positive
	// favors pairs[i][0].
	diff []int
	// streak counts consecutive iterations the imbalance pointed in
	// lastDir's direction.
	streak  []int
	lastDir []int
	// lastRelease is the previous barrier release cycle.
	lastRelease int64
	// Moves counts priority rewrites performed (for reporting).
	Moves int
}

// NewDynamic builds a dynamic balancer for the given placement.
func NewDynamic(cfg DynamicConfig) *Dynamic {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.05
	}
	if cfg.MaxDiff <= 0 {
		cfg.MaxDiff = 3
	}
	if cfg.MaxDiff > 4 {
		cfg.MaxDiff = 4
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	d := &Dynamic{cfg: cfg}
	byCore := map[int][]int{}
	for rank, cpu := range cfg.CPU {
		byCore[cpu/2] = append(byCore[cpu/2], rank)
	}
	for core := 0; core < len(cfg.CPU); core++ {
		if ranks := byCore[core]; len(ranks) == 2 {
			d.pairs = append(d.pairs, [2]int{ranks[0], ranks[1]})
		}
	}
	d.diff = make([]int, len(d.pairs))
	d.streak = make([]int, len(d.pairs))
	d.lastDir = make([]int, len(d.pairs))
	return d
}

// Pairs returns the rank pairs the balancer manages.
func (d *Dynamic) Pairs() [][2]int { return d.pairs }

// Diffs returns the current signed priority difference per pair.
func (d *Dynamic) Diffs() []int { return append([]int(nil), d.diff...) }

// OnIteration implements the mpisim iteration hook.
func (d *Dynamic) OnIteration(ev mpisim.IterationEvent) {
	iterLen := ev.Release - d.lastRelease
	d.lastRelease = ev.Release
	if iterLen <= 0 {
		return
	}
	for i, pair := range d.pairs {
		a, b := pair[0], pair[1]
		// Prefer the per-rank computation time (what the paper's OS
		// balancer would sample); barrier arrival can be synchronized
		// by exchange coupling and carries no per-rank signal then.
		signal := ev.ComputeCycles
		if signal == nil {
			signal = ev.Arrival
		}
		gap := float64(signal[a]-signal[b]) / float64(iterLen)
		// gap > 0: rank a is the pair's bottleneck.
		dir := 0
		switch {
		case gap > d.cfg.Threshold:
			dir = 1
		case gap < -d.cfg.Threshold:
			dir = -1
		}
		if dir == 0 {
			d.streak[i], d.lastDir[i] = 0, 0
			continue
		}
		if dir != d.lastDir[i] {
			d.lastDir[i] = dir
			d.streak[i] = 1
		} else {
			d.streak[i]++
		}
		if d.streak[i] < d.cfg.Hysteresis {
			continue
		}
		d.streak[i] = 0
		want := d.diff[i] + dir
		if want > d.cfg.MaxDiff {
			want = d.cfg.MaxDiff
		}
		if want < -d.cfg.MaxDiff {
			want = -d.cfg.MaxDiff
		}
		if want == d.diff[i] {
			continue
		}
		d.diff[i] = want
		d.apply(ev, i)
	}
}

// apply writes the pair's current priorities through procfs.
func (d *Dynamic) apply(ev mpisim.IterationEvent, i int) {
	a, b := d.pairs[i][0], d.pairs[i][1]
	diff := d.diff[i]
	var pa, pb hwpri.Priority
	if diff >= 0 {
		pa, pb = PrioritiesFor(diff)
	} else {
		pb, pa = PrioritiesFor(-diff)
	}
	// Best effort: on a vanilla kernel the file does not exist and the
	// balancer is inert, as in reality.
	if err := ev.Kernel.WriteHMTPriority(ev.PIDs[a], pa); err != nil {
		return
	}
	if err := ev.Kernel.WriteHMTPriority(ev.PIDs[b], pb); err != nil {
		return
	}
	d.Moves++
}
