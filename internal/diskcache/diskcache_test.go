package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := "0123abcd-run"
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get on empty store = ok %v, err %v", ok, err)
	}
	want := []byte(`{"cycles": 42}`)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, ok %v, err %v", got, ok, err)
	}
	// Write-once: a second Put (even with different bytes — impossible
	// for honest content-addressed callers) leaves the record alone.
	if err := s.Put(key, []byte("other")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get(key)
	if !bytes.Equal(got, want) {
		t.Errorf("Put overwrote an existing record: %q", got)
	}
	if n, err := s.Len(); n != 1 || err != nil {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestVersionIsolation(t *testing.T) {
	root := t.TempDir()
	s1, err := Open(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("deadbeef", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get("deadbeef"); ok {
		t.Error("v2 store sees v1 record")
	}
}

func TestRejectsBadKeysAndVersions(t *testing.T) {
	if _, err := Open(t.TempDir(), "a/b"); err == nil {
		t.Error("Open accepted a version with a separator")
	}
	if _, err := Open("", "v1"); err == nil {
		t.Error("Open accepted an empty root")
	}
	s, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "ab", "../../../../etc/passwd", "ABCDEF", "abcd/ef", "..aa", "a.bcd"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted key %q", key)
		}
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get accepted key %q", key)
		}
	}
}

// TestConcurrentPutGet exercises the atomic-rename protocol: many
// goroutines writing and reading the same keys must never observe a
// partial record.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	record := func(i int) ([]byte, string) {
		return bytes.Repeat([]byte{byte('a' + i)}, 4096), fmt.Sprintf("%08x", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				data, key := record(i)
				if err := s.Put(key, data); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get(key)
				if err != nil || !ok || !bytes.Equal(got, data) {
					t.Errorf("key %s: ok %v err %v, %d bytes", key, ok, err, len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	// No temp droppings left behind.
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*", "put-*.tmp"))
	if err != nil || len(matches) != 0 {
		t.Errorf("leftover temp files: %v (%v)", matches, err)
	}
}

// TestCorruptRecordSurfacesAsData ensures Get hands corrupt bytes back
// to the caller (the cache layers above decide to treat decode failures
// as misses) rather than failing.
func TestCorruptRecordSurfacesAsData(t *testing.T) {
	s, err := Open(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := "feedface-run"
	if err := os.MkdirAll(filepath.Join(s.Dir(), key[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), key[:2], key+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Get(key)
	if err != nil || !ok || string(data) != "not json" {
		t.Fatalf("Get = %q, ok %v, err %v", data, ok, err)
	}
}
