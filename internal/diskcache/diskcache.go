// Package diskcache implements the persistent tier of the simulator's
// result cache: a content-addressed on-disk store mapping canonical
// cache-key strings to immutable records.
//
// The simulator is pure and its cache keys are collision-free SHA-256
// hashes of the full configuration, so a record never changes once
// written — the store exploits that: writes are write-once (a Put of an
// existing key is a no-op), readers never need locks, and several
// processes may share one directory (replicas behind a load balancer,
// a server restarted in place) without coordination.  Atomicity comes
// from the classic write-to-temp-then-rename dance, so a crashed or
// concurrent writer can never leave a half-written record where a
// reader would find it.
//
// The directory layout is versioned: records live under
// <root>/<version>/<key[:2]>/<key>.json, where version names the cache
// key format and record schema together.  Bumping the version on a
// format change makes old trees invisible (and harmless) instead of
// corrupt.
package diskcache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is a handle on one versioned cache directory.  The zero value
// is not usable; call Open.  A Store is safe for concurrent use by any
// number of goroutines and processes.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at
// root/version.  The version string becomes a path component, so it
// must be non-empty and free of separators.
func Open(root, version string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("diskcache: empty root directory")
	}
	if version == "" || version != filepath.Base(version) {
		return nil, fmt.Errorf("diskcache: invalid version %q", version)
	}
	dir := filepath.Join(root, version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's versioned directory.
func (s *Store) Dir() string { return s.dir }

// checkKey rejects keys that could escape the store directory or
// collide with its temp files.  Valid keys are at least 4 characters of
// lowercase alphanumerics; dashes and dots are allowed past the fanout
// prefix (the cache layers suffix keys with their record kind, e.g.
// "<hex>-run"), so the two leading characters — which become a
// directory component — can never spell a traversal.
func checkKey(key string) error {
	if len(key) < 4 {
		return fmt.Errorf("diskcache: key %q too short", key)
	}
	for i, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z':
		case (c == '-' || c == '.') && i >= 2:
		default:
			return fmt.Errorf("diskcache: invalid key %q", key)
		}
	}
	return nil
}

// path maps a key to its record file, fanned out on the first two hex
// characters so no single directory grows into the millions.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the record stored under key, or ok=false if none exists.
// IO errors other than absence are returned so callers can decide
// whether to degrade (the cache layers treat them as misses).
func (s *Store) Get(key string) (data []byte, ok bool, err error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("diskcache: %w", err)
	}
	return data, true, nil
}

// Put stores data under key atomically: the record is written to a
// temporary file in the same directory and renamed into place, so
// concurrent readers (and writers of the same key — the store is
// content-addressed, all writers carry identical bytes) only ever see
// complete records.  Putting an existing key is a cheap no-op.
func (s *Store) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		return nil // write-once: the record is already there
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	return nil
}

// Len walks the store and counts its records — an O(entries) diagnostic
// for tests and tooling, not for request paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
