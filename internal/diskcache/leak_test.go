package diskcache

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if a test leaks a goroutine: the store is
// purely synchronous, so any goroutine here is a regression.
func TestMain(m *testing.M) { leakcheck.Main(m) }
