// Package workload provides the synthetic computational kernels used by
// the reproduction's benchmarks.  They play the role of MetBench's "loads"
// (Section VII-A of the paper): each kernel stresses one processor
// resource — floating point units, fixed point units, the L1/L2 caches,
// the memory subsystem, or the branch predictor — for a configurable
// number of instructions, deterministically.
//
// A kernel is an isa.Stream generator: given a Load description it yields
// the dynamic instruction sequence, including effective addresses with the
// kind's locality profile, dependency distances that shape attainable ILP,
// and branch outcomes.
package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Kind selects a kernel family.
type Kind uint8

// Kernel kinds.
const (
	// FPU is a floating-point-bound kernel (dense FMA loops).
	FPU Kind = iota
	// FXU is a fixed-point/integer kernel.
	FXU
	// L1 is a load/store kernel whose footprint fits the L1 data cache.
	L1
	// L2 is a load/store kernel whose footprint fits the shared L2 but
	// not the L1.
	L2
	// Mem streams random accesses over a footprint larger than the L3.
	Mem
	// Branchy is a control-flow-heavy kernel with data-dependent branches.
	Branchy
	// Mixed blends the other kinds, approximating a real solver loop.
	Mixed
	// Spin is the user-level busy-wait loop an MPI rank executes while
	// polling a completion flag; it is infinite (Load.N is ignored).
	Spin
	numKinds
)

var kindNames = [numKinds]string{"fpu", "fxu", "l1", "l2", "mem", "branchy", "mixed", "spin"}

// String returns the kernel family name.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// ParseKind maps a name back to its Kind.
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown kind %q", name)
}

// Load describes one kernel instance.
type Load struct {
	// Kind selects the kernel family.
	Kind Kind
	// N is the number of instructions to execute (ignored by Spin,
	// which runs forever).
	N int64
	// Footprint overrides the kind's default data footprint in bytes.
	Footprint int64
	// Base is the start of the kernel's address range.  MPI processes
	// have disjoint address spaces; the runtime gives each rank a
	// distinct base.
	Base uint64
	// Seed drives the kernel's deterministic pseudo-random choices.
	Seed uint64
}

// defaultFootprints per kind, in bytes.  The L1 kernel fits the 32 KB L1D;
// the L2 kernel fits the shared 2 MB L2 (but two co-running instances
// pressure each other); Mem exceeds the 32 MB L3.
var defaultFootprints = [numKinds]int64{
	FPU:     12 << 10,
	FXU:     12 << 10,
	L1:      16 << 10,
	L2:      512 << 10,
	Mem:     64 << 20,
	Branchy: 8 << 10,
	Mixed:   16 << 10,
	Spin:    6 << 10,
}

// EffectiveFootprint returns the data footprint the load will touch: the
// explicit Footprint if set, the kind default otherwise.
func (l Load) EffectiveFootprint() int64 {
	if l.Footprint > 0 {
		return l.Footprint
	}
	return defaultFootprints[l.Kind]
}

// footprint returns the effective footprint.
func (l Load) footprint() int64 { return l.EffectiveFootprint() }

// addrMode describes how a memory step generates addresses.
type addrMode uint8

const (
	addrNone  addrMode = iota
	addrSeq            // sequential 8-byte walk over the footprint
	addrRand           // uniform random line within the footprint
	addrFixed          // always the base address (a polled flag)
)

// step is one slot of a kernel's static loop body.
type step struct {
	op   isa.Op
	dep  uint8
	mode addrMode
	// brRandom marks data-dependent branches (outcome from the LCG);
	// otherwise branches are loop-closing and almost always taken.
	brRandom bool
}

// patterns is the static loop body of each kernel kind.
//
// Calibration note: each compute pattern carries exactly one self-chained
// FP slot ({op: FP, dep: 16} — it depends on itself one iteration back,
// the pattern length being 16).  With the 6-cycle FP latency this caps
// the kernel's unconstrained demand at 16/6 ≈ 2.7 IPC, which is the
// calibration point where the POWER5 behaviours line up: a half share of
// the 5-wide decode (2.5 IPC) just undersupplies the kernel, so a
// spinning sibling costs ~10%, a priority difference of 1 halves the
// penalized thread, and larger differences collapse it exponentially —
// matching the paper's measurements (Tables IV/V).
var patterns = [numKinds][]step{
	FPU: {
		{op: isa.FP, dep: 16}, {op: isa.FP}, {op: isa.Load, mode: addrSeq}, {op: isa.FX},
		{op: isa.FP}, {op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.FX},
		{op: isa.FP}, {op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.FP},
		{op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.FP}, {op: isa.Branch},
	},
	FXU: {
		{op: isa.FP, dep: 16}, {op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.FX},
		{op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.FXMul}, {op: isa.FX},
		{op: isa.FX}, {op: isa.FP}, {op: isa.Store, mode: addrSeq}, {op: isa.FX},
		{op: isa.FX}, {op: isa.FX}, {op: isa.FX}, {op: isa.Branch},
	},
	L1: {
		{op: isa.FP, dep: 16}, {op: isa.Load, mode: addrSeq}, {op: isa.Load, mode: addrSeq}, {op: isa.Store, mode: addrSeq},
		{op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.FP},
		{op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.FX},
		{op: isa.Store, mode: addrSeq}, {op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.Branch},
	},
	L2: {
		// Streaming walk over a footprint larger than L1: one line miss
		// per 16 loads once warm, refilled from the shared L2.
		{op: isa.FP, dep: 16}, {op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.Load, mode: addrSeq},
		{op: isa.FX}, {op: isa.FP}, {op: isa.Load, mode: addrSeq}, {op: isa.FX},
		{op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.FX}, {op: isa.Store, mode: addrSeq},
		{op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.Branch},
	},
	Mem: {
		// Independent random loads so several misses overlap in the
		// MSHRs, as in a pointer-dense but software-prefetched sweep.
		{op: isa.Load, mode: addrRand}, {op: isa.FX}, {op: isa.FX}, {op: isa.FX},
		{op: isa.Load, mode: addrRand}, {op: isa.FX, dep: 1}, {op: isa.FX}, {op: isa.FX},
		{op: isa.Load, mode: addrRand}, {op: isa.FX}, {op: isa.FX}, {op: isa.FX},
		{op: isa.Load, mode: addrRand}, {op: isa.FX}, {op: isa.FX}, {op: isa.Branch},
	},
	Branchy: {
		{op: isa.FX}, {op: isa.Branch, brRandom: true}, {op: isa.FX}, {op: isa.FX},
		{op: isa.Branch, brRandom: true}, {op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.Branch, brRandom: true},
		{op: isa.FX}, {op: isa.FX}, {op: isa.Branch, brRandom: true}, {op: isa.FX},
		{op: isa.Load, mode: addrSeq}, {op: isa.Branch, brRandom: true}, {op: isa.FX}, {op: isa.Branch},
	},
	Mixed: {
		{op: isa.FP, dep: 16}, {op: isa.FX}, {op: isa.Load, mode: addrSeq}, {op: isa.FP},
		{op: isa.Load, mode: addrSeq}, {op: isa.FX}, {op: isa.FP}, {op: isa.Branch, brRandom: true},
		{op: isa.FX}, {op: isa.Store, mode: addrSeq}, {op: isa.FP}, {op: isa.FX},
		{op: isa.Load, mode: addrSeq}, {op: isa.FP}, {op: isa.FXMul}, {op: isa.Branch},
	},
	Spin: {
		// The MPICH busy-wait is not a three-instruction loop: each poll
		// runs the progress engine, walking request queues and socket
		// state with a real L1 footprint.  That queue walk is what makes
		// a spinning rank steal resources from its core sibling — cache
		// lines and decode/issue slots — which is precisely what the
		// paper reclaims by lowering the spinner's priority.
		{op: isa.Load, mode: addrFixed}, {op: isa.FX, dep: 1}, {op: isa.Branch},
		{op: isa.Load, mode: addrSeq}, {op: isa.FX, dep: 1}, {op: isa.FX, dep: 1},
		{op: isa.Branch}, {op: isa.Load, mode: addrSeq}, {op: isa.FX, dep: 1},
		{op: isa.FX}, {op: isa.Branch}, {op: isa.Load, mode: addrSeq},
		{op: isa.FX, dep: 1}, {op: isa.FX, dep: 1}, {op: isa.FX},
		{op: isa.Branch},
	},
}

// pcBase spaces the kinds' pseudo PCs apart so different kernels do not
// alias in the branch predictor by construction.
func pcBase(k Kind) uint32 { return uint32(k) << 16 }

// Gen generates the dynamic instruction stream of one Load.  It implements
// isa.Stream.
type Gen struct {
	load      Load
	pattern   []step
	footprint uint64
	pos       int64
	lcg       uint64
	cursor    uint64
}

// NewGen returns the generator for the load.
func NewGen(l Load) *Gen {
	if l.Kind >= numKinds {
		panic(fmt.Sprintf("workload: invalid kind %d", l.Kind))
	}
	g := &Gen{
		load:      l,
		pattern:   patterns[l.Kind],
		footprint: uint64(l.footprint()),
	}
	g.Reset()
	return g
}

// Stream returns the load's instruction stream (alias for NewGen, reading
// better at call sites: workload.Load{...}.Stream()).
func (l Load) Stream() isa.Stream { return NewGen(l) }

// Next implements isa.Stream.
func (g *Gen) Next(in *isa.Instr) bool {
	if g.load.Kind != Spin && g.load.N > 0 && g.pos >= g.load.N {
		return false
	}
	idx := int(g.pos % int64(len(g.pattern)))
	st := g.pattern[idx]
	in.Op = st.op
	in.Dep = st.dep
	in.PC = pcBase(g.load.Kind) + uint32(idx)*4
	in.Addr = 0
	in.Taken = false
	in.Pri = 0
	switch st.mode {
	case addrSeq:
		in.Addr = g.load.Base + g.cursor%g.footprint
		g.cursor += 8
	case addrRand:
		g.lcg = g.lcg*6364136223846793005 + 1442695040888963407
		// Line-aligned random address within the footprint.
		in.Addr = g.load.Base + (g.lcg>>17)%g.footprint&^uint64(127)
	case addrFixed:
		in.Addr = g.load.Base
	}
	if st.op == isa.Branch {
		if st.brRandom {
			// Data-dependent branches are biased ~81% taken: real
			// solver branches are mostly predictable, unlike the
			// deliberately adversarial Branchy kernel below.
			g.lcg = g.lcg*6364136223846793005 + 1442695040888963407
			if g.load.Kind == Branchy {
				in.Taken = g.lcg>>40&1 == 0
			} else {
				in.Taken = (g.lcg>>40)&15 < 13
			}
		} else {
			// Loop-closing branch: taken except on rare exits.
			in.Taken = g.pos%4096 != 4095
		}
	}
	g.pos++
	return true
}

// Reset implements isa.Stream.
func (g *Gen) Reset() {
	g.pos = 0
	g.lcg = g.load.Seed*2862933555777941757 + 3037000493
	g.cursor = 0
}

// Emitted returns how many instructions have been produced since Reset.
func (g *Gen) Emitted() int64 { return g.pos }

// Kind returns the generator's kernel family.
func (g *Gen) Kind() Kind { return g.load.Kind }
