package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func collect(t *testing.T, l Load, max int) []isa.Instr {
	t.Helper()
	g := NewGen(l)
	var out []isa.Instr
	var in isa.Instr
	for len(out) < max && g.Next(&in) {
		out = append(out, in)
	}
	return out
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		back, err := ParseKind(name)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
	if Kind(99).String() == "" {
		t.Error("invalid kind must still format")
	}
}

func TestFiniteLoadsHonorN(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k == Spin {
			continue
		}
		got := collect(t, Load{Kind: k, N: 100, Seed: 1}, 1000)
		if len(got) != 100 {
			t.Errorf("%v: yielded %d instructions, want 100", k, len(got))
		}
	}
}

func TestSpinIsInfinite(t *testing.T) {
	got := collect(t, Load{Kind: Spin, N: 5}, 10000)
	if len(got) != 10000 {
		t.Fatalf("spin ended after %d instructions", len(got))
	}
	// The poll loop starts by checking the completion flag at the base
	// address, then walks the progress-engine queues (a real footprint).
	if got[0].Op != isa.Load || got[1].Op != isa.FX || got[2].Op != isa.Branch {
		t.Errorf("spin body = %v %v %v", got[0].Op, got[1].Op, got[2].Op)
	}
	if got[0].Addr != got[16].Addr {
		t.Error("spin loop must re-poll the fixed flag address each iteration")
	}
	walked := map[uint64]bool{}
	for _, in := range got {
		if in.Op == isa.Load {
			walked[in.Addr] = true
		}
	}
	if len(walked) < 16 {
		t.Errorf("spin loop touches only %d distinct addresses; the progress engine walk needs a footprint", len(walked))
	}
}

func TestDeterminism(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		l := Load{Kind: k, N: 500, Seed: 42, Base: 1 << 32}
		a := collect(t, l, 500)
		b := collect(t, l, 500)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: instruction %d differs: %+v vs %+v", k, i, a[i], b[i])
			}
		}
	}
}

func TestResetReplays(t *testing.T) {
	g := NewGen(Load{Kind: Mem, N: 200, Seed: 7})
	var first, second []isa.Instr
	var in isa.Instr
	for g.Next(&in) {
		first = append(first, in)
	}
	g.Reset()
	if g.Emitted() != 0 {
		t.Errorf("Emitted after Reset = %d", g.Emitted())
	}
	for g.Next(&in) {
		second = append(second, in)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestSeedChangesRandomAddresses(t *testing.T) {
	a := collect(t, Load{Kind: Mem, N: 64, Seed: 1}, 64)
	b := collect(t, Load{Kind: Mem, N: 64, Seed: 2}, 64)
	same := true
	for i := range a {
		if a[i].Op == isa.Load && a[i].Addr != b[i].Addr {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical random address streams")
	}
}

func TestAddressesStayInFootprint(t *testing.T) {
	const base = uint64(1) << 40
	for k := Kind(0); k < numKinds; k++ {
		l := Load{Kind: k, N: 2000, Base: base, Seed: 3}
		fp := uint64(l.footprint())
		for _, in := range collect(t, l, 2000) {
			if in.Op != isa.Load && in.Op != isa.Store {
				continue
			}
			if in.Addr < base || in.Addr >= base+fp {
				t.Fatalf("%v: address %#x outside [%#x, %#x)", k, in.Addr, base, base+fp)
			}
		}
	}
}

func TestFootprintOverride(t *testing.T) {
	l := Load{Kind: L1, N: 1000, Footprint: 4096, Seed: 1}
	for _, in := range collect(t, l, 1000) {
		if (in.Op == isa.Load || in.Op == isa.Store) && in.Addr >= 4096 {
			t.Fatalf("address %#x escapes the overridden 4 KB footprint", in.Addr)
		}
	}
}

func TestKernelMixes(t *testing.T) {
	count := func(k Kind, op isa.Op) float64 {
		instrs := collect(t, Load{Kind: k, N: 1600, Seed: 1}, 1600)
		n := 0
		for _, in := range instrs {
			if in.Op == op {
				n++
			}
		}
		return float64(n) / float64(len(instrs))
	}
	// The FPU kernel is calibrated to 6/16 FP so that two co-running
	// instances stay just under the two shared FPUs (see the pattern
	// comment); it must still be the most FP-dense kernel.
	if frac := count(FPU, isa.FP); frac < 0.3 {
		t.Errorf("FPU kernel has only %.0f%% FP ops", frac*100)
	}
	if frac := count(FXU, isa.FX); frac < 0.5 {
		t.Errorf("FXU kernel has only %.0f%% FX ops", frac*100)
	}
	memRefs := func(k Kind) float64 { return count(k, isa.Load) + count(k, isa.Store) }
	if frac := memRefs(L1); frac < 0.4 {
		t.Errorf("L1 kernel has only %.0f%% memory references", frac*100)
	}
	if frac := count(Branchy, isa.Branch); frac < 0.25 {
		t.Errorf("Branchy kernel has only %.0f%% branches", frac*100)
	}
}

func TestLoopBranchesMostlyTaken(t *testing.T) {
	instrs := collect(t, Load{Kind: FPU, N: 20000, Seed: 1}, 20000)
	taken, total := 0, 0
	for _, in := range instrs {
		if in.Op == isa.Branch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
	if frac := float64(taken) / float64(total); frac < 0.95 {
		t.Errorf("loop branches taken fraction %.2f, want > 0.95", frac)
	}
}

func TestBranchyBranchesUnpredictableMix(t *testing.T) {
	instrs := collect(t, Load{Kind: Branchy, N: 20000, Seed: 9}, 20000)
	taken, total := 0, 0
	for _, in := range instrs {
		if in.Op == isa.Branch && in.PC != pcBase(Branchy)+15*4 { // skip loop branch
			total++
			if in.Taken {
				taken++
			}
		}
	}
	frac := float64(taken) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("data-dependent branches taken fraction %.2f, want ~0.5", frac)
	}
}

func TestInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGen must panic on invalid kind")
		}
	}()
	NewGen(Load{Kind: numKinds})
}

// Property: every generated instruction is well-formed — valid op, PC within
// the kind's band, memory ops carry addresses, only branches set Taken.
func TestPropWellFormedInstructions(t *testing.T) {
	f := func(rk uint8, seed uint64) bool {
		k := Kind(rk % uint8(numKinds))
		g := NewGen(Load{Kind: k, N: 256, Seed: seed, Base: 1 << 33})
		var in isa.Instr
		for i := 0; i < 256; i++ {
			if !g.Next(&in) {
				return k == Spin || i == 255
			}
			if in.Op > isa.Syscall {
				return false
			}
			if (in.Op == isa.Load || in.Op == isa.Store) && in.Addr < 1<<33 {
				return false
			}
			if in.Taken && in.Op != isa.Branch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
