package workload

import "encoding/binary"

// This file implements isa.FastForwarder for Gen — the state capture the
// phase-skip engine (internal/mpisim) uses to prove that a window of
// execution will repeat exactly.  See the contract on isa.FastForwarder.
//
// Normalization rules, per field:
//
//   - pos: for a finite load the raw position is captured — exhaustion
//     (pos >= N) is an absolute event, so two mid-phase generators only
//     behave identically if their raw progress matches.  For an
//     effectively infinite load (Spin, N <= 0, or N beyond any reachable
//     horizon) only pos mod genPeriod matters: the pattern index is
//     pos mod len(pattern) and the loop-closing branch tests
//     pos mod 4096, and len(pattern) (16 for every kind) divides 4096.
//   - cursor: future sequential addresses are (cursor + 8i) mod
//     footprint, so cursor mod footprint fully determines them; the raw
//     cursor is captured for finite loads for free via determinism, and
//     reduced for infinite ones.
//   - lcg: captured only for kinds whose pattern consumes it
//     (UsesLCG) — for the other kinds the value is pure dead weight that
//     varies with the seed, and the MPI runtime derives per-phase seeds,
//     so including it would spuriously block every match.
//   - Kind, Base, footprint, and (finite) N are captured because they
//     shape every future instruction; Seed is not — it only acts through
//     lcg, which is already covered.
//
// The lcg value needs no counter treatment: it is part of the norm, and
// an LCG step is a fixed affine map, so norm-equal states reproduce the
// same lcg trajectory without extrapolation.
const (
	// genPeriod is the behavioral period of pos for infinite loads: the
	// lcm of the pattern length (16) and the loop-exit modulus (4096).
	genPeriod = 4096
	// ffInfinite is the instruction horizon beyond which a load is
	// treated as infinite for fast-forward purposes: the simulator
	// cannot retire 2^40 instructions within the MaxCycles budget, so
	// such loads never exhaust and their raw position is irrelevant.
	ffInfinite = int64(1) << 40
)

// usesLCG marks the kinds whose pattern consumes the pseudo-random
// state (random addresses or data-dependent branch outcomes), derived
// from the pattern tables so it can never drift out of sync with them.
var usesLCG = func() [numKinds]bool {
	var u [numKinds]bool
	for k := range patterns {
		for _, st := range patterns[k] {
			if st.mode == addrRand || st.brRandom {
				u[k] = true
			}
		}
	}
	return u
}()

// UsesLCG reports whether the kind's kernel consumes its pseudo-random
// state.  The phase-skip engine refuses to extrapolate across compute
// phases of such kinds when their seeds are derived per phase, because
// each phase then starts from a different random state.
func UsesLCG(k Kind) bool { return u8ok(k) && usesLCG[k] }

func u8ok(k Kind) bool { return k < numKinds }

// ffFinite reports whether the load can exhaust within any reachable
// simulation horizon.
func (g *Gen) ffFinite() bool {
	return g.load.Kind != Spin && g.load.N > 0 && g.load.N < ffInfinite
}

// FFSupported implements isa.FastForwarder.
func (g *Gen) FFSupported() bool { return true }

// FFNorm implements isa.FastForwarder.
func (g *Gen) FFNorm(b []byte) []byte {
	b = append(b, 0xF1, byte(g.load.Kind))
	b = binary.LittleEndian.AppendUint64(b, g.load.Base)
	b = binary.LittleEndian.AppendUint64(b, g.footprint)
	if UsesLCG(g.load.Kind) {
		b = binary.LittleEndian.AppendUint64(b, g.lcg)
	}
	if g.ffFinite() {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, uint64(g.load.N))
		b = binary.LittleEndian.AppendUint64(b, uint64(g.pos))
		b = binary.LittleEndian.AppendUint64(b, g.cursor)
	} else {
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint64(b, uint64(g.pos%genPeriod))
		b = binary.LittleEndian.AppendUint64(b, g.cursor%g.footprint)
	}
	return b
}

// FFCtrs implements isa.FastForwarder.
func (g *Gen) FFCtrs(c []int64) []int64 {
	return append(c, g.pos, int64(g.cursor))
}

// FFAdvance implements isa.FastForwarder.
func (g *Gen) FFAdvance(k, dt int64, d []int64) []int64 {
	g.pos += k * d[0]
	g.cursor += uint64(k * d[1])
	return d[2:]
}
