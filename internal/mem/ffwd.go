package mem

import "encoding/binary"

// Fast-forward state capture for the phase-skip engine (see
// isa.FastForwarder for the contract).
//
// The subtlety here is the LRU stamps: they are access-clock values, so
// a line that stays resident without being touched keeps an absolute
// stamp that can never recur — capturing stamps relative to the clock
// would permanently block snapshot matches.  But replacement only ever
// compares stamps *within a set* (the victim is the minimum), so the
// behavioral state of a set is exactly its recency ORDER: the tags of
// the valid ways sorted oldest-to-newest, plus the count of invalid
// ways (invalid ways are interchangeable victims).  That encoding is
// both exact and recurrence-friendly.
//
// On advance, nothing in the arrays needs touching: existing stamps
// keep their order, and future accesses stamp with the (advanced) clock,
// which exceeds every resident stamp just as in an exact run.

// FFNorm appends the cache's replacement-relevant state.  Fully-invalid
// sets are skipped (each entry is prefixed with its set index), so the
// cost scales with the resident footprint, not the cache geometry —
// essential for the 32 MB L3.
func (c *Cache) FFNorm(b []byte) []byte {
	ways := c.cfg.Ways
	var orderBuf [64]int
	for set := 0; set < c.sets; set++ {
		base := set * ways
		live := 0
		for w := 0; w < ways; w++ {
			if c.stamps[base+w] != 0 {
				live++
			}
		}
		if live == 0 {
			continue
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(set))
		b = append(b, byte(ways-live))
		// Insertion-sort the live ways by stamp (stamps are unique:
		// every access increments the clock and writes at most one).
		order := orderBuf[:0]
		if ways > len(orderBuf) {
			order = make([]int, 0, ways)
		}
		for w := 0; w < ways; w++ {
			i := base + w
			if c.stamps[i] == 0 {
				continue
			}
			j := len(order)
			order = append(order, i)
			for j > 0 && c.stamps[order[j-1]] > c.stamps[i] {
				order[j] = order[j-1]
				j--
			}
			order[j] = i
		}
		for _, i := range order {
			b = binary.LittleEndian.AppendUint64(b, c.tags[i])
		}
	}
	// Terminator distinguishes "no more sets" from a set-0 entry of a
	// following cache in a concatenated snapshot.
	return binary.LittleEndian.AppendUint32(b, ^uint32(0))
}

// FFCtrs appends the cache's extensive counters (clock and statistics).
func (c *Cache) FFCtrs(cs []int64) []int64 {
	return append(cs, int64(c.clock), int64(c.stats.Accesses), int64(c.stats.Misses))
}

// FFAdvance applies k windows' worth of counter deltas, consuming this
// cache's prefix of d and returning the rest.
func (c *Cache) FFAdvance(k int64, d []int64) []int64 {
	c.clock += uint64(k * d[0])
	c.stats.Accesses += uint64(k * d[1])
	c.stats.Misses += uint64(k * d[2])
	return d[3:]
}

// FFNorm appends the whole hierarchy's replacement state.
func (h *Hierarchy) FFNorm(b []byte) []byte {
	for _, c := range h.l1 {
		b = c.FFNorm(b)
	}
	b = h.l2.FFNorm(b)
	return h.l3.FFNorm(b)
}

// FFCtrs appends the whole hierarchy's counters.
func (h *Hierarchy) FFCtrs(cs []int64) []int64 {
	for _, c := range h.l1 {
		cs = c.FFCtrs(cs)
	}
	cs = h.l2.FFCtrs(cs)
	return h.l3.FFCtrs(cs)
}

// FFAdvance advances the whole hierarchy's counters.
func (h *Hierarchy) FFAdvance(k int64, d []int64) []int64 {
	for _, c := range h.l1 {
		d = c.FFAdvance(k, d)
	}
	d = h.l2.FFAdvance(k, d)
	return h.l3.FFAdvance(k, d)
}
