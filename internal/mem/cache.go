// Package mem models the POWER5 memory hierarchy used by the chip
// simulator: per-core L1 data caches, a unified L2 shared by both cores,
// an off-chip victim-style L3, and main memory.  Caches are set-associative
// with true-LRU replacement; the model is a latency/contention model, not a
// coherence simulator — the workloads of the paper are MPI processes with
// disjoint address spaces, so sharing effects are capacity contention in
// the shared levels, which this model captures.
package mem

import "fmt"

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.  Must be a multiple of
	// LineBytes*Ways.
	SizeBytes int
	// LineBytes is the cache line size (power of two).
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// Latency is the access latency in cycles when this level hits.
	Latency int
}

// Stats counts accesses to one cache level.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses, or 0 when the cache is untouched.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64
	// tags and stamps are sets×ways, flattened.  stamp 0 = invalid.
	tags   []uint64
	stamps []uint64
	clock  uint64
	stats  Stats
}

// New builds a cache from cfg, validating its geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("mem: non-positive cache geometry %+v", cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: line size %d not a power of two", cfg.LineBytes)
	}
	setBytes := cfg.LineBytes * cfg.Ways
	if cfg.SizeBytes%setBytes != 0 {
		return nil, fmt.Errorf("mem: size %d not a multiple of way capacity %d", cfg.SizeBytes, setBytes)
	}
	sets := cfg.SizeBytes / setBytes
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: set count %d not a power of two", sets)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		stamps:    make([]uint64, sets*cfg.Ways),
	}, nil
}

// MustNew is New that panics on configuration errors; intended for
// package-level defaults that are known valid.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access looks up addr, allocating the line on a miss (write-allocate for
// stores as well), and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	victim := base
	victimStamp := ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.stamps[i] != 0 && c.tags[i] == line {
			c.stamps[i] = c.clock
			return true
		}
		if c.stamps[i] < victimStamp {
			victimStamp = c.stamps[i]
			victim = i
		}
	}
	c.stats.Misses++
	c.tags[victim] = line
	c.stamps[victim] = c.clock
	return false
}

// Contains reports whether addr is currently cached, without touching LRU
// state or statistics.  It exists for tests and invariant checks.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.stamps[i] != 0 && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.stamps {
		c.stamps[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// Lines returns the total number of lines the cache can hold.
func (c *Cache) Lines() int { return c.sets * c.cfg.Ways }
