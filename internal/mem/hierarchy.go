package mem

import "fmt"

// HierConfig describes the full memory hierarchy of a chip.  The defaults
// (DefaultHierConfig) follow the POWER5: 32 KB 4-way L1D per core, a
// 1.875 MB 10-way unified L2 shared between the two cores, a large
// off-chip L3 and ~230-cycle memory.
type HierConfig struct {
	Cores      int
	L1         Config
	L2         Config
	L3         Config
	MemLatency int
}

// DefaultHierConfig returns the POWER5-like hierarchy for the given number
// of cores.  The L2 is rounded from the real 1.875 MB 10-way geometry to
// 2 MB 8-way so set counts stay powers of two.
func DefaultHierConfig(cores int) HierConfig {
	return HierConfig{
		Cores:      cores,
		L1:         Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 4, Latency: 2},
		L2:         Config{SizeBytes: 2 << 20, LineBytes: 128, Ways: 8, Latency: 14},
		L3:         Config{SizeBytes: 32 << 20, LineBytes: 256, Ways: 8, Latency: 90},
		MemLatency: 230,
	}
}

// Hierarchy is the chip-level memory system: private L1s, shared L2/L3.
type Hierarchy struct {
	l1  []*Cache
	l2  *Cache
	l3  *Cache
	cfg HierConfig
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("mem: need at least one core, got %d", cfg.Cores)
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		c, err := New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("mem: L1: %w", err)
		}
		h.l1 = append(h.l1, c)
	}
	var err error
	if h.l2, err = New(cfg.L2); err != nil {
		return nil, fmt.Errorf("mem: L2: %w", err)
	}
	if h.l3, err = New(cfg.L3); err != nil {
		return nil, fmt.Errorf("mem: L3: %w", err)
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// LoadLatency walks addr down the hierarchy from core's L1 and returns the
// total access latency in cycles.  Misses allocate at every level walked
// (inclusive fill), so the model captures capacity contention between the
// two cores in the shared L2/L3.
func (h *Hierarchy) LoadLatency(core int, addr uint64) int {
	l1 := h.l1[core]
	if l1.Access(addr) {
		return l1.Latency()
	}
	if h.l2.Access(addr) {
		return l1.Latency() + h.l2.Latency()
	}
	if h.l3.Access(addr) {
		return l1.Latency() + h.l2.Latency() + h.l3.Latency()
	}
	return l1.Latency() + h.l2.Latency() + h.l3.Latency() + h.cfg.MemLatency
}

// StoreLatency models a store through the store queue: the line is
// allocated for footprint effects but the pipeline only pays the L1
// latency, as retirement does not wait for the fill.
func (h *Hierarchy) StoreLatency(core int, addr uint64) int {
	h.LoadLatency(core, addr) // touch for allocation/footprint effects
	return h.l1[core].Latency()
}

// IsL1Miss reports whether addr would miss core's L1 right now, without
// perturbing any state.
func (h *Hierarchy) IsL1Miss(core int, addr uint64) bool {
	return !h.l1[core].Contains(addr)
}

// L1 returns core's private L1 cache (for statistics).
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 returns the shared L2 cache (for statistics).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the shared L3 cache (for statistics).
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	for _, c := range h.l1 {
		c.Flush()
	}
	h.l2.Flush()
	h.l3.Flush()
}
