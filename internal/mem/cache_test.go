package mem

import (
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1024, LineBytes: 60, Ways: 2},       // line not power of two
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},       // size not multiple
		{SizeBytes: 1024 + 512, LineBytes: 64, Ways: 2}, // sets not power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid geometry", cfg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on invalid geometry")
		}
	}()
	MustNew(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache(t)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1038) { // same 64-byte line
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Error("next-line cold access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 4 accesses 2 misses", st)
	}
	if got := st.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %g, want 0.5", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t) // 8 sets, 2 ways
	// Three lines mapping to the same set: set stride = 8 sets * 64 B.
	const stride = 8 * 64
	a, b, x := uint64(0), uint64(stride), uint64(2*stride)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(x) // evicts b
	if !c.Contains(a) {
		t.Error("MRU line a was evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line b survived eviction")
	}
	if !c.Contains(x) {
		t.Error("newly inserted line x missing")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(t)
	c.Access(0)
	c.Flush()
	if c.Contains(0) {
		t.Error("flush left line valid")
	}
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Errorf("flush left stats %+v", st)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := smallCache(t)
	c.Access(0)
	before := c.Stats()
	c.Contains(0)
	c.Contains(1 << 20)
	if c.Stats() != before {
		t.Error("Contains changed statistics")
	}
}

func TestLines(t *testing.T) {
	c := smallCache(t)
	if got := c.Lines(); got != 16 {
		t.Errorf("Lines = %d, want 16", got)
	}
}

// Property: a working set no larger than the cache, accessed twice in the
// same order, hits on every access of the second pass (true LRU never
// evicts the working set when it fits).
func TestPropFittingWorkingSetHits(t *testing.T) {
	f := func(seed uint16) bool {
		c := MustNew(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4, Latency: 1})
		// Sequential lines fill sets uniformly: use exactly capacity.
		n := c.Lines()
		base := uint64(seed) << 12
		for i := 0; i < n; i++ {
			c.Access(base + uint64(i)*64)
		}
		for i := 0; i < n; i++ {
			if !c.Access(base + uint64(i)*64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: miss count never exceeds access count, and Contains agrees
// with a repeated Access hit.
func TestPropStatsConsistent(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Config{SizeBytes: 512, LineBytes: 64, Ways: 2, Latency: 1})
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Contains(uint64(a)) {
				return false
			}
			if !c.Access(uint64(a)) {
				return false
			}
		}
		st := c.Stats()
		return st.Misses <= st.Accesses && st.Accesses == uint64(2*len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := HierConfig{
		Cores:      2,
		L1:         Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, Latency: 2},
		L2:         Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, Latency: 14},
		L3:         Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Latency: 90},
		MemLatency: 230,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.LoadLatency(0, 0); got != 2+14+90+230 {
		t.Errorf("cold load latency = %d, want %d", got, 2+14+90+230)
	}
	if got := h.LoadLatency(0, 0); got != 2 {
		t.Errorf("L1 hit latency = %d, want 2", got)
	}
	// Core 1 misses its own L1 but hits the shared L2.
	if got := h.LoadLatency(1, 0); got != 2+14 {
		t.Errorf("cross-core L2 hit latency = %d, want 16", got)
	}
	if h.IsL1Miss(0, 0) {
		t.Error("address should be resident in core 0 L1")
	}
	if !h.IsL1Miss(1, 1<<20) {
		t.Error("untouched address should be an L1 miss")
	}
}

func TestHierarchyStoreLatency(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.StoreLatency(0, 4096); got != h.L1(0).Latency() {
		t.Errorf("store latency = %d, want L1 latency %d", got, h.L1(0).Latency())
	}
	// The store must have allocated the line for later loads.
	if got := h.LoadLatency(0, 4096); got != h.L1(0).Latency() {
		t.Errorf("load after store latency = %d, want L1 hit", got)
	}
}

func TestHierarchySharedL2Contention(t *testing.T) {
	cfg := HierConfig{
		Cores:      2,
		L1:         Config{SizeBytes: 512, LineBytes: 64, Ways: 2, Latency: 2},
		L2:         Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 2, Latency: 14},
		L3:         Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, Latency: 90},
		MemLatency: 230,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 fills the whole L2; core 1 then streams a distinct footprint
	// of the same size, evicting core 0's lines.
	lines := h.L2().Lines()
	for i := 0; i < lines; i++ {
		h.LoadLatency(0, uint64(i)*64)
	}
	for i := 0; i < lines; i++ {
		h.LoadLatency(1, 1<<24+uint64(i)*64)
	}
	evicted := 0
	for i := 0; i < lines; i++ {
		if !h.L2().Contains(uint64(i) * 64) {
			evicted++
		}
	}
	if evicted == 0 {
		t.Error("shared L2 shows no inter-core capacity contention")
	}
}

func TestHierarchyFlushAndErrors(t *testing.T) {
	if _, err := NewHierarchy(HierConfig{Cores: 0}); err == nil {
		t.Error("NewHierarchy accepted zero cores")
	}
	bad := DefaultHierConfig(1)
	bad.L2.LineBytes = 60
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("NewHierarchy accepted invalid L2")
	}
	h, err := NewHierarchy(DefaultHierConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	h.LoadLatency(0, 128)
	h.Flush()
	if !h.IsL1Miss(0, 128) {
		t.Error("flush did not clear L1")
	}
	if h.Config().Cores != 2 {
		t.Error("Config not preserved")
	}
}
