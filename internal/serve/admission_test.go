package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	smtbalance "repro"
)

// getHealth fetches and decodes /healthz.
func getHealth(t *testing.T, url string) Health {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHealthzReportsServeStats pins the admission limits' appearance in
// the health reply.
func TestHealthzReportsServeStats(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 3, MaxQueue: 5})
	h := getHealth(t, ts.URL)
	if h.Serve.MaxInFlight != 3 || h.Serve.MaxQueue != 5 {
		t.Errorf("serve stats = %+v, want limits 3/5", h.Serve)
	}
	if h.Serve.InFlight != 0 || h.Serve.Queued != 0 || h.Serve.Rejected != 0 {
		t.Errorf("idle server reports activity: %+v", h.Serve)
	}
}

// TestOverloadSheds429 saturates a one-slot, no-queue server with a
// long sweep and checks that the next request is shed immediately with
// 429 and a Retry-After hint instead of queueing.
func TestOverloadSheds429(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 2 * time.Second})

	// A 625-configuration sweep of slow-ish runs: holds the only slot
	// for many seconds, but dies promptly when we cancel the request.
	sweepBody := `{
	  "job": {"ranks": [
	    [{"compute": {"kind": "fpu", "n": 1000000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 1000000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 1000000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 1000000}}, {"barrier": true}]
	  ]},
	  "space": {"priorities": [2, 3, 4, 5, 6]}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait for the sweep to occupy the slot.
	deadline := time.Now().Add(10 * time.Second)
	for getHealth(t, ts.URL).Serve.InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never showed up in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var e errorJSON
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Errorf("429 body not {\"error\": ...}: %s", data)
	}
	if h := getHealth(t, ts.URL); h.Serve.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", h.Serve.Rejected)
	}

	// Cancelling the sweep frees the slot; the next run is admitted.
	cancel()
	<-errc
	deadline = time.Now().Add(10 * time.Second)
	for getHealth(t, ts.URL).Serve.InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled sweep never released its slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload run returned %d: %s", resp.StatusCode, data)
	}
}

// TestConcurrentIdenticalRunsCoalesce is the serving tier's singleflight
// proof: a herd of identical requests must execute exactly one
// simulation — every other request either joined the in-flight run or
// hit the cache — and every reply must be byte-identical.
func TestConcurrentIdenticalRunsCoalesce(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Big enough that the herd overlaps the leader's simulation.
	body := `{"job": {"ranks": [
		[{"compute": {"kind": "fpu", "n": 400000}}, {"barrier": true}],
		[{"compute": {"kind": "fpu", "n": 1600000}}, {"barrier": true}],
		[{"compute": {"kind": "fpu", "n": 400000}}, {"barrier": true}],
		[{"compute": {"kind": "fpu", "n": 1600000}}, {"barrier": true}]
	]}}`
	const herd = 8
	bodies := make([]string, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("herd request: %v", err)
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("herd request: status %d, err %v", resp.StatusCode, err)
				return
			}
			bodies[i] = string(data)
		}()
	}
	wg.Wait()
	for i := 1; i < herd; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("reply %d differs from reply 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	h := getHealth(t, ts.URL)
	sims := h.Cache.Misses - h.Cache.Coalesced - h.Cache.DiskHits
	if sims != 1 {
		t.Errorf("herd of %d executed %d simulations, want 1 (cache %+v)", herd, sims, h.Cache)
	}
	if h.Cache.Hits+h.Cache.Coalesced != herd-1 {
		t.Errorf("hits %d + coalesced %d != %d non-leader requests", h.Cache.Hits, h.Cache.Coalesced, herd-1)
	}
}

// TestDiskCacheSurvivesRestart runs a job on a disk-backed server,
// restarts the serving stack on the same directory, and checks the
// replay is answered from disk byte-identically with zero simulations.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	serveOnce := func() (*httptest.Server, func()) {
		m, err := smtbalance.NewMachine(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.UseDiskCache(dir); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewHandler(m, Config{}))
		return ts, ts.Close
	}

	ts1, close1 := serveOnce()
	resp, first := postJSON(t, ts1.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run returned %d: %s", resp.StatusCode, first)
	}
	if h := getHealth(t, ts1.URL); h.Cache.DiskWrites == 0 {
		t.Errorf("disk-backed run recorded no disk writes: %+v", h.Cache)
	}
	close1()

	ts2, close2 := serveOnce()
	defer close2()
	resp, replay := postJSON(t, ts2.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay returned %d: %s", resp.StatusCode, replay)
	}
	if string(replay) != string(first) {
		t.Errorf("disk-revived reply differs:\n%s\nvs\n%s", replay, first)
	}
	h := getHealth(t, ts2.URL)
	if h.Cache.DiskHits == 0 {
		t.Errorf("replay not served from disk: %+v", h.Cache)
	}
	if sims := h.Cache.Misses - h.Cache.Coalesced - h.Cache.DiskHits; sims != 0 {
		t.Errorf("replay executed %d simulations, want 0 (cache %+v)", sims, h.Cache)
	}
}

// flushRecorder captures the response body length at every Flush, so a
// test can prove the stream left the handler chunk by chunk rather than
// as one buffered write.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushLens []int
}

func (f *flushRecorder) Flush() {
	f.flushLens = append(f.flushLens, f.Body.Len())
}

// TestSweepStreamsIncrementally is the regression test for the buffered
// /v1/sweep: the first ranked entry must be written and flushed on its
// own, before the rest of the stream exists in the response — the old
// handler built the entire reply first.
func TestSweepStreamsIncrementally(t *testing.T) {
	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(m, Config{})
	body := `{
	  "job": {"ranks": [
	    [{"compute": {"kind": "fpu", "n": 2000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 8000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 2000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 8000}}, {"barrier": true}]
	  ]},
	  "space": {"fix_pairing": true, "priorities": [4, 6]}
	}`
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(fr, req)
	if fr.Code != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", fr.Code, fr.Body)
	}
	lines := strings.Split(strings.TrimSpace(fr.Body.String()), "\n")
	if len(lines) != 17 { // 16 entries + done record
		t.Fatalf("stream has %d lines, want 17", len(lines))
	}
	// One flush per entry plus the terminal record...
	if len(fr.flushLens) != 17 {
		t.Fatalf("stream flushed %d times, want 17", len(fr.flushLens))
	}
	// ...and the first flush pushed exactly the first entry, nothing more.
	firstChunk := fr.Body.String()[:fr.flushLens[0]]
	if n := strings.Count(firstChunk, "\n"); n != 1 {
		t.Errorf("first flush carried %d lines, want exactly 1: %q", n, firstChunk)
	}
	var e SweepEntryJSON
	if err := json.Unmarshal([]byte(firstChunk), &e); err != nil || e.Rank != 1 {
		t.Errorf("first flushed chunk is not the rank-1 entry: %v %q", err, firstChunk)
	}
}

// smallBufListener shrinks every accepted connection's kernel write
// buffer so a non-reading client stalls the server's stream quickly.
type smallBufListener struct {
	net.Listener
}

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(1 << 10)
	}
	return c, nil
}

// TestSlowClientWriteDeadline opens a sweep stream and never reads it.
// The per-write deadline must cut the stalled connection and release
// the handler (and its admission slot) long before the request timeout.
func TestSlowClientWriteDeadline(t *testing.T) {
	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &httptest.Server{
		Listener: smallBufListener{ln},
		Config:   &http.Server{Handler: NewHandler(m, Config{WriteTimeout: 200 * time.Millisecond})},
	}
	ts.Start()
	t.Cleanup(ts.Close)

	// 256 entries ≈ 36 KB of NDJSON: far beyond the shrunken socket
	// buffers, so the stream must stall against a silent client.
	sweepBody := `{
	  "job": {"ranks": [
	    [{"compute": {"kind": "fpu", "n": 1000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 4000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 1000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 4000}}, {"barrier": true}]
	  ]},
	  "space": {"priorities": [2, 3, 4, 5]}
	}`
	// Warm the machine's point cache with a fully-drained pass first:
	// the stalled stream below must then produce its entries instantly,
	// so the test measures the write deadline, not simulation speed
	// (which race-instrumented on one CPU can exceed the poll window).
	warm, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, warm.Body); err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(1 << 10)
	}
	req := fmt.Sprintf("POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(sweepBody), sweepBody)
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}

	// Never read.  The handler must show up in flight, then be cut by
	// the write deadline and release its slot.
	deadline := time.Now().Add(10 * time.Second)
	for getHealth(t, ts.URL).Serve.InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never showed up in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	deadline = time.Now().Add(15 * time.Second)
	for getHealth(t, ts.URL).Serve.InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled stream was never cut by the write deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
