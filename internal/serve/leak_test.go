package serve

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if a test leaks a goroutine: handlers
// must not outlive their request, and every httptest server must be
// closed.
func TestMain(m *testing.M) { leakcheck.Main(m) }
