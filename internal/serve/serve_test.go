package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	smtbalance "repro"
)

// newTestServer builds a handler over a fresh default machine with
// test-friendly limits.
func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m, cfg))
	t.Cleanup(ts.Close)
	return ts
}

// runBody is a valid 4-rank imbalanced run request.
const runBody = `{
  "job": {"name": "demo", "ranks": [
    [{"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true}],
    [{"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true}],
    [{"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true}],
    [{"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true}]
  ]}
}`

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Topology != "1x2x2" || h.Contexts != 4 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestRunEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run returned %d: %s", resp.StatusCode, data)
	}
	var out RunResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad run response: %v\n%s", err, data)
	}
	if out.Cycles <= 0 || out.Seconds <= 0 || len(out.Ranks) != 4 {
		t.Errorf("run response shape wrong: %+v", out)
	}
	// The default placement is pin-in-order at medium priority.
	for i, r := range out.Ranks {
		if r.CPU != i || r.Priority != int(smtbalance.PriorityMedium) {
			t.Errorf("rank %d on CPU %d prio %d, want pin-in-order at medium", i, r.CPU, r.Priority)
		}
	}

	// An identical request must be a cache hit on the shared machine.
	resp2, data2 := postJSON(t, ts.URL+"/v1/run", runBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run returned %d", resp2.StatusCode)
	}
	if string(data) != string(data2) {
		t.Error("identical requests returned different bodies")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Cache.Hits < 1 {
		t.Errorf("second identical run did not hit the cache: %+v", h.Cache)
	}
}

func TestRunExplicitPlacementAndPin(t *testing.T) {
	ts := newTestServer(t, Config{})
	placed := strings.Replace(runBody, `]}
}`, `]},
  "placement": {"cpus": [0, 1, 2, 3], "priorities": [4, 6, 4, 6]}
}`, 1)
	resp, data := postJSON(t, ts.URL+"/v1/run", placed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placed run returned %d: %s", resp.StatusCode, data)
	}
	var out RunResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ranks[1].Priority != 6 {
		t.Errorf("explicit priorities ignored: %+v", out.Ranks)
	}

	pinned := strings.Replace(runBody, `]}
}`, `]},
  "pin": "0.0.0@4,0.0.1@6,0.1.0@4,0.1.1@6"
}`, 1)
	resp, data = postJSON(t, ts.URL+"/v1/run", pinned)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned run returned %d: %s", resp.StatusCode, data)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxComputeN: 100_000})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", ``, http.StatusBadRequest},
		{"not json", `{{{`, http.StatusBadRequest},
		{"no ranks", `{"job": {"ranks": []}}`, http.StatusBadRequest},
		{"unknown field", `{"job": {"ranks": [[{"barier": true}]]}}`, http.StatusBadRequest},
		{"unknown kind", `{"job": {"ranks": [[{"compute": {"kind": "gpu", "n": 10}}]]}}`, http.StatusBadRequest},
		{"zero n", `{"job": {"ranks": [[{"compute": {"kind": "fpu", "n": 0}}]]}}`, http.StatusBadRequest},
		{"huge n", `{"job": {"ranks": [[{"compute": {"kind": "fpu", "n": 99999999999}}]]}}`, http.StatusBadRequest},
		{"two discriminators", `{"job": {"ranks": [[{"barrier": true, "compute": {"kind": "fpu", "n": 10}}]]}}`, http.StatusBadRequest},
		{"bad peer", `{"job": {"ranks": [[{"exchange": {"bytes": 10, "peers": [9]}}]]}}`, http.StatusBadRequest},
		{"too many ranks", `{"job": {"ranks": [` + strings.Repeat(`[{"barrier": true}],`, 64) + `[{"barrier": true}]]}}`, http.StatusBadRequest},
		{"pin and placement", `{"job": {"ranks": [[{"barrier": true}]]}, "pin": "0.0.0", "placement": {"cpus": [0], "priorities": [4]}}`, http.StatusBadRequest},
		{"bad priority", `{"job": {"ranks": [[{"barrier": true}]]}, "placement": {"cpus": [0], "priorities": [9]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/run", tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			}
			var e errorJSON
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Errorf("%s: error body not {\"error\": ...}: %s", tc.name, data)
			}
		})
	}
	// Method checks come from the mux.
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run returned %d, want 405", resp.StatusCode)
	}
}

func TestRunTimeout(t *testing.T) {
	ts := newTestServer(t, Config{Timeout: 50 * time.Millisecond})
	huge := `{"job": {"ranks": [
		[{"compute": {"kind": "fpu", "n": 10000000}}, {"barrier": true}],
		[{"compute": {"kind": "fpu", "n": 10000000}}, {"barrier": true}],
		[{"compute": {"kind": "fpu", "n": 10000000}}, {"barrier": true}],
		[{"compute": {"kind": "fpu", "n": 10000000}}, {"barrier": true}]
	]}}`
	resp, data := postJSON(t, ts.URL+"/v1/run", huge)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-budget run returned %d: %s", resp.StatusCode, data)
	}
}

func TestSweepStreamsNDJSON(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{
	  "job": {"ranks": [
	    [{"compute": {"kind": "fpu", "n": 2000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 8000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 2000}}, {"barrier": true}],
	    [{"compute": {"kind": "fpu", "n": 8000}}, {"barrier": true}]
	  ]},
	  "space": {"fix_pairing": true, "priorities": [4, 6]},
	  "top": 5
	}`
	resp, data := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("sweep Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 { // 5 entries + done record
		t.Fatalf("sweep streamed %d lines, want 6:\n%s", len(lines), data)
	}
	prev := -1.0
	for i, ln := range lines[:5] {
		var e SweepEntryJSON
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d not an entry: %v\n%s", i, err, ln)
		}
		if e.Rank != i+1 || len(e.CPUs) != 4 || len(e.Priorities) != 4 {
			t.Errorf("entry %d shape wrong: %+v", i, e)
		}
		if e.Score < prev {
			t.Errorf("entries not ranked: score %f after %f", e.Score, prev)
		}
		prev = e.Score
	}
	var done SweepDone
	if err := json.Unmarshal([]byte(lines[5]), &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Evaluated != 16 || done.Returned != 5 {
		t.Errorf("done record = %+v, want evaluated 16, returned 5", done)
	}
}

func TestSweepRejectsBadSpace(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/sweep",
		`{"job": {"ranks": [[{"barrier": true}], [{"barrier": true}]]}, "space": {"alphabet": "root"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad alphabet returned %d: %s", resp.StatusCode, data)
	}
	// Odd rank counts must be rejected up front with the descriptive
	// validation error, not a deep enumerator failure.
	resp, data = postJSON(t, ts.URL+"/v1/sweep",
		`{"job": {"ranks": [[{"barrier": true}]]}}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "even rank count") {
		t.Errorf("odd-rank sweep returned %d: %s", resp.StatusCode, data)
	}
}

// iterRunBody is an iterative imbalanced job with enough barriers for an
// online policy to act.
const iterRunBody = `{
  "job": {"name": "iter", "ranks": [
    [{"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 3000}}, {"barrier": true}],
    [{"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true},
     {"compute": {"kind": "fpu", "n": 12000}}, {"barrier": true}]
  ]}`

// TestRunPolicyRoundTrip covers the run schema's policy axis: the
// response must name the resolved policy and count its moves, both with
// and without a policy in the request.
func TestRunPolicyRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})

	// Without a policy: the static launch plan is final.
	resp, data := postJSON(t, ts.URL+"/v1/run", iterRunBody+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run returned %d: %s", resp.StatusCode, data)
	}
	var static RunResponse
	if err := json.Unmarshal(data, &static); err != nil {
		t.Fatalf("bad run response: %v\n%s", err, data)
	}
	if static.Policy != "static" || static.BalancerMoves != 0 {
		t.Errorf("policy-less run reported policy %q, %d moves", static.Policy, static.BalancerMoves)
	}

	// With the paper's dynamic policy: moves happen, the run speeds up,
	// and the response names the resolved policy with its parameters.
	resp, data = postJSON(t, ts.URL+"/v1/run", iterRunBody+`, "policy": "dyn,maxdiff=2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy run returned %d: %s", resp.StatusCode, data)
	}
	var dyn RunResponse
	if err := json.Unmarshal(data, &dyn); err != nil {
		t.Fatalf("bad policy run response: %v\n%s", err, data)
	}
	if dyn.Policy != "dyn(hysteresis=2,maxdiff=2,threshold=0.05)" {
		t.Errorf("resolved policy = %q", dyn.Policy)
	}
	if dyn.BalancerMoves == 0 {
		t.Error("policy run reported zero balancer moves")
	}
	if dyn.Cycles >= static.Cycles {
		t.Errorf("policy run (%d cycles) not faster than static (%d)", dyn.Cycles, static.Cycles)
	}

	// A bad policy specification is a client error.
	resp, data = postJSON(t, ts.URL+"/v1/run", iterRunBody+`, "policy": "nosuch"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy returned %d: %s", resp.StatusCode, data)
	}
	var e errorJSON
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "unknown policy") {
		t.Errorf("bad policy error = %q (%v)", e.Error, err)
	}
}

// TestSweepPoliciesRoundTrip covers the sweep schema's policy axis.
func TestSweepPoliciesRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := iterRunBody + `,
  "space": {"priorities": [4], "fix_pairing": true, "policies": ["static", "dyn", "feedback"]},
  "objective": {"imbalance_weight": 1}}`
	resp, data := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep returned %d: %s", resp.StatusCode, data)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // 3 entries + done
		t.Fatalf("sweep streamed %d chunks, want 4:\n%s", len(lines), data)
	}
	policies := map[string]bool{}
	for _, ln := range lines[:3] {
		var e SweepEntryJSON
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad sweep entry: %v\n%s", err, ln)
		}
		if e.Policy == "" {
			t.Errorf("sweep entry missing policy: %s", ln)
		}
		name, _, _ := strings.Cut(e.Policy, "(")
		policies[name] = true
	}
	for _, want := range []string{"static", "dyn", "feedback"} {
		if !policies[want] {
			t.Errorf("policy %q missing from sweep stream (have %v)", want, policies)
		}
	}
	var done SweepDone
	if err := json.Unmarshal([]byte(lines[3]), &done); err != nil || !done.Done || done.Evaluated != 3 {
		t.Errorf("sweep terminal chunk = %s (%v)", lines[3], err)
	}

	// Unknown policy in the list: client error before any simulation.
	resp, data = postJSON(t, ts.URL+"/v1/sweep", iterRunBody+`, "space": {"policies": ["bogus"]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sweep policy returned %d: %s", resp.StatusCode, data)
	}
}

func TestMatrixStreamsNDJSON(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{
	  "scenarios": ["uniform,base=5000,iters=3", "step,base=5000,iters=3"],
	  "policies": ["dyn"]
	}`
	resp, data := postJSON(t, ts.URL+"/v1/matrix", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	// 2 cells × (implicit static + dyn) entries, then the done record.
	if len(lines) != 5 {
		t.Fatalf("stream has %d lines, want 5:\n%s", len(lines), data)
	}
	var first MatrixEntryJSON
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if first.Policy != "static" || first.Speedup != 1 || first.Topology != "1x2x2" {
		t.Errorf("first entry = %+v, want the static control at speedup 1", first)
	}
	if !strings.Contains(first.Scenario, "uniform(") {
		t.Errorf("first entry scenario = %q, want the first uniform cell", first.Scenario)
	}
	var second MatrixEntryJSON
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("second chunk: %v", err)
	}
	if !strings.Contains(second.Policy, "dyn(") || second.Cycles <= 0 {
		t.Errorf("second entry = %+v, want the dyn evaluation", second)
	}
	var done MatrixDone
	if err := json.Unmarshal([]byte(lines[4]), &done); err != nil {
		t.Fatalf("terminal chunk: %v", err)
	}
	if !done.Done || done.Cells != 2 || done.Entries != 4 {
		t.Errorf("terminal record = %+v, want done with 2 cells / 4 entries", done)
	}

	// The same request replays from the shared Matrix engine's cell
	// cache, byte-identically.
	resp2, data2 := postJSON(t, ts.URL+"/v1/matrix", body)
	if resp2.StatusCode != http.StatusOK || string(data2) != string(data) {
		t.Errorf("cached replay differs: status %d\n%s\nvs\n%s", resp2.StatusCode, data2, data)
	}
}

func TestMatrixExplicitTopologies(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/matrix", `{
	  "scenarios": ["uniform,base=4000,iters=2"],
	  "policies": ["static"],
	  "topologies": ["2x2x2"]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var first MatrixEntryJSON
	if err := json.Unmarshal([]byte(strings.SplitN(string(data), "\n", 2)[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Topology != "2x2x2" {
		t.Errorf("entry topology = %q, want 2x2x2", first.Topology)
	}
}

func TestMatrixRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxMatrixCells: 2, MaxRanks: 8, MaxComputeN: 100_000})
	for name, body := range map[string]string{
		"unknown scenario": `{"scenarios": ["warp"], "policies": ["static"]}`,
		"unknown policy":   `{"scenarios": ["uniform"], "policies": ["dyn2"]}`,
		"bad topology":     `{"scenarios": ["uniform"], "policies": ["static"], "topologies": ["0x2x2"]}`,
		"empty scenarios":  `{"scenarios": [], "policies": ["static"]}`,
		"empty policies":   `{"scenarios": ["uniform"], "policies": []}`,
		"unknown field":    `{"scenarios": ["uniform"], "policies": ["static"], "bogus": 1}`,
		"too many cells":   `{"scenarios": ["uniform", "ramp", "step"], "policies": ["static"]}`,
		"too many ranks":   `{"scenarios": ["uniform,ranks=32"], "policies": ["static"]}`,
		// ranks=0 sizes the job to the topology: a huge topology must
		// not smuggle a huge job past MaxRanks (regression).
		"oversized topology": `{"scenarios": ["uniform"], "policies": ["static"], "topologies": ["4x16x2"]}`,
		"oversized base":     `{"scenarios": ["uniform,base=2000000"], "policies": ["static"]}`,
		"oversized iters":    `{"scenarios": ["uniform,iters=4000"], "policies": ["static"]}`,
	} {
		resp, data := postJSON(t, ts.URL+"/v1/matrix", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error reply not JSON: %s", name, data)
		}
	}
}

func TestMatrixTimeout(t *testing.T) {
	ts := newTestServer(t, Config{Timeout: 1 * time.Millisecond})
	resp, data := postJSON(t, ts.URL+"/v1/matrix", `{
	  "scenarios": ["uniform,base=9000,iters=4"],
	  "policies": ["dyn"]
	}`)
	// Either the deadline fires before the first entry (504) or — on a
	// very fast machine — the cell finishes inside the budget (200).
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Errorf("status %d, want 504 or 200 (%s)", resp.StatusCode, data)
	}
}
