// Package serve exposes one shared smtbalance.Machine over an HTTP JSON
// API — the first serving surface toward the roadmap's production-scale
// system.  All requests share the Machine's deterministic result cache,
// so identical configurations submitted by different clients are served
// from memory, and every simulation runs under the request context, so a
// disconnected client cancels its run instead of leaking simulator time.
//
// Endpoints:
//
//	GET  /healthz    liveness + topology + cache statistics
//	POST /v1/run     run one job/placement, JSON in, JSON out
//	POST /v1/sweep   rank a configuration space, streamed as NDJSON
//	                 (one ranked entry per chunk, best first, then a
//	                 terminal {"done":true,...} record)
//	POST /v1/matrix  evaluate a policy × scenario × topology matrix,
//	                 streamed as NDJSON cell by cell, then a terminal
//	                 {"done":true,...} record; cells are cached across
//	                 requests in a shared Matrix engine
//
// The wire schema is deliberately strict: unknown fields are rejected so
// that a typo ("barier") fails loudly instead of simulating the wrong
// job.
//
// Overload: simulation endpoints run behind an admission gate — at most
// Config.MaxInFlight simulations execute concurrently, at most
// Config.MaxQueue more wait, and everything beyond that is shed
// immediately with 429 and a Retry-After header rather than queued
// without bound.  Identical concurrent requests coalesce inside the
// Machine (singleflight on the cache key), so a thundering herd of one
// popular configuration costs one simulation plus one gate slot per
// request.  Streamed responses carry a rolling write deadline
// (Config.WriteTimeout per write), so a stalled client frees its slot
// instead of holding it for the full request timeout.
//
// Memory: cached run results keep their full trace, so the server's
// resident set is bounded by the Machine's entry-capped cache times the
// largest accepted job — Config.MaxRanks and Config.MaxPhases bound the
// per-entry trace size, and Machine.ClearCache releases everything if an
// operator needs to shed memory without restarting.  The matrix
// engine's stores are entry-capped the same way (cells and
// per-topology machines evict FIFO), and MaxRanks bounds the machines
// a matrix request may ask for, so /v1/matrix cannot outgrow the cap
// either.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	smtbalance "repro"
)

// Config bounds what one request may ask of the shared machine.  The
// zero value of each field selects the default; the defaults keep a
// public endpoint from being wedged by one huge request.
type Config struct {
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxRanks caps a job's rank count (default 64; the topology's
	// context count caps it further anyway).
	MaxRanks int
	// MaxPhases caps one rank's phase count (default 256).
	MaxPhases int
	// MaxComputeN caps one compute phase's instruction count (default
	// 10M — about the scale of the paper's reduced workloads).
	MaxComputeN int64
	// Timeout bounds one request's simulation wall time (default 120s);
	// it is enforced through the Machine's context cancellation.
	Timeout time.Duration
	// SweepWorkers is the worker-pool size for sweep requests (default
	// 0 = one per CPU).
	SweepWorkers int
	// MaxMatrixCells caps a matrix request's (topology, scenario) cell
	// count (default 16).
	MaxMatrixCells int
	// MaxInFlight caps concurrently executing simulation requests
	// (default 2 × GOMAXPROCS).  /healthz is never gated.
	MaxInFlight int
	// MaxQueue caps requests waiting for an in-flight slot (default
	// 4 × MaxInFlight).  Negative disables queueing: every request
	// beyond MaxInFlight is shed immediately.
	MaxQueue int
	// RetryAfter is the Retry-After hint on 429 replies (default 1s).
	RetryAfter time.Duration
	// WriteTimeout bounds each response write (default 30s).  Streams
	// extend it per chunk, so a slow reader of a long stream is fine —
	// a stalled one is cut.
	WriteTimeout time.Duration
}

// withDefaults substitutes the default for any unset limit.  Zero and
// negative values both select the default: a negative limit (an
// operator typo like `-timeout -1s`) would otherwise silently reject or
// time out every request.
func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 64
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 256
	}
	if c.MaxComputeN <= 0 {
		c.MaxComputeN = 10_000_000
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.MaxMatrixCells <= 0 {
		c.MaxMatrixCells = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0 // negative: shed instead of queueing
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// Compute is a compute phase on the wire.
type Compute struct {
	// Kind names the kernel (fpu, fxu, l1, l2, mem, branchy, mixed).
	Kind string `json:"kind"`
	// N is the instruction count.
	N int64 `json:"n"`
	// Footprint optionally overrides the kind's data footprint in bytes.
	Footprint int64 `json:"footprint,omitempty"`
}

// Exchange is a neighbour-exchange phase on the wire.
type Exchange struct {
	// Bytes is the per-peer message size.
	Bytes int64 `json:"bytes"`
	// Peers lists the ranks exchanged with.
	Peers []int `json:"peers"`
}

// Phase is one program step; exactly one of the three fields is set.
type Phase struct {
	// Compute runs a synthetic kernel.
	Compute *Compute `json:"compute,omitempty"`
	// Barrier synchronizes all ranks.
	Barrier bool `json:"barrier,omitempty"`
	// Exchange passes messages between neighbour ranks.
	Exchange *Exchange `json:"exchange,omitempty"`
}

// Job is an MPI-style job on the wire.
type Job struct {
	// Name labels the job in diagnostics; it never affects results.
	Name string `json:"name,omitempty"`
	// Ranks holds each rank's phase program.
	Ranks [][]Phase `json:"ranks"`
}

// Placement pins ranks explicitly; omitted in RunRequest it defaults to
// pin-in-order at medium priority (the paper's Case A).
type Placement struct {
	// CPUs pins rank i to logical CPU CPUs[i].
	CPUs []int `json:"cpus"`
	// Priorities is each rank's hardware thread priority.
	Priorities []int `json:"priorities"`
}

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	// Job is the program to simulate.
	Job Job `json:"job"`
	// Placement pins ranks by logical CPU; Pin pins them by
	// "chip.core.context[@prio]" triples.  At most one may be set.
	Placement *Placement `json:"placement,omitempty"`
	// Pin is the triple-syntax alternative to Placement.
	Pin string `json:"pin,omitempty"`
	// Policy attaches an online balancing policy to the run, in
	// ParsePolicy syntax — e.g. "dyn,maxdiff=2", "hier", "feedback".
	// Empty means no policy (the static launch priorities are final).
	Policy string `json:"policy,omitempty"`
}

// RankResult is one rank's outcome on the wire.
type RankResult struct {
	// CPU is the logical CPU the rank ran on.
	CPU int `json:"cpu"`
	// Core is the global chip-major core index.
	Core int `json:"core"`
	// Chip locates the core's chip.
	Chip int `json:"chip"`
	// Priority is the rank's final hardware thread priority.
	Priority int `json:"priority"`
	// ComputePct is the share of time spent computing.
	ComputePct float64 `json:"compute_pct"`
	// SyncPct is the share of time spent waiting at barriers.
	SyncPct float64 `json:"sync_pct"`
	// CommPct is the share of time spent in exchanges.
	CommPct float64 `json:"comm_pct"`
	// Instructions is the rank's retired instruction count.
	Instructions int64 `json:"instructions"`
}

// RunResponse is the POST /v1/run reply.
type RunResponse struct {
	// Seconds is the simulated wall time.
	Seconds float64 `json:"seconds"`
	// Cycles is the simulated cycle count.
	Cycles int64 `json:"cycles"`
	// ImbalancePct measures load imbalance across ranks.
	ImbalancePct float64 `json:"imbalance_pct"`
	// Iterations is the number of barrier releases observed.
	Iterations int `json:"iterations"`
	// Policy is the resolved canonical identity of the balancing policy
	// the run executed under ("static" when none was attached).
	Policy string `json:"policy"`
	// BalancerMoves counts the priority rewrites the policy applied.
	BalancerMoves int `json:"balancer_moves"`
	// Ranks holds each rank's outcome.
	Ranks []RankResult `json:"ranks"`
}

// SweepSpace selects the search space on the wire.
type SweepSpace struct {
	// Alphabet is "user" (priorities 2-4, the default) or "os" (2-6).
	// Priorities, if set, overrides it with an explicit list.
	Alphabet string `json:"alphabet,omitempty"`
	// Priorities is the explicit priority alphabet overriding Alphabet.
	Priorities []int `json:"priorities,omitempty"`
	// FixPairing keeps the default rank-to-CPU pairing and sweeps only
	// priorities.
	FixPairing bool `json:"fix_pairing,omitempty"`
	// Policies adds a balancing-policy axis: each entry is a ParsePolicy
	// specification, and the ranking covers every policy × placement ×
	// priority configuration (the stream's entries carry a policy field).
	Policies []string `json:"policies,omitempty"`
}

// SweepObjective weights the ranking objective; the zero value minimizes
// execution time.
type SweepObjective struct {
	// CyclesWeight weights execution time in the score.
	CyclesWeight float64 `json:"cycles_weight,omitempty"`
	// ImbalanceWeight weights load imbalance in the score.
	ImbalanceWeight float64 `json:"imbalance_weight,omitempty"`
}

// SweepRequest is the POST /v1/sweep body.
type SweepRequest struct {
	// Job is the program to sweep placements for.
	Job Job `json:"job"`
	// Space selects the placement/priority search space.
	Space SweepSpace `json:"space"`
	// Top caps the number of ranked entries streamed back.
	Top int `json:"top,omitempty"`
	// Screen, when positive, enables two-level screening: the analytical
	// cost model ranks the whole space and only the Screen best-predicted
	// configurations plus a guard band are simulated (see
	// smtbalance.SweepOptions.Screen).  0 sweeps exhaustively.
	Screen int `json:"screen,omitempty"`
	// Objective weights the ranking score.
	Objective SweepObjective `json:"objective"`
}

// SweepEntryJSON is one ranked configuration, one NDJSON chunk of the
// sweep stream.
type SweepEntryJSON struct {
	// Rank is the entry's 1-based position in the ranking.
	Rank int `json:"rank"`
	// Policy identifies the entry's balancing policy on policy-axis
	// sweeps; omitted otherwise.
	Policy string `json:"policy,omitempty"`
	// CPUs is the evaluated placement.
	CPUs []int `json:"cpus"`
	// Priorities is the evaluated priority assignment.
	Priorities []int `json:"priorities"`
	// Cycles is the configuration's simulated cycle count.
	Cycles int64 `json:"cycles"`
	// Seconds is the configuration's simulated wall time.
	Seconds float64 `json:"seconds"`
	// ImbalancePct measures the configuration's load imbalance.
	ImbalancePct float64 `json:"imbalance_pct"`
	// Score is the objective value the ranking sorts by.
	Score float64 `json:"score"`
}

// SweepDone is the terminal NDJSON chunk of a sweep stream.
type SweepDone struct {
	// Done is always true; it marks the terminal chunk.
	Done bool `json:"done"`
	// Evaluated counts the configurations simulated.
	Evaluated int `json:"evaluated"`
	// Returned counts the entries streamed before this chunk.
	Returned int `json:"returned"`
}

// MatrixRequest is the POST /v1/matrix body: every policy evaluated on
// every scenario on every topology, scored by speedup over the static
// control (see smtbalance.EvalMatrix).
type MatrixRequest struct {
	// Scenarios are ParseScenario specifications, e.g. "uniform",
	// "ramp,skew=3".  Required.
	Scenarios []string `json:"scenarios"`
	// Policies are ParsePolicy specifications; the static control is
	// added automatically when absent.  Required.
	Policies []string `json:"policies"`
	// Topologies are "chips x cores x smt" strings; empty means the
	// server machine's topology.
	Topologies []string `json:"topologies,omitempty"`
	// Screen is forwarded to every cell's sweep (see
	// smtbalance.MatrixOptions.Screen); today's single-placement cells
	// are screening-invariant, so it never changes entries.
	Screen int `json:"screen,omitempty"`
}

// MatrixEntryJSON is one evaluation, one NDJSON chunk of the matrix
// stream.
type MatrixEntryJSON struct {
	// Topology renders the cell's machine as "chips x cores x smt".
	Topology string `json:"topology"`
	// Scenario is the cell's canonical scenario identity.
	Scenario string `json:"scenario"`
	// Policy is the evaluated policy's canonical identity.
	Policy string `json:"policy"`
	// Cycles is the evaluation's simulated cycle count.
	Cycles int64 `json:"cycles"`
	// Seconds is the evaluation's simulated wall time.
	Seconds float64 `json:"seconds"`
	// ImbalancePct measures the evaluation's load imbalance.
	ImbalancePct float64 `json:"imbalance_pct"`
	// Speedup is the policy's speedup over the static control.
	Speedup float64 `json:"speedup_vs_static"`
}

// MatrixDone is the terminal NDJSON chunk of a matrix stream.
type MatrixDone struct {
	// Done is always true; it marks the terminal chunk.
	Done bool `json:"done"`
	// Cells counts the topology × scenario cells evaluated.
	Cells int `json:"cells"`
	// Entries counts the per-policy entries streamed before this chunk.
	Entries int `json:"entries"`
}

// ServeStats reports the admission gate's state in /healthz.
type ServeStats struct {
	// InFlight is the number of simulation requests executing now.
	InFlight int64 `json:"in_flight"`
	// Queued is the number of requests waiting for a slot.
	Queued int64 `json:"queued"`
	// Rejected counts requests shed with 429 since the server started.
	Rejected int64 `json:"rejected"`
	// MaxInFlight and MaxQueue echo the effective limits.
	MaxInFlight int `json:"max_in_flight"`
	// MaxQueue is the admission queue's capacity.
	MaxQueue int `json:"max_queue"`
}

// Health is the GET /healthz reply.
type Health struct {
	// Status is "ok" whenever the server answers.
	Status string `json:"status"`
	// Topology renders the machine as "chips x cores x smt".
	Topology string `json:"topology"`
	// Contexts is the machine's hardware context count.
	Contexts int `json:"contexts"`
	// Cache reports the result cache's hit/miss counters.
	Cache smtbalance.CacheStats `json:"cache"`
	// Serve reports the admission gate's state.
	Serve ServeStats `json:"serve"`
}

// errorJSON is every error reply's shape.
type errorJSON struct {
	Error string `json:"error"`
}

// errOverloaded is gate.acquire's verdict when both the in-flight slots
// and the queue are full; handlers translate it to 429.
var errOverloaded = errors.New("serve: overloaded")

// gate is the admission controller: a fixed pool of in-flight slots
// plus a bounded count of waiters.  Anything beyond both bounds is shed
// immediately — the one response a saturated server can still afford.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64
	rejected atomic.Int64
}

func newGate(maxInFlight, maxQueue int) *gate {
	return &gate{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire reserves an execution slot, waiting in the queue if one is
// not immediately free.  It returns errOverloaded when the queue is
// full, or ctx.Err() if the caller gives up while waiting.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.rejected.Add(1)
		return errOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an acquired slot.
func (g *gate) release() {
	g.inflight.Add(-1)
	<-g.slots
}

func (g *gate) stats() ServeStats {
	return ServeStats{
		InFlight:    g.inflight.Load(),
		Queued:      g.queued.Load(),
		Rejected:    g.rejected.Load(),
		MaxInFlight: cap(g.slots),
		MaxQueue:    int(g.maxQueue),
	}
}

type server struct {
	m   *smtbalance.Machine
	mx  *smtbalance.Matrix
	cfg Config
	g   *gate
}

// NewHandler serves the API on one shared Machine.  Matrix requests
// run on a shared Matrix engine of their own (scenario cells may name
// topologies other than the Machine's), whose cell cache likewise
// persists across requests.
func NewHandler(m *smtbalance.Machine, cfg Config) http.Handler {
	cfg = cfg.withDefaults()
	s := &server{m: m, mx: smtbalance.NewMatrix(), cfg: cfg, g: newGate(cfg.MaxInFlight, cfg.MaxQueue)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("POST /v1/run", s.run)
	mux.HandleFunc("POST /v1/sweep", s.sweep)
	mux.HandleFunc("POST /v1/matrix", s.matrix)
	return mux
}

// admit passes the request through the admission gate, writing the 429
// (with a Retry-After hint) or client-gone verdict itself.  Handlers
// must defer s.g.release() on true.
func (s *server) admit(w http.ResponseWriter, r *http.Request) bool {
	switch err := s.g.acquire(r.Context()); {
	case err == nil:
		return true
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		writeError(w, http.StatusTooManyRequests,
			"server at capacity (%d in flight, %d queued); retry after %s",
			s.cfg.MaxInFlight, s.cfg.MaxQueue, s.cfg.RetryAfter)
	default:
		// Client gave up while queued; nothing useful to write.
	}
	return false
}

// extendWriteDeadline pushes the connection's write deadline
// cfg.WriteTimeout into the future; called before every response write
// so a stalled client is cut loose while a merely slow one, reading
// chunk by chunk, keeps its stream.  Best-effort: writers without
// deadline support (httptest recorders) are left alone.
func (s *server) extendWriteDeadline(rc *http.ResponseController) {
	_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// decode reads and strictly parses a JSON body into v.
func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		}
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// buildJob validates the wire job against the config limits and converts
// it.  All errors are client errors.
func (s *server) buildJob(j Job) (smtbalance.Job, error) {
	if len(j.Ranks) == 0 {
		return smtbalance.Job{}, fmt.Errorf("job has no ranks")
	}
	if len(j.Ranks) > s.cfg.MaxRanks {
		return smtbalance.Job{}, fmt.Errorf("job has %d ranks; this server accepts at most %d", len(j.Ranks), s.cfg.MaxRanks)
	}
	name := j.Name
	if name == "" {
		name = "serve"
	}
	out := smtbalance.Job{Name: name}
	for r, prog := range j.Ranks {
		if len(prog) == 0 {
			return smtbalance.Job{}, fmt.Errorf("rank %d has no phases", r)
		}
		if len(prog) > s.cfg.MaxPhases {
			return smtbalance.Job{}, fmt.Errorf("rank %d has %d phases; this server accepts at most %d", r, len(prog), s.cfg.MaxPhases)
		}
		var phases []smtbalance.Phase
		for i, ph := range prog {
			set := 0
			if ph.Compute != nil {
				set++
			}
			if ph.Barrier {
				set++
			}
			if ph.Exchange != nil {
				set++
			}
			if set != 1 {
				return smtbalance.Job{}, fmt.Errorf("rank %d phase %d: exactly one of compute, barrier, exchange must be set", r, i)
			}
			switch {
			case ph.Compute != nil:
				c := ph.Compute
				if err := smtbalance.ParseKind(c.Kind); err != nil {
					return smtbalance.Job{}, fmt.Errorf("rank %d phase %d: %v", r, i, err)
				}
				if c.N <= 0 || c.N > s.cfg.MaxComputeN {
					return smtbalance.Job{}, fmt.Errorf("rank %d phase %d: compute n must be in 1..%d, got %d", r, i, s.cfg.MaxComputeN, c.N)
				}
				if c.Footprint < 0 {
					return smtbalance.Job{}, fmt.Errorf("rank %d phase %d: negative footprint", r, i)
				}
				phases = append(phases, smtbalance.ComputeSized(c.Kind, c.N, c.Footprint))
			case ph.Barrier:
				phases = append(phases, smtbalance.Barrier())
			default:
				e := ph.Exchange
				if e.Bytes < 0 {
					return smtbalance.Job{}, fmt.Errorf("rank %d phase %d: negative exchange bytes", r, i)
				}
				for _, p := range e.Peers {
					if p < 0 || p >= len(j.Ranks) {
						return smtbalance.Job{}, fmt.Errorf("rank %d phase %d: exchange peer %d outside 0..%d", r, i, p, len(j.Ranks)-1)
					}
				}
				phases = append(phases, smtbalance.Exchange(e.Bytes, e.Peers...))
			}
		}
		out.Ranks = append(out.Ranks, phases)
	}
	return out, nil
}

// buildPlacement resolves a request's placement choice.
func (s *server) buildPlacement(req RunRequest, ranks int) (smtbalance.Placement, error) {
	topo := s.m.Topology()
	switch {
	case req.Placement != nil && req.Pin != "":
		return smtbalance.Placement{}, fmt.Errorf("placement and pin are mutually exclusive")
	case req.Pin != "":
		pl, err := smtbalance.ParsePlacement(topo, req.Pin)
		if err != nil {
			return smtbalance.Placement{}, err
		}
		if len(pl.CPU) != ranks {
			return smtbalance.Placement{}, fmt.Errorf("pin places %d ranks but the job has %d", len(pl.CPU), ranks)
		}
		return pl, nil
	case req.Placement != nil:
		p := req.Placement
		if len(p.CPUs) != ranks || len(p.Priorities) != ranks {
			return smtbalance.Placement{}, fmt.Errorf("placement maps %d CPUs and %d priorities for a %d-rank job",
				len(p.CPUs), len(p.Priorities), ranks)
		}
		pl := smtbalance.Placement{CPU: p.CPUs}
		for _, pr := range p.Priorities {
			prio := smtbalance.Priority(pr)
			if !prio.Valid() {
				return smtbalance.Placement{}, fmt.Errorf("priority %d outside 0..7", pr)
			}
			pl.Priority = append(pl.Priority, prio)
		}
		return pl, nil
	default:
		return topo.PinInOrder(ranks)
	}
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	topo := s.m.Topology()
	writeJSON(w, http.StatusOK, Health{
		Status:   "ok",
		Topology: topo.String(),
		Contexts: topo.Contexts(),
		Cache:    s.m.CacheStats(),
		Serve:    s.g.stats(),
	})
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	job, err := s.buildJob(req.Job)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pl, err := s.buildPlacement(req, len(job.Ranks))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var pol smtbalance.Policy
	if req.Policy != "" {
		if pol, err = smtbalance.ParsePolicy(req.Policy); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if !s.admit(w, r) {
		return
	}
	defer s.g.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	res, err := s.m.RunPolicy(ctx, job, pl, pol)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "run exceeded the server's %s budget", s.cfg.Timeout)
		case r.Context().Err() != nil:
			// Client went away; nothing useful to write.
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	resolved := res.Policy
	if resolved == "" {
		resolved = "static" // no policy attached: the launch plan ran as-is
	}
	out := RunResponse{
		Seconds:       res.Seconds,
		Cycles:        res.Cycles,
		ImbalancePct:  res.ImbalancePct,
		Iterations:    res.Iterations,
		Policy:        resolved,
		BalancerMoves: res.BalancerMoves,
	}
	for _, rr := range res.Ranks {
		out.Ranks = append(out.Ranks, RankResult{
			CPU: rr.CPU, Core: rr.Core, Chip: rr.Chip, Priority: int(rr.Priority),
			ComputePct: rr.ComputePct, SyncPct: rr.SyncPct, CommPct: rr.CommPct,
			Instructions: rr.Instructions,
		})
	}
	s.extendWriteDeadline(http.NewResponseController(w))
	writeJSON(w, http.StatusOK, out)
}

func (s *server) sweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	job, err := s.buildJob(req.Job)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var space smtbalance.Space
	switch req.Space.Alphabet {
	case "", "user":
		space = smtbalance.UserSettableSpace()
	case "os":
		space = smtbalance.OSSettableSpace()
	default:
		writeError(w, http.StatusBadRequest, "unknown space alphabet %q (want user or os)", req.Space.Alphabet)
		return
	}
	if len(req.Space.Priorities) > 0 {
		space.Priorities = nil
		for _, p := range req.Space.Priorities {
			space.Priorities = append(space.Priorities, smtbalance.Priority(p))
		}
	}
	space.FixPairing = req.Space.FixPairing
	for _, spec := range req.Space.Policies {
		pol, err := smtbalance.ParsePolicy(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		space.Policies = append(space.Policies, pol)
	}
	if req.Top < 0 {
		writeError(w, http.StatusBadRequest, "top must be >= 0, got %d", req.Top)
		return
	}
	if req.Screen < 0 {
		writeError(w, http.StatusBadRequest, "screen must be >= 0, got %d", req.Screen)
		return
	}
	// The zero-valued objective already means "minimize cycles".
	obj := smtbalance.WeightedObjective(req.Objective.CyclesWeight, req.Objective.ImbalanceWeight)

	if !s.admit(w, r) {
		return
	}
	defer s.g.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	// Stream the ranking as NDJSON chunks, best first, flushing per
	// entry as the iterator yields it, so a large ranking reaches the
	// client while later entries are still being written — the reply is
	// never buffered whole.  (Score normalization means the first entry
	// still waits for evaluation to finish; see Machine.Sweep.)
	// Evaluated for the terminal record is recovered through Progress:
	// the ranking may be Top-truncated, so len(entries) undercounts.
	var evaluated atomic.Int64
	rc := http.NewResponseController(w)
	flusher, _ := w.(http.Flusher)
	var enc *json.Encoder
	rank := 0
	for e, err := range s.m.Sweep(ctx, job, space, &smtbalance.SweepOptions{
		Workers:   s.cfg.SweepWorkers,
		Top:       req.Top,
		Screen:    req.Screen,
		Objective: obj,
		Progress:  func(done, total int) { evaluated.Store(int64(done)) },
	}) {
		if err != nil {
			switch {
			case enc != nil:
				// Mid-stream: the status line is gone; append the error
				// as the terminal record instead of a silent cut.
				_ = enc.Encode(errorJSON{Error: err.Error()})
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "sweep exceeded the server's %s budget", s.cfg.Timeout)
			case r.Context().Err() != nil:
				// Client went away.
			default:
				writeError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		if enc == nil {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			enc = json.NewEncoder(w)
			enc.SetEscapeHTML(false)
		}
		rank++
		entry := SweepEntryJSON{
			Rank:         rank,
			Policy:       e.Policy,
			CPUs:         e.Placement.CPU,
			Cycles:       e.Cycles,
			Seconds:      e.Seconds,
			ImbalancePct: e.ImbalancePct,
			Score:        e.Score,
		}
		for _, p := range e.Placement.Priority {
			entry.Priorities = append(entry.Priorities, int(p))
		}
		s.extendWriteDeadline(rc)
		if err := enc.Encode(entry); err != nil {
			return // client gone (or write deadline hit) mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if enc == nil {
		// Unreachable today (a valid space always ranks entries), but a
		// terminal record must not panic on an empty stream.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc = json.NewEncoder(w)
	}
	s.extendWriteDeadline(rc)
	_ = enc.Encode(SweepDone{Done: true, Evaluated: int(evaluated.Load()), Returned: rank})
	if flusher != nil {
		flusher.Flush()
	}
}

// checkScenarioLimits bounds what one matrix scenario may ask of the
// server, reading the scenario's effective parameters (the built-in
// shapes expose ranks/iters/base; a custom shape without them is
// bounded by its topology's context count and the request timeout).
func (s *server) checkScenarioLimits(sc smtbalance.Scenario) error {
	params := sc.Params()
	if v, err := strconv.Atoi(params["ranks"]); err == nil && v > s.cfg.MaxRanks {
		return fmt.Errorf("scenario %q asks for %d ranks; this server accepts at most %d", smtbalance.ScenarioID(sc), v, s.cfg.MaxRanks)
	}
	if v, err := strconv.Atoi(params["iters"]); err == nil && v > s.cfg.MaxPhases/2 {
		return fmt.Errorf("scenario %q asks for %d iterations; this server accepts at most %d", smtbalance.ScenarioID(sc), v, s.cfg.MaxPhases/2)
	}
	if v, err := strconv.ParseInt(params["base"], 10, 64); err == nil && v > s.cfg.MaxComputeN {
		return fmt.Errorf("scenario %q asks for %d-instruction phases; this server accepts at most %d", smtbalance.ScenarioID(sc), v, s.cfg.MaxComputeN)
	}
	return nil
}

// matrix streams a policy × scenario × topology evaluation matrix as
// NDJSON, cell by cell as each finishes (cached cells stream
// immediately), then a terminal MatrixDone record.  Errors before the
// first entry are JSON error replies; an error after streaming began is
// appended as a final {"error": ...} record.
func (s *server) matrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if !s.decode(w, r, &req) {
		return
	}
	var spec smtbalance.MatrixSpec
	for _, raw := range req.Scenarios {
		sc, err := smtbalance.ParseScenario(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.checkScenarioLimits(sc); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spec.Scenarios = append(spec.Scenarios, sc)
	}
	for _, raw := range req.Policies {
		pol, err := smtbalance.ParsePolicy(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spec.Policies = append(spec.Policies, pol)
	}
	for _, raw := range req.Topologies {
		topo, err := smtbalance.ParseTopology(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spec.Topologies = append(spec.Topologies, topo)
	}
	if len(spec.Topologies) == 0 {
		spec.Topologies = []smtbalance.Topology{s.m.Topology()}
	}
	// A scenario with ranks=0 sizes its job to the topology, so the
	// rank cap must bound the requested machines too — otherwise a
	// "64x64x2" topology smuggles an 8192-rank job past MaxRanks.
	for _, topo := range spec.Topologies {
		if topo.Contexts() > s.cfg.MaxRanks {
			writeError(w, http.StatusBadRequest, "topology %s has %d hardware contexts; this server simulates at most %d ranks", topo, topo.Contexts(), s.cfg.MaxRanks)
			return
		}
	}
	if len(spec.Scenarios) == 0 || len(spec.Policies) == 0 {
		writeError(w, http.StatusBadRequest, "scenarios and policies must both be non-empty")
		return
	}
	if req.Screen < 0 {
		writeError(w, http.StatusBadRequest, "screen must be >= 0, got %d", req.Screen)
		return
	}
	if cells := len(spec.Topologies) * len(spec.Scenarios); cells > s.cfg.MaxMatrixCells {
		writeError(w, http.StatusBadRequest, "%d topology × scenario cells; this server accepts at most %d", cells, s.cfg.MaxMatrixCells)
		return
	}

	if !s.admit(w, r) {
		return
	}
	defer s.g.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	rc := http.NewResponseController(w)
	flusher, _ := w.(http.Flusher)
	var enc *json.Encoder
	entries := 0
	for e, err := range s.mx.Eval(ctx, spec, &smtbalance.MatrixOptions{Workers: s.cfg.SweepWorkers, Screen: req.Screen}) {
		if err != nil {
			switch {
			case enc != nil:
				// Mid-stream: the status line is gone; append the error
				// as the terminal record instead of a silent cut.
				_ = enc.Encode(errorJSON{Error: err.Error()})
			case errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "matrix exceeded the server's %s budget", s.cfg.Timeout)
			case r.Context().Err() != nil:
				// Client went away.
			default:
				writeError(w, http.StatusBadRequest, "%v", err)
			}
			return
		}
		if enc == nil {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			enc = json.NewEncoder(w)
			enc.SetEscapeHTML(false)
		}
		s.extendWriteDeadline(rc)
		if err := enc.Encode(MatrixEntryJSON{
			Topology:     e.Topology,
			Scenario:     e.Scenario,
			Policy:       e.Policy,
			Cycles:       e.Cycles,
			Seconds:      e.Seconds,
			ImbalancePct: e.ImbalancePct,
			Speedup:      e.Speedup,
		}); err != nil {
			return // client gone (or write deadline hit) mid-stream
		}
		entries++
		if flusher != nil {
			flusher.Flush()
		}
	}
	if enc == nil {
		// Unreachable today (a validated spec always yields entries),
		// but a terminal record must not panic on an empty stream.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc = json.NewEncoder(w)
	}
	s.extendWriteDeadline(rc)
	_ = enc.Encode(MatrixDone{Done: true, Cells: len(spec.Topologies) * len(spec.Scenarios), Entries: entries})
	if flusher != nil {
		flusher.Flush()
	}
}
