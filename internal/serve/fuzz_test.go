package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	smtbalance "repro"
)

// FuzzServeRun throws arbitrary bodies at the POST /v1/run handler: the
// handler must never panic, must answer with a sane status, and a 200
// must carry a well-formed RunResponse.  Tight limits keep accepted
// fuzz inputs cheap to simulate.
func FuzzServeRun(f *testing.F) {
	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		f.Fatal(err)
	}
	handler := NewHandler(m, Config{
		MaxBodyBytes: 1 << 16,
		MaxRanks:     4,
		MaxPhases:    8,
		MaxComputeN:  20_000,
		Timeout:      5 * time.Second,
	})

	for _, seed := range []string{
		``,
		`{}`,
		`{{{`,
		`null`,
		`[1,2,3]`,
		`{"job": {"ranks": [[{"compute": {"kind": "fpu", "n": 2000}}, {"barrier": true}]]}}`,
		`{"job": {"ranks": [
		  [{"compute": {"kind": "fpu", "n": 1000}}, {"barrier": true}],
		  [{"compute": {"kind": "l1", "n": 4000}}, {"barrier": true}],
		  [{"compute": {"kind": "fpu", "n": 1000}}, {"barrier": true}],
		  [{"compute": {"kind": "mem", "n": 4000}}, {"barrier": true}]
		]}, "placement": {"cpus": [0, 1, 2, 3], "priorities": [4, 6, 4, 6]}}`,
		`{"job": {"ranks": [[{"exchange": {"bytes": 64, "peers": [1]}}], [{"exchange": {"bytes": 64, "peers": [0]}}]]}}`,
		`{"job": {"ranks": [[{"barrier": true}]]}, "pin": "0.0.0@4"}`,
		`{"job": {"ranks": [[{"barier": true}]]}}`,
		`{"job": {"ranks": [[{"compute": {"kind": "gpu", "n": 10}}]]}}`,
		`{"job": {"ranks": [[{"compute": {"kind": "fpu", "n": -5}}]]}}`,
		`{"job": {"ranks": [[{"compute": {"kind": "fpu", "n": 9999999999999}}]]}}`,
		`{"job": {"ranks": [[{"compute": {"kind": "fpu", "n": 100, "footprint": -1}}]]}}`,
		`{"job": {"name": "x", "ranks": [[{"barrier": true, "compute": {"kind": "fpu", "n": 1}}]]}}`,
		`{"job": {"ranks": [[{"exchange": {"bytes": -1, "peers": [0]}}]]}}`,
		`{"job": {"ranks": [[{"barrier": true}]]}, "placement": {"cpus": [7], "priorities": [4]}}`,
		`{"job": {"ranks": [[{"barrier": true}]]}, "pin": "9.9.9@9"}`,
		`{"job": {"ranks": [[{"barrier": true}]]}} trailing`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case http.StatusOK:
			var out RunResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("200 with undecodable body: %v\n%s", err, rec.Body.Bytes())
			}
			// A trivial job (barriers only) can finish in 0 cycles.
			if out.Cycles < 0 || len(out.Ranks) == 0 {
				t.Fatalf("200 with empty result: %+v", out)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusGatewayTimeout:
			var e errorJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("%d without an error body: %s", rec.Code, rec.Body.Bytes())
			}
		default:
			t.Fatalf("unexpected status %d: %s", rec.Code, rec.Body.Bytes())
		}
	})
}
