package metrics

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	tb := NewTable("title", "a", "bb", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("longer", "x") // short row padded
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "title") {
		t.Error("title missing")
	}
	// Columns align: the header and rows start each column at the same
	// offset.
	if idx := strings.Index(lines[1], "bb"); idx < 0 || !strings.HasPrefix(lines[3][idx:], "2") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced a leading blank line")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(12.345); got != "12.35%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:      "2.50s",
		0.0031:   "3.100ms",
		0.000002: "2.0µs",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(100, 110); got != "+10.0%" {
		t.Errorf("RelDiff = %q", got)
	}
	if got := RelDiff(0, 1); got != "n/a" {
		t.Errorf("RelDiff zero base = %q", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 80); got != "+20.00%" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(100, 120); got != "-20.00%" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(0, 1); got != "n/a" {
		t.Errorf("Speedup zero base = %q", got)
	}
}
