// Package metrics provides small reporting helpers shared by the
// experiment harness and the CLI tools: aligned text tables in the style
// of the paper's Tables IV-VI, and paper-vs-measured comparison
// formatting.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers is the column header row.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells are blank, extra cells are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Pct formats a percentage with two decimals.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", x) }

// Seconds formats a duration in seconds with adaptive precision (the
// simulated runs are milliseconds; the paper's were tens of seconds).
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}

// RelDiff formats the relative difference of b versus a in percent
// (positive means b is larger).
func RelDiff(a, b float64) string {
	if a == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b-a)/a)
}

// Speedup formats the improvement of new over base as the paper reports
// it: positive percent improvement of total execution time.
func Speedup(base, new float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", 100*(base-new)/base)
}
