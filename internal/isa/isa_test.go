package isa

import (
	"testing"
	"testing/quick"
)

func drain(s Stream, max int) []Instr {
	var out []Instr
	var in Instr
	for len(out) < max && s.Next(&in) {
		out = append(out, in)
	}
	return out
}

func TestOpUnits(t *testing.T) {
	cases := map[Op]Unit{
		Nop: UnitFX, FX: UnitFX, FXMul: UnitFX, OrNop: UnitFX, Syscall: UnitFX,
		FP: UnitFP, FPDiv: UnitFP,
		Load: UnitLS, Store: UnitLS,
		Branch: UnitBR,
	}
	for op, unit := range cases {
		if got := op.Unit(); got != unit {
			t.Errorf("%v.Unit() = %v, want %v", op, got, unit)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty mnemonic", op)
		}
	}
	if Op(200).String() == "" {
		t.Error("invalid op must still format")
	}
	for u := Unit(0); u < NumUnits; u++ {
		if u.String() == "" {
			t.Errorf("unit %d has empty name", u)
		}
	}
}

func TestSliceStream(t *testing.T) {
	in := []Instr{{Op: FX}, {Op: FP}, {Op: Load, Addr: 64}}
	s := NewSliceStream(in)
	got := drain(s, 10)
	if len(got) != 3 || got[2].Addr != 64 {
		t.Fatalf("drained %v", got)
	}
	var i Instr
	if s.Next(&i) {
		t.Error("exhausted stream must return false")
	}
	s.Reset()
	if got := drain(s, 10); len(got) != 3 {
		t.Errorf("after Reset drained %d instrs, want 3", len(got))
	}
}

func TestLoopStream(t *testing.T) {
	s := NewLoopStream([]Instr{{Op: FX}, {Op: Branch, Taken: true}})
	got := drain(s, 7)
	if len(got) != 7 {
		t.Fatalf("loop stream ended early")
	}
	for i, in := range got {
		wantOp := FX
		if i%2 == 1 {
			wantOp = Branch
		}
		if in.Op != wantOp {
			t.Errorf("instr %d op %v, want %v", i, in.Op, wantOp)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("empty loop body must panic")
		}
	}()
	NewLoopStream(nil)
}

func TestLimit(t *testing.T) {
	s := Limit(NewLoopStream([]Instr{{Op: FX}}), 5)
	if got := drain(s, 100); len(got) != 5 {
		t.Fatalf("limit yielded %d instrs, want 5", len(got))
	}
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", s.Remaining())
	}
	s.Reset()
	if s.Remaining() != 5 {
		t.Errorf("after Reset Remaining = %d, want 5", s.Remaining())
	}
	if got := drain(s, 3); len(got) != 3 || s.Remaining() != 2 {
		t.Errorf("partial drain: got %d instrs, remaining %d", len(got), s.Remaining())
	}
}

func TestLimitShortInner(t *testing.T) {
	s := Limit(NewSliceStream([]Instr{{Op: FX}, {Op: FX}}), 10)
	if got := drain(s, 100); len(got) != 2 {
		t.Errorf("limit over short inner yielded %d, want 2", len(got))
	}
}

func TestConcat(t *testing.T) {
	s := Concat(
		NewSliceStream([]Instr{{Op: FX}}),
		Empty{},
		NewSliceStream([]Instr{{Op: FP}, {Op: Load}}),
	)
	got := drain(s, 10)
	if len(got) != 3 || got[0].Op != FX || got[1].Op != FP || got[2].Op != Load {
		t.Fatalf("concat drained %v", got)
	}
	s.Reset()
	if got := drain(s, 10); len(got) != 3 {
		t.Errorf("after Reset drained %d, want 3", len(got))
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewSliceStream([]Instr{{Op: FX}, {Op: FX}, {Op: FX}}))
	drain(c, 2)
	if c.Count != 2 {
		t.Errorf("Count = %d, want 2", c.Count)
	}
	drain(c, 10)
	if c.Count != 3 {
		t.Errorf("Count = %d, want 3", c.Count)
	}
	c.Reset()
	if c.Count != 0 {
		t.Errorf("after Reset Count = %d, want 0", c.Count)
	}
}

func TestPrioritySet(t *testing.T) {
	s := PrioritySet(6)
	got := drain(s, 5)
	if len(got) != 1 || got[0].Op != OrNop || got[0].Pri != 6 {
		t.Fatalf("PrioritySet stream = %v", got)
	}
}

// Property: Limit(s, n) yields exactly min(n, len(s)) instructions and the
// prefix matches the unlimited stream.
func TestPropLimitPrefix(t *testing.T) {
	f := func(ops []uint8, n uint8) bool {
		instrs := make([]Instr, len(ops))
		for i, o := range ops {
			instrs[i] = Instr{Op: Op(o % uint8(numOps))}
		}
		full := drain(NewSliceStream(instrs), len(instrs))
		lim := drain(Limit(NewSliceStream(instrs), int64(n)), len(instrs)+1)
		want := int(n)
		if want > len(instrs) {
			want = len(instrs)
		}
		if len(lim) != want {
			return false
		}
		for i := range lim {
			if lim[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Reset makes any combinator stream replay identically.
func TestPropResetReplays(t *testing.T) {
	f := func(ops []uint8) bool {
		instrs := make([]Instr, len(ops))
		for i, o := range ops {
			instrs[i] = Instr{Op: Op(o % uint8(numOps)), Addr: uint64(i) * 8}
		}
		s := Concat(NewSliceStream(instrs), Limit(NewLoopStream([]Instr{{Op: FX}}), 3))
		first := drain(s, len(instrs)+3)
		s.Reset()
		second := drain(s, len(instrs)+3)
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
