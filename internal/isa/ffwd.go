package isa

import "encoding/binary"

// This file implements FastForwarder for the stream combinators, so a
// machine built from them stays eligible for phase-skip (a single
// unsupported stream disables the fast path for the whole run).  Each
// implementation leads with a distinct tag byte so differently-shaped
// stream trees can never produce colliding snapshots.
//
// Normalization rules, per type:
//
//   - SliceStream: exhaustion (pos >= len) is an absolute event, so the
//     raw position is the norm; it is also the one extensive counter.
//   - LoopStream: pos wraps inside Next and stays in [0, len), so it is
//     pure norm — it cannot grow across a window whose norm recurs, and
//     there is nothing to extrapolate.
//   - LimitStream: the raw used count is norm (cut-off is absolute) and
//     counter, followed by the inner stream's state.
//   - ConcatStream: the current part index is norm; every part is then
//     captured in order — parts already exhausted still participate so
//     the append order is static and matches FFCtrs/FFAdvance.
//   - CountingStream: Count is deliberately excluded from the norm (it
//     grows monotonically without influencing future output, and would
//     otherwise block every snapshot match) but is the first extensive
//     counter, followed by the inner stream's state.
//
// Wrappers support capture exactly when every wrapped stream does.

// ffStream returns s as a supported FastForwarder, or ok=false when s
// cannot be captured.
func ffStream(s Stream) (FastForwarder, bool) {
	ff, ok := s.(FastForwarder)
	if !ok || !ff.FFSupported() {
		return nil, false
	}
	return ff, true
}

// FFSupported implements FastForwarder.
func (s *SliceStream) FFSupported() bool { return true }

// FFNorm implements FastForwarder.
func (s *SliceStream) FFNorm(b []byte) []byte {
	b = append(b, 0xE1)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.Instrs)))
	return binary.LittleEndian.AppendUint64(b, uint64(s.pos))
}

// FFCtrs implements FastForwarder.
func (s *SliceStream) FFCtrs(c []int64) []int64 { return append(c, int64(s.pos)) }

// FFAdvance implements FastForwarder.
func (s *SliceStream) FFAdvance(k, dt int64, d []int64) []int64 {
	s.pos += int(k * d[0])
	return d[1:]
}

// FFSupported implements FastForwarder.
func (s *LoopStream) FFSupported() bool { return true }

// FFNorm implements FastForwarder.
func (s *LoopStream) FFNorm(b []byte) []byte {
	b = append(b, 0xE2)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.Body)))
	return binary.LittleEndian.AppendUint64(b, uint64(s.pos))
}

// FFCtrs implements FastForwarder.
func (s *LoopStream) FFCtrs(c []int64) []int64 { return c }

// FFAdvance implements FastForwarder.
func (s *LoopStream) FFAdvance(k, dt int64, d []int64) []int64 { return d }

// FFSupported implements FastForwarder.
func (s *LimitStream) FFSupported() bool {
	_, ok := ffStream(s.Inner)
	return ok
}

// FFNorm implements FastForwarder.
func (s *LimitStream) FFNorm(b []byte) []byte {
	b = append(b, 0xE3)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.N))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.used))
	ff, _ := ffStream(s.Inner)
	return ff.FFNorm(b)
}

// FFCtrs implements FastForwarder.
func (s *LimitStream) FFCtrs(c []int64) []int64 {
	c = append(c, s.used)
	ff, _ := ffStream(s.Inner)
	return ff.FFCtrs(c)
}

// FFAdvance implements FastForwarder.
func (s *LimitStream) FFAdvance(k, dt int64, d []int64) []int64 {
	s.used += k * d[0]
	ff, _ := ffStream(s.Inner)
	return ff.FFAdvance(k, dt, d[1:])
}

// FFSupported implements FastForwarder.
func (s *ConcatStream) FFSupported() bool {
	for _, p := range s.Parts {
		if _, ok := ffStream(p); !ok {
			return false
		}
	}
	return true
}

// FFNorm implements FastForwarder.
func (s *ConcatStream) FFNorm(b []byte) []byte {
	b = append(b, 0xE4)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.Parts)))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.cur))
	for _, p := range s.Parts {
		ff, _ := ffStream(p)
		b = ff.FFNorm(b)
	}
	return b
}

// FFCtrs implements FastForwarder.
func (s *ConcatStream) FFCtrs(c []int64) []int64 {
	for _, p := range s.Parts {
		ff, _ := ffStream(p)
		c = ff.FFCtrs(c)
	}
	return c
}

// FFAdvance implements FastForwarder.
func (s *ConcatStream) FFAdvance(k, dt int64, d []int64) []int64 {
	for _, p := range s.Parts {
		ff, _ := ffStream(p)
		d = ff.FFAdvance(k, dt, d)
	}
	return d
}

// FFSupported implements FastForwarder.
func (s *CountingStream) FFSupported() bool {
	_, ok := ffStream(s.Inner)
	return ok
}

// FFNorm implements FastForwarder.
func (s *CountingStream) FFNorm(b []byte) []byte {
	b = append(b, 0xE5)
	ff, _ := ffStream(s.Inner)
	return ff.FFNorm(b)
}

// FFCtrs implements FastForwarder.
func (s *CountingStream) FFCtrs(c []int64) []int64 {
	c = append(c, s.Count)
	ff, _ := ffStream(s.Inner)
	return ff.FFCtrs(c)
}

// FFAdvance implements FastForwarder.
func (s *CountingStream) FFAdvance(k, dt int64, d []int64) []int64 {
	s.Count += k * d[0]
	ff, _ := ffStream(s.Inner)
	return ff.FFAdvance(k, dt, d[1:])
}
