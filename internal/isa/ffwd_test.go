package isa

import (
	"bytes"
	"testing"
)

// step pulls n instructions off the stream, failing if it dries up.
func step(t *testing.T, s Stream, n int) {
	t.Helper()
	var in Instr
	for i := 0; i < n; i++ {
		if !s.Next(&in) {
			t.Fatalf("stream exhausted after %d of %d instructions", i, n)
		}
	}
}

// body is a two-instruction loop kernel shared by the combinator tests.
var body = []Instr{{Op: FP, Dep: 1}, {Op: Branch, Taken: true}}

// TestCombinatorFastForward drives each combinator the slow way and via
// FFAdvance and checks the norms and counters agree — the exact
// equivalence the phase-skip engine relies on when it applies k window
// repetitions at once.
func TestCombinatorFastForward(t *testing.T) {
	mk := func() map[string]func() Stream {
		return map[string]func() Stream{
			"slice": func() Stream { return NewSliceStream(make([]Instr, 64)) },
			"loop":  func() Stream { return NewLoopStream(body) },
			"limit": func() Stream { return Limit(NewLoopStream(body), 64) },
			"concat": func() Stream {
				return Concat(NewSliceStream(make([]Instr, 4)), NewLoopStream(body))
			},
			"counting": func() Stream { return NewCounting(NewLoopStream(body)) },
		}
	}
	// Window of 4 instructions, applied 5 more times: slow stream takes
	// 4 + 4 + 5*4 steps, fast stream takes 4 + 4 steps then one
	// FFAdvance(5, ...).
	const window, reps = 4, int64(5)
	for name, newStream := range mk() {
		t.Run(name, func(t *testing.T) {
			slow := newStream()
			fast := newStream()
			sff := slow.(FastForwarder)
			fff := fast.(FastForwarder)
			if !sff.FFSupported() || !fff.FFSupported() {
				t.Fatal("combinator does not support fast-forward")
			}
			step(t, slow, window)
			step(t, fast, window)
			before := fff.FFCtrs(nil)
			step(t, slow, window)
			step(t, fast, window)
			after := fff.FFCtrs(nil)
			if len(before) != len(after) {
				t.Fatalf("counter count changed across window: %d -> %d", len(before), len(after))
			}
			// The loop-based kernels recur with period 2, so a 4-wide
			// window recurs exactly; assert it (slice is position-normed
			// and skipped).
			delta := make([]int64, len(after))
			for i := range after {
				delta[i] = after[i] - before[i]
			}
			d := fff.FFAdvance(reps, 0, delta)
			if len(d) != 0 {
				t.Fatalf("FFAdvance left %d unconsumed deltas", len(d))
			}
			step(t, slow, int(reps)*window)
			slowNorm := sff.FFNorm(nil)
			fastNorm := fff.FFNorm(nil)
			if !bytes.Equal(slowNorm, fastNorm) {
				t.Fatalf("norms diverge after fast-forward:\n slow %x\n fast %x", slowNorm, fastNorm)
			}
			slowCtrs := sff.FFCtrs(nil)
			fastCtrs := fff.FFCtrs(nil)
			for i := range slowCtrs {
				if slowCtrs[i] != fastCtrs[i] {
					t.Fatalf("counter %d diverges after fast-forward: slow %d fast %d", i, slowCtrs[i], fastCtrs[i])
				}
			}
			// Both streams must agree on what comes next.
			var si, fi Instr
			sOK, fOK := slow.Next(&si), fast.Next(&fi)
			if sOK != fOK || si != fi {
				t.Fatalf("post-skip streams diverge: slow (%v,%v) fast (%v,%v)", si, sOK, fi, fOK)
			}
		})
	}
}

// TestCombinatorFFUnsupportedPropagates checks that wrapping a stream
// without capture support reports unsupported instead of panicking or
// silently snapshotting garbage.
func TestCombinatorFFUnsupportedPropagates(t *testing.T) {
	type bare struct{ Stream }
	opaque := bare{NewLoopStream(body)}
	for name, s := range map[string]Stream{
		"limit":    Limit(opaque, 10),
		"concat":   Concat(Empty{}, opaque),
		"counting": NewCounting(opaque),
	} {
		ff, ok := s.(FastForwarder)
		if !ok {
			t.Fatalf("%s: wrapper lost the FastForwarder implementation", name)
		}
		if ff.FFSupported() {
			t.Errorf("%s: FFSupported() = true around a non-capturable inner stream", name)
		}
	}
}

// TestCombinatorNormTags checks every combinator leads its norm with a
// distinct tag byte, so differently-shaped stream trees can never
// produce colliding snapshots.
func TestCombinatorNormTags(t *testing.T) {
	streams := []FastForwarder{
		Empty{},
		NewSliceStream(nil),
		NewLoopStream(body),
		Limit(Empty{}, 1),
		Concat(),
		NewCounting(Empty{}),
	}
	seen := make(map[byte]int)
	for i, s := range streams {
		norm := s.FFNorm(nil)
		if len(norm) == 0 {
			t.Fatalf("stream %d: empty norm", i)
		}
		if prev, dup := seen[norm[0]]; dup {
			t.Errorf("streams %d and %d share norm tag %#x", prev, i, norm[0])
		}
		seen[norm[0]] = i
	}
}
