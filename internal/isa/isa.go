// Package isa defines the tiny PowerPC-like instruction set used by the
// POWER5 chip simulator (internal/power5).  Workloads are represented as
// instruction streams rather than binaries: a Stream produces one Instr at
// a time, deterministically, and can be rewound with Reset.
//
// The ISA is deliberately minimal — just enough operation classes to drive
// the simulator's functional units, cache hierarchy, branch predictor and
// the or-nop hardware-priority side channel that this reproduction is
// about.
package isa

import "fmt"

// Op is an operation class.  The simulator cares about which functional
// unit an instruction needs and how long it occupies it, not about
// register-level semantics.
type Op uint8

// Operation classes.
const (
	// Nop executes in one cycle on no particular unit.
	Nop Op = iota
	// FX is a one-cycle fixed-point ALU operation.
	FX
	// FXMul is a multi-cycle fixed-point multiply/divide.
	FXMul
	// FP is a pipelined floating-point operation (fused multiply-add class).
	FP
	// FPDiv is a long-latency unpipelined floating-point divide/sqrt.
	FPDiv
	// Load reads memory at Addr; its latency depends on the cache hierarchy.
	Load
	// Store writes memory at Addr; the store queue hides its latency.
	Store
	// Branch is a conditional branch; Taken is the architectural outcome.
	Branch
	// OrNop is the "or Rx,Rx,Rx" priority-setting no-op (see internal/hwpri).
	// Pri carries the requested hardware priority.
	OrNop
	// Syscall marks a transition into the kernel; the chip treats it as a
	// one-cycle serializing op, the OS layer gives it meaning.
	Syscall
	numOps
)

var opNames = [numOps]string{
	"nop", "fx", "fxmul", "fp", "fpdiv", "load", "store", "branch", "ornop", "syscall",
}

// String returns the mnemonic of the operation class.
func (o Op) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// Unit identifies a functional-unit class of the core.
type Unit uint8

// Functional-unit classes (POWER5 core: 2 FXU, 2 FPU, 2 LSU, 1 BXU).
const (
	UnitNone Unit = iota
	UnitFX
	UnitFP
	UnitLS
	UnitBR
	// NumUnits is the number of distinct unit classes including UnitNone.
	NumUnits
)

// String returns the unit name.
func (u Unit) String() string {
	switch u {
	case UnitNone:
		return "none"
	case UnitFX:
		return "FXU"
	case UnitFP:
		return "FPU"
	case UnitLS:
		return "LSU"
	case UnitBR:
		return "BXU"
	default:
		return fmt.Sprintf("unit(%d)", uint8(u))
	}
}

// Unit returns the functional-unit class required by the operation.
func (o Op) Unit() Unit {
	switch o {
	case FX, FXMul, OrNop, Syscall, Nop:
		return UnitFX
	case FP, FPDiv:
		return UnitFP
	case Load, Store:
		return UnitLS
	case Branch:
		return UnitBR
	default:
		return UnitNone
	}
}

// Instr is a single dynamic instruction.
type Instr struct {
	// Op is the operation class.
	Op Op
	// Addr is the effective address for Load/Store.
	Addr uint64
	// PC is a pseudo program counter used to index the branch predictor
	// and to give the instruction an identity within its loop body.
	PC uint32
	// Taken is the architectural outcome for Branch.
	Taken bool
	// Dep is the dependency distance: this instruction consumes the
	// result of the instruction issued Dep positions earlier in the same
	// context (0 = no register dependency).  It lets synthetic kernels
	// express realistic dependency chains without full register renaming.
	Dep uint8
	// Pri is the requested hardware priority for OrNop.
	Pri uint8
}

// Stream produces a deterministic sequence of instructions.
//
// Next fills *Instr and returns true, or returns false when the stream is
// exhausted.  Implementations must be cheap: Next sits on the simulator's
// per-cycle decode path.
type Stream interface {
	Next(*Instr) bool
	// Reset rewinds the stream to its initial state.
	Reset()
}

// FastForwarder is implemented by streams whose state the phase-skip
// engine (internal/mpisim) can capture and advance analytically.  The
// engine snapshots the whole machine at decision points, and when two
// snapshots are byte-identical it knows the window between them will
// repeat exactly, so it can apply k repetitions at once instead of
// ticking through them.
//
// The contract ties the three methods together: FFNorm appends the
// stream's *normalized* state — every field that influences future
// output, with absolute cycle numbers expressed relative to "now" and
// unbounded monotonic fields reduced to their behaviorally relevant
// residue — such that two streams with equal norms produce identical
// futures.  FFCtrs appends the raw extensive counters (positions,
// clocks) that grow across a window even when the norm recurs.
// FFAdvance consumes its own counters' prefix of d (the per-window
// deltas), applies k windows' worth (counter += k·delta, absolute-cycle
// fields += dt), and returns the unconsumed remainder of d.  The append
// order of FFNorm, FFCtrs and FFAdvance must match exactly.
//
// A stream that cannot guarantee the contract returns false from
// FFSupported, which disables phase-skip for the run (the simulator
// falls back to exact per-cycle execution).
type FastForwarder interface {
	FFSupported() bool
	FFNorm(b []byte) []byte
	FFCtrs(c []int64) []int64
	FFAdvance(k, dt int64, d []int64) []int64
}

// SliceStream replays a fixed instruction slice once.
type SliceStream struct {
	Instrs []Instr
	pos    int
}

// NewSliceStream returns a stream over the given instructions.
func NewSliceStream(instrs []Instr) *SliceStream { return &SliceStream{Instrs: instrs} }

// Next implements Stream.
func (s *SliceStream) Next(i *Instr) bool {
	if s.pos >= len(s.Instrs) {
		return false
	}
	*i = s.Instrs[s.pos]
	s.pos++
	return true
}

// Reset implements Stream.
func (s *SliceStream) Reset() { s.pos = 0 }

// LoopStream replays a fixed instruction slice forever (an infinite loop).
type LoopStream struct {
	Body []Instr
	pos  int
}

// NewLoopStream returns an infinite stream cycling over body.  The body
// must be non-empty.
func NewLoopStream(body []Instr) *LoopStream {
	if len(body) == 0 {
		panic("isa: empty loop body")
	}
	return &LoopStream{Body: body}
}

// Next implements Stream; it never returns false.
func (s *LoopStream) Next(i *Instr) bool {
	*i = s.Body[s.pos]
	s.pos++
	if s.pos == len(s.Body) {
		s.pos = 0
	}
	return true
}

// Reset implements Stream.
func (s *LoopStream) Reset() { s.pos = 0 }

// LimitStream truncates an inner stream after N instructions.
type LimitStream struct {
	Inner Stream
	N     int64
	used  int64
}

// Limit returns a stream that yields at most n instructions from inner.
func Limit(inner Stream, n int64) *LimitStream { return &LimitStream{Inner: inner, N: n} }

// Next implements Stream.
func (s *LimitStream) Next(i *Instr) bool {
	if s.used >= s.N {
		return false
	}
	if !s.Inner.Next(i) {
		return false
	}
	s.used++
	return true
}

// Reset implements Stream.
func (s *LimitStream) Reset() {
	s.used = 0
	s.Inner.Reset()
}

// Remaining returns how many instructions the limit still allows.
func (s *LimitStream) Remaining() int64 { return s.N - s.used }

// ConcatStream chains streams back to back.
type ConcatStream struct {
	Parts []Stream
	cur   int
}

// Concat returns a stream yielding each part in order.
func Concat(parts ...Stream) *ConcatStream { return &ConcatStream{Parts: parts} }

// Next implements Stream.
func (s *ConcatStream) Next(i *Instr) bool {
	for s.cur < len(s.Parts) {
		if s.Parts[s.cur].Next(i) {
			return true
		}
		s.cur++
	}
	return false
}

// Reset implements Stream.
func (s *ConcatStream) Reset() {
	s.cur = 0
	for _, p := range s.Parts {
		p.Reset()
	}
}

// CountingStream wraps a stream and counts the instructions delivered.
type CountingStream struct {
	Inner Stream
	// Count is the number of instructions handed out since the last Reset.
	Count int64
}

// NewCounting returns a counting wrapper around inner.
func NewCounting(inner Stream) *CountingStream { return &CountingStream{Inner: inner} }

// Next implements Stream.
func (s *CountingStream) Next(i *Instr) bool {
	if s.Inner.Next(i) {
		s.Count++
		return true
	}
	return false
}

// Reset implements Stream.
func (s *CountingStream) Reset() {
	s.Count = 0
	s.Inner.Reset()
}

// Empty is a stream with no instructions.
type Empty struct{}

// Next implements Stream.
func (Empty) Next(*Instr) bool { return false }

// Reset implements Stream.
func (Empty) Reset() {}

// FFSupported implements FastForwarder: an empty stream has no state.
func (Empty) FFSupported() bool { return true }

// FFNorm implements FastForwarder; the tag byte distinguishes the type
// from other stream implementations in a machine snapshot.
func (Empty) FFNorm(b []byte) []byte { return append(b, 0xE0) }

// FFCtrs implements FastForwarder.
func (Empty) FFCtrs(c []int64) []int64 { return c }

// FFAdvance implements FastForwarder.
func (Empty) FFAdvance(k, dt int64, d []int64) []int64 { return d }

// PrioritySet returns a single-instruction stream executing the or-nop
// that requests hardware priority pri.
func PrioritySet(pri uint8) *SliceStream {
	return NewSliceStream([]Instr{{Op: OrNop, Pri: pri}})
}
