// Package leakcheck detects goroutines leaked by a test run: the
// runtime companion to the gospawn static pass.  gospawn proves every
// `go` statement has a *visible* join; leakcheck proves the joins
// actually ran — a worker blocked forever on a channel nobody closes
// passes the static check and fails here.
//
// The design is the stack-diff approach of goleak, rebuilt on the
// standard library only (the build environment is offline):
// runtime.Stack(all=true) is parsed into per-goroutine records, a
// small allowlist drops the runtime's own helpers and the test
// harness, and anything left after a settling grace period is a leak.
// Wire it into a package in one line:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Goroutine is one goroutine parsed from a full runtime.Stack dump.
type Goroutine struct {
	// ID is the runtime's goroutine number, unique for the process
	// lifetime.
	ID string
	// State is the scheduler state from the dump header, e.g.
	// "running", "chan receive", "IO wait".
	State string
	// Stack is the goroutine's full dump block, header included —
	// what a leak report prints.
	Stack string
}

// Snapshot captures and parses the stacks of every live goroutine.
func Snapshot() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []Goroutine
	for _, block := range strings.Split(strings.TrimSpace(string(buf)), "\n\n") {
		if g, ok := parseGoroutine(block); ok {
			out = append(out, g)
		}
	}
	return out
}

// parseGoroutine splits one dump block on its
// "goroutine N [state]:" header.
func parseGoroutine(block string) (Goroutine, bool) {
	header, _, _ := strings.Cut(block, "\n")
	rest, ok := strings.CutPrefix(header, "goroutine ")
	if !ok {
		return Goroutine{}, false
	}
	id, state, ok := strings.Cut(rest, " ")
	if !ok {
		return Goroutine{}, false
	}
	state = strings.TrimSuffix(strings.TrimPrefix(state, "["), "]:")
	return Goroutine{ID: id, State: state, Stack: block}, true
}

// benignFrames are substrings of stack frames that mark a goroutine as
// infrastructure rather than a leak: the runtime's background workers,
// the testing harness, signal handling, and net/http's keep-alive
// connection goroutines (owned by the transport's idle pool, reaped on
// their own timers — flagging them would make every httptest suite
// flaky).  Goroutines owned by this repository never run under these
// frames, so the allowlist cannot mask a repro leak.
var benignFrames = []string{
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime.ReadTrace",
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.runFuzzing(",
	"testing/fuzz",
	"os/signal.signal_recv",
	"os/signal.loop",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).dialConnFor",
	// The goroutine running Snapshot itself (and anything above it).
	"leakcheck.Snapshot",
}

// benign reports whether g is test or runtime infrastructure.
func benign(g Goroutine) bool {
	for _, frame := range benignFrames {
		if strings.Contains(g.Stack, frame) {
			return true
		}
	}
	return false
}

// Leaked polls until no non-benign goroutine remains or grace expires,
// then returns whatever is still alive.  The polling loop absorbs
// in-flight shutdowns: a goroutine between its last send and its
// return is not a leak, just slow.
func Leaked(grace time.Duration) []Goroutine {
	deadline := time.Now().Add(grace)
	for {
		var leaked []Goroutine
		for _, g := range Snapshot() {
			if !benign(g) {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || !time.Now().Before(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Main runs the package's tests and then fails the binary if the run
// leaked goroutines; it is the one-line TestMain body.  The check only
// runs after a passing suite — a failing test may legitimately abandon
// goroutines mid-flight, and its own failure is the signal that
// matters.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Leaked(2 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by the test run:\n", len(leaked))
			for _, g := range leaked {
				fmt.Fprintf(os.Stderr, "\n%s\n", g.Stack)
			}
			code = 1
		}
	}
	os.Exit(code)
}
