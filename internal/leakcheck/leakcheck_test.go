package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestMain dogfoods the checker on its own package.
func TestMain(m *testing.M) { Main(m) }

// TestLeakedDifferential is the differential pair in one test: a
// goroutine blocked on a channel is reported as leaked, and the same
// goroutine after its join is not.
func TestLeakedDifferential(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-release
		close(done)
	}()

	leaked := Leaked(0)
	if !containsFrame(leaked, "TestLeakedDifferential") {
		t.Errorf("blocked goroutine not reported; leaked = %d goroutines", len(leaked))
	}

	close(release)
	<-done
	if after := Leaked(2 * time.Second); containsFrame(after, "TestLeakedDifferential") {
		t.Errorf("joined goroutine still reported as leaked:\n%s", stacks(after))
	}
}

// TestSnapshotSelf pins the parser against a live dump: the snapshot
// contains this very goroutine, in a parseable state, with the test
// frame in its stack.
func TestSnapshotSelf(t *testing.T) {
	snap := Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	found := false
	for _, g := range snap {
		if g.ID == "" || g.State == "" || g.Stack == "" {
			t.Errorf("incomplete goroutine record: %+v", g)
		}
		if strings.Contains(g.Stack, "TestSnapshotSelf") {
			found = true
			if !benign(g) {
				t.Errorf("the snapshotting goroutine must be benign (it holds leakcheck.Snapshot):\n%s", g.Stack)
			}
		}
	}
	if !found {
		t.Error("snapshot does not contain the calling goroutine")
	}
}

// TestParseGoroutine pins the header grammar.
func TestParseGoroutine(t *testing.T) {
	g, ok := parseGoroutine("goroutine 42 [chan receive, 3 minutes]:\nmain.worker()\n\t/src/main.go:10 +0x2a")
	if !ok || g.ID != "42" || g.State != "chan receive, 3 minutes" {
		t.Errorf("parseGoroutine = %+v, %v", g, ok)
	}
	if _, ok := parseGoroutine("garbage"); ok {
		t.Error("parseGoroutine accepted a non-goroutine block")
	}
}

func containsFrame(gs []Goroutine, frame string) bool {
	for _, g := range gs {
		if strings.Contains(g.Stack, frame) {
			return true
		}
	}
	return false
}

func stacks(gs []Goroutine) string {
	var b strings.Builder
	for _, g := range gs {
		b.WriteString(g.Stack)
		b.WriteString("\n\n")
	}
	return b.String()
}
