package scenario

import (
	"reflect"
	"testing"
)

func TestUniform(t *testing.T) {
	m := Uniform(4, 3, 1000)
	if len(m) != 4 || len(m[0]) != 3 {
		t.Fatalf("Uniform(4, 3) has shape %dx%d", len(m), len(m[0]))
	}
	for r := range m {
		for i := range m[r] {
			if m[r][i] != 1000 {
				t.Errorf("Uniform load [%d][%d] = %d, want 1000", r, i, m[r][i])
			}
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	for _, m := range []Loads{
		Uniform(0, 3, 1000), Uniform(4, 0, 1000), Uniform(-1, -1, 1000),
		Ramp(0, 1, 10, 2), Step(0, 1, 10, 2, 0), PhaseShift(0, 1, 10, 2, 1),
		Bursty(0, 1, 10, 2, 1),
	} {
		if m != nil {
			t.Errorf("degenerate size produced non-nil matrix %v", m)
		}
	}
}

func TestRampMonotonicAndSkew(t *testing.T) {
	m := Ramp(4, 2, 1000, 4)
	for r := 1; r < 4; r++ {
		if m[r][0] <= m[r-1][0] {
			t.Errorf("ramp not strictly increasing: rank %d load %d <= rank %d load %d",
				r, m[r][0], r-1, m[r-1][0])
		}
	}
	if m[0][0] != 1000 || m[3][0] != 4000 {
		t.Errorf("ramp endpoints = %d, %d, want 1000, 4000", m[0][0], m[3][0])
	}
}

// A skew-1 ramp must be byte-identical to the uniform matrix — the
// metamorphic anchor the public scenario layer re-asserts on whole jobs.
func TestRampSkewOneIsUniform(t *testing.T) {
	if got, want := Ramp(6, 4, 12345, 1), Uniform(6, 4, 12345); !reflect.DeepEqual(got, want) {
		t.Errorf("Ramp(skew=1) = %v, want uniform %v", got, want)
	}
}

func TestStepOutlier(t *testing.T) {
	m := Step(4, 2, 1000, 5, 2)
	for r := range m {
		want := int64(1000)
		if r == 2 {
			want = 5000
		}
		if m[r][0] != want {
			t.Errorf("step rank %d load = %d, want %d", r, m[r][0], want)
		}
	}
	// Out-of-range outliers clamp instead of vanishing.
	if m := Step(4, 1, 1000, 2, 99); m[3][0] != 2000 {
		t.Errorf("clamped outlier load = %d, want 2000", m[3][0])
	}
	if m := Step(4, 1, 1000, 2, -5); m[0][0] != 2000 {
		t.Errorf("clamped negative outlier load = %d, want 2000", m[0][0])
	}
}

// The phase-shifted outlier must visit every rank and move exactly every
// `period` iterations.
func TestPhaseShiftRotation(t *testing.T) {
	const ranks, iters, period = 4, 8, 2
	m := PhaseShift(ranks, iters, 1000, 3, period)
	visited := make(map[int]bool)
	for i := 0; i < iters; i++ {
		hot := -1
		for r := 0; r < ranks; r++ {
			if m[r][i] == 3000 {
				if hot >= 0 {
					t.Fatalf("iteration %d has two heavy ranks (%d and %d)", i, hot, r)
				}
				hot = r
			} else if m[r][i] != 1000 {
				t.Fatalf("iteration %d rank %d load = %d, want 1000 or 3000", i, r, m[r][i])
			}
		}
		if want := (i / period) % ranks; hot != want {
			t.Errorf("iteration %d heavy rank = %d, want %d", i, hot, want)
		}
		visited[hot] = true
	}
	if len(visited) != ranks {
		t.Errorf("heavy rank visited %d of %d ranks", len(visited), ranks)
	}
}

func TestBurstyDeterministicAndSeeded(t *testing.T) {
	a := Bursty(4, 6, 10000, 3, 42)
	b := Bursty(4, 6, 10000, 3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("Bursty is not deterministic for equal seeds")
	}
	c := Bursty(4, 6, 10000, 3, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("Bursty ignored the seed: seeds 42 and 43 coincide")
	}
	for r := range a {
		for i := range a[r] {
			if a[r][i] < 10000 || a[r][i] > 40000 {
				t.Errorf("bursty load [%d][%d] = %d outside [base, base*(1+amp)]", r, i, a[r][i])
			}
		}
	}
}

// Every generator must keep loads executable even for adversarial
// parameters (zero base, negative skew).
func TestLoadsNeverBelowOne(t *testing.T) {
	for name, m := range map[string]Loads{
		"uniform":    Uniform(2, 2, 0),
		"ramp":       Ramp(4, 2, 10, -3),
		"step":       Step(4, 2, 0, -1, 1),
		"phaseshift": PhaseShift(4, 4, 0, 0, 1),
		"bursty":     Bursty(4, 4, 0, 0, 7),
	} {
		for r := range m {
			for i := range m[r] {
				if m[r][i] < 1 {
					t.Errorf("%s load [%d][%d] = %d < 1", name, r, i, m[r][i])
				}
			}
		}
	}
}
