// Package scenario generates the deterministic per-rank, per-iteration
// load matrices behind the public smtbalance.Scenario shapes.  The paper
// evaluates its balancer on a handful of hand-built imbalance cases
// (MetBench loads, BT-MZ, SIESTA); these generators parameterize the
// *shape* of the imbalance instead — uniform, linear ramp, single
// outlier rank, phase-shifted drift, bursty noise — because policy
// rankings flip across shapes, not just magnitudes (two-level and
// hierarchical balancers win on drifting loads, damped gap-watchers on
// steady ones).
//
// Every generator is a pure function of its arguments: the same inputs
// always produce the same matrix, on any platform, so scenario-driven
// tests and evaluation matrices are reproducible byte for byte.  The
// only randomness is an explicit splitmix64 stream seeded by the caller.
package scenario

// Loads is an instruction-count matrix: Loads[rank][iter] is the number
// of compute instructions rank executes in one iteration.  Every entry
// is at least 1 (a zero-instruction compute phase would be an infinite
// kernel to the workload generator).
type Loads [][]int64

// alloc returns a ranks × iters matrix, or nil for degenerate sizes.
func alloc(ranks, iters int) Loads {
	if ranks <= 0 || iters <= 0 {
		return nil
	}
	m := make(Loads, ranks)
	for r := range m {
		m[r] = make([]int64, iters)
	}
	return m
}

// clampLoad keeps every generated load executable.
func clampLoad(n int64) int64 {
	if n < 1 {
		return 1
	}
	return n
}

// scale applies a multiplicative factor to a base load, rounding to the
// nearest instruction.  factor 1 is exact: scale(base, 1) == base.
func scale(base int64, factor float64) int64 {
	return clampLoad(int64(float64(base)*factor + 0.5))
}

// Uniform gives every rank the same load every iteration — the balanced
// control every imbalance shape is measured against.
func Uniform(ranks, iters int, base int64) Loads {
	m := alloc(ranks, iters)
	for r := range m {
		for i := range m[r] {
			m[r][i] = clampLoad(base)
		}
	}
	return m
}

// Ramp skews loads linearly across ranks: rank 0 executes base, the
// last rank base*skew, intermediate ranks interpolate.  skew is the
// heaviest-to-lightest ratio; skew == 1 reproduces Uniform exactly,
// byte for byte.
func Ramp(ranks, iters int, base int64, skew float64) Loads {
	m := alloc(ranks, iters)
	for r := range m {
		factor := 1.0
		if ranks > 1 {
			factor = 1 + (skew-1)*float64(r)/float64(ranks-1)
		}
		n := scale(base, factor)
		for i := range m[r] {
			m[r][i] = n
		}
	}
	return m
}

// Step gives every rank base except one outlier rank, which executes
// base*skew every iteration — the paper's MetBench cases (one rank with
// 4.4× the work) and the classic straggler.  outlier is clamped into
// [0, ranks).
func Step(ranks, iters int, base int64, skew float64, outlier int) Loads {
	m := alloc(ranks, iters)
	if m == nil {
		return nil
	}
	if outlier < 0 {
		outlier = 0
	}
	if outlier >= ranks {
		outlier = ranks - 1
	}
	heavy := scale(base, skew)
	for r := range m {
		n := clampLoad(base)
		if r == outlier {
			n = heavy
		}
		for i := range m[r] {
			m[r][i] = n
		}
	}
	return m
}

// PhaseShift rotates a Step outlier across the ranks as the iterations
// advance: iteration i's heavy rank is (i/period) mod ranks, so the
// bottleneck moves every period iterations — the drifting load that
// defeats any static plan and separates adaptive policies from
// hysteresis-bound ones.  period < 1 is treated as 1.
func PhaseShift(ranks, iters int, base int64, skew float64, period int) Loads {
	m := alloc(ranks, iters)
	if m == nil {
		return nil
	}
	if period < 1 {
		period = 1
	}
	light := clampLoad(base)
	heavy := scale(base, skew)
	for i := 0; i < iters; i++ {
		hot := (i / period) % ranks
		for r := range m {
			if r == hot {
				m[r][i] = heavy
			} else {
				m[r][i] = light
			}
		}
	}
	return m
}

// Bursty draws every (rank, iteration) load independently from
// [base, base*(1+amp)] using a splitmix64 stream: deterministic noise,
// reproducible from the seed, with no structure a gap-watcher could
// track.  The stream is consumed rank-major so a matrix is a pure
// function of (ranks, iters, base, amp, seed).
func Bursty(ranks, iters int, base int64, amp float64, seed uint64) Loads {
	m := alloc(ranks, iters)
	state := seed
	for r := range m {
		for i := range m[r] {
			m[r][i] = scale(base, 1+amp*unit(&state))
		}
	}
	return m
}

// splitmix64 advances the generator state and returns the next value.
// It is the reference splitmix64 (Steele et al.), chosen because it is
// tiny, fast, seeds well from any value including 0, and is trivially
// reproducible in any language a cross-checking harness might use.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps the next splitmix64 draw to [0, 1).
func unit(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}
