package branch

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, bits := range []int{3, 25, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bits)
				}
			}()
			New(bits)
		}()
	}
}

// A branch that is always taken must be learned after a few iterations.
func TestLearnsLoopBranch(t *testing.T) {
	p := New(10)
	const pc = 0x40
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0, pc, true) {
			wrong++
		}
	}
	if wrong > 10 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", wrong)
	}
	st := p.Stats(0)
	if st.Predictions != 1000 || st.Mispredicts != uint64(wrong) {
		t.Errorf("stats %+v inconsistent with observed %d wrong", st, wrong)
	}
}

// An alternating pattern is captured by global history.
func TestLearnsAlternatingPattern(t *testing.T) {
	p := New(12)
	const pc = 0x80
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !p.Predict(0, pc, taken) {
			wrong++
		}
	}
	if rate := float64(wrong) / 2000; rate > 0.1 {
		t.Errorf("alternating branch mispredict rate %.2f, want < 0.10", rate)
	}
}

// Random outcomes must hover near 50% mispredicts — the predictor must not
// pretend to predict noise.
func TestRandomBranchesUnpredictable(t *testing.T) {
	p := New(12)
	rng := rand.New(rand.NewSource(1))
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !p.Predict(0, uint32(i%64)*4, rng.Intn(2) == 0) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate %.2f, want ~0.5", rate)
	}
}

// Two contexts sharing the table must at least keep separate statistics
// and histories.
func TestPerContextStats(t *testing.T) {
	p := New(10)
	for i := 0; i < 100; i++ {
		p.Predict(0, 0x10, true)
	}
	p.Predict(1, 0x20, true)
	if p.Stats(0).Predictions != 100 || p.Stats(1).Predictions != 1 {
		t.Errorf("per-context stats mixed: %+v %+v", p.Stats(0), p.Stats(1))
	}
}

// A destructive co-runner raises the sibling's mispredict rate (shared
// tables), which is the effect the paper attributes to shared resources.
func TestSharedTableInterference(t *testing.T) {
	solo := New(4)
	wrongSolo := 0
	for i := 0; i < 5000; i++ {
		if !solo.Predict(0, uint32(i%16)*4, true) {
			wrongSolo++
		}
	}

	shared := New(4)
	rng := rand.New(rand.NewSource(7))
	wrongShared := 0
	for i := 0; i < 5000; i++ {
		if !shared.Predict(0, uint32(i%16)*4, true) {
			wrongShared++
		}
		// Context 1 hammers not-taken branches, polluting the table.
		for j := 0; j < 4; j++ {
			shared.Predict(1, uint32(rng.Intn(1<<8)), false)
		}
	}
	if wrongShared <= wrongSolo {
		t.Errorf("no interference: solo %d wrong, shared %d wrong", wrongSolo, wrongShared)
	}
}

func TestReset(t *testing.T) {
	p := New(8)
	p.Predict(0, 0, true)
	p.Predict(1, 4, false)
	p.Reset()
	if p.Stats(0).Predictions != 0 || p.Stats(1).Predictions != 0 {
		t.Error("Reset left statistics")
	}
}

func TestMispredictRateZeroDivision(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Error("empty stats must report rate 0")
	}
}
