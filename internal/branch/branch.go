// Package branch implements the shared branch predictor of a POWER5 core:
// a gshare-style global-history predictor backed by 2-bit saturating
// counters.  Both SMT contexts of a core share the predictor tables (as on
// the real machine), so a branch-heavy co-runner can degrade its sibling's
// prediction accuracy — one of the shared-resource effects the paper's
// priority mechanism redistributes.
package branch

// Predictor is a gshare predictor with per-context global history.
type Predictor struct {
	table []uint8 // 2-bit saturating counters
	mask  uint32
	hist  [2]uint32 // per-context global history (contexts share the table)
	stats [2]Stats
}

// Stats counts predictions for one context.
type Stats struct {
	Predictions uint64
	Mispredicts uint64
}

// MispredictRate returns the fraction of mispredicted branches.
func (s Stats) MispredictRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Predictions)
}

// New returns a predictor with 2^bits counters.  bits must be in [4, 24].
func New(bits int) *Predictor {
	if bits < 4 || bits > 24 {
		panic("branch: table bits out of range")
	}
	n := 1 << bits
	p := &Predictor{table: make([]uint8, n), mask: uint32(n - 1)}
	// Weakly taken initial state: loops predict well from the start.
	for i := range p.table {
		p.table[i] = 2
	}
	return p
}

// Predict consults and updates the predictor for a branch at pc with the
// given architectural outcome, on behalf of context ctx (0 or 1).  It
// returns true when the prediction was correct.
func (p *Predictor) Predict(ctx int, pc uint32, taken bool) bool {
	idx := (pc ^ p.hist[ctx]) & p.mask
	ctr := p.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		p.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		p.table[idx] = ctr - 1
	}
	h := p.hist[ctx] << 1
	if taken {
		h |= 1
	}
	p.hist[ctx] = h & p.mask
	p.stats[ctx].Predictions++
	correct := pred == taken
	if !correct {
		p.stats[ctx].Mispredicts++
	}
	return correct
}

// Stats returns the counters for context ctx.
func (p *Predictor) Stats(ctx int) Stats { return p.stats[ctx] }

// Reset clears history, counters and statistics.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 2
	}
	p.hist = [2]uint32{}
	p.stats = [2]Stats{}
}

// FFNorm appends the predictor's behavioral state (counter table and
// per-context histories) for the phase-skip engine's machine snapshots;
// see isa.FastForwarder for the capture/advance contract.  The counters
// and histories are pure state — no absolute cycle numbers — so they are
// appended raw.
func (p *Predictor) FFNorm(b []byte) []byte {
	b = append(b, p.table...)
	for _, h := range p.hist {
		b = append(b, byte(h), byte(h>>8), byte(h>>16), byte(h>>24))
	}
	return b
}

// FFCtrs appends the extensive prediction counters.
func (p *Predictor) FFCtrs(c []int64) []int64 {
	for t := range p.stats {
		c = append(c, int64(p.stats[t].Predictions), int64(p.stats[t].Mispredicts))
	}
	return c
}

// FFAdvance applies k windows' worth of counter deltas, consuming this
// predictor's prefix of d and returning the rest.
func (p *Predictor) FFAdvance(k int64, d []int64) []int64 {
	for t := range p.stats {
		p.stats[t].Predictions += uint64(k * d[0])
		p.stats[t].Mispredicts += uint64(k * d[1])
		d = d[2:]
	}
	return d
}
