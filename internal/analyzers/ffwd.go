package analyzers

import (
	"go/ast"
	"go/types"
)

// FFwd enforces the phase-skip engine's state-capture contract: in the
// stateful simulator layers, any named type that implements the
// per-cycle instruction interface isa.Stream carries per-cycle mutable
// state the phase-skip engine must be able to snapshot — so it must
// also implement isa.FastForwarder, or carry an explicit
// `//mtlint:no-ffwd <reason>` directive.  A stream without capture
// support silently disarms phase-skip for every run it appears in
// (internal/mpisim falls back to exact execution), which is correct but
// defeats the fast path without a trace; worse, a *forgotten* capture
// of new mutable state added to an existing FastForwarder would break
// the byte-identity proof — this pass makes the contract a CI failure
// instead of a reviewer checklist.
var FFwd = &Analyzer{
	Name: "ffwd",
	Doc: "in the stateful simulator layers, every implementation of " +
		"isa.Stream must implement isa.FastForwarder (or carry " +
		"//mtlint:no-ffwd <reason>), so phase-skip state capture cannot " +
		"silently lose new per-cycle state",
	Run: runFFwd,
}

// statefulPkgs are the package-path suffixes holding per-cycle mutable
// state that the phase-skip engine snapshots.
var statefulPkgs = []string{
	"internal/isa",
	"internal/workload",
	"internal/oskernel",
	"internal/power5",
	"internal/mem",
	"internal/branch",
	"internal/trace",
	"internal/mpisim",
}

func runFFwd(pass *Pass) error {
	if !pathInList(pass.Pkg.Path(), statefulPkgs) {
		return nil
	}
	stream, ffwd := isaInterfaces(pass.Pkg)
	if stream == nil || ffwd == nil {
		return nil // no isa in sight: nothing to check against
	}
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue // alias declarations introduce no new type
				}
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					continue // interfaces declare the contract, they don't hold state
				}
				ptr := types.NewPointer(named)
				if !types.Implements(named, stream) && !types.Implements(ptr, stream) {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = d.Doc
				}
				if reason, exempt := directive(doc, "no-ffwd"); exempt {
					if reason == "" {
						pass.Reportf(ts.Pos(), "//mtlint:no-ffwd needs a reason explaining why %s cannot support phase-skip capture", ts.Name.Name)
					}
					continue
				}
				if types.Implements(named, ffwd) || types.Implements(ptr, ffwd) {
					continue
				}
				pass.Reportf(ts.Pos(), "%s implements isa.Stream but not isa.FastForwarder: installing it on a simulated "+
					"machine silently disarms phase-skip for the whole run; implement FFSupported/FFNorm/FFCtrs/FFAdvance "+
					"(see the isa.FastForwarder contract) or annotate the type with //mtlint:no-ffwd <reason>", ts.Name.Name)
			}
		}
	}
	return nil
}

// isaInterfaces locates the Stream and FastForwarder interfaces in the
// isa package — the package itself when analyzing internal/isa, or the
// direct import whose path ends in internal/isa otherwise.
func isaInterfaces(pkg *types.Package) (stream, ffwd *types.Interface) {
	isa := pkg
	if !pathHasSuffix(pkg.Path(), "internal/isa") {
		isa = nil
		for _, imp := range pkg.Imports() {
			if pathHasSuffix(imp.Path(), "internal/isa") {
				isa = imp
				break
			}
		}
	}
	if isa == nil {
		return nil, nil
	}
	return lookupInterface(isa, "Stream"), lookupInterface(isa, "FastForwarder")
}

// lookupInterface resolves a named interface in pkg's scope.
func lookupInterface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
