// Package analyzers is mtlint: a suite of static-analysis passes that
// mechanically enforce this repository's correctness invariants — the
// cache-key audit, simulator-core determinism, the phase-skip
// FastForwarder contract, registry grammar consistency, and exported-
// symbol documentation.  See docs/lint.md for what each pass enforces
// and how to add an exemption.
//
// The package deliberately depends only on the standard library
// (go/ast, go/types, go/importer): the build environment is offline, so
// it mirrors the golang.org/x/tools/go/analysis API shape — Analyzer,
// Pass, Diagnostic — without importing it.  cmd/mtlint drives the suite
// both standalone (`mtlint ./...`) and as a `go vet -vettool`.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named, documented analysis pass, mirroring the shape
// of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the pass in diagnostics and documentation.
	Name string
	// Doc is the one-paragraph description printed by `mtlint -help`.
	Doc string
	// Run executes the pass over one package, reporting findings
	// through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Report receives every diagnostic the pass emits.
	Report func(Diagnostic)
}

// Diagnostic is one finding: a position, the reporting analyzer, and a
// human-readable message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the pass that reported it.
	Analyzer string
	// Message describes the violated invariant and how to fix it.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// inTestFile reports whether pos lies in a _test.go file.  The suite
// analyzes production sources only: test files may use wall clocks,
// deprecated wrappers and undocumented helpers freely.
func (p *Pass) inTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// directivePrefix introduces every mtlint source directive.  A
// directive is a //-comment of the form `//mtlint:<verb> <argument>`,
// attached to the declaration (or field) it modifies.
const directivePrefix = "//mtlint:"

// directive returns the argument of the first `//mtlint:<verb>`
// directive in the comment group, or ok=false when the group carries no
// such directive.  The argument is the directive text after the verb,
// whitespace-trimmed ("" when the verb stands alone).
func directive(doc *ast.CommentGroup, verb string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(c.Text, directivePrefix+verb)
		if !found {
			continue
		}
		// The verb must end exactly here: `//mtlint:cachekey-hasher`
		// must not match verb `cachekey`.
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// pathHasSuffix reports whether an import path ends with the given
// slash-separated suffix on a path-segment boundary: "internal/mem"
// matches "repro/internal/mem" but not "repro/internal/memx".
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// namedOrPointee unwraps one level of pointer and reports the named
// type beneath, if any.
func namedOrPointee(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
