package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns a directory tree into type-checked packages without
// golang.org/x/tools/go/packages (the build environment is offline, so
// only the standard library is available).  Module-local imports are
// resolved by path arithmetic against the module root; standard-library
// imports go through go/importer's default gc importer, which reads
// export data from the toolchain's build cache.  Test files are never
// loaded: the suite checks production sources, and test-only invariant
// violations (wall clocks in benchmarks, undocumented helpers) are
// deliberate.

// LoadConfig tells Load where packages live and how import paths map to
// directories.
type LoadConfig struct {
	// Dir is the root directory scanned for packages.
	Dir string
	// ModulePath is the import-path prefix of Dir (the module path).
	// Empty means GOPATH-style resolution: an import path is a
	// directory relative to Dir — the layout of analyzer test fixtures.
	ModulePath string
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files holds the parsed syntax trees, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// Load parses and type-checks the packages named by patterns: either
// the literal "./..." (every package under cfg.Dir) or explicit import
// paths.  Packages are returned sorted by import path.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	ld := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		std:     importer.Default(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var paths []string
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			found, err := ld.discover()
			if err != nil {
				return nil, err
			}
			paths = append(paths, found...)
		default:
			paths = append(paths, strings.TrimPrefix(pat, "./"))
		}
	}
	for _, path := range paths {
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(paths))
	seen := make(map[string]bool)
	for _, path := range paths {
		if pkg := ld.pkgs[path]; pkg != nil && !seen[path] {
			seen[path] = true
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ModulePathOf reads the module path from dir's go.mod.
func ModulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if mod, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(mod), nil
		}
	}
	return "", fmt.Errorf("analyzers: no module directive in %s/go.mod", dir)
}

// loader memoizes package loading and doubles as the types.Importer for
// module-local imports.
type loader struct {
	cfg     LoadConfig
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// discover walks cfg.Dir and returns the import path of every directory
// holding at least one non-test Go file.  testdata, vendor, hidden and
// underscore-prefixed directories are skipped, matching the go tool's
// "./..." semantics.
func (ld *loader) discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(ld.cfg.Dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != ld.cfg.Dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := packageGoFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(ld.cfg.Dir, p)
		if err != nil {
			return err
		}
		paths = append(paths, importPathFor(ld.cfg.ModulePath, rel))
		return nil
	})
	return paths, err
}

// importPathFor maps a directory (relative to the root) to its import
// path under the configured module path.
func importPathFor(modPath, rel string) string {
	rel = filepath.ToSlash(rel)
	switch {
	case rel == "." && modPath != "":
		return modPath
	case rel == ".":
		return ""
	case modPath != "":
		return modPath + "/" + rel
	default:
		return rel
	}
}

// dirFor maps an import path to a directory, or ok=false when the path
// is not local to the configured root (i.e. it is a stdlib import).
func (ld *loader) dirFor(path string) (string, bool) {
	mod := ld.cfg.ModulePath
	if mod != "" {
		if path == mod {
			return ld.cfg.Dir, true
		}
		if rest, ok := strings.CutPrefix(path, mod+"/"); ok {
			return filepath.Join(ld.cfg.Dir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	// GOPATH-style fixtures: local iff the directory exists.
	dir := filepath.Join(ld.cfg.Dir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}

// packageGoFiles lists dir's non-test Go files, sorted.
func packageGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// Import implements types.Importer: module-local paths load recursively
// through the loader, everything else is standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, local := ld.dirFor(path); local {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one local package by import path,
// memoized.
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analyzers: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir, ok := ld.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analyzers: package %q is not under %s", path, ld.cfg.Dir)
	}
	names, err := packageGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analyzers: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// RunAnalyzers executes every analyzer over every package and returns
// the diagnostics sorted by position then analyzer.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzers: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
