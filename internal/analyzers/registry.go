package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"unicode"
)

// Registry enforces the spec grammar on every name and parameter key
// that enters the policy/scenario registries.  ParsePolicy and
// ParseScenario split specs on "," and cut key=value pairs on "=", so a
// registered name or parameter key containing ",", "=", ";" or
// whitespace can never round-trip through the grammar: the entry is
// registered but unreachable, and Params() output stops being a valid
// spec.  RegisterPolicy rejects such names at runtime — but only when
// the init actually runs, and the map-literal and Params()/param-helper
// sides have no runtime check at all.  This pass moves the whole
// contract to compile time.
var Registry = &Analyzer{
	Name: "registry",
	Doc: "policy/scenario names and parameter keys must satisfy the " +
		"ParsePolicy/ParseScenario grammar: non-empty, and free of " +
		"\",\", \"=\", \";\" and whitespace",
	Run: runRegistry,
}

// registerFuncs maps registration entry points to what they register.
var registerFuncs = map[string]string{
	"RegisterPolicy":   "policy name",
	"RegisterScenario": "scenario name",
}

// factoryMapElems maps registry map-literal element types to what their
// keys name.
var factoryMapElems = map[string]string{
	"PolicyFactory":   "policy name",
	"ScenarioFactory": "scenario name",
}

// paramHelpers are the parameter-reading helpers whose second argument
// is a spec-grammar key.
var paramHelpers = map[string]bool{
	"paramInt": true, "paramInt64": true, "paramFloat": true,
	"paramUint": true, "paramKind": true,
}

func runRegistry(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inParams := isParamsMethod(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkRegistryCall(pass, n)
				case *ast.CompositeLit:
					checkFactoryMapLit(pass, n)
					if inParams {
						checkParamsLit(pass, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkRegistryCall validates constant name arguments of RegisterPolicy
// / RegisterScenario calls and constant key arguments of param helpers.
func checkRegistryCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	if what, ok := registerFuncs[fn.Name()]; ok && len(call.Args) >= 1 {
		if name, lit := constString(pass, call.Args[0]); lit {
			if msg := specGrammarErr(name); msg != "" {
				pass.Reportf(call.Args[0].Pos(), "%s %q %s: %s will never be able to parse it",
					what, name, msg, parserFor(what))
			}
		}
	}
	if paramHelpers[fn.Name()] && len(call.Args) >= 2 {
		if key, lit := constString(pass, call.Args[1]); lit {
			if msg := specGrammarErr(key); msg != "" {
				pass.Reportf(call.Args[1].Pos(), "parameter key %q %s: a key=value pair with this key cannot appear in a spec", key, msg)
			} else if key != strings.ToLower(key) {
				pass.Reportf(call.Args[1].Pos(), "parameter key %q is not lower-case; spec keys are canonically lower-case so Params() output round-trips byte-identically", key)
			}
		}
	}
}

// checkFactoryMapLit validates the keys of map[string]PolicyFactory /
// map[string]ScenarioFactory literals — the bulk-registration idiom in
// the init functions.
func checkFactoryMapLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return
	}
	elem := namedOrPointee(m.Elem())
	if elem == nil {
		return
	}
	what, ok := factoryMapElems[elem.Obj().Name()]
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if name, isLit := constString(pass, kv.Key); isLit {
			if msg := specGrammarErr(name); msg != "" {
				pass.Reportf(kv.Key.Pos(), "%s %q %s: %s will never be able to parse it",
					what, name, msg, parserFor(what))
			}
		}
	}
}

// checkParamsLit validates the keys of map[string]string literals
// returned from Params() methods: they must be canonical spec keys, or
// idString's output stops being a parseable spec.
func checkParamsLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return
	}
	key, kOK := m.Key().Underlying().(*types.Basic)
	val, vOK := m.Elem().Underlying().(*types.Basic)
	if !kOK || !vOK || key.Kind() != types.String || val.Kind() != types.String {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name, isLit := constString(pass, kv.Key)
		if !isLit {
			continue
		}
		if msg := specGrammarErr(name); msg != "" {
			pass.Reportf(kv.Key.Pos(), "Params() key %q %s: the rendered spec (idString) would not re-parse", name, msg)
		} else if name != strings.ToLower(name) {
			pass.Reportf(kv.Key.Pos(), "Params() key %q is not lower-case; spec keys are canonically lower-case so rendered specs round-trip byte-identically", name)
		}
	}
}

// isParamsMethod reports whether fd is a Params() map[string]string
// method — the Policy/Scenario identity surface.
func isParamsMethod(fd *ast.FuncDecl) bool {
	return fd.Recv != nil && fd.Name.Name == "Params" &&
		fd.Type.Params.NumFields() == 0 && fd.Type.Results.NumFields() == 1
}

// constString evaluates e as a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// specGrammarErr explains why s violates the spec grammar, or returns
// "" when s is valid.  The rules mirror RegisterPolicy's runtime check
// plus the whitespace splitting done by spec normalization.
func specGrammarErr(s string) string {
	if s == "" {
		return "is empty"
	}
	if i := strings.IndexAny(s, ",=;"); i >= 0 {
		return "contains " + string(s[i]) + ", a spec metacharacter"
	}
	for _, r := range s {
		if unicode.IsSpace(r) {
			return "contains whitespace"
		}
	}
	return ""
}

// parserFor names the parse entry point for a registration kind.
func parserFor(what string) string {
	if strings.HasPrefix(what, "scenario") {
		return "ParseScenario"
	}
	return "ParsePolicy"
}
