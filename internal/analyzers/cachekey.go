package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CacheKey enforces the cache-key audit that cache.go's envJobKey
// comment used to delegate to reviewers: every field of a struct marked
// `//mtlint:cachekey <group>` (smtbalance.Options, MatrixSpec) must
// either flow into a hasher of the same group — it is read inside the
// body of a function marked `//mtlint:cachekey-hasher <group>`, or
// appears as a call argument to such a function — or carry an explicit
// `//mtlint:cachekey-exempt <justification>` directive on the field
// itself.  A behavior-affecting field that is neither hashed nor
// exempted is exactly the silent cache-collision bug the canonical key
// exists to prevent.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc: "every field of a //mtlint:cachekey struct must be read by a " +
		"//mtlint:cachekey-hasher function (directly or as a call argument) " +
		"or carry a //mtlint:cachekey-exempt justification",
	Run: runCacheKey,
}

// cacheKeyGroup accumulates one group's marked declarations.
type cacheKeyGroup struct {
	structPos  token.Pos     // the marked struct, NoPos until seen
	structName string        // its declared name
	fields     []*types.Var  // the struct's fields, declaration order
	fieldDecl  []*ast.Field  // the syntax of each field (for exemptions)
	hashers    []*types.Func // the group's hasher functions
	hasherPos  []token.Pos   // where each hasher directive sits
	hashed     map[*types.Var]bool
}

func runCacheKey(pass *Pass) error {
	groups := make(map[string]*cacheKeyGroup)
	group := func(name string) *cacheKeyGroup {
		g := groups[name]
		if g == nil {
			g = &cacheKeyGroup{hashed: make(map[*types.Var]bool)}
			groups[name] = g
		}
		return g
	}

	// Pass 1: collect marked structs and hashers.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					name, ok := directive(doc, "cachekey")
					if !ok {
						continue
					}
					if name == "" {
						pass.Reportf(ts.Pos(), "//mtlint:cachekey needs a group name (e.g. //mtlint:cachekey run)")
						continue
					}
					obj := pass.Info.Defs[ts.Name]
					st, ok := obj.Type().Underlying().(*types.Struct)
					if !ok {
						pass.Reportf(ts.Pos(), "//mtlint:cachekey %s on %s, which is not a struct type", name, ts.Name.Name)
						continue
					}
					g := group(name)
					if g.structPos.IsValid() {
						pass.Reportf(ts.Pos(), "duplicate //mtlint:cachekey group %q (already on %s)", name, g.structName)
						continue
					}
					g.structPos = ts.Pos()
					g.structName = ts.Name.Name
					for i := 0; i < st.NumFields(); i++ {
						g.fields = append(g.fields, st.Field(i))
					}
					g.fieldDecl = flattenFields(ts)
				}
			case *ast.FuncDecl:
				name, ok := directive(d.Doc, "cachekey-hasher")
				if !ok {
					continue
				}
				if name == "" {
					pass.Reportf(d.Pos(), "//mtlint:cachekey-hasher needs a group name")
					continue
				}
				fn, _ := pass.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g := group(name)
				g.hashers = append(g.hashers, fn)
				g.hasherPos = append(g.hasherPos, d.Pos())
			}
		}
	}

	// Pass 2: collect field reads inside hasher bodies and field
	// selections among the arguments of calls to hashers.
	hasherOf := make(map[*types.Func]*cacheKeyGroup)
	for _, g := range groups {
		for _, fn := range g.hashers {
			hasherOf[fn] = g
		}
	}
	if len(hasherOf) > 0 {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, _ := pass.Info.Defs[fd.Name].(*types.Func); fn != nil {
					if g := hasherOf[fn]; g != nil {
						// Every field selection inside a hasher body counts
						// as hashed for its group.
						markFieldReads(pass, fd.Body, g)
					}
				}
				// Field selections passed as arguments to a hasher count
				// too: `envJobKey(m.opts.Topology, ...)` hashes Topology.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(pass, call)
					if callee == nil {
						return true
					}
					if g := hasherOf[callee]; g != nil {
						for _, arg := range call.Args {
							markFieldReads(pass, arg, g)
						}
					}
					return true
				})
			}
		}
	}

	// Pass 3: verdicts, in declaration order for deterministic output.
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := groups[name]
		if !g.structPos.IsValid() {
			for _, pos := range g.hasherPos {
				pass.Reportf(pos, "//mtlint:cachekey-hasher %s has no //mtlint:cachekey %s struct in this package", name, name)
			}
			continue
		}
		if len(g.hashers) == 0 {
			pass.Reportf(g.structPos, "//mtlint:cachekey %s has no //mtlint:cachekey-hasher %s function in this package", name, name)
			continue
		}
		for i, fv := range g.fields {
			just, exempt := fieldExemption(g.fieldDecl, i)
			if exempt && just == "" {
				pass.Reportf(fv.Pos(), "%s.%s: //mtlint:cachekey-exempt needs a justification", g.structName, fv.Name())
				continue
			}
			if g.hashed[fv] || exempt {
				continue
			}
			pass.Reportf(fv.Pos(), "%s.%s is neither hashed by a %q cache-key hasher nor exempted; "+
				"hash it in a //mtlint:cachekey-hasher %s function or add //mtlint:cachekey-exempt <justification> to the field",
				g.structName, fv.Name(), name, name)
		}
	}

	// Exemption directives on fields of unmarked structs are dead: they
	// claim an audit that never runs.
	marked := make(map[string]bool)
	for _, g := range groups {
		if g.structPos.IsValid() {
			marked[g.structName] = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || marked[ts.Name.Name] {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					if _, ok := fieldDirective(fld, "cachekey-exempt"); ok {
						pass.Reportf(fld.Pos(), "//mtlint:cachekey-exempt on a field of %s, which has no //mtlint:cachekey directive", ts.Name.Name)
					}
				}
			}
		}
	}
	return nil
}

// flattenFields returns one *ast.Field per declared field name of the
// struct (a Field with n Names yields n entries), matching the order of
// types.Struct.Field.
func flattenFields(ts *ast.TypeSpec) []*ast.Field {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return nil
	}
	var out []*ast.Field
	for _, f := range st.Fields.List {
		n := len(f.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for i := 0; i < n; i++ {
			out = append(out, f)
		}
	}
	return out
}

// fieldDirective reads an mtlint directive from a struct field's doc or
// trailing comment.
func fieldDirective(f *ast.Field, verb string) (string, bool) {
	if arg, ok := directive(f.Doc, verb); ok {
		return arg, ok
	}
	return directive(f.Comment, verb)
}

// fieldExemption returns field i's cachekey-exempt justification.
func fieldExemption(decls []*ast.Field, i int) (string, bool) {
	if i >= len(decls) {
		return "", false
	}
	return fieldDirective(decls[i], "cachekey-exempt")
}

// markFieldReads records, for every selector expression under n that
// reads a field of g's marked struct, that the field is hashed.
func markFieldReads(pass *Pass, n ast.Node, g *cacheKeyGroup) {
	want := make(map[*types.Var]bool, len(g.fields))
	for _, fv := range g.fields {
		want[fv] = true
	}
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if fv, ok := s.Obj().(*types.Var); ok && want[fv] {
			g.hashed[fv] = true
		}
		return true
	})
}

// calleeFunc resolves a call expression's static callee, or nil for
// dynamic calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
