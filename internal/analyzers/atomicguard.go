package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicGuard enforces all-or-nothing atomicity: once any code path
// touches a variable through the function-style sync/atomic API
// (atomic.AddInt64(&x, 1), atomic.LoadUint32(&x), …), every access to
// that variable must go through sync/atomic.  A plain read or write of
// an atomically-updated variable is a data race even when it "only
// reads a counter": the race detector flags it, and on weakly-ordered
// hardware it reads torn or stale values.  There is no exemption
// directive — mixed access has no valid justification; either make all
// accesses atomic or guard the variable with a mutex and drop the
// atomics.  (The typed atomic.Int64-style wrappers are immune by
// construction and need no analysis.)  Composite-literal keys are
// exempt: a value under construction is not yet shared.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc: "a variable accessed through sync/atomic anywhere must be " +
		"accessed through sync/atomic everywhere; plain reads and writes " +
		"of it race",
	Run: runAtomicGuard,
}

// span is a half-open source range [start, end).
type span struct{ start, end token.Pos }

func runAtomicGuard(pass *Pass) error {
	// Pass 1: every object whose address is taken as the first argument
	// of a sync/atomic function call, plus the source spans of all such
	// calls (accesses inside them are the atomic accesses themselves).
	atomicObjs := make(map[types.Object]bool)
	var atomicSpans []span
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			atomicSpans = append(atomicSpans, span{call.Pos(), call.End()})
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedObject(pass, addr.X); obj != nil {
				atomicObjs[obj] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: flag every plain use of those objects.  Uses maps both
	// bare identifiers and the Sel of field selections to the same
	// object, so one identifier walk covers locals, package vars, and
	// struct fields.
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		literalKeys := compositeLitKeys(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || literalKeys[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			for _, s := range atomicSpans {
				if id.Pos() >= s.start && id.Pos() < s.end {
					return true
				}
			}
			pass.Reportf(id.Pos(), "%s is accessed through sync/atomic elsewhere; this plain access races with it — "+
				"use the atomic API here too, or guard every access with one mutex and drop the atomics", id.Name)
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a function of sync/atomic.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	// Only package-level functions (AddInt64, LoadPointer, …): methods
	// of the typed wrappers never mix with plain access by construction.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// addressedObject resolves &expr's operand to the object it denotes: a
// plain identifier (local or package var) or the field of a selector.
func addressedObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return addressedObject(pass, e.X)
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		if s := pass.Info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

// compositeLitKeys collects the identifiers used as keys of composite
// literals (`stats{hits: 1}`): these denote the field object in
// Info.Uses but are initialization, not shared access.
func compositeLitKeys(f *ast.File) map[*ast.Ident]bool {
	keys := make(map[*ast.Ident]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					keys[id] = true
				}
			}
		}
		return true
	})
	return keys
}
