package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GuardedBy enforces lock discipline on every mutex-bearing struct:
// each non-mutex field must declare its synchronization story — either
// `//mtlint:guardedby <mu>`, naming the sync.Mutex/RWMutex field that
// protects it, or `//mtlint:unguarded <why>`, justifying why no lock is
// needed (immutable after construction, internally synchronized, …).
// A field declared guardedby may then only be accessed between a
// syntactic Lock/Unlock (or RLock/RUnlock, including the defer form) on
// the same receiver's mutex, or inside a function annotated
// `//mtlint:locked <mu>` that documents its lock-held precondition.
// Composite-literal construction is exempt: a value not yet shared
// needs no lock.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "every field of a sync.Mutex/RWMutex-bearing struct must carry " +
		"//mtlint:guardedby <mu> or //mtlint:unguarded <why>, and guarded " +
		"fields may only be accessed under a syntactic Lock/Unlock span on " +
		"the same receiver or in a //mtlint:locked <mu> function",
	Run: runGuardedBy,
}

// guardInfo records one guardedby-annotated field: the struct it
// belongs to, the mutex field that guards it, and whether that mutex is
// embedded (so promoted Lock/Unlock calls on the struct value itself
// also guard it).
type guardInfo struct {
	structName string
	mu         string
	muEmbedded bool
}

// lockEvent is one Lock/Unlock-family call in a function body, in
// source order.  expr is the rendered receiver the method was called on
// (`c.mu` for c.mu.Lock(), `policyRegistry` for a promoted call on an
// embedded mutex).
type lockEvent struct {
	pos      token.Pos
	expr     string
	acquire  bool
	deferred bool
}

func runGuardedBy(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}

	guarded := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, ns := range namedStructTypes(f) {
			auditStruct(pass, ns.st, ns.name, guarded)
		}
	}

	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
	return nil
}

// namedStruct pairs a struct type literal with the name it is audited
// under.
type namedStruct struct {
	st   *ast.StructType
	name string
}

// namedStructTypes collects the struct type literals the pass audits,
// each with a display name: named type declarations, and vars of
// anonymous struct type (the registry idiom
// `var r = struct{ sync.RWMutex; ... }{...}`).  Struct literals nested
// inside other types are reached through their own declarations.
func namedStructTypes(f *ast.File) []namedStruct {
	var out []namedStruct
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeSpec:
			if st, ok := n.Type.(*ast.StructType); ok {
				out = append(out, namedStruct{st, n.Name.Name})
			}
		case *ast.ValueSpec:
			if st, ok := n.Type.(*ast.StructType); ok && len(n.Names) > 0 {
				out = append(out, namedStruct{st, n.Names[0].Name})
			}
			for i, v := range n.Values {
				cl, ok := v.(*ast.CompositeLit)
				if !ok {
					continue
				}
				if st, ok := cl.Type.(*ast.StructType); ok && i < len(n.Names) {
					out = append(out, namedStruct{st, n.Names[i].Name})
				}
			}
		}
		return true
	})
	return out
}

// syncMutexName reports the sync package mutex type of t ("Mutex" or
// "RWMutex"), unwrapping one pointer level, or "" for any other type.
func syncMutexName(t types.Type) string {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return n.Obj().Name()
	}
	return ""
}

// structFieldDecls returns one *ast.Field per declared field of st, in
// types.Struct field order (a Field with n names yields n entries).
func structFieldDecls(st *ast.StructType) []*ast.Field {
	var out []*ast.Field
	for _, f := range st.Fields.List {
		n := len(f.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for i := 0; i < n; i++ {
			out = append(out, f)
		}
	}
	return out
}

// auditStruct checks one struct's field annotations and records its
// guarded fields in guarded.
func auditStruct(pass *Pass, st *ast.StructType, name string, guarded map[*types.Var]guardInfo) {
	tv, ok := pass.Info.Types[st]
	if !ok {
		return
	}
	str, ok := tv.Type.(*types.Struct)
	if !ok {
		return
	}
	decls := structFieldDecls(st)
	if len(decls) != str.NumFields() {
		return
	}

	// Find the struct's mutex fields; embedded mutexes promote their
	// Lock/Unlock methods onto the struct value itself.
	mutexes := make(map[string]bool)
	muEmbedded := make(map[string]bool)
	for i := 0; i < str.NumFields(); i++ {
		fv := str.Field(i)
		if mu := syncMutexName(fv.Type()); mu != "" {
			mutexes[fv.Name()] = true
			if fv.Embedded() {
				muEmbedded[fv.Name()] = true
			}
		}
	}

	if len(mutexes) == 0 {
		// Directives on a lock-free struct claim an audit that never
		// runs.
		for _, fld := range st.Fields.List {
			for _, verb := range []string{"guardedby", "unguarded"} {
				if _, ok := fieldDirective(fld, verb); ok {
					pass.Reportf(fld.Pos(), "//mtlint:%s on a field of %s, which has no sync.Mutex/RWMutex field", verb, name)
				}
			}
		}
		return
	}

	for i := 0; i < str.NumFields(); i++ {
		fv := str.Field(i)
		fld := decls[i]
		if syncMutexName(fv.Type()) != "" {
			continue // the mutex itself needs no annotation
		}
		if mu, ok := fieldDirective(fld, "guardedby"); ok {
			if !mutexes[mu] {
				pass.Reportf(fv.Pos(), "%s.%s: //mtlint:guardedby %q names no sync.Mutex/RWMutex field of %s", name, fv.Name(), mu, name)
				continue
			}
			guarded[fv] = guardInfo{structName: name, mu: mu, muEmbedded: muEmbedded[mu]}
			continue
		}
		if why, ok := fieldDirective(fld, "unguarded"); ok {
			if why == "" {
				pass.Reportf(fv.Pos(), "%s.%s: //mtlint:unguarded needs a justification (immutable after construction, internally synchronized, …)", name, fv.Name())
			}
			continue
		}
		pass.Reportf(fv.Pos(), "%s.%s is a field of a mutex-bearing struct with no synchronization story; "+
			"annotate //mtlint:guardedby <mu> or //mtlint:unguarded <why>", name, fv.Name())
	}
}

// checkGuardedAccesses verifies that every read or write of a guarded
// field inside fd happens under its mutex.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardInfo) {
	lockedMu, lockedOK := directive(fd.Doc, "locked")
	if lockedOK && lockedMu == "" {
		pass.Reportf(fd.Pos(), "//mtlint:locked needs the name of the mutex the caller must hold")
		// Treat the function as exempt anyway: the directive error is
		// the actionable finding, not a cascade of access reports.
		return
	}

	events := collectLockEvents(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		fv, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guarded[fv]
		if !ok {
			return true
		}
		if lockedOK && lockedMu == g.mu {
			return true
		}
		recv := lockExprString(sel.X)
		candidates := map[string]bool{recv + "." + g.mu: true}
		if g.muEmbedded {
			candidates[recv] = true // promoted registry.Lock() form
		}
		if !lockHeldAt(events, candidates, sel.Pos()) {
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %q but accessed outside a %s.%s Lock/Unlock span; "+
				"lock around the access or annotate the function //mtlint:locked %s",
				g.structName, fv.Name(), g.mu, recv, g.mu, g.mu)
		}
		return true
	})
}

// collectLockEvents gathers every sync.Mutex/RWMutex Lock/RLock/Unlock/
// RUnlock call in body, in source order, with deferred unlocks marked
// (a deferred unlock holds the lock to the end of the function).
func collectLockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil {
			return true
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			expr:     lockExprString(sel.X),
			acquire:  acquire,
			deferred: deferred[call],
		})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// lockHeldAt replays the lock events textually preceding pos and
// reports whether one of the candidate mutexes is held there.  A
// deferred unlock does not release (it runs at function exit), so
// `mu.Lock(); defer mu.Unlock()` guards everything after the Lock.
func lockHeldAt(events []lockEvent, candidates map[string]bool, pos token.Pos) bool {
	held := false
	for _, e := range events {
		if e.pos >= pos {
			break
		}
		if !candidates[e.expr] {
			continue
		}
		if e.acquire {
			held = true
		} else if !e.deferred {
			held = false
		}
	}
	return held
}

// lockExprString renders the receiver expression of a lock call or
// field access for syntactic matching: `c.mu.Lock()` guards fields
// accessed through `c`.  Expressions the renderer cannot name (index
// expressions, calls, …) get a position-unique string so they never
// match — conservative in the direction of reporting.
func lockExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return lockExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return lockExprString(e.X)
	case *ast.StarExpr:
		return "*" + lockExprString(e.X)
	default:
		return fmt.Sprintf("?%d", e.Pos())
	}
}
