package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoSpawn enforces goroutine ownership in library code: every `go`
// statement must have a join the reader can see in the same function —
// a sync.WaitGroup the goroutine Done()s and the function Wait()s, or
// a channel the goroutine sends on and the function receives from (the
// errc idiom) — or carry `//mtlint:goroutine <why>` on the line above
// naming its owner.  An unowned goroutine is how leaks, races on
// shutdown, and work-past-cancellation ship: the leakcheck TestMain
// harness catches them at run time, this pass at review time.
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc: "every go statement in library code needs a visible join " +
		"(WaitGroup Done/Wait or channel send/receive in the same " +
		"function) or a //mtlint:goroutine <why> ownership note on the " +
		"line above",
	Run: runGoSpawn,
}

func runGoSpawn(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		directives := goroutineDirectiveLines(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := pass.Fset.Position(g.Pos()).Line
				if reason, ok := directives[line-1]; ok {
					if reason == "" {
						pass.Reportf(g.Pos(), "//mtlint:goroutine needs a reason naming the goroutine's owner and join point")
					}
					return true
				}
				if goStmtJoined(pass, fd, g) {
					return true
				}
				pass.Reportf(g.Pos(), "goroutine has no visible join in this function; "+
					"join it (WaitGroup Done/Wait, or send on a channel this function receives from) "+
					"or annotate //mtlint:goroutine <why> on the line above, naming its owner")
				return true
			})
		}
	}
	return nil
}

// goroutineDirectiveLines maps line numbers carrying a goroutine
// directive to its reason.
func goroutineDirectiveLines(pass *Pass, f *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, directivePrefix+"goroutine"); ok {
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					out[pass.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return out
}

// goStmtJoined recognizes the two visible-join shapes for a goroutine
// running a function literal:
//
//   - WaitGroup: the literal calls wg.Done() (usually deferred) and the
//     enclosing function calls wg.Wait() on the same variable;
//   - channel: the literal sends on a channel the enclosing function
//     receives from (<-errc, range errc, or a select case).
//
// `go someMethod()` has no inspectable body and always needs the
// directive.
func goStmtJoined(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	// Objects the goroutine body calls Done() on.
	doneOn := make(map[types.Object]bool)
	// Channels the goroutine body sends on (or closes: closing a done
	// channel is a completion signal too).
	sendsOn := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if obj := identObject(pass, sel.X); obj != nil && isWaitGroup(obj.Type()) {
					doneOn[obj] = true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if obj := identObject(pass, n.Args[0]); obj != nil {
					sendsOn[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := identObject(pass, n.Chan); obj != nil {
				sendsOn[obj] = true
			}
		}
		return true
	})
	if len(doneOn) == 0 && len(sendsOn) == 0 {
		return false
	}

	// Does the enclosing function join on any of them?
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if obj := identObject(pass, sel.X); obj != nil && doneOn[obj] {
					joined = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := identObject(pass, n.X); obj != nil && sendsOn[obj] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if obj := identObject(pass, n.X); obj != nil && sendsOn[obj] {
				joined = true
			}
		}
		return true
	})
	return joined
}

// identObject resolves a plain identifier expression to its object.
func identObject(pass *Pass, e ast.Expr) types.Object {
	if p, ok := e.(*ast.ParenExpr); ok {
		return identObject(pass, p.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}

// isWaitGroup reports whether t is sync.WaitGroup (or a pointer to it).
func isWaitGroup(t types.Type) bool {
	n := namedOrPointee(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}
