package analyzers

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest
// convention: packages under testdata/src carry `// want "regex"`
// comments on the lines where diagnostics are expected, and the test
// fails on any unmatched expectation or unexpected diagnostic.  The
// offset form `// want:-2 "regex"` anchors the expectation N lines
// above the comment, for analyzers (exporteddoc) where a same-line
// comment would change the analysis result itself.

// wantRE splits a want comment into its optional line offset and the
// quoted expectation list.
var wantRE = regexp.MustCompile("^//\\s?want(:-?\\d+)?((?:\\s+(?:`[^`]*`|\"[^\"]*\"))+)\\s*$")

// wantArgRE extracts each quoted expectation.
var wantArgRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// expectation is one want entry: a diagnostic matching re must be
// reported at file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts every want comment from the package's files.
func collectWants(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += off
				}
				for _, q := range wantArgRE.FindAllString(m[2], -1) {
					pattern := q[1 : len(q)-1]
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads one testdata/src package, runs a single analyzer
// over it, and checks the diagnostics against the want comments.
func runFixture(t *testing.T, path string, a *Analyzer) {
	t.Helper()
	pkgs, err := Load(LoadConfig{Dir: "testdata/src"}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %q, want 1", len(pkgs), path)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkgs[0])
	if len(wants) == 0 {
		t.Fatalf("fixture %q has no want comments; it proves nothing", path)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestCacheKeyFixture(t *testing.T)    { runFixture(t, "cachekeytest", CacheKey) }
func TestDeterminismFixture(t *testing.T) { runFixture(t, "internal/power5", Determinism) }
func TestFFwdFixture(t *testing.T)        { runFixture(t, "internal/isa", FFwd) }
func TestRegistryFixture(t *testing.T)    { runFixture(t, "registrytest", Registry) }
func TestGuardedByFixture(t *testing.T)   { runFixture(t, "guardedbytest", GuardedBy) }
func TestAtomicGuardFixture(t *testing.T) { runFixture(t, "atomicguardtest", AtomicGuard) }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, "ctxflowtest", CtxFlow) }
func TestGoSpawnFixture(t *testing.T)     { runFixture(t, "gospawntest", GoSpawn) }
func TestExportedDocFixture(t *testing.T) { runFixture(t, "exporteddoctest", ExportedDoc) }

// TestRepoClean is the regression gate: the whole repository, loaded
// from source, must produce zero diagnostics from the full suite.  A
// new violation anywhere fails this test even before CI's vettool run.
func TestRepoClean(t *testing.T) {
	mod, err := ModulePathOf("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(LoadConfig{Dir: "../..", ModulePath: mod}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the repo walk is broken", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDirectiveParsing pins the verb-boundary rule: a longer verb must
// not satisfy a shorter verb's lookup.
func TestDirectiveParsing(t *testing.T) {
	cg := func(lines ...string) *ast.CommentGroup {
		g := &ast.CommentGroup{}
		for _, l := range lines {
			g.List = append(g.List, &ast.Comment{Text: l})
		}
		return g
	}
	cases := []struct {
		doc     *ast.CommentGroup
		verb    string
		wantArg string
		wantOK  bool
	}{
		{nil, "cachekey", "", false},
		{cg("// Options tunes a run."), "cachekey", "", false},
		{cg("//mtlint:cachekey run"), "cachekey", "run", true},
		{cg("//mtlint:cachekey"), "cachekey", "", true},
		{cg("//mtlint:cachekey-hasher run"), "cachekey", "", false},
		{cg("//mtlint:cachekey-hasher run"), "cachekey-hasher", "run", true},
		{cg("// doc", "//mtlint:no-ffwd  spaced reason "), "no-ffwd", "spaced reason", true},
	}
	for _, c := range cases {
		arg, ok := directive(c.doc, c.verb)
		if arg != c.wantArg || ok != c.wantOK {
			t.Errorf("directive(%v, %q) = (%q, %v), want (%q, %v)", c.doc, c.verb, arg, ok, c.wantArg, c.wantOK)
		}
	}
}

// TestPathHasSuffix pins the segment-boundary rule.
func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/mem", "internal/mem", true},
		{"internal/mem", "internal/mem", true},
		{"repro/internal/memx", "internal/mem", false},
		{"repro/xinternal/mem", "internal/mem", false},
	}
	for _, c := range cases {
		if got := pathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("pathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

// TestDiagnosticString pins the rendered diagnostic format the CI log
// and the vettool both print.
func TestDiagnosticString(t *testing.T) {
	pkgs, err := Load(LoadConfig{Dir: "testdata/src"}, "exporteddoctest")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{ExportedDoc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "exporteddoctest.go:") || !strings.HasSuffix(s, "[exporteddoc]") {
		t.Errorf("unexpected rendering: %s", s)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos.Line > diags[i].Pos.Line && diags[i-1].Pos.Filename == diags[i].Pos.Filename {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

// TestLoadErrors pins the loader's failure modes.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(LoadConfig{Dir: "testdata/src"}, "nonexistent"); err == nil {
		t.Error("loading a nonexistent package succeeded")
	}
	if _, err := ModulePathOf("testdata"); err == nil {
		t.Error("ModulePathOf without a go.mod succeeded")
	}
	if mod, err := ModulePathOf("../.."); err != nil || mod == "" {
		t.Errorf("ModulePathOf(repo root) = (%q, %v)", mod, err)
	}
}

// TestSuiteShape pins the suite listing: every analyzer is named,
// documented, and runnable, and names are unique.
func TestSuiteShape(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(seen))
	}
}
