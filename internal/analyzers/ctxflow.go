package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces the context-threading contract on library code: a
// request that reaches a deadline or a dropped client must stop
// burning simulator cycles, which only works if cancellation flows
// unbroken from the HTTP handler down to the cycle loop.  Three rules,
// outside package main and test files:
//
//  1. context.Context, where a function takes one, is the first
//     parameter (the convention every caller and wrapper relies on);
//  2. context.Background()/context.TODO() are banned — they silently
//     sever the cancellation chain.  The nil-guard idiom
//     (`if ctx == nil { ctx = context.Background() }`) is recognized
//     automatically; any other root must be annotated
//     `//mtlint:ctx-root <why>` on the function (the deprecated
//     ctx-less wrappers are the intended users);
//  3. passing a literal nil where a callee expects a context is
//     banned — use the caller's ctx, or a documented root.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "library code must thread context.Context as the first " +
		"parameter and never sever cancellation with context.Background/" +
		"TODO or a nil context (annotate deliberate roots with " +
		"//mtlint:ctx-root <why>)",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxFirst(pass, fd)
			if fd.Body == nil {
				continue
			}
			checkCtxCalls(pass, fd)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// checkCtxFirst enforces rule 1: a context parameter anywhere but
// position 0.
func checkCtxFirst(pass *Pass, fd *ast.FuncDecl) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pass.Info.Types[field.Type]
		if ok && isContextType(tv.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "%s: context.Context must be the first parameter (found at position %d)", fd.Name.Name, idx+1)
			return
		}
		idx += n
	}
}

// checkCtxCalls enforces rules 2 and 3 inside one function body.
func checkCtxCalls(pass *Pass, fd *ast.FuncDecl) {
	rootWhy, isRoot := directive(fd.Doc, "ctx-root")
	if isRoot && rootWhy == "" {
		// The missing reason is the actionable finding; isRoot stays
		// set so the Background call below doesn't cascade a second
		// diagnostic.
		pass.Reportf(fd.Pos(), "//mtlint:ctx-root needs a reason (why may this function sever the cancellation chain?)")
	}
	nilGuarded := nilGuardCalls(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: context.Background()/TODO().
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			if name := fn.Name(); name == "Background" || name == "TODO" {
				if !isRoot && !nilGuarded[call] {
					pass.Reportf(call.Pos(), "context.%s in library code severs the cancellation chain; "+
						"thread the caller's ctx, or annotate the function //mtlint:ctx-root <why> if it is a deliberate root", name)
				}
			}
		}
		// Rule 3: a literal nil where the callee wants a context.
		if len(call.Args) > 0 && isUntypedNil(pass, call.Args[0]) {
			if sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature); ok &&
				sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
				pass.Reportf(call.Args[0].Pos(), "nil context passed to %s; pass the caller's ctx "+
					"(the callee's nil-guard is a migration aid, not an API)", renderCallee(call))
			}
		}
		return true
	})
}

// renderCallee names a call target for diagnostics.
func renderCallee(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return lockExprString(fun)
	}
	return "the callee"
}

// nilGuardCalls finds the Background/TODO calls that implement the
// recognized nil-guard idiom
//
//	if ctx == nil { ctx = context.Background() }
//
// — defaulting a ctx-less legacy caller inside a context-accepting
// function keeps the chain intact for every caller that does pass one.
func nilGuardCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != nil {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var subject ast.Expr
		switch {
		case isNilIdent(cond.Y):
			subject = cond.X
		case isNilIdent(cond.X):
			subject = cond.Y
		default:
			return true
		}
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if lockExprString(as.Lhs[0]) != lockExprString(subject) {
				continue
			}
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isUntypedNil reports whether e denotes the predeclared nil (and not a
// local that happens to shadow the name).
func isUntypedNil(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, isNil := obj.(*types.Nil)
	return isNil
}
