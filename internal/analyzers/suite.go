package analyzers

// All returns the full mtlint suite in the order diagnostics group best
// for a human reading the output: key integrity first, then runtime
// invariants, then concurrency contracts, then surface hygiene.
func All() []*Analyzer {
	return []*Analyzer{
		CacheKey,
		Determinism,
		FFwd,
		Registry,
		GuardedBy,
		AtomicGuard,
		CtxFlow,
		GoSpawn,
		ExportedDoc,
	}
}
