package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Determinism enforces bit-determinism in the simulator-core packages:
// equal inputs must produce byte-identical results, because the cache
// keys (cache.go), the phase-skip identity proof (internal/mpisim) and
// the disk-replay byte-compare all assume it.  In those packages the
// pass forbids wall-clock reads (time.Now and friends), timing-
// dependent sleeps, the process-global math/rand generators, and map
// iteration whose order can leak into results.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "simulator-core packages must stay bit-deterministic: no time.Now/" +
		"time.Sleep, no math/rand, and no map iteration whose order escapes " +
		"without a sort (annotate provably order-insensitive loops with " +
		"//mtlint:orderinsensitive <reason>)",
	Run: runDeterminism,
}

// deterministicPkgs are the simulator-core package-path suffixes the
// pass applies to — the layers beneath the cache key, where a
// nondeterminism bug silently corrupts every tier built on equal-key ⇒
// equal-bytes.
var deterministicPkgs = []string{
	"internal/power5",
	"internal/mpisim",
	"internal/isa",
	"internal/oskernel",
	"internal/workload",
	"internal/branch",
	"internal/mem",
	"internal/scenario",
	"internal/sweep",
	"internal/trace",
}

// bannedTimeFuncs are the time-package functions that read the wall
// clock or couple behavior to real elapsed time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runDeterminism(pass *Pass) error {
	if !pathInList(pass.Pkg.Path(), deterministicPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a simulator-core package: the process-global generators are "+
					"unseeded and break bit-determinism; use an explicitly seeded in-repo generator "+
					"(e.g. internal/scenario's splitmix64 or the workload LCG)", path)
			}
		}
		// Directive lines: //mtlint:orderinsensitive <reason> on the
		// line directly above a range statement.
		directives := orderDirectiveLines(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminism(pass, fd, directives)
		}
	}
	return nil
}

// pathInList reports whether path ends in one of the listed suffixes.
func pathInList(path string, list []string) bool {
	for _, s := range list {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// orderDirectiveLines maps line numbers carrying an orderinsensitive
// directive to its reason.
func orderDirectiveLines(pass *Pass, f *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, directivePrefix+"orderinsensitive"); ok {
				out[pass.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

// checkDeterminism walks one function body for the three violation
// classes.
func checkDeterminism(pass *Pass, fd *ast.FuncDecl, directives map[int]string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, _ := pass.Info.Uses[n.Sel].(*types.Func)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
				pass.Reportf(n.Pos(), "time.%s in a simulator-core package: wall-clock reads break bit-determinism "+
					"(equal cache keys must mean byte-identical results); derive timing from simulated cycles", fn.Name())
			}
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if reason, ok := directives[line-1]; ok {
				if reason == "" {
					pass.Reportf(n.Pos(), "//mtlint:orderinsensitive needs a reason explaining why iteration order cannot escape")
				}
				return true
			}
			if mapRangeIsCollectAndSort(pass, fd, n) {
				return true
			}
			pass.Reportf(n.Pos(), "range over a map in a simulator-core package: iteration order is randomized and may "+
				"leak into results; collect the keys and sort them, or annotate the loop with "+
				"//mtlint:orderinsensitive <reason> if order provably cannot escape")
		}
		return true
	})
}

// mapRangeIsCollectAndSort recognizes the one idiom that makes a map
// range deterministic without annotation: every statement in the loop
// body appends to plain local slices, and each of those slices is later
// passed to a sort (sort.* or slices.Sort*) in the same function, after
// the loop.
func mapRangeIsCollectAndSort(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	var collected []*ast.Ident
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
			return false
		}
		collected = append(collected, dst)
	}
	if len(collected) == 0 {
		return false
	}
	for _, dst := range collected {
		if !sortedAfter(pass, fd, rng, dst) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether ident's object is passed to a sort.* or
// slices.* call positioned after the range statement in fd's body.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, ident *ast.Ident) bool {
	obj := pass.Info.Uses[ident]
	if obj == nil {
		obj = pass.Info.Defs[ident]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || found {
			return !found
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
