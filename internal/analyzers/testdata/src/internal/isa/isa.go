// Package isa is the ffwd analyzer's fixture: it declares the Stream
// and FastForwarder interfaces the pass resolves by package-path
// suffix, plus implementations on both sides of the contract.
package isa

// Instr is a single dynamic instruction.
type Instr struct{}

// Stream produces a deterministic sequence of instructions.
type Stream interface {
	// Next fills *Instr and reports whether the stream continues.
	Next(*Instr) bool
	// Reset rewinds the stream to its initial state.
	Reset()
}

// FastForwarder is implemented by streams whose state the phase-skip
// engine can capture and advance analytically.
type FastForwarder interface {
	// FFSupported reports whether capture works for this value.
	FFSupported() bool
	// FFNorm appends the normalized state.
	FFNorm(b []byte) []byte
	// FFCtrs appends the extensive counters.
	FFCtrs(c []int64) []int64
	// FFAdvance applies k windows of the per-window deltas.
	FFAdvance(k, dt int64, d []int64) []int64
}

// Good implements both sides of the contract.
type Good struct{ pos int }

// Next implements Stream.
func (g *Good) Next(*Instr) bool { return false }

// Reset implements Stream.
func (g *Good) Reset() { g.pos = 0 }

// FFSupported implements FastForwarder.
func (g *Good) FFSupported() bool { return true }

// FFNorm implements FastForwarder.
func (g *Good) FFNorm(b []byte) []byte { return append(b, byte(g.pos)) }

// FFCtrs implements FastForwarder.
func (g *Good) FFCtrs(c []int64) []int64 { return c }

// FFAdvance implements FastForwarder.
func (g *Good) FFAdvance(k, dt int64, d []int64) []int64 { return d }

// Bad holds per-cycle state the phase-skip engine cannot snapshot.
type Bad struct{ pos int } // want `Bad implements isa\.Stream but not isa\.FastForwarder`

// Next implements Stream.
func (b *Bad) Next(*Instr) bool { b.pos++; return true }

// Reset implements Stream.
func (b *Bad) Reset() { b.pos = 0 }

// Excused opts out with a recorded reason.
//
//mtlint:no-ffwd wraps an external trace reader whose cursor cannot be rewound
type Excused struct{}

// Next implements Stream.
func (Excused) Next(*Instr) bool { return false }

// Reset implements Stream.
func (Excused) Reset() {}

// Unexcused opts out without saying why.
//
//mtlint:no-ffwd
type Unexcused struct{} // want `//mtlint:no-ffwd needs a reason`

// Next implements Stream.
func (Unexcused) Next(*Instr) bool { return false }

// Reset implements Stream.
func (Unexcused) Reset() {}

// Filter is an interface extending Stream; interfaces declare the
// contract rather than holding state, so the pass skips them.
type Filter interface {
	Stream
	// Keep reports whether the instruction survives the filter.
	Keep(*Instr) bool
}

// NotAStream has no Next/Reset and is ignored entirely.
type NotAStream struct{ n int }
