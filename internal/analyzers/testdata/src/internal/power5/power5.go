// Package power5 is the determinism analyzer's fixture: its import path
// ends in internal/power5, one of the simulator-core suffixes the pass
// applies to.
package power5

import (
	"math/rand" // want `import of math/rand in a simulator-core package`
	"sort"
	"time"
)

// wallClock reads real time from inside the simulator core.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a simulator-core package`
}

// sleepy couples behavior to real elapsed time.
func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a simulator-core package`
}

// leakyOrder lets map iteration order escape into the result.
func leakyOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over a map in a simulator-core package`
		out = append(out, k+"!")
	}
	return out
}

// collectAndSort is the blessed idiom: the loop only accumulates, and
// every accumulator is sorted before use.
func collectAndSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// annotated documents why order cannot escape.
func annotated(m map[string]int) int {
	sum := 0
	//mtlint:orderinsensitive addition is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}

// badAnnotation claims insensitivity without a reason.
func badAnnotation(m map[string]int) int {
	sum := 0
	//mtlint:orderinsensitive
	for _, v := range m { // want `//mtlint:orderinsensitive needs a reason`
		sum += v
	}
	return sum
}

// seeded keeps the deterministic parts in use so the fixture
// type-checks without unused-variable errors.
func seeded() int {
	return rand.Int()
}
