// Package cachekeytest is the cachekey analyzer's fixture.
package cachekeytest

// Options is the audited struct: Hashed flows through the hasher
// directly, ViaArg flows through a call argument, Exempt carries a
// justification — and Forgotten is the bug the pass exists to catch.
//
//mtlint:cachekey run
type Options struct {
	// Hashed is read inside the hasher body.
	Hashed int
	// ViaArg is passed to the hasher at a call site.
	ViaArg string
	// Exempt never reaches the key, with a recorded reason.
	//
	//mtlint:cachekey-exempt diagnostics only, never affects behavior
	Exempt bool
	// Forgotten affects behavior but nobody hashes it.
	Forgotten int // want `Options\.Forgotten is neither hashed`
	// BadExempt claims an exemption without saying why.
	//
	//mtlint:cachekey-exempt
	BadExempt int // want `BadExempt: //mtlint:cachekey-exempt needs a justification`
}

// keyOf is the run group's hasher.
//
//mtlint:cachekey-hasher run
func keyOf(opts *Options, extra string) string {
	return string(rune(opts.Hashed)) + extra
}

// useViaArg hashes ViaArg by handing it to keyOf.
func useViaArg(opts *Options) string {
	return keyOf(opts, opts.ViaArg)
}

// Orphan is marked but has no hasher to audit against.
//
//mtlint:cachekey orphan
type Orphan struct { // want `//mtlint:cachekey orphan has no //mtlint:cachekey-hasher orphan function`
	// Field is unauditable until a hasher exists.
	Field int
}

// danglingKey names a group with no marked struct.
//
//mtlint:cachekey-hasher dangling
func danglingKey() string { return "" } // want `//mtlint:cachekey-hasher dangling has no //mtlint:cachekey dangling struct`

// Unmarked carries a dead exemption: the struct is never audited, so
// the claim is noise.
type Unmarked struct {
	//mtlint:cachekey-exempt stale claim
	Field int // want `//mtlint:cachekey-exempt on a field of Unmarked, which has no //mtlint:cachekey directive`
}

// Nameless is missing its group name.
//
//mtlint:cachekey
type Nameless struct { // want `//mtlint:cachekey needs a group name`
	// Field is never audited.
	Field int
}
