// Package ctxflowtest is the ctxflow analyzer's fixture: context
// parameter placement, severed cancellation chains, and the two
// recognized escapes (the nil-guard idiom and //mtlint:ctx-root).
package ctxflowtest

import "context"

func work(ctx context.Context, n int) error {
	return sink(ctx, n)
}

func sink(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func badOrder(n int, ctx context.Context) error { // want `badOrder: context\.Context must be the first parameter`
	return sink(ctx, n)
}

func severed(ctx context.Context, n int) error {
	_ = ctx
	return sink(context.Background(), n) // want `context\.Background in library code severs the cancellation chain`
}

func todoRoot(n int) error {
	return sink(context.TODO(), n) // want `context\.TODO in library code severs the cancellation chain`
}

// legacy is the deprecated ctx-less wrapper shape the directive exists
// for.
//
//mtlint:ctx-root deprecated ctx-less wrapper kept for API compatibility
func legacy(n int) error {
	return sink(context.Background(), n)
}

//mtlint:ctx-root
func badRoot(n int) error { // want `//mtlint:ctx-root needs a reason`
	return sink(context.Background(), n)
}

func guarded(ctx context.Context, n int) error {
	if ctx == nil {
		ctx = context.Background() // the recognized nil-guard idiom
	}
	return sink(ctx, n)
}

func nilArg(n int) error {
	return sink(nil, n) // want `nil context passed to sink`
}
