// Package registrytest is the registry analyzer's fixture: it mirrors
// the repository's registration surface (RegisterPolicy, factory map
// literals, Params methods, param helpers) with names on both sides of
// the spec grammar.
package registrytest

// Policy is the registered behavior.
type Policy interface {
	// Name returns the policy's registered name.
	Name() string
}

// PolicyFactory builds a policy from parsed parameters.
type PolicyFactory func(params map[string]string) (Policy, error)

// ScenarioFactory builds a scenario from parsed parameters.
type ScenarioFactory func(params map[string]string) (any, error)

// RegisterPolicy mirrors the root package's registration entry point.
func RegisterPolicy(name string, factory PolicyFactory) error { return nil }

// RegisterScenario mirrors the root package's registration entry point.
func RegisterScenario(name string, factory ScenarioFactory) error { return nil }

// paramInt mirrors the root package's parameter helper.
func paramInt(params map[string]string, key string, def, min, max int) (int, error) {
	return def, nil
}

func register() {
	_ = RegisterPolicy("good", nil)
	_ = RegisterPolicy("bad,name", nil) // want `policy name "bad,name" contains ,`
	_ = RegisterPolicy("bad name", nil) // want `policy name "bad name" contains whitespace`
	_ = RegisterScenario("", nil)       // want `scenario name "" is empty`
	_ = RegisterScenario("a=b", nil)    // want `scenario name "a=b" contains =`
	for name, factory := range map[string]PolicyFactory{
		"fine":     nil,
		"als;o":    nil, // want `policy name "als;o" contains ;`
		"trailing": nil,
	} {
		_ = RegisterPolicy(name, factory)
	}
	for name, factory := range map[string]ScenarioFactory{
		"shape=x": nil, // want `scenario name "shape=x" contains =`
	} {
		_ = RegisterScenario(name, factory)
	}
}

// fixed is a policy with a Params identity surface.
type fixed struct{}

// Name implements Policy.
func (fixed) Name() string { return "fixed" }

// Params renders the policy's parameters.
func (fixed) Params() map[string]string {
	return map[string]string{
		"gain":    "1",
		"Dead":    "0", // want `Params\(\) key "Dead" is not lower-case`
		"max=off": "2", // want `Params\(\) key "max=off" contains =`
	}
}

func readParams(params map[string]string) {
	_, _ = paramInt(params, "maxdiff", 0, 1, 4)
	_, _ = paramInt(params, "MaxDiff", 0, 1, 4)  // want `parameter key "MaxDiff" is not lower-case`
	_, _ = paramInt(params, "max diff", 0, 1, 4) // want `parameter key "max diff" contains whitespace`
}
