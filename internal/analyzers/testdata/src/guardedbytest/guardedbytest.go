// Package guardedbytest is the guardedby analyzer's fixture:
// mutex-bearing structs exercising the annotation rules (guarded,
// justified-unguarded, missing, bad argument) and the lock-span access
// check, including the embedded-RWMutex registry idiom.
package guardedbytest

import "sync"

// counter has one guarded field, one justified unguarded field, and
// one field with no synchronization story.
type counter struct {
	mu  sync.Mutex
	n   int //mtlint:guardedby mu
	cap int //mtlint:unguarded fixed at construction, read-only afterwards
	bad int // want `counter\.bad is a field of a mutex-bearing struct`
}

func newCounter(capacity int) *counter {
	return &counter{cap: capacity} // keyed construction needs no lock
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) read() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n + c.cap
}

func (c *counter) racy() int {
	return c.n // want `counter\.n is guarded by "mu" but accessed outside`
}

func (c *counter) reacquire() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `counter\.n is guarded by "mu" but accessed outside`
	c.mu.Lock()
	c.n = 3
	c.mu.Unlock()
}

// lockedHelper documents its lock-held precondition; callers lock.
//
//mtlint:locked mu
func (c *counter) lockedHelper() int { return c.n }

//mtlint:locked
func (c *counter) lockedBare() int { return c.n } // want `//mtlint:locked needs the name of the mutex`

// table guards its map with an embedded RWMutex, so the promoted
// t.Lock()/t.RLock() forms guard the fields too.
type table struct {
	sync.RWMutex
	m map[string]int //mtlint:guardedby RWMutex
}

func (t *table) set(k string, v int) {
	t.Lock()
	defer t.Unlock()
	t.m[k] = v
}

func (t *table) get(k string) int {
	t.RLock()
	v := t.m[k]
	t.RUnlock()
	return v
}

func (t *table) leak() map[string]int {
	return t.m // want `table\.m is guarded by "RWMutex" but accessed outside`
}

// registry is the anonymous-struct package-var idiom.
var registry = struct {
	sync.RWMutex
	m map[string]int //mtlint:guardedby RWMutex
}{m: make(map[string]int)}

func register(k string) {
	registry.Lock()
	defer registry.Unlock()
	registry.m[k] = 1
}

func lookup(k string) int {
	return registry.m[k] // want `registry\.m is guarded by "RWMutex" but accessed outside`
}

// plain has no mutex, so its directive claims an audit that never
// runs.
type plain struct {
	//mtlint:guardedby mu
	x int // want `//mtlint:guardedby on a field of plain`
}

// wrongMu exercises the bad-argument diagnostics.
type wrongMu struct {
	mu sync.Mutex
	//mtlint:guardedby other
	v int // want `wrongMu\.v: //mtlint:guardedby "other" names no sync\.Mutex/RWMutex field`
	//mtlint:unguarded
	w int // want `wrongMu\.w: //mtlint:unguarded needs a justification`
}

func (w *wrongMu) use() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.v + w.w
}

var _ = plain{}
