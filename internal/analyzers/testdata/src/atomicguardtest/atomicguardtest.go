// Package atomicguardtest is the atomicguard analyzer's fixture: mixed
// atomic/plain access to struct fields and package variables.
package atomicguardtest

import "sync/atomic"

// stats mixes an atomically-maintained counter with a plain one.
type stats struct {
	hits  int64
	total int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) hitCount() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) racyRead() int64 {
	return s.hits // want `hits is accessed through sync/atomic elsewhere`
}

func (s *stats) racyWrite() {
	s.hits = 0 // want `hits is accessed through sync/atomic elsewhere`
}

func (s *stats) plainOnly() int64 {
	s.total++ // total is never touched atomically: no finding
	return s.total
}

func newStats() *stats {
	return &stats{hits: 0} // keyed construction is initialization, not sharing
}

var seq int64

func next() int64 {
	return atomic.AddInt64(&seq, 1)
}

func peek() int64 {
	return seq // want `seq is accessed through sync/atomic elsewhere`
}
