// Package gospawntest is the gospawn analyzer's fixture: goroutines
// with visible joins (WaitGroup, errc, closed done channel), unowned
// goroutines, and the ownership directive.
package gospawntest

import "sync"

func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func errcJoined() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	return <-errc
}

func doneClosed() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func unowned() {
	go func() {}() // want `goroutine has no visible join`
}

func noWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }() // want `goroutine has no visible join`
}

func named() {
	//mtlint:goroutine owned by the process; runs until exit by design
	go worker()
}

func bare() {
	//mtlint:goroutine
	go worker() // want `//mtlint:goroutine needs a reason`
}

func worker() {}
