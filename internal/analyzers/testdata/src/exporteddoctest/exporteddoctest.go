// Package exporteddoctest is the exporteddoc analyzer's fixture: a
// single-segment import path, so its exported surface is contract.
// Field and const/var expectations use the offset form (want:-N)
// because a same-line want comment would itself document the symbol.
package exporteddoctest

// Documented carries the doc comment the contract requires.
type Documented struct {
	// Field is documented.
	Field int
	// Tagged is documented too.
	Tagged int
}

type Undocumented struct{} // want `undocumented exported symbol: type Undocumented`

// Mixed documents the type but not every member.
type Mixed struct {
	// OK is documented.
	OK     int
	NotOK  int // a trailing comment counts as documentation
	hidden int

	Silent int
	// want:-1 `undocumented exported symbol: Mixed\.Silent`
}

func Exported() {} // want `undocumented exported symbol: func Exported`

// Receiver is exported, so its exported methods need doc.
type Receiver struct{}

func (Receiver) Loud() {} // want `undocumented exported symbol: func \(Receiver\)\.Loud`

// quiet is unexported; its exported-looking methods are not API.
type quiet struct{}

func (quiet) Loud() {}

// Iface is an interface whose methods are contract too.
type Iface interface {
	// Known is documented.
	Known()

	Unknown()
	// want:-1 `undocumented exported symbol: Iface\.Unknown`
}

// Grouped consts share the group doc.
const (
	GroupedA = iota
	GroupedB
)

const Alone = 1

// want:-2 `undocumented exported symbol: const/var Alone`

var Loose int

// want:-2 `undocumented exported symbol: const/var Loose`

// helper is unexported and needs no doc.
func helper() {}
