package analyzers

import (
	"go/ast"
	"strings"
)

// ExportedDoc fails on any exported symbol — type, function, method,
// const, var, struct field or interface method — that carries no doc
// comment, in the packages whose exported surface is a contract: the
// public root package, the command packages, internal/serve, and this
// analyzer suite itself.  It is the former root-package-only
// godoc_lint_test.go, generalized: the exported surface is the
// reproduction's API, and an undocumented export is a review miss this
// pass turns into a CI failure.
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc: "exported symbols of API-surface packages (the root package, " +
		"cmd/*, internal/serve, internal/analyzers) must carry doc comments",
	Run: runExportedDoc,
}

func runExportedDoc(pass *Pass) error {
	if !exportedDocApplies(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				// Methods count only on exported receivers: a method on an
				// unexported type is not reachable API unless the type leaks
				// through an exported interface, whose methods are checked
				// at the interface declaration instead.
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				if d.Doc == nil {
					pass.Reportf(d.Pos(), "undocumented exported symbol: func %s", funcDisplayName(d))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if d.Doc == nil && s.Doc == nil {
							pass.Reportf(s.Pos(), "undocumented exported symbol: type %s", s.Name.Name)
						}
						checkTypeMembers(pass, s)
					case *ast.ValueSpec:
						// A group doc (`// Priorities ...` above a const
						// block) or a per-spec doc or trailing line comment
						// all document the value.
						documented := d.Doc != nil || s.Doc != nil || s.Comment != nil
						for _, id := range s.Names {
							if id.IsExported() && !documented {
								pass.Reportf(id.Pos(), "undocumented exported symbol: const/var %s", id.Name)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// exportedDocApplies decides whether a package's exported surface is
// contract: the module root (a single-segment path, like the fixture
// roots), any command under a cmd directory, the serving tier's API,
// and the analyzer suite itself.
func exportedDocApplies(path string) bool {
	if !strings.Contains(path, "/") {
		return true // module root or fixture root package
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return pathHasSuffix(path, "internal/serve") || pathHasSuffix(path, "internal/analyzers")
}

// checkTypeMembers reports undocumented exported struct fields and
// interface methods of an exported type.
func checkTypeMembers(pass *Pass, s *ast.TypeSpec) {
	var fields *ast.FieldList
	switch tt := s.Type.(type) {
	case *ast.StructType:
		fields = tt.Fields
	case *ast.InterfaceType:
		fields = tt.Methods
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, id := range f.Names {
			if id.IsExported() {
				pass.Reportf(id.Pos(), "undocumented exported symbol: %s.%s", s.Name.Name, id.Name)
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is an
// exported name (after stripping any pointer and type parameters).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// funcDisplayName renders a function or method name for diagnostics.
func funcDisplayName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return d.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		b.WriteString("*")
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		b.WriteString(id.Name)
	}
	b.WriteString(").")
	b.WriteString(d.Name.Name)
	return b.String()
}
