package sweep

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if a test leaks a goroutine: ForEachCtx
// owns its worker pool and must join every worker before returning,
// cancelled or not.
func TestMain(m *testing.M) { leakcheck.Main(m) }
