package sweep

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/workload"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(16, 4, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(40, 1, fn)
	for _, w := range []int{2, 5, 16} {
		if got := Map(40, w, fn); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %v != %v", w, got, want)
		}
	}
}

func TestPairingsCounts(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{2, 1}, {4, 3}, {6, 15}} {
		if got := len(Pairings(tc.n)); got != tc.want {
			t.Errorf("Pairings(%d): %d pairings, want %d", tc.n, got, tc.want)
		}
	}
	if Pairings(3) != nil || Pairings(0) != nil {
		t.Error("odd or zero n must yield no pairings")
	}
	want := []string{"0+1|2+3", "0+2|1+3", "0+3|1+2"}
	for i, p := range Pairings(4) {
		if p.String() != want[i] {
			t.Errorf("Pairings(4)[%d] = %s, want %s", i, p, want[i])
		}
	}
}

func TestPairingPlacement(t *testing.T) {
	p := Pairing{{0, 3}, {1, 2}}
	pl := p.Placement([]hwpri.Priority{6, 4, 4, 2})
	wantCPU := []int{0, 2, 3, 1}
	if !reflect.DeepEqual(pl.CPU, wantCPU) {
		t.Errorf("CPU = %v, want %v", pl.CPU, wantCPU)
	}
}

func TestEnumerateCountsAndOrder(t *testing.T) {
	pts, err := Enumerate(4, Space{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*81 {
		t.Fatalf("default 4-rank space has %d points, want 243", len(pts))
	}
	// Last rank varies fastest within a pairing.
	if pts[0].Prio[3] == pts[1].Prio[3] {
		t.Errorf("odometer not advancing the last rank first: %v then %v", pts[0], pts[1])
	}
	// Restricting the pairing divides the space by 3.
	pts, err = Enumerate(4, Space{Pairings: []Pairing{{{0, 1}, {2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 81 {
		t.Fatalf("fixed-pairing space has %d points, want 81", len(pts))
	}
	// A two-priority alphabet over 4 ranks: 3 * 2^4.
	pts, err = Enumerate(4, Space{Alphabet: []hwpri.Priority{hwpri.Medium, hwpri.High}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 48 {
		t.Fatalf("two-letter space has %d points, want 48", len(pts))
	}
}

func TestEnumerateRejectsBadInput(t *testing.T) {
	if _, err := Enumerate(3, Space{}); err == nil {
		t.Error("odd rank count accepted")
	}
	if _, err := Enumerate(4, Space{Alphabet: []hwpri.Priority{hwpri.VeryHigh}}); err == nil {
		t.Error("priority 7 accepted")
	}
	if _, err := Enumerate(4, Space{Alphabet: []hwpri.Priority{hwpri.Medium, hwpri.Medium}}); err == nil {
		t.Error("duplicate alphabet entry accepted")
	}
	for _, bad := range []Pairing{
		{{1, 0}, {2, 3}}, // pair not sorted
		{{2, 3}, {0, 1}}, // pairs not ordered
		{{0, 1}, {1, 3}}, // repeated rank
		{{0, 1}},         // wrong size
	} {
		if _, err := Enumerate(4, Space{Pairings: []Pairing{bad}}); err == nil {
			t.Errorf("non-canonical pairing %v accepted", bad)
		}
	}
}

func TestObjectiveScores(t *testing.T) {
	m := Metrics{Cycles: 200, ImbalancePct: 50}
	if s := MinCycles().Score(m, 100); s != 2 {
		t.Errorf("MinCycles score = %v, want 2", s)
	}
	if s := MinImbalance().Score(m, 100); s != 0.5 {
		t.Errorf("MinImbalance score = %v, want 0.5", s)
	}
	if s := Weighted(1, 1).Score(m, 100); s != 2.5 {
		t.Errorf("Weighted score = %v, want 2.5", s)
	}
	custom := Objective{Fn: func(m Metrics, _ int64) float64 { return float64(m.Cycles) + 1 }}
	if s := custom.Score(m, 100); s != 201 {
		t.Errorf("custom score = %v, want 201", s)
	}
	if (Objective{}).normalize().Label != "cycles" {
		t.Error("zero objective must normalize to MinCycles")
	}
}

// sweepJob is a small imbalanced 4-rank job: two light ranks, two heavy.
func sweepJob(load int64) *mpisim.Job {
	job := &mpisim.Job{Name: "sweep-test"}
	for r := 0; r < 4; r++ {
		n := load
		if r%2 == 1 {
			n = 4 * load
		}
		job.Ranks = append(job.Ranks, mpisim.Program{
			mpisim.Compute(workload.Load{Kind: workload.FPU, N: n}),
			mpisim.Barrier(),
		})
	}
	return job
}

// testSpace is small enough for -race yet non-trivial: all 3 pairings
// with a two-letter alphabet (48 configurations).
func testSpace() Space {
	return Space{Alphabet: []hwpri.Priority{hwpri.Medium, hwpri.High}}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	job := sweepJob(4000)
	points, err := Enumerate(4, testSpace())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Sweep(job, points, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par, err := Sweep(job, points, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d ranking differs from serial:\nserial best %+v\nparallel best %+v",
				w, serial.Ranked[0], par.Ranked[0])
		}
	}
	if serial.Failed != 0 {
		t.Errorf("%d runs failed", serial.Failed)
	}
	if serial.Evaluated != len(points) {
		t.Errorf("evaluated %d, want %d", serial.Evaluated, len(points))
	}
}

func TestSweepFindsBalancingConfiguration(t *testing.T) {
	job := sweepJob(6000)
	res, err := SweepSpace(job, testSpace(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	// The reference configuration: in-order pairing, all priorities 4.
	var ref RunResult
	found := false
	for _, rr := range res.Ranked {
		if rr.Point.String() == "0+1|2+3 @ 4,4,4,4" {
			ref, found = rr, true
		}
	}
	if !found {
		t.Fatal("reference configuration missing from the space")
	}
	if best.Metrics.Cycles >= ref.Metrics.Cycles {
		t.Errorf("best configuration %v (%d cycles) no faster than reference (%d cycles)",
			best.Point, best.Metrics.Cycles, ref.Metrics.Cycles)
	}
	// The winner must favor heavy ranks: each core's heavy rank at
	// priority >= its light sibling (heavy ranks are the odd ones).
	for _, pair := range best.Point.Pairing {
		a, b := pair[0], pair[1]
		pa, pb := best.Point.Prio[a], best.Point.Prio[b]
		heavyA := a%2 == 1
		heavyB := b%2 == 1
		if heavyA && !heavyB && pa < pb {
			t.Errorf("winner %v penalizes heavy rank %d", best.Point, a)
		}
		if heavyB && !heavyA && pb < pa {
			t.Errorf("winner %v penalizes heavy rank %d", best.Point, b)
		}
	}
}

func TestSweepObjectiveChangesRanking(t *testing.T) {
	job := sweepJob(4000)
	points, err := Enumerate(4, testSpace())
	if err != nil {
		t.Fatal(err)
	}
	byCycles, err := Sweep(job, points, Options{Objective: MinCycles()})
	if err != nil {
		t.Fatal(err)
	}
	byImb, err := Sweep(job, points, Options{Objective: MinImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := byCycles.Best()
	bi, _ := byImb.Best()
	if bi.Metrics.ImbalancePct > bc.Metrics.ImbalancePct {
		t.Errorf("imbalance objective picked a more imbalanced winner (%.2f%%) than the cycles objective (%.2f%%)",
			bi.Metrics.ImbalancePct, bc.Metrics.ImbalancePct)
	}
}

func TestSweepTopTruncates(t *testing.T) {
	job := sweepJob(3000)
	points, err := Enumerate(4, Space{Pairings: []Pairing{{{0, 1}, {2, 3}}},
		Alphabet: []hwpri.Priority{hwpri.Medium, hwpri.High}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(job, points, Options{Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 5 {
		t.Errorf("got %d ranked entries, want 5", len(res.Ranked))
	}
	if res.Evaluated != len(points) {
		t.Errorf("Evaluated = %d, want %d", res.Evaluated, len(points))
	}
}

func TestSweepRecordsFailures(t *testing.T) {
	job := sweepJob(5000)
	points, err := Enumerate(4, testSpace())
	if err != nil {
		t.Fatal(err)
	}
	// A 1-cycle budget starves every run.
	res, err := Sweep(job, points, Options{Config: mpisim.Config{MaxCycles: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != len(points) {
		t.Errorf("Failed = %d, want %d", res.Failed, len(points))
	}
	if res.FirstErr == nil {
		t.Error("FirstErr not recorded")
	}
	if _, err := res.Best(); err == nil {
		t.Error("Best succeeded on an all-failed sweep")
	}
	// Truncation must not erase the failure record.
	res, err = Sweep(job, points, Options{Top: 1, Config: mpisim.Config{MaxCycles: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != len(points) || res.FirstErr == nil {
		t.Errorf("Top truncation lost the failure record: Failed=%d FirstErr=%v", res.Failed, res.FirstErr)
	}
}

func TestSweepRejectsBadOptions(t *testing.T) {
	job := sweepJob(1000)
	if _, err := Sweep(job, nil, Options{}); err == nil {
		t.Error("empty space accepted")
	}
	cfg := mpisim.Config{OnIteration: func(mpisim.IterationEvent) {}}
	points, _ := Enumerate(4, testSpace())
	if _, err := Sweep(job, points, Options{Config: cfg}); err == nil {
		t.Error("OnIteration accepted")
	}
}
