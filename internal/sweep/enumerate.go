package sweep

import (
	"fmt"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
)

// Pairing partitions a job's ranks into sibling pairs: Pairing[c] holds
// the two ranks sharing core c's SMT contexts.  The canonical form —
// within each pair the lower rank first, pairs ordered by their first
// rank — is one representative of the equivalence class under the
// machine's two symmetries: cores are interchangeable and so are the two
// contexts of a core, so relabeling either never changes a run.
type Pairing [][2]int

// Placement expands the pairing into a concrete CPU map with the given
// per-rank priorities: the pair's first rank lands on the core's even
// context, the second on the odd one.
func (p Pairing) Placement(prio []hwpri.Priority) mpisim.Placement {
	cpu := make([]int, 2*len(p))
	for c, pair := range p {
		cpu[pair[0]] = 2 * c
		cpu[pair[1]] = 2*c + 1
	}
	return mpisim.Placement{CPU: cpu, Prio: prio}
}

// String renders the pairing as e.g. "0+3|1+2".
func (p Pairing) String() string {
	s := ""
	for c, pair := range p {
		if c > 0 {
			s += "|"
		}
		s += fmt.Sprintf("%d+%d", pair[0], pair[1])
	}
	return s
}

// Pairings enumerates every distinct partition of n ranks (n even, n > 0)
// into sibling pairs, in canonical form and deterministic order.  There
// are (n-1)!! of them — 3 for the paper's 4-rank jobs, versus the 24
// raw CPU assignments the symmetry pruning collapses.
func Pairings(n int) []Pairing {
	if n <= 0 || n%2 != 0 {
		return nil
	}
	used := make([]bool, n)
	var cur [][2]int
	var out []Pairing
	var rec func()
	rec = func() {
		first := -1
		for i, u := range used {
			if !u {
				first = i
				break
			}
		}
		if first < 0 {
			p := make(Pairing, len(cur))
			copy(p, cur)
			out = append(out, p)
			return
		}
		used[first] = true
		for j := first + 1; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			cur = append(cur, [2]int{first, j})
			rec()
			cur = cur[:len(cur)-1]
			used[j] = false
		}
		used[first] = false
	}
	rec()
	return out
}

// UserAlphabet is the priority set unprivileged code can reach through
// the or-nop interface (Section III-B).
func UserAlphabet() []hwpri.Priority {
	return []hwpri.Priority{hwpri.Low, hwpri.MediumLow, hwpri.Medium}
}

// OSAlphabet is the priority set the patched kernel's procfs interface
// exposes (Section VI) minus VeryLow, whose leftover-only regime starves
// a busy rank outright and is never useful as a launch priority.
func OSAlphabet() []hwpri.Priority {
	return []hwpri.Priority{hwpri.Low, hwpri.MediumLow, hwpri.Medium, hwpri.MediumHigh, hwpri.High}
}

// Space describes a configuration space to enumerate.
type Space struct {
	// Pairings restricts the rank pairings; nil enumerates Pairings(n).
	Pairings []Pairing
	// Alphabet is the per-rank priority alphabet; nil means UserAlphabet.
	Alphabet []hwpri.Priority
}

// Point is one configuration of the space: a pairing plus a priority for
// every rank.
type Point struct {
	Pairing Pairing
	Prio    []hwpri.Priority
}

// Placement expands the point into a concrete mpisim placement.
func (pt Point) Placement() mpisim.Placement { return pt.Pairing.Placement(pt.Prio) }

// String renders the point as e.g. "0+3|1+2 @ 6,4,4,2".
func (pt Point) String() string {
	s := pt.Pairing.String() + " @ "
	for i, p := range pt.Prio {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", int(p))
	}
	return s
}

// Enumerate lists the full space for n ranks in deterministic order:
// pairings in Pairings order, and for each pairing the cartesian product
// of the alphabet over ranks, last rank varying fastest.  n must be even
// (pairings fill whole cores; whether n fits the machine is checked by
// the simulator at run time).  Priorities outside the OS range 1..6 are
// rejected: 0 and 7 change the machine's context population, which the
// enumerator deliberately keeps fixed.
func Enumerate(n int, sp Space) ([]Point, error) {
	if n <= 0 || n%2 != 0 {
		return nil, fmt.Errorf("sweep: need an even positive rank count, got %d", n)
	}
	pairings := sp.Pairings
	if pairings == nil {
		pairings = Pairings(n)
	}
	for _, p := range pairings {
		if err := validPairing(n, p); err != nil {
			return nil, err
		}
	}
	alphabet := sp.Alphabet
	if alphabet == nil {
		alphabet = UserAlphabet()
	}
	seen := map[hwpri.Priority]bool{}
	for _, p := range alphabet {
		if p < hwpri.VeryLow || p > hwpri.High {
			return nil, fmt.Errorf("sweep: priority %d outside the sweepable range 1..6", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("sweep: duplicate priority %d in alphabet", p)
		}
		seen[p] = true
	}

	total := len(pairings)
	for i := 0; i < n; i++ {
		total *= len(alphabet)
	}
	out := make([]Point, 0, total)
	idx := make([]int, n)
	for _, pairing := range pairings {
		for i := range idx {
			idx[i] = 0
		}
		for {
			prio := make([]hwpri.Priority, n)
			for r, k := range idx {
				prio[r] = alphabet[k]
			}
			out = append(out, Point{Pairing: pairing, Prio: prio})
			// Odometer increment, last rank fastest.
			r := n - 1
			for ; r >= 0; r-- {
				idx[r]++
				if idx[r] < len(alphabet) {
					break
				}
				idx[r] = 0
			}
			if r < 0 {
				break
			}
		}
	}
	return out, nil
}

// validPairing checks that a pairing is a canonical partition of [0, n).
func validPairing(n int, p Pairing) error {
	if len(p)*2 != n {
		return fmt.Errorf("sweep: pairing %v covers %d ranks, want %d", p, len(p)*2, n)
	}
	seen := make([]bool, n)
	prevFirst := -1
	for _, pair := range p {
		a, b := pair[0], pair[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("sweep: pairing %v names a rank outside [0,%d)", p, n)
		}
		if a >= b {
			return fmt.Errorf("sweep: pairing %v not canonical (want lower rank first in each pair)", p)
		}
		if a <= prevFirst {
			return fmt.Errorf("sweep: pairing %v not canonical (pairs must be ordered by first rank)", p)
		}
		if seen[a] || seen[b] {
			return fmt.Errorf("sweep: pairing %v repeats a rank", p)
		}
		seen[a], seen[b] = true, true
		prevFirst = a
	}
	return nil
}
