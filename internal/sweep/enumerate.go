package sweep

import (
	"fmt"
	"strings"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/power5"
)

// Pairing partitions a job's ranks into sibling pairs: Pairing[c] holds
// the two ranks sharing core c's SMT contexts.  The canonical form —
// within each pair the lower rank first, pairs ordered by their first
// rank — is one representative of the equivalence class under the
// machine's two symmetries: cores are interchangeable and so are the two
// contexts of a core, so relabeling either never changes a run.
type Pairing [][2]int

// Placement expands the pairing into a concrete CPU map with the given
// per-rank priorities: the pair's first rank lands on the core's even
// context, the second on the odd one.
func (p Pairing) Placement(prio []hwpri.Priority) mpisim.Placement {
	cpu := make([]int, 2*len(p))
	for c, pair := range p {
		cpu[pair[0]] = 2 * c
		cpu[pair[1]] = 2*c + 1
	}
	return mpisim.Placement{CPU: cpu, Prio: prio}
}

// String renders the pairing as e.g. "0+3|1+2".
func (p Pairing) String() string {
	s := ""
	for c, pair := range p {
		if c > 0 {
			s += "|"
		}
		s += fmt.Sprintf("%d+%d", pair[0], pair[1])
	}
	return s
}

// Pairings enumerates every distinct partition of n ranks (n even, n > 0)
// into sibling pairs, in canonical form and deterministic order.  There
// are (n-1)!! of them — 3 for the paper's 4-rank jobs, versus the 24
// raw CPU assignments the symmetry pruning collapses.
func Pairings(n int) []Pairing {
	if n <= 0 || n%2 != 0 {
		return nil
	}
	used := make([]bool, n)
	var cur [][2]int
	var out []Pairing
	var rec func()
	rec = func() {
		first := -1
		for i, u := range used {
			if !u {
				first = i
				break
			}
		}
		if first < 0 {
			p := make(Pairing, len(cur))
			copy(p, cur)
			out = append(out, p)
			return
		}
		used[first] = true
		for j := first + 1; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			cur = append(cur, [2]int{first, j})
			rec()
			cur = cur[:len(cur)-1]
			used[j] = false
		}
		used[first] = false
	}
	rec()
	return out
}

// UserAlphabet is the priority set unprivileged code can reach through
// the or-nop interface (Section III-B).
func UserAlphabet() []hwpri.Priority {
	return []hwpri.Priority{hwpri.Low, hwpri.MediumLow, hwpri.Medium}
}

// OSAlphabet is the priority set the patched kernel's procfs interface
// exposes (Section VI) minus VeryLow, whose leftover-only regime starves
// a busy rank outright and is never useful as a launch priority.
func OSAlphabet() []hwpri.Priority {
	return []hwpri.Priority{hwpri.Low, hwpri.MediumLow, hwpri.Medium, hwpri.MediumHigh, hwpri.High}
}

// Space describes a configuration space to enumerate.
type Space struct {
	// Topology is the machine the placements target; the zero value is
	// the paper's single-chip 1×2×2 default.
	Topology power5.Topology
	// Pairings restricts the rank pairings; nil enumerates Pairings(n).
	Pairings []Pairing
	// Assignments restricts the pair -> core maps; nil enumerates
	// CoreAssignments(n/2, Topology).  A nil entry inside a non-nil
	// list is the identity assignment (pair i on core i) — pass
	// [][]int{nil} to keep ranks exactly where a fixed pairing puts
	// them.
	Assignments [][]int
	// Alphabet is the per-rank priority alphabet; nil means UserAlphabet.
	Alphabet []hwpri.Priority
}

// Point is one configuration of the space: a pairing, an assignment of
// each pair to a physical core, and a priority for every rank.
type Point struct {
	Pairing Pairing
	// Cores maps pair index -> global core; nil is the identity (pair i
	// on core i), the only assignment a fully-occupied single-chip
	// machine admits.
	Cores []int
	Prio  []hwpri.Priority
}

// Placement expands the point into a concrete mpisim placement (2-way
// SMT: pair p's ranks land on the even and odd contexts of its core).
func (pt Point) Placement() mpisim.Placement {
	if pt.Cores == nil {
		return pt.Pairing.Placement(pt.Prio)
	}
	cpu := make([]int, 2*len(pt.Pairing))
	for i, pair := range pt.Pairing {
		cpu[pair[0]] = 2 * pt.Cores[i]
		cpu[pair[1]] = 2*pt.Cores[i] + 1
	}
	return mpisim.Placement{CPU: cpu, Prio: pt.Prio}
}

// String renders the point as e.g. "0+3|1+2 @ 6,4,4,2", with a core map
// suffix ("on 0,2") when the assignment is not the identity.
func (pt Point) String() string {
	s := pt.Pairing.String() + " @ "
	for i, p := range pt.Prio {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", int(p))
	}
	if pt.Cores != nil {
		cs := make([]string, len(pt.Cores))
		for i, c := range pt.Cores {
			cs[i] = fmt.Sprint(c)
		}
		s += " on " + strings.Join(cs, ",")
	}
	return s
}

// CoreAssignments enumerates every distinct way to place p rank pairs on
// the cores of the topology, pruned by the machine's two placement
// symmetries: chips are interchangeable (identical cores and an
// identical private L2/L3 each) and so are the cores within a chip.  A
// representative is canonical: pairs are grouped into chips in
// restricted-growth order (each new pair joins an earlier-opened chip or
// opens the next one), and within a chip pairs occupy cores in pair
// order.  The identity assignment (pair i on core i) is returned as nil,
// matching Point.Cores.
//
// On the paper's fully-occupied 1×2×2 machine there is exactly one
// assignment; on a half-occupied 2×2×2 machine there are two (both pairs
// sharing one chip's L2, or one pair per chip).
func CoreAssignments(p int, topo power5.Topology) ([][]int, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("sweep: need at least one pair, got %d", p)
	}
	if p > topo.Cores() {
		return nil, fmt.Errorf("sweep: %d rank pairs need %d cores, but topology %s has only %d",
			p, p, topo, topo.Cores())
	}
	var (
		out    [][]int
		blocks [][]int
	)
	emit := func() {
		asg := make([]int, p)
		identity := true
		for b, blk := range blocks {
			for pos, pi := range blk {
				asg[pi] = b*topo.CoresPerChip + pos
				identity = identity && asg[pi] == pi
			}
		}
		if identity {
			asg = nil
		}
		out = append(out, asg)
	}
	var rec func(i int)
	rec = func(i int) {
		if len(out) > maxSpacePoints {
			return // overflow: reported below, stop generating
		}
		if i == p {
			emit()
			return
		}
		for b := range blocks {
			if len(blocks[b]) < topo.CoresPerChip {
				blocks[b] = append(blocks[b], i)
				rec(i + 1)
				blocks[b] = blocks[b][:len(blocks[b])-1]
			}
		}
		if len(blocks) < topo.Chips {
			blocks = append(blocks, []int{i})
			rec(i + 1)
			blocks = blocks[:len(blocks)-1]
		}
	}
	rec(0)
	if len(out) > maxSpacePoints {
		return nil, fmt.Errorf("sweep: more than %d distinct core assignments for %d pairs on topology %s; fix the placement or shrink the machine",
			maxSpacePoints, p, topo)
	}
	return out, nil
}

// maxSpacePoints bounds an enumerated space: beyond it the sweep would
// not finish in reasonable time anyway, and an explicit error beats an
// out-of-memory kill.  Shrink the space with Space.Pairings (FixPairing
// at the public layer) or a smaller alphabet.
const maxSpacePoints = 1 << 20

// MaxSpacePoints exposes the enumeration cap so callers multiplying the
// point space by further axes (the public policy axis) can keep the
// combined configuration count under the same guard.
const MaxSpacePoints = maxSpacePoints

// Enumerate lists the full space for n ranks in deterministic order:
// pairings in Pairings order, for each pairing the core assignments in
// CoreAssignments order, and for each the cartesian product of the
// alphabet over ranks, last rank varying fastest.  n must be even
// (pairings fill whole cores) and fit the space's topology.  Priorities
// outside the OS range 1..6 are rejected: 0 and 7 change the machine's
// context population, which the enumerator deliberately keeps fixed.
func Enumerate(n int, sp Space) ([]Point, error) {
	if n <= 0 || n%2 != 0 {
		return nil, fmt.Errorf("sweep: need an even positive rank count, got %d", n)
	}
	topo := sp.Topology
	if topo.IsZero() {
		topo = power5.DefaultTopology()
	}
	alphabet := sp.Alphabet
	if alphabet == nil {
		alphabet = UserAlphabet()
	}
	seen := map[hwpri.Priority]bool{}
	for _, p := range alphabet {
		if p < hwpri.VeryLow || p > hwpri.High {
			return nil, fmt.Errorf("sweep: priority %d outside the sweepable range 1..6", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("sweep: duplicate priority %d in alphabet", p)
		}
		seen[p] = true
	}

	// Apply the cap arithmetically BEFORE materializing anything: for
	// large n the (n-1)!! pairing list alone would exhaust memory long
	// before the post-enumeration check could fire.  Core assignments
	// only multiply the space further, so this lower bound is safe.
	capCheck := func(pairingCount int) error {
		total := pairingCount
		for i := 0; i < n && total <= maxSpacePoints; i++ {
			total *= len(alphabet)
		}
		if total > maxSpacePoints {
			return fmt.Errorf("sweep: space has more than %d configurations (at least %d pairings × %d^%d priorities); fix the pairing or shrink the alphabet",
				maxSpacePoints, pairingCount, len(alphabet), n)
		}
		return nil
	}
	pairings := sp.Pairings
	if pairings == nil {
		count := 1 // (n-1)!!
		for k := n - 1; k > 1 && count <= maxSpacePoints; k -= 2 {
			count *= k
		}
		if err := capCheck(count); err != nil {
			return nil, err
		}
		pairings = Pairings(n)
	} else if err := capCheck(len(pairings)); err != nil {
		return nil, err
	}
	for _, p := range pairings {
		if err := validPairing(n, p); err != nil {
			return nil, err
		}
	}
	assignments := sp.Assignments
	if assignments == nil {
		var err error
		if assignments, err = CoreAssignments(n/2, topo); err != nil {
			return nil, err
		}
	} else {
		for _, asg := range assignments {
			if err := validAssignment(n/2, topo, asg); err != nil {
				return nil, err
			}
		}
	}

	total := len(pairings) * len(assignments)
	for i := 0; i < n && total <= maxSpacePoints; i++ {
		total *= len(alphabet)
	}
	if total > maxSpacePoints {
		return nil, fmt.Errorf("sweep: space has more than %d configurations (%d pairings × %d core maps × %d^%d priorities); fix the pairing or shrink the alphabet",
			maxSpacePoints, len(pairings), len(assignments), len(alphabet), n)
	}
	out := make([]Point, 0, total)
	idx := make([]int, n)
	for _, pairing := range pairings {
		for _, cores := range assignments {
			for i := range idx {
				idx[i] = 0
			}
			for {
				prio := make([]hwpri.Priority, n)
				for r, k := range idx {
					prio[r] = alphabet[k]
				}
				out = append(out, Point{Pairing: pairing, Cores: cores, Prio: prio})
				// Odometer increment, last rank fastest.
				r := n - 1
				for ; r >= 0; r-- {
					idx[r]++
					if idx[r] < len(alphabet) {
						break
					}
					idx[r] = 0
				}
				if r < 0 {
					break
				}
			}
		}
	}
	return out, nil
}

// validAssignment checks a provided pair -> core map against the
// topology: nil is the identity (needs p cores), otherwise p distinct
// in-range cores.
func validAssignment(p int, topo power5.Topology, asg []int) error {
	if asg == nil {
		if p > topo.Cores() {
			return fmt.Errorf("sweep: identity assignment needs %d cores, but topology %s has only %d",
				p, topo, topo.Cores())
		}
		return nil
	}
	if len(asg) != p {
		return fmt.Errorf("sweep: assignment %v maps %d pairs, want %d", asg, len(asg), p)
	}
	seen := make(map[int]bool)
	for _, c := range asg {
		if c < 0 || c >= topo.Cores() {
			return fmt.Errorf("sweep: assignment %v names core %d outside topology %s", asg, c, topo)
		}
		if seen[c] {
			return fmt.Errorf("sweep: assignment %v repeats core %d", asg, c)
		}
		seen[c] = true
	}
	return nil
}

// validPairing checks that a pairing is a canonical partition of [0, n).
func validPairing(n int, p Pairing) error {
	if len(p)*2 != n {
		return fmt.Errorf("sweep: pairing %v covers %d ranks, want %d", p, len(p)*2, n)
	}
	seen := make([]bool, n)
	prevFirst := -1
	for _, pair := range p {
		a, b := pair[0], pair[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("sweep: pairing %v names a rank outside [0,%d)", p, n)
		}
		if a >= b {
			return fmt.Errorf("sweep: pairing %v not canonical (want lower rank first in each pair)", p)
		}
		if a <= prevFirst {
			return fmt.Errorf("sweep: pairing %v not canonical (pairs must be ordered by first rank)", p)
		}
		if seen[a] || seen[b] {
			return fmt.Errorf("sweep: pairing %v repeats a rank", p)
		}
		seen[a], seen[b] = true, true
		prevFirst = a
	}
	return nil
}
