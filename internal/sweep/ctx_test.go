package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpisim"
	"repro/internal/workload"
)

// ctxTestJob is a small 4-rank job for cancellation tests.
func ctxTestJob(n int64) *mpisim.Job {
	job := &mpisim.Job{Name: "ctx"}
	for r := 0; r < 4; r++ {
		job.Ranks = append(job.Ranks, mpisim.Program{
			mpisim.Compute(workload.Load{Kind: workload.FPU, N: n}),
			mpisim.Barrier(),
		})
	}
	return job
}

func TestForEachCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 100, 4, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx on a cancelled context returned %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

func TestForEachCtxStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 10_000, 2, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx returned %v, want context.Canceled", err)
	}
	// In-flight items finish, but no new ones are claimed after cancel:
	// with 2 workers at most a handful more than 5 can have started.
	if got := ran.Load(); got > 10 {
		t.Errorf("%d items ran after cancellation at item 5", got)
	}
}

func TestSweepCtxCancelledReturnsPromptly(t *testing.T) {
	job := ctxTestJob(5_000_000) // big enough that a full sweep takes a while
	points, err := Enumerate(4, Space{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = SweepCtx(ctx, job, points, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepCtx on a cancelled context returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled sweep took %v to return", d)
	}
}

func TestSweepCtxProgress(t *testing.T) {
	job := ctxTestJob(2_000)
	points, err := Enumerate(4, Space{Pairings: []Pairing{{{0, 1}, {2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	last := 0
	res, err := SweepCtx(context.Background(), job, points, Options{
		Workers: 4,
		OnProgress: func(done, total int) {
			calls++
			if total != len(points) {
				t.Errorf("OnProgress total = %d, want %d", total, len(points))
			}
			if done != last+1 {
				t.Errorf("OnProgress done = %d after %d (not serialized?)", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(points) || res.Evaluated != len(points) {
		t.Errorf("OnProgress fired %d times for %d points (evaluated %d)", calls, len(points), res.Evaluated)
	}
}

func TestSweepCtxRunFnOverride(t *testing.T) {
	job := ctxTestJob(1_000)
	points, err := Enumerate(4, Space{Pairings: []Pairing{{{0, 1}, {2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	res, err := SweepCtx(context.Background(), job, points, Options{
		RunFn: func(ctx context.Context, _ int, job *mpisim.Job, pl mpisim.Placement, cfg mpisim.Config) (Metrics, error) {
			hits.Add(1)
			// A fake but deterministic metric: score by the first rank's CPU.
			return Metrics{Cycles: int64(pl.CPU[0] + 1), Seconds: 1, ImbalancePct: 0}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(hits.Load()) != len(points) {
		t.Errorf("RunFn called %d times for %d points", hits.Load(), len(points))
	}
	if res.MinCycles != 1 {
		t.Errorf("MinCycles = %d from the fake RunFn, want 1", res.MinCycles)
	}
}
