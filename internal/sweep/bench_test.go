package sweep

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/mpisim"
	"repro/internal/power5"
)

// benchPoints is the full 4-rank placement × user-settable-priority
// space: 3 pairings × 3^4 priority vectors = 243 simulator runs.
func benchPoints(b *testing.B) []Point {
	b.Helper()
	pts, err := Enumerate(4, Space{})
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

// BenchmarkSweepWorkers measures the full 4-rank sweep at several pool
// sizes; compare workers1 with workers4 for the parallel speedup.
func BenchmarkSweepWorkers(b *testing.B) {
	job := sweepJob(3000)
	points := benchPoints(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(job, points, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(points)), "configs")
		})
	}
}

// BenchmarkSweepSpeedup runs the same full sweep serially and on
// GOMAXPROCS workers within one benchmark iteration and reports the
// wall-clock ratio, on the paper's single chip and on a 2-chip node
// (where the pruned space doubles: pairs packed on one L2 versus spread
// across chips).  The sweep points are independent and share nothing,
// so the speedup must reach at least 0.7x the core count (gated; on a
// single-core machine the gate degenerates to "parallel dispatch costs
// under 30%").  The per-topology `configs` metric records how much work
// the chip/core symmetry pruning leaves.  Record with the README recipe
// — explicitly without -cpu / GOMAXPROCS caps — into
// BENCH_simcore_baseline.json.
func BenchmarkSweepSpeedup(b *testing.B) {
	for _, tc := range []struct {
		name string
		topo power5.Topology
	}{
		{"chips1", power5.DefaultTopology()},
		{"chips2", power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			job := sweepJob(3000)
			points, err := Enumerate(4, Space{Topology: tc.topo})
			if err != nil {
				b.Fatal(err)
			}
			cfg := mpisim.Config{Topology: tc.topo}
			// All cores: the historical hard-coded 4 silently serialized
			// the sweep on wider machines and measured nothing on narrower
			// ones.
			workers := runtime.GOMAXPROCS(0)
			var speedup float64
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				serial, err := Sweep(job, points, Options{Workers: 1, Config: cfg})
				if err != nil {
					b.Fatal(err)
				}
				tSerial := time.Since(t0)
				t0 = time.Now()
				parallel, err := Sweep(job, points, Options{Workers: workers, Config: cfg})
				if err != nil {
					b.Fatal(err)
				}
				tParallel := time.Since(t0)
				sb, _ := serial.Best()
				pb, _ := parallel.Best()
				if sb.Point.String() != pb.Point.String() {
					b.Fatal("serial and parallel sweeps disagree on the winner")
				}
				speedup = tSerial.Seconds() / tParallel.Seconds()
			}
			b.ReportMetric(speedup, "speedup-x")
			b.ReportMetric(float64(len(points)), "configs")
			b.ReportMetric(float64(workers), "gomaxprocs")
			// The pool cannot outscale the point count.
			expect := 0.7 * float64(min(workers, len(points)))
			if speedup < expect {
				b.Fatalf("sweep speedup %.2fx < 0.7x of %d cores (%d points)",
					speedup, workers, len(points))
			}
		})
	}
}
