package sweep

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/mpisim"
)

// Options tunes a sweep.
type Options struct {
	// Workers caps concurrent simulator runs; 0 means GOMAXPROCS, 1
	// forces a serial sweep.  The ranking is identical for every value.
	Workers int
	// Top truncates the ranking to the best K configurations after
	// aggregation; 0 keeps everything.
	Top int
	// Objective scores each run; the zero value minimizes cycles.
	Objective Objective
	// Config is the per-run simulator configuration.  Its OnIteration
	// hook must be nil: runs execute concurrently and a shared callback
	// would race (per-run hooks belong to the caller's own Run calls).
	Config mpisim.Config
	// RunFn, if set, replaces the direct mpisim.RunCtx evaluation of
	// each point — the hook caching layers use to serve repeated
	// configurations from memory, and policy-axis sweeps use to attach
	// a per-point environment (idx is the point's position in the input
	// slice, so a caller fanning a cross product through one pool can
	// recover its extra axes from it).  It must be safe for concurrent
	// use and deterministic in its inputs, or the ranking loses its
	// worker-count independence.
	RunFn func(ctx context.Context, idx int, job *mpisim.Job, pl mpisim.Placement, cfg mpisim.Config) (Metrics, error)
	// OnProgress, if set, is called after each completed evaluation
	// with the number of points finished so far and the total.  Calls
	// are serialized (one at a time), but their order follows run
	// completion, not point order.
	OnProgress func(done, total int)
}

// RunResult is one evaluated configuration.
type RunResult struct {
	// Index is the configuration's position in the input point slice —
	// the sweep-order identity used to make rankings total.
	Index int
	// Point is the configuration.
	Point Point
	// Metrics holds the run's measured quantities (zero if Err != nil).
	Metrics Metrics
	// Score is the objective value; lower is better.  Failed runs score
	// +Inf and sort last.
	Score float64
	// Err is the simulator error, if the run failed.
	Err error
}

// Result is a finished sweep.
type Result struct {
	// Ranked holds the evaluated configurations sorted by (Score,
	// Cycles, Index) ascending — a total order, so the ranking is
	// byte-identical for every worker count — truncated to Options.Top.
	Ranked []RunResult
	// Evaluated is the number of configurations run (before truncation).
	Evaluated int
	// Failed counts runs that returned an error; FirstErr is the error
	// of the lowest-index failed configuration.  Both are recorded
	// before Top truncation, which may drop the +Inf-scored failed
	// entries from Ranked.
	Failed   int
	FirstErr error
	// MinCycles is the fastest successful run's cycle count, the
	// normalization reference for weighted objectives.
	MinCycles int64
}

// Best returns the top-ranked successful configuration.
func (r *Result) Best() (RunResult, error) {
	if len(r.Ranked) == 0 || r.Ranked[0].Err != nil {
		return RunResult{}, fmt.Errorf("sweep: no configuration ran successfully")
	}
	return r.Ranked[0], nil
}

// Sweep evaluates every point of the space under the job and returns the
// objective's ranking.  Each point is an independent mpisim.Run — the
// simulator is pure, so runs fan out across the worker pool and land in
// a pre-allocated slot; aggregation then scores and sorts with a total
// order.  The result is deterministic and independent of Options.Workers.
//
//mtlint:ctx-root ctx-less convenience wrapper; SweepCtx is the cancellable form
func Sweep(job *mpisim.Job, points []Point, opt Options) (*Result, error) {
	return SweepCtx(context.Background(), job, points, opt)
}

// SweepCtx is Sweep with cancellation: once ctx is done, no new point is
// claimed, in-flight simulator runs abort at their next scheduling
// quantum, and ctx.Err() is returned instead of a partial ranking.
func SweepCtx(ctx context.Context, job *mpisim.Job, points []Point, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty configuration space")
	}
	if opt.Config.OnIteration != nil {
		return nil, fmt.Errorf("sweep: Config.OnIteration is not supported in sweeps (runs are concurrent)")
	}
	obj := opt.Objective.normalize()
	runFn := opt.RunFn
	if runFn == nil {
		runFn = func(ctx context.Context, _ int, job *mpisim.Job, pl mpisim.Placement, cfg mpisim.Config) (Metrics, error) {
			res, err := mpisim.RunCtx(ctx, job, pl, cfg)
			if err != nil {
				return Metrics{}, err
			}
			return Metrics{Cycles: res.Cycles, Seconds: res.Seconds, ImbalancePct: res.Imbalance}, nil
		}
	}
	var (
		progressMu sync.Mutex
		done       int
	)

	results := make([]RunResult, len(points))
	err := ForEachCtx(ctx, len(points), opt.Workers, func(i int) {
		rr := RunResult{Index: i, Point: points[i]}
		met, err := runFn(ctx, i, job, points[i].Placement(), opt.Config)
		if err != nil {
			rr.Err = err
		} else {
			rr.Metrics = met
		}
		results[i] = rr
		if opt.OnProgress != nil {
			progressMu.Lock()
			done++
			opt.OnProgress(done, len(points))
			progressMu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}

	out := &Result{Evaluated: len(results)}
	for _, rr := range results { // still in index order here
		if rr.Err != nil {
			out.Failed++
			if out.FirstErr == nil {
				out.FirstErr = rr.Err
			}
			continue
		}
		if out.MinCycles == 0 || rr.Metrics.Cycles < out.MinCycles {
			out.MinCycles = rr.Metrics.Cycles
		}
	}
	for i := range results {
		if results[i].Err != nil {
			results[i].Score = math.Inf(1)
			continue
		}
		results[i].Score = obj.Score(results[i].Metrics, out.MinCycles)
	}
	sort.Slice(results, func(a, b int) bool {
		ra, rb := results[a], results[b]
		if ra.Score != rb.Score {
			return ra.Score < rb.Score
		}
		if ra.Metrics.Cycles != rb.Metrics.Cycles {
			return ra.Metrics.Cycles < rb.Metrics.Cycles
		}
		return ra.Index < rb.Index
	})
	if opt.Top > 0 && opt.Top < len(results) {
		results = results[:opt.Top]
	}
	out.Ranked = results
	return out, nil
}

// SweepSpace enumerates the space for the job's rank count and sweeps it.
func SweepSpace(job *mpisim.Job, sp Space, opt Options) (*Result, error) {
	points, err := Enumerate(len(job.Ranks), sp)
	if err != nil {
		return nil, err
	}
	return Sweep(job, points, opt)
}
