package sweep

import "fmt"

// Metrics are the per-run quantities objectives may score.
type Metrics struct {
	// Cycles is the run's execution time in simulated cycles.
	Cycles int64
	// Seconds is Cycles on the simulated clock.
	Seconds float64
	// ImbalancePct is the paper's imbalance metric (max sync %).
	ImbalancePct float64
}

// Objective scores a run; lower is better.  The built-in scoring is a
// weighted sum of two normalized terms — execution time relative to the
// sweep's best run (>= 1) and imbalance as a fraction (0..1) — so that
// "minimize cycles", "minimize imbalance" and any weighted combination
// are all the same struct.  Fn, when set, replaces the weighted form
// entirely for fully custom objectives.
type Objective struct {
	// Label names the objective in output ("cycles", "imbalance", ...).
	Label string
	// CyclesWeight multiplies Cycles/minCycles, the run's slowdown
	// relative to the fastest configuration of the sweep.
	CyclesWeight float64
	// ImbalanceWeight multiplies ImbalancePct/100.
	ImbalanceWeight float64
	// Fn, if non-nil, overrides the weighted scoring.  minCycles is the
	// smallest cycle count across the sweep's successful runs, for
	// normalization; it is the same value regardless of worker count.
	Fn func(m Metrics, minCycles int64) float64
}

// MinCycles scores runs by execution time alone.
func MinCycles() Objective { return Objective{Label: "cycles", CyclesWeight: 1} }

// MinImbalance scores runs by the imbalance metric alone.
func MinImbalance() Objective { return Objective{Label: "imbalance", ImbalanceWeight: 1} }

// Weighted combines normalized execution time and imbalance.
func Weighted(cyclesWeight, imbalanceWeight float64) Objective {
	return Objective{
		Label:           fmt.Sprintf("weighted(%g,%g)", cyclesWeight, imbalanceWeight),
		CyclesWeight:    cyclesWeight,
		ImbalanceWeight: imbalanceWeight,
	}
}

// normalize substitutes MinCycles for a zero-valued objective.
func (o Objective) normalize() Objective {
	if o.Fn == nil && o.CyclesWeight == 0 && o.ImbalanceWeight == 0 {
		return MinCycles()
	}
	return o
}

// Score computes the run's score given the sweep-wide minimum cycle
// count.
func (o Objective) Score(m Metrics, minCycles int64) float64 {
	if o.Fn != nil {
		return o.Fn(m, minCycles)
	}
	if minCycles <= 0 {
		minCycles = 1
	}
	return o.CyclesWeight*float64(m.Cycles)/float64(minCycles) +
		o.ImbalanceWeight*m.ImbalancePct/100
}
