package sweep

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpisim"
	"repro/internal/power5"
	"repro/internal/workload"
)

// screenJob builds a 4-rank iterative job with unequal compute and a
// ring exchange, so both the decode-share and the comm terms of the
// predictor discriminate between points.
func screenJob() *mpisim.Job {
	works := []int64{40000, 10000, 30000, 8000}
	job := &mpisim.Job{Name: "screen-test"}
	for r, n := range works {
		var prog mpisim.Program
		for it := 0; it < 2; it++ {
			prog = append(prog,
				mpisim.Compute(workload.Load{Kind: workload.FPU, N: n}),
				mpisim.Exchange(4096, (r+1)%4, (r+3)%4),
				mpisim.Barrier(),
			)
		}
		job.Ranks = append(job.Ranks, prog)
	}
	return job
}

func userPoints(t *testing.T, topo power5.Topology) []Point {
	t.Helper()
	points, err := Enumerate(4, Space{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestRankLoads(t *testing.T) {
	loads := RankLoads(screenJob())
	if len(loads) != 4 {
		t.Fatalf("got %d loads", len(loads))
	}
	if loads[0].Compute != 80000 || loads[3].Compute != 16000 {
		t.Fatalf("compute totals wrong: %+v", loads)
	}
	if len(loads[1].Exchanges) != 2 || loads[1].Exchanges[0].Bytes != 4096 {
		t.Fatalf("exchange summary wrong: %+v", loads[1])
	}
	// Spin loads must not contribute a (meaningless) instruction budget.
	spin := &mpisim.Job{Ranks: []mpisim.Program{{mpisim.Compute(workload.Load{Kind: workload.Spin, N: 1 << 40})}}}
	if got := RankLoads(spin)[0].Compute; got != 0 {
		t.Fatalf("spin load contributed %v compute", got)
	}
}

func TestScreenShortlistShape(t *testing.T) {
	topo := power5.DefaultTopology()
	points := userPoints(t, topo)
	short := Screen(screenJob(), points, topo, 8, GuardBand(len(points)), core.DefaultModel())
	if len(short) < 8 || len(short) >= len(points) {
		t.Fatalf("shortlist size %d out of range (space %d)", len(short), len(points))
	}
	seen := map[int]bool{}
	for i, idx := range short {
		if idx < 0 || idx >= len(points) {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
		if i > 0 && short[i-1] >= idx {
			t.Fatalf("shortlist not ascending at %d: %v", i, short[:i+1])
		}
	}
}

func TestScreenDegeneratesToExhaustive(t *testing.T) {
	topo := power5.DefaultTopology()
	points := userPoints(t, topo)
	for _, tc := range []struct{ keep, guard int }{{0, 10}, {-3, 0}, {len(points), 0}, {10, len(points)}} {
		short := Screen(screenJob(), points, topo, tc.keep, tc.guard, core.DefaultModel())
		if len(short) != len(points) {
			t.Fatalf("keep=%d guard=%d: got %d indices, want all %d", tc.keep, tc.guard, len(short), len(points))
		}
	}
}

// TestScreenGuardMonotone is the guard-band property: a smaller guard
// yields a shortlist that is a subset of any larger guard's, so
// shrinking the band can only drop coverage — never reorder or corrupt
// what remains.
func TestScreenGuardMonotone(t *testing.T) {
	topo := power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	points := userPoints(t, topo)
	job := screenJob()
	m := core.DefaultModel()
	var prev map[int]bool
	for guard := 0; guard <= len(points); guard += 16 {
		short := Screen(job, points, topo, 4, guard, m)
		cur := make(map[int]bool, len(short))
		for _, idx := range short {
			cur[idx] = true
		}
		if prev != nil {
			for idx := range prev {
				if !cur[idx] {
					t.Fatalf("guard %d lost index %d present at guard %d", guard, idx, guard-16)
				}
			}
		}
		prev = cur
	}
}

// TestScreenedRankingIsRestriction checks the fine-level contract: a
// sweep over the shortlist ranks exactly like the exhaustive sweep with
// the unscreened points removed — same relative order, same metrics —
// because screening only selects which points run.
func TestScreenedRankingIsRestriction(t *testing.T) {
	topo := power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	points := userPoints(t, topo)
	job := screenJob()

	// A synthetic, deterministic evaluator keeps the test fast and makes
	// the exhaustive/screened comparison exact.
	fakeRun := func(_ context.Context, _ int, _ *mpisim.Job, pl mpisim.Placement, _ mpisim.Config) (Metrics, error) {
		var h int64 = 1469598103934665603
		for _, c := range pl.CPU {
			h = (h ^ int64(c)) * 1099511628211
		}
		for _, p := range pl.Prio {
			h = (h ^ int64(p)) * 1099511628211
		}
		if h < 0 {
			h = -h
		}
		return Metrics{Cycles: 10000 + h%100000, Seconds: 1, ImbalancePct: float64(h % 97)}, nil
	}

	full, err := SweepCtx(context.Background(), job, points, Options{RunFn: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	short := Screen(job, points, topo, 6, GuardBand(len(points)), core.DefaultModel())
	if len(short) >= len(points) {
		t.Fatalf("screening kept the whole %d-point space", len(points))
	}
	kept := make([]Point, len(short))
	inShort := map[string]bool{}
	for i, idx := range short {
		kept[i] = points[idx]
		inShort[points[idx].String()] = true
	}
	screened, err := SweepCtx(context.Background(), job, kept, Options{RunFn: fakeRun})
	if err != nil {
		t.Fatal(err)
	}

	var restricted []RunResult
	for _, rr := range full.Ranked {
		if inShort[rr.Point.String()] {
			restricted = append(restricted, rr)
		}
	}
	if len(restricted) != len(screened.Ranked) {
		t.Fatalf("restriction has %d entries, screened ranking %d", len(restricted), len(screened.Ranked))
	}
	for i := range restricted {
		a, b := restricted[i], screened.Ranked[i]
		if a.Point.String() != b.Point.String() || a.Metrics != b.Metrics {
			t.Fatalf("rank %d differs: exhaustive-restricted %v (%+v) vs screened %v (%+v)",
				i, a.Point, a.Metrics, b.Point, b.Metrics)
		}
	}
}

// TestScreenKeepsAnalyticalWinnerFirst sanity-checks that the shortlist
// contains the best-predicted point and that predictions drove the
// selection (a screened-out point never predicts under the shortlist's
// cutoff by more than the slack).
func TestScreenKeepsAnalyticalWinnerFirst(t *testing.T) {
	topo := power5.DefaultTopology()
	points := userPoints(t, topo)
	job := screenJob()
	m := core.DefaultModel()
	loads := RankLoads(job)
	comm := mpisim.TopologyCommLatency(topo)
	best, bestPred := -1, 0.0
	for i := range points {
		pl := points[i].Placement()
		p := m.PredictCycles(loads, pl.CPU, pl.Prio, comm)
		if best < 0 || p < bestPred {
			best, bestPred = i, p
		}
	}
	short := Screen(job, points, topo, 4, 8, m)
	for _, idx := range short {
		if idx == best {
			return
		}
	}
	t.Fatalf("best-predicted point %d (%v) missing from shortlist %v", best, points[best], short)
}

func BenchmarkScreenPredictions(b *testing.B) {
	topo := power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	points, err := Enumerate(4, Space{Topology: topo})
	if err != nil {
		b.Fatal(err)
	}
	job := screenJob()
	m := core.DefaultModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		short := Screen(job, points, topo, 8, GuardBand(len(points)), m)
		if len(short) == 0 {
			b.Fatal("empty shortlist")
		}
	}
	b.ReportMetric(float64(len(points)), "points")
}

func ExampleScreen() {
	topo := power5.DefaultTopology()
	points, _ := Enumerate(4, Space{Topology: topo})
	job := screenJob()
	short := Screen(job, points, topo, 4, 8, core.DefaultModel())
	fmt.Println(len(points) > len(short), len(short) >= 12)
	// Output: true true
}

// TestRankLoadsDemandClasses: compute kinds with a calibrated IPC
// ceiling split into their own demand class; purely decode-elastic
// programs keep Classes nil so the predictor's fast path stays on.
func TestRankLoadsDemandClasses(t *testing.T) {
	job := &mpisim.Job{Name: "classes", Ranks: []mpisim.Program{{
		mpisim.Compute(workload.Load{Kind: workload.FPU, N: 8000}),
		mpisim.Compute(workload.Load{Kind: workload.Mem, N: 2000}),
		mpisim.Compute(workload.Load{Kind: workload.Mem, N: 500}),
		mpisim.Barrier(),
	}, {
		mpisim.Compute(workload.Load{Kind: workload.FXU, N: 3000}),
		mpisim.Barrier(),
	}}}
	loads := RankLoads(job)
	if loads[0].Compute != 10500 {
		t.Errorf("rank 0 Compute = %v, want 10500", loads[0].Compute)
	}
	want := []core.ComputeClass{{Work: 8000}, {Work: 2500, Demand: kindDemand[workload.Mem]}}
	if !reflect.DeepEqual(loads[0].Classes, want) {
		t.Errorf("rank 0 Classes = %+v, want %+v", loads[0].Classes, want)
	}
	if loads[1].Classes != nil {
		t.Errorf("elastic-only rank grew classes: %+v", loads[1].Classes)
	}
	if loads[1].Compute != 3000 {
		t.Errorf("rank 1 Compute = %v, want 3000", loads[1].Compute)
	}
}
