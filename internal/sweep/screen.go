package sweep

import (
	"sort"

	"repro/internal/core"
	"repro/internal/mpisim"
	"repro/internal/power5"
	"repro/internal/workload"
)

// This file is the coarse level of the two-level sweep search.  A full
// placement × priority space is first ranked with the analytical cost
// predictor (internal/core.Model.PredictCycles) — microseconds per
// point — and only the predicted frontier reaches the simulator.  The
// fine level then ranks the shortlist with real runs exactly as an
// exhaustive sweep would, so a screened ranking is always the exhaustive
// ranking restricted to the shortlist: screening can drop coverage,
// never corrupt scores.

// kindDemand caps each kernel family's IPC for the predictor,
// calibrated against the chip simulator (a lone context running the
// kernel): decode-elastic kinds (fpu, fxu, l1, mixed) run at the
// model's default demand and keep a zero entry; latency-bound kinds
// cannot spend extra decode share, so the predictor must not credit a
// favored priority with speeding them up.  mem is pinned by memory
// latency (~0.05 IPC however the decode is split), l2 by the shared-L2
// refill stream (~0.36), branchy by its mispredict rate (~0.76).
var kindDemand = map[workload.Kind]float64{
	workload.L2:      0.36,
	workload.Mem:     0.05,
	workload.Branchy: 0.76,
}

// RankLoads summarizes each rank's program for the cost predictor:
// compute phases accumulate their instruction counts — split into
// demand classes by kernel family, so latency-bound work is priced at
// its own IPC ceiling — exchange phases keep their byte counts and peer
// lists, and barriers are implied by the predictor's makespan
// aggregation.  Spin loads are skipped — their instruction budget is
// meaningless (they run until released).
func RankLoads(job *mpisim.Job) []core.RankLoad {
	loads := make([]core.RankLoad, len(job.Ranks))
	for r, prog := range job.Ranks {
		elastic := 0.0
		capped := make(map[float64]float64)
		for _, ph := range prog {
			switch ph.Kind {
			case mpisim.PhaseCompute:
				if ph.Load.Kind == workload.Spin {
					continue
				}
				loads[r].Compute += float64(ph.Load.N)
				if d := kindDemand[ph.Load.Kind]; d > 0 {
					capped[d] += float64(ph.Load.N)
				} else {
					elastic += float64(ph.Load.N)
				}
			case mpisim.PhaseExchange:
				loads[r].Exchanges = append(loads[r].Exchanges, core.ExchangeLoad{
					Bytes: ph.Bytes,
					Peers: ph.Peers,
				})
			}
		}
		if len(capped) > 0 {
			loads[r].Classes = append(loads[r].Classes, core.ComputeClass{Work: elastic})
			demands := make([]float64, 0, len(capped))
			for d := range capped {
				demands = append(demands, d)
			}
			sort.Float64s(demands)
			for _, d := range demands {
				loads[r].Classes = append(loads[r].Classes, core.ComputeClass{Work: capped[d], Demand: d})
			}
		}
	}
	return loads
}

// GuardBand returns the default guard-band size for a space of n
// points: wide enough (n/6 plus a floor of 16) that the analytical
// model only has to rank the true winner *near* the frontier, not at
// its exact position, while still screening out the bulk of the space.
func GuardBand(n int) int { return n/6 + 16 }

// screenSlack widens the shortlist past the count cutoff to every point
// predicted within 2% of the cutoff's cost: near the optimum the model
// produces plateaus of symmetric configurations with (nearly) equal
// predictions, and an order-only cutoff through such a plateau would
// make the shortlist depend on prediction noise rather than on the
// model's actual ranking.
const screenSlack = 1.02

// Screen ranks the points with the analytical cost predictor and
// returns the indices of the fine-level shortlist, sorted ascending (so
// relative enumeration order — and with it the fine level's
// tie-breaking — is preserved): the keep best-predicted points, a guard
// band of the guard next ones, and every further point predicted within
// screenSlack of the cutoff's cost.  A keep <= 0 or a shortlist
// covering the whole space returns every index — the screened sweep
// degenerates to the exhaustive one.  The predictor never simulates, so
// screening costs O(points × ranks).
func Screen(job *mpisim.Job, points []Point, topo power5.Topology, keep, guard int, m core.Model) []int {
	n := len(points)
	all := func() []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if keep <= 0 || keep+guard >= n {
		return all()
	}
	if topo.IsZero() {
		topo = power5.DefaultTopology()
	}
	loads := RankLoads(job)
	comm := mpisim.TopologyCommLatency(topo)
	pred := make([]float64, n)
	for i := range points {
		pl := points[i].Placement()
		pred[i] = m.PredictCycles(loads, pl.CPU, pl.Prio, comm)
	}
	order := all()
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pred[order[a]], pred[order[b]]
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	cut := keep + guard
	limit := pred[order[cut-1]] * screenSlack
	for cut < n && pred[order[cut]] <= limit {
		cut++
	}
	if cut >= n {
		return all()
	}
	short := order[:cut]
	sort.Ints(short)
	return short
}
