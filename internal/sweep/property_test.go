package sweep

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/workload"
)

// propTopologies are the small machines the placement properties are
// checked on.
var propTopologies = []power5.Topology{
	{Chips: 1, CoresPerChip: 2, SMTWays: 2},
	{Chips: 2, CoresPerChip: 2, SMTWays: 2},
	{Chips: 2, CoresPerChip: 1, SMTWays: 2},
	{Chips: 3, CoresPerChip: 2, SMTWays: 2},
}

// TestEnumeratedPlacementsValid asserts the placement-validity property:
// every enumerated point expands to a placement that is legal for its
// topology — distinct in-range CPUs, paired ranks sharing a core, and a
// valid priority per rank.
func TestEnumeratedPlacementsValid(t *testing.T) {
	for _, topo := range propTopologies {
		for n := 2; n <= 2*topo.Cores() && n <= 8; n += 2 {
			points, err := Enumerate(n, Space{Topology: topo, Alphabet: []hwpri.Priority{hwpri.Medium, hwpri.High}})
			if err != nil {
				t.Fatalf("%s/%d ranks: %v", topo, n, err)
			}
			if len(points) == 0 {
				t.Fatalf("%s/%d ranks: empty space", topo, n)
			}
			for _, pt := range points {
				pl := pt.Placement()
				if len(pl.CPU) != n || len(pl.Prio) != n {
					t.Fatalf("%s/%d: point %s placement sized %d/%d", topo, n, pt, len(pl.CPU), len(pl.Prio))
				}
				seen := map[int]bool{}
				for r, cpu := range pl.CPU {
					if cpu < 0 || cpu >= topo.Contexts() {
						t.Fatalf("%s/%d: point %s pins rank %d to CPU %d outside [0,%d)",
							topo, n, pt, r, cpu, topo.Contexts())
					}
					if seen[cpu] {
						t.Fatalf("%s/%d: point %s double-pins CPU %d", topo, n, pt, cpu)
					}
					seen[cpu] = true
					if !pl.Prio[r].Valid() {
						t.Fatalf("%s/%d: point %s has invalid priority %d", topo, n, pt, pl.Prio[r])
					}
				}
				for _, pair := range pt.Pairing {
					if topo.CoreOf(pl.CPU[pair[0]]) != topo.CoreOf(pl.CPU[pair[1]]) {
						t.Fatalf("%s/%d: point %s splits pair %v across cores", topo, n, pt, pair)
					}
				}
			}
		}
	}
}

// TestCoreAssignmentsCanonicalAndDistinct asserts the enumerator emits
// each symmetry class exactly once: no two assignments are equivalent
// under chip relabeling + within-chip core relabeling.
func TestCoreAssignmentsCanonicalAndDistinct(t *testing.T) {
	for _, topo := range propTopologies {
		for p := 1; p <= topo.Cores() && p <= 4; p++ {
			asgs, err := CoreAssignments(p, topo)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, asg := range asgs {
				sig := assignmentSignature(asg, p, topo)
				if seen[sig] {
					t.Errorf("%s/%d pairs: symmetry class %q enumerated twice", topo, p, sig)
				}
				seen[sig] = true
			}
			// First assignment is the identity (nil) whenever it exists.
			if asgs[0] != nil {
				t.Errorf("%s/%d pairs: first assignment %v is not the identity", topo, p, asgs[0])
			}
		}
	}
	// The documented counts: 1 on the full 1×2×2 machine, 2 for two
	// pairs on 2×2×2.
	if asgs, _ := CoreAssignments(2, power5.DefaultTopology()); len(asgs) != 1 {
		t.Errorf("1x2x2/2 pairs: %d assignments, want 1", len(asgs))
	}
	if asgs, _ := CoreAssignments(2, power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}); len(asgs) != 2 {
		t.Errorf("2x2x2/2 pairs: %d assignments, want 2", len(asgs))
	}
}

// assignmentSignature canonicalizes a core assignment under the machine
// symmetries: the multiset of per-chip pair-index groups, each group
// sorted, groups sorted by first element.
func assignmentSignature(asg []int, p int, topo power5.Topology) string {
	byChip := map[int][]int{}
	for pi := 0; pi < p; pi++ {
		core := pi
		if asg != nil {
			core = asg[pi]
		}
		chip := topo.ChipOfCore(core)
		byChip[chip] = append(byChip[chip], pi)
	}
	var groups [][]int
	for _, g := range byChip {
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return fmt.Sprint(groups)
}

// propCfg is a fast, exactly-reproducible simulator config for the
// symmetry cross-checks.
func propCfg(topo power5.Topology) mpisim.Config {
	chip := power5.DefaultConfig()
	chip.BranchBits = 10
	return mpisim.Config{
		Chip:      chip,
		Topology:  topo,
		Kernel:    oskernel.Config{Patched: true},
		KernelSet: true,
		MaxCycles: 1 << 26,
	}
}

// propJob is a small imbalanced 4-rank job.
func propJob() *mpisim.Job {
	job := &mpisim.Job{Name: "prop"}
	for r := 0; r < 4; r++ {
		n := int64(800)
		if r%2 == 1 {
			n = 3200
		}
		job.Ranks = append(job.Ranks, mpisim.Program{
			mpisim.Compute(workload.Load{Kind: workload.FPU, N: n}),
			mpisim.Barrier(),
		})
	}
	return job
}

// rawPairedPlacements enumerates the UNPRUNED space: every injective
// assignment of the job's ranks to contexts that co-schedules ranks in
// pairs (both contexts of an occupied core used), with the given
// per-rank priorities.  This is the ground truth the symmetry pruning
// must cover.
func rawPairedPlacements(n int, topo power5.Topology, prio []hwpri.Priority) []mpisim.Placement {
	var out []mpisim.Placement
	cpu := make([]int, n)
	usedCore := make([]bool, topo.Cores())
	assigned := make([]bool, n)
	var rec func(rank int)
	rec = func(rank int) {
		// Find first unassigned rank.
		for rank < n && assigned[rank] {
			rank++
		}
		if rank == n {
			out = append(out, mpisim.Placement{CPU: append([]int(nil), cpu...), Prio: prio})
			return
		}
		for core := 0; core < topo.Cores(); core++ {
			if usedCore[core] {
				continue
			}
			usedCore[core] = true
			assigned[rank] = true
			// Partner choices: any later unassigned rank, either context order.
			for partner := 0; partner < n; partner++ {
				if assigned[partner] {
					continue
				}
				assigned[partner] = true
				for _, order := range [2][2]int{{rank, partner}, {partner, rank}} {
					cpu[order[0]] = 2 * core
					cpu[order[1]] = 2*core + 1
					rec(rank + 1)
				}
				assigned[partner] = false
			}
			assigned[rank] = false
			usedCore[core] = false
		}
	}
	rec(0)
	return out
}

// canonicalPoint maps a raw paired placement to its canonical pruned
// representative: pairs sorted, chips in restricted-growth order.
func canonicalPoint(pl mpisim.Placement, topo power5.Topology) Point {
	n := len(pl.CPU)
	byCore := map[int][2]int{}
	coreSeen := map[int]bool{}
	for r := 0; r < n; r++ {
		core := topo.CoreOf(pl.CPU[r])
		pair := byCore[core]
		if !coreSeen[core] {
			coreSeen[core] = true
			pair = [2]int{r, -1}
		} else {
			if r < pair[0] {
				pair = [2]int{r, pair[0]}
			} else {
				pair[1] = r
			}
		}
		byCore[core] = pair
	}
	// Pairs in canonical order (by first rank).
	var pairing Pairing
	pairCore := map[int]int{} // pair index -> raw chip
	var pairs [][3]int        // first, second, raw chip
	for core, pr := range byCore {
		pairs = append(pairs, [3]int{pr[0], pr[1], topo.ChipOfCore(core)})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	for i, pr := range pairs {
		pairing = append(pairing, [2]int{pr[0], pr[1]})
		pairCore[i] = pr[2]
	}
	// Chips in restricted-growth order; cores within a chip in pair order.
	chipRelabel := map[int]int{}
	chipFill := map[int]int{}
	nextChip := 0
	cores := make([]int, len(pairing))
	for i := range pairing {
		raw := pairCore[i]
		label, ok := chipRelabel[raw]
		if !ok {
			label = nextChip
			chipRelabel[raw] = label
			nextChip++
		}
		cores[i] = label*topo.CoresPerChip + chipFill[label]
		chipFill[label]++
	}
	identity := true
	for i, c := range cores {
		identity = identity && c == i
	}
	if identity {
		cores = nil
	}
	return Point{Pairing: pairing, Cores: cores, Prio: pl.Prio}
}

// TestSymmetryPruningPreservesCycles asserts the symmetry the pruning
// relies on actually holds in the simulator: a raw placement and its
// canonical representative produce identical cycle counts.  Checked
// exhaustively on 1×2×2 and on a sample of the 2×2×2 raw space.
//
// The imbalance percentage is compared with a small tolerance: the
// lockstep machine steps chips (and a chip its cores) in index order, so
// a barrier-release event observed by a later-stepped chip re-arms its
// waiters within the same cycle while an earlier-stepped chip picks the
// release up one cycle later.  Relabeling chips can therefore shift a
// sync-interval boundary by a cycle — a sub-0.1pp wobble in the
// percentage metrics that never moves the cycle count.
func TestSymmetryPruningPreservesCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-heavy property test")
	}
	job := propJob()
	prio := []hwpri.Priority{hwpri.Medium, hwpri.High, hwpri.Low, hwpri.Medium}
	for _, tc := range []struct {
		topo   power5.Topology
		stride int // sample every stride-th raw placement
	}{
		{power5.Topology{Chips: 1, CoresPerChip: 2, SMTWays: 2}, 1},
		{power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}, 7},
	} {
		raw := rawPairedPlacements(4, tc.topo, prio)
		cfg := propCfg(tc.topo)
		cache := map[string]*mpisim.Result{}
		for i := 0; i < len(raw); i += tc.stride {
			pl := raw[i]
			rres, err := mpisim.Run(job, pl, cfg)
			if err != nil {
				t.Fatalf("%s raw %v: %v", tc.topo, pl.CPU, err)
			}
			canon := canonicalPoint(pl, tc.topo)
			key := canon.String()
			cres, ok := cache[key]
			if !ok {
				cres, err = mpisim.Run(job, canon.Placement(), cfg)
				if err != nil {
					t.Fatalf("%s canonical %s: %v", tc.topo, canon, err)
				}
				cache[key] = cres
			}
			imbDrift := rres.Imbalance - cres.Imbalance
			if imbDrift < 0 {
				imbDrift = -imbDrift
			}
			if rres.Cycles != cres.Cycles || imbDrift > 0.1 {
				t.Errorf("%s: raw %v (%d cycles, %.3f%%) != canonical %s (%d cycles, %.3f%%)",
					tc.topo, pl.CPU, rres.Cycles, rres.Imbalance, canon, cres.Cycles, cres.Imbalance)
			}
		}
	}
}

// TestSymmetryPruningKeepsOptimum cross-checks exhaustive vs pruned on
// the 1×2×2 machine: the best cycle count over every raw paired CPU
// assignment equals the best over the pruned enumeration.
func TestSymmetryPruningKeepsOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-heavy property test")
	}
	topo := power5.DefaultTopology()
	job := propJob()
	prio := []hwpri.Priority{hwpri.Medium, hwpri.High, hwpri.Low, hwpri.Medium}
	cfg := propCfg(topo)

	best := func(pls []mpisim.Placement) int64 {
		bestCycles := int64(-1)
		for _, pl := range pls {
			res, err := mpisim.Run(job, pl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if bestCycles < 0 || res.Cycles < bestCycles {
				bestCycles = res.Cycles
			}
		}
		return bestCycles
	}

	raw := rawPairedPlacements(4, topo, prio)
	points, err := Enumerate(4, Space{Topology: topo, Alphabet: []hwpri.Priority{hwpri.Low, hwpri.Medium, hwpri.High}})
	if err != nil {
		t.Fatal(err)
	}
	// Keep only pruned points whose per-rank priorities match prio, so
	// the two spaces range over the same configurations.
	var pruned []mpisim.Placement
	for _, pt := range points {
		match := true
		for r, p := range pt.Prio {
			if p != prio[r] {
				match = false
				break
			}
		}
		if match {
			pruned = append(pruned, pt.Placement())
		}
	}
	if len(pruned) != 3 {
		t.Fatalf("pruned space has %d placements at the fixed priorities, want 3 pairings", len(pruned))
	}
	rawBest, prunedBest := best(raw), best(pruned)
	if rawBest != prunedBest {
		t.Errorf("pruning dropped the optimum: raw best %d cycles, pruned best %d", rawBest, prunedBest)
	}
}

// TestSweepTopologyDeterminism asserts a 2-chip sweep ranks identically
// whatever the worker count — the acceptance property for
// `mtbalance sweep -chips 2`.
func TestSweepTopologyDeterminism(t *testing.T) {
	topo := power5.Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	points, err := Enumerate(4, Space{Topology: topo, Alphabet: []hwpri.Priority{hwpri.Medium, hwpri.High}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 pairings × 2 core maps × 2^4 priorities.
	if want := 3 * 2 * 16; len(points) != want {
		t.Fatalf("2x2x2 space has %d points, want %d", len(points), want)
	}
	job := sweepJob(2000)
	var ref *Result
	for _, workers := range []int{1, 4} {
		res, err := Sweep(job, points, Options{Workers: workers, Config: propCfg(topo)})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Ranked) != len(ref.Ranked) {
			t.Fatalf("ranking length differs: %d vs %d", len(res.Ranked), len(ref.Ranked))
		}
		for i := range res.Ranked {
			a, b := ref.Ranked[i], res.Ranked[i]
			if a.Index != b.Index || a.Score != b.Score || a.Metrics != b.Metrics {
				t.Fatalf("rank %d differs between worker counts: %+v vs %+v", i, a, b)
			}
		}
	}
}

// TestEnumerateCapsExplosiveSpaces asserts the space cap fires as an
// error — before the enumerator materializes anything huge — instead of
// an out-of-memory kill.
func TestEnumerateCapsExplosiveSpaces(t *testing.T) {
	big := power5.Topology{Chips: 16, CoresPerChip: 16, SMTWays: 2}
	// 20 ranks: (19)!! = 654,729,075 pairings — must be rejected
	// arithmetically, not generated.
	done := make(chan error, 1)
	go func() {
		_, err := Enumerate(20, Space{Topology: big})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("explosive 20-rank space accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Enumerate(20) did not return promptly; cap applied too late")
	}
	// A fixed pairing with a huge alphabet product is also capped.
	pairing := make(Pairing, 10)
	for c := range pairing {
		pairing[c] = [2]int{2 * c, 2*c + 1}
	}
	if _, err := Enumerate(20, Space{Topology: big, Pairings: []Pairing{pairing}}); err == nil {
		t.Fatal("3^20 priority space accepted")
	}
}
