// Package sweep is a deterministic, worker-pool-based engine for
// exploring the placement × priority configuration space of a job on the
// simulated machine — the search the paper's authors performed by hand,
// one run at a time, to produce Tables IV-VI.
//
// The engine has three parts:
//
//   - A generic index-parallel worker pool (ForEach, Map).  Each work item
//     writes only to its own slot of a pre-allocated result slice, so the
//     pool is race-free by construction and its output is independent of
//     the worker count and of scheduling order.
//
//   - Enumerators for the configuration space (Pairings, CoreAssignments,
//     Enumerate): every distinct way to co-schedule ranks in sibling
//     pairs on the machine's SMT cores — any power5.Topology, not just
//     the paper's single chip — crossed with a per-rank hardware-priority
//     alphabet, with the chip-relabeling, core-relabeling and
//     sibling-context symmetries pruned away.  On a 2×2×2 machine the
//     pruning collapses the 144 co-scheduled CPU maps of a 4-rank job to
//     6 representatives.  Placements that leave a rank alone on a core
//     are outside the space by design: the mechanism under study
//     arbitrates between siblings, and the paper expresses dedicated
//     cores as ST-mode rows (priority 7), not as sweep points.
//
//   - The sweep itself (Sweep): shard independent mpisim.Run calls — the
//     simulator is pure and shares nothing between runs — across the
//     pool, score each run with a pluggable Objective, and aggregate into
//     a stable ranking that is byte-identical whether the sweep ran on
//     one worker or fifty.  Multi-chip spaces are larger even after
//     pruning, so the same index-sharded pool is what keeps 2-chip
//     sweeps tractable: points are claimed one index at a time and each
//     worker's results land in pre-allocated slots.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// PoolSize resolves a requested worker count for n items: <= 0 selects
// GOMAXPROCS, and the pool never runs more workers than items.  ForEach
// uses it, and callers reporting their pool size should too, so the
// report can never drift from the sizing actually used.
func PoolSize(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines.  workers <= 0 selects GOMAXPROCS; workers == 1 (or n == 1)
// degenerates to a plain serial loop with no goroutines at all.  Work is
// handed out through an atomic counter, so items are claimed in index
// order but may complete in any order: fn must confine its effects to
// per-index state (e.g. out[i]) for the result to be deterministic.
// A panic in any fn is re-raised on the caller's goroutine after all
// workers have drained.
//
//mtlint:ctx-root ctx-less convenience wrapper; ForEachCtx is the cancellable form
func ForEach(n, workers int, fn func(i int)) {
	ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no new
// index is claimed (in-flight fn calls finish — pass ctx into fn's own
// work for prompt aborts) and ctx.Err() is returned.  Indices past the
// cancellation point are simply never run; callers must treat their
// slots as absent.  A nil ctx means context.Background().
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers = PoolSize(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicV == nil {
								panicV = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
				panicMu.Lock()
				stop := panicV != nil
				panicMu.Unlock()
				if stop {
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return ctx.Err()
}

// Map runs fn over [0, n) through ForEach and returns the results in
// index order.  The output is identical for every worker count as long
// as fn(i) depends only on i.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
