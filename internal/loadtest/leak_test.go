package loadtest

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if a test leaks a goroutine: Run owns its
// closed-loop clients and must join all of them at the deadline.
func TestMain(m *testing.M) { leakcheck.Main(m) }
