// Package loadtest drives a running mtbalance serve instance with a
// closed-loop worker fleet and reports what the serving tier actually
// delivered: request throughput, a latency distribution (percentiles
// and a log-spaced histogram), how many requests were shed by admission
// control, and — from the server's own /healthz counters — how much of
// the load was absorbed by the cache tiers (memory hits, singleflight
// coalescing, disk revivals) instead of fresh simulation.
//
// The workload is deliberately cache-friendly in a controlled way:
// Config.Distinct job variants are cycled round-robin across all
// workers, so with C workers and D distinct jobs every configuration is
// requested ~C/D times concurrently — exactly the thundering-herd shape
// the coalescing and cache layers exist for.  Distinct=1 degenerates to
// one job hammered by everyone (pure coalescing plus cache hits); a
// large Distinct approaches an all-miss sweep.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes one load-test run.  Zero values select defaults.
type Config struct {
	// URL is the server's base URL, e.g. "http://localhost:8080".
	URL string
	// Concurrency is the closed-loop worker count (default 8).
	Concurrency int
	// Duration bounds the run (default 5s).  Workers stop issuing new
	// requests once it elapses; in-flight requests drain.
	Duration time.Duration
	// Distinct is the number of distinct job variants cycled round-robin
	// (default 4).  Lower means more coalescing and cache hits.
	Distinct int
	// Ranks is each job's rank count (default 4).
	Ranks int
	// ComputeN is the base per-phase instruction count (default 40000);
	// variants and ranks scale it so every variant is a distinct cache
	// key with an imbalanced rank profile.
	ComputeN int64
	// Timeout bounds one request (default 30s).
	Timeout time.Duration
	// Client optionally overrides the HTTP client (tests point it at an
	// in-process handler).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Distinct <= 0 {
		c.Distinct = 4
	}
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.ComputeN <= 0 {
		c.ComputeN = 40_000
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Percentiles summarizes the latency distribution in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Bucket is one bar of the latency histogram: Count requests finished
// in at most UpToMs milliseconds (and more than the previous bucket's).
type Bucket struct {
	UpToMs float64 `json:"up_to_ms"`
	Count  int64   `json:"count"`
}

// CacheDelta is the change in the server's cache counters across the
// run, read from /healthz before and after.  Simulations actually
// executed for the run's misses is Misses − Coalesced − DiskHits.
type CacheDelta struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"`
	DiskHits   int64 `json:"disk_hits"`
	DiskWrites int64 `json:"disk_writes"`
}

// Report is a finished load test.
type Report struct {
	// Config echo, for reproducibility of the recorded baseline.
	URL         string  `json:"url"`
	Concurrency int     `json:"concurrency"`
	Distinct    int     `json:"distinct"`
	Ranks       int     `json:"ranks"`
	DurationSec float64 `json:"duration_sec"`

	// Outcome counts: Requests = OK + Shed + Errors.
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	// Shed counts 429 replies from admission control.
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`

	// ThroughputRPS is successful requests per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency covers successful requests only.
	Latency   Percentiles `json:"latency"`
	Histogram []Bucket    `json:"histogram"`

	Cache CacheDelta `json:"cache_delta"`
}

// health is the slice of the server's /healthz reply the harness reads.
type health struct {
	Cache CacheDelta `json:"cache"`
}

// Run drives the server at cfg.URL until cfg.Duration elapses or ctx is
// cancelled (the partial report is still returned on cancellation; only
// setup failures are errors).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadtest: no server URL")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}

	before, err := readHealth(ctx, client, cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("loadtest: server not reachable: %w", err)
	}

	bodies := make([][]byte, cfg.Distinct)
	for v := range bodies {
		bodies[v] = runBody(cfg, v)
	}

	var (
		requests, ok, shed, errs atomic.Int64
		next                     atomic.Int64
		mu                       sync.Mutex
		latencies                []float64 // ms, successful requests
	)
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				body := bodies[int(next.Add(1)-1)%cfg.Distinct]
				requests.Add(1)
				t0 := time.Now()
				status, err := post(runCtx, client, cfg.URL+"/v1/run", body)
				switch {
				case err != nil:
					if runCtx.Err() != nil {
						requests.Add(-1) // cut off by the deadline, not a real outcome
						return
					}
					errs.Add(1)
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				case status == http.StatusOK:
					ok.Add(1)
					ms := float64(time.Since(t0)) / float64(time.Millisecond)
					mu.Lock()
					latencies = append(latencies, ms)
					mu.Unlock()
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := readHealth(ctx, client, cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("loadtest: /healthz after run: %w", err)
	}

	rep := &Report{
		URL:         cfg.URL,
		Concurrency: cfg.Concurrency,
		Distinct:    cfg.Distinct,
		Ranks:       cfg.Ranks,
		DurationSec: elapsed.Seconds(),
		Requests:    requests.Load(),
		OK:          ok.Load(),
		Shed:        shed.Load(),
		Errors:      errs.Load(),
		Cache: CacheDelta{
			Hits:       after.Cache.Hits - before.Cache.Hits,
			Misses:     after.Cache.Misses - before.Cache.Misses,
			Coalesced:  after.Cache.Coalesced - before.Cache.Coalesced,
			DiskHits:   after.Cache.DiskHits - before.Cache.DiskHits,
			DiskWrites: after.Cache.DiskWrites - before.Cache.DiskWrites,
		},
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	rep.Latency, rep.Histogram = summarize(latencies)
	return rep, nil
}

// runBody builds variant v's /v1/run request: an imbalanced
// compute+barrier job whose instruction counts encode the variant, so
// each variant is one distinct cache key.
func runBody(cfg Config, v int) []byte {
	type compute struct {
		Kind string `json:"kind"`
		N    int64  `json:"n"`
	}
	type phase struct {
		Compute *compute `json:"compute,omitempty"`
		Barrier bool     `json:"barrier,omitempty"`
	}
	type job struct {
		Name  string    `json:"name"`
		Ranks [][]phase `json:"ranks"`
	}
	j := job{Name: fmt.Sprintf("loadtest-%d", v)}
	for r := 0; r < cfg.Ranks; r++ {
		n := cfg.ComputeN + int64(v)*1000
		if r%2 == 1 {
			n *= 4 // the paper's imbalanced-pair shape
		}
		j.Ranks = append(j.Ranks, []phase{
			{Compute: &compute{Kind: "fpu", N: n}},
			{Barrier: true},
		})
	}
	body, err := json.Marshal(struct {
		Job job `json:"job"`
	}{j})
	if err != nil {
		panic(err) // unreachable: plain data
	}
	return body
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	return resp.StatusCode, nil
}

func readHealth(ctx context.Context, client *http.Client, url string) (*health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/healthz replied %s", resp.Status)
	}
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// summarize reduces raw latencies (ms) to percentiles and a log-spaced
// histogram (bucket bounds double from 0.25ms; the tail collects in the
// last bucket that covers the observed max).
func summarize(ms []float64) (Percentiles, []Bucket) {
	if len(ms) == 0 {
		return Percentiles{}, nil
	}
	sort.Float64s(ms)
	q := func(p float64) float64 {
		i := int(p*float64(len(ms))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	pct := Percentiles{P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: ms[len(ms)-1]}

	var buckets []Bucket
	bound := 0.25
	i := 0
	for i < len(ms) {
		n := int64(0)
		for i < len(ms) && ms[i] <= bound {
			n++
			i++
		}
		buckets = append(buckets, Bucket{UpToMs: bound, Count: n})
		bound *= 2
	}
	return pct, buckets
}
