package loadtest

import (
	"net/http/httptest"
	"testing"
	"time"

	smtbalance "repro"
	"repro/internal/serve"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	m, err := smtbalance.NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(m, serve.Config{}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunAgainstServer(t *testing.T) {
	srv := newTestServer(t)
	// ComputeN is tiny on purpose: under -race on a single-CPU box a
	// big simulation can outlive the whole measurement window, leaving
	// zero completed requests to assert on.
	rep, err := Run(t.Context(), Config{
		URL:         srv.URL,
		Concurrency: 4,
		Duration:    600 * time.Millisecond,
		Distinct:    2,
		ComputeN:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Requests != rep.OK+rep.Shed+rep.Errors {
		t.Errorf("requests %d != ok %d + shed %d + errors %d", rep.Requests, rep.OK, rep.Shed, rep.Errors)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	// 4 workers cycling 2 distinct jobs: after the first two simulations
	// everything is a memory hit, and the first herd coalesces.
	if rep.Cache.Hits == 0 {
		t.Errorf("cache delta shows no hits: %+v", rep.Cache)
	}
	if sims := rep.Cache.Misses - rep.Cache.Coalesced - rep.Cache.DiskHits; sims != 2 {
		t.Errorf("simulations executed = %d, want 2 (misses %d, coalesced %d, disk hits %d)",
			sims, rep.Cache.Misses, rep.Cache.Coalesced, rep.Cache.DiskHits)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P99 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	var total int64
	for _, b := range rep.Histogram {
		total += b.Count
	}
	if total != rep.OK {
		t.Errorf("histogram holds %d samples, want %d", total, rep.OK)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v, want > 0", rep.ThroughputRPS)
	}
}

func TestRunRequiresURL(t *testing.T) {
	if _, err := Run(t.Context(), Config{}); err == nil {
		t.Fatal("Run with no URL succeeded")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	pct, hist := summarize(nil)
	if pct != (Percentiles{}) || hist != nil {
		t.Fatalf("summarize(nil) = %+v, %v", pct, hist)
	}
}
