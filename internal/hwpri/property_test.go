package hwpri

import (
	"testing"
	"testing/quick"
)

// priPair constrains quick-generated values to valid priority pairs.
func priPair(a, b uint8) (Priority, Priority) {
	return Priority(a % NumPriorities), Priority(b % NumPriorities)
}

// Property: swapping the priority pair mirrors the allocation.
func TestPropAllocSymmetry(t *testing.T) {
	f := func(ra, rb uint8) bool {
		a, b := priPair(ra, rb)
		x, y := Alloc(a, b), Alloc(b, a)
		if x.Mode != y.Mode || x.Period != y.Period {
			return false
		}
		if x.Slots[0] != y.Slots[1] || x.Slots[1] != y.Slots[0] {
			return false
		}
		switch {
		case x.Favored == -1:
			return y.Favored == -1
		default:
			return y.Favored == 1-x.Favored
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: in shared mode the slots sum to the period, the low-priority
// thread always gets exactly 1, and the shares sum to 1.
func TestPropSharedSlots(t *testing.T) {
	f := func(ra, rb uint8) bool {
		a, b := priPair(ra, rb)
		al := Alloc(a, b)
		if al.Mode != ModeShared {
			return true
		}
		if al.Slots[0]+al.Slots[1] != al.Period {
			return false
		}
		if a != b {
			low := 1 - al.Favored
			if al.Slots[low] != 1 {
				return false
			}
		}
		return almost(al.Share(0)+al.Share(1), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Owner never returns a blocked context, and returns -1 only
// when the mode demands idle cycles or all ready contexts are exhausted.
func TestPropOwnerNeverBlocked(t *testing.T) {
	f := func(ra, rb uint8, cyc uint32, b0, b1 bool) bool {
		a, b := priPair(ra, rb)
		al := Alloc(a, b)
		owner := al.Owner(int64(cyc), [2]bool{b0, b1})
		if owner < -1 || owner > 1 {
			return false
		}
		if owner >= 0 && [2]bool{b0, b1}[owner] {
			return false
		}
		// In shared/leftover/single-thread modes with at least one
		// ready context, a decode slot must never be wasted —
		// except that only the favored thread runs in ST mode.
		switch al.Mode {
		case ModeShared, ModeLeftover:
			if !(b0 && b1) && owner == -1 {
				return false
			}
		case ModeSingleThread:
			if ![2]bool{b0, b1}[al.Favored] && owner != al.Favored {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: increasing the priority distance never decreases the favored
// thread's share and never increases the penalized thread's share.
func TestPropShareMonotonic(t *testing.T) {
	for base := Priority(2); base <= Medium; base++ {
		prevHi, prevLo := 0.5, 0.5
		for hi := base; hi <= High; hi++ {
			al := Alloc(hi, base)
			hiShare, loShare := al.Share(0), al.Share(1)
			if hiShare < prevHi || loShare > prevLo {
				t.Fatalf("shares not monotonic at (%d,%d): hi %g (prev %g) lo %g (prev %g)",
					hi, base, hiShare, prevHi, loShare, prevLo)
			}
			prevHi, prevLo = hiShare, loShare
		}
	}
}

// Property: the or-nop round trip is the identity for priorities 1..7.
func TestPropOrNopRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		p := Priority(raw%7) + 1 // 1..7
		o, ok := p.OrNop()
		if !ok {
			return false
		}
		back, ok := FromOrNop(o)
		return ok && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Owner is periodic with the allocation period (when defined and
// both contexts are ready), so the arbitration has no long-term drift.
func TestPropOwnerPeriodic(t *testing.T) {
	f := func(ra, rb uint8, cyc uint16) bool {
		a, b := priPair(ra, rb)
		al := Alloc(a, b)
		if al.Period == 0 {
			return true
		}
		c := int64(cyc)
		p := int64(al.Period)
		return al.Owner(c, [2]bool{}) == al.Owner(c+p, [2]bool{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
