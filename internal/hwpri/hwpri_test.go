package hwpri

import (
	"testing"
)

// TestTableI_PrivilegeLevels checks every row of Table I: which privilege
// level is required to set each hardware priority.
func TestTableI_PrivilegeLevels(t *testing.T) {
	want := map[Priority]Privilege{
		ThreadOff:  Hypervisor,
		VeryLow:    Supervisor,
		Low:        ProblemState,
		MediumLow:  ProblemState,
		Medium:     ProblemState,
		MediumHigh: Supervisor,
		High:       Supervisor,
		VeryHigh:   Hypervisor,
	}
	for p, priv := range want {
		if got := MinPrivilege(p); got != priv {
			t.Errorf("MinPrivilege(%v) = %v, want %v", p, got, priv)
		}
	}
}

// TestTableI_OrNopEncodings checks the or-nop register numbers of Table I.
func TestTableI_OrNopEncodings(t *testing.T) {
	want := map[Priority]uint8{
		VeryLow:    31,
		Low:        1,
		MediumLow:  6,
		Medium:     2,
		MediumHigh: 5,
		High:       3,
		VeryHigh:   7,
	}
	for p, reg := range want {
		o, ok := p.OrNop()
		if !ok {
			t.Errorf("%v.OrNop() reported no encoding", p)
			continue
		}
		if o.Reg != reg {
			t.Errorf("%v.OrNop() = or %d,..., want or %d,...", p, o.Reg, reg)
		}
		back, ok := FromOrNop(o)
		if !ok || back != p {
			t.Errorf("FromOrNop(%v) = %v,%v, want %v,true", o, back, ok, p)
		}
	}
	if _, ok := ThreadOff.OrNop(); ok {
		t.Error("ThreadOff must not have an or-nop encoding")
	}
}

func TestFromOrNopUnknownRegister(t *testing.T) {
	for _, reg := range []uint8{0, 4, 8, 9, 15, 30} {
		if p, ok := FromOrNop(OrNop{Reg: reg}); ok {
			t.Errorf("FromOrNop(or %d,...) = %v, want a true no-op", reg, p)
		}
	}
}

// TestCanSet verifies the privilege lattice: user ⊂ supervisor ⊂ hypervisor.
func TestCanSet(t *testing.T) {
	userOK := map[Priority]bool{Low: true, MediumLow: true, Medium: true}
	supervisorOK := map[Priority]bool{
		VeryLow: true, Low: true, MediumLow: true,
		Medium: true, MediumHigh: true, High: true,
	}
	for p := Priority(0); p < NumPriorities; p++ {
		if got := CanSet(ProblemState, p); got != userOK[p] {
			t.Errorf("CanSet(user, %v) = %v, want %v", p, got, userOK[p])
		}
		if got := CanSet(Supervisor, p); got != supervisorOK[p] {
			t.Errorf("CanSet(supervisor, %v) = %v, want %v", p, got, supervisorOK[p])
		}
		if !CanSet(Hypervisor, p) {
			t.Errorf("CanSet(hypervisor, %v) = false, want true", p)
		}
	}
	if CanSet(ProblemState, Priority(99)) {
		t.Error("CanSet must reject invalid priorities")
	}
}

// TestTableII_R checks R = 2^(|X-Y|+1) for differences 0..4 (Table II).
func TestTableII_R(t *testing.T) {
	wantR := []int{2, 4, 8, 16, 32} // indexed by |X-Y|
	for x := Priority(2); x <= High; x++ {
		for y := Priority(2); y <= High; y++ {
			d := int(x) - int(y)
			if d < 0 {
				d = -d
			}
			if got := R(x, y); got != wantR[d] {
				t.Errorf("R(%d,%d) = %d, want %d", x, y, got, wantR[d])
			}
		}
	}
}

// TestTableII_DecodeCycles checks the decode-cycle split for every
// difference row of Table II.
func TestTableII_DecodeCycles(t *testing.T) {
	cases := []struct {
		x, y              Priority
		r, slotsX, slotsY int
	}{
		{4, 4, 2, 1, 1},
		{4, 3, 4, 3, 1},
		{5, 3, 8, 7, 1},
		{6, 3, 16, 15, 1},
		{6, 2, 32, 31, 1},
		{2, 6, 32, 1, 31},
		{3, 5, 8, 1, 7},
	}
	for _, c := range cases {
		al := Alloc(c.x, c.y)
		if al.Mode != ModeShared {
			t.Errorf("Alloc(%d,%d).Mode = %v, want shared", c.x, c.y, al.Mode)
			continue
		}
		if al.Period != c.r || al.Slots[0] != c.slotsX || al.Slots[1] != c.slotsY {
			t.Errorf("Alloc(%d,%d) = period %d slots %v, want period %d slots [%d %d]",
				c.x, c.y, al.Period, al.Slots, c.r, c.slotsX, c.slotsY)
		}
	}
}

// TestTableIII_SpecialRows checks every row of Table III.
func TestTableIII_SpecialRows(t *testing.T) {
	cases := []struct {
		a, b    Priority
		mode    Mode
		favored int
	}{
		{1, 4, ModeLeftover, 1}, // ThreadB gets all resources, A leftover
		{4, 1, ModeLeftover, 0},
		{1, 1, ModePowerSave, -1},   // both 1 of 64
		{0, 4, ModeSingleThread, 1}, // ST mode
		{4, 0, ModeSingleThread, 0},
		{0, 1, ModeThrottled, 1}, // 1 of 32 for B
		{1, 0, ModeThrottled, 0},
		{0, 0, ModeStopped, -1},
	}
	for _, c := range cases {
		al := Alloc(c.a, c.b)
		if al.Mode != c.mode || al.Favored != c.favored {
			t.Errorf("Alloc(%d,%d) = mode %v favored %d, want mode %v favored %d",
				c.a, c.b, al.Mode, al.Favored, c.mode, c.favored)
		}
	}
	if p := Alloc(1, 1).Period; p != 64 {
		t.Errorf("power save period = %d, want 64", p)
	}
	if p := Alloc(0, 1).Period; p != 32 {
		t.Errorf("throttled period = %d, want 32", p)
	}
}

// TestOwnerDistribution verifies that over one arbitration window the
// decode-owner distribution matches the Table II slot counts exactly when
// neither context is blocked.
func TestOwnerDistribution(t *testing.T) {
	for x := Priority(2); x <= High; x++ {
		for y := Priority(2); y <= High; y++ {
			al := Alloc(x, y)
			counts := [2]int{}
			for c := int64(0); c < int64(al.Period); c++ {
				owner := al.Owner(c, [2]bool{})
				if owner < 0 {
					t.Fatalf("Alloc(%d,%d).Owner(%d) = -1 with both ready", x, y, c)
				}
				counts[owner]++
			}
			if counts != al.Slots {
				t.Errorf("Alloc(%d,%d): owner counts %v != slots %v", x, y, counts, al.Slots)
			}
		}
	}
}

// TestOwnerStealing: a blocked owner's slot is given to the sibling in
// shared and leftover modes, and wasted in power-save/throttled modes.
func TestOwnerStealing(t *testing.T) {
	al := Alloc(6, 2) // A favored 31:1
	for c := int64(0); c < 64; c++ {
		if got := al.Owner(c, [2]bool{true, false}); got != 1 {
			t.Fatalf("shared: cycle %d owner = %d with A blocked, want 1", c, got)
		}
	}
	lo := Alloc(1, 4) // B favored, A leftover
	if got := lo.Owner(0, [2]bool{false, false}); got != 1 {
		t.Errorf("leftover: owner = %d with both ready, want favored 1", got)
	}
	if got := lo.Owner(0, [2]bool{false, true}); got != 0 {
		t.Errorf("leftover: owner = %d with favored blocked, want leftover thread 0", got)
	}
	ps := Alloc(1, 1)
	if got := ps.Owner(0, [2]bool{true, false}); got != -1 {
		t.Errorf("power save: owner = %d with slot owner blocked, want -1 (no stealing)", got)
	}
	th := Alloc(0, 1)
	if got := th.Owner(0, [2]bool{false, true}); got != -1 {
		t.Errorf("throttled: owner = %d with survivor blocked, want -1", got)
	}
	if got := th.Owner(1, [2]bool{false, false}); got != -1 {
		t.Errorf("throttled: owner = %d off-slot, want -1", got)
	}
}

// TestOwnerBothBlocked: nobody decodes when both contexts are blocked.
func TestOwnerBothBlocked(t *testing.T) {
	for a := Priority(0); a < NumPriorities; a++ {
		for b := Priority(0); b < NumPriorities; b++ {
			al := Alloc(a, b)
			for c := int64(0); c < 70; c++ {
				if got := al.Owner(c, [2]bool{true, true}); got != -1 {
					t.Fatalf("Alloc(%d,%d).Owner(%d) = %d with both blocked", a, b, c, got)
				}
			}
		}
	}
}

// TestShare spot-checks the static decode shares used by the balancer model.
func TestShare(t *testing.T) {
	cases := []struct {
		a, b   Priority
		share0 float64
	}{
		{4, 4, 0.5},
		{5, 4, 0.75},
		{6, 4, 0.875},
		{6, 3, 15.0 / 16.0},
		{6, 2, 31.0 / 32.0},
		{2, 6, 1.0 / 32.0},
		{0, 4, 0},
		{4, 0, 1},
		{1, 1, 1.0 / 64.0},
		{0, 0, 0},
	}
	for _, c := range cases {
		al := Alloc(c.a, c.b)
		if got := al.Share(0); !almost(got, c.share0) {
			t.Errorf("Alloc(%d,%d).Share(0) = %g, want %g", c.a, c.b, got, c.share0)
		}
		if al.Mode == ModeShared {
			if s := al.Share(0) + al.Share(1); !almost(s, 1) {
				t.Errorf("Alloc(%d,%d) shares sum %g, want 1", c.a, c.b, s)
			}
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestStringers(t *testing.T) {
	if Medium.String() != "medium" || VeryHigh.String() != "very-high" {
		t.Error("Priority.String mismatch")
	}
	if Priority(12).String() == "" {
		t.Error("invalid priority must still format")
	}
	for _, m := range []Mode{ModeShared, ModeLeftover, ModePowerSave, ModeSingleThread, ModeThrottled, ModeStopped} {
		if m.String() == "" {
			t.Errorf("mode %d has empty name", m)
		}
	}
	if ProblemState.String() != "user" || Supervisor.String() != "supervisor" {
		t.Error("Privilege.String mismatch")
	}
	if (OrNop{Reg: 31}).String() != "or 31,31,31" {
		t.Error("OrNop.String mismatch")
	}
	for a := Priority(0); a < NumPriorities; a++ {
		for b := Priority(0); b < NumPriorities; b++ {
			if Alloc(a, b).Describe() == "" {
				t.Fatalf("Alloc(%d,%d).Describe() empty", a, b)
			}
		}
	}
}

func TestInvalidPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("R", func() { R(8, 4) })
	mustPanic("Alloc", func() { Alloc(4, 9) })
}
