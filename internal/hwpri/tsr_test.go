package hwpri

import (
	"testing"
	"testing/quick"
)

func TestTSRRoundTrip(t *testing.T) {
	for p := Priority(0); p < NumPriorities; p++ {
		if got := TSRFromPriority(p).Priority(); got != p {
			t.Errorf("TSR round trip of %v gives %v", p, got)
		}
	}
}

func TestWriteTSRPrivilege(t *testing.T) {
	// User writes: only 2..4 take effect.
	for p := Priority(0); p < NumPriorities; p++ {
		got, ok := WriteTSR(Medium, TSRFromPriority(p), ProblemState)
		wantOK := p >= Low && p <= Medium
		if ok != wantOK {
			t.Errorf("user mtspr of %v: ok = %v, want %v", p, ok, wantOK)
		}
		if !ok && got != Medium {
			t.Errorf("rejected write changed priority to %v", got)
		}
		if ok && got != p {
			t.Errorf("accepted write gave %v, want %v", got, p)
		}
	}
	// Supervisor reaches 1..6, hypervisor everything.
	if _, ok := WriteTSR(Medium, TSRFromPriority(High), Supervisor); !ok {
		t.Error("supervisor mtspr of high rejected")
	}
	if _, ok := WriteTSR(Medium, TSRFromPriority(ThreadOff), Supervisor); ok {
		t.Error("supervisor mtspr of thread-off accepted")
	}
	if _, ok := WriteTSR(Medium, TSRFromPriority(VeryHigh), Hypervisor); !ok {
		t.Error("hypervisor mtspr of very-high rejected")
	}
}

// Property: a TSR write either leaves the priority unchanged (rejected)
// or sets exactly the requested priority, and acceptance matches CanSet.
func TestPropWriteTSR(t *testing.T) {
	f := func(cur, want, priv uint8) bool {
		current := Priority(cur % NumPriorities)
		requested := Priority(want % NumPriorities)
		privilege := Privilege(priv % 3)
		got, ok := WriteTSR(current, TSRFromPriority(requested), privilege)
		if ok != CanSet(privilege, requested) {
			return false
		}
		if ok {
			return got == requested
		}
		return got == current
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
