// Package hwpri implements the IBM POWER5 hardware thread priority
// semantics described in Boneti et al., "Balancing HPC Applications Through
// Smart Allocation of Resources in MT Processors" (IPDPS 2008), Section V.
//
// Each SMT context of a POWER5 core carries a hardware thread priority in
// the range 0..7 (Table I).  The core allocates decode cycles to the two
// contexts as a function of the *difference* between their priorities
// (Table II): the decode time is divided into slices of R cycles, where
//
//	R = 2^(|X-Y|+1)
//
// and the lower-priority thread receives 1 of those R cycles while the
// higher-priority thread receives the remaining R-1.  When either priority
// is 0 or 1 the allocation follows the special rows of Table III (single
// thread mode, power-save mode, throttled mode, or stopped).
//
// The package is pure: it has no simulator state and is shared by the chip
// simulator (internal/power5), the OS layer (internal/oskernel) and the
// balancer (internal/core).
package hwpri

import "fmt"

// Priority is a POWER5 hardware thread priority (Table I).  It is unrelated
// to the operating system's notion of process priority.
type Priority uint8

// The eight hardware thread priorities of the POWER5 (Table I).
const (
	// ThreadOff (0) shuts the context off; the core may enter Single
	// Thread mode if the sibling context remains active.
	ThreadOff Priority = 0
	// VeryLow (1) gives the context only leftover decode cycles.
	VeryLow Priority = 1
	// Low (2) is the lowest priority settable from user space.
	Low Priority = 2
	// MediumLow (3) is settable from user space.
	MediumLow Priority = 3
	// Medium (4) is the default priority for running software.
	Medium Priority = 4
	// MediumHigh (5) requires supervisor (OS) privilege.
	MediumHigh Priority = 5
	// High (6) requires supervisor (OS) privilege.
	High Priority = 6
	// VeryHigh (7) requires hypervisor privilege and implies the sibling
	// context is off (Single Thread mode).
	VeryHigh Priority = 7
)

// NumPriorities is the count of distinct hardware priorities (0..7).
const NumPriorities = 8

var priorityNames = [NumPriorities]string{
	"thread-off", "very-low", "low", "medium-low",
	"medium", "medium-high", "high", "very-high",
}

// Valid reports whether p is one of the eight architected priorities.
func (p Priority) Valid() bool { return p < NumPriorities }

// String returns the architectural name of the priority level.
func (p Priority) String() string {
	if !p.Valid() {
		return fmt.Sprintf("priority(%d)", uint8(p))
	}
	return priorityNames[p]
}

// Privilege is the executing privilege level of software attempting to set
// a hardware priority (Table I, "Privilege level" column).
type Privilege uint8

// Privilege levels, ordered from least to most privileged.
const (
	// ProblemState is unprivileged user code.
	ProblemState Privilege = iota
	// Supervisor is operating-system code.
	Supervisor
	// Hypervisor is firmware/hypervisor code.
	Hypervisor
)

// String returns a human-readable privilege name.
func (pr Privilege) String() string {
	switch pr {
	case ProblemState:
		return "user"
	case Supervisor:
		return "supervisor"
	case Hypervisor:
		return "hypervisor"
	default:
		return fmt.Sprintf("privilege(%d)", uint8(pr))
	}
}

// MinPrivilege returns the least privilege level allowed to set priority p
// (Table I): priorities 0 and 7 are hypervisor-only, 1, 5 and 6 require the
// supervisor, and 2, 3, 4 may be set by user code.
func MinPrivilege(p Priority) Privilege {
	switch p {
	case ThreadOff, VeryHigh:
		return Hypervisor
	case VeryLow, MediumHigh, High:
		return Supervisor
	default:
		return ProblemState
	}
}

// CanSet reports whether software running at privilege pr may set priority p.
func CanSet(pr Privilege, p Priority) bool {
	return p.Valid() && pr >= MinPrivilege(p)
}

// OrNop is the "or Rx,Rx,Rx" no-op encoding that changes the hardware
// thread priority of the executing context (Table I, last column).  The
// POWER5 also exposes the priority through the Thread Status Register; the
// or-nop form is the one used by the paper and by the Linux kernel.
type OrNop struct {
	// Reg is the register number X in "or X,X,X".
	Reg uint8
}

// orNopRegs maps each settable priority to its or-nop register number
// (Table I).  Priority 0 has no or-nop form (index holds 0xFF).
var orNopRegs = [NumPriorities]uint8{
	ThreadOff:  0xFF,
	VeryLow:    31, // or 31,31,31
	Low:        1,  // or 1,1,1
	MediumLow:  6,  // or 6,6,6
	Medium:     2,  // or 2,2,2
	MediumHigh: 5,  // or 5,5,5
	High:       3,  // or 3,3,3
	VeryHigh:   7,  // or 7,7,7
}

// OrNop returns the or-nop instruction encoding that sets priority p, and
// whether such an encoding exists (priority 0 can only be set through the
// TSR by the hypervisor, so it has no or-nop form).
func (p Priority) OrNop() (OrNop, bool) {
	if !p.Valid() || orNopRegs[p] == 0xFF {
		return OrNop{}, false
	}
	return OrNop{Reg: orNopRegs[p]}, true
}

// FromOrNop decodes an or-nop back to the priority it requests.  Unknown
// register numbers are true no-ops and return ok == false.
func FromOrNop(o OrNop) (Priority, bool) {
	for p, r := range orNopRegs {
		if r != 0xFF && r == o.Reg {
			return Priority(p), true
		}
	}
	return 0, false
}

// String formats the or-nop in assembly syntax.
func (o OrNop) String() string { return fmt.Sprintf("or %d,%d,%d", o.Reg, o.Reg, o.Reg) }

// R returns the decode time-slice length R = 2^(|x-y|+1) used when both
// priorities are greater than 1 (Section V.A).  The lower-priority thread
// receives 1 of the R cycles and the higher-priority thread the remaining
// R-1.  R panics if either priority is invalid; callers handling priorities
// 0 and 1 must use Alloc, which implements the Table III special rows.
func R(x, y Priority) int {
	if !x.Valid() || !y.Valid() {
		panic(fmt.Sprintf("hwpri: invalid priorities %d, %d", x, y))
	}
	d := int(x) - int(y)
	if d < 0 {
		d = -d
	}
	return 1 << (d + 1)
}

// Mode classifies the decode-cycle allocation regime between the two
// contexts of a core (Tables II and III).
type Mode uint8

const (
	// ModeShared divides decode cycles per Table II: in every window of
	// R cycles the lower-priority thread gets 1 and the higher R-1.
	ModeShared Mode = iota
	// ModeLeftover (priority 1 vs >1): the higher-priority thread gets
	// all decode cycles; the priority-1 thread takes only what is left
	// over when the other cannot use its cycle.
	ModeLeftover
	// ModePowerSave (priority 1 vs 1): each thread receives 1 of 64
	// decode cycles.
	ModePowerSave
	// ModeSingleThread (priority 0 vs >1): the surviving thread owns the
	// core (ST mode) and receives all resources.
	ModeSingleThread
	// ModeThrottled (priority 0 vs 1): the surviving thread receives 1
	// of 32 decode cycles.
	ModeThrottled
	// ModeStopped (priority 0 vs 0): the core is stopped.
	ModeStopped
)

// String returns a short name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "shared"
	case ModeLeftover:
		return "leftover"
	case ModePowerSave:
		return "power-save"
	case ModeSingleThread:
		return "single-thread"
	case ModeThrottled:
		return "throttled"
	case ModeStopped:
		return "stopped"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Allocation describes how decode cycles are divided between the two
// contexts of a core for a given priority pair.  It is produced by Alloc
// and consulted every cycle by the decode stage through Owner.
type Allocation struct {
	// Mode is the allocation regime.
	Mode Mode
	// Period is the length in cycles of the arbitration window: R for
	// ModeShared, 64 for ModePowerSave, 32 for ModeThrottled, 1 for
	// ModeSingleThread and ModeLeftover, 0 for ModeStopped.
	Period int
	// Favored is the context index (0 or 1) holding the larger share,
	// or -1 when the shares are equal or no thread runs.
	Favored int
	// Slots is the number of decode cycles per Period granted to each
	// context.  For ModeLeftover the favored thread's entry is Period
	// (all cycles) and the other 0, the leftover grant being dynamic.
	Slots [2]int
}

// Alloc computes the decode-cycle allocation for the priority pair (a, b)
// of contexts 0 and 1, implementing Table II for priorities above 1 and
// every row of Table III otherwise.
func Alloc(a, b Priority) Allocation {
	if !a.Valid() || !b.Valid() {
		panic(fmt.Sprintf("hwpri: invalid priorities %d, %d", a, b))
	}
	switch {
	case a == ThreadOff && b == ThreadOff:
		return Allocation{Mode: ModeStopped, Favored: -1}
	case a == ThreadOff && b == VeryLow:
		return Allocation{Mode: ModeThrottled, Period: 32, Favored: 1, Slots: [2]int{0, 1}}
	case a == VeryLow && b == ThreadOff:
		return Allocation{Mode: ModeThrottled, Period: 32, Favored: 0, Slots: [2]int{1, 0}}
	case a == ThreadOff:
		return Allocation{Mode: ModeSingleThread, Period: 1, Favored: 1, Slots: [2]int{0, 1}}
	case b == ThreadOff:
		return Allocation{Mode: ModeSingleThread, Period: 1, Favored: 0, Slots: [2]int{1, 0}}
	case a == VeryLow && b == VeryLow:
		return Allocation{Mode: ModePowerSave, Period: 64, Favored: -1, Slots: [2]int{1, 1}}
	case a == VeryLow:
		return Allocation{Mode: ModeLeftover, Period: 1, Favored: 1, Slots: [2]int{0, 1}}
	case b == VeryLow:
		return Allocation{Mode: ModeLeftover, Period: 1, Favored: 0, Slots: [2]int{1, 0}}
	}
	// Both priorities > 1: Table II.
	r := R(a, b)
	switch {
	case a == b:
		return Allocation{Mode: ModeShared, Period: 2, Favored: -1, Slots: [2]int{1, 1}}
	case a > b:
		return Allocation{Mode: ModeShared, Period: r, Favored: 0, Slots: [2]int{r - 1, 1}}
	default:
		return Allocation{Mode: ModeShared, Period: r, Favored: 1, Slots: [2]int{1, r - 1}}
	}
}

// Owner returns the context index (0 or 1) that owns the decode stage in
// the given cycle, or -1 when no context may decode.  blocked reports, for
// each context, whether it is unable to use a decode cycle this cycle
// (stalled, stopped, or out of work); a shared- or leftover-mode slot whose
// owner is blocked is given to the sibling, matching the POWER5 behaviour
// of not wasting decode bandwidth.  Power-save and throttled modes never
// give slots away: their purpose is to reduce activity, not preserve
// throughput.
func (al Allocation) Owner(cycle int64, blocked [2]bool) int {
	steal := func(first int) int {
		if first >= 0 && !blocked[first] {
			return first
		}
		other := 1 - first
		if first >= 0 && !blocked[other] {
			return other
		}
		return -1
	}
	switch al.Mode {
	case ModeStopped:
		return -1
	case ModeSingleThread:
		if blocked[al.Favored] {
			return -1
		}
		return al.Favored
	case ModeThrottled:
		if cycle%int64(al.Period) == 0 && !blocked[al.Favored] {
			return al.Favored
		}
		return -1
	case ModePowerSave:
		switch cycle % int64(al.Period) {
		case 0:
			if !blocked[0] {
				return 0
			}
		case int64(al.Period) / 2:
			if !blocked[1] {
				return 1
			}
		}
		return -1
	case ModeLeftover:
		return steal(al.Favored)
	default: // ModeShared
		if al.Favored < 0 {
			// Equal priorities: strict alternation, with stealing.
			return steal(int(cycle % 2))
		}
		low := 1 - al.Favored
		if cycle%int64(al.Period) == 0 {
			return steal(low)
		}
		return steal(al.Favored)
	}
}

// Share returns the fraction of decode cycles statically granted to the
// given context under this allocation, ignoring dynamic stealing.  It is
// the quantity tabulated in Table II (e.g. 31/32 vs 1/32 for a priority
// difference of 4) and is used by the balancer's performance model.
func (al Allocation) Share(ctx int) float64 {
	switch al.Mode {
	case ModeStopped:
		return 0
	case ModeSingleThread, ModeLeftover:
		if ctx == al.Favored {
			return 1
		}
		return 0
	default:
		if al.Period == 0 {
			return 0
		}
		return float64(al.Slots[ctx]) / float64(al.Period)
	}
}

// Describe returns a one-line human-readable description of the
// allocation, in the style of the Table II / Table III rows.
func (al Allocation) Describe() string {
	switch al.Mode {
	case ModeStopped:
		return "processor is stopped"
	case ModeSingleThread:
		return fmt.Sprintf("ST mode: thread %d receives all resources", al.Favored)
	case ModeThrottled:
		return fmt.Sprintf("1 of 32 cycles are given to thread %d", al.Favored)
	case ModePowerSave:
		return "power save mode: both threads receive 1 of 64 decode cycles"
	case ModeLeftover:
		return fmt.Sprintf("thread %d gets all execution resources; thread %d takes what is left over",
			al.Favored, 1-al.Favored)
	default:
		return fmt.Sprintf("decode cycles %d:%d over a window of %d cycles",
			al.Slots[0], al.Slots[1], al.Period)
	}
}
