package hwpri

// The POWER5 exposes a second interface to the thread priority besides
// the or-nop instructions (Section V-B of the paper): the per-thread
// Thread Status Register.  Software with sufficient privilege writes the
// priority into the local TSR with mtspr and reads it back with mfspr.
// This file models the TSR encoding and its privilege rules; the chip
// simulator exposes the register through ReadTSR/WriteTSR.

// TSR is the Thread Status Register value of one hardware thread context.
// Bits [31:29] hold the thread priority; the remaining bits are reserved
// and read as zero in this model.
type TSR uint32

// tsrPrioShift positions the priority field in the register.
const tsrPrioShift = 29

// TSRFromPriority encodes a priority into a TSR value.
func TSRFromPriority(p Priority) TSR {
	return TSR(uint32(p&0x7) << tsrPrioShift)
}

// Priority extracts the thread priority field.
func (t TSR) Priority() Priority {
	return Priority((uint32(t) >> tsrPrioShift) & 0x7)
}

// WriteTSR computes the effect of an mtspr to the TSR at the given
// privilege: the priority field is updated only if the privilege level
// allows the requested priority (an insufficiently privileged write is
// silently ignored by the hardware, like an or-nop).  It returns the new
// effective priority and whether the write took effect.
func WriteTSR(current Priority, t TSR, priv Privilege) (Priority, bool) {
	want := t.Priority()
	if !CanSet(priv, want) {
		return current, false
	}
	return want, true
}
