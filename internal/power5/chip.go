package power5

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ContextStats are the per-hardware-context performance counters exposed
// by the simulator, mirroring what the paper's authors sampled with the
// POWER5 performance monitor.
type ContextStats struct {
	// Decoded counts instructions accepted by the decode stage.
	Decoded int64
	// Completed counts instructions retired.
	Completed int64
	// DecodeCycles counts cycles in which this context owned the decode
	// stage.
	DecodeCycles int64
	// Mispredicts counts mispredicted branches.
	Mispredicts int64
	// L1Misses counts demand loads that missed the L1.
	L1Misses int64
	// PrioritySets counts executed or-nop priority changes (including
	// ones rejected for insufficient privilege).
	PrioritySets int64
}

// IPC returns instructions per cycle over the given cycle span.
func (s ContextStats) IPC(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(s.Completed) / float64(cycles)
}

// entry is one in-flight instruction in a context's portion of the shared
// completion window.
type entry struct {
	doneAt    int64
	decodedAt int64
	addr      uint64
	pos       int64
	op        isa.Op
	dep       uint8
	issued    bool
}

// depRing is the number of recent per-context completion times retained
// for dependency lookups; it bounds the expressible dependency distance.
const depRing = 64

// context is one SMT hardware thread context.
type context struct {
	stream  isa.Stream
	running bool
	prio    hwpri.Priority
	priv    hwpri.Privilege

	// ring is the in-flight instruction queue (in program order).
	ring         []entry
	head         int // oldest in-flight
	issueIdx     int // next entry to issue
	tail         int // next free slot
	count        int // entries in [head, tail)
	unissued     int // entries in [issueIdx, tail)
	decodePos    int64
	doneTimes    [depRing]int64
	blockedUntil int64

	stats ContextStats
}

func (ctx *context) reset(windowSize int) {
	ctx.ring = make([]entry, windowSize+1)
	ctx.head, ctx.issueIdx, ctx.tail, ctx.count, ctx.unissued = 0, 0, 0, 0, 0
	ctx.decodePos = 0
	ctx.blockedUntil = 0
	ctx.running = false
	ctx.prio = hwpri.Medium
	ctx.priv = hwpri.ProblemState
}

func (ctx *context) push(e entry) {
	ctx.ring[ctx.tail] = e
	ctx.tail++
	if ctx.tail == len(ctx.ring) {
		ctx.tail = 0
	}
	ctx.count++
	ctx.unissued++
}

// core is one POWER5 core: two contexts sharing decode, issue, units,
// window, predictor and L1.
type core struct {
	ctx   [2]context
	alloc hwpri.Allocation
	bp    *branch.Predictor
	// mshr holds completion times of outstanding L1 misses.
	mshr []int64
	// windowUsed counts entries across both contexts.
	windowUsed int
}

// Chip is the simulated POWER5 processor.
type Chip struct {
	cfg    Config
	cores  []*core
	hier   *mem.Hierarchy
	cycle  int64
	halted bool
	// active counts contexts that are running or have instructions in
	// flight, so the per-cycle idleness check is O(1).
	active int
	// ffMaxPeriod is the largest decode-allocation period consulted in a
	// cycle-dependent way so far (see notePeriod); the phase-skip engine
	// uses it as the modulus under which the cycle counter is behaviorally
	// periodic.  Monotonic, at least 2 (complete/issue parity).
	ffMaxPeriod int64
	// decodeIn is decode's instruction scratch.  A local would escape
	// through the stream interface call and allocate every cycle.
	decodeIn isa.Instr

	// onEmpty, if set, is invoked when a context's stream runs dry.  The
	// handler may install a new stream (SetStream) and adjust priorities;
	// it must not call Step or Run.
	onEmpty func(core, thread int)
}

// New builds a chip from cfg.
func New(cfg Config) (*Chip, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Hier)
	if err != nil {
		return nil, err
	}
	ch := &Chip{cfg: cfg, hier: hier, ffMaxPeriod: 2}
	for i := 0; i < cfg.Cores; i++ {
		co := &core{
			bp:   branch.New(cfg.BranchBits),
			mshr: make([]int64, 0, cfg.MSHRs),
		}
		for t := range co.ctx {
			co.ctx[t].reset(cfg.WindowSize)
		}
		co.alloc = hwpri.Alloc(co.ctx[0].prio, co.ctx[1].prio)
		ch.cores = append(ch.cores, co)
	}
	return ch, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Chip {
	ch, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return ch
}

// Config returns the chip configuration.
func (ch *Chip) Config() Config { return ch.cfg }

// Hierarchy exposes the memory hierarchy (for statistics).
func (ch *Chip) Hierarchy() *mem.Hierarchy { return ch.hier }

// Cycle returns the current cycle number.
func (ch *Chip) Cycle() int64 { return ch.cycle }

// Seconds converts a cycle count to seconds at the configured clock.
func (ch *Chip) Seconds(cycles int64) float64 { return float64(cycles) / ch.cfg.ClockHz }

// OnEmpty registers the stream-exhausted callback.
func (ch *Chip) OnEmpty(f func(core, thread int)) { ch.onEmpty = f }

// Halt makes Run and RunUntil return at the end of the current cycle.  It
// may be called from an OnEmpty handler.
func (ch *Chip) Halt() { ch.halted = true }

// Halted reports whether Halt has been called since the last Run.
func (ch *Chip) Halted() bool { return ch.halted }

func (ch *Chip) checkCT(coreID, thread int) {
	if coreID < 0 || coreID >= len(ch.cores) || thread < 0 || thread >= 2 {
		panic(fmt.Sprintf("power5: no context (core %d, thread %d)", coreID, thread))
	}
}

// noteBusy updates the active-context counter after a transition; was is
// the context's busy state (running or in-flight work) before it.
func (ch *Chip) noteBusy(ctx *context, was bool) {
	now := ctx.running || ctx.count > 0
	if now != was {
		if now {
			ch.active++
		} else {
			ch.active--
		}
	}
}

// SetStream installs s as the instruction stream of the given context; a
// nil stream idles the context.  In-flight instructions are unaffected.
func (ch *Chip) SetStream(coreID, thread int, s isa.Stream) {
	ch.checkCT(coreID, thread)
	ctx := &ch.cores[coreID].ctx[thread]
	was := ctx.running || ctx.count > 0
	ctx.stream = s
	ctx.running = s != nil
	ch.noteBusy(ctx, was)
}

// Running reports whether the context currently has a stream.
func (ch *Chip) Running(coreID, thread int) bool {
	ch.checkCT(coreID, thread)
	return ch.cores[coreID].ctx[thread].running
}

// SetPriority sets the hardware thread priority of a context.  This is
// the Thread Status Register path: it performs no privilege checking (the
// OS layer is responsible), unlike or-nop instructions inside streams.
func (ch *Chip) SetPriority(coreID, thread int, p hwpri.Priority) {
	ch.checkCT(coreID, thread)
	if !p.Valid() {
		panic(fmt.Sprintf("power5: invalid priority %d", p))
	}
	co := ch.cores[coreID]
	co.ctx[thread].prio = p
	co.alloc = hwpri.Alloc(co.ctx[0].prio, co.ctx[1].prio)
}

// Priority returns the hardware thread priority of a context.
func (ch *Chip) Priority(coreID, thread int) hwpri.Priority {
	ch.checkCT(coreID, thread)
	return ch.cores[coreID].ctx[thread].prio
}

// SetPrivilege sets the privilege level at which the context is executing;
// it governs which or-nop priority requests take effect.
func (ch *Chip) SetPrivilege(coreID, thread int, pr hwpri.Privilege) {
	ch.checkCT(coreID, thread)
	ch.cores[coreID].ctx[thread].priv = pr
}

// Allocation returns the current decode allocation of a core.
func (ch *Chip) Allocation(coreID int) hwpri.Allocation {
	return ch.cores[coreID].alloc
}

// ReadTSR models mfspr from the context's Thread Status Register
// (Section V-B): it returns the current priority in the TSR encoding.
func (ch *Chip) ReadTSR(coreID, thread int) hwpri.TSR {
	ch.checkCT(coreID, thread)
	return hwpri.TSRFromPriority(ch.cores[coreID].ctx[thread].prio)
}

// WriteTSR models mtspr to the context's Thread Status Register at the
// context's current privilege level; insufficiently privileged writes are
// silently ignored, as on hardware.  It reports whether the priority
// changed.
func (ch *Chip) WriteTSR(coreID, thread int, t hwpri.TSR) bool {
	ch.checkCT(coreID, thread)
	co := ch.cores[coreID]
	next, ok := hwpri.WriteTSR(co.ctx[thread].prio, t, co.ctx[thread].priv)
	if !ok {
		return false
	}
	co.ctx[thread].prio = next
	co.alloc = hwpri.Alloc(co.ctx[0].prio, co.ctx[1].prio)
	return true
}

// TouchMemory brings addr into core's cache hierarchy without consuming
// simulated time.  Runtimes use it to pre-warm working sets before the
// traced region: the paper measures steady-state applications whose
// footprints have long been resident, and at the reproduction's reduced
// workload scale a cold first pass would otherwise dominate the run.
func (ch *Chip) TouchMemory(coreID int, addr uint64) {
	ch.hier.LoadLatency(coreID, addr)
}

// Stats returns a snapshot of a context's counters.
func (ch *Chip) Stats(coreID, thread int) ContextStats {
	ch.checkCT(coreID, thread)
	return ch.cores[coreID].ctx[thread].stats
}

// Predictor returns a core's shared branch predictor (for statistics).
func (ch *Chip) Predictor(coreID int) *branch.Predictor { return ch.cores[coreID].bp }

// InFlight returns the number of in-flight instructions of a context.
func (ch *Chip) InFlight(coreID, thread int) int {
	ch.checkCT(coreID, thread)
	return ch.cores[coreID].ctx[thread].count
}

// AllIdle reports whether no context is running and no instruction is in
// flight, i.e. further cycles cannot change architectural state.
func (ch *Chip) AllIdle() bool { return ch.active == 0 }

// latency returns the execution latency of an instruction issued now.
// Loads consult the cache hierarchy (and so must only be called once, at
// issue).
func (ch *Chip) latency(coreID int, e *entry) int64 {
	switch e.op {
	case isa.FXMul:
		return int64(ch.cfg.FXMulLatency)
	case isa.FP:
		return int64(ch.cfg.FPLatency)
	case isa.FPDiv:
		return int64(ch.cfg.FPDivLatency)
	case isa.Load:
		return int64(ch.hier.LoadLatency(coreID, e.addr))
	case isa.Store:
		return int64(ch.hier.StoreLatency(coreID, e.addr))
	default:
		return 1
	}
}

// Step advances the chip by one cycle.
func (ch *Chip) Step() {
	for id, co := range ch.cores {
		// A core with no running context and an empty window has nothing
		// to complete, issue or decode; skip all three stages.
		if !co.ctx[0].running && !co.ctx[1].running && co.windowUsed == 0 {
			continue
		}
		ch.complete(co)
		ch.issue(id, co)
		ch.decode(id, co)
	}
	ch.cycle++
}

// Run advances the chip n cycles, stopping early on Halt or when the chip
// goes fully idle.  It returns the number of cycles actually run.
func (ch *Chip) Run(n int64) int64 {
	return ch.RunUntil(ch.cycle + n)
}

// RunUntil advances the chip until the given cycle number, stopping early
// on Halt or full idleness.  It returns the cycles actually run.
func (ch *Chip) RunUntil(target int64) int64 {
	ch.halted = false
	start := ch.cycle
	for ch.cycle < target && !ch.halted {
		ch.Step()
		if ch.AllIdle() {
			break
		}
	}
	return ch.cycle - start
}

// complete retires finished instructions in order, up to CompleteWidth per
// core per cycle, alternating between contexts for fairness.
func (ch *Chip) complete(co *core) {
	budget := ch.cfg.CompleteWidth
	for budget > 0 {
		progress := false
		for t := 0; t < 2 && budget > 0; t++ {
			ctx := &co.ctx[(int(ch.cycle)+t)&1]
			if ctx.count == ctx.unissued || ctx.count == 0 {
				continue
			}
			e := &ctx.ring[ctx.head]
			if !e.issued || e.doneAt > ch.cycle {
				continue
			}
			ctx.head++
			if ctx.head == len(ctx.ring) {
				ctx.head = 0
			}
			ctx.count--
			co.windowUsed--
			if ctx.count == 0 && !ctx.running {
				ch.active--
			}
			ctx.stats.Completed++
			budget--
			progress = true
		}
		if !progress {
			return
		}
	}
}

// issue dispatches ready instructions in per-context program order, up to
// IssueWidth per core per cycle, subject to functional-unit counts,
// dependency readiness and MSHR availability.
func (ch *Chip) issue(coreID int, co *core) {
	budget := ch.cfg.IssueWidth
	var unitFree [isa.NumUnits]int
	unitFree[isa.UnitFX] = ch.cfg.FXUnits
	unitFree[isa.UnitFP] = ch.cfg.FPUnits
	unitFree[isa.UnitLS] = ch.cfg.LSUnits
	unitFree[isa.UnitBR] = ch.cfg.BRUnits

	// Prune expired MSHR entries lazily.
	live := co.mshr[:0]
	for _, d := range co.mshr {
		if d > ch.cycle {
			live = append(live, d)
		}
	}
	co.mshr = live

	// Age-ordered select: each round, issue the oldest unissued
	// instruction across both contexts (by decode time, with cycle-
	// parity rotation breaking ties), as an age-based issue queue
	// would.  This lets the decode-cycle share imposed by the hardware
	// priorities propagate into issue bandwidth when the window is the
	// constraint.
	stalled := [2]bool{}
	for budget > 0 && (!stalled[0] || !stalled[1]) {
		pick := -1
		var pickAge int64
		for t := 0; t < 2; t++ {
			ti := (int(ch.cycle) + t) & 1
			if stalled[ti] {
				continue
			}
			ctx := &co.ctx[ti]
			if ctx.unissued == 0 {
				stalled[ti] = true
				continue
			}
			age := ctx.ring[ctx.issueIdx].decodedAt
			if pick < 0 || age < pickAge {
				pick, pickAge = ti, age
			}
		}
		if pick < 0 {
			return
		}
		ctx := &co.ctx[pick]
		e := &ctx.ring[ctx.issueIdx]
		// In-order issue per context: the context stalls at the first
		// instruction that cannot go this cycle.
		if e.dep > 0 && e.pos >= int64(e.dep) {
			if ctx.doneTimes[(e.pos-int64(e.dep))&(depRing-1)] > ch.cycle {
				stalled[pick] = true
				continue
			}
		}
		unit := e.op.Unit()
		if unitFree[unit] == 0 {
			stalled[pick] = true
			continue
		}
		if e.op == isa.Load && ch.hier.IsL1Miss(coreID, e.addr) {
			if len(co.mshr) >= ch.cfg.MSHRs {
				stalled[pick] = true
				continue
			}
			e.doneAt = ch.cycle + ch.latency(coreID, e)
			co.mshr = append(co.mshr, e.doneAt)
			ctx.stats.L1Misses++
		} else {
			e.doneAt = ch.cycle + ch.latency(coreID, e)
		}
		ctx.doneTimes[e.pos&(depRing-1)] = e.doneAt
		e.issued = true
		ctx.issueIdx++
		if ctx.issueIdx == len(ctx.ring) {
			ctx.issueIdx = 0
		}
		ctx.unissued--
		unitFree[unit]--
		budget--
	}
}

// notePeriod widens ffMaxPeriod when this decode arbitration genuinely
// consults the cycle residue.  Stealing makes most single-thread
// situations cycle-invariant: an inactive context's shared-mode slots
// always pass to the sibling, so only a schedule contested by two active
// contexts, a throttled live thread, or a power-save thread depend on
// the absolute cycle.  Callers pre-check Period > ffMaxPeriod.
func (ch *Chip) notePeriod(co *core, inactive [2]bool) {
	switch co.alloc.Mode {
	case hwpri.ModeShared:
		if inactive[0] || inactive[1] {
			return
		}
	case hwpri.ModeThrottled:
		if inactive[co.alloc.Favored] {
			return
		}
	case hwpri.ModePowerSave:
		if inactive[0] && inactive[1] {
			return
		}
	default:
		return
	}
	ch.ffMaxPeriod = int64(co.alloc.Period)
}

// decode runs the priority-arbitrated decode stage of one core: the
// context owning this decode cycle feeds up to DecodeWidth instructions
// into the shared window.
//
// Slot accounting is strict for priorities above 1: a slot whose owner is
// merely stalled (mispredict redirect, window full) is wasted, as the
// POWER5 time-slices decode cycles by priority regardless of utilization.
// Only an *inactive* context (no stream — architecturally, a napping
// thread) forfeits its slots to the sibling, and in leftover mode
// (priority 1) the low-priority thread dynamically picks up any cycle the
// favored thread cannot use.
func (ch *Chip) decode(coreID int, co *core) {
	inactive := [2]bool{!co.ctx[0].running, !co.ctx[1].running}
	if int64(co.alloc.Period) > ch.ffMaxPeriod {
		ch.notePeriod(co, inactive)
	}
	var owner int
	if co.alloc.Mode == hwpri.ModeLeftover {
		// The priority-1 thread takes only cycles the favored thread
		// cannot *fetch* in — redirect stalls or inactivity.  Window
		// backpressure does not donate the slot: the dispatch cycle is
		// simply lost, as for any stalled owner.
		fetchIdle := [2]bool{
			inactive[0] || ch.cycle < co.ctx[0].blockedUntil,
			inactive[1] || ch.cycle < co.ctx[1].blockedUntil,
		}
		owner = co.alloc.Owner(ch.cycle, fetchIdle)
	} else {
		owner = co.alloc.Owner(ch.cycle, inactive)
	}
	if owner < 0 || ch.decodeBlocked(co, owner) {
		return
	}
	ctx := &co.ctx[owner]
	ctx.stats.DecodeCycles++
	cap := ch.cfg.WindowSize
	if co.ctx[1-owner].running && ch.cfg.ThreadWindowCap < cap {
		cap = ch.cfg.ThreadWindowCap
	}
	in := &ch.decodeIn
	for n := 0; n < ch.cfg.DecodeWidth; n++ {
		if co.windowUsed >= ch.cfg.WindowSize || ctx.count >= cap {
			return
		}
		if !ctx.stream.Next(in) {
			ctx.running = false
			if ctx.count == 0 {
				ch.active--
			}
			if ch.onEmpty != nil {
				ch.onEmpty(coreID, owner)
			}
			return
		}
		e := entry{
			op:        in.Op,
			addr:      in.Addr,
			dep:       in.Dep,
			pos:       ctx.decodePos,
			decodedAt: ch.cycle,
		}
		ctx.decodePos++
		ctx.push(e)
		co.windowUsed++
		ctx.stats.Decoded++
		switch in.Op {
		case isa.Branch:
			if !co.bp.Predict(owner, in.PC, in.Taken) {
				ctx.stats.Mispredicts++
				ctx.blockedUntil = ch.cycle + int64(ch.cfg.MispredictPenalty)
				return
			}
		case isa.OrNop:
			ctx.stats.PrioritySets++
			p := hwpri.Priority(in.Pri)
			if p.Valid() && hwpri.CanSet(ctx.priv, p) && p != ctx.prio {
				ctx.prio = p
				co.alloc = hwpri.Alloc(co.ctx[0].prio, co.ctx[1].prio)
			}
		}
	}
}

// decodeBlocked reports whether context t of core co cannot use a decode
// cycle right now.  Besides stalls and a full window, a context is
// throttled when it already holds ThreadWindowCap entries while its
// sibling is active — the POWER5 dynamic-resource-balancing behaviour.
func (ch *Chip) decodeBlocked(co *core, t int) bool {
	ctx := &co.ctx[t]
	if !ctx.running || ch.cycle < ctx.blockedUntil || co.windowUsed >= ch.cfg.WindowSize {
		return true
	}
	return co.ctx[1-t].running && ctx.count >= ch.cfg.ThreadWindowCap
}
