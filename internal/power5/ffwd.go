package power5

import (
	"encoding/binary"

	"repro/internal/isa"
)

// Fast-forward state capture for the phase-skip engine
// (internal/mpisim).  FFNorm appends the chip's normalized state — two
// equal norms guarantee identical future behavior — FFCtrs appends the
// extensive counters that keep growing while the norm recurs, and
// FFAdvance applies k windows of counter deltas while shifting every
// absolute-cycle field by dt.  The three walks MUST visit fields in the
// same order; see isa.FastForwarder for the full contract.
//
// Normalization notes (the non-obvious choices):
//
//   - cycle: consumers of the absolute cycle are the complete/issue
//     context-alternation parity (mod 2) and the decode slot schedule
//     (mod the core's allocation period, a power of two ≤ 64), so only
//     cycle mod the largest live period is captured.
//   - decodePos: its only absolute use is the warm-up dependency guard
//     e.pos >= e.dep with dep ≤ 255, so positions are captured exactly
//     below ffPosHorizon and saturated above it.
//   - doneTimes: the ring is indexed by position mod 64, so it is
//     captured rotated to the decode position (logical slot j holds the
//     completion time of position decodePos-j) with values clamped
//     relative to now — the slot *values* determine every future
//     dependency check, whoever wrote them.
//   - MSHR entries at or below the current cycle are expired: the next
//     issue pass prunes them by value, so only live entries are
//     captured (relative), and expired ones are simply shifted on
//     advance, where they remain expired.

// ffPosHorizon is the decode position beyond which the absolute
// position is behaviorally irrelevant (every dependency distance is
// ≤ 255, and the completion ring wraps at 64).
const ffPosHorizon = 4096

func ffU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func ffRel(now, at int64) uint64 {
	if at > now {
		return uint64(at - now)
	}
	return 0
}

// FFNorm appends the chip's normalized state.  It reports false when an
// installed stream does not support fast-forwarding, in which case the
// caller must fall back to exact execution.
//
// The cycle counter is captured modulo ffMaxPeriod, the largest
// decode-allocation period the chip has actually consulted in a
// cycle-dependent way (recorded by notePeriod; every period is a power
// of two dividing 64, so the maximum subsumes them all).  The modulus is
// part of the norm, so a later widening simply invalidates earlier
// matches rather than corrupting them.
func (ch *Chip) FFNorm(b []byte) ([]byte, bool) {
	b = ffU64(b, uint64(ch.ffMaxPeriod))
	b = ffU64(b, uint64(ch.cycle%ch.ffMaxPeriod))
	for _, co := range ch.cores {
		for t := range co.ctx {
			ctx := &co.ctx[t]
			if ctx.stream == nil {
				b = append(b, 0)
			} else {
				ff, ok := ctx.stream.(isa.FastForwarder)
				if !ok || !ff.FFSupported() {
					return b, false
				}
				b = append(b, 1)
				b = ff.FFNorm(b)
			}
			flags := byte(0)
			if ctx.running {
				flags |= 1
			}
			b = append(b, flags, byte(ctx.prio), byte(ctx.priv))
			b = ffU64(b, uint64(ctx.count)<<32|uint64(uint32(ctx.unissued)))
			dp := ctx.decodePos
			if dp > ffPosHorizon {
				dp = ffPosHorizon
			}
			b = ffU64(b, uint64(dp))
			b = ffU64(b, ffRel(ch.cycle, ctx.blockedUntil))
			idx := ctx.head
			for i := 0; i < ctx.count; i++ {
				e := &ctx.ring[idx]
				idx++
				if idx == len(ctx.ring) {
					idx = 0
				}
				flags := byte(0)
				if e.issued {
					flags = 1
				}
				b = append(b, byte(e.op), e.dep, flags)
				b = ffU64(b, e.addr)
				b = ffU64(b, uint64(ch.cycle-e.decodedAt))
				var done uint64
				if e.issued {
					done = ffRel(ch.cycle, e.doneAt)
				}
				b = ffU64(b, done)
				b = ffU64(b, uint64(ctx.decodePos-e.pos))
			}
			for j := int64(1); j <= depRing; j++ {
				v := ctx.doneTimes[(ctx.decodePos-j)&(depRing-1)]
				b = ffU64(b, ffRel(ch.cycle, v))
			}
		}
		b = co.bp.FFNorm(b)
		live := 0
		for _, d := range co.mshr {
			if d > ch.cycle {
				live++
			}
		}
		b = append(b, byte(live))
		for _, d := range co.mshr {
			if d > ch.cycle {
				b = ffU64(b, uint64(d-ch.cycle))
			}
		}
	}
	return ch.hier.FFNorm(b), true
}

// FFCtrs appends the chip's extensive counters, mirroring FFNorm's walk.
func (ch *Chip) FFCtrs(c []int64) []int64 {
	for _, co := range ch.cores {
		for t := range co.ctx {
			ctx := &co.ctx[t]
			if ctx.stream != nil {
				c = ctx.stream.(isa.FastForwarder).FFCtrs(c)
			}
			c = append(c, ctx.decodePos,
				ctx.stats.Decoded, ctx.stats.Completed, ctx.stats.DecodeCycles,
				ctx.stats.Mispredicts, ctx.stats.L1Misses, ctx.stats.PrioritySets)
		}
		c = co.bp.FFCtrs(c)
	}
	return ch.hier.FFCtrs(c)
}

// FFAdvance applies k windows of the per-window counter deltas d
// (consuming the chip's prefix and returning the rest) and shifts every
// absolute-cycle field, including the cycle counter itself, by dt.
func (ch *Chip) FFAdvance(k, dt int64, d []int64) []int64 {
	for _, co := range ch.cores {
		for t := range co.ctx {
			ctx := &co.ctx[t]
			if ctx.stream != nil {
				d = ctx.stream.(isa.FastForwarder).FFAdvance(k, dt, d)
			}
			shift := k * d[0]
			ctx.decodePos += shift
			ctx.stats.Decoded += k * d[1]
			ctx.stats.Completed += k * d[2]
			ctx.stats.DecodeCycles += k * d[3]
			ctx.stats.Mispredicts += k * d[4]
			ctx.stats.L1Misses += k * d[5]
			ctx.stats.PrioritySets += k * d[6]
			d = d[7:]
			ctx.blockedUntil += dt
			idx := ctx.head
			for i := 0; i < ctx.count; i++ {
				e := &ctx.ring[idx]
				idx++
				if idx == len(ctx.ring) {
					idx = 0
				}
				e.pos += shift
				e.decodedAt += dt
				e.doneAt += dt
			}
			// Re-home the completion-time ring: position p's slot is
			// p&63, and every position just moved by shift.
			if s := int(shift & (depRing - 1)); s != 0 {
				var nd [depRing]int64
				for i := 0; i < depRing; i++ {
					nd[(i+s)&(depRing-1)] = ctx.doneTimes[i]
				}
				ctx.doneTimes = nd
			}
			for i := range ctx.doneTimes {
				ctx.doneTimes[i] += dt
			}
		}
		d = co.bp.FFAdvance(k, d)
		for i := range co.mshr {
			co.mshr[i] += dt
		}
	}
	d = ch.hier.FFAdvance(k, d)
	ch.cycle += dt
	return d
}

// FFNorm appends the machine's normalized state (all chips, in order);
// false means some stream does not support fast-forwarding.
func (m *Machine) FFNorm(b []byte) ([]byte, bool) {
	ok := true
	for _, ch := range m.chips {
		if b, ok = ch.FFNorm(b); !ok {
			return b, false
		}
	}
	return b, true
}

// FFCtrs appends the machine's extensive counters.
func (m *Machine) FFCtrs(c []int64) []int64 {
	for _, ch := range m.chips {
		c = ch.FFCtrs(c)
	}
	return c
}

// FFAdvance advances every chip by k windows of deltas and dt cycles.
// It returns the unconsumed remainder of d, which callers should verify
// is empty.
func (m *Machine) FFAdvance(k, dt int64, d []int64) []int64 {
	for _, ch := range m.chips {
		d = ch.FFAdvance(k, dt, d)
	}
	return d
}
