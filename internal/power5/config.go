// Package power5 is a cycle-level performance simulator of an IBM POWER5
// chip: two cores, each a 2-way SMT core whose decode stage divides its
// cycles between the two hardware thread contexts according to the
// hardware thread priorities (internal/hwpri), with shared issue
// bandwidth, functional units, completion window, branch predictor and L2.
//
// The simulator is a timing model, not a functional emulator: it consumes
// isa.Stream instruction streams whose operation classes, dependency
// distances, addresses and branch outcomes determine timing.  It
// reproduces the three behaviours the paper's balancing mechanism rests
// on:
//
//  1. a context's throughput is bounded by its decode-cycle share, which
//     the priority difference controls exponentially (R = 2^(|X-Y|+1));
//  2. co-running contexts contend for issue slots, functional units,
//     window entries and shared caches, so favoring one context slows the
//     other super-linearly at large priority differences; and
//  3. single-thread mode (priority 0/7) hands the whole core to one
//     context.
package power5

import (
	"repro/internal/mem"
)

// Config describes the simulated chip.  The zero value is not usable; use
// DefaultConfig.
type Config struct {
	// Cores is the number of cores on the chip (POWER5: 2).
	Cores int
	// ThreadsPerCore is the SMT width per core (POWER5: 2; the priority
	// mechanism is defined for exactly 2).
	ThreadsPerCore int
	// DecodeWidth is the instructions decoded per cycle from the single
	// context that owns the decode stage that cycle (POWER5 dispatches
	// one group of up to 5 instructions per cycle).
	DecodeWidth int
	// IssueWidth is the shared per-core issue bandwidth per cycle.
	IssueWidth int
	// CompleteWidth is the shared per-core completion bandwidth per cycle.
	CompleteWidth int
	// WindowSize is the shared per-core completion-table capacity in
	// instructions (POWER5: 20 groups of 5).
	WindowSize int
	// ThreadWindowCap models the POWER5 "dynamic resource balancing"
	// logic: when both contexts are active, a single context may occupy
	// at most this many window entries before its decode is throttled,
	// preventing one thread from starving its sibling out of the shared
	// completion table.  0 disables the throttle.
	ThreadWindowCap int
	// Functional unit counts per core.
	FXUnits, FPUnits, LSUnits, BRUnits int
	// MSHRs bounds outstanding L1 misses per core.
	MSHRs int
	// MispredictPenalty is the decode stall in cycles after a
	// mispredicted branch.
	MispredictPenalty int
	// Latencies in cycles for multi-cycle operations.
	FXMulLatency, FPLatency, FPDivLatency int
	// BranchBits sizes the shared branch predictor (2^bits counters).
	BranchBits int
	// ClockHz converts cycles to seconds (POWER5: 1.65 GHz).
	ClockHz float64
	// Hier describes the memory hierarchy.  Hier.Cores is overridden to
	// match Cores.
	Hier mem.HierConfig
}

// DefaultConfig returns a POWER5-like configuration.
func DefaultConfig() Config {
	return Config{
		Cores:             2,
		ThreadsPerCore:    2,
		DecodeWidth:       5,
		IssueWidth:        5,
		CompleteWidth:     5,
		WindowSize:        64,
		ThreadWindowCap:   32,
		FXUnits:           2,
		FPUnits:           2,
		LSUnits:           2,
		BRUnits:           1,
		MSHRs:             8,
		MispredictPenalty: 7,
		FXMulLatency:      7,
		FPLatency:         6,
		FPDivLatency:      30,
		BranchBits:        14,
		ClockHz:           1.65e9,
		Hier:              mem.DefaultHierConfig(2),
	}
}

// validate normalizes and sanity-checks the configuration.
func (c *Config) validate() error {
	if c.Cores <= 0 {
		return errConfig("Cores")
	}
	if c.ThreadsPerCore != 2 {
		return errConfig("ThreadsPerCore (the POWER5 priority mechanism is defined for 2-way SMT)")
	}
	if c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CompleteWidth <= 0 {
		return errConfig("pipeline widths")
	}
	if c.WindowSize < c.DecodeWidth {
		return errConfig("WindowSize must be at least DecodeWidth")
	}
	if c.ThreadWindowCap < 0 || c.ThreadWindowCap > c.WindowSize {
		return errConfig("ThreadWindowCap must be within [0, WindowSize]")
	}
	if c.ThreadWindowCap == 0 {
		c.ThreadWindowCap = c.WindowSize
	}
	if c.FXUnits <= 0 || c.FPUnits <= 0 || c.LSUnits <= 0 || c.BRUnits <= 0 {
		return errConfig("functional unit counts")
	}
	if c.MSHRs <= 0 || c.MispredictPenalty < 0 {
		return errConfig("MSHRs/MispredictPenalty")
	}
	if c.FXMulLatency <= 0 || c.FPLatency <= 0 || c.FPDivLatency <= 0 {
		return errConfig("latencies")
	}
	if c.BranchBits < 4 || c.BranchBits > 24 {
		return errConfig("BranchBits")
	}
	if c.ClockHz <= 0 {
		return errConfig("ClockHz")
	}
	c.Hier.Cores = c.Cores
	return nil
}

type configError string

func errConfig(what string) error { return configError(what) }

func (e configError) Error() string { return "power5: invalid config: " + string(e) }
