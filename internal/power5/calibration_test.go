package power5

import (
	"testing"

	"repro/internal/hwpri"
	"repro/internal/workload"
)

// TestCalibrationReport logs the simulator's SMT characteristics: solo IPC
// per kernel kind, co-run efficiency at equal priorities, the cost of a
// spinning sibling, and the effect of each priority difference.  The
// assertions pin the broad shape the paper requires; the logged numbers
// document the calibration (see EXPERIMENTS.md).
func TestCalibrationReport(t *testing.T) {
	const cycles = 100000
	kinds := []workload.Kind{workload.FPU, workload.FXU, workload.L1, workload.L2, workload.Mem, workload.Branchy, workload.Mixed}

	solo := func(k workload.Kind) float64 {
		ch := MustNew(testConfig())
		ch.SetPriority(0, 1, hwpri.ThreadOff)
		ch.SetPriority(0, 0, hwpri.VeryHigh)
		ch.SetStream(0, 0, workload.Load{Kind: k, N: 1 << 40, Seed: 1}.Stream())
		ch.Run(cycles)
		return float64(ch.Stats(0, 0).Completed) / cycles
	}
	pair := func(ka, kb workload.Kind, pa, pb hwpri.Priority) (float64, float64) {
		ch := MustNew(testConfig())
		ch.SetPriority(0, 0, pa)
		ch.SetPriority(0, 1, pb)
		ch.SetStream(0, 0, workload.Load{Kind: ka, N: 1 << 40, Seed: 1}.Stream())
		ch.SetStream(0, 1, workload.Load{Kind: kb, N: 1 << 40, Seed: 2, Base: 1 << 32}.Stream())
		ch.Run(cycles)
		return float64(ch.Stats(0, 0).Completed) / cycles, float64(ch.Stats(0, 1).Completed) / cycles
	}

	soloIPC := map[workload.Kind]float64{}
	for _, k := range kinds {
		soloIPC[k] = solo(k)
		t.Logf("solo %-8v IPC %.3f", k, soloIPC[k])
	}

	t.Log("--- homogeneous co-run at equal priority (per-thread efficiency vs solo) ---")
	for _, k := range kinds {
		a, b := pair(k, k, hwpri.Medium, hwpri.Medium)
		eff := (a + b) / 2 / soloIPC[k]
		t.Logf("co-run %-8v per-thread IPC %.3f eff %.2f", k, (a+b)/2, eff)
		if eff > 1.02 {
			t.Errorf("%v: SMT co-run per-thread efficiency %.2f > 1, impossible", k, eff)
		}
	}

	t.Log("--- compute vs spinning sibling ---")
	for _, k := range []workload.Kind{workload.FPU, workload.FXU, workload.Mixed} {
		withSpin, _ := pair(k, workload.Spin, hwpri.Medium, hwpri.Medium)
		cost := 1 - withSpin/soloIPC[k]
		t.Logf("%-8v with spinner: IPC %.3f (spin cost %.1f%%)", k, withSpin, cost*100)
		if cost < 0.02 {
			t.Errorf("%v: spinning sibling costs only %.1f%%; the balancing mechanism needs a real cost", k, cost*100)
		}
	}

	t.Log("--- priority sweep, FXU vs FXU (favored/penalized IPC) ---")
	eqA, eqB := pair(workload.FXU, workload.FXU, hwpri.Medium, hwpri.Medium)
	t.Logf("diff 0: %.3f / %.3f", eqA, eqB)
	prev := eqB
	for d, pa := range []hwpri.Priority{hwpri.MediumHigh, hwpri.High} {
		a, b := pair(workload.FXU, workload.FXU, pa, hwpri.Medium)
		t.Logf("diff %d: %.3f / %.3f (favored +%.0f%%, penalized -%.0f%%)",
			d+1, a, b, (a/eqA-1)*100, (1-b/eqB)*100)
		if a < eqA {
			t.Errorf("diff %d: favored IPC %.3f below equal-priority %.3f", d+1, a, eqA)
		}
		if b > prev {
			t.Errorf("diff %d: penalized IPC %.3f not monotonically decreasing", d+1, b)
		}
		prev = b
	}
	for d, pb := range []hwpri.Priority{hwpri.MediumLow, hwpri.Low} {
		a, b := pair(workload.FXU, workload.FXU, hwpri.High, pb)
		t.Logf("diff %d: %.3f / %.3f (favored +%.0f%%, penalized -%.0f%%)",
			d+3, a, b, (a/eqA-1)*100, (1-b/eqB)*100)
	}
}
