package power5

import (
	"testing"

	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/workload"
)

// testConfig returns the default config with a small branch predictor to
// keep allocations cheap in unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BranchBits = 10
	return cfg
}

// runSolo executes a load alone on (core 0, thread 0) with the sibling off
// and returns completed instructions and elapsed cycles.
func runSolo(t *testing.T, load workload.Load, maxCycles int64) (int64, int64) {
	t.Helper()
	ch := MustNew(testConfig())
	ch.SetPriority(0, 1, hwpri.ThreadOff)
	ch.SetPriority(0, 0, hwpri.VeryHigh)
	ch.SetStream(0, 0, load.Stream())
	start := ch.Cycle()
	ch.RunUntil(maxCycles)
	return ch.Stats(0, 0).Completed, ch.Cycle() - start
}

// runPair co-runs two loads on core 0 with the given priorities for a
// fixed cycle budget and returns the completed instruction counts.
func runPair(t *testing.T, a, b workload.Load, pa, pb hwpri.Priority, cycles int64) (int64, int64) {
	t.Helper()
	ch := MustNew(testConfig())
	ch.SetPriority(0, 0, pa)
	ch.SetPriority(0, 1, pb)
	ch.SetStream(0, 0, a.Stream())
	ch.SetStream(0, 1, b.Stream())
	ch.Run(cycles)
	return ch.Stats(0, 0).Completed, ch.Stats(0, 1).Completed
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ThreadsPerCore = 4 },
		func(c *Config) { c.DecodeWidth = 0 },
		func(c *Config) { c.WindowSize = 1 },
		func(c *Config) { c.FPUnits = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.FPLatency = 0 },
		func(c *Config) { c.BranchBits = 2 },
		func(c *Config) { c.ClockHz = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestRunsToCompletion(t *testing.T) {
	const n = 10000
	done, cycles := runSolo(t, workload.Load{Kind: workload.FXU, N: n, Seed: 1}, 1<<22)
	if done != n {
		t.Fatalf("completed %d of %d instructions", done, n)
	}
	if cycles <= 0 || cycles > 10*n {
		t.Fatalf("unreasonable cycle count %d for %d instructions", cycles, n)
	}
	ipc := float64(done) / float64(cycles)
	if ipc < 0.3 || ipc > 5 {
		t.Errorf("solo FXU IPC = %.2f, outside sane range", ipc)
	}
}

func TestAllIdleAfterCompletion(t *testing.T) {
	ch := MustNew(testConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 100, Seed: 1}.Stream())
	ch.RunUntil(1 << 20)
	if !ch.AllIdle() {
		t.Error("chip not idle after the only stream finished")
	}
	if got := ch.Stats(0, 0).Completed; got != 100 {
		t.Errorf("completed %d, want 100", got)
	}
}

func TestOnEmptyCallback(t *testing.T) {
	ch := MustNew(testConfig())
	var fired []int
	ch.OnEmpty(func(core, thread int) {
		fired = append(fired, core*2+thread)
		if len(fired) == 1 {
			// Install a second stream from inside the callback.
			ch.SetStream(core, thread, workload.Load{Kind: workload.FXU, N: 50, Seed: 2}.Stream())
		}
	})
	ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 50, Seed: 1}.Stream())
	ch.RunUntil(1 << 20)
	if len(fired) != 2 {
		t.Fatalf("OnEmpty fired %d times, want 2", len(fired))
	}
	if got := ch.Stats(0, 0).Completed; got != 100 {
		t.Errorf("completed %d, want 100 across both streams", got)
	}
}

func TestHaltStopsRun(t *testing.T) {
	ch := MustNew(testConfig())
	ch.OnEmpty(func(core, thread int) { ch.Halt() })
	ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 100, Seed: 1}.Stream())
	ch.SetStream(0, 1, workload.Load{Kind: workload.Spin, Seed: 2}.Stream())
	ran := ch.RunUntil(1 << 30)
	if !ch.Halted() {
		t.Error("chip did not report halt")
	}
	if ran >= 1<<30 {
		t.Error("Halt did not stop the run early")
	}
}

// TestEqualPrioritiesFair: two identical compute streams at equal priority
// must progress at (nearly) the same rate.
func TestEqualPrioritiesFair(t *testing.T) {
	la := workload.Load{Kind: workload.FXU, Seed: 1, Base: 0}
	lb := workload.Load{Kind: workload.FXU, Seed: 1, Base: 1 << 30}
	la.N, lb.N = 1<<40, 1<<40 // effectively unbounded
	a, b := runPair(t, la, lb, hwpri.Medium, hwpri.Medium, 50000)
	ratio := float64(a) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("equal-priority progress ratio %.3f, want ~1.0 (a=%d b=%d)", ratio, a, b)
	}
}

// TestPriorityFavorsThread: raising one thread's priority must speed it up
// and slow the sibling, monotonically in the difference.
func TestPriorityFavorsThread(t *testing.T) {
	mk := func(seed uint64, base uint64) workload.Load {
		return workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: seed, Base: base}
	}
	const cycles = 40000
	prevA, prevB := int64(0), int64(1<<62)
	for _, pa := range []hwpri.Priority{4, 5, 6} {
		a, b := runPair(t, mk(1, 0), mk(1, 1<<30), pa, hwpri.Medium, cycles)
		if a < prevA {
			t.Errorf("favored thread slowed down at priority %d: %d < %d", pa, a, prevA)
		}
		if b > prevB {
			t.Errorf("penalized thread sped up at priority %d: %d > %d", pa, b, prevB)
		}
		if pa > hwpri.Medium && a <= b {
			t.Errorf("priority %d vs 4: favored %d not ahead of penalized %d", pa, a, b)
		}
		prevA, prevB = a, b
	}
}

// TestExponentialPenalty reproduces the Section VII-A Case D observation:
// the penalized thread's slowdown grows super-linearly (roughly following
// the 1/R decode share) with the priority difference.
func TestExponentialPenalty(t *testing.T) {
	mk := func(base uint64) workload.Load {
		return workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1, Base: base}
	}
	const cycles = 60000
	_, base := runPair(t, mk(0), mk(1<<30), hwpri.Medium, hwpri.Medium, cycles)
	var rates []float64
	for _, pa := range []hwpri.Priority{5, 6} {
		_, b := runPair(t, mk(0), mk(1<<30), pa, hwpri.MediumLow, cycles)
		rates = append(rates, float64(b)/float64(base))
	}
	// Differences 2 and 3: static shares 1/8 and 1/16 of decode.  The
	// penalized thread must be well below half its equal-priority rate,
	// and each extra step must cost at least another ~1.5x.
	if rates[0] > 0.5 {
		t.Errorf("diff-2 penalized rate %.2f of baseline, want < 0.5", rates[0])
	}
	if rates[1] > rates[0]/1.4 {
		t.Errorf("diff-3 rate %.3f not well below diff-2 rate %.3f", rates[1], rates[0])
	}
}

// TestSingleThreadMode: with the sibling off, a thread must run faster
// than when co-running at equal priorities.
func TestSingleThreadMode(t *testing.T) {
	l := workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1}
	const cycles = 40000
	ch := MustNew(testConfig())
	ch.SetPriority(0, 1, hwpri.ThreadOff)
	ch.SetPriority(0, 0, hwpri.VeryHigh)
	ch.SetStream(0, 0, l.Stream())
	ch.Run(cycles)
	st := ch.Stats(0, 0).Completed

	co, _ := runPair(t, l, workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1, Base: 1 << 30},
		hwpri.Medium, hwpri.Medium, cycles)
	if st <= co {
		t.Errorf("ST mode completed %d, not faster than SMT co-run %d", st, co)
	}
}

// TestPowerSaveMode: both threads at priority 1 make almost no progress
// (1 of 64 decode cycles each).
func TestPowerSaveMode(t *testing.T) {
	la := workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1}
	lb := workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1, Base: 1 << 30}
	const cycles = 64000
	a, b := runPair(t, la, lb, hwpri.VeryLow, hwpri.VeryLow, cycles)
	// Upper bound: 5 instructions per 64 cycles each.
	max := int64(cycles/64*5 + 100)
	if a > max || b > max {
		t.Errorf("power-save progress a=%d b=%d exceeds decode bound %d", a, b, max)
	}
	if a == 0 || b == 0 {
		t.Error("power-save mode must still make some progress")
	}
}

// TestThrottledMode: priority 0 vs 1 gives the survivor 1 of 32 cycles.
func TestThrottledMode(t *testing.T) {
	ch := MustNew(testConfig())
	ch.SetPriority(0, 0, hwpri.ThreadOff)
	ch.SetPriority(0, 1, hwpri.VeryLow)
	ch.SetStream(0, 1, workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1}.Stream())
	const cycles = 32000
	ch.Run(cycles)
	got := ch.Stats(0, 1).Completed
	max := int64(cycles/32*5 + 100)
	if got > max {
		t.Errorf("throttled progress %d exceeds bound %d", got, max)
	}
	if got == 0 {
		t.Error("throttled thread must still progress")
	}
}

// TestLeftoverMode: a priority-1 thread only gets cycles its sibling
// cannot use, so it crawls while the sibling runs at full speed.
func TestLeftoverMode(t *testing.T) {
	la := workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1}
	lb := workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1, Base: 1 << 30}
	const cycles = 40000
	a, b := runPair(t, la, lb, hwpri.Medium, hwpri.VeryLow, cycles)
	if b*5 > a {
		t.Errorf("leftover thread completed %d, sibling %d; want sibling >> leftover", b, a)
	}
}

// TestOrNopPriorityChange: a user-level or-nop can move priority within
// {2,3,4} but not reach supervisor levels.
func TestOrNopPriorityChange(t *testing.T) {
	ch := MustNew(testConfig())
	s := isa.Concat(
		isa.PrioritySet(uint8(hwpri.Low)),
		isa.PrioritySet(uint8(hwpri.High)), // must be ignored in problem state
		workload.Load{Kind: workload.FXU, N: 20, Seed: 1}.Stream(),
	)
	ch.SetStream(0, 0, s)
	ch.RunUntil(10000)
	if got := ch.Priority(0, 0); got != hwpri.Low {
		t.Errorf("priority after user or-nops = %v, want low", got)
	}
	if got := ch.Stats(0, 0).PrioritySets; got != 2 {
		t.Errorf("PrioritySets = %d, want 2", got)
	}
}

func TestOrNopSupervisorPrivilege(t *testing.T) {
	ch := MustNew(testConfig())
	ch.SetPrivilege(0, 0, hwpri.Supervisor)
	s := isa.Concat(
		isa.PrioritySet(uint8(hwpri.High)),
		workload.Load{Kind: workload.FXU, N: 20, Seed: 1}.Stream(),
	)
	ch.SetStream(0, 0, s)
	ch.RunUntil(10000)
	if got := ch.Priority(0, 0); got != hwpri.High {
		t.Errorf("priority after supervisor or-nop = %v, want high", got)
	}
}

// TestMispredictsStallDecode: a branchy kernel with random outcomes must
// complete more slowly than the same volume of plain integer work.
func TestMispredictsStallDecode(t *testing.T) {
	const n = 20000
	_, fxCycles := runSolo(t, workload.Load{Kind: workload.FXU, N: n, Seed: 1}, 1<<22)
	_, brCycles := runSolo(t, workload.Load{Kind: workload.Branchy, N: n, Seed: 1}, 1<<22)
	if brCycles <= fxCycles {
		t.Errorf("branchy kernel (%d cycles) not slower than FXU kernel (%d cycles)", brCycles, fxCycles)
	}
	ch := MustNew(testConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.Branchy, N: n, Seed: 1}.Stream())
	ch.RunUntil(1 << 22)
	if ch.Stats(0, 0).Mispredicts == 0 {
		t.Error("branchy kernel recorded no mispredicts")
	}
}

// TestMemoryBoundKernelSlow: the Mem kernel's IPC must be far below the
// L1-resident kernel's.
func TestMemoryBoundKernelSlow(t *testing.T) {
	const n = 20000
	_, l1Cycles := runSolo(t, workload.Load{Kind: workload.L1, N: n, Seed: 1}, 1<<24)
	_, memCycles := runSolo(t, workload.Load{Kind: workload.Mem, N: n, Seed: 1}, 1<<24)
	if memCycles < 2*l1Cycles {
		t.Errorf("mem kernel %d cycles, want at least 2x the L1 kernel's %d", memCycles, l1Cycles)
	}
	ch := MustNew(testConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.Mem, N: n, Seed: 1}.Stream())
	ch.RunUntil(1 << 24)
	if ch.Stats(0, 0).L1Misses == 0 {
		t.Error("mem kernel recorded no L1 misses")
	}
}

// TestMemoryLatencyTolerance: a memory-bound thread loses much less from
// a low priority than a compute-bound thread does, because its speed is
// latency-limited, not decode-limited (Section IV: "non-HPC applications
// may benefit differently from re-assigning hardware resources or not at
// all").
func TestMemoryLatencyTolerance(t *testing.T) {
	const cycles = 120000
	mkFX := func(base uint64) workload.Load {
		return workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1, Base: base}
	}
	mkMem := func(base uint64) workload.Load {
		return workload.Load{Kind: workload.Mem, N: 1 << 40, Seed: 1, Base: base}
	}
	_, fxEq := runPair(t, mkFX(0), mkFX(1<<30), hwpri.Medium, hwpri.Medium, cycles)
	_, fxPen := runPair(t, mkFX(0), mkFX(1<<30), hwpri.High, hwpri.Medium, cycles)
	_, memEq := runPair(t, mkFX(0), mkMem(1<<30), hwpri.Medium, hwpri.Medium, cycles)
	_, memPen := runPair(t, mkFX(0), mkMem(1<<30), hwpri.High, hwpri.Medium, cycles)
	fxLoss := 1 - float64(fxPen)/float64(fxEq)
	memLoss := 1 - float64(memPen)/float64(memEq)
	if memLoss >= fxLoss {
		t.Errorf("memory-bound loss %.2f not below compute-bound loss %.2f", memLoss, fxLoss)
	}
}

// TestDeterminism: identical runs produce identical cycle counts and
// counters.
func TestDeterminism(t *testing.T) {
	run := func() (int64, ContextStats) {
		ch := MustNew(testConfig())
		ch.SetStream(0, 0, workload.Load{Kind: workload.Mixed, N: 30000, Seed: 9}.Stream())
		ch.SetStream(0, 1, workload.Load{Kind: workload.L2, N: 30000, Seed: 5, Base: 1 << 30}.Stream())
		ch.SetPriority(0, 0, hwpri.MediumHigh)
		ch.RunUntil(1 << 24)
		return ch.Cycle(), ch.Stats(0, 0)
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("non-deterministic: cycles %d vs %d, stats %+v vs %+v", c1, c2, s1, s2)
	}
}

// TestCoresIndependent: activity on core 1 does not change core 0's
// timing beyond shared-cache effects; with disjoint tiny footprints the
// cycle counts must match exactly.
func TestCoresIndependent(t *testing.T) {
	// Measure the cycle at which core 0's stream runs dry, with core 1
	// idle vs busy on a disjoint footprint: the times must match exactly
	// because cores only share the L2/L3 (and the footprints fit L1).
	finishCycle := func(withCore1 bool) (int64, int64) {
		ch := MustNew(testConfig())
		ch.SetPriority(0, 1, hwpri.ThreadOff)
		ch.SetPriority(0, 0, hwpri.VeryHigh)
		ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 5000, Seed: 1}.Stream())
		if withCore1 {
			ch.SetStream(1, 0, workload.Load{Kind: workload.FXU, N: 40000, Seed: 3, Base: 1 << 32}.Stream())
		}
		var core0Done int64 = -1
		ch.OnEmpty(func(core, thread int) {
			if core == 0 && core0Done < 0 {
				core0Done = ch.Cycle()
			}
		})
		ch.RunUntil(1 << 22)
		return core0Done, ch.Stats(0, 0).Completed
	}
	soloCycle, soloDone := finishCycle(false)
	busyCycle, busyDone := finishCycle(true)
	if soloDone != busyDone {
		t.Fatalf("core 0 completed %d with core 1 busy, want %d", busyDone, soloDone)
	}
	if soloCycle != busyCycle {
		t.Errorf("core 0 finish cycle %d with core 1 busy, %d solo", busyCycle, soloCycle)
	}
}

// TestSpinInterference: a spinning sibling at equal priority costs the
// compute thread some throughput; lowering the spinner's priority
// recovers most of it.  This is the paper's central mechanism.
func TestSpinInterference(t *testing.T) {
	const cycles = 60000
	compute := workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1}
	spin := workload.Load{Kind: workload.Spin, Seed: 2, Base: 1 << 30}

	ch := MustNew(testConfig())
	ch.SetPriority(0, 1, hwpri.ThreadOff)
	ch.SetPriority(0, 0, hwpri.VeryHigh)
	ch.SetStream(0, 0, compute.Stream())
	ch.Run(cycles)
	alone := ch.Stats(0, 0).Completed

	withSpin, _ := runPair(t, compute, spin, hwpri.Medium, hwpri.Medium, cycles)
	demoted, _ := runPair(t, compute, spin, hwpri.High, hwpri.Medium, cycles)

	if withSpin >= alone {
		t.Errorf("spinning sibling costs nothing: alone %d, with spin %d", alone, withSpin)
	}
	if demoted <= withSpin {
		t.Errorf("raising priority over a spinner did not help: %d <= %d", demoted, withSpin)
	}
}

func TestStatsAccessors(t *testing.T) {
	ch := MustNew(testConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 100, Seed: 1}.Stream())
	ch.RunUntil(1 << 20)
	st := ch.Stats(0, 0)
	if st.Decoded != 100 || st.Completed != 100 {
		t.Errorf("decoded %d completed %d, want 100/100", st.Decoded, st.Completed)
	}
	if st.DecodeCycles == 0 {
		t.Error("DecodeCycles not counted")
	}
	if ipc := st.IPC(ch.Cycle()); ipc <= 0 {
		t.Errorf("IPC = %f", ipc)
	}
	if st.IPC(0) != 0 {
		t.Error("IPC over zero cycles must be 0")
	}
	if ch.Seconds(int64(ch.Config().ClockHz)) != 1.0 {
		t.Error("Seconds conversion wrong")
	}
	if ch.InFlight(0, 0) != 0 {
		t.Error("in-flight after idle must be 0")
	}
	if ch.Running(0, 0) {
		t.Error("context still running after stream end")
	}
	if ch.Allocation(0).Mode != hwpri.ModeShared {
		t.Error("default allocation mode must be shared")
	}
	if ch.Predictor(0) == nil || ch.Hierarchy() == nil {
		t.Error("accessors returned nil")
	}
}

func TestBadContextPanics(t *testing.T) {
	ch := MustNew(testConfig())
	for _, f := range []func(){
		func() { ch.SetStream(2, 0, nil) },
		func() { ch.SetPriority(0, 2, hwpri.Medium) },
		func() { ch.SetPriority(0, 0, hwpri.Priority(9)) },
		func() { ch.Stats(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
