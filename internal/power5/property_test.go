package power5

import (
	"testing"
	"testing/quick"

	"repro/internal/hwpri"
	"repro/internal/workload"
)

// Property: instruction conservation — everything decoded is eventually
// completed once the chip drains, for any kernel kind, load size and
// priority pair.
func TestPropInstructionConservation(t *testing.T) {
	f := func(rk, rp uint8, rn uint16) bool {
		kind := workload.Kind(rk % 7) // all finite kinds
		pa := hwpri.Priority(rp%5 + 2)
		pb := hwpri.Priority((rp/5)%5 + 2)
		n := int64(rn%2000) + 1
		cfg := testConfig()
		ch := MustNew(cfg)
		ch.SetPriority(0, 0, pa)
		ch.SetPriority(0, 1, pb)
		ch.SetStream(0, 0, workload.Load{Kind: kind, N: n, Seed: 1}.Stream())
		ch.SetStream(0, 1, workload.Load{Kind: kind, N: n, Seed: 2, Base: 1 << 32}.Stream())
		ch.RunUntil(1 << 24)
		s0, s1 := ch.Stats(0, 0), ch.Stats(0, 1)
		return s0.Decoded == n && s0.Completed == n &&
			s1.Decoded == n && s1.Completed == n &&
			ch.AllIdle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: in-flight counts never exceed the window, and per-context
// occupancy never exceeds the thread cap while the sibling runs.
func TestPropWindowBounds(t *testing.T) {
	cfg := testConfig()
	ch := MustNew(cfg)
	ch.SetStream(0, 0, workload.Load{Kind: workload.Mixed, N: 1 << 40, Seed: 1}.Stream())
	ch.SetStream(0, 1, workload.Load{Kind: workload.Spin, Seed: 2, Base: 1 << 32}.Stream())
	for i := 0; i < 20000; i++ {
		ch.Step()
		in0, in1 := ch.InFlight(0, 0), ch.InFlight(0, 1)
		if in0+in1 > cfg.WindowSize {
			t.Fatalf("cycle %d: window overflow %d+%d > %d", i, in0, in1, cfg.WindowSize)
		}
		if in0 > cfg.ThreadWindowCap || in1 > cfg.ThreadWindowCap {
			t.Fatalf("cycle %d: thread cap exceeded: %d/%d > %d", i, in0, in1, cfg.ThreadWindowCap)
		}
	}
}

// Property: priority changes mid-run never lose instructions.
func TestPropMidRunPriorityChanges(t *testing.T) {
	f := func(changes []uint8) bool {
		const n = 4000
		ch := MustNew(testConfig())
		ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: n, Seed: 1}.Stream())
		ch.SetStream(0, 1, workload.Load{Kind: workload.FXU, N: n, Seed: 2, Base: 1 << 32}.Stream())
		for _, c := range changes {
			ch.Run(200)
			ch.SetPriority(0, int(c)%2, hwpri.Priority(c%5+2))
		}
		ch.RunUntil(1 << 24)
		return ch.Stats(0, 0).Completed == n && ch.Stats(0, 1).Completed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the throttled and power-save decode bounds hold for any
// runtime length.
func TestPropLowPowerBounds(t *testing.T) {
	f := func(rc uint16) bool {
		cycles := int64(rc)%30000 + 1000
		ch := MustNew(testConfig())
		ch.SetPriority(0, 0, hwpri.VeryLow)
		ch.SetPriority(0, 1, hwpri.VeryLow)
		ch.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 1}.Stream())
		ch.SetStream(0, 1, workload.Load{Kind: workload.FXU, N: 1 << 40, Seed: 2, Base: 1 << 32}.Stream())
		ch.Run(cycles)
		bound := (cycles/64 + 1) * int64(ch.Config().DecodeWidth)
		return ch.Stats(0, 0).Decoded <= bound && ch.Stats(0, 1).Decoded <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTSRInterface(t *testing.T) {
	ch := MustNew(testConfig())
	if got := ch.ReadTSR(0, 0).Priority(); got != hwpri.Medium {
		t.Fatalf("initial TSR priority = %v", got)
	}
	// User-level mtspr: 3 works, 6 is silently ignored.
	if !ch.WriteTSR(0, 0, hwpri.TSRFromPriority(hwpri.MediumLow)) {
		t.Error("user mtspr of 3 rejected")
	}
	if ch.WriteTSR(0, 0, hwpri.TSRFromPriority(hwpri.High)) {
		t.Error("user mtspr of 6 accepted")
	}
	if got := ch.Priority(0, 0); got != hwpri.MediumLow {
		t.Errorf("priority = %v, want medium-low", got)
	}
	// Supervisor reaches 6, and the allocation updates.
	ch.SetPrivilege(0, 0, hwpri.Supervisor)
	if !ch.WriteTSR(0, 0, hwpri.TSRFromPriority(hwpri.High)) {
		t.Error("supervisor mtspr of 6 rejected")
	}
	if got := ch.Allocation(0); got.Favored != 0 {
		t.Errorf("allocation not updated after TSR write: %+v", got)
	}
	if got := ch.ReadTSR(0, 0).Priority(); got != hwpri.High {
		t.Errorf("TSR readback = %v, want high", got)
	}
}
