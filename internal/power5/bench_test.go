package power5

import (
	"testing"

	"repro/internal/workload"
)

// benchChip builds a fully-loaded chip: both cores dual-threaded with
// distinct kernel mixes, the configuration the per-cycle loop pays most
// for (every stage busy on every context).
func benchChip(b *testing.B) *Chip {
	b.Helper()
	ch := MustNew(DefaultConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.Mixed, N: 1 << 62, Seed: 1}.Stream())
	ch.SetStream(0, 1, workload.Load{Kind: workload.FPU, N: 1 << 62, Seed: 2, Base: 1 << 32}.Stream())
	ch.SetStream(1, 0, workload.Load{Kind: workload.L2, N: 1 << 62, Seed: 3, Base: 2 << 32}.Stream())
	ch.SetStream(1, 1, workload.Load{Kind: workload.Branchy, Seed: 4, N: 1 << 62, Base: 3 << 32}.Stream())
	return ch
}

// BenchmarkChipCycle measures the per-cycle cost of the fully-loaded
// chip — the simulator's innermost loop.  Run with -benchmem: the loop
// must be allocation-free (0 allocs/op), and with -cpuprofile to see
// the stage breakdown (see docs/perf.md for the recipe).
func BenchmarkChipCycle(b *testing.B) {
	ch := benchChip(b)
	b.ResetTimer()
	b.ReportAllocs()
	ch.Run(int64(b.N))
}

// BenchmarkChipCycleIdleSibling measures the same loop with one rank
// per core (the paper's ST placements): the sibling contexts never run,
// so the idle-core and idle-context fast paths should make this
// substantially cheaper than the fully-loaded cycle.
func BenchmarkChipCycleIdleSibling(b *testing.B) {
	ch := MustNew(DefaultConfig())
	ch.SetStream(0, 0, workload.Load{Kind: workload.Mixed, N: 1 << 62, Seed: 1}.Stream())
	ch.SetStream(1, 0, workload.Load{Kind: workload.L2, N: 1 << 62, Seed: 3, Base: 2 << 32}.Stream())
	b.ResetTimer()
	b.ReportAllocs()
	ch.Run(int64(b.N))
}
