package power5

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Topology describes a machine built from POWER5 chips: Chips identical
// chips, each with CoresPerChip cores of SMTWays hardware contexts.  The
// paper's OpenPower 710 is the 1×2×2 default; larger nodes (the p5-575's
// 8-chip boards, multi-module drawers) are expressed by raising Chips and
// CoresPerChip.  SMTWays must be 2: the priority mechanism the paper (and
// this reproduction) builds on is defined for exactly two sibling
// contexts per core.
//
// Logical CPUs are numbered chip-major: CPU = (chip*CoresPerChip +
// core)*SMTWays + context, so CPUs 2k and 2k+1 always share a core and
// compete for its decode cycles, exactly as on the single-chip machine.
type Topology struct {
	// Chips is the number of chips (each with its own shared L2/L3).
	Chips int
	// CoresPerChip is the number of cores per chip.
	CoresPerChip int
	// SMTWays is the SMT width per core (must be 2).
	SMTWays int
}

// Topology size bounds: generous for sweeps and simulation, tight enough
// that a hostile flag value cannot allocate an absurd machine.
const (
	maxChips        = 64
	maxCoresPerChip = 64
)

// DefaultTopology returns the paper's machine: one chip, two cores,
// 2-way SMT — four hardware contexts.
func DefaultTopology() Topology { return Topology{Chips: 1, CoresPerChip: 2, SMTWays: 2} }

// IsZero reports whether t is the zero value (meaning "use the default").
func (t Topology) IsZero() bool { return t == Topology{} }

// Validate checks the topology's shape.
func (t Topology) Validate() error {
	if t.Chips < 1 || t.Chips > maxChips {
		return fmt.Errorf("power5: topology needs 1..%d chips, got %d", maxChips, t.Chips)
	}
	if t.CoresPerChip < 1 || t.CoresPerChip > maxCoresPerChip {
		return fmt.Errorf("power5: topology needs 1..%d cores per chip, got %d", maxCoresPerChip, t.CoresPerChip)
	}
	if t.SMTWays != 2 {
		return fmt.Errorf("power5: topology needs SMT width 2 (the priority mechanism is defined for 2-way SMT), got %d", t.SMTWays)
	}
	return nil
}

// Cores returns the total core count across all chips.
func (t Topology) Cores() int { return t.Chips * t.CoresPerChip }

// Contexts returns the total hardware context (logical CPU) count.
func (t Topology) Contexts() int { return t.Cores() * t.SMTWays }

// String renders the topology as "chips x cores x smt", e.g. "2x2x2".
// ParseTopology accepts the same form, so String round-trips.
func (t Topology) String() string {
	return fmt.Sprintf("%dx%dx%d", t.Chips, t.CoresPerChip, t.SMTWays)
}

// ParseTopology parses a "chips x cores x smt" string such as "2x2x2"
// (case-insensitive x, optional spaces).  The parsed topology is
// validated, so a successful parse always yields a usable topology.
func ParseTopology(s string) (Topology, error) {
	fields := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(fields) != 3 {
		return Topology{}, fmt.Errorf("power5: topology %q: want chips x cores x smt, e.g. 2x2x2", s)
	}
	var dims [3]int
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return Topology{}, fmt.Errorf("power5: topology %q: bad dimension %q", s, f)
		}
		dims[i] = v
	}
	t := Topology{Chips: dims[0], CoresPerChip: dims[1], SMTWays: dims[2]}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// CPUOf returns the logical CPU of a (chip, core, context) triple.
func (t Topology) CPUOf(chip, core, context int) (int, error) {
	if chip < 0 || chip >= t.Chips {
		return 0, fmt.Errorf("power5: chip %d outside topology %s", chip, t)
	}
	if core < 0 || core >= t.CoresPerChip {
		return 0, fmt.Errorf("power5: core %d outside topology %s", core, t)
	}
	if context < 0 || context >= t.SMTWays {
		return 0, fmt.Errorf("power5: context %d outside topology %s", context, t)
	}
	return (chip*t.CoresPerChip+core)*t.SMTWays + context, nil
}

// Locate returns the (chip, local core, context) triple of a logical CPU.
// The CPU must be in [0, Contexts()).
func (t Topology) Locate(cpu int) (chip, core, context int) {
	context = cpu % t.SMTWays
	g := cpu / t.SMTWays
	return g / t.CoresPerChip, g % t.CoresPerChip, context
}

// CoreOf returns the global core index of a logical CPU.
func (t Topology) CoreOf(cpu int) int { return cpu / t.SMTWays }

// ThreadOf returns the context index of a logical CPU within its core.
func (t Topology) ThreadOf(cpu int) int { return cpu % t.SMTWays }

// ChipOf returns the chip index of a logical CPU.
func (t Topology) ChipOf(cpu int) int { return cpu / (t.SMTWays * t.CoresPerChip) }

// ChipOfCore returns the chip index of a global core.
func (t Topology) ChipOfCore(core int) int { return core / t.CoresPerChip }

// SiblingCPU returns the logical CPU sharing a core with cpu (2-way SMT).
func (t Topology) SiblingCPU(cpu int) int { return cpu ^ 1 }

// Machine is a multi-chip POWER5 node: Topology.Chips identical Chips
// advanced in lockstep, each with its own private memory hierarchy
// (per-chip shared L2/L3 — the contention domain internal/mem models).
// Cores are addressed by a global index, chip-major: global core g lives
// on chip g/CoresPerChip as local core g%CoresPerChip.
//
// A single-chip Machine delegates to the underlying Chip, so the default
// topology is cycle- and allocation-identical to driving a Chip directly.
type Machine struct {
	topo   Topology
	chips  []*Chip
	halted bool
}

// NewMachine builds a machine of topo.Chips chips, each configured by
// cfg with Cores overridden to topo.CoresPerChip (and its own memory
// hierarchy sized accordingly).
func NewMachine(topo Topology, cfg Config) (*Machine, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{topo: topo}
	for i := 0; i < topo.Chips; i++ {
		ccfg := cfg
		ccfg.Cores = topo.CoresPerChip
		ccfg.ThreadsPerCore = topo.SMTWays
		ch, err := New(ccfg)
		if err != nil {
			return nil, err
		}
		m.chips = append(m.chips, ch)
	}
	return m, nil
}

// WrapChip wraps an existing single chip as a one-chip Machine, deriving
// the topology from the chip's configuration.
func WrapChip(ch *Chip) *Machine {
	cfg := ch.Config()
	return &Machine{
		topo:  Topology{Chips: 1, CoresPerChip: cfg.Cores, SMTWays: cfg.ThreadsPerCore},
		chips: []*Chip{ch},
	}
}

// Topology returns the machine topology.
func (m *Machine) Topology() Topology { return m.topo }

// NumChips returns the chip count.
func (m *Machine) NumChips() int { return len(m.chips) }

// Chip returns chip i (for per-chip statistics).
func (m *Machine) Chip(i int) *Chip { return m.chips[i] }

// Config returns the per-chip configuration.
func (m *Machine) Config() Config { return m.chips[0].Config() }

// route translates a global core index to its chip and local core.
func (m *Machine) route(globalCore int) (*Chip, int) {
	if globalCore < 0 || globalCore >= m.topo.Cores() {
		panic(fmt.Sprintf("power5: no global core %d in topology %s", globalCore, m.topo))
	}
	return m.chips[globalCore/m.topo.CoresPerChip], globalCore % m.topo.CoresPerChip
}

// Cycle returns the current cycle number (chips run in lockstep).
func (m *Machine) Cycle() int64 { return m.chips[0].Cycle() }

// Seconds converts a cycle count to seconds at the configured clock.
func (m *Machine) Seconds(cycles int64) float64 { return m.chips[0].Seconds(cycles) }

// Halt makes RunUntil return at the end of the current machine cycle.
// It may be called from an OnEmpty handler.
func (m *Machine) Halt() {
	m.halted = true
	for _, ch := range m.chips {
		ch.Halt()
	}
}

// AllIdle reports whether every chip is idle.
func (m *Machine) AllIdle() bool {
	for _, ch := range m.chips {
		if !ch.AllIdle() {
			return false
		}
	}
	return true
}

// RunUntil advances all chips in lockstep until the given cycle number,
// stopping early on Halt or full idleness.  It returns the cycles run.
func (m *Machine) RunUntil(target int64) int64 {
	if len(m.chips) == 1 {
		return m.chips[0].RunUntil(target)
	}
	m.halted = false
	start := m.Cycle()
	for m.Cycle() < target && !m.halted {
		for _, ch := range m.chips {
			ch.Step()
		}
		if m.AllIdle() {
			break
		}
	}
	return m.Cycle() - start
}

// Run advances the machine n cycles (see RunUntil).
func (m *Machine) Run(n int64) int64 { return m.RunUntil(m.Cycle() + n) }

// OnEmpty registers the stream-exhausted callback; the core argument is
// the global core index.
func (m *Machine) OnEmpty(f func(globalCore, thread int)) {
	for i, ch := range m.chips {
		base := i * m.topo.CoresPerChip
		ch.OnEmpty(func(core, thread int) { f(base+core, thread) })
	}
}

// SetStream installs s as the instruction stream of a context; a nil
// stream idles the context.
func (m *Machine) SetStream(globalCore, thread int, s isa.Stream) {
	ch, c := m.route(globalCore)
	ch.SetStream(c, thread, s)
}

// Running reports whether the context currently has a stream.
func (m *Machine) Running(globalCore, thread int) bool {
	ch, c := m.route(globalCore)
	return ch.Running(c, thread)
}

// SetPriority sets the hardware thread priority of a context.
func (m *Machine) SetPriority(globalCore, thread int, p hwpri.Priority) {
	ch, c := m.route(globalCore)
	ch.SetPriority(c, thread, p)
}

// Priority returns the hardware thread priority of a context.
func (m *Machine) Priority(globalCore, thread int) hwpri.Priority {
	ch, c := m.route(globalCore)
	return ch.Priority(c, thread)
}

// SetPrivilege sets the privilege level of a context.
func (m *Machine) SetPrivilege(globalCore, thread int, pr hwpri.Privilege) {
	ch, c := m.route(globalCore)
	ch.SetPrivilege(c, thread, pr)
}

// Allocation returns the current decode allocation of a global core.
func (m *Machine) Allocation(globalCore int) hwpri.Allocation {
	ch, c := m.route(globalCore)
	return ch.Allocation(c)
}

// Stats returns a snapshot of a context's counters.
func (m *Machine) Stats(globalCore, thread int) ContextStats {
	ch, c := m.route(globalCore)
	return ch.Stats(c, thread)
}

// TouchMemory brings addr into the global core's chip-local cache
// hierarchy without consuming simulated time (see Chip.TouchMemory).
func (m *Machine) TouchMemory(globalCore int, addr uint64) {
	ch, c := m.route(globalCore)
	ch.TouchMemory(c, addr)
}

// Hierarchy returns chip i's memory hierarchy (for statistics).
func (m *Machine) Hierarchy(i int) *mem.Hierarchy { return m.chips[i].Hierarchy() }
