package power5

import (
	"testing"

	"repro/internal/workload"
)

func TestTopologyMath(t *testing.T) {
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	if topo.Cores() != 4 || topo.Contexts() != 8 {
		t.Fatalf("Cores/Contexts = %d/%d, want 4/8", topo.Cores(), topo.Contexts())
	}
	for cpu := 0; cpu < topo.Contexts(); cpu++ {
		chip, core, ctx := topo.Locate(cpu)
		back, err := topo.CPUOf(chip, core, ctx)
		if err != nil {
			t.Fatalf("CPUOf(%d,%d,%d): %v", chip, core, ctx, err)
		}
		if back != cpu {
			t.Errorf("CPU %d round-trips to %d", cpu, back)
		}
		if topo.CoreOf(cpu) != chip*topo.CoresPerChip+core {
			t.Errorf("CoreOf(%d) = %d, want %d", cpu, topo.CoreOf(cpu), chip*topo.CoresPerChip+core)
		}
		if topo.ChipOf(cpu) != chip {
			t.Errorf("ChipOf(%d) = %d, want %d", cpu, topo.ChipOf(cpu), chip)
		}
		sib := topo.SiblingCPU(cpu)
		if topo.CoreOf(sib) != topo.CoreOf(cpu) || sib == cpu {
			t.Errorf("SiblingCPU(%d) = %d not a distinct same-core context", cpu, sib)
		}
	}
	if _, err := topo.CPUOf(2, 0, 0); err == nil {
		t.Error("CPUOf accepted out-of-range chip")
	}
	if _, err := topo.CPUOf(0, 2, 0); err == nil {
		t.Error("CPUOf accepted out-of-range core")
	}
	if _, err := topo.CPUOf(0, 0, 2); err == nil {
		t.Error("CPUOf accepted out-of-range context")
	}
}

func TestParseTopology(t *testing.T) {
	good := map[string]Topology{
		"1x2x2":       {1, 2, 2},
		"2x2x2":       {2, 2, 2},
		" 4 x 8 x 2 ": {4, 8, 2},
		"2X2X2":       {2, 2, 2},
	}
	for s, want := range good {
		got, err := ParseTopology(s)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseTopology(%q) = %v, want %v", s, got, want)
		}
		if rt, err := ParseTopology(got.String()); err != nil || rt != got {
			t.Errorf("round trip of %q via %q failed: %v %v", s, got.String(), rt, err)
		}
	}
	for _, s := range []string{"", "2x2", "2x2x2x2", "axbxc", "0x2x2", "2x0x2", "2x2x4", "65x2x2", "2x65x2", "-1x2x2"} {
		if _, err := ParseTopology(s); err == nil {
			t.Errorf("ParseTopology(%q) accepted invalid topology", s)
		}
	}
}

func TestDefaultTopologyMatchesDefaultConfig(t *testing.T) {
	topo, cfg := DefaultTopology(), DefaultConfig()
	if topo.CoresPerChip != cfg.Cores || topo.SMTWays != cfg.ThreadsPerCore || topo.Chips != 1 {
		t.Fatalf("DefaultTopology %v does not describe DefaultConfig (%d cores, %d-way)",
			topo, cfg.Cores, cfg.ThreadsPerCore)
	}
}

// TestSingleChipMachineMatchesChip asserts the 1-chip Machine is cycle-
// and counter-identical to driving the Chip directly — the guarantee
// that keeps the paper's tables byte-identical under the refactor.
func TestSingleChipMachineMatchesChip(t *testing.T) {
	load := func(seed uint64, base uint64) workload.Load {
		return workload.Load{Kind: workload.Mixed, N: 1 << 62, Seed: seed, Base: base}
	}
	direct := MustNew(DefaultConfig())
	direct.SetStream(0, 0, load(1, 0).Stream())
	direct.SetStream(1, 1, load(2, 1<<32).Stream())
	direct.RunUntil(50_000)

	m, err := NewMachine(DefaultTopology(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetStream(0, 0, load(1, 0).Stream())
	m.SetStream(1, 1, load(2, 1<<32).Stream())
	m.RunUntil(50_000)

	if m.Cycle() != direct.Cycle() {
		t.Fatalf("machine cycle %d != chip cycle %d", m.Cycle(), direct.Cycle())
	}
	for core := 0; core < 2; core++ {
		for thr := 0; thr < 2; thr++ {
			if got, want := m.Stats(core, thr), direct.Stats(core, thr); got != want {
				t.Errorf("stats(%d,%d) = %+v, want %+v", core, thr, got, want)
			}
		}
	}
}

// TestMachineLockstep runs two chips with identical streams and asserts
// they progress identically: the chips are independent (own L2/L3), so
// mirrored inputs must give mirrored counters.
func TestMachineLockstep(t *testing.T) {
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	m, err := NewMachine(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for chip := 0; chip < 2; chip++ {
		base := chip * topo.CoresPerChip
		m.SetStream(base+0, 0, workload.Load{Kind: workload.FPU, N: 20_000, Seed: 9, Base: 5 << 32}.Stream())
		m.SetStream(base+1, 1, workload.Load{Kind: workload.L2, N: 20_000, Seed: 7, Base: 6 << 32}.Stream())
	}
	m.RunUntil(200_000)
	if !m.AllIdle() {
		t.Fatal("machine did not drain both chips")
	}
	for core := 0; core < topo.CoresPerChip; core++ {
		for thr := 0; thr < 2; thr++ {
			a, b := m.Stats(core, thr), m.Stats(topo.CoresPerChip+core, thr)
			if a != b {
				t.Errorf("chips diverged at (core %d, thr %d): %+v vs %+v", core, thr, a, b)
			}
		}
	}
	if m.Chip(0) == m.Chip(1) {
		t.Fatal("chips share state")
	}
	if m.Hierarchy(0) == m.Hierarchy(1) {
		t.Fatal("chips share a memory hierarchy")
	}
}

// TestMachineHierarchyIsolation asserts per-chip L2s: traffic on chip 0
// never allocates into chip 1's hierarchy.
func TestMachineHierarchyIsolation(t *testing.T) {
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	m, err := NewMachine(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 1<<16; off += 128 {
		m.TouchMemory(0, off)
	}
	if got := m.Hierarchy(0).L2().Stats().Misses; got == 0 {
		t.Fatal("chip 0 L2 saw no traffic")
	}
	if got := m.Hierarchy(1).L2().Stats().Accesses; got != 0 {
		t.Fatalf("chip 1 L2 saw %d accesses from chip 0 traffic", got)
	}
}

func TestMachineOnEmptyGlobalCores(t *testing.T) {
	topo := Topology{Chips: 2, CoresPerChip: 1, SMTWays: 2}
	m, err := NewMachine(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var emptied []int
	m.OnEmpty(func(core, thread int) { emptied = append(emptied, core*2+thread) })
	m.SetStream(0, 0, workload.Load{Kind: workload.FXU, N: 500, Seed: 1}.Stream())
	m.SetStream(1, 1, workload.Load{Kind: workload.FXU, N: 500, Seed: 2, Base: 1 << 32}.Stream())
	m.RunUntil(1 << 20)
	want := map[int]bool{0: true, 3: true}
	if len(emptied) != 2 || !want[emptied[0]] || !want[emptied[1]] {
		t.Fatalf("OnEmpty fired for CPUs %v, want {0, 3}", emptied)
	}
}
