// Package btmz models the NAS BT-MZ benchmark of Section VII-B: the
// multi-zone Block Tri-diagonal solver whose zones have very uneven sizes,
// producing intrinsic imbalance.  Every iteration each rank computes on
// its zones, exchanges boundary data with its neighbours asynchronously
// (mpi_isend/mpi_irecv) and waits for the exchanges (mpi_waitall); the
// communication phase is a fraction of a percent of the iteration.
//
// The per-rank load ratios (~0.18 : 0.29 : 0.67 : 1.00) are taken from the
// paper's Case A computation percentages (Table V), standing in for the
// class-A zone distribution over 4 processes.
package btmz

import (
	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/workload"
)

// Config sizes the benchmark.
type Config struct {
	// Iterations is the time-step count (the paper ran class A's
	// default 200; the reproduction's default is scaled down).
	Iterations int
	// UnitLoad is the instruction count of the heaviest rank per
	// iteration; other ranks scale by ZoneWeights.
	UnitLoad int64
	// ZoneWeights is the per-rank load fraction of UnitLoad.
	ZoneWeights []float64
	// ExchangeBytes is the boundary-exchange volume per neighbour.
	ExchangeBytes int64
	// Kind is the compute kernel family (the solver is FP-dominated).
	Kind workload.Kind
}

// DefaultConfig returns the Table V geometry at reduced scale.  The zone
// weights follow the paper's Case A computation ratios, with P2 nudged
// from 0.29 to 0.24 so the case C balance point falls on the same side of
// the simulator's diff-2 penalized speed ratio (0.247) as it did on the
// real machine's (~0.31) — see EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Iterations:    6,
		UnitLoad:      220_000,
		ZoneWeights:   []float64{0.18, 0.24, 0.67, 1.00},
		ExchangeBytes: 16 << 10,
		Kind:          workload.FPU,
	}
}

// STConfig returns the 2-process decomposition used for the paper's ST
// row: the zone distribution over two processes gives the lighter one
// roughly half the heavy one's work (Table V: 49.3% vs 99.5% compute),
// scaled so the two ranks carry the same total work as the four-rank
// decomposition.
func STConfig() Config {
	cfg := DefaultConfig()
	var sum float64
	for _, z := range cfg.ZoneWeights {
		sum += z
	}
	scale := sum / 1.5 // {0.5, 1.0} rescaled to conserve total work
	cfg.ZoneWeights = []float64{0.5 * scale, 1.0 * scale}
	return cfg
}

// Works returns the per-rank per-iteration instruction counts.
func Works(cfg Config) []float64 {
	w := make([]float64, len(cfg.ZoneWeights))
	for r, z := range cfg.ZoneWeights {
		w[r] = z * float64(cfg.UnitLoad)
	}
	return w
}

// Job builds the BT-MZ MPI job: per iteration Compute then a neighbour
// Exchange in a ring (each zone borders the next), and a closing barrier
// after the last iteration.
func Job(cfg Config) *mpisim.Job {
	n := len(cfg.ZoneWeights)
	works := Works(cfg)
	job := &mpisim.Job{Name: "bt-mz"}
	for r := 0; r < n; r++ {
		var p mpisim.Program
		for i := 0; i < cfg.Iterations; i++ {
			p = append(p, mpisim.Compute(workload.Load{Kind: cfg.Kind, N: int64(works[r])}))
			if n > 1 {
				prev, next := (r+n-1)%n, (r+1)%n
				if prev == next { // 2-rank ring collapses to one peer
					p = append(p, mpisim.Exchange(cfg.ExchangeBytes, next))
				} else {
					p = append(p, mpisim.Exchange(cfg.ExchangeBytes, prev, next))
				}
			}
		}
		p = append(p, mpisim.Barrier())
		job.Ranks = append(job.Ranks, p)
	}
	return job
}

// Case identifies a Table V experiment row.
type Case string

// The Table V cases.
const (
	// CaseST runs the 2-process decomposition in single-thread mode.
	CaseST Case = "ST"
	// CaseA is the reference: Pi on CPUi, all priorities 4.
	CaseA Case = "A"
	// CaseB pairs P1 with P4 and P2 with P3, priorities (3,3,6,6) — the
	// paper's failed first attempt that inverts the imbalance.
	CaseB Case = "B"
	// CaseC keeps the pairing with priorities (4,4,6,6).
	CaseC Case = "C"
	// CaseD refines P2/P3 to a difference of 1: (4,4,5,6) — the best
	// case, -18% execution time.
	CaseD Case = "D"
)

// Cases lists the Table V cases in order.
func Cases() []Case { return []Case{CaseST, CaseA, CaseB, CaseC, CaseD} }

// Placement returns the Table V placement of a case.  Cases B-D co-locate
// the heaviest zone (P4) with the lightest (P1) on core 0, and P2 with P3
// on core 1, per the paper's pairing argument.
func Placement(c Case) (mpisim.Placement, error) {
	switch c {
	case CaseST:
		return mpisim.Placement{
			CPU:  []int{0, 2},
			Prio: []hwpri.Priority{hwpri.VeryHigh, hwpri.VeryHigh},
		}, nil
	case CaseA:
		return mpisim.Placement{
			CPU:  []int{0, 1, 2, 3},
			Prio: []hwpri.Priority{4, 4, 4, 4},
		}, nil
	case CaseB:
		return mpisim.Placement{
			CPU:  []int{0, 2, 3, 1},
			Prio: []hwpri.Priority{3, 3, 6, 6},
		}, nil
	case CaseC:
		return mpisim.Placement{
			CPU:  []int{0, 2, 3, 1},
			Prio: []hwpri.Priority{4, 4, 6, 6},
		}, nil
	case CaseD:
		return mpisim.Placement{
			CPU:  []int{0, 2, 3, 1},
			Prio: []hwpri.Priority{4, 4, 5, 6},
		}, nil
	default:
		return mpisim.Placement{}, errUnknownCase(c)
	}
}

type errUnknownCase Case

func (e errUnknownCase) Error() string { return "btmz: unknown case " + string(e) }
