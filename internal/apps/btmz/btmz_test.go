package btmz

import (
	"testing"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
)

func TestWorksFollowZoneWeights(t *testing.T) {
	cfg := DefaultConfig()
	w := Works(cfg)
	if len(w) != 4 {
		t.Fatalf("works = %v", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Errorf("zone works not increasing: %v", w)
		}
	}
	if ratio := w[0] / w[3]; ratio > 0.25 {
		t.Errorf("P1/P4 work ratio %.2f, want the strong Table V skew", ratio)
	}
}

func TestJobStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 3
	job := Job(cfg)
	if len(job.Ranks) != 4 {
		t.Fatalf("job has %d ranks", len(job.Ranks))
	}
	for r, p := range job.Ranks {
		// compute+exchange per iteration, plus the closing barrier.
		if len(p) != 2*cfg.Iterations+1 {
			t.Errorf("rank %d has %d phases", r, len(p))
		}
		if p[len(p)-1].Kind != mpisim.PhaseBarrier {
			t.Errorf("rank %d does not end with a barrier", r)
		}
		ex := p[1]
		if ex.Kind != mpisim.PhaseExchange {
			t.Fatalf("rank %d phase 1 is %v, want exchange", r, ex.Kind)
		}
		if len(ex.Peers) != 2 {
			t.Errorf("rank %d has %d neighbours, want ring of 2", r, len(ex.Peers))
		}
	}
}

func TestSTJobRing(t *testing.T) {
	job := Job(STConfig())
	if len(job.Ranks) != 2 {
		t.Fatalf("ST job has %d ranks", len(job.Ranks))
	}
	ex := job.Ranks[0][1]
	if len(ex.Peers) != 1 || ex.Peers[0] != 1 {
		t.Errorf("2-rank ring exchange peers = %v", ex.Peers)
	}
}

func TestSTConservesTotalWork(t *testing.T) {
	var sum4, sum2 float64
	for _, w := range Works(DefaultConfig()) {
		sum4 += w
	}
	for _, w := range Works(STConfig()) {
		sum2 += w
	}
	if d := sum2/sum4 - 1; d < -0.01 || d > 0.01 {
		t.Errorf("ST decomposition total work off by %.1f%%", d*100)
	}
}

func TestPlacements(t *testing.T) {
	// Cases B-D pair the heaviest zone (P4) with the lightest (P1).
	for _, c := range []Case{CaseB, CaseC, CaseD} {
		pl, err := Placement(c)
		if err != nil {
			t.Fatal(err)
		}
		if pl.CPU[0]/2 != pl.CPU[3]/2 {
			t.Errorf("case %s: P1 and P4 not on the same core: %v", c, pl.CPU)
		}
		if pl.CPU[1]/2 != pl.CPU[2]/2 {
			t.Errorf("case %s: P2 and P3 not on the same core: %v", c, pl.CPU)
		}
		if pl.Prio[3] <= pl.Prio[0] {
			t.Errorf("case %s: P4 not favored over P1", c)
		}
	}
	st, err := Placement(CaseST)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CPU) != 2 || st.Prio[0] != hwpri.VeryHigh {
		t.Errorf("ST placement = %+v", st)
	}
	if st.CPU[0]/2 == st.CPU[1]/2 {
		t.Error("ST ranks must be on different cores")
	}
	if _, err := Placement(Case("Z")); err == nil {
		t.Error("unknown case accepted")
	}
	// Case D: P2/P3 difference is 1, P1/P4 difference is 2 (Table V).
	d, _ := Placement(CaseD)
	if int(d.Prio[2])-int(d.Prio[1]) != 1 {
		t.Errorf("case D: P3-P2 priority difference %d, want 1", int(d.Prio[2])-int(d.Prio[1]))
	}
}
