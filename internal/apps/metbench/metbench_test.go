package metbench

import (
	"testing"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
)

func TestWorks(t *testing.T) {
	cfg := DefaultConfig()
	w := Works(cfg)
	if len(w) != 4 {
		t.Fatalf("works = %v", w)
	}
	if w[1] != float64(cfg.HeavyLoad) || w[3] != float64(cfg.HeavyLoad) {
		t.Error("heavy workers P2/P4 not heavy")
	}
	if w[0] != float64(cfg.LightLoad) || w[2] != float64(cfg.LightLoad) {
		t.Error("light workers P1/P3 not light")
	}
	if w[1] <= 3*w[0] {
		t.Errorf("heavy/light ratio %.1f too small for the Table IV imbalance", w[1]/w[0])
	}
}

func TestJobStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 3
	job := Job(cfg)
	if len(job.Ranks) != 4 {
		t.Fatalf("job has %d ranks", len(job.Ranks))
	}
	for r, p := range job.Ranks {
		if len(p) != 2*cfg.Iterations {
			t.Errorf("rank %d has %d phases, want %d", r, len(p), 2*cfg.Iterations)
		}
		for i := 0; i < len(p); i += 2 {
			if p[i].Kind != mpisim.PhaseCompute || p[i+1].Kind != mpisim.PhaseBarrier {
				t.Fatalf("rank %d: unexpected phase kinds at %d", r, i)
			}
		}
	}
}

func TestPlacements(t *testing.T) {
	want := map[Case][4]hwpri.Priority{
		CaseA: {4, 4, 4, 4},
		CaseB: {5, 6, 5, 6},
		CaseC: {4, 6, 4, 6},
		CaseD: {3, 6, 3, 6},
	}
	for _, c := range Cases() {
		pl, err := Placement(c)
		if err != nil {
			t.Fatal(err)
		}
		for r, p := range pl.Prio {
			if p != want[c][r] {
				t.Errorf("case %s rank %d priority %d, want %d", c, r, p, want[c][r])
			}
		}
		// P1,P2 on core 0; P3,P4 on core 1 in every case.
		if pl.CPU[0]/2 != 0 || pl.CPU[1]/2 != 0 || pl.CPU[2]/2 != 1 || pl.CPU[3]/2 != 1 {
			t.Errorf("case %s placement %v breaks the Table IV core pairing", c, pl.CPU)
		}
	}
	if _, err := Placement(Case("Z")); err == nil {
		t.Error("unknown case accepted")
	}
}

// The heavy workers must share cores with light workers, one each — the
// setup that makes priority re-assignment possible at all.
func TestHeavyLightPairing(t *testing.T) {
	pl, err := Placement(CaseA)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	w := Works(cfg)
	perCore := map[int][]float64{}
	for r, cpu := range pl.CPU {
		perCore[cpu/2] = append(perCore[cpu/2], w[r])
	}
	for core, loads := range perCore {
		if len(loads) != 2 || loads[0] == loads[1] {
			t.Errorf("core %d loads %v: want one heavy and one light", core, loads)
		}
	}
}
