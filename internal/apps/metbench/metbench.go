// Package metbench models MetBench, the BSC micro-benchmark suite of
// Section VII-A: a master keeping strict synchronization over a set of
// workers, each executing an assigned load every iteration.  Imbalance is
// introduced by assigning a larger load to one worker of each core, so the
// light workers spend most of their time spinning at the barrier.
//
// The master exchanges data with the workers only during initialization
// and coordinates through mpi_barrier(); as in the paper's traces it
// consumes no measurable CPU, so the model represents it implicitly in the
// barrier itself and traces the four workers P1-P4 (the processes of
// Table IV).
package metbench

import (
	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/workload"
)

// Config sizes the benchmark.
type Config struct {
	// Workers is the number of worker ranks (Table IV uses 4).
	Workers int
	// Iterations is the number of master-coordinated iterations.
	Iterations int
	// HeavyLoad and LightLoad are the per-iteration instruction counts
	// of the two load sizes.  The paper's imbalanced setup gives the
	// heavy worker about 4x the light worker's load (Case A: the light
	// workers compute 24.3% of the time).
	HeavyLoad, LightLoad int64
	// HeavyWorkers marks which ranks receive the heavy load; the paper
	// puts the heavy workers second on each core (P2 and P4).
	HeavyWorkers []int
	// Kind is the load's kernel family (MetBench ships per-resource
	// loads; FPU is the paper-like default).
	Kind workload.Kind
}

// DefaultConfig returns the Table IV geometry at the reproduction's
// reduced scale.
func DefaultConfig() Config {
	return Config{
		Workers:      4,
		Iterations:   4,
		HeavyLoad:    180_000,
		LightLoad:    40_000,
		HeavyWorkers: []int{1, 3},
		Kind:         workload.FPU,
	}
}

// Works returns the per-rank per-iteration work (instruction counts) —
// the input the static planner consumes.
func Works(cfg Config) []float64 {
	heavy := map[int]bool{}
	for _, r := range cfg.HeavyWorkers {
		heavy[r] = true
	}
	w := make([]float64, cfg.Workers)
	for r := range w {
		if heavy[r] {
			w[r] = float64(cfg.HeavyLoad)
		} else {
			w[r] = float64(cfg.LightLoad)
		}
	}
	return w
}

// Job builds the MetBench MPI job.
func Job(cfg Config) *mpisim.Job {
	works := Works(cfg)
	job := &mpisim.Job{Name: "metbench"}
	for r := 0; r < cfg.Workers; r++ {
		var p mpisim.Program
		for i := 0; i < cfg.Iterations; i++ {
			p = append(p,
				mpisim.Compute(workload.Load{Kind: cfg.Kind, N: int64(works[r])}),
				mpisim.Barrier(),
			)
		}
		job.Ranks = append(job.Ranks, p)
	}
	return job
}

// Case identifies a Table IV experiment row.
type Case string

// The four MetBench cases of Table IV / Figure 2.
const (
	// CaseA is the reference: default priorities everywhere.
	CaseA Case = "A"
	// CaseB raises the heavy workers to 6 with the light at 5 (diff 1).
	CaseB Case = "B"
	// CaseC widens the difference to 2 (6 vs 4) — the balanced case.
	CaseC Case = "C"
	// CaseD over-penalizes the light workers (6 vs 3), inverting the
	// imbalance.
	CaseD Case = "D"
)

// Cases lists the Table IV cases in order.
func Cases() []Case { return []Case{CaseA, CaseB, CaseC, CaseD} }

// Placement returns the Table IV placement for a case: P1,P2 on core 0 and
// P3,P4 on core 1, with the case's priorities.
func Placement(c Case) (mpisim.Placement, error) {
	pl := mpisim.Placement{CPU: []int{0, 1, 2, 3}}
	switch c {
	case CaseA:
		pl.Prio = []hwpri.Priority{4, 4, 4, 4}
	case CaseB:
		pl.Prio = []hwpri.Priority{5, 6, 5, 6}
	case CaseC:
		pl.Prio = []hwpri.Priority{4, 6, 4, 6}
	case CaseD:
		pl.Prio = []hwpri.Priority{3, 6, 3, 6}
	default:
		return mpisim.Placement{}, errUnknownCase(c)
	}
	return pl, nil
}

type errUnknownCase Case

func (e errUnknownCase) Error() string { return "metbench: unknown case " + string(e) }
