package siesta

import (
	"testing"

	"repro/internal/mpisim"
)

func TestBottleneckSchedule(t *testing.T) {
	// The last rank must dominate the schedule but not own it.
	counts := map[int]int{}
	for i := 0; i < 60; i++ {
		b := Bottleneck(i, 4)
		if b < 0 || b > 3 {
			t.Fatalf("bottleneck %d out of range", b)
		}
		counts[b]++
	}
	if counts[3] <= counts[0] || counts[3] <= counts[1] || counts[3] <= counts[2] {
		t.Errorf("P4 not the dominant bottleneck: %v", counts)
	}
	moved := 0
	for r := 0; r < 3; r++ {
		if counts[r] > 0 {
			moved++
		}
	}
	if moved < 2 {
		t.Errorf("bottleneck never visits other ranks: %v", counts)
	}
}

func TestIterationWorksVary(t *testing.T) {
	cfg := DefaultConfig()
	w0 := IterationWorks(cfg, 0)
	w1 := IterationWorks(cfg, 1)
	same := true
	for r := range w0 {
		if w0[r] != w1[r] {
			same = false
		}
	}
	if same {
		t.Error("iteration works do not vary — SIESTA's defining property is missing")
	}
	// The scheduled bottleneck rank must carry the iteration's max work.
	for i := 0; i < 12; i++ {
		w := IterationWorks(cfg, i)
		b := Bottleneck(i, len(w))
		for r := range w {
			if r != b && w[r] >= w[b] {
				t.Errorf("iter %d: rank %d (%.0f) >= bottleneck %d (%.0f)", i, r, w[r], b, w[b])
			}
		}
	}
}

func TestBottleneckBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BottleneckBlock = 5
	for i := 0; i < 5; i++ {
		a := IterationWorks(cfg, i)
		b := IterationWorks(cfg, 0)
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("block scheduling broken at iteration %d", i)
			}
		}
	}
}

func TestMeanWorks(t *testing.T) {
	cfg := DefaultConfig()
	mean := MeanWorks(cfg)
	if len(mean) != 4 {
		t.Fatalf("mean works = %v", mean)
	}
	// P4 must be the heaviest on average; P2 and P3 similar (the paper's
	// case C insight).
	if mean[3] <= mean[0] || mean[3] <= mean[1] || mean[3] <= mean[2] {
		t.Errorf("P4 not heaviest on average: %v", mean)
	}
	if d := (mean[2] - mean[1]) / mean[1]; d < 0 || d > 0.25 {
		t.Errorf("P2/P3 similarity broken: %v", mean)
	}
}

func TestJobStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 4
	job := Job(cfg)
	if len(job.Ranks) != 4 {
		t.Fatalf("job has %d ranks", len(job.Ranks))
	}
	p := job.Ranks[0]
	// init (2 computes + barrier) + 4 iters (2 computes + exchange +
	// barrier) + final (2 computes + barrier).
	want := 3 + 4*4 + 3
	if len(p) != want {
		t.Errorf("rank program has %d phases, want %d", len(p), want)
	}
	if p[0].Kind != mpisim.PhaseCompute || p[2].Kind != mpisim.PhaseBarrier {
		t.Error("init phase structure wrong")
	}
	if p[len(p)-1].Kind != mpisim.PhaseBarrier {
		t.Error("program does not end with the final barrier")
	}
}

func TestMemFractionSplitsPhases(t *testing.T) {
	cfg := DefaultConfig()
	phases := computePhases(cfg, 10000)
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want compute+mem", len(phases))
	}
	if phases[0].Load.Kind != cfg.Kind {
		t.Error("first phase not the compute kernel")
	}
	cfg.MemFraction = 0
	if got := computePhases(cfg, 10000); len(got) != 1 || got[0].Load.N != 10000 {
		t.Errorf("MemFraction 0 phases = %+v", got)
	}
}

func TestSTConservesTotalWork(t *testing.T) {
	cfg, st := DefaultConfig(), STConfig()
	var sum4, sum2 float64
	for _, w := range cfg.BaseWeights {
		sum4 += w
	}
	for _, w := range st.BaseWeights {
		sum2 += w
	}
	if d := sum2/sum4 - 1; d < -0.01 || d > 0.01 {
		t.Errorf("ST decomposition total work off by %.1f%%", d*100)
	}
}

func TestPlacements(t *testing.T) {
	for _, c := range []Case{CaseB, CaseC, CaseD} {
		pl, err := Placement(c)
		if err != nil {
			t.Fatal(err)
		}
		// P2 and P3 share a core; P1 and P4 share the other.
		if pl.CPU[1]/2 != pl.CPU[2]/2 || pl.CPU[0]/2 != pl.CPU[3]/2 {
			t.Errorf("case %s pairing wrong: %v", c, pl.CPU)
		}
	}
	c, _ := Placement(CaseC)
	if c.Prio[1] != c.Prio[2] {
		t.Error("case C must keep P2 and P3 at equal priority (the paper's fix over case B)")
	}
	if c.Prio[3] <= c.Prio[0] {
		t.Error("case C must favor P4")
	}
	d, _ := Placement(CaseD)
	if int(d.Prio[3])-int(d.Prio[0]) != 2 {
		t.Errorf("case D P4-P1 difference %d, want 2", int(d.Prio[3])-int(d.Prio[0]))
	}
	if _, err := Placement(Case("Z")); err == nil {
		t.Error("unknown case accepted")
	}
}
