// Package siesta models SIESTA (Section VII-C), the ab-initio materials
// simulation that ran on MareNostrum: a real application whose imbalance
// comes from both the algorithm and the input set, and — crucially — whose
// bottleneck rank *changes across iterations*: "in the i-th iteration P1
// could be the bottleneck while in the (i+1)-th the most computing process
// could be P4".
//
// The model has the paper's three-part structure: an initialization phase
// (~12% of the time, already slightly imbalanced), a sequence of
// self-consistent-field iterations whose per-rank loads follow a
// deterministic shifting-bottleneck schedule biased toward P4, and a
// finalization phase (~13%).
package siesta

import (
	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/workload"
)

// Config sizes the model.
type Config struct {
	// Iterations is the number of SCF iterations.
	Iterations int
	// UnitLoad is the heaviest per-iteration instruction count.
	UnitLoad int64
	// BaseWeights is each rank's baseline load fraction; P2 and P3 are
	// nearly equal (the paper's Case C insight), P4 the heaviest.
	BaseWeights []float64
	// BottleneckBonus multiplies the scheduled bottleneck rank's load.
	BottleneckBonus float64
	// BottleneckBlock is the number of consecutive iterations the
	// scheduled bottleneck persists before moving (0/1 = every
	// iteration).  Real SIESTA phases span several SCF iterations.
	BottleneckBlock int
	// InitLoad and FinalLoad are the instruction counts of the
	// initialization and finalization phases (heaviest rank).
	InitLoad, FinalLoad int64
	// ExchangeBytes is the per-iteration neighbour-exchange volume.
	ExchangeBytes int64
	// Kind is the decode-bound compute kernel family.
	Kind workload.Kind
	// MemFraction is the fraction of each phase's *time* spent in
	// memory-latency-bound work (the cache-busting Mem kernel).  SIESTA
	// is a real application, not a synthetic unit stressor: most of its
	// time tolerates decode starvation, which is why the paper's
	// priority differences penalize it far more gently than MetBench
	// (Table VI: P1's compute share moves only 76%→83% under a diff-1
	// penalty, where MetBench's doubled).  The default 0.86 makes a
	// diff-1 penalty cost ~10%% of a rank's time, matching the paper.
	MemFraction float64
}

// Calibrated solo throughputs of the two kernel families (instructions
// per cycle), used to convert the time-based MemFraction into per-kernel
// instruction counts.  See the calibration report in internal/power5.
const (
	computeIPC = 0.75 // Branchy kernel: irregular, low-ILP real-code profile
	memIPC     = 0.047
)

// DefaultConfig returns the Table VI geometry at reduced scale.  UnitLoad
// is expressed in compute-kernel instructions; MemFraction of each phase's
// time runs the latency-bound Mem kernel instead.  The Branchy kernel's
// low-ILP, contention-heavy profile matches a real application: priority
// differences move it by ~10-15%% per step, not the 2-4x of the synthetic
// MetBench stressors.
func DefaultConfig() Config {
	return Config{
		Iterations:      10,
		UnitLoad:        110_000,
		BaseWeights:     []float64{0.80, 0.74, 0.82, 0.97},
		BottleneckBonus: 1.55,
		InitLoad:        160_000,
		FinalLoad:       180_000,
		ExchangeBytes:   8 << 10,
		Kind:            workload.Branchy,
		MemFraction:     0.25,
	}
}

// STConfig returns the 2-process decomposition for the ST row; the
// paper's measured ST computation split is 81.8% vs 93.7%, and the two
// ranks carry the same total work as the four-rank decomposition.
func STConfig() Config {
	cfg := DefaultConfig()
	var sum float64
	for _, w := range cfg.BaseWeights {
		sum += w
	}
	scale := sum / (0.85 + 0.97)
	cfg.BaseWeights = []float64{0.85 * scale, 0.97 * scale}
	return cfg
}

// Bottleneck returns the rank carrying the extra load in iteration i.
// The schedule is deterministic and biased toward the last rank (P4 in
// the 4-rank decomposition), with P1..P3 taking turns — matching the
// paper's observation that no static priority assignment fits every
// iteration.
func Bottleneck(i, ranks int) int {
	last := ranks - 1
	switch i % 6 {
	case 0, 2, 4:
		return last
	default:
		return ((i % 6) / 2) % ranks // iterations 1,3,5 -> ranks 0,1,2
	}
}

// IterationWorks returns the per-rank instruction counts of iteration i.
func IterationWorks(cfg Config, i int) []float64 {
	if cfg.BottleneckBlock > 1 {
		i /= cfg.BottleneckBlock
	}
	n := len(cfg.BaseWeights)
	w := make([]float64, n)
	b := Bottleneck(i, n)
	for r := 0; r < n; r++ {
		w[r] = cfg.BaseWeights[r] * float64(cfg.UnitLoad)
		if r == b {
			w[r] *= cfg.BottleneckBonus
		}
	}
	return w
}

// MeanWorks returns the per-rank works averaged over the iteration
// schedule — what a static planner would measure in a profiling run.
func MeanWorks(cfg Config) []float64 {
	n := len(cfg.BaseWeights)
	sum := make([]float64, n)
	for i := 0; i < cfg.Iterations; i++ {
		for r, w := range IterationWorks(cfg, i) {
			sum[r] += w
		}
	}
	for r := range sum {
		sum[r] /= float64(cfg.Iterations)
	}
	return sum
}

// initWeights and finalWeights shape the non-iterative phases; the
// initialization "already presents some little imbalance" (Section VII-C).
var initWeights = []float64{0.93, 0.88, 1.00, 0.91}
var finalWeights = []float64{0.90, 1.00, 0.94, 0.88}

func phaseWeight(table []float64, r, n int) float64 {
	if n == len(table) {
		return table[r]
	}
	// 2-rank ST decomposition: average the halves.
	return (table[2*r] + table[2*r+1]) / 2
}

// computePhases splits a phase of n compute-equivalent instructions into a
// decode-bound part (cfg.Kind) and a latency-bound part (the Mem kernel)
// whose *durations* follow MemFraction, converting via the calibrated
// solo throughputs.
func computePhases(cfg Config, n float64) []mpisim.Phase {
	mf := cfg.MemFraction
	if mf <= 0 {
		return []mpisim.Phase{mpisim.Compute(workload.Load{Kind: cfg.Kind, N: int64(n)})}
	}
	cycles := n / computeIPC // total phase duration target
	cInstrs := (1 - mf) * cycles * computeIPC
	memInstrs := mf * cycles * memIPC
	return []mpisim.Phase{
		mpisim.Compute(workload.Load{Kind: cfg.Kind, N: int64(cInstrs)}),
		mpisim.Compute(workload.Load{Kind: workload.Mem, N: int64(memInstrs)}),
	}
}

// Job builds the SIESTA MPI job.
func Job(cfg Config) *mpisim.Job {
	n := len(cfg.BaseWeights)
	job := &mpisim.Job{Name: "siesta"}
	for r := 0; r < n; r++ {
		var p mpisim.Program
		p = append(p, computePhases(cfg, phaseWeight(initWeights, r, n)*float64(cfg.InitLoad))...)
		p = append(p, mpisim.Barrier())
		for i := 0; i < cfg.Iterations; i++ {
			w := IterationWorks(cfg, i)
			p = append(p, computePhases(cfg, w[r])...)
			if n > 1 {
				prev, next := (r+n-1)%n, (r+1)%n
				if prev == next {
					p = append(p, mpisim.Exchange(cfg.ExchangeBytes, next))
				} else {
					p = append(p, mpisim.Exchange(cfg.ExchangeBytes, prev, next))
				}
			}
			p = append(p, mpisim.Barrier())
		}
		p = append(p, computePhases(cfg, phaseWeight(finalWeights, r, n)*float64(cfg.FinalLoad))...)
		p = append(p, mpisim.Barrier())
		job.Ranks = append(job.Ranks, p)
	}
	return job
}

// Case identifies a Table VI experiment row.
type Case string

// The Table VI cases.
const (
	// CaseST runs the 2-process decomposition in single-thread mode.
	CaseST Case = "ST"
	// CaseA is the reference: Pi on CPUi, all priorities 4.
	CaseA Case = "A"
	// CaseB pairs P2 with P3 and P1 with P4, raising P3 and P4 to 5 —
	// a small gain (+1.24%).
	CaseB Case = "B"
	// CaseC keeps P2/P3 at equal priority (they carry similar loads) and
	// favors only P4 — the paper's best case (+8.1%).
	CaseC Case = "C"
	// CaseD pushes P4 to 6, over-penalizing P1, which is sometimes the
	// bottleneck — a 13.7% loss.
	CaseD Case = "D"
)

// Cases lists the Table VI cases in order.
func Cases() []Case { return []Case{CaseST, CaseA, CaseB, CaseC, CaseD} }

// Placement returns the Table VI placement of a case.  Cases B-D use the
// paper's pairing: P2 and P3 (similar loads) share core 0; P1 and P4
// share core 1.
func Placement(c Case) (mpisim.Placement, error) {
	switch c {
	case CaseST:
		return mpisim.Placement{
			CPU:  []int{0, 2},
			Prio: []hwpri.Priority{hwpri.VeryHigh, hwpri.VeryHigh},
		}, nil
	case CaseA:
		return mpisim.Placement{
			CPU:  []int{0, 1, 2, 3},
			Prio: []hwpri.Priority{4, 4, 4, 4},
		}, nil
	case CaseB:
		return mpisim.Placement{
			CPU:  []int{2, 0, 1, 3},
			Prio: []hwpri.Priority{4, 4, 5, 5},
		}, nil
	case CaseC:
		return mpisim.Placement{
			CPU:  []int{2, 0, 1, 3},
			Prio: []hwpri.Priority{4, 4, 4, 5},
		}, nil
	case CaseD:
		return mpisim.Placement{
			CPU:  []int{2, 0, 1, 3},
			Prio: []hwpri.Priority{4, 4, 4, 6},
		}, nil
	default:
		return mpisim.Placement{}, errUnknownCase(c)
	}
}

type errUnknownCase Case

func (e errUnknownCase) Error() string { return "siesta: unknown case " + string(e) }
