// Package oskernel simulates the operating-system layer of the paper's
// testbed: a Linux 2.6.19-like kernel running on the simulated POWER5
// (internal/power5).
//
// It reproduces the kernel behaviours of Section VI:
//
//   - The *vanilla* kernel resets the hardware thread priority of a CPU to
//     MEDIUM every time it enters an interrupt handler, because it does not
//     track the current priority; any priority set by software is therefore
//     clobbered at the next timer tick.  It also offers no interface for
//     user space to set the supervisor-level priorities 1, 5 and 6.
//   - The *patched* kernel (Config.Patched) removes the priority
//     manipulation from the handlers and exposes every OS-settable
//     priority (1..6) through `echo N > /proc/<PID>/hmt_priority`
//     (WriteHMTPriority).
//   - Idle logical CPUs have their priority lowered (the standard kernel's
//     idle-loop etiquette), letting the busy sibling use the whole core.
//
// The kernel also injects the extrinsic-imbalance sources of Section II-B:
// periodic timer-tick handlers with a real instruction cost and optional
// per-CPU daemons that steal the CPU from the running process.
package oskernel

import (
	"errors"
	"fmt"

	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/power5"
	"repro/internal/workload"
)

// kernelBase is the start of the simulated kernel address space; handler
// instruction streams walk per-CPU regions above it so OS noise pollutes
// the caches like real handlers do.
const kernelBase = uint64(0xC000) << 32

// Daemon describes a periodic per-CPU system daemon (a profile collector,
// statistics gatherer, etc. — the "user daemons" extrinsic-imbalance
// source of Section II-B).
type Daemon struct {
	// CPU is the logical CPU the daemon is bound to.
	CPU int
	// Period is the cycle interval between activations.
	Period int64
	// Run is the number of instructions each activation executes.
	Run int64
}

// Config describes the simulated kernel.
type Config struct {
	// Patched applies the paper's kernel patch (Section VI-B).
	Patched bool
	// TickPeriod is the cycle interval between timer interrupts per CPU;
	// 0 disables ticks.  The default models a 1000 Hz kernel scaled to
	// the experiments' workload scale.
	TickPeriod int64
	// TickCost is the instruction count of the tick handler.
	TickCost int64
	// Daemons are optional extrinsic-noise daemons.
	Daemons []Daemon
}

// DefaultConfig returns the kernel configuration used by the experiments:
// a patched kernel with timer ticks whose relative cost matches a 1000 Hz
// Linux on the scaled-down workloads.
func DefaultConfig() Config {
	return Config{
		Patched:    true,
		TickPeriod: 100_000,
		TickCost:   400,
	}
}

// Process is a simulated OS process pinned to one logical CPU.
type Process struct {
	// PID is the process identifier.
	PID int
	// Name labels the process in diagnostics.
	Name string
	// CPU is the logical CPU the process is pinned to.
	CPU int
	// HMT is the hardware thread priority assigned to the process (the
	// value written to /proc/<PID>/hmt_priority).
	HMT hwpri.Priority

	user    isa.Stream
	started bool
}

// Kernel is the simulated operating system.  It manages one machine —
// a single chip on the paper's OpenPower 710, or a multi-chip node
// (power5.Machine) — addressing every hardware context through a flat
// logical-CPU namespace, as Linux does.
type Kernel struct {
	mach  *power5.Machine
	cfg   Config
	procs map[int]*Process
	cpus  []*cpuState
	next  int

	onProcEnd func(*Process)
}

// cpuState is the per-logical-CPU kernel state.
type cpuState struct {
	id      int
	proc    *Process
	offline bool
	stream  *cpuStream
}

// Errors returned by the procfs interface.
var (
	// ErrNoProcFile is returned by WriteHMTPriority on a vanilla kernel:
	// /proc/<PID>/hmt_priority only exists with the paper's patch.
	ErrNoProcFile = errors.New("oskernel: /proc/<pid>/hmt_priority does not exist (kernel not patched)")
	// ErrBadPriority is returned for priorities outside the OS range 1..6.
	ErrBadPriority = errors.New("oskernel: priority outside OS-settable range 1..6")
	// ErrNoProcess is returned for unknown PIDs.
	ErrNoProcess = errors.New("oskernel: no such process")
	// ErrCPUBusy is returned when pinning onto an occupied or offline CPU.
	ErrCPUBusy = errors.New("oskernel: CPU busy or offline")
)

// New builds a kernel managing the given single chip.
func New(chip *power5.Chip, cfg Config) *Kernel {
	return NewMachine(power5.WrapChip(chip), cfg)
}

// NewMachine builds a kernel managing a (possibly multi-chip) machine.
func NewMachine(mach *power5.Machine, cfg Config) *Kernel {
	k := &Kernel{
		mach:  mach,
		cfg:   cfg,
		procs: make(map[int]*Process),
		next:  1,
	}
	n := mach.Topology().Contexts()
	for cpu := 0; cpu < n; cpu++ {
		cs := &cpuState{id: cpu}
		cs.stream = newCPUStream(k, cs)
		k.cpus = append(k.cpus, cs)
		// Idle-loop etiquette: an idle CPU runs at very low priority so
		// the sibling context gets the core's resources.
		k.applyIdlePriority(cpu)
	}
	mach.OnEmpty(k.handleStreamEnd)
	return k
}

// Chip returns the machine's first chip (the whole machine of the
// paper's single-chip testbed); multi-chip callers use Machine.
func (k *Kernel) Chip() *power5.Chip { return k.mach.Chip(0) }

// Machine returns the underlying machine.
func (k *Kernel) Machine() *power5.Machine { return k.mach }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// NumCPUs returns the number of logical CPUs (SMT contexts).
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// coreThread maps a logical CPU to its (global core, thread) pair: CPU0/1
// are the two contexts of core 0, CPU2/3 of core 1, and so on chip-major,
// matching the paper's mapping where P1,P2 share the first core.
func (k *Kernel) coreThread(cpu int) (int, int) {
	topo := k.mach.Topology()
	return topo.CoreOf(cpu), topo.ThreadOf(cpu)
}

// CPUOfCoreThread is the inverse mapping (core is the global core index).
func (k *Kernel) CPUOfCoreThread(core, thread int) int {
	return core*k.mach.Topology().SMTWays + thread
}

func (k *Kernel) applyIdlePriority(cpu int) {
	core, thr := k.coreThread(cpu)
	if k.cpus[cpu].offline {
		k.mach.SetPriority(core, thr, hwpri.ThreadOff)
		return
	}
	k.mach.SetPriority(core, thr, hwpri.VeryLow)
}

// Spawn creates a process pinned to cpu with the given user stream and
// hardware priority and starts it immediately.  Note that on a vanilla
// kernel the priority will be clobbered to MEDIUM by the first interrupt.
func (k *Kernel) Spawn(name string, cpu int, user isa.Stream, hmt hwpri.Priority) (*Process, error) {
	if cpu < 0 || cpu >= len(k.cpus) {
		return nil, fmt.Errorf("oskernel: no CPU %d", cpu)
	}
	cs := k.cpus[cpu]
	if cs.proc != nil || cs.offline {
		return nil, ErrCPUBusy
	}
	if !hmt.Valid() {
		return nil, ErrBadPriority
	}
	p := &Process{PID: k.next, Name: name, CPU: cpu, HMT: hmt, user: user}
	k.next++
	k.procs[p.PID] = p
	cs.proc = p
	core, thr := k.coreThread(cpu)
	k.mach.SetPriority(core, thr, hmt)
	k.mach.SetPrivilege(core, thr, hwpri.ProblemState)
	k.mach.SetStream(core, thr, cs.stream)
	p.started = true
	return p, nil
}

// Exit removes a process and idles its CPU.
func (k *Kernel) Exit(p *Process) {
	cs := k.cpus[p.CPU]
	if cs.proc != p {
		return
	}
	cs.proc = nil
	delete(k.procs, p.PID)
	core, thr := k.coreThread(p.CPU)
	k.mach.SetStream(core, thr, nil)
	k.applyIdlePriority(p.CPU)
}

// Process looks a process up by PID.
func (k *Kernel) Process(pid int) (*Process, error) {
	p, ok := k.procs[pid]
	if !ok {
		return nil, ErrNoProcess
	}
	return p, nil
}

// ProcessOn returns the process pinned to cpu, or nil.
func (k *Kernel) ProcessOn(cpu int) *Process { return k.cpus[cpu].proc }

// SetUserStream replaces the user stream of a process (the runtime uses
// this to move a rank between compute, spin and communication phases) and
// re-arms the CPU.
func (k *Kernel) SetUserStream(p *Process, s isa.Stream) {
	p.user = s
	cs := k.cpus[p.CPU]
	if cs.proc != p {
		return
	}
	core, thr := k.coreThread(p.CPU)
	k.mach.SetStream(core, thr, cs.stream)
}

// OnProcessStreamEnd registers the callback fired when a process's user
// stream runs dry (the runtime advances the rank's program from it).
func (k *Kernel) OnProcessStreamEnd(f func(*Process)) { k.onProcEnd = f }

func (k *Kernel) handleStreamEnd(core, thread int) {
	cpu := k.CPUOfCoreThread(core, thread)
	cs := k.cpus[cpu]
	if cs.proc == nil {
		return
	}
	if k.onProcEnd != nil {
		k.onProcEnd(cs.proc)
	}
}

// WriteHMTPriority emulates `echo N > /proc/<PID>/hmt_priority`, the
// interface added by the paper's kernel patch: it accepts every priority
// available at OS level (1..6) and applies it to the process's hardware
// context immediately.  On a vanilla kernel the file does not exist.
func (k *Kernel) WriteHMTPriority(pid int, pri hwpri.Priority) error {
	if !k.cfg.Patched {
		return ErrNoProcFile
	}
	if pri < hwpri.VeryLow || pri > hwpri.High {
		return ErrBadPriority
	}
	p, ok := k.procs[pid]
	if !ok {
		return ErrNoProcess
	}
	p.HMT = pri
	core, thr := k.coreThread(p.CPU)
	k.mach.SetPriority(core, thr, pri)
	return nil
}

// OfflineCPU takes a logical CPU offline (hardware priority 0), putting
// the core in single-thread mode if the sibling is active — how the ST
// rows of Tables V and VI are obtained.  The CPU must be idle.
func (k *Kernel) OfflineCPU(cpu int) error {
	if cpu < 0 || cpu >= len(k.cpus) {
		return fmt.Errorf("oskernel: no CPU %d", cpu)
	}
	cs := k.cpus[cpu]
	if cs.proc != nil {
		return ErrCPUBusy
	}
	cs.offline = true
	k.applyIdlePriority(cpu)
	return nil
}

// OnlineCPU brings an offlined CPU back.
func (k *Kernel) OnlineCPU(cpu int) error {
	if cpu < 0 || cpu >= len(k.cpus) {
		return fmt.Errorf("oskernel: no CPU %d", cpu)
	}
	k.cpus[cpu].offline = false
	k.applyIdlePriority(cpu)
	return nil
}

// cpuStream is the effective instruction stream of one logical CPU: the
// pinned process's user stream, preempted by timer-tick handlers and
// daemons.
type cpuStream struct {
	k  *Kernel
	cs *cpuState
	// core/thr cache the topology mapping of cs.id: Next sits on the
	// per-cycle decode path and the mapping never changes.
	core, thr int
	// noNoise short-circuits Next straight to the user stream when the
	// kernel can never preempt it (no ticks, no daemon on this CPU).
	noNoise bool

	inHandler   bool
	handlerLeft int64
	nextTick    int64

	inDaemon   bool
	daemonLeft int64
	nextDaemon int64
	daemon     *Daemon

	kgen isa.Stream
}

func newCPUStream(k *Kernel, cs *cpuState) *cpuStream {
	s := &cpuStream{k: k, cs: cs}
	s.core, s.thr = k.coreThread(cs.id)
	s.kgen = workload.Load{
		Kind: workload.FXU,
		N:    1 << 62,
		Base: kernelBase + uint64(cs.id)<<24,
		Seed: uint64(cs.id) + 1,
	}.Stream()
	if k.cfg.TickPeriod > 0 {
		// Stagger ticks across CPUs as real per-CPU timers are.  The
		// divisor is the machine's context count, so the offsets stay
		// inside one period whatever the topology (and match the
		// original 4-context machine exactly on the default topology).
		s.nextTick = k.cfg.TickPeriod + int64(cs.id)*k.cfg.TickPeriod/int64(k.mach.Topology().Contexts())
	}
	for i := range k.cfg.Daemons {
		if k.cfg.Daemons[i].CPU == cs.id {
			s.daemon = &k.cfg.Daemons[i]
			s.nextDaemon = s.daemon.Period
		}
	}
	s.noNoise = k.cfg.TickPeriod <= 0 && s.daemon == nil
	return s
}

// Next implements isa.Stream.
func (s *cpuStream) Next(in *isa.Instr) bool {
	if s.noNoise && !s.inHandler && !s.inDaemon {
		if p := s.cs.proc; p != nil && p.user != nil {
			return p.user.Next(in)
		}
		return false
	}
	cycle := s.k.mach.Cycle()
	core, thr := s.core, s.thr

	if !s.inHandler && !s.inDaemon {
		if s.k.cfg.TickPeriod > 0 && cycle >= s.nextTick {
			s.inHandler = true
			s.handlerLeft = s.k.cfg.TickCost
			s.nextTick += s.k.cfg.TickPeriod
			s.k.mach.SetPrivilege(core, thr, hwpri.Supervisor)
			if !s.k.cfg.Patched {
				// Vanilla kernel: the handler resets the thread
				// priority to MEDIUM and, since the kernel does not
				// track the current priority, never restores it
				// (Section VI-A).
				s.k.mach.SetPriority(core, thr, hwpri.Medium)
			}
		} else if s.daemon != nil && cycle >= s.nextDaemon {
			s.inDaemon = true
			s.daemonLeft = s.daemon.Run
			s.nextDaemon += s.daemon.Period
		}
	}

	if s.inHandler || s.inDaemon {
		if !s.kgen.Next(in) {
			// The kernel-mix generator is effectively infinite; treat
			// exhaustion as handler exit.
			s.kgen.Reset()
			s.kgen.Next(in)
		}
		if s.inHandler {
			s.handlerLeft--
			if s.handlerLeft <= 0 {
				s.inHandler = false
				s.k.mach.SetPrivilege(core, thr, hwpri.ProblemState)
			}
		} else {
			s.daemonLeft--
			if s.daemonLeft <= 0 {
				s.inDaemon = false
			}
		}
		return true
	}

	if s.cs.proc == nil || s.cs.proc.user == nil {
		return false
	}
	return s.cs.proc.user.Next(in)
}

// Reset implements isa.Stream; CPU streams are not rewindable, so Reset
// only resets the kernel-mix generator.
func (s *cpuStream) Reset() { s.kgen.Reset() }
