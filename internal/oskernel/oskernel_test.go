package oskernel

import (
	"testing"

	"repro/internal/hwpri"
	"repro/internal/isa"
	"repro/internal/power5"
	"repro/internal/workload"
)

func newKernel(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	chipCfg := power5.DefaultConfig()
	chipCfg.BranchBits = 10
	return New(power5.MustNew(chipCfg), cfg)
}

func computeLoad(n int64, seed uint64) isa.Stream {
	return workload.Load{Kind: workload.FPU, N: n, Seed: seed, Base: uint64(seed) << 33}.Stream()
}

func TestSpawnAndRunToEnd(t *testing.T) {
	k := newKernel(t, Config{Patched: true})
	var ended []*Process
	k.OnProcessStreamEnd(func(p *Process) { ended = append(ended, p) })
	p, err := k.Spawn("rank0", 0, computeLoad(5000, 1), hwpri.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 1 || k.ProcessOn(0) != p {
		t.Error("process bookkeeping wrong")
	}
	k.Chip().RunUntil(1 << 22)
	if len(ended) != 1 || ended[0] != p {
		t.Fatalf("stream-end callback fired %d times", len(ended))
	}
	if got := k.Chip().Stats(0, 0).Completed; got != 5000 {
		t.Errorf("completed %d instructions, want 5000", got)
	}
}

func TestSpawnValidation(t *testing.T) {
	k := newKernel(t, Config{Patched: true})
	if _, err := k.Spawn("x", 99, computeLoad(10, 1), hwpri.Medium); err == nil {
		t.Error("bad CPU accepted")
	}
	if _, err := k.Spawn("x", 0, computeLoad(10, 1), hwpri.Priority(9)); err == nil {
		t.Error("bad priority accepted")
	}
	if _, err := k.Spawn("a", 0, computeLoad(10, 1), hwpri.Medium); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("b", 0, computeLoad(10, 2), hwpri.Medium); err != ErrCPUBusy {
		t.Errorf("double pin error = %v, want ErrCPUBusy", err)
	}
}

func TestExit(t *testing.T) {
	k := newKernel(t, Config{Patched: true})
	p, err := k.Spawn("x", 1, computeLoad(1<<40, 1), hwpri.Medium)
	if err != nil {
		t.Fatal(err)
	}
	k.Chip().Run(1000)
	k.Exit(p)
	if k.ProcessOn(1) != nil {
		t.Error("CPU still owned after Exit")
	}
	if _, err := k.Process(p.PID); err != ErrNoProcess {
		t.Error("process still visible after Exit")
	}
	// Idle etiquette: the CPU drops to very low priority.
	if got := k.Chip().Priority(0, 1); got != hwpri.VeryLow {
		t.Errorf("idle CPU priority = %v, want very-low", got)
	}
}

func TestCPUMapping(t *testing.T) {
	k := newKernel(t, Config{})
	if k.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d, want 4", k.NumCPUs())
	}
	// CPU0/1 must be the two contexts of core 0 (the paper pins P1, P2
	// to the same core).
	if k.CPUOfCoreThread(0, 0) != 0 || k.CPUOfCoreThread(0, 1) != 1 || k.CPUOfCoreThread(1, 0) != 2 {
		t.Error("CPU numbering does not match the paper's mapping")
	}
}

func TestProcfsRequiresPatch(t *testing.T) {
	k := newKernel(t, Config{Patched: false})
	p, err := k.Spawn("x", 0, computeLoad(1<<40, 1), hwpri.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteHMTPriority(p.PID, hwpri.High); err != ErrNoProcFile {
		t.Errorf("vanilla kernel procfs error = %v, want ErrNoProcFile", err)
	}
}

func TestProcfsSetsPriority(t *testing.T) {
	k := newKernel(t, Config{Patched: true})
	p, err := k.Spawn("x", 2, computeLoad(1<<40, 1), hwpri.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteHMTPriority(p.PID, hwpri.High); err != nil {
		t.Fatal(err)
	}
	if got := k.Chip().Priority(1, 0); got != hwpri.High {
		t.Errorf("chip priority = %v, want high", got)
	}
	if p.HMT != hwpri.High {
		t.Error("process HMT not updated")
	}
	// Range checks: 0 and 7 are hypervisor-only, outside the procfs range.
	if err := k.WriteHMTPriority(p.PID, hwpri.ThreadOff); err != ErrBadPriority {
		t.Errorf("priority 0 error = %v, want ErrBadPriority", err)
	}
	if err := k.WriteHMTPriority(p.PID, hwpri.VeryHigh); err != ErrBadPriority {
		t.Errorf("priority 7 error = %v, want ErrBadPriority", err)
	}
	if err := k.WriteHMTPriority(999, hwpri.Low); err != ErrNoProcess {
		t.Errorf("unknown PID error = %v, want ErrNoProcess", err)
	}
}

// TestVanillaTickResetsPriority is the Section VI-A behaviour: on an
// unpatched kernel the first timer interrupt resets the context priority
// to MEDIUM and never restores it.
func TestVanillaTickResetsPriority(t *testing.T) {
	k := newKernel(t, Config{Patched: false, TickPeriod: 5000, TickCost: 100})
	// Simulate software having set priority LOW via an or-nop: spawn at
	// LOW directly.
	if _, err := k.Spawn("x", 0, computeLoad(1<<40, 1), hwpri.Low); err != nil {
		t.Fatal(err)
	}
	if got := k.Chip().Priority(0, 0); got != hwpri.Low {
		t.Fatalf("priority before tick = %v, want low", got)
	}
	k.Chip().Run(20000)
	if got := k.Chip().Priority(0, 0); got != hwpri.Medium {
		t.Errorf("priority after ticks = %v, want medium (vanilla reset)", got)
	}
}

// TestPatchedTickKeepsPriority: the patched kernel leaves priorities alone
// across interrupts (Section VI-B change #1).
func TestPatchedTickKeepsPriority(t *testing.T) {
	k := newKernel(t, Config{Patched: true, TickPeriod: 5000, TickCost: 100})
	p, err := k.Spawn("x", 0, computeLoad(1<<40, 1), hwpri.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteHMTPriority(p.PID, hwpri.High); err != nil {
		t.Fatal(err)
	}
	k.Chip().Run(20000)
	if got := k.Chip().Priority(0, 0); got != hwpri.High {
		t.Errorf("priority after ticks = %v, want high (patched keeps it)", got)
	}
}

// TestTicksCostTime: OS noise slows the process down (Section II-B).
func TestTicksCostTime(t *testing.T) {
	finish := func(cfg Config) int64 {
		k := newKernel(t, cfg)
		done := int64(-1)
		k.OnProcessStreamEnd(func(*Process) { done = k.Chip().Cycle() })
		if _, err := k.Spawn("x", 0, computeLoad(50000, 1), hwpri.Medium); err != nil {
			t.Fatal(err)
		}
		k.Chip().RunUntil(1 << 24)
		if done < 0 {
			t.Fatal("process never finished")
		}
		return done
	}
	quiet := finish(Config{Patched: true})
	noisy := finish(Config{Patched: true, TickPeriod: 2000, TickCost: 400})
	if noisy <= quiet {
		t.Errorf("ticks cost nothing: quiet %d, noisy %d cycles", quiet, noisy)
	}
}

// TestDaemonSteals: a daemon on one CPU delays only that CPU's process —
// the extrinsic imbalance of Section II-B.
func TestDaemonSteals(t *testing.T) {
	finish := func(daemons []Daemon) [2]int64 {
		chipCfg := power5.DefaultConfig()
		chipCfg.BranchBits = 10
		k := New(power5.MustNew(chipCfg), Config{Patched: true, Daemons: daemons})
		var done [2]int64
		k.OnProcessStreamEnd(func(p *Process) { done[p.CPU/2] = k.Chip().Cycle() })
		// Two identical ranks on different cores (no SMT interaction).
		if _, err := k.Spawn("a", 0, computeLoad(50000, 1), hwpri.Medium); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Spawn("b", 2, computeLoad(50000, 1), hwpri.Medium); err != nil {
			t.Fatal(err)
		}
		k.Chip().RunUntil(1 << 24)
		return done
	}
	clean := finish(nil)
	if diff := clean[0] - clean[1]; diff < -100 || diff > 100 {
		t.Fatalf("identical ranks finished %d cycles apart without noise", diff)
	}
	noisy := finish([]Daemon{{CPU: 0, Period: 3000, Run: 600}})
	if noisy[0] <= noisy[1]+1000 {
		t.Errorf("daemon-burdened CPU not delayed: %d vs %d", noisy[0], noisy[1])
	}
}

func TestOfflineCPU(t *testing.T) {
	k := newKernel(t, Config{Patched: true})
	if err := k.OfflineCPU(1); err != nil {
		t.Fatal(err)
	}
	if got := k.Chip().Priority(0, 1); got != hwpri.ThreadOff {
		t.Errorf("offlined CPU priority = %v, want thread-off", got)
	}
	// Idle sibling at priority 1 + offlined context = throttled mode;
	// ST mode is reached once a process runs on the surviving context.
	if got := k.Chip().Allocation(0).Mode; got != hwpri.ModeThrottled {
		t.Errorf("core mode with idle sibling = %v, want throttled", got)
	}
	if _, err := k.Spawn("st", 0, computeLoad(1<<40, 1), hwpri.Medium); err != nil {
		t.Fatal(err)
	}
	if got := k.Chip().Allocation(0).Mode; got != hwpri.ModeSingleThread {
		t.Errorf("core mode with running survivor = %v, want single-thread", got)
	}
	k.Exit(k.ProcessOn(0))
	if _, err := k.Spawn("x", 1, computeLoad(10, 1), hwpri.Medium); err != ErrCPUBusy {
		t.Errorf("spawn on offline CPU error = %v, want ErrCPUBusy", err)
	}
	if err := k.OnlineCPU(1); err != nil {
		t.Fatal(err)
	}
	if got := k.Chip().Priority(0, 1); got != hwpri.VeryLow {
		t.Errorf("onlined idle CPU priority = %v, want very-low", got)
	}
	if err := k.OfflineCPU(99); err == nil {
		t.Error("bad CPU accepted")
	}
	if err := k.OnlineCPU(-1); err == nil {
		t.Error("bad CPU accepted")
	}
	// Offlining a busy CPU must fail.
	if _, err := k.Spawn("x", 0, computeLoad(1<<40, 1), hwpri.Medium); err != nil {
		t.Fatal(err)
	}
	if err := k.OfflineCPU(0); err != ErrCPUBusy {
		t.Errorf("offline busy CPU error = %v, want ErrCPUBusy", err)
	}
}

// TestSetUserStream: the runtime can switch a process between phases.
func TestSetUserStream(t *testing.T) {
	k := newKernel(t, Config{Patched: true})
	phases := 0
	k.OnProcessStreamEnd(func(p *Process) {
		phases++
		if phases == 1 {
			k.SetUserStream(p, computeLoad(3000, 2))
		}
	})
	if _, err := k.Spawn("x", 0, computeLoad(2000, 1), hwpri.Medium); err != nil {
		t.Fatal(err)
	}
	k.Chip().RunUntil(1 << 22)
	if phases != 2 {
		t.Fatalf("saw %d phase ends, want 2", phases)
	}
	if got := k.Chip().Stats(0, 0).Completed; got != 5000 {
		t.Errorf("completed %d, want 5000 across both phases", got)
	}
}

// TestIdleSiblingDonatesCore: with the sibling CPU idle, a process runs
// as fast as in explicit ST mode.
func TestIdleSiblingDonatesCore(t *testing.T) {
	run := func(offline bool) int64 {
		k := newKernel(t, Config{Patched: true})
		if offline {
			if err := k.OfflineCPU(1); err != nil {
				t.Fatal(err)
			}
		}
		done := int64(-1)
		k.OnProcessStreamEnd(func(*Process) { done = k.Chip().Cycle() })
		if _, err := k.Spawn("x", 0, computeLoad(50000, 1), hwpri.Medium); err != nil {
			t.Fatal(err)
		}
		k.Chip().RunUntil(1 << 24)
		return done
	}
	idle := run(false)
	st := run(true)
	ratio := float64(idle) / float64(st)
	if ratio > 1.1 {
		t.Errorf("idle sibling costs %.0f%% vs ST mode; idle etiquette broken", (ratio-1)*100)
	}
}
