package oskernel

import (
	"encoding/binary"

	"repro/internal/isa"
)

// cpuStream implements isa.FastForwarder so the phase-skip engine can
// snapshot machines running under the kernel.  The stream's behavioral
// state is the handler/daemon preemption machinery (with the next-fire
// times expressed relative to the current cycle — they advance in
// lockstep with the clock) plus its two sub-streams: the kernel
// instruction-mix generator and the pinned process's user stream.
//
// No other kernel state evolves during a run: processes, pinning,
// privilege, and priorities only change through explicit calls (which
// the engine's gating already excludes) or through the tick handler,
// whose effects live entirely in machine state already captured by the
// chip walk.

// ffUser returns the pinned process's user stream as a FastForwarder
// (nil when there is no user stream to capture) and whether capture is
// possible at all.
func (s *cpuStream) ffUser() (isa.FastForwarder, bool) {
	if s.cs.proc == nil || s.cs.proc.user == nil {
		return nil, true
	}
	ff, ok := s.cs.proc.user.(isa.FastForwarder)
	if !ok || !ff.FFSupported() {
		return nil, false
	}
	return ff, true
}

// FFSupported implements isa.FastForwarder: capture works whenever the
// user stream (if any) supports it; the kernel-mix generator always does.
func (s *cpuStream) FFSupported() bool {
	_, ok := s.ffUser()
	return ok
}

// FFNorm implements isa.FastForwarder.
func (s *cpuStream) FFNorm(b []byte) []byte {
	b = append(b, 0xC5)
	cycle := s.k.mach.Cycle()
	flags := byte(0)
	if s.inHandler {
		flags |= 1
	}
	if s.inDaemon {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.handlerLeft))
	if s.k.cfg.TickPeriod > 0 {
		// Signed offset: a blocked CPU can sit past its tick time.
		b = binary.LittleEndian.AppendUint64(b, uint64(s.nextTick-cycle))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(s.daemonLeft))
	if s.daemon != nil {
		b = binary.LittleEndian.AppendUint64(b, uint64(s.nextDaemon-cycle))
	}
	b = s.kgen.(isa.FastForwarder).FFNorm(b)
	if ff, _ := s.ffUser(); ff != nil {
		b = append(b, 1)
		b = ff.FFNorm(b)
	} else {
		b = append(b, 0)
	}
	return b
}

// FFCtrs implements isa.FastForwarder.
func (s *cpuStream) FFCtrs(c []int64) []int64 {
	c = s.kgen.(isa.FastForwarder).FFCtrs(c)
	if ff, _ := s.ffUser(); ff != nil {
		c = ff.FFCtrs(c)
	}
	return c
}

// FFAdvance implements isa.FastForwarder.
func (s *cpuStream) FFAdvance(k, dt int64, d []int64) []int64 {
	s.nextTick += dt
	s.nextDaemon += dt
	d = s.kgen.(isa.FastForwarder).FFAdvance(k, dt, d)
	if ff, _ := s.ffUser(); ff != nil {
		d = ff.FFAdvance(k, dt, d)
	}
	return d
}
